(* Benchmark harness: regenerates every table and figure of the paper
   (Table I, Figure 3, Figure 4, the §II-C bypass study, the §V-C
   penetration tests and real-vulnerability studies), plus the §III-E
   ablation, and runs one Bechamel micro-benchmark per artifact for the
   OCaml implementation itself.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig3      # one experiment
     dune exec bench/main.exe -- table1 fig4 micro
     dune exec bench/main.exe -- --jobs=8 fig3
   Experiments: table1 fig3 fig4 bypass pentest realvuln brute rngsec
   rerand ablation analysis selective chaos serve campaign attack
   leaks resilience micro engine

   --jobs=N runs each paper-table experiment's cells on N domains;
   tables are identical for every N.  The wall-clock benchmarks (micro,
   engine) always run sequentially — parallel neighbours would perturb
   their timings. *)

let say fmt = Format.printf (fmt ^^ "@.")

(* --json DIR: besides printing, dump every table as BENCH_<name>.json
   (one file per table, Texttable.to_json form) for machine
   consumption — CI diffs, plotting scripts. *)
let json_dir : string option ref = ref None

let emit ?title ~name tbl =
  Sutil.Texttable.print ?title tbl;
  match !json_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
      let oc = open_out path in
      Sutil.Json.doc_to_channel ~indent:true oc (Sutil.Texttable.to_json ?title tbl);
      close_out oc;
      say "wrote %s" path

(* ------------------------------------------------------------------ *)
(* Paper-style tables                                                  *)

let run_table1 pool =
  let t = Harness.Randrate.run ~pool () in
  emit ~name:"table1"
    ~title:"Table I: source of randomness (cycles per 64-bit draw)"
    (Harness.Randrate.table t)

let run_fig3 pool =
  let t = Harness.Overhead.run ~pool () in
  emit ~name:"fig3"
    ~title:"Figure 3: % runtime overhead (SPEC-like + I/O workloads)"
    (Harness.Overhead.table t);
  say "worst I/O-bound overhead: %s (paper: 6%% worst case)"
    (Sutil.Texttable.fmt_pct t.io_worst)

let run_fig4 pool =
  let t = Harness.Memov.run ~pool () in
  emit ~name:"fig4" ~title:"Figure 4: % memory overhead (max-RSS proxy)"
    (Harness.Memov.table t)

let run_bypass pool =
  let t = Harness.Security.bypass_prior ~pool () in
  emit ~name:"bypass" ~title:t.title (Harness.Security.table t)

let run_pentest pool =
  let t = Harness.Security.pentest ~pool () in
  emit ~name:"pentest" ~title:t.title (Harness.Security.table t)

let run_realvuln pool =
  let t = Harness.Security.realvuln ~pool () in
  emit ~name:"realvuln" ~title:t.title (Harness.Security.table t)

let run_brute pool =
  let rows = Harness.Security.brute ~pool () in
  emit ~name:"brute"
    ~title:"E8: brute-force attempts until the librelp exploit lands"
    (Harness.Security.brute_table rows)

let run_rngsec pool =
  let t = Harness.Security.rng_security ~pool () in
  emit ~name:"rngsec" ~title:t.title (Harness.Security.table t)

let run_rerand pool =
  let rows = Harness.Security.rerandomization ~pool () in
  emit ~name:"rerand"
    ~title:
      "E11: same-run probe-then-exploit vs re-randomization interval \
       (per-invocation is the design point)"
    (Harness.Security.rerand_table rows)

let run_ablation pool =
  let t = Harness.Ablation.run ~pool () in
  emit ~name:"ablation" ~title:"E7: P-BOX optimization ablation"
    (Harness.Ablation.table t)

let run_analysis pool =
  let t = Harness.Surface.run ~pool () in
  emit ~name:"analysis"
    ~title:"E12: static DOP attack surface (expected attempts, easiest pair)"
    (Harness.Surface.table t);
  let cv = Harness.Crossval.run ~pool () in
  emit ~name:"crossval"
    ~title:"E12b: differential validation (dynamic attack => static DOP pair)"
    (Harness.Crossval.table cv);
  say "differential validation: %s"
    (if cv.all_validated then "every dynamic success has a static DOP pair"
     else "FAILED - a dynamic success has no static pair")

let run_selective pool =
  let t = Harness.Selective.run ~pool () in
  emit ~name:"selective"
    ~title:
      "E14: selective hardening — overhead and P-BOX bytes, full vs \
       validator-certified elision"
    (Harness.Selective.table t);
  say "mean overhead saved: %s; mean P-BOX bytes saved: %.1f%%"
    (Sutil.Texttable.fmt_pct t.mean_delta)
    t.mean_pbox_saving_pct;
  let cv = Harness.Crossval.run_selective ~pool () in
  emit ~name:"selective_diff"
    ~title:
      "E14a: selective-hardening differential (verdicts and Progen output \
       vs full hardening)"
    (Harness.Crossval.selective_table cv);
  say "selective differential: %s"
    (if cv.all_identical then "bit-identical to full hardening on every case"
     else "FAILED - selective hardening changed an observable")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)

let micro_tests () =
  let open Bechamel in
  let entropy = Crypto.Entropy.create ~seed:11L in
  (* Table I: the four generators, OCaml-side *)
  let gen_test scheme =
    let gen = Rng.Generator.create scheme ~entropy in
    Test.make
      ~name:("table1/" ^ Rng.Scheme.name scheme)
      (Staged.stage (fun () -> ignore (Rng.Generator.next_u64 gen)))
  in
  (* Figure 3: executing a hardened call-dense probe *)
  let fig3_probe =
    let w = Option.get (Apps.Spec.find "gobmk") in
    let prog = Lazy.force w.program in
    let hardened = Smokestack.Harden.harden Smokestack.Config.default prog in
    Test.make ~name:"fig3/exec-gobmk-hardened"
      (Staged.stage (fun () ->
           let st =
             Smokestack.Harden.prepare hardened
               ~entropy:(Crypto.Entropy.create ~seed:5L)
           in
           ignore (Machine.Exec.run ~fuel:50_000_000 st)))
  in
  (* Figure 4: P-BOX construction (what the memory overhead buys) *)
  let fig4_pbox =
    let prog = Lazy.force (Option.get (Apps.Spec.find "h264ref")).program in
    Test.make ~name:"fig4/pbox-build-h264ref"
      (Staged.stage (fun () ->
           ignore (Smokestack.Harden.harden Smokestack.Config.default prog)))
  in
  (* §II-C / §V-C: one full exploit attempt *)
  let sec_attempt =
    let prog = Lazy.force Apps.Librelp.program in
    let applied =
      Defenses.Defense.apply
        (Defenses.Defense.Smokestack Smokestack.Config.default)
        prog
    in
    let i = ref 0 in
    Test.make ~name:"security/librelp-attempt-vs-smokestack"
      (Staged.stage (fun () ->
           incr i;
           ignore (Apps.Librelp.attack_static applied ~seed:(Int64.of_int !i))))
  in
  (* Algorithm 1 itself *)
  let permgen =
    let metas = [| (1024, 1); (64, 1); (8, 8); (8, 8); (4, 4); (2, 2) |] in
    Test.make ~name:"alg1/permgen-6-slots"
      (Staged.stage (fun () -> ignore (Smokestack.Permgen.generate metas)))
  in
  let aes =
    let key = Crypto.Aes.expand_key (Crypto.Entropy.bytes entropy 16) in
    let block = Crypto.Entropy.bytes entropy 16 in
    Test.make ~name:"table1/aes-block-software"
      (Staged.stage (fun () -> ignore (Crypto.Aes.encrypt_block key block)))
  in
  Test.make_grouped ~name:"smokestack"
    [
      gen_test Rng.Scheme.Pseudo; gen_test Rng.Scheme.aes1;
      gen_test Rng.Scheme.aes10; gen_test Rng.Scheme.Rdrand;
      fig3_probe; fig4_pbox; sec_attempt; permgen; aes;
    ]

let run_chaos pool =
  Engine.Backend.install ();
  let t = Harness.Chaos.run ~pool () in
  emit ~name:"chaos"
    ~title:"E13: chaos — seeded fault injection across workloads and engines"
    (Harness.Chaos.table t);
  emit ~name:"chaos_policy"
    ~title:"E13: fail-secure vs fail-open (rng:ones@1, RDRAND source)"
    (Harness.Chaos.policy_table t);
  say "detection: %d/%d corrupting fired plans caught (%.1f%%)" t.caught
    t.corrupting_fired
    (100. *. t.detection_rate)

let run_serve pool =
  Engine.Backend.install ();
  let t0 = Unix.gettimeofday () in
  let t = Harness.Serve.run ~pool () in
  let wall = Unix.gettimeofday () -. t0 in
  emit ~name:"server"
    ~title:"E15: server runtime — mixed benign+attack traffic under load"
    (Harness.Serve.summary_table t);
  emit ~name:"server_tenants" ~title:"E15: per-tenant service and security"
    (Harness.Serve.tenant_table t);
  say "peak %d concurrent sessions; %d batch-verdict mismatches over %d checks"
    t.summary.Server.Metrics.peak_open t.summary.Server.Metrics.batch_mismatches
    t.summary.Server.Metrics.batch_checked;
  let st = Sched.Pool.stats pool in
  Printf.eprintf
    "serve: %.1f s wall; pool: %d jobs, %d retries, %d timeouts, peak queue %d\n"
    wall st.Sched.Pool.jobs_run st.Sched.Pool.retries st.Sched.Pool.timeouts
    st.Sched.Pool.peak_queue

let run_attack pool =
  Engine.Backend.install ();
  let t = Harness.Offense.run ~pool ~progen:10 () in
  emit ~name:"offense"
    ~title:"E17: synthesized attack chains vs defenses (successes/trials)"
    (Harness.Offense.chain_table t);
  emit ~name:"offense_synth" ~title:"E17: attack-compiler synthesis summary"
    (Harness.Offense.synth_table t);
  emit ~name:"offense_entropy"
    ~title:
      "E17: brute-force entropy under full hardening, synthesized vs \
       hand-written"
    (Harness.Offense.entropy_table t);
  emit ~name:"offense_feedback"
    ~title:"E17: static grounding of landing chains"
    (Harness.Offense.feedback_table t);
  say
    "chains landing undefended: %d; full-hardening successes: %d; all landing \
     chains grounded: %b"
    t.landed_unhardened t.full_successes t.all_grounded

let run_leaks pool =
  Engine.Backend.install ();
  let t = Harness.Leakcheck.run ~pool () in
  emit ~name:"leaks"
    ~title:
      "E19: static layout-leak verdict vs dynamic seed-variance, full \
       hardening"
    (Harness.Leakcheck.table t);
  emit ~name:"leaks_guided"
    ~title:"E19: leak-guided attack vs blind Algorithm-1 walk (stack-leaky)"
    (Harness.Leakcheck.guided_table t);
  say "static/dynamic disagreements: %d; guided within factor-3 bound: %s"
    t.disagreements
    (match t.guided with
    | None -> "NO GUIDED CHAIN"
    | Some g -> if g.within_bound then "yes" else "NO")

let run_resilience pool =
  Engine.Backend.install ();
  let t0 = Unix.gettimeofday () in
  let t = Harness.Resilience.run ~pool () in
  let wall = Unix.gettimeofday () -. t0 in
  emit ~name:"resilience"
    ~title:
      "E18: brute-force cost vs full hardening, session affinity off vs \
       breakers on"
    (Harness.Resilience.cost_table t);
  emit ~name:"resilience_fleet"
    ~title:"E18: fleet under a fault storm, FCFS baseline vs control plane"
    (Harness.Resilience.fleet_table t);
  emit ~name:"resilience_classes"
    ~title:"E18: per-class service in the resilient cell"
    (Harness.Resilience.class_table t);
  say
    "hand-written cost strictly higher: %b; synthesized: %b; benign p99 \
     ratio: %.3f; mismatches: %d"
    t.hand_higher t.synth_higher t.benign_p99_ratio t.mismatches;
  Printf.eprintf "resilience: %.1f s wall\n" wall

(* ------------------------------------------------------------------ *)
(* Store-backed campaign: cold vs warm cost of the artifact store       *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let run_campaign pool =
  Engine.Backend.install ();
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smokestack-bench-store-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then rm_rf dir;
  let store = Store.Cache.open_disk dir in
  let config = Store.Campaign.config ~seed:1000L ~count:400 () in
  let phase label =
    Store.Cache.reset_stats store;
    let t0 = Unix.gettimeofday () in
    let report = Store.Campaign.run ~pool ~store config in
    let wall = Unix.gettimeofday () -. t0 in
    let st = Store.Cache.stats store in
    let lookups = st.Store.Cache.hits + st.Store.Cache.misses in
    ( label,
      wall,
      float_of_int config.Store.Campaign.count /. Float.max wall 1e-9,
      (if lookups = 0 then 0.
       else 100. *. float_of_int st.Store.Cache.hits /. float_of_int lookups),
      report )
  in
  let cold = phase "cold" in
  let warm = phase "warm" in
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("phase", Sutil.Texttable.Left);
          ("wall s", Sutil.Texttable.Right);
          ("programs/s", Sutil.Texttable.Right);
          ("hit rate", Sutil.Texttable.Right);
          ("digest", Sutil.Texttable.Left);
        ]
  in
  List.iter
    (fun (label, wall, rate, hit_rate, (report : Store.Campaign.report)) ->
      Sutil.Texttable.add_row tbl
        [
          label;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.1f%%" hit_rate;
          report.Store.Campaign.digest;
        ])
    [ cold; warm ];
  emit ~name:"campaign"
    ~title:
      "Campaign store: 400 progen programs, cold (execute + record) vs warm \
       (replay from store)"
    tbl;
  let (_, cold_wall, _, _, cold_r) = cold and (_, warm_wall, _, _, warm_r) = warm in
  say "warm/cold speedup: %.1fx; digests %s" (cold_wall /. Float.max warm_wall 1e-9)
    (if String.equal cold_r.Store.Campaign.digest warm_r.Store.Campaign.digest
     then "identical"
     else "DIVERGE");
  rm_rf dir

let run_micro () =
  let open Bechamel in
  say "Bechamel micro-benchmarks (wall-clock per iteration):";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("benchmark", Sutil.Texttable.Left);
          ("time/iter", Sutil.Texttable.Right);
        ]
  in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      let cell =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Sutil.Texttable.add_row tbl [ name; cell ])
    (List.sort compare rows);
  emit ~name:"micro" tbl

(* ------------------------------------------------------------------ *)
(* Engine micro-benchmark: reference interpreter vs bytecode engine     *)

let run_engine () =
  Engine.Backend.install ();
  let reps = 3 in
  let time_backend (backend : Machine.Backend.t)
      (applied : Defenses.Defense.applied) (w : Apps.Spec.workload) =
    let chunks = Harness.Workbench.chunks_of_input w.input in
    (* one warm-up run: populates the engine's compiled-program cache so
       the timed runs measure execution, not compilation *)
    ignore (Apps.Runner.run_chunks ~backend ~fuel:400_000_000 applied ~seed:1L ~chunks);
    let t0 = Sys.time () in
    let instrs = ref 0 in
    for _ = 1 to reps do
      let _, stats =
        Apps.Runner.run_chunks ~backend ~fuel:400_000_000 applied ~seed:1L
          ~chunks
      in
      instrs := stats.Machine.Exec.instr_count
    done;
    ((Sys.time () -. t0) /. float_of_int reps, !instrs)
  in
  let mips instrs t = float_of_int instrs /. t /. 1e6 in
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("workload", Sutil.Texttable.Left);
          ("instrs/run", Sutil.Texttable.Right);
          ("reference", Sutil.Texttable.Right);
          ("bytecode", Sutil.Texttable.Right);
          ("speedup", Sutil.Texttable.Right);
        ]
  in
  let speedups =
    List.map
      (fun (w : Apps.Spec.workload) ->
        let applied =
          Defenses.Defense.apply Defenses.Defense.No_defense
            (Lazy.force w.program)
        in
        let tref, instrs =
          time_backend Machine.Backend.reference applied w
        in
        let tbc, _ = time_backend Engine.Backend.backend applied w in
        Sutil.Texttable.add_row tbl
          [
            w.wname;
            string_of_int instrs;
            Printf.sprintf "%.3f s (%.1f Mi/s)" tref (mips instrs tref);
            Printf.sprintf "%.3f s (%.1f Mi/s)" tbc (mips instrs tbc);
            Printf.sprintf "%.2fx" (tref /. tbc);
          ];
        tref /. tbc)
      Apps.Spec.spec
  in
  emit ~name:"engine"
    ~title:
      "Engine: instruction throughput, reference interpreter vs bytecode \
       engine (unhardened workloads)"
    tbl;
  say "geomean speedup: %.2fx, best: %.2fx (identical observables on every run \
       — see `dune runtest` and Harness.Diffval)"
    (exp
       (List.fold_left (fun a s -> a +. log s) 0. speedups
       /. float_of_int (List.length speedups)))
    (List.fold_left Float.max 0. speedups)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("bypass", run_bypass);
    ("pentest", run_pentest);
    ("realvuln", run_realvuln);
    ("brute", run_brute);
    ("rngsec", run_rngsec);
    ("rerand", run_rerand);
    ("ablation", run_ablation);
    ("analysis", run_analysis);
    ("selective", run_selective);
    ("chaos", run_chaos);
    ("serve", run_serve);
    ("campaign", run_campaign);
    ("attack", run_attack);
    ("leaks", run_leaks);
    ("resilience", run_resilience);
    (* wall-clock benchmarks: always sequential, the pool is unused *)
    ("micro", fun (_ : Sched.Pool.t) -> run_micro ());
    ("engine", fun (_ : Sched.Pool.t) -> run_engine ());
  ]

let jobs_prefix = "--jobs="
let json_prefix = "--json="

(* Pull --jobs=N and --json DIR (or --json=DIR) out of the argument
   list; what remains are experiment names. *)
let rec parse_args = function
  | [] -> (None, [])
  | "--json" :: dir :: rest ->
      json_dir := Some dir;
      parse_args rest
  | "--json" :: [] ->
      say "--json needs a directory argument";
      exit 2
  | a :: rest when String.starts_with ~prefix:json_prefix a ->
      json_dir :=
        Some
          (String.sub a (String.length json_prefix)
             (String.length a - String.length json_prefix));
      parse_args rest
  | a :: rest when String.starts_with ~prefix:jobs_prefix a -> (
      let v =
        String.sub a (String.length jobs_prefix)
          (String.length a - String.length jobs_prefix)
      in
      match int_of_string_opt v with
      | Some n when n >= 1 ->
          let _, names = parse_args rest in
          (Some n, names)
      | _ ->
          say "bad --jobs value %S (want a positive integer)" a;
          exit 2)
  | a :: rest ->
      let jobs, names = parse_args rest in
      (jobs, a :: names)

let () =
  let jobs, names = parse_args (List.tl (Array.to_list Sys.argv)) in
  (match !json_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let requested =
    match names with [] -> List.map fst experiments | names -> names
  in
  Sched.Pool.with_pool ?jobs @@ fun pool ->
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          say "== %s ==" name;
          f pool;
          say ""
      | None ->
          say "unknown experiment %S; available: %s" name
            (String.concat " " (List.map fst experiments));
          exit 2)
    requested
