(* Tests for IR types, construction, verification and passes. *)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ty *)

let test_scalar_sizes () =
  List.iter
    (fun (ty, size, align) ->
      check_int (Ir.Ty.to_string ty ^ " size") size (Ir.Ty.size ty);
      check_int (Ir.Ty.to_string ty ^ " align") align (Ir.Ty.alignment ty))
    [
      (Ir.Ty.I1, 1, 1); (Ir.Ty.I8, 1, 1); (Ir.Ty.I16, 2, 2); (Ir.Ty.I32, 4, 4);
      (Ir.Ty.I64, 8, 8); (Ir.Ty.Ptr, 8, 8);
    ]

let test_array_layout () =
  let t = Ir.Ty.Array (Ir.Ty.I32, 10) in
  check_int "size" 40 (Ir.Ty.size t);
  check_int "align" 4 (Ir.Ty.alignment t);
  check_int "nested" 80 (Ir.Ty.size (Ir.Ty.Array (t, 2)))

let test_struct_layout () =
  (* struct { char c; long l; short s; } -> c@0 pad l@8 s@16 pad -> 24 *)
  let t = Ir.Ty.Struct { name = "mix"; fields = [ Ir.Ty.I8; Ir.Ty.I64; Ir.Ty.I16 ] } in
  check_int "size" 24 (Ir.Ty.size t);
  check_int "align (max field)" 8 (Ir.Ty.alignment t);
  Alcotest.(check (list int)) "offsets" [ 0; 8; 16 ]
    (Ir.Ty.struct_field_offsets [ Ir.Ty.I8; Ir.Ty.I64; Ir.Ty.I16 ])

let test_struct_recursive_alignment () =
  (* paper §IV-A: aggregate alignment depends on the largest element,
     recursively *)
  let inner = Ir.Ty.Struct { name = "in"; fields = [ Ir.Ty.I16; Ir.Ty.I64 ] } in
  let outer = Ir.Ty.Struct { name = "out"; fields = [ Ir.Ty.I8; inner ] } in
  check_int "inner align" 8 (Ir.Ty.alignment inner);
  check_int "outer align" 8 (Ir.Ty.alignment outer);
  check_int "outer size" 24 (Ir.Ty.size outer)

let test_struct_trailing_padding () =
  let t = Ir.Ty.Struct { name = "pad"; fields = [ Ir.Ty.I64; Ir.Ty.I8 ] } in
  check_int "trailing pad to 16" 16 (Ir.Ty.size t)

let prop_size_positive_and_aligned =
  QCheck2.Test.make ~count:200 ~name:"array of struct size is n * elt"
    QCheck2.Gen.(int_range 1 20)
    (fun n ->
      let s = Ir.Ty.Struct { name = "s"; fields = [ Ir.Ty.I8; Ir.Ty.I32 ] } in
      Ir.Ty.size (Ir.Ty.Array (s, n)) = n * Ir.Ty.size s)

(* ------------------------------------------------------------------ *)
(* Builder + Verifier *)

let build_valid_func () =
  let f = Ir.Func.create ~name:"f" ~params:[ (0, Ir.Ty.I64) ] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let slot = Ir.Builder.alloca b ~name:"x" Ir.Ty.I64 in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Reg 0) ~addr:(Ir.Instr.Reg slot);
  let v = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg slot) in
  let r = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg v) (Ir.Instr.Imm 1L) in
  Ir.Builder.ret b (Some (Ir.Instr.Reg r));
  f

let test_verifier_accepts_valid () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (build_valid_func ());
  Alcotest.(check (list string)) "no errors" []
    (List.map (Format.asprintf "%a" Ir.Verifier.pp_error) (Ir.Verifier.verify prog))

let expect_errors name mk =
  let prog = Ir.Prog.create () in
  mk prog;
  match Ir.Verifier.verify prog with
  | [] -> Alcotest.failf "%s: expected verification errors" name
  | _ -> ()

let test_verifier_catches_use_before_def () =
  expect_errors "use before def" (fun prog ->
      let f = Ir.Func.create ~name:"f" ~params:[] ~returns:(Some Ir.Ty.I64) in
      let b = Ir.Builder.create f in
      let r2 = Ir.Func.fresh_reg f in
      let r = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg r2) (Ir.Instr.Imm 1L) in
      Ir.Builder.ret b (Some (Ir.Instr.Reg r));
      Ir.Prog.add_func prog f)

let test_verifier_catches_unknown_label () =
  expect_errors "unknown label" (fun prog ->
      let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
      let b = Ir.Builder.create f in
      Ir.Builder.br b "nowhere";
      Ir.Prog.add_func prog f)

let test_verifier_catches_unknown_callee () =
  expect_errors "unknown callee" (fun prog ->
      let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
      let b = Ir.Builder.create f in
      ignore (Ir.Builder.call b "missing" []);
      Ir.Builder.ret b None;
      Ir.Prog.add_func prog f)

let test_verifier_catches_void_result_use () =
  expect_errors "void result" (fun prog ->
      let v = Ir.Func.create ~name:"v" ~params:[] ~returns:None in
      let bv = Ir.Builder.create v in
      Ir.Builder.ret bv None;
      Ir.Prog.add_func prog v;
      let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
      let b = Ir.Builder.create f in
      ignore (Ir.Builder.call b ~result:true "v" []);
      Ir.Builder.ret b None;
      Ir.Prog.add_func prog f)

let test_verifier_catches_ret_mismatch () =
  expect_errors "ret mismatch" (fun prog ->
      let f = Ir.Func.create ~name:"f" ~params:[] ~returns:(Some Ir.Ty.I64) in
      let b = Ir.Builder.create f in
      Ir.Builder.ret b None;
      Ir.Prog.add_func prog f)

let test_verifier_catches_aggregate_load () =
  expect_errors "aggregate load" (fun prog ->
      let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
      let b = Ir.Builder.create f in
      let a = Ir.Builder.alloca b (Ir.Ty.Array (Ir.Ty.I8, 4)) in
      ignore (Ir.Builder.load b (Ir.Ty.Array (Ir.Ty.I8, 4)) (Ir.Instr.Reg a));
      Ir.Builder.ret b None;
      Ir.Prog.add_func prog f)

let test_verifier_conditional_defs () =
  (* a register defined on only one path may not be used at the join *)
  expect_errors "conditional def" (fun prog ->
      let f = Ir.Func.create ~name:"f" ~params:[ (0, Ir.Ty.I64) ] ~returns:(Some Ir.Ty.I64) in
      let b = Ir.Builder.create f in
      Ir.Builder.cond_br b (Ir.Instr.Reg 0) ~if_true:"t" ~if_false:"j";
      let _ = Ir.Builder.start_block b "t" in
      let r = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg 0) (Ir.Instr.Imm 1L) in
      Ir.Builder.br b "j";
      let _ = Ir.Builder.start_block b "j" in
      Ir.Builder.ret b (Some (Ir.Instr.Reg r));
      Ir.Prog.add_func prog f)

(* ------------------------------------------------------------------ *)
(* Cfg dominator tree (what the verifier's def-before-use and the
   validator's FID pairing now stand on) *)

let diamond_func () =
  (* entry -> {t, f} -> j : j's immediate dominator is the entry, not
     either branch arm *)
  let f =
    Ir.Func.create ~name:"d" ~params:[ (0, Ir.Ty.I64) ]
      ~returns:(Some Ir.Ty.I64)
  in
  let b = Ir.Builder.create f in
  Ir.Builder.cond_br b (Ir.Instr.Reg 0) ~if_true:"t" ~if_false:"f";
  let _ = Ir.Builder.start_block b "t" in
  Ir.Builder.br b "j";
  let _ = Ir.Builder.start_block b "f" in
  Ir.Builder.br b "j";
  let _ = Ir.Builder.start_block b "j" in
  Ir.Builder.ret b (Some (Ir.Instr.Reg 0));
  f

let test_cfg_diamond_idom () =
  let cfg = Ir.Cfg.of_func (diamond_func ()) in
  let idom = Ir.Cfg.idom cfg in
  let at label = Hashtbl.find cfg.Ir.Cfg.index_of label in
  check_int "entry is its own idom" (at "entry") idom.(at "entry");
  check_int "t's idom is entry" (at "entry") idom.(at "t");
  check_int "f's idom is entry" (at "entry") idom.(at "f");
  check_int "join's idom skips the arms" (at "entry") idom.(at "j");
  Alcotest.(check bool) "entry dominates join" true
    (Ir.Cfg.dominates ~idom (at "entry") (at "j"));
  Alcotest.(check bool) "arm does not dominate join" false
    (Ir.Cfg.dominates ~idom (at "t") (at "j"));
  Alcotest.(check bool) "dominance is reflexive" true
    (Ir.Cfg.dominates ~idom (at "j") (at "j"))

let test_cfg_loop_idom () =
  (* entry -> head -> {body -> head, exit}: the back edge must not
     disturb head's dominance over body and exit *)
  let f = Ir.Func.create ~name:"l" ~params:[ (0, Ir.Ty.I64) ] ~returns:None in
  let b = Ir.Builder.create f in
  Ir.Builder.br b "head";
  let _ = Ir.Builder.start_block b "head" in
  Ir.Builder.cond_br b (Ir.Instr.Reg 0) ~if_true:"body" ~if_false:"exit";
  let _ = Ir.Builder.start_block b "body" in
  Ir.Builder.br b "head";
  let _ = Ir.Builder.start_block b "exit" in
  Ir.Builder.ret b None;
  Ir.Prog.add_func (Ir.Prog.create ()) f;
  let cfg = Ir.Cfg.of_func f in
  let idom = Ir.Cfg.idom cfg in
  let at label = Hashtbl.find cfg.Ir.Cfg.index_of label in
  check_int "head's idom is entry" (at "entry") idom.(at "head");
  check_int "body's idom is head" (at "head") idom.(at "body");
  check_int "exit's idom is head" (at "head") idom.(at "exit");
  Alcotest.(check bool) "body does not dominate exit" false
    (Ir.Cfg.dominates ~idom (at "body") (at "exit"))

let test_verifier_accepts_def_dominating_loop_use () =
  (* a def in the loop header dominates a use in the body even though
     the body also precedes the header in program order — the old
     block-order approximation rejected this shape *)
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"f" ~params:[ (0, Ir.Ty.I64) ] ~returns:None in
  let b = Ir.Builder.create f in
  Ir.Builder.br b "head";
  let _ = Ir.Builder.start_block b "head" in
  let v = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg 0) (Ir.Instr.Imm 1L) in
  Ir.Builder.cond_br b (Ir.Instr.Reg 0) ~if_true:"body" ~if_false:"exit";
  let _ = Ir.Builder.start_block b "body" in
  let _ = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg v) (Ir.Instr.Imm 2L) in
  Ir.Builder.br b "head";
  let _ = Ir.Builder.start_block b "exit" in
  Ir.Builder.ret b None;
  Ir.Prog.add_func prog f;
  Alcotest.(check (list string))
    "no errors" []
    (List.map
       (Format.asprintf "%a" Ir.Verifier.pp_error)
       (Ir.Verifier.verify prog))

let test_duplicate_function_rejected () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (build_valid_func ());
  Alcotest.check_raises "dup" (Invalid_argument "Ir.Prog.add_func: duplicate function f")
    (fun () -> Ir.Prog.add_func prog (build_valid_func ()))

let test_global_oversized_init_rejected () =
  let prog = Ir.Prog.create () in
  Alcotest.check_raises "oversized"
    (Invalid_argument
       "Ir.Prog.add_global: init for g is 9 bytes, type holds 8") (fun () ->
      Ir.Prog.add_global prog ~name:"g" ~ty:Ir.Ty.I64 ~init:"123456789"
        ~writable:true ())

let test_printer_smoke () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_extern prog "print_int";
  Ir.Prog.add_global prog ~name:"g" ~ty:Ir.Ty.I32 ~writable:false ();
  Ir.Prog.add_func prog (build_valid_func ());
  let s = Ir.Printer.prog_to_string prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("printer mentions " ^ needle) true
        (let n = String.length needle in
         let found = ref false in
         for i = 0 to String.length s - n do
           if String.sub s i n = needle then found := true
         done;
         !found))
    [ "define i64 @f"; "alloca i64"; "declare @print_int"; "@g = constant" ]

let test_pass_manager_runs_and_verifies () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (build_valid_func ());
  let count = ref 0 in
  Ir.Pass.run
    [ Ir.Pass.Function_pass { name = "count"; run = (fun _ _ -> incr count) } ]
    prog;
  check_int "visited each function" 1 !count;
  (* a pass that breaks the IR must be reported *)
  let breaker =
    Ir.Pass.Module_pass
      {
        name = "breaker";
        run =
          (fun p ->
            let f = List.hd p.Ir.Prog.funcs in
            (Ir.Func.entry f).term <- Ir.Instr.Br "nonexistent");
      }
  in
  match Ir.Pass.run [ breaker ] prog with
  | () -> Alcotest.fail "expected pass verification failure"
  | exception Failure msg ->
      Alcotest.(check bool) "names the pass" true
        (String.length msg > 0
        && (let n = "breaker" in
            let found = ref false in
            for i = 0 to String.length msg - String.length n do
              if String.sub msg i (String.length n) = n then found := true
            done;
            !found))

let test_func_allocas () =
  let f = build_valid_func () in
  match Ir.Func.allocas f with
  | [ (_, Ir.Ty.I64, None, "x") ] -> ()
  | _ -> Alcotest.fail "expected a single i64 alloca named x"

(* ------------------------------------------------------------------ *)
(* Optimizer *)

let opt_count src =
  let prog = Minic.Driver.compile src in
  let before = Ir.Optpipe.instr_count prog in
  Ir.Optpipe.optimize prog;
  (before, Ir.Optpipe.instr_count prog, prog)

let test_constfold_folds_arithmetic () =
  let _, after, prog =
    opt_count "int main() { long x = (2 + 3) * 4 - 6; print_int(x); return 0; }"
  in
  (* the computation collapses to a single stored constant *)
  Alcotest.(check bool) "shrunk hard" true (after <= 8);
  let st = Machine.Exec.prepare prog in
  let _, stats = Machine.Exec.run st in
  Alcotest.(check string) "value" "14" stats.output

let test_constfold_branch_folding () =
  let _, _, prog =
    opt_count
      "int main() { long y = 0; if (2 > 1) y = 5; else y = 7; while (0) { y += 1; } print_int(y); return 0; }"
  in
  let main = Option.get (Ir.Prog.find_func prog "main") in
  Alcotest.(check int) "single straight-line block" 1 (List.length main.blocks);
  let st = Machine.Exec.prepare prog in
  let _, stats = Machine.Exec.run st in
  Alcotest.(check string) "value" "5" stats.output

let test_dce_removes_dead_locals () =
  let _, _, prog =
    opt_count
      "int main() { long dead1 = 1234; long dead2 = dead1 * 99; char junk[64]; junk[3] = 7; print_int(42); return 0; }"
  in
  let main = Option.get (Ir.Prog.find_func prog "main") in
  Alcotest.(check int) "all dead allocas gone" 0 (List.length (Ir.Func.allocas main))

let test_dce_keeps_effects () =
  let before, after, prog =
    opt_count
      "long g = 0; long bump() { g += 1; return g; } int main() { bump(); bump(); print_int(g); return 0; }"
  in
  Alcotest.(check bool) "did not grow" true (after <= before);
  let st = Machine.Exec.prepare prog in
  let _, stats = Machine.Exec.run st in
  Alcotest.(check string) "calls kept" "2" stats.output

let test_simplify_merges_blocks () =
  let _, _, prog =
    opt_count
      "int main() { long a = 1; { long b = 2; a += b; } { a *= 3; } print_int(a); return 0; }"
  in
  let main = Option.get (Ir.Prog.find_func prog "main") in
  Alcotest.(check int) "one block" 1 (List.length main.blocks)

let test_memfwd_promotes_scalars () =
  (* straight-line locals disappear entirely: store-to-load forwarding
     feeds copy-prop, DCE kills the stores and the allocas *)
  let _, after, prog =
    opt_count
      "int main() { long a = 6; long b = a * 7; print_int(b); return 0; }"
  in
  let main = Option.get (Ir.Prog.find_func prog "main") in
  Alcotest.(check int) "no allocas left" 0 (List.length (Ir.Func.allocas main));
  Alcotest.(check bool) "tiny" true (after <= 4);
  let st = Machine.Exec.prepare prog in
  let _, stats = Machine.Exec.run st in
  Alcotest.(check string) "value" "42" stats.output

let test_memfwd_respects_aliasing () =
  (* a write through a derived pointer with a dynamic index must kill
     forwarding for the whole array *)
  let _, _, prog =
    opt_count
      {|
int main() {
  long a[4];
  long i = input_byte();
  a[0] = 11;
  a[i] = 99;
  print_int(a[0]);
  return 0;
}
|}
  in
  let st = Machine.Exec.prepare prog in
  Machine.Exec.set_input st (Machine.Exec.input_string "\x02");
  let _, stats = Machine.Exec.run st in
  Alcotest.(check string) "a[0] intact when i = 2" "11" stats.output;
  let st2 = Machine.Exec.prepare prog in
  Machine.Exec.set_input st2 (Machine.Exec.input_string "\x00");
  let _, stats2 = Machine.Exec.run st2 in
  Alcotest.(check string) "a[0] overwritten via dynamic index" "99" stats2.output

let test_memfwd_clears_across_calls () =
  (* a call boundary must reload: callee mutates the global world *)
  let _, _, prog =
    opt_count
      {|
long g = 1;
long *gp = 0;
void poke() { *gp = 77; }
int main() {
  long x = 5;
  gp = &g;
  poke();
  print_int(g);
  print_int(x);
  return 0;
}
|}
  in
  let st = Machine.Exec.prepare prog in
  let _, stats = Machine.Exec.run st in
  Alcotest.(check string) "reloaded after call" "775" stats.output

let test_optimizer_interacts_with_smokestack () =
  (* fewer surviving allocas means a smaller P-BOX: the pipeline order
     the paper uses (optimize, then instrument) *)
  let src =
    "int main() { long dead = 9; long dead2 = dead + 1; char buf[16]; long live = 5; buf[0] = (char)live; print_int(live + buf[0]); return 0; }"
  in
  let plain = Minic.Driver.compile src in
  let opt = Minic.Driver.compile ~optimize:true src in
  let p1 = Smokestack.Harden.harden Smokestack.Config.default plain in
  let p2 = Smokestack.Harden.harden Smokestack.Config.default opt in
  Alcotest.(check bool) "optimized P-BOX is smaller" true
    (Smokestack.Harden.pbox_bytes p2 < Smokestack.Harden.pbox_bytes p1)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ir"
    [
      ( "ty",
        [
          Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
          Alcotest.test_case "array layout" `Quick test_array_layout;
          Alcotest.test_case "struct layout" `Quick test_struct_layout;
          Alcotest.test_case "recursive alignment" `Quick
            test_struct_recursive_alignment;
          Alcotest.test_case "trailing padding" `Quick test_struct_trailing_padding;
          qt prop_size_positive_and_aligned;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts valid" `Quick test_verifier_accepts_valid;
          Alcotest.test_case "use before def" `Quick test_verifier_catches_use_before_def;
          Alcotest.test_case "unknown label" `Quick test_verifier_catches_unknown_label;
          Alcotest.test_case "unknown callee" `Quick test_verifier_catches_unknown_callee;
          Alcotest.test_case "void result use" `Quick test_verifier_catches_void_result_use;
          Alcotest.test_case "ret mismatch" `Quick test_verifier_catches_ret_mismatch;
          Alcotest.test_case "aggregate load" `Quick test_verifier_catches_aggregate_load;
          Alcotest.test_case "conditional defs" `Quick test_verifier_conditional_defs;
          Alcotest.test_case "loop-header def dominates body use" `Quick
            test_verifier_accepts_def_dominating_loop_use;
          Alcotest.test_case "diamond idom" `Quick test_cfg_diamond_idom;
          Alcotest.test_case "loop idom" `Quick test_cfg_loop_idom;
        ] );
      ( "opt",
        [
          Alcotest.test_case "constfold arithmetic" `Quick test_constfold_folds_arithmetic;
          Alcotest.test_case "constfold branches" `Quick test_constfold_branch_folding;
          Alcotest.test_case "dce dead locals" `Quick test_dce_removes_dead_locals;
          Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_effects;
          Alcotest.test_case "simplify merges" `Quick test_simplify_merges_blocks;
          Alcotest.test_case "memfwd promotes scalars" `Quick test_memfwd_promotes_scalars;
          Alcotest.test_case "memfwd respects aliasing" `Quick test_memfwd_respects_aliasing;
          Alcotest.test_case "memfwd clears at calls" `Quick test_memfwd_clears_across_calls;
          Alcotest.test_case "smaller P-BOX after opt" `Quick
            test_optimizer_interacts_with_smokestack;
        ] );
      ( "prog",
        [
          Alcotest.test_case "duplicate function" `Quick test_duplicate_function_rejected;
          Alcotest.test_case "oversized init" `Quick test_global_oversized_init_rejected;
          Alcotest.test_case "printer" `Quick test_printer_smoke;
          Alcotest.test_case "pass manager" `Quick test_pass_manager_runs_and_verifies;
          Alcotest.test_case "allocas accessor" `Quick test_func_allocas;
        ] );
    ]
