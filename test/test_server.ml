(* Tests for the multi-tenant server runtime (lib/server): traffic
   determinism, the virtual-time admission queue, the security ledger
   (served attack verdicts must reproduce the batch harness's), and the
   property the subsystem exists for — reports byte-identical across
   pool widths and engines, checked over 100+ roots. *)

let ref_backend = Machine.Backend.reference
let bc_backend = Engine.Backend.backend

(* A small, cheap fleet for the many-seed property tests: hardening two
   synthetic apps per run keeps 100 roots affordable. *)
let small_apps =
  List.map
    (fun n -> Option.get (Apps.Sessions.find n))
    [ "synth-stack-direct"; "synth-data-indirect" ]

(* ------------------------------------------------------------------ *)
(* Traffic generation *)

let kind_repr = function
  | Server.Session.Benign chunks -> "b:" ^ String.concat "," chunks
  | Server.Session.Attack name -> "a:" ^ name
  | Server.Session.Chaotic (chunks, plan) ->
      Printf.sprintf "c:%s@%s" (String.concat "," chunks)
        (Fault.Plan.to_spec plan)

let spec_repr (s : Server.Session.spec) =
  Printf.sprintf "%d|%s|%s|%Ld|%.0f" s.sid s.tenant.Server.Tenant.name
    (kind_repr s.kind) s.sseed s.arrival

let schedule_digest specs =
  Digest.to_hex (Digest.string (String.concat ";" (List.map spec_repr specs)))

let test_traffic_replays_over_100_roots () =
  for root = 0 to 119 do
    let root = Int64.of_int root in
    let tenants = Server.Tenant.fleet ~root () in
    let config = { Server.Traffic.default with sessions = 40; root } in
    let a = schedule_digest (Server.Traffic.generate config tenants) in
    let b = schedule_digest (Server.Traffic.generate config tenants) in
    Alcotest.(check string)
      (Printf.sprintf "schedule replays for root %Ld" root)
      a b
  done

let test_traffic_shape () =
  let tenants = Server.Tenant.fleet ~root:7L () in
  let config = { Server.Traffic.default with sessions = 400; root = 7L } in
  let specs = Server.Traffic.generate config tenants in
  Alcotest.(check int) "schedule length" 400 (List.length specs);
  (* sids dense and arrivals monotone: the schedule is in arrival order *)
  List.iteri
    (fun i (s : Server.Session.spec) ->
      Alcotest.(check int) "dense sid" i s.sid)
    specs;
  ignore
    (List.fold_left
       (fun prev (s : Server.Session.spec) ->
         Alcotest.(check bool) "arrivals strictly increase" true
           (s.Server.Session.arrival > prev);
         s.Server.Session.arrival)
       (-1.) specs);
  let benign, attack, chaos = Server.Traffic.census specs in
  Alcotest.(check int) "census sums to the schedule" 400
    (benign + attack + chaos);
  (* the mix follows the percentages, loosely (it is a random draw) *)
  Alcotest.(check bool) "attack share near 12%" true
    (attack > 20 && attack < 80);
  Alcotest.(check bool) "chaos share near 6%" true (chaos > 5 && chaos < 50);
  (* every attack name resolves in the session registry *)
  List.iter
    (fun (s : Server.Session.spec) ->
      match s.kind with
      | Server.Session.Attack name ->
          Alcotest.(check bool)
            (Printf.sprintf "attack %s is registered" name)
            true
            (Option.is_some (Apps.Sessions.find_attack name))
      | _ -> ())
    specs

(* ------------------------------------------------------------------ *)
(* The admission queue *)

let dispatch_once ?(queue_capacity = 1024) ?(virtual_workers = 16) ~root
    ~sessions () =
  let tenants = Server.Tenant.fleet ~apps:small_apps ~root () in
  let traffic =
    { Server.Traffic.default with sessions; root; mean_gap = 60 }
  in
  let specs = Server.Traffic.generate traffic tenants in
  let config =
    {
      Server.Dispatch.default with
      Server.Dispatch.queue_capacity;
      virtual_workers;
      shard = 4;
    }
  in
  (specs, Server.Dispatch.run ~config tenants specs)

let test_queue_invariants () =
  let specs, d = dispatch_once ~root:3L ~sessions:60 () in
  Alcotest.(check int) "nothing lost" (List.length specs)
    (List.length d.Server.Dispatch.served
    + List.length d.Server.Dispatch.shed
    + List.length d.Server.Dispatch.dropped);
  Alcotest.(check int) "nothing dropped without supervision" 0
    (List.length d.Server.Dispatch.dropped);
  List.iter
    (fun (s : Server.Dispatch.served) ->
      let arrival = s.outcome.Server.Session.spec.Server.Session.arrival in
      Alcotest.(check bool) "start after arrival" true (s.start >= arrival);
      Alcotest.(check bool) "wait non-negative" true
        (Server.Dispatch.wait s >= 0.);
      Alcotest.(check (float 1e-6)) "finish = start + service"
        (s.start +. s.outcome.Server.Session.service_cycles)
        s.finish;
      Alcotest.(check bool) "sojourn covers the wait" true
        (Server.Dispatch.sojourn s >= Server.Dispatch.wait s))
    d.Server.Dispatch.served;
  Alcotest.(check bool) "makespan is the last finish" true
    (List.for_all
       (fun (s : Server.Dispatch.served) ->
         s.finish <= d.Server.Dispatch.makespan)
       d.Server.Dispatch.served)

let test_backpressure_sheds_under_overload () =
  (* one handler, a two-deep queue, bursty arrivals: must shed *)
  let _, tight =
    dispatch_once ~queue_capacity:2 ~virtual_workers:1 ~root:3L ~sessions:60 ()
  in
  Alcotest.(check bool) "tight queue sheds" true
    (List.length tight.Server.Dispatch.shed > 0);
  Alcotest.(check bool) "peak open bounded by capacity + workers" true
    (tight.Server.Dispatch.peak_open <= 2 + 1);
  (* an effectively unbounded queue never sheds the same schedule *)
  let _, wide =
    dispatch_once ~queue_capacity:100_000 ~virtual_workers:1 ~root:3L
      ~sessions:60 ()
  in
  Alcotest.(check int) "unbounded queue sheds nothing" 0
    (List.length wide.Server.Dispatch.shed)

(* ------------------------------------------------------------------ *)
(* The security ledger *)

let test_served_attacks_match_batch_verdicts () =
  let tenants = Server.Tenant.fleet ~root:11L () in
  let traffic =
    { Server.Traffic.default with sessions = 150; root = 11L }
  in
  let specs = Server.Traffic.generate traffic tenants in
  let d = Server.Dispatch.run tenants specs in
  let summary = Server.Metrics.of_dispatch d in
  Alcotest.(check bool) "schedule contains attacks" true
    (summary.Server.Metrics.attack_sessions > 0);
  Alcotest.(check int) "every executed attack is checked"
    summary.Server.Metrics.attack_sessions
    summary.Server.Metrics.batch_checked;
  Alcotest.(check int) "zero batch-verdict mismatches" 0
    summary.Server.Metrics.batch_mismatches;
  let outcomes =
    List.map (fun (s : Server.Dispatch.served) -> s.outcome)
      d.Server.Dispatch.served
    @ List.map fst d.Server.Dispatch.shed
  in
  List.iter
    (fun (o : Server.Session.outcome) ->
      match (o.spec.Server.Session.kind, o.batch_match) with
      | Server.Session.Attack _, Some true -> ()
      | Server.Session.Attack name, _ ->
          Alcotest.failf "attack %s diverged from its batch verdict" name
      | _, None -> ()
      | _, Some _ ->
          Alcotest.fail "non-attack sessions have no batch verdict")
    outcomes

let test_summary_accounting () =
  let tenants = Server.Tenant.fleet ~apps:small_apps ~root:5L () in
  let traffic = { Server.Traffic.default with sessions = 80; root = 5L } in
  let specs = Server.Traffic.generate traffic tenants in
  let d = Server.Dispatch.run tenants specs in
  let s = Server.Metrics.of_dispatch d in
  Alcotest.(check int) "sessions = served + shed + rejected + dropped"
    s.Server.Metrics.sessions
    (s.Server.Metrics.served + s.Server.Metrics.shed
   + s.Server.Metrics.rejected + s.Server.Metrics.dropped);
  Alcotest.(check int) "no policy, no rejections" 0 s.Server.Metrics.rejected;
  Alcotest.(check (float 1e-9)) "no supervision, zero drop rate" 0.
    s.Server.Metrics.drop_rate;
  Alcotest.(check int) "kinds partition the executed sessions"
    (s.Server.Metrics.served + s.Server.Metrics.shed)
    (s.Server.Metrics.benign + s.Server.Metrics.attacks
   + s.Server.Metrics.chaos);
  Alcotest.(check bool) "latency percentiles are ordered" true
    (s.Server.Metrics.p50 <= s.Server.Metrics.p95
    && s.Server.Metrics.p95 <= s.Server.Metrics.p99);
  Alcotest.(check bool) "detections bounded by attacks" true
    (s.Server.Metrics.detected <= s.Server.Metrics.attack_sessions)

(* ------------------------------------------------------------------ *)
(* Byte-identity: engines x pool widths, 100+ roots *)

let outcome_repr (o : Server.Session.outcome) =
  Printf.sprintf "%d:%s:%.0f:%d:%d:%s"
    o.spec.Server.Session.sid
    (Attacks.Verdict.to_string o.verdict)
    o.Server.Session.service_cycles o.requests o.fired
    (match o.batch_match with
    | None -> "-"
    | Some b -> string_of_bool b)

let dispatch_digest (d : Server.Dispatch.t) =
  let served =
    List.map
      (fun (s : Server.Dispatch.served) ->
        Printf.sprintf "%s@%.0f-%.0f/%s" (outcome_repr s.outcome) s.start
          s.finish
          (Server.Policy.cls_label s.cls))
      d.served
  in
  let shed =
    List.map
      (fun (o, c) -> outcome_repr o ^ "/" ^ Server.Policy.cls_label c)
      d.shed
  in
  let rejected =
    List.map
      (fun (o, r) -> outcome_repr o ^ "!" ^ Server.Dispatch.refusal_label r)
      d.rejected
  in
  (* breaker state, quarantine sets and per-class latencies all feed the
     digest: the determinism property covers the whole policy layer *)
  let policy =
    match d.policy with
    | None -> "none"
    | Some p ->
        Printf.sprintf "trips=%d;rb=%d;rq=%d;q=[%s];delay=%.0f"
          p.Server.Policy.breaker_trips p.Server.Policy.rejected_backoff
          p.Server.Policy.rejected_quarantine
          (String.concat ","
             (List.map string_of_int p.Server.Policy.quarantined))
          p.Server.Policy.added_delay
  in
  let class_lat =
    List.map
      (fun cls ->
        let sojourns =
          Array.of_list
            (List.filter_map
               (fun (s : Server.Dispatch.served) ->
                 if s.cls = cls then Some (Server.Dispatch.sojourn s) else None)
               d.served)
        in
        Array.sort compare sojourns;
        Printf.sprintf "%s:p99=%.0f"
          (Server.Policy.cls_label cls)
          (Server.Metrics.percentile sojourns 99.))
      [ Server.Policy.Paying; Server.Policy.Standard; Server.Policy.Suspect ]
  in
  Digest.to_hex
    (Digest.string
       (String.concat ";" served ^ "|" ^ String.concat ";" shed ^ "|"
      ^ String.concat ";" rejected ^ "|" ^ policy ^ "|"
      ^ String.concat ";" class_lat
      ^ Printf.sprintf "|peak=%d|mk=%.0f|deg=%d" d.peak_open d.makespan
          d.degraded))

let test_replay_identical_across_engines_and_widths () =
  (* the ISSUE's acceptance property: for 100+ roots, the full dispatch
     digest is identical on the reference engine at jobs=1, on the
     reference engine at jobs=8, and on the bytecode engine *)
  Sched.Pool.with_pool ~jobs:8 @@ fun pool ->
  let config =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 2;
      queue_capacity = 3;
      shard = 2;
    }
  in
  for root = 0 to 103 do
    let root = Int64.of_int root in
    let tenants = Server.Tenant.fleet ~apps:small_apps ~root () in
    let traffic =
      { Server.Traffic.default with sessions = 6; root; mean_gap = 40 }
    in
    let specs = Server.Traffic.generate traffic tenants in
    let seq_ref =
      dispatch_digest
        (Server.Dispatch.run ~backend:ref_backend ~config tenants specs)
    in
    let par_ref =
      dispatch_digest
        (Server.Dispatch.run ~pool ~backend:ref_backend ~config tenants specs)
    in
    let seq_bc =
      dispatch_digest
        (Server.Dispatch.run ~backend:bc_backend ~config tenants specs)
    in
    Alcotest.(check string)
      (Printf.sprintf "root %Ld: jobs=8 == jobs=1" root)
      seq_ref par_ref;
    Alcotest.(check string)
      (Printf.sprintf "root %Ld: bytecode == reference" root)
      seq_ref seq_bc
  done

let test_full_harness_report_identical () =
  (* the whole E15 report — tables and markdown — through Harness.Serve *)
  let config =
    {
      Harness.Serve.default with
      Harness.Serve.traffic =
        { Server.Traffic.default with sessions = 120; root = 11L };
    }
  in
  let render t = Harness.Serve.to_markdown t in
  let seq = render (Harness.Serve.run ~backend:ref_backend ~config ()) in
  let par =
    Sched.Pool.with_pool ~jobs:6 (fun pool ->
        render (Harness.Serve.run ~pool ~backend:ref_backend ~config ()))
  in
  let bc = render (Harness.Serve.run ~backend:bc_backend ~config ()) in
  Alcotest.(check string) "report identical at jobs=6" seq par;
  Alcotest.(check string) "report identical on bytecode" seq bc

(* ------------------------------------------------------------------ *)
(* Circuit breakers: transition boundaries in virtual time *)

let tight_breaker =
  {
    Server.Policy.failures = 2;
    base_backoff = 100.;
    factor = 2.;
    max_backoff = 1000.;
    max_trips = 2;
  }

let check_decision msg expected actual =
  let repr = function
    | Server.Policy.Admit -> "admit"
    | Server.Policy.Reject_backoff w -> Printf.sprintf "backoff:%.1f" w
    | Server.Policy.Reject_quarantine -> "quarantine"
  in
  Alcotest.(check string) msg (repr expected) (repr actual)

let test_breaker_open_half_open_quarantine () =
  let p =
    Server.Policy.create { Server.Policy.affinity = true; breaker = tight_breaker }
  in
  let c = 7 in
  check_decision "pristine client admits" Server.Policy.Admit
    (Server.Policy.decide p ~client:c ~now:0.);
  Alcotest.(check bool) "pristine client is not suspect" false
    (Server.Policy.suspect p ~client:c);
  (* one failure: still closed (threshold 2), but now suspect *)
  Server.Policy.observe p ~client:c ~now:10. ~failure:true;
  check_decision "one failure still admits" Server.Policy.Admit
    (Server.Policy.decide p ~client:c ~now:11.);
  Alcotest.(check bool) "failure history makes a suspect" true
    (Server.Policy.suspect p ~client:c);
  (* a success resets the consecutive-failure count *)
  Server.Policy.observe p ~client:c ~now:12. ~failure:false;
  Server.Policy.observe p ~client:c ~now:15. ~failure:true;
  check_decision "reset count: still closed" Server.Policy.Admit
    (Server.Policy.decide p ~client:c ~now:16.);
  (* second consecutive failure trips: open until 20 + 100 *)
  Server.Policy.observe p ~client:c ~now:20. ~failure:true;
  check_decision "open rejects with remaining backoff"
    (Server.Policy.Reject_backoff 100.)
    (Server.Policy.decide p ~client:c ~now:20.);
  check_decision "one cycle before the deadline still rejects"
    (Server.Policy.Reject_backoff 1.)
    (Server.Policy.decide p ~client:c ~now:119.);
  (* exactly at the deadline: the half-open probe is admitted *)
  check_decision "deadline boundary admits the probe" Server.Policy.Admit
    (Server.Policy.decide p ~client:c ~now:120.);
  (match Server.Policy.state_of p ~client:c with
  | Server.Policy.Half_open _ -> ()
  | _ -> Alcotest.fail "expected half-open after the probe admission");
  (* probe fails: re-open with doubled backoff (trip 2) *)
  Server.Policy.observe p ~client:c ~now:130. ~failure:true;
  check_decision "re-opened with doubled backoff"
    (Server.Policy.Reject_backoff 200.)
    (Server.Policy.decide p ~client:c ~now:130.);
  check_decision "second deadline admits again" Server.Policy.Admit
    (Server.Policy.decide p ~client:c ~now:330.);
  (* probe fails again: trip 3 > max_trips 2 -> quarantined for good *)
  Server.Policy.observe p ~client:c ~now:340. ~failure:true;
  check_decision "quarantined rejects forever"
    Server.Policy.Reject_quarantine
    (Server.Policy.decide p ~client:c ~now:1e9);
  let stats = Server.Policy.stats p in
  Alcotest.(check (list int)) "quarantine set" [ c ]
    stats.Server.Policy.quarantined;
  Alcotest.(check int) "two trips recorded" 2
    stats.Server.Policy.breaker_trips

let test_breaker_probe_success_closes () =
  let p =
    Server.Policy.create { Server.Policy.affinity = true; breaker = tight_breaker }
  in
  Server.Policy.observe p ~client:1 ~now:0. ~failure:true;
  Server.Policy.observe p ~client:1 ~now:5. ~failure:true;
  check_decision "tripped" (Server.Policy.Reject_backoff 95.)
    (Server.Policy.decide p ~client:1 ~now:10.);
  check_decision "probe admitted" Server.Policy.Admit
    (Server.Policy.decide p ~client:1 ~now:200.);
  Server.Policy.observe p ~client:1 ~now:210. ~failure:false;
  (match Server.Policy.state_of p ~client:1 with
  | Server.Policy.Closed 0 -> ()
  | _ -> Alcotest.fail "probe success must close the breaker");
  (* but the client keeps its suspect marking only while non-pristine:
     a closed breaker with zero failures is pristine again *)
  Alcotest.(check bool) "recovered client no longer suspect" false
    (Server.Policy.suspect p ~client:1)

let test_affinity_off_admits_everything () =
  let p =
    Server.Policy.create
      { Server.Policy.affinity = false; breaker = tight_breaker }
  in
  for i = 0 to 9 do
    Server.Policy.observe p ~client:0 ~now:(float_of_int i) ~failure:true;
    check_decision "anonymous fleet always admits" Server.Policy.Admit
      (Server.Policy.decide p ~client:0 ~now:(float_of_int i))
  done;
  Alcotest.(check int) "no state tracked" 0
    (Server.Policy.stats p).Server.Policy.clients_tracked

let test_brute_cost_imposes_backoff () =
  let crashed = Attacks.Verdict.Crashed "probe" in
  let verdicts = [ crashed; crashed; Attacks.Verdict.Success ] in
  let breaker = { tight_breaker with failures = 1; base_backoff = 50. } in
  let off =
    Server.Policy.brute_cost
      { Server.Policy.affinity = false; breaker }
      ~gap:10. verdicts
  in
  Alcotest.(check int) "off: every attempt admitted" 3
    off.Server.Policy.attempts;
  Alcotest.(check (option (float 1e-6))) "off: cost is attempts * gap"
    (Some 30.) off.Server.Policy.virtual_cost;
  Alcotest.(check (float 1e-6)) "off: no imposed delay" 0.
    off.Server.Policy.added_delay;
  let on =
    Server.Policy.brute_cost
      { Server.Policy.affinity = true; breaker }
      ~gap:10. verdicts
  in
  Alcotest.(check bool) "on: attacker still lands eventually" true
    on.Server.Policy.succeeded;
  (* crash at 10 opens until 60; wait 50; probe crashes at 70, opens
     until 170; wait 100; success at 180 *)
  Alcotest.(check (option (float 1e-6))) "on: cost includes the backoffs"
    (Some 180.) on.Server.Policy.virtual_cost;
  Alcotest.(check (float 1e-6)) "on: imposed delay accounted" 150.
    on.Server.Policy.added_delay;
  Alcotest.(check int) "on: two backoff waits" 2 on.Server.Policy.rejected

let test_brute_cost_quarantines_persistent_failures () =
  let crashed = Attacks.Verdict.Crashed "probe" in
  let breaker = { tight_breaker with failures = 1; max_trips = 1 } in
  let cost =
    Server.Policy.brute_cost
      { Server.Policy.affinity = true; breaker }
      ~gap:10.
      [ crashed; crashed; crashed; Attacks.Verdict.Success ]
  in
  Alcotest.(check bool) "never lands" false cost.Server.Policy.succeeded;
  Alcotest.(check (option int)) "quarantined after two admitted probes"
    (Some 2) cost.Server.Policy.quarantined_at;
  Alcotest.(check (option (float 1e-6))) "unreachable: no finite cost" None
    cost.Server.Policy.virtual_cost

(* ------------------------------------------------------------------ *)
(* Fault storms *)

let test_storm_deterministic_and_bounded () =
  let mk () = Fault.Storm.plan ~root:3L ~sessions:600 () in
  let s = mk () in
  Alcotest.(check bool) "storm replays" true (mk () = s);
  Alcotest.(check int) "three bursts" 3 (List.length s.Fault.Storm.bursts);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "burst within the schedule" true
        (a >= 0 && b <= 600 && a < b))
    s.Fault.Storm.bursts;
  ignore
    (List.fold_left
       (fun prev (a, b) ->
         Alcotest.(check bool) "bursts disjoint ascending" true (a >= prev);
         b)
       0 s.Fault.Storm.bursts);
  Alcotest.(check int) "burst coverage" (Fault.Storm.storm_sessions s)
    (List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 s.Fault.Storm.bursts);
  let inside, outside =
    List.partition (fun sid -> Fault.Storm.in_burst s sid)
      (List.init 600 Fun.id)
  in
  Alcotest.(check int) "in_burst agrees with coverage"
    (Fault.Storm.storm_sessions s)
    (List.length inside);
  List.iter
    (fun sid ->
      Alcotest.(check (pair int int)) "storm rates inside bursts" (35, 30)
        (Fault.Storm.rates_at s sid ~base:(12, 6)))
    inside;
  List.iter
    (fun sid ->
      Alcotest.(check (pair int int)) "base rates outside bursts" (12, 6)
        (Fault.Storm.rates_at s sid ~base:(12, 6)))
    outside

let test_storm_shifts_the_census () =
  let tenants = Server.Tenant.fleet ~apps:small_apps ~root:9L () in
  let base = { Server.Traffic.default with sessions = 400; root = 9L } in
  let storm =
    {
      base with
      Server.Traffic.storm =
        Some (Fault.Storm.plan ~root:9L ~sessions:400 ());
    }
  in
  let _, _, chaos_base =
    Server.Traffic.census (Server.Traffic.generate base tenants)
  in
  let _, _, chaos_storm =
    Server.Traffic.census (Server.Traffic.generate storm tenants)
  in
  Alcotest.(check bool)
    (Printf.sprintf "storm inflates chaos (%d -> %d)" chaos_base chaos_storm)
    true
    (chaos_storm > chaos_base)

let test_client_identity_is_stable () =
  let tenants = Server.Tenant.fleet ~apps:small_apps ~root:21L () in
  let config =
    { Server.Traffic.default with sessions = 300; root = 21L; attackers = 3 }
  in
  let specs = Server.Traffic.generate config tenants in
  (* attack sessions come from the attacker pool, everyone else from the
     general population; the paying bit is a function of the client *)
  let tiers = Hashtbl.create 16 in
  List.iter
    (fun (s : Server.Session.spec) ->
      (match s.Server.Session.kind with
      | Server.Session.Attack _ ->
          Alcotest.(check bool) "attacks from the attacker pool" true
            (s.Server.Session.client < 3)
      | _ ->
          Alcotest.(check bool) "benign/chaos from the population" true
            (s.Server.Session.client >= 3
            && s.Server.Session.client < config.Server.Traffic.clients));
      match Hashtbl.find_opt tiers s.Server.Session.client with
      | None -> Hashtbl.add tiers s.Server.Session.client s.Server.Session.paying
      | Some paying ->
          Alcotest.(check bool) "paying bit stable per client" paying
            s.Server.Session.paying)
    specs;
  Alcotest.(check bool) "some paying clients exist" true
    (Hashtbl.fold (fun _ p acc -> acc || p) tiers false)

(* ------------------------------------------------------------------ *)
(* The admission simulator, driven directly with synthetic outcomes *)

let synth_tenant =
  lazy (List.hd (Server.Tenant.fleet ~apps:small_apps ~root:1L ()))

let mk_outcome ~sid ~client ~paying ~arrival ~svc ~verdict =
  {
    Server.Session.spec =
      {
        Server.Session.sid;
        tenant = Lazy.force synth_tenant;
        kind = Server.Session.Benign [ "x" ];
        client;
        paying;
        sseed = 0L;
        arrival;
      };
    verdict;
    service_cycles = svc;
    requests = 1;
    fired = 0;
    batch_match = None;
  }

let ok = Attacks.Verdict.No_effect
let crash = Attacks.Verdict.Crashed "synthetic"

let test_wfq_sheds_by_class () =
  (* 1 worker, queue of 1: a paying arrival finding the queue full must
     evict the queued standard session instead of being refused *)
  let cfg =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 1;
      queue_capacity = 1;
      discipline = Server.Dispatch.Wfq;
    }
  in
  let outcomes =
    [
      mk_outcome ~sid:0 ~client:10 ~paying:false ~arrival:0. ~svc:100.
        ~verdict:ok;
      mk_outcome ~sid:1 ~client:11 ~paying:false ~arrival:1. ~svc:100.
        ~verdict:ok;
      mk_outcome ~sid:2 ~client:12 ~paying:true ~arrival:2. ~svc:100.
        ~verdict:ok;
      mk_outcome ~sid:3 ~client:13 ~paying:false ~arrival:3. ~svc:100.
        ~verdict:ok;
    ]
  in
  let d = Server.Dispatch.admit cfg outcomes in
  let sids l = List.map (fun (s : Server.Dispatch.served) ->
      s.outcome.Server.Session.spec.Server.Session.sid) l in
  Alcotest.(check (list int)) "sid 0 served, paying sid 2 took the slot"
    [ 0; 2 ] (sids d.Server.Dispatch.served);
  Alcotest.(check (list int)) "standard sids 1 and 3 shed" [ 1; 3 ]
    (List.map
       (fun ((o : Server.Session.outcome), _) ->
         o.Server.Session.spec.Server.Session.sid)
       d.Server.Dispatch.shed);
  let paying_served =
    List.find
      (fun (s : Server.Dispatch.served) ->
        s.outcome.Server.Session.spec.Server.Session.sid = 2)
      d.Server.Dispatch.served
  in
  Alcotest.(check (float 1e-6)) "queued paying starts when the worker frees"
    100. paying_served.Server.Dispatch.start;
  Alcotest.(check string) "classified paying" "paying"
    (Server.Policy.cls_label paying_served.Server.Dispatch.cls)

let test_fcfs_sheds_blindly () =
  let cfg =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 1;
      queue_capacity = 1;
    }
  in
  let outcomes =
    [
      mk_outcome ~sid:0 ~client:10 ~paying:false ~arrival:0. ~svc:100.
        ~verdict:ok;
      mk_outcome ~sid:1 ~client:11 ~paying:false ~arrival:1. ~svc:100.
        ~verdict:ok;
      mk_outcome ~sid:2 ~client:12 ~paying:true ~arrival:2. ~svc:100.
        ~verdict:ok;
    ]
  in
  let d = Server.Dispatch.admit cfg outcomes in
  (* under FCFS the paying arrival is shed like anyone else *)
  Alcotest.(check (list int)) "paying shed under FCFS" [ 2 ]
    (List.map
       (fun ((o : Server.Session.outcome), _) ->
         o.Server.Session.spec.Server.Session.sid)
       d.Server.Dispatch.shed)

let test_breakers_reject_through_dispatch () =
  let cfg =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 4;
      policy =
        Some
          {
            Server.Policy.affinity = true;
            breaker =
              {
                Server.Policy.failures = 1;
                base_backoff = 1000.;
                factor = 2.;
                max_backoff = 1e6;
                max_trips = 1;
              };
          };
    }
  in
  let outcomes =
    [
      (* client 0 crashes at finish=10: breaker opens until 1010 *)
      mk_outcome ~sid:0 ~client:0 ~paying:false ~arrival:0. ~svc:10.
        ~verdict:crash;
      (* inside the backoff window: rejected without reaching the queue *)
      mk_outcome ~sid:1 ~client:0 ~paying:false ~arrival:100. ~svc:10.
        ~verdict:ok;
      (* past the deadline: half-open probe admitted, crashes again ->
         trip 2 > max_trips 1 -> quarantined *)
      mk_outcome ~sid:2 ~client:0 ~paying:false ~arrival:2000. ~svc:10.
        ~verdict:crash;
      mk_outcome ~sid:3 ~client:0 ~paying:false ~arrival:3000. ~svc:10.
        ~verdict:ok;
      (* an unrelated client sails through *)
      mk_outcome ~sid:4 ~client:9 ~paying:false ~arrival:3100. ~svc:10.
        ~verdict:ok;
    ]
  in
  let d = Server.Dispatch.admit cfg outcomes in
  Alcotest.(check (list (pair int string))) "breaker walk through dispatch"
    [ (1, "backoff"); (3, "quarantine") ]
    (List.map
       (fun ((o : Server.Session.outcome), r) ->
         ( o.Server.Session.spec.Server.Session.sid,
           Server.Dispatch.refusal_label r ))
       d.Server.Dispatch.rejected);
  (match d.Server.Dispatch.policy with
  | Some p ->
      Alcotest.(check (list int)) "client 0 quarantined" [ 0 ]
        p.Server.Policy.quarantined
  | None -> Alcotest.fail "policy stats expected");
  (* the probe (sid 2) was admitted and served as a suspect *)
  let probe =
    List.find
      (fun (s : Server.Dispatch.served) ->
        s.outcome.Server.Session.spec.Server.Session.sid = 2)
      d.Server.Dispatch.served
  in
  Alcotest.(check string) "probe classified suspect" "suspect"
    (Server.Policy.cls_label probe.Server.Dispatch.cls);
  let summary = Server.Metrics.of_dispatch d in
  Alcotest.(check int) "summary counts rejections" 2
    summary.Server.Metrics.rejected;
  Alcotest.(check int) "sessions = served + shed + rejected + dropped"
    summary.Server.Metrics.sessions
    (summary.Server.Metrics.served + summary.Server.Metrics.shed
   + summary.Server.Metrics.rejected + summary.Server.Metrics.dropped)

let test_degradation_starves_suspects () =
  let cfg =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 1;
      queue_capacity = 8;
      discipline = Server.Dispatch.Wfq;
      policy = Some { Server.Policy.default with Server.Policy.affinity = true };
      degradation =
        Some
          { Server.Dispatch.window = 10_000.; storm_failures = 2; reserve = 0.5 };
    }
  in
  (* two early chaos crashes put the fleet in degraded mode; client 5
     has one failure (suspect, breaker still closed at threshold 2);
     its next arrival finds the worker busy and, degraded, is shed
     rather than queued *)
  let outcomes =
    [
      mk_outcome ~sid:0 ~client:20 ~paying:false ~arrival:0. ~svc:10.
        ~verdict:crash;
      mk_outcome ~sid:1 ~client:21 ~paying:false ~arrival:20. ~svc:10.
        ~verdict:crash;
      mk_outcome ~sid:2 ~client:5 ~paying:false ~arrival:40. ~svc:10.
        ~verdict:crash;
      mk_outcome ~sid:3 ~client:22 ~paying:false ~arrival:60. ~svc:500.
        ~verdict:ok;
      mk_outcome ~sid:4 ~client:5 ~paying:false ~arrival:70. ~svc:10.
        ~verdict:ok;
      mk_outcome ~sid:5 ~client:23 ~paying:true ~arrival:80. ~svc:10.
        ~verdict:ok;
    ]
  in
  let d = Server.Dispatch.admit cfg outcomes in
  Alcotest.(check bool) "degraded mode engaged" true
    (d.Server.Dispatch.degraded > 0);
  let shed_sids =
    List.map
      (fun ((o : Server.Session.outcome), _) ->
        o.Server.Session.spec.Server.Session.sid)
      d.Server.Dispatch.shed
  in
  Alcotest.(check bool) "suspect arrival shed while degraded" true
    (List.mem 4 shed_sids);
  Alcotest.(check bool) "paying arrival still queued" false
    (List.mem 5 shed_sids)

(* ------------------------------------------------------------------ *)
(* Policy determinism: engines x widths over 100+ roots *)

let test_policy_replay_identical_across_engines_and_widths () =
  (* same shape as the legacy 104-root property, but with the full
     control plane on: breakers, WFQ classes, degradation, storm.  The
     digest covers breaker counters, quarantine sets, rejections and
     per-class latencies. *)
  Sched.Pool.with_pool ~jobs:8 @@ fun pool ->
  let config =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 2;
      queue_capacity = 3;
      shard = 2;
      discipline = Server.Dispatch.Wfq;
      policy =
        Some
          {
            Server.Policy.affinity = true;
            breaker =
              {
                Server.Policy.default_breaker with
                Server.Policy.failures = 1;
                base_backoff = 500.;
                max_trips = 1;
              };
          };
      degradation =
        Some
          { Server.Dispatch.window = 5_000.; storm_failures = 2; reserve = 0.5 };
    }
  in
  for root = 0 to 103 do
    let root = Int64.of_int root in
    let tenants = Server.Tenant.fleet ~apps:small_apps ~root () in
    let traffic =
      {
        Server.Traffic.default with
        sessions = 8;
        root;
        mean_gap = 40;
        attackers = 2;
        clients = 8;
        attack_pct = 30;
        chaos_pct = 20;
        storm = Some (Fault.Storm.plan ~root ~sessions:8 ~burst_len:3 ());
      }
    in
    let specs = Server.Traffic.generate traffic tenants in
    let seq_ref =
      dispatch_digest
        (Server.Dispatch.run ~backend:ref_backend ~config tenants specs)
    in
    let par_ref =
      dispatch_digest
        (Server.Dispatch.run ~pool ~backend:ref_backend ~config tenants specs)
    in
    let seq_bc =
      dispatch_digest
        (Server.Dispatch.run ~backend:bc_backend ~config tenants specs)
    in
    Alcotest.(check string)
      (Printf.sprintf "root %Ld: policy digest jobs=8 == jobs=1" root)
      seq_ref par_ref;
    Alcotest.(check string)
      (Printf.sprintf "root %Ld: policy digest bytecode == reference" root)
      seq_ref seq_bc
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "traffic",
        [
          Alcotest.test_case "replays over 120 roots" `Quick
            test_traffic_replays_over_100_roots;
          Alcotest.test_case "schedule shape" `Quick test_traffic_shape;
        ] );
      ( "queue",
        [
          Alcotest.test_case "invariants" `Quick test_queue_invariants;
          Alcotest.test_case "backpressure sheds" `Quick
            test_backpressure_sheds_under_overload;
        ] );
      ( "security",
        [
          Alcotest.test_case "batch verdicts reproduced" `Quick
            test_served_attacks_match_batch_verdicts;
          Alcotest.test_case "summary accounting" `Quick
            test_summary_accounting;
        ] );
      ( "policy",
        [
          Alcotest.test_case "breaker open/half-open/quarantine" `Quick
            test_breaker_open_half_open_quarantine;
          Alcotest.test_case "half-open probe success closes" `Quick
            test_breaker_probe_success_closes;
          Alcotest.test_case "affinity off admits everything" `Quick
            test_affinity_off_admits_everything;
          Alcotest.test_case "brute cost imposes backoff" `Quick
            test_brute_cost_imposes_backoff;
          Alcotest.test_case "brute cost quarantines" `Quick
            test_brute_cost_quarantines_persistent_failures;
        ] );
      ( "storm",
        [
          Alcotest.test_case "deterministic, bounded windows" `Quick
            test_storm_deterministic_and_bounded;
          Alcotest.test_case "census shift" `Quick test_storm_shifts_the_census;
          Alcotest.test_case "client identity stable" `Quick
            test_client_identity_is_stable;
        ] );
      ( "control-plane",
        [
          Alcotest.test_case "wfq sheds by class" `Quick
            test_wfq_sheds_by_class;
          Alcotest.test_case "fcfs sheds blindly" `Quick
            test_fcfs_sheds_blindly;
          Alcotest.test_case "breakers reject through dispatch" `Quick
            test_breakers_reject_through_dispatch;
          Alcotest.test_case "degradation starves suspects" `Quick
            test_degradation_starves_suspects;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "104 roots, engines x widths" `Quick
            test_replay_identical_across_engines_and_widths;
          Alcotest.test_case "104 roots, policy control plane" `Quick
            test_policy_replay_identical_across_engines_and_widths;
          Alcotest.test_case "full E15 report" `Quick
            test_full_harness_report_identical;
        ] );
    ]
