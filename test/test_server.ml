(* Tests for the multi-tenant server runtime (lib/server): traffic
   determinism, the virtual-time admission queue, the security ledger
   (served attack verdicts must reproduce the batch harness's), and the
   property the subsystem exists for — reports byte-identical across
   pool widths and engines, checked over 100+ roots. *)

let ref_backend = Machine.Backend.reference
let bc_backend = Engine.Backend.backend

(* A small, cheap fleet for the many-seed property tests: hardening two
   synthetic apps per run keeps 100 roots affordable. *)
let small_apps =
  List.map
    (fun n -> Option.get (Apps.Sessions.find n))
    [ "synth-stack-direct"; "synth-data-indirect" ]

(* ------------------------------------------------------------------ *)
(* Traffic generation *)

let kind_repr = function
  | Server.Session.Benign chunks -> "b:" ^ String.concat "," chunks
  | Server.Session.Attack name -> "a:" ^ name
  | Server.Session.Chaotic (chunks, plan) ->
      Printf.sprintf "c:%s@%s" (String.concat "," chunks)
        (Fault.Plan.to_spec plan)

let spec_repr (s : Server.Session.spec) =
  Printf.sprintf "%d|%s|%s|%Ld|%.0f" s.sid s.tenant.Server.Tenant.name
    (kind_repr s.kind) s.sseed s.arrival

let schedule_digest specs =
  Digest.to_hex (Digest.string (String.concat ";" (List.map spec_repr specs)))

let test_traffic_replays_over_100_roots () =
  for root = 0 to 119 do
    let root = Int64.of_int root in
    let tenants = Server.Tenant.fleet ~root () in
    let config = { Server.Traffic.default with sessions = 40; root } in
    let a = schedule_digest (Server.Traffic.generate config tenants) in
    let b = schedule_digest (Server.Traffic.generate config tenants) in
    Alcotest.(check string)
      (Printf.sprintf "schedule replays for root %Ld" root)
      a b
  done

let test_traffic_shape () =
  let tenants = Server.Tenant.fleet ~root:7L () in
  let config = { Server.Traffic.default with sessions = 400; root = 7L } in
  let specs = Server.Traffic.generate config tenants in
  Alcotest.(check int) "schedule length" 400 (List.length specs);
  (* sids dense and arrivals monotone: the schedule is in arrival order *)
  List.iteri
    (fun i (s : Server.Session.spec) ->
      Alcotest.(check int) "dense sid" i s.sid)
    specs;
  ignore
    (List.fold_left
       (fun prev (s : Server.Session.spec) ->
         Alcotest.(check bool) "arrivals strictly increase" true
           (s.Server.Session.arrival > prev);
         s.Server.Session.arrival)
       (-1.) specs);
  let benign, attack, chaos = Server.Traffic.census specs in
  Alcotest.(check int) "census sums to the schedule" 400
    (benign + attack + chaos);
  (* the mix follows the percentages, loosely (it is a random draw) *)
  Alcotest.(check bool) "attack share near 12%" true
    (attack > 20 && attack < 80);
  Alcotest.(check bool) "chaos share near 6%" true (chaos > 5 && chaos < 50);
  (* every attack name resolves in the session registry *)
  List.iter
    (fun (s : Server.Session.spec) ->
      match s.kind with
      | Server.Session.Attack name ->
          Alcotest.(check bool)
            (Printf.sprintf "attack %s is registered" name)
            true
            (Option.is_some (Apps.Sessions.find_attack name))
      | _ -> ())
    specs

(* ------------------------------------------------------------------ *)
(* The admission queue *)

let dispatch_once ?(queue_capacity = 1024) ?(virtual_workers = 16) ~root
    ~sessions () =
  let tenants = Server.Tenant.fleet ~apps:small_apps ~root () in
  let traffic =
    { Server.Traffic.default with sessions; root; mean_gap = 60 }
  in
  let specs = Server.Traffic.generate traffic tenants in
  let config =
    {
      Server.Dispatch.default with
      Server.Dispatch.queue_capacity;
      virtual_workers;
      shard = 4;
    }
  in
  (specs, Server.Dispatch.run ~config tenants specs)

let test_queue_invariants () =
  let specs, d = dispatch_once ~root:3L ~sessions:60 () in
  Alcotest.(check int) "nothing lost" (List.length specs)
    (List.length d.Server.Dispatch.served
    + List.length d.Server.Dispatch.shed
    + List.length d.Server.Dispatch.dropped);
  Alcotest.(check int) "nothing dropped without supervision" 0
    (List.length d.Server.Dispatch.dropped);
  List.iter
    (fun (s : Server.Dispatch.served) ->
      let arrival = s.outcome.Server.Session.spec.Server.Session.arrival in
      Alcotest.(check bool) "start after arrival" true (s.start >= arrival);
      Alcotest.(check bool) "wait non-negative" true
        (Server.Dispatch.wait s >= 0.);
      Alcotest.(check (float 1e-6)) "finish = start + service"
        (s.start +. s.outcome.Server.Session.service_cycles)
        s.finish;
      Alcotest.(check bool) "sojourn covers the wait" true
        (Server.Dispatch.sojourn s >= Server.Dispatch.wait s))
    d.Server.Dispatch.served;
  Alcotest.(check bool) "makespan is the last finish" true
    (List.for_all
       (fun (s : Server.Dispatch.served) ->
         s.finish <= d.Server.Dispatch.makespan)
       d.Server.Dispatch.served)

let test_backpressure_sheds_under_overload () =
  (* one handler, a two-deep queue, bursty arrivals: must shed *)
  let _, tight =
    dispatch_once ~queue_capacity:2 ~virtual_workers:1 ~root:3L ~sessions:60 ()
  in
  Alcotest.(check bool) "tight queue sheds" true
    (List.length tight.Server.Dispatch.shed > 0);
  Alcotest.(check bool) "peak open bounded by capacity + workers" true
    (tight.Server.Dispatch.peak_open <= 2 + 1);
  (* an effectively unbounded queue never sheds the same schedule *)
  let _, wide =
    dispatch_once ~queue_capacity:100_000 ~virtual_workers:1 ~root:3L
      ~sessions:60 ()
  in
  Alcotest.(check int) "unbounded queue sheds nothing" 0
    (List.length wide.Server.Dispatch.shed)

(* ------------------------------------------------------------------ *)
(* The security ledger *)

let test_served_attacks_match_batch_verdicts () =
  let tenants = Server.Tenant.fleet ~root:11L () in
  let traffic =
    { Server.Traffic.default with sessions = 150; root = 11L }
  in
  let specs = Server.Traffic.generate traffic tenants in
  let d = Server.Dispatch.run tenants specs in
  let summary = Server.Metrics.of_dispatch d in
  Alcotest.(check bool) "schedule contains attacks" true
    (summary.Server.Metrics.attack_sessions > 0);
  Alcotest.(check int) "every executed attack is checked"
    summary.Server.Metrics.attack_sessions
    summary.Server.Metrics.batch_checked;
  Alcotest.(check int) "zero batch-verdict mismatches" 0
    summary.Server.Metrics.batch_mismatches;
  let outcomes =
    List.map (fun (s : Server.Dispatch.served) -> s.outcome)
      d.Server.Dispatch.served
    @ d.Server.Dispatch.shed
  in
  List.iter
    (fun (o : Server.Session.outcome) ->
      match (o.spec.Server.Session.kind, o.batch_match) with
      | Server.Session.Attack _, Some true -> ()
      | Server.Session.Attack name, _ ->
          Alcotest.failf "attack %s diverged from its batch verdict" name
      | _, None -> ()
      | _, Some _ ->
          Alcotest.fail "non-attack sessions have no batch verdict")
    outcomes

let test_summary_accounting () =
  let tenants = Server.Tenant.fleet ~apps:small_apps ~root:5L () in
  let traffic = { Server.Traffic.default with sessions = 80; root = 5L } in
  let specs = Server.Traffic.generate traffic tenants in
  let d = Server.Dispatch.run tenants specs in
  let s = Server.Metrics.of_dispatch d in
  Alcotest.(check int) "sessions = served + shed + dropped"
    s.Server.Metrics.sessions
    (s.Server.Metrics.served + s.Server.Metrics.shed
   + s.Server.Metrics.dropped);
  Alcotest.(check int) "kinds partition the executed sessions"
    (s.Server.Metrics.served + s.Server.Metrics.shed)
    (s.Server.Metrics.benign + s.Server.Metrics.attacks
   + s.Server.Metrics.chaos);
  Alcotest.(check bool) "latency percentiles are ordered" true
    (s.Server.Metrics.p50 <= s.Server.Metrics.p95
    && s.Server.Metrics.p95 <= s.Server.Metrics.p99);
  Alcotest.(check bool) "detections bounded by attacks" true
    (s.Server.Metrics.detected <= s.Server.Metrics.attack_sessions)

(* ------------------------------------------------------------------ *)
(* Byte-identity: engines x pool widths, 100+ roots *)

let outcome_repr (o : Server.Session.outcome) =
  Printf.sprintf "%d:%s:%.0f:%d:%d:%s"
    o.spec.Server.Session.sid
    (Attacks.Verdict.to_string o.verdict)
    o.Server.Session.service_cycles o.requests o.fired
    (match o.batch_match with
    | None -> "-"
    | Some b -> string_of_bool b)

let dispatch_digest (d : Server.Dispatch.t) =
  let served =
    List.map
      (fun (s : Server.Dispatch.served) ->
        Printf.sprintf "%s@%.0f-%.0f" (outcome_repr s.outcome) s.start
          s.finish)
      d.served
  in
  let shed = List.map outcome_repr d.shed in
  Digest.to_hex
    (Digest.string
       (String.concat ";" served ^ "|" ^ String.concat ";" shed
      ^ Printf.sprintf "|peak=%d|mk=%.0f" d.peak_open d.makespan))

let test_replay_identical_across_engines_and_widths () =
  (* the ISSUE's acceptance property: for 100+ roots, the full dispatch
     digest is identical on the reference engine at jobs=1, on the
     reference engine at jobs=8, and on the bytecode engine *)
  Sched.Pool.with_pool ~jobs:8 @@ fun pool ->
  let config =
    {
      Server.Dispatch.default with
      Server.Dispatch.virtual_workers = 2;
      queue_capacity = 3;
      shard = 2;
    }
  in
  for root = 0 to 103 do
    let root = Int64.of_int root in
    let tenants = Server.Tenant.fleet ~apps:small_apps ~root () in
    let traffic =
      { Server.Traffic.default with sessions = 6; root; mean_gap = 40 }
    in
    let specs = Server.Traffic.generate traffic tenants in
    let seq_ref =
      dispatch_digest
        (Server.Dispatch.run ~backend:ref_backend ~config tenants specs)
    in
    let par_ref =
      dispatch_digest
        (Server.Dispatch.run ~pool ~backend:ref_backend ~config tenants specs)
    in
    let seq_bc =
      dispatch_digest
        (Server.Dispatch.run ~backend:bc_backend ~config tenants specs)
    in
    Alcotest.(check string)
      (Printf.sprintf "root %Ld: jobs=8 == jobs=1" root)
      seq_ref par_ref;
    Alcotest.(check string)
      (Printf.sprintf "root %Ld: bytecode == reference" root)
      seq_ref seq_bc
  done

let test_full_harness_report_identical () =
  (* the whole E15 report — tables and markdown — through Harness.Serve *)
  let config =
    {
      Harness.Serve.default with
      Harness.Serve.traffic =
        { Server.Traffic.default with sessions = 120; root = 11L };
    }
  in
  let render t = Harness.Serve.to_markdown t in
  let seq = render (Harness.Serve.run ~backend:ref_backend ~config ()) in
  let par =
    Sched.Pool.with_pool ~jobs:6 (fun pool ->
        render (Harness.Serve.run ~pool ~backend:ref_backend ~config ()))
  in
  let bc = render (Harness.Serve.run ~backend:bc_backend ~config ()) in
  Alcotest.(check string) "report identical at jobs=6" seq par;
  Alcotest.(check string) "report identical on bytecode" seq bc

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "traffic",
        [
          Alcotest.test_case "replays over 120 roots" `Quick
            test_traffic_replays_over_100_roots;
          Alcotest.test_case "schedule shape" `Quick test_traffic_shape;
        ] );
      ( "queue",
        [
          Alcotest.test_case "invariants" `Quick test_queue_invariants;
          Alcotest.test_case "backpressure sheds" `Quick
            test_backpressure_sheds_under_overload;
        ] );
      ( "security",
        [
          Alcotest.test_case "batch verdicts reproduced" `Quick
            test_served_attacks_match_batch_verdicts;
          Alcotest.test_case "summary accounting" `Quick
            test_summary_accounting;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "104 roots, engines x widths" `Quick
            test_replay_identical_across_engines_and_widths;
          Alcotest.test_case "full E15 report" `Quick
            test_full_harness_report_identical;
        ] );
    ]
