(* Tier-1 tests for the bytecode execution engine (lib/engine) and the
   cycle cost model it must reproduce exactly.

   The engine's contract is bit-identity with Machine.Exec.run on every
   observable — outcome, output, float cycle count (order-sensitive
   additions!), instruction/call counts, depth/frame/RSS accounting and
   trace events.  These tests check the contract three ways: direct
   cost arithmetic on hand-built IR, targeted parity cases for every
   divergence-prone path (faults, traps, fuel, detection, laziness),
   and seeded differential fuzzing plus the full application matrix via
   Harness.Diffval. *)

let ref_backend = Machine.Backend.reference
let bc_backend = Engine.Backend.backend
let both = [ ("reference", ref_backend); ("bytecode", bc_backend) ]

let compile = Minic.Driver.compile

let run_both ?fuel ?(input = "") src =
  let prog = compile src in
  List.map
    (fun (label, (b : Machine.Backend.t)) ->
      let st = Machine.Exec.prepare prog in
      Machine.Exec.set_input st (Machine.Exec.input_string input);
      (label, b.run ?fuel st))
    both

let check_identical what results =
  match results with
  | (_, r1) :: rest ->
      List.iter
        (fun (label, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s matches reference" what label)
            true (r = r1))
        rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Cost model invariants *)

let test_cost_rng_aes_endpoints () =
  Alcotest.(check (float 0.))
    "AES-1 matches Table I" 19.2
    (Machine.Cost.rng_aes ~rounds:1);
  Alcotest.(check (float 0.))
    "AES-10 matches Table I" 92.8
    (Machine.Cost.rng_aes ~rounds:10);
  Alcotest.(check (float 0.)) "rng_aes1 endpoint" Machine.Cost.rng_aes1
    (Machine.Cost.rng_aes ~rounds:1);
  Alcotest.(check (float 0.)) "rng_aes10 endpoint" Machine.Cost.rng_aes10
    (Machine.Cost.rng_aes ~rounds:10)

let test_cost_rng_aes_bounds () =
  List.iter
    (fun rounds ->
      match Machine.Cost.rng_aes ~rounds with
      | _ -> Alcotest.failf "rounds=%d should be rejected" rounds
      | exception Invalid_argument _ -> ())
    [ 0; 11; -1 ]

let test_cost_rng_monotonic () =
  for rounds = 2 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "rng_aes %d > rng_aes %d" rounds (rounds - 1))
      true
      (Machine.Cost.rng_aes ~rounds > Machine.Cost.rng_aes ~rounds:(rounds - 1))
  done;
  Alcotest.(check bool)
    "pseudo < AES-1 < AES-10 < RDRAND" true
    (Machine.Cost.rng_pseudo < Machine.Cost.rng_aes1
    && Machine.Cost.rng_aes1 < Machine.Cost.rng_aes10
    && Machine.Cost.rng_aes10 < Machine.Cost.rng_rdrand)

let test_cost_structure () =
  let open Machine.Cost in
  List.iter
    (fun (name, c) ->
      Alcotest.(check bool) (name ^ " positive") true (c > 0.))
    [
      ("alu", alu); ("div", div); ("load", load); ("load_rodata", load_rodata);
      ("store", store); ("alloca", alloca); ("branch", branch);
      ("cond_branch", cond_branch); ("call_overhead", call_overhead);
      ("intrinsic_base", intrinsic_base); ("syscall", syscall);
    ];
  Alcotest.(check bool) "div dominates alu (P-BOX pow2 payoff)" true (div > alu);
  Alcotest.(check bool) "rodata loads are cache-friendly" true
    (load_rodata < load)

(* Exact per-instruction charges, on hand-built IR so no compiler pass
   can change the instruction mix under the test.  Both engines must
   produce the same hand-computed total. *)
let straightline_prog () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let x = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Imm 40L) (Ir.Instr.Imm 2L) in
  let q =
    Ir.Builder.binop b Ir.Instr.Sdiv (Ir.Instr.Reg x) (Ir.Instr.Imm 7L)
  in
  let c =
    Ir.Builder.icmp b Ir.Instr.Sgt (Ir.Instr.Reg q) (Ir.Instr.Imm 0L)
  in
  let s =
    Ir.Builder.select b (Ir.Instr.Reg c) (Ir.Instr.Reg q) (Ir.Instr.Imm 0L)
  in
  let a = Ir.Builder.alloca b Ir.Ty.I64 in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Reg s) ~addr:(Ir.Instr.Reg a);
  let l = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg a) in
  let g = Ir.Builder.gep b (Ir.Instr.Reg a) ~offset:0 in
  let _ = Ir.Builder.sext b ~width:4 (Ir.Instr.Reg l) in
  let _ = Ir.Builder.trunc b ~width:4 (Ir.Instr.Reg g) in
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  Ir.Prog.add_func prog f;
  prog

let straightline_cycles =
  let open Machine.Cost in
  call_overhead +. alu +. div +. alu +. alu +. alloca +. store +. load +. alu
  +. alu +. alu +. branch

let test_cost_per_instruction_charges () =
  let prog = straightline_prog () in
  List.iter
    (fun (label, (b : Machine.Backend.t)) ->
      let st = Machine.Exec.prepare prog in
      let outcome, stats = b.run st in
      Alcotest.(check bool) (label ^ ": exits") true
        (outcome = Machine.Exec.Exit 0L);
      Alcotest.(check (float 0.))
        (label ^ ": hand-computed cycle total")
        straightline_cycles stats.cycles;
      Alcotest.(check int) (label ^ ": instr count") 10 stats.instr_count)
    both

(* ------------------------------------------------------------------ *)
(* Targeted engine parity: every divergence-prone path *)

let test_parity_outputs_and_stats () =
  check_identical "fib+output"
    (run_both
       {|
int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
int main() { print_int(fib(18)); return 0; }
|})

let test_parity_fuel_exhaustion () =
  let results =
    run_both ~fuel:500 {| int main() { while (1) { } return 0; } |}
  in
  List.iter
    (fun (label, (o, _)) ->
      Alcotest.(check bool) (label ^ ": fuel exhausted") true
        (o = Machine.Exec.Fuel_exhausted))
    results;
  check_identical "fuel exhaustion" results

let test_parity_memory_fault () =
  let results =
    run_both {| int main() { int *p; p = 0; return *p; } |}
  in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Fault { fault = Machine.Memory.Null_dereference; _ } -> ()
      | o ->
          Alcotest.failf "%s: expected null-deref fault, got %s" label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "null deref" results

(* The structured fault-path contract both backends must share: a bad
   access produces a [Fault] outcome — never an OCaml exception — with
   the same fault payload on both engines. *)

let test_parity_rodata_write () =
  (* the string literal populates the rodata segment; 65536 is
     [Machine.Exec.rodata_base] *)
  let results =
    run_both
      {| int main() { int *p; print_str("ro"); p = (int*)65536; *p = 7; return 0; } |}
  in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Fault
          { fault = Machine.Memory.Write_protected { addr = 65536 }; _ } ->
          ()
      | o ->
          Alcotest.failf "%s: expected write-protected fault, got %s" label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "rodata write" results

let test_parity_unmapped_access () =
  (* 0x8000 lies between the function-token page and rodata: no
     segment maps it *)
  let results = run_both {| int main() { int *p; p = (int*)32768; return *p; } |} in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Fault { fault = Machine.Memory.Out_of_bounds _; _ } -> ()
      | o ->
          Alcotest.failf "%s: expected out-of-bounds fault, got %s" label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "unmapped access" results

let test_parity_straddling_load () =
  (* 0xCFFFFE is 2 bytes below the stack region's top: a 4-byte load
     starts mapped but runs off the end of the segment *)
  let results =
    run_both {| int main() { int *p; p = (int*)13631486; return *p; } |}
  in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Fault
          { fault = Machine.Memory.Out_of_bounds { addr = 13631486; size = 4; _ }; _ }
        ->
          ()
      | o ->
          Alcotest.failf "%s: expected straddling out-of-bounds fault, got %s"
            label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "straddling load" results

let test_parity_stack_overflow () =
  check_identical "stack overflow"
    (run_both
       {|
int deep(int n) { int pad[64]; pad[0] = n; return deep(n + pad[0] - n + 1); }
int main() { return deep(0); }
|})

let test_parity_vla_out_of_range () =
  check_identical "VLA out of range"
    (run_both
       {|
int main() { int n; int buf[n]; n = 0 - 5; buf[0] = n; return buf[0]; }
|})

(* An unknown direct callee must fault only when the call executes, and
   with the reference's message. *)
let unknown_callee_prog () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let c = Ir.Builder.icmp b Ir.Instr.Eq (Ir.Instr.Imm 1L) (Ir.Instr.Imm 1L) in
  Ir.Builder.cond_br b (Ir.Instr.Reg c) ~if_true:"good" ~if_false:"bad";
  let _ = Ir.Builder.start_block b "good" in
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  let _ = Ir.Builder.start_block b "bad" in
  let _ = Ir.Builder.call b "no_such_function" [] in
  Ir.Builder.ret b (Some (Ir.Instr.Imm 1L));
  Ir.Prog.add_func prog f;
  prog

let test_parity_unknown_callee_lazy () =
  (* not executed: both engines must succeed *)
  let prog = unknown_callee_prog () in
  List.iter
    (fun (label, (b : Machine.Backend.t)) ->
      let st = Machine.Exec.prepare prog in
      let outcome, _ = b.run st in
      Alcotest.(check bool)
        (label ^ ": dead unknown callee is harmless")
        true
        (outcome = Machine.Exec.Exit 0L))
    both

let test_parity_indirect_call_garbage () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let _ = Ir.Builder.call_ind b (Ir.Instr.Imm 12345L) [ Ir.Instr.Imm 1L ] in
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  Ir.Prog.add_func prog f;
  let results =
    List.map
      (fun (label, (bk : Machine.Backend.t)) ->
        (label, bk.run (Machine.Exec.prepare prog)))
      both
  in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Fault { fault = Machine.Memory.Misc m; _ } ->
          Alcotest.(check string)
            (label ^ ": non-function target message")
            "indirect call to non-function address 0x3039" m
      | o ->
          Alcotest.failf "%s: expected fault, got %s" label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "indirect call to non-function" results

let test_parity_unregistered_intrinsic () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let _ = Ir.Builder.intrinsic b "ss_missing" [] in
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  Ir.Prog.add_func prog f;
  let results =
    List.map
      (fun (label, (bk : Machine.Backend.t)) ->
        (label, bk.run (Machine.Exec.prepare prog)))
      both
  in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Fault { fault = Machine.Memory.Misc m; _ } ->
          Alcotest.(check string)
            (label ^ ": unregistered intrinsic message")
            "unregistered intrinsic ss_missing" m
      | o ->
          Alcotest.failf "%s: expected fault, got %s" label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "unregistered intrinsic" results

let test_parity_detection () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let _ = Ir.Builder.intrinsic b "ss_tripwire" [] in
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  Ir.Prog.add_func prog f;
  let results =
    List.map
      (fun (label, (bk : Machine.Backend.t)) ->
        let st = Machine.Exec.prepare prog in
        Machine.Exec.register_intrinsic st "ss_tripwire" (fun _ _ ->
            raise (Machine.Exec.Detect "fid mismatch"));
        (label, bk.run st))
      both
  in
  List.iter
    (fun (label, (o, _)) ->
      match o with
      | Machine.Exec.Detected { reason = "fid mismatch"; func = "main" } -> ()
      | o ->
          Alcotest.failf "%s: expected detection, got %s" label
            (Machine.Exec.outcome_to_string o))
    results;
  check_identical "detection" results

(* The reference evaluates only the taken select arm; an unresolvable
   operand in the dead arm must stay dormant on both engines. *)
let select_lazy_prog ~take_bad =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  let cond = if take_bad then 0L else 1L in
  let s =
    Ir.Builder.select b (Ir.Instr.Imm cond) (Ir.Instr.Imm 0L)
      (Ir.Instr.Global "no_such_global")
  in
  Ir.Builder.ret b (Some (Ir.Instr.Reg s));
  Ir.Prog.add_func prog f;
  prog

let test_parity_select_lazy_arms () =
  List.iter
    (fun (label, (bk : Machine.Backend.t)) ->
      let outcome, _ = bk.run (Machine.Exec.prepare (select_lazy_prog ~take_bad:false)) in
      Alcotest.(check bool)
        (label ^ ": dead bad arm never evaluated")
        true
        (outcome = Machine.Exec.Exit 0L))
    both;
  (* taken bad arm: the reference raises Invalid_argument out of run *)
  List.iter
    (fun (label, (bk : Machine.Backend.t)) ->
      match bk.run (Machine.Exec.prepare (select_lazy_prog ~take_bad:true)) with
      | _ -> Alcotest.failf "%s: expected Invalid_argument" label
      | exception Invalid_argument m ->
          Alcotest.(check string)
            (label ^ ": unknown-global message")
            "Machine.Exec.global_addr: no global no_such_global" m)
    both

let test_parity_trace_events () =
  let prog =
    compile
      {|
int helper(int x) { return x * 3; }
int main() { print_int(helper(2) + helper(5)); return 0; }
|}
  in
  let traces =
    List.map
      (fun (label, (bk : Machine.Backend.t)) ->
        let st = Machine.Exec.prepare prog in
        let t = Machine.Trace.create () in
        Machine.Trace.attach t st;
        let _ = bk.run st in
        (label, Machine.Trace.events t))
      both
  in
  check_identical "trace events" traces

(* ------------------------------------------------------------------ *)
(* Backend registry *)

let test_backend_registry () =
  Alcotest.(check bool) "reference always registered" true
    (Option.is_some (Machine.Backend.find_opt Machine.Backend.Reference));
  Engine.Backend.install ();
  Alcotest.(check bool) "bytecode registered after install" true
    (Option.is_some (Machine.Backend.find_opt Machine.Backend.Bytecode));
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Machine.Backend.kind_to_string kind ^ " name round-trips")
        true
        (Machine.Backend.kind_of_string (Machine.Backend.kind_to_string kind)
        = Some kind))
    Machine.Backend.all_kinds;
  Alcotest.(check bool) "aliases resolve" true
    (Machine.Backend.kind_of_string "bc" = Some Machine.Backend.Bytecode
    && Machine.Backend.kind_of_string "interp" = Some Machine.Backend.Reference
    && Machine.Backend.kind_of_string "nonsense" = None);
  let saved = (Machine.Backend.default ()).kind in
  Machine.Backend.set_default Machine.Backend.Bytecode;
  Alcotest.(check string) "set_default switches" "bytecode"
    (Machine.Backend.default ()).label;
  Machine.Backend.set_default saved

(* ------------------------------------------------------------------ *)
(* Differential validation: fuzzed programs + the application matrix *)

let test_diffval_progen () =
  let report = Harness.Diffval.check_progen ~seed:1000L 50 in
  if not (Harness.Diffval.ok report) then
    Alcotest.fail (Harness.Diffval.report_to_string report);
  Alcotest.(check int) "all seeds ran" 50 report.cases

let test_diffval_apps () =
  let report = Harness.Diffval.check_apps () in
  if not (Harness.Diffval.ok report) then
    Alcotest.fail (Harness.Diffval.report_to_string report)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "cost",
        [
          Alcotest.test_case "rng_aes endpoints" `Quick
            test_cost_rng_aes_endpoints;
          Alcotest.test_case "rng_aes bounds" `Quick test_cost_rng_aes_bounds;
          Alcotest.test_case "rng monotonicity" `Quick test_cost_rng_monotonic;
          Alcotest.test_case "charge structure" `Quick test_cost_structure;
          Alcotest.test_case "per-instruction charges" `Quick
            test_cost_per_instruction_charges;
        ] );
      ( "parity",
        [
          Alcotest.test_case "outputs and stats" `Quick
            test_parity_outputs_and_stats;
          Alcotest.test_case "fuel exhaustion" `Quick test_parity_fuel_exhaustion;
          Alcotest.test_case "memory fault" `Quick test_parity_memory_fault;
          Alcotest.test_case "rodata write" `Quick test_parity_rodata_write;
          Alcotest.test_case "unmapped access" `Quick test_parity_unmapped_access;
          Alcotest.test_case "straddling load" `Quick test_parity_straddling_load;
          Alcotest.test_case "stack overflow" `Quick test_parity_stack_overflow;
          Alcotest.test_case "VLA out of range" `Quick
            test_parity_vla_out_of_range;
          Alcotest.test_case "unknown callee is lazy" `Quick
            test_parity_unknown_callee_lazy;
          Alcotest.test_case "indirect call garbage" `Quick
            test_parity_indirect_call_garbage;
          Alcotest.test_case "unregistered intrinsic" `Quick
            test_parity_unregistered_intrinsic;
          Alcotest.test_case "detection" `Quick test_parity_detection;
          Alcotest.test_case "select arms stay lazy" `Quick
            test_parity_select_lazy_arms;
          Alcotest.test_case "trace events" `Quick test_parity_trace_events;
        ] );
      ( "backend",
        [ Alcotest.test_case "registry" `Quick test_backend_registry ] );
      ( "diffval",
        [
          Alcotest.test_case "50 progen programs" `Slow test_diffval_progen;
          Alcotest.test_case "application matrix" `Slow test_diffval_apps;
        ] );
    ]
