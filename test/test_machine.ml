(* Tests for the segmented memory and the interpreter. *)

let compile = Minic.Driver.compile

let run_prog ?(input = "") ?fuel prog =
  let st = Machine.Exec.prepare prog in
  Machine.Exec.set_input st (Machine.Exec.input_string input);
  Machine.Exec.run ?fuel st

(* ------------------------------------------------------------------ *)
(* Memory *)

let mk_mem () =
  Machine.Memory.create
    [
      ("ro", 0x1000, 4096, Machine.Memory.Read_only);
      ("rw", 0x10000, 4096, Machine.Memory.Read_write);
    ]

let test_memory_rw_roundtrip () =
  let m = mk_mem () in
  Machine.Memory.store m ~width:8 0x10010 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L
    (Machine.Memory.load m ~width:8 0x10010);
  Alcotest.(check int64) "little-endian low u16" 0x7788L
    (Machine.Memory.load m ~width:2 0x10010)

let test_memory_write_protection () =
  let m = mk_mem () in
  Machine.Memory.write_protected m 0x1000 "secret";
  Alcotest.(check string) "readable" "secret" (Machine.Memory.read_bytes m 0x1000 6);
  (match Machine.Memory.store m ~width:1 0x1000 0L with
  | () -> Alcotest.fail "expected write-protection fault"
  | exception Machine.Memory.Fault (Machine.Memory.Write_protected _) -> ())

let test_memory_oob_and_null () =
  let m = mk_mem () in
  (match Machine.Memory.load m ~width:8 0x999999 with
  | _ -> Alcotest.fail "expected OOB fault"
  | exception Machine.Memory.Fault (Machine.Memory.Out_of_bounds _) -> ());
  (match Machine.Memory.load m ~width:1 0 with
  | _ -> Alcotest.fail "expected null fault"
  | exception Machine.Memory.Fault Machine.Memory.Null_dereference -> ());
  (* straddling the segment end *)
  match Machine.Memory.load m ~width:8 (0x1000 + 4092) with
  | _ -> Alcotest.fail "expected straddle fault"
  | exception Machine.Memory.Fault (Machine.Memory.Out_of_bounds _) -> ()

let test_memory_overlap_rejected () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Machine.Memory.create: segments a and b overlap")
    (fun () ->
      ignore
        (Machine.Memory.create
           [
             ("a", 0x1000, 4096, Machine.Memory.Read_write);
             ("b", 0x1800, 4096, Machine.Memory.Read_write);
           ]))

let test_touched_pages () =
  let m = mk_mem () in
  let before = Machine.Memory.touched_bytes m in
  Machine.Memory.store m ~width:1 0x10000 1L;
  Machine.Memory.store m ~width:1 0x10001 1L;
  let after_one_page = Machine.Memory.touched_bytes m in
  Alcotest.(check int) "one page" Machine.Memory.page_size
    (after_one_page - before);
  Machine.Memory.store m ~width:1 (0x10000 + 4096 - 1) 1L;
  Alcotest.(check int) "same segment page boundary" after_one_page
    (Machine.Memory.touched_bytes m)

let test_cstring () =
  let m = mk_mem () in
  Machine.Memory.write_bytes m 0x10000 "hello\000world";
  Alcotest.(check string) "stops at NUL" "hello" (Machine.Memory.cstring m 0x10000)

(* ------------------------------------------------------------------ *)
(* Exec: faults, builtins, accounting *)

let outcome_testable =
  Alcotest.testable
    (fun fmt o -> Format.pp_print_string fmt (Machine.Exec.outcome_to_string o))
    ( = )

let test_exit_code () =
  let outcome, _ = run_prog (compile "int main() { return 7; }") in
  Alcotest.(check outcome_testable) "exit 7" (Machine.Exec.Exit 7L) outcome

let test_exit_builtin () =
  let outcome, _ =
    run_prog (compile "int main() { exit(3); print_int(1); return 0; }")
  in
  Alcotest.(check outcome_testable) "exit 3" (Machine.Exec.Exit 3L) outcome

let test_division_by_zero_faults () =
  let outcome, _ =
    run_prog (compile "long g = 0; int main() { return (int)(5 / g); }")
  in
  match outcome with
  | Machine.Exec.Fault { fault = Machine.Memory.Misc m; _ } ->
      Alcotest.(check string) "reason" "division by zero" m
  | o -> Alcotest.failf "expected division fault, got %s" (Machine.Exec.outcome_to_string o)

let test_wild_pointer_faults () =
  let outcome, _ =
    run_prog (compile "int main() { *(long*)123456789 = 1; return 0; }")
  in
  match outcome with
  | Machine.Exec.Fault { fault = Machine.Memory.Out_of_bounds _; _ } -> ()
  | o -> Alcotest.failf "expected OOB, got %s" (Machine.Exec.outcome_to_string o)

let test_stack_overflow_faults () =
  let outcome, _ =
    run_prog
      (compile
         {|
long deep(long n) {
  char pad[4096];
  pad[0] = (char)n;
  return deep(n + 1) + pad[0];
}
int main() { return (int)deep(0); }
|})
  in
  match outcome with
  | Machine.Exec.Fault { fault = Machine.Memory.Stack_overflow _; _ } -> ()
  | o -> Alcotest.failf "expected stack overflow, got %s" (Machine.Exec.outcome_to_string o)

let test_fuel_exhaustion () =
  let outcome, _ =
    run_prog ~fuel:1000 (compile "int main() { while (1) {} return 0; }")
  in
  Alcotest.(check outcome_testable) "fuel" Machine.Exec.Fuel_exhausted outcome

let test_strncpy_size_t_semantics () =
  (* negative n behaves as a huge unsigned bound: copy until NUL *)
  let outcome, stats =
    run_prog
      (compile
         {|
char dst[64];
int main() {
  strncpy(dst, "overflowing", 0 - 1);
  print_str(dst);
  return 0;
}
|})
  in
  Alcotest.(check outcome_testable) "ok" (Machine.Exec.Exit 0L) outcome;
  Alcotest.(check string) "copied fully" "overflowing" stats.output

let test_snprintf_cat_semantics () =
  let outcome, stats =
    run_prog
      (compile
         {|
char dst[8];
int main() {
  long need = snprintf_cat(dst, 4, "abcdef");
  print_int(need);
  print_str(dst);
  return 0;
}
|})
  in
  Alcotest.(check outcome_testable) "ok" (Machine.Exec.Exit 0L) outcome;
  (* returns the WOULD-BE length (6) but writes only 3 bytes + NUL *)
  Alcotest.(check string) "truncated write, full need" "6abc" stats.output

let test_memcpy_and_memset () =
  let _, stats =
    run_prog
      (compile
         {|
char a[8];
char b[8];
int main() {
  memset(a, 65, 7);
  a[7] = 0;
  memcpy(b, a, 8);
  print_str(b);
  return 0;
}
|})
  in
  Alcotest.(check string) "AAAAAAA" "AAAAAAA" stats.output

let test_input_byte_eof () =
  let _, stats =
    run_prog ~input:"x"
      (compile
         {|
int main() {
  print_int(input_byte());
  print_int(input_byte());
  return 0;
}
|})
  in
  Alcotest.(check string) "byte then EOF" "120-1" stats.output

let test_frame_adjacency () =
  (* callee buffers sit directly below caller locals: an overflow from
     the callee reaches the caller's frame — the property every DOP
     exploit here depends on *)
  let _, stats =
    run_prog
      (compile
         {|
void smash() {
  char buf[8];
  long i = 0;
  while (i < 24) { buf[i] = 66; i += 1; }
}
int main() {
  char cushion[64];
  long victim = 0;
  cushion[0] = 0;
  smash();
  print_int(victim != 0);
  return 0;
}
|})
  in
  Alcotest.(check string) "caller local corrupted" "1" stats.output

let test_stats_accounting () =
  let _, stats =
    run_prog
      (compile
         {|
long leaf() { char pad[100]; pad[0] = 1; return pad[0]; }
long mid() { return leaf(); }
int main() { return (int)(mid() - 1); }
|})
  in
  Alcotest.(check int) "calls" 3 stats.call_count;
  Alcotest.(check int) "max depth" 3 stats.max_depth;
  Alcotest.(check bool) "max frame >= 100" true (stats.max_frame_bytes >= 100);
  Alcotest.(check bool) "cycles positive" true (stats.cycles > 0.)

let test_intrinsic_unregistered () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  ignore (Ir.Builder.intrinsic b "no.such.intrinsic" []);
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  Ir.Prog.add_func prog f;
  let st = Machine.Exec.prepare prog in
  match Machine.Exec.run st with
  | Machine.Exec.Fault { fault = Machine.Memory.Misc _; _ }, _ -> ()
  | o, _ -> Alcotest.failf "expected fault, got %s" (Machine.Exec.outcome_to_string o)

let test_detect_exception_classified () =
  let prog = Ir.Prog.create () in
  let f = Ir.Func.create ~name:"main" ~params:[] ~returns:(Some Ir.Ty.I64) in
  let b = Ir.Builder.create f in
  ignore (Ir.Builder.intrinsic b "boom" []);
  Ir.Builder.ret b (Some (Ir.Instr.Imm 0L));
  Ir.Prog.add_func prog f;
  let st = Machine.Exec.prepare prog in
  Machine.Exec.register_intrinsic st "boom" (fun _ _ ->
      raise (Machine.Exec.Detect "tripwire"));
  match Machine.Exec.run st with
  | Machine.Exec.Detected { reason = "tripwire"; _ }, _ -> ()
  | o, _ -> Alcotest.failf "expected detection, got %s" (Machine.Exec.outcome_to_string o)

let test_trace_records_calls () =
  let prog =
    compile
      {|
long leaf(long n) { long x = n + 1; return x; }
int main() { return (int)(leaf(41) - 42); }
|}
  in
  let st = Machine.Exec.prepare prog in
  let t = Machine.Trace.create () in
  Machine.Trace.attach t st;
  let outcome, _ = Machine.Exec.run st in
  Alcotest.(check bool) "ran" true (outcome = Machine.Exec.Exit 0L);
  let calls =
    List.filter_map
      (function Machine.Trace.Ev_call { func; _ } -> Some func | _ -> None)
      (Machine.Trace.events t)
  in
  Alcotest.(check (list string)) "call order" [ "main"; "leaf" ] calls;
  let rendered = Machine.Trace.render t in
  Alcotest.(check bool) "renders" true (String.length rendered > 0);
  Alcotest.(check int) "nothing dropped" 0 (Machine.Trace.dropped t)

let test_trace_ring_bounds () =
  let prog =
    compile
      {|
long tick(long n) { return n; }
int main() {
  long i = 0;
  while (i < 100) { tick(i); i += 1; }
  return 0;
}
|}
  in
  let st = Machine.Exec.prepare prog in
  let t = Machine.Trace.create ~capacity:16 () in
  Machine.Trace.attach t st;
  ignore (Machine.Exec.run st);
  Alcotest.(check int) "ring holds capacity" 16
    (List.length (Machine.Trace.events t));
  Alcotest.(check bool) "drops counted" true (Machine.Trace.dropped t > 0)

(* Exact dropped accounting and render ~limit ordering on an overfilled
   ring, without a machine in the loop — Trace.record is the same hook
   attach installs. *)
let mk_ev i =
  Machine.Trace.Ev_intrinsic { name = Printf.sprintf "e%d" i; result = None }

let ev_name = function
  | Machine.Trace.Ev_intrinsic { name; _ } -> name
  | _ -> "?"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_trace_dropped_exact () =
  let t = Machine.Trace.create ~capacity:4 () in
  Alcotest.(check int) "empty ring" 0 (Machine.Trace.dropped t);
  for i = 0 to 3 do
    Machine.Trace.record t (mk_ev i)
  done;
  Alcotest.(check int) "exactly full: nothing dropped" 0
    (Machine.Trace.dropped t);
  Alcotest.(check int) "exactly full: all retained" 4
    (List.length (Machine.Trace.events t));
  Machine.Trace.record t (mk_ev 4);
  Alcotest.(check int) "one past capacity drops one" 1
    (Machine.Trace.dropped t);
  for i = 5 to 9 do
    Machine.Trace.record t (mk_ev i)
  done;
  Alcotest.(check int) "10 through a 4-ring drops 6" 6
    (Machine.Trace.dropped t);
  Alcotest.(check (list string))
    "survivors are the newest, oldest first"
    [ "e6"; "e7"; "e8"; "e9" ]
    (List.map ev_name (Machine.Trace.events t))

let test_trace_capacity_one () =
  let t = Machine.Trace.create ~capacity:1 () in
  for i = 0 to 2 do
    Machine.Trace.record t (mk_ev i)
  done;
  Alcotest.(check int) "dropped" 2 (Machine.Trace.dropped t);
  Alcotest.(check (list string)) "only the newest" [ "e2" ]
    (List.map ev_name (Machine.Trace.events t))

let test_trace_render_limit () =
  let t = Machine.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Machine.Trace.record t (mk_ev i)
  done;
  (match String.split_on_char '\n' (String.trim (Machine.Trace.render ~limit:2 t)) with
  | [ drop; a; b ] ->
      Alcotest.(check bool) "drop banner first" true (contains drop "dropped");
      Alcotest.(check bool) "then e8" true (contains a "e8");
      Alcotest.(check bool) "then e9" true (contains b "e9")
  | lines ->
      Alcotest.failf "render ~limit:2 gave %d lines" (List.length lines));
  (* limit above retention: everything retained, oldest first *)
  let full = Machine.Trace.render ~limit:100 t in
  let pos needle =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length full then -1
      else if String.sub full i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun j ->
      Alcotest.(check bool) (Printf.sprintf "contains e%d" j) true (pos (Printf.sprintf "@e%d" j) >= 0))
    [ 6; 7; 8; 9 ];
  Alcotest.(check bool) "oldest first" true (pos "@e6" < pos "@e9");
  Alcotest.(check bool) "e5 gone" false (contains full "@e5")

let test_trace_captures_detection () =
  let prog =
    compile
      {|
void smash() {
  char buf[16];
  long x = 1;
  long i = 0;
  while (i < 200) { buf[i] = 90; i += 1; }
  x += buf[3];
}
int main() {
  char cushion[512];
  cushion[0] = 0;
  smash();
  return 0;
}
|}
  in
  let hardened = Smokestack.Harden.harden Smokestack.Config.default prog in
  let st =
    Smokestack.Harden.prepare hardened ~entropy:(Crypto.Entropy.create ~seed:2L)
  in
  let t = Machine.Trace.create () in
  Machine.Trace.attach t st;
  (match Machine.Exec.run st with
  | Machine.Exec.Detected _, _ -> ()
  | o, _ -> Alcotest.failf "expected detection, got %s" (Machine.Exec.outcome_to_string o));
  Alcotest.(check bool) "trace shows the detection" true
    (List.exists
       (function Machine.Trace.Ev_detected _ -> true | _ -> false)
       (Machine.Trace.events t))

let () =
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_memory_rw_roundtrip;
          Alcotest.test_case "write protection" `Quick test_memory_write_protection;
          Alcotest.test_case "oob and null" `Quick test_memory_oob_and_null;
          Alcotest.test_case "overlap rejected" `Quick test_memory_overlap_rejected;
          Alcotest.test_case "touched pages" `Quick test_touched_pages;
          Alcotest.test_case "cstring" `Quick test_cstring;
        ] );
      ( "exec",
        [
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "exit builtin" `Quick test_exit_builtin;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero_faults;
          Alcotest.test_case "wild pointer" `Quick test_wild_pointer_faults;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow_faults;
          Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
          Alcotest.test_case "frame adjacency" `Quick test_frame_adjacency;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "unregistered intrinsic" `Quick test_intrinsic_unregistered;
          Alcotest.test_case "detect classified" `Quick test_detect_exception_classified;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records calls" `Quick test_trace_records_calls;
          Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds;
          Alcotest.test_case "dropped exact" `Quick test_trace_dropped_exact;
          Alcotest.test_case "capacity one" `Quick test_trace_capacity_one;
          Alcotest.test_case "render limit" `Quick test_trace_render_limit;
          Alcotest.test_case "captures detection" `Quick test_trace_captures_detection;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "strncpy size_t" `Quick test_strncpy_size_t_semantics;
          Alcotest.test_case "snprintf_cat" `Quick test_snprintf_cat_semantics;
          Alcotest.test_case "memcpy/memset" `Quick test_memcpy_and_memset;
          Alcotest.test_case "input_byte EOF" `Quick test_input_byte_eof;
        ] );
    ]
