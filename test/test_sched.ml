(* Tests for the job/pool scheduler: ordering, error propagation, the
   jobs=1 degenerate path, seed derivation, and the property the whole
   design exists for — parallel experiment output byte-identical to
   sequential. *)

(* ------------------------------------------------------------------ *)
(* Ordering *)

let test_results_in_submission_order () =
  Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
  (* skew the work so completion order almost certainly differs from
     submission order *)
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc * 7) + i
    done;
    !acc
  in
  let jobs =
    List.init 40 (fun i ->
        Sched.Job.v ~id:(Printf.sprintf "job-%d" i) (fun () ->
            ignore (spin (if i mod 2 = 0 then 200_000 else 50));
            i))
  in
  Alcotest.(check (list int))
    "results merge in submission order" (List.init 40 Fun.id)
    (Sched.Pool.run_all pool jobs)

let test_pool_reusable_across_batches () =
  Sched.Pool.with_pool ~jobs:3 @@ fun pool ->
  List.iter
    (fun batch ->
      Alcotest.(check (list int))
        "batch result"
        (List.init batch (fun i -> i * i))
        (Sched.Pool.run_all pool
           (List.init batch (fun i ->
                Sched.Job.v ~id:(string_of_int i) (fun () -> i * i)))))
    [ 5; 0; 1; 17 ]

(* ------------------------------------------------------------------ *)
(* Exceptions *)

exception Boom of string

let test_first_failure_by_submission_order_wins () =
  Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
  let jobs =
    List.init 8 (fun i ->
        Sched.Job.v ~id:(string_of_int i) (fun () ->
            if i = 2 then raise (Boom "first")
            else if i = 6 then raise (Boom "second")
            else i))
  in
  Alcotest.check_raises "earliest submitted failure propagates"
    (Boom "first") (fun () -> ignore (Sched.Pool.run_all pool jobs))

let test_pool_survives_a_failing_batch () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  (try
     ignore
       (Sched.Pool.run_all pool
          [ Sched.Job.v ~id:"boom" (fun () -> raise (Boom "x")) ])
   with Boom _ -> ());
  Alcotest.(check (list int))
    "next batch still runs" [ 1; 2 ]
    (Sched.Pool.run_all pool
       [
         Sched.Job.v ~id:"a" (fun () -> 1); Sched.Job.v ~id:"b" (fun () -> 2);
       ])

(* ------------------------------------------------------------------ *)
(* jobs=1 degenerate path *)

let test_sequential_runs_in_calling_domain () =
  let self = Domain.self () in
  let trace = ref [] in
  let results =
    Sched.Pool.run_all Sched.Pool.sequential
      (List.init 5 (fun i ->
           Sched.Job.v ~id:(string_of_int i) (fun () ->
               Alcotest.(check bool)
                 "job ran in the submitting domain" true
                 (Domain.self () = self);
               trace := i :: !trace;
               i)))
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3; 4 ] results;
  Alcotest.(check (list int))
    "side effects in submission order" [ 0; 1; 2; 3; 4 ] (List.rev !trace)

let test_with_pool_jobs1_spawns_no_domains () =
  Sched.Pool.with_pool ~jobs:1 @@ fun pool ->
  let self = Domain.self () in
  Alcotest.(check (list bool))
    "every job in the submitting domain" [ true; true; true ]
    (Sched.Pool.run_all pool
       (List.init 3 (fun i ->
            Sched.Job.v ~id:(string_of_int i) (fun () ->
                Domain.self () = self))))

(* ------------------------------------------------------------------ *)
(* Seed derivation *)

let test_split_seed_deterministic_and_keyed () =
  let a = Sutil.Simrng.split_seed ~root:42L ~id:"fig3/gobmk" in
  let b = Sutil.Simrng.split_seed ~root:42L ~id:"fig3/gobmk" in
  let c = Sutil.Simrng.split_seed ~root:42L ~id:"fig3/mcf" in
  let d = Sutil.Simrng.split_seed ~root:43L ~id:"fig3/gobmk" in
  Alcotest.(check int64) "same (root, id) -> same seed" a b;
  Alcotest.(check bool) "different id -> different stream" true (a <> c);
  Alcotest.(check bool) "different root -> different stream" true (a <> d)

let test_seeded_job_carries_derived_seed () =
  let job = Sched.Job.seeded ~root:42L ~id:"cell" (fun ~seed -> seed) in
  Alcotest.(check int64) "job seed is the split seed"
    (Sutil.Simrng.split_seed ~root:42L ~id:"cell")
    (Sched.Job.seed job);
  Alcotest.(check int64) "run sees the same seed" (Sched.Job.seed job)
    (Sched.Job.run job)

(* ------------------------------------------------------------------ *)
(* Stress: failures in every position, closed pools, width clamping,
   nesting rejection *)

let test_raising_job_in_every_position () =
  Sched.Pool.with_pool ~jobs:3 @@ fun pool ->
  for bad = 0 to 7 do
    let jobs =
      List.init 8 (fun i ->
          Sched.Job.v ~id:(string_of_int i) (fun () ->
              if i = bad then raise (Boom (string_of_int i)) else i))
    in
    (match Sched.Pool.run_all pool jobs with
    | _ -> Alcotest.failf "position %d: batch did not raise" bad
    | exception Boom b ->
        Alcotest.(check string)
          (Printf.sprintf "position %d raises its own error" bad)
          (string_of_int bad) b);
    (* the same pool must still work after every failing batch *)
    Alcotest.(check (list int))
      "pool alive after failure" [ 0; 1 ]
      (Sched.Pool.run_all pool
         [ Sched.Job.v ~id:"x" (fun () -> 0); Sched.Job.v ~id:"y" (fun () -> 1) ])
  done

let test_closed_pool_still_runs_batches () =
  let pool = Sched.Pool.create ~jobs:4 () in
  Sched.Pool.close pool;
  Sched.Pool.close pool (* idempotent *);
  let self = Domain.self () in
  Alcotest.(check (list bool))
    "closed pool runs sequentially in the calling domain" [ true; true ]
    (Sched.Pool.run_all pool
       (List.init 2 (fun i ->
            Sched.Job.v ~id:(string_of_int i) (fun () -> Domain.self () = self))));
  Alcotest.(check (list int))
    "and supervises with a window of 1" [ 7; 8 ]
    (List.filter_map
       (function Sched.Job.Ok v -> Some v | _ -> None)
       (Sched.Pool.run_all_outcomes pool
          [ Sched.Job.v ~id:"a" (fun () -> 7); Sched.Job.v ~id:"b" (fun () -> 8) ]))

let test_jobs_clamped_to_max () =
  (* asking for far more than max_jobs domains must neither fail nor
     actually spawn thousands of workers *)
  Sched.Pool.with_pool ~jobs:100_000 @@ fun pool ->
  Alcotest.(check bool)
    "width clamped" true
    (Sched.Pool.jobs pool <= Sched.Pool.max_jobs);
  Alcotest.(check (list int))
    "oversized request still runs batches" (List.init 128 Fun.id)
    (Sched.Pool.run_all pool
       (List.init 128 (fun i -> Sched.Job.v ~id:(string_of_int i) (fun () -> i))))

let test_nested_submission_rejected () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  (* batches of >= 2: single-job batches take the sequential path and
     may nest freely, so only multi-job submissions hit the queue *)
  let saw_failure =
    match
      Sched.Pool.run_all pool
        [
          Sched.Job.v ~id:"outer" (fun () ->
              Sched.Pool.run_all pool
                (List.init 2 (fun i ->
                     Sched.Job.v ~id:(Printf.sprintf "inner-%d" i) (fun () -> i))));
          Sched.Job.v ~id:"peer" (fun () -> [ 9 ]);
        ]
    with
    | _ -> false
    | exception Failure msg ->
        String.length msg > 0
        && String.starts_with ~prefix:"Sched.Pool.run_all" msg
  in
  Alcotest.(check bool) "nested run_all on the same pool fails" true saw_failure;
  (* nesting on [sequential] from inside a pooled job is the documented
     escape hatch and must keep working *)
  Alcotest.(check (list (list int)))
    "nesting via Pool.sequential works"
    [ [ 0; 1 ]; [ 42 ] ]
    (Sched.Pool.run_all pool
       [
         Sched.Job.v ~id:"outer" (fun () ->
             Sched.Pool.run_all Sched.Pool.sequential
               (List.init 2 (fun i ->
                    Sched.Job.v ~id:(string_of_int i) (fun () -> i))));
         Sched.Job.v ~id:"peer" (fun () -> [ 42 ]);
       ])

(* ------------------------------------------------------------------ *)
(* Supervision: run_all_outcomes *)

let test_outcomes_ok_and_failed_mixed () =
  Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
  let outcomes =
    Sched.Pool.run_all_outcomes pool
      (List.init 10 (fun i ->
           Sched.Job.v ~id:(string_of_int i) (fun () ->
               if i mod 3 = 0 then raise (Boom (string_of_int i)) else i)))
  in
  List.iteri
    (fun i outcome ->
      match outcome with
      | Sched.Job.Ok v ->
          Alcotest.(check bool) "ok only for non-multiples" true (i mod 3 <> 0);
          Alcotest.(check int) "value" i v
      | Sched.Job.Failed (Boom b) ->
          Alcotest.(check bool) "failed only for multiples" true (i mod 3 = 0);
          Alcotest.(check string) "failure is the job's own" (string_of_int i) b
      | Sched.Job.Failed _ | Sched.Job.Timed_out ->
          Alcotest.fail "unexpected outcome")
    outcomes

let test_outcomes_retry_eventually_succeeds () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  (* fails twice, succeeds on the third attempt; attempts counted via an
     atomic because each attempt runs on its own domain *)
  let attempts = Atomic.make 0 in
  let outcomes =
    Sched.Pool.run_all_outcomes ~retries:2 ~backoff:0.001 pool
      [
        Sched.Job.v ~id:"flaky" (fun () ->
            if Atomic.fetch_and_add attempts 1 < 2 then raise (Boom "flaky");
            42);
      ]
  in
  (match outcomes with
  | [ Sched.Job.Ok v ] -> Alcotest.(check int) "retried to success" 42 v
  | _ -> Alcotest.fail "expected Ok after retries");
  Alcotest.(check int) "three attempts" 3 (Atomic.get attempts)

let test_outcomes_retries_exhausted_reports_last_exn () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  let attempts = Atomic.make 0 in
  let outcomes =
    Sched.Pool.run_all_outcomes ~retries:2 ~backoff:0.001 pool
      [
        Sched.Job.v ~id:"hopeless" (fun () ->
            raise (Boom (string_of_int (Atomic.fetch_and_add attempts 1))));
      ]
  in
  (match outcomes with
  | [ Sched.Job.Failed (Boom b) ] ->
      Alcotest.(check string) "last attempt's exception" "2" b
  | _ -> Alcotest.fail "expected Failed");
  Alcotest.(check int) "1 + 2 retries" 3 (Atomic.get attempts)

let test_outcomes_timeout_does_not_lose_other_results () =
  Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
  let release = Atomic.make false in
  let outcomes =
    Sched.Pool.run_all_outcomes ~timeout:0.2 pool
      (List.init 6 (fun i ->
           Sched.Job.v ~id:(string_of_int i) (fun () ->
               if i = 2 then
                 (* hang until released — far longer than the timeout *)
                 while not (Atomic.get release) do
                   Unix.sleepf 0.01
                 done;
               i)))
  in
  Atomic.set release true;
  List.iteri
    (fun i outcome ->
      match (i, outcome) with
      | 2, Sched.Job.Timed_out -> ()
      | 2, _ -> Alcotest.fail "hung job must report Timed_out"
      | _, Sched.Job.Ok v -> Alcotest.(check int) "other jobs keep results" i v
      | _, _ -> Alcotest.failf "job %d lost its result" i)
    outcomes

let test_outcomes_deterministic_across_widths () =
  let batch () =
    List.init 12 (fun i ->
        Sched.Job.v ~id:(string_of_int i) (fun () ->
            if i mod 4 = 1 then raise (Boom (string_of_int i)) else i * i))
  in
  let render outcomes =
    String.concat ";"
      (List.map
         (function
           | Sched.Job.Ok v -> string_of_int v
           | Sched.Job.Failed (Boom b) -> "boom:" ^ b
           | Sched.Job.Failed _ -> "fail"
           | Sched.Job.Timed_out -> "timeout")
         outcomes)
  in
  let w1 =
    Sched.Pool.with_pool ~jobs:1 (fun p ->
        render (Sched.Pool.run_all_outcomes ~retries:1 ~backoff:0.001 p (batch ())))
  in
  let w8 =
    Sched.Pool.with_pool ~jobs:8 (fun p ->
        render (Sched.Pool.run_all_outcomes ~retries:1 ~backoff:0.001 p (batch ())))
  in
  Alcotest.(check string) "outcomes identical at widths 1 and 8" w1 w8

let test_outcomes_validates_arguments () =
  Alcotest.check_raises "timeout must be positive"
    (Invalid_argument "Sched.Pool.run_all_outcomes: timeout must be positive")
    (fun () ->
      ignore
        (Sched.Pool.run_all_outcomes ~timeout:0. Sched.Pool.sequential
           [ Sched.Job.v ~id:"x" (fun () -> 1) ]));
  Alcotest.check_raises "retries must be >= 0"
    (Invalid_argument "Sched.Pool.run_all_outcomes: retries must be >= 0")
    (fun () ->
      ignore
        (Sched.Pool.run_all_outcomes ~retries:(-1) Sched.Pool.sequential
           [ Sched.Job.v ~id:"x" (fun () -> 1) ]))

(* ------------------------------------------------------------------ *)
(* Stats counters *)

let test_stats_counts_jobs_and_peak () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  let before = Sched.Pool.stats pool in
  Alcotest.(check int) "fresh pool ran nothing" 0 before.Sched.Pool.jobs_run;
  ignore
    (Sched.Pool.run_all pool
       (List.init 12 (fun i -> Sched.Job.v ~id:(string_of_int i) (fun () -> i))));
  ignore
    (Sched.Pool.run_all pool
       (List.init 5 (fun i -> Sched.Job.v ~id:(string_of_int i) (fun () -> i))));
  let st = Sched.Pool.stats pool in
  Alcotest.(check int) "jobs_run accumulates across batches" 17
    st.Sched.Pool.jobs_run;
  Alcotest.(check bool) "a backlog was observed" true (st.Sched.Pool.peak_queue >= 1);
  Alcotest.(check int) "no retries without supervision" 0 st.Sched.Pool.retries;
  Alcotest.(check int) "no timeouts without supervision" 0 st.Sched.Pool.timeouts

let test_stats_counts_retries_and_timeouts () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  let attempts = Atomic.make 0 in
  let outcomes =
    Sched.Pool.run_all_outcomes ~retries:2 ~backoff:0.001 pool
      [
        Sched.Job.v ~id:"flaky" (fun () ->
            if Atomic.fetch_and_add attempts 1 < 2 then raise (Boom "flaky");
            1);
      ]
  in
  (match outcomes with
  | [ Sched.Job.Ok 1 ] -> ()
  | _ -> Alcotest.fail "expected Ok after retries");
  let st = Sched.Pool.stats pool in
  Alcotest.(check int) "two retries counted" 2 st.Sched.Pool.retries;
  Alcotest.(check int) "every attempt counts as a job" 3 st.Sched.Pool.jobs_run;
  let release = Atomic.make false in
  (match
     Sched.Pool.run_all_outcomes ~timeout:0.1 pool
       [
         Sched.Job.v ~id:"hang" (fun () ->
             while not (Atomic.get release) do
               Unix.sleepf 0.01
             done);
       ]
   with
  | [ Sched.Job.Timed_out ] -> ()
  | _ -> Alcotest.fail "hung job must report Timed_out");
  Atomic.set release true;
  Alcotest.(check int) "timeout counted" 1 (Sched.Pool.stats pool).Sched.Pool.timeouts

(* ------------------------------------------------------------------ *)
(* The end-to-end property: parallel == sequential, byte for byte *)

let test_experiment_output_identical_parallel_vs_sequential () =
  let render pool =
    Harness.Security.to_markdown
      (Harness.Security.rng_security ?pool ~trials_per_cell:2 ())
  in
  let seq = render None in
  let par = Sched.Pool.with_pool ~jobs:4 (fun pool -> render (Some pool)) in
  Alcotest.(check string) "rendered table identical under --jobs 4" seq par

let test_diffval_identical_parallel_vs_sequential () =
  let report pool =
    Harness.Diffval.report_to_string
      (Harness.Diffval.check_progen ?pool ~seed:5L 6)
  in
  let seq = report None in
  let par = Sched.Pool.with_pool ~jobs:4 (fun pool -> report (Some pool)) in
  Alcotest.(check string) "diffval report identical under --jobs 4" seq par

let () =
  Alcotest.run "sched"
    [
      ( "ordering",
        [
          Alcotest.test_case "submission order" `Quick
            test_results_in_submission_order;
          Alcotest.test_case "pool reuse" `Quick test_pool_reusable_across_batches;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "first failure wins" `Quick
            test_first_failure_by_submission_order_wins;
          Alcotest.test_case "pool survives failure" `Quick
            test_pool_survives_a_failing_batch;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "calling domain" `Quick
            test_sequential_runs_in_calling_domain;
          Alcotest.test_case "jobs=1 no domains" `Quick
            test_with_pool_jobs1_spawns_no_domains;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "split_seed" `Quick
            test_split_seed_deterministic_and_keyed;
          Alcotest.test_case "seeded job" `Quick
            test_seeded_job_carries_derived_seed;
        ] );
      ( "stress",
        [
          Alcotest.test_case "failure in every position" `Quick
            test_raising_job_in_every_position;
          Alcotest.test_case "closed pool" `Quick test_closed_pool_still_runs_batches;
          Alcotest.test_case "width clamp" `Quick test_jobs_clamped_to_max;
          Alcotest.test_case "nesting rejected" `Quick
            test_nested_submission_rejected;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "ok and failed mixed" `Quick
            test_outcomes_ok_and_failed_mixed;
          Alcotest.test_case "retry succeeds" `Quick
            test_outcomes_retry_eventually_succeeds;
          Alcotest.test_case "retries exhausted" `Quick
            test_outcomes_retries_exhausted_reports_last_exn;
          Alcotest.test_case "timeout isolates" `Quick
            test_outcomes_timeout_does_not_lose_other_results;
          Alcotest.test_case "deterministic across widths" `Quick
            test_outcomes_deterministic_across_widths;
          Alcotest.test_case "argument validation" `Quick
            test_outcomes_validates_arguments;
        ] );
      ( "stats",
        [
          Alcotest.test_case "jobs and peak queue" `Quick
            test_stats_counts_jobs_and_peak;
          Alcotest.test_case "retries and timeouts" `Quick
            test_stats_counts_retries_and_timeouts;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "rng_security table" `Quick
            test_experiment_output_identical_parallel_vs_sequential;
          Alcotest.test_case "diffval report" `Quick
            test_diffval_identical_parallel_vs_sequential;
        ] );
    ]
