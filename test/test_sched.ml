(* Tests for the job/pool scheduler: ordering, error propagation, the
   jobs=1 degenerate path, seed derivation, and the property the whole
   design exists for — parallel experiment output byte-identical to
   sequential. *)

(* ------------------------------------------------------------------ *)
(* Ordering *)

let test_results_in_submission_order () =
  Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
  (* skew the work so completion order almost certainly differs from
     submission order *)
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc * 7) + i
    done;
    !acc
  in
  let jobs =
    List.init 40 (fun i ->
        Sched.Job.v ~id:(Printf.sprintf "job-%d" i) (fun () ->
            ignore (spin (if i mod 2 = 0 then 200_000 else 50));
            i))
  in
  Alcotest.(check (list int))
    "results merge in submission order" (List.init 40 Fun.id)
    (Sched.Pool.run_all pool jobs)

let test_pool_reusable_across_batches () =
  Sched.Pool.with_pool ~jobs:3 @@ fun pool ->
  List.iter
    (fun batch ->
      Alcotest.(check (list int))
        "batch result"
        (List.init batch (fun i -> i * i))
        (Sched.Pool.run_all pool
           (List.init batch (fun i ->
                Sched.Job.v ~id:(string_of_int i) (fun () -> i * i)))))
    [ 5; 0; 1; 17 ]

(* ------------------------------------------------------------------ *)
(* Exceptions *)

exception Boom of string

let test_first_failure_by_submission_order_wins () =
  Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
  let jobs =
    List.init 8 (fun i ->
        Sched.Job.v ~id:(string_of_int i) (fun () ->
            if i = 2 then raise (Boom "first")
            else if i = 6 then raise (Boom "second")
            else i))
  in
  Alcotest.check_raises "earliest submitted failure propagates"
    (Boom "first") (fun () -> ignore (Sched.Pool.run_all pool jobs))

let test_pool_survives_a_failing_batch () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  (try
     ignore
       (Sched.Pool.run_all pool
          [ Sched.Job.v ~id:"boom" (fun () -> raise (Boom "x")) ])
   with Boom _ -> ());
  Alcotest.(check (list int))
    "next batch still runs" [ 1; 2 ]
    (Sched.Pool.run_all pool
       [
         Sched.Job.v ~id:"a" (fun () -> 1); Sched.Job.v ~id:"b" (fun () -> 2);
       ])

(* ------------------------------------------------------------------ *)
(* jobs=1 degenerate path *)

let test_sequential_runs_in_calling_domain () =
  let self = Domain.self () in
  let trace = ref [] in
  let results =
    Sched.Pool.run_all Sched.Pool.sequential
      (List.init 5 (fun i ->
           Sched.Job.v ~id:(string_of_int i) (fun () ->
               Alcotest.(check bool)
                 "job ran in the submitting domain" true
                 (Domain.self () = self);
               trace := i :: !trace;
               i)))
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3; 4 ] results;
  Alcotest.(check (list int))
    "side effects in submission order" [ 0; 1; 2; 3; 4 ] (List.rev !trace)

let test_with_pool_jobs1_spawns_no_domains () =
  Sched.Pool.with_pool ~jobs:1 @@ fun pool ->
  let self = Domain.self () in
  Alcotest.(check (list bool))
    "every job in the submitting domain" [ true; true; true ]
    (Sched.Pool.run_all pool
       (List.init 3 (fun i ->
            Sched.Job.v ~id:(string_of_int i) (fun () ->
                Domain.self () = self))))

(* ------------------------------------------------------------------ *)
(* Seed derivation *)

let test_split_seed_deterministic_and_keyed () =
  let a = Sutil.Simrng.split_seed ~root:42L ~id:"fig3/gobmk" in
  let b = Sutil.Simrng.split_seed ~root:42L ~id:"fig3/gobmk" in
  let c = Sutil.Simrng.split_seed ~root:42L ~id:"fig3/mcf" in
  let d = Sutil.Simrng.split_seed ~root:43L ~id:"fig3/gobmk" in
  Alcotest.(check int64) "same (root, id) -> same seed" a b;
  Alcotest.(check bool) "different id -> different stream" true (a <> c);
  Alcotest.(check bool) "different root -> different stream" true (a <> d)

let test_seeded_job_carries_derived_seed () =
  let job = Sched.Job.seeded ~root:42L ~id:"cell" (fun ~seed -> seed) in
  Alcotest.(check int64) "job seed is the split seed"
    (Sutil.Simrng.split_seed ~root:42L ~id:"cell")
    (Sched.Job.seed job);
  Alcotest.(check int64) "run sees the same seed" (Sched.Job.seed job)
    (Sched.Job.run job)

(* ------------------------------------------------------------------ *)
(* The end-to-end property: parallel == sequential, byte for byte *)

let test_experiment_output_identical_parallel_vs_sequential () =
  let render pool =
    Harness.Security.to_markdown
      (Harness.Security.rng_security ?pool ~trials_per_cell:2 ())
  in
  let seq = render None in
  let par = Sched.Pool.with_pool ~jobs:4 (fun pool -> render (Some pool)) in
  Alcotest.(check string) "rendered table identical under --jobs 4" seq par

let test_diffval_identical_parallel_vs_sequential () =
  let report pool =
    Harness.Diffval.report_to_string
      (Harness.Diffval.check_progen ?pool ~seed:5L 6)
  in
  let seq = report None in
  let par = Sched.Pool.with_pool ~jobs:4 (fun pool -> report (Some pool)) in
  Alcotest.(check string) "diffval report identical under --jobs 4" seq par

let () =
  Alcotest.run "sched"
    [
      ( "ordering",
        [
          Alcotest.test_case "submission order" `Quick
            test_results_in_submission_order;
          Alcotest.test_case "pool reuse" `Quick test_pool_reusable_across_batches;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "first failure wins" `Quick
            test_first_failure_by_submission_order_wins;
          Alcotest.test_case "pool survives failure" `Quick
            test_pool_survives_a_failing_batch;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "calling domain" `Quick
            test_sequential_runs_in_calling_domain;
          Alcotest.test_case "jobs=1 no domains" `Quick
            test_with_pool_jobs1_spawns_no_domains;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "split_seed" `Quick
            test_split_seed_deterministic_and_keyed;
          Alcotest.test_case "seeded job" `Quick
            test_seeded_job_carries_derived_seed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "rng_security table" `Quick
            test_experiment_output_identical_parallel_vs_sequential;
          Alcotest.test_case "diffval report" `Quick
            test_diffval_identical_parallel_vs_sequential;
        ] );
    ]
