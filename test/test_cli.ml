(* End-to-end tests of the compiled smokestackc binary: the documented
   exit-code contract (0 clean, 1 non-zero exit, 2 usage, 3
   compile/parse, 4 runtime fault) and the --chaos/--timeout flags, all
   driven through a real process so a shell script can rely on $?. *)

let exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/smokestackc.exe"

let write_temp content =
  let path = Filename.temp_file "smokestackc_cli" ".c" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

(* Run the binary, return (exit code, stdout+stderr). *)
let run_cli args =
  let out = Filename.temp_file "smokestackc_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let check_code what expected (code, output) =
  if code <> expected then
    Alcotest.failf "%s: expected exit %d, got %d; output:\n%s" what expected
      code output

let clean_src = {| int main() { print_str("ok\n"); return 0; } |}

let nonzero_src = {| int main() { return 3; } |}

let fault_src = {| int main() { int *p; p = (int*)32768; return *p; } |}

let chaos_src =
  {|
int leaf(int n) {
  int a[4];
  int b;
  b = n;
  a[0] = b + 1;
  return a[0];
}
int main() {
  int i;
  i = 0;
  while (i < 50) { i = i + leaf(0) + 1; }
  return 0;
}
|}

let test_exit_0_clean_run () =
  let src = write_temp clean_src in
  let code, output = run_cli [ "run"; src ] in
  check_code "clean run" 0 (code, output);
  Alcotest.(check bool)
    "program output present" true
    (String.length output >= 3 && String.sub output 0 3 = "ok\n")

let test_exit_1_nonzero_program_exit () =
  let src = write_temp nonzero_src in
  check_code "exit 3 program" 1 (run_cli [ "run"; src ])

let test_exit_2_usage () =
  let src = write_temp clean_src in
  check_code "unknown flag" 2 (run_cli [ "run"; "--no-such-flag"; src ]);
  check_code "bad chaos spec" 2 (run_cli [ "run"; "--chaos"; "bogus"; src ]);
  check_code "rng chaos without --harden" 2
    (run_cli [ "run"; "--chaos"; "rng:ones@1"; src ]);
  check_code "bad seeds" 2 (run_cli [ "run"; "--seeds"; "0"; src ]);
  check_code "bad timeout" 2 (run_cli [ "run"; "--timeout"; "0"; src ]);
  check_code "bad jobs" 2 (run_cli [ "run"; "--jobs"; "0"; src ]);
  check_code "garbage jobs" 2 (run_cli [ "run"; "--jobs"; "many"; src ])

let test_exit_3_parse_error () =
  let src = write_temp "int main( { return 0 }" in
  let code, output = run_cli [ "run"; src ] in
  check_code "parse error" 3 (code, output);
  Alcotest.(check bool)
    "one-line diagnostic" true
    (String.length output > 0
    && (not (String.contains (String.trim output) '\n'))
    && String.length output >= 12
    && String.sub output 0 12 = "smokestackc:")

let test_exit_4_runtime_fault () =
  let src = write_temp fault_src in
  check_code "memory fault" 4 (run_cli [ "run"; src ])

let test_exit_4_chaos_detection () =
  let src = write_temp chaos_src in
  (* corrupting the FID assertion must surface as a detection: exit 4 *)
  check_code "FID corruption detected" 4
    (run_cli
       [ "run"; "--harden"; "--chaos"; "intr:ss.fid_assert:xor=1@1"; src ])

let test_chaos_rng_degradation_reported () =
  let src = write_temp chaos_src in
  let code, output =
    run_cli
      [ "run"; "--harden"; "--scheme"; "RDRAND"; "--chaos"; "rng:ones@1"; src ]
  in
  check_code "stuck RDRAND run completes on the fallback" 0 (code, output);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "degradation reported" true
    (contains output "RDRAND->AES-10")

let test_timeout_multi_seed () =
  let src = write_temp clean_src in
  let code, output =
    run_cli [ "run"; "--seeds"; "3"; "--timeout"; "30"; "--jobs"; "2"; src ]
  in
  check_code "multi-seed with timeout" 0 (code, output);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (let nh = String.length output and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub output i nn = needle || go (i + 1))
         in
         go 0))
    [ "== seed 1 =="; "== seed 2 =="; "== seed 3 ==" ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- lint ---------------------------------------------------------- *)

let test_lint_clean_file () =
  let src = write_temp chaos_src in
  let code, output = run_cli [ "lint"; src ] in
  check_code "lint clean file" 0 (code, output);
  Alcotest.(check bool) "clean verdict printed" true (contains output "clean")

let test_lint_clean_workload () =
  let code, output = run_cli [ "lint"; "--workload"; "proftpd-io" ] in
  check_code "lint proftpd-io" 0 (code, output);
  Alcotest.(check bool) "clean verdict printed" true (contains output "clean")

let test_lint_json () =
  let json = Filename.temp_file "smokestackc_lint" ".json" in
  let code, output =
    run_cli [ "lint"; "--workload"; "stack-direct"; "--json"; json ]
  in
  check_code "lint --json" 0 (code, output);
  let ic = open_in_bin json in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove json)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Sutil.Json.of_string text with
  | Error e -> Alcotest.failf "lint --json output does not parse: %s" e
  | Ok j -> (
      match (Sutil.Json.member "clean" j, Sutil.Json.member "violations" j) with
      | Some (Sutil.Json.Bool true), Some (Sutil.Json.List []) -> ()
      | _ -> Alcotest.failf "unexpected lint JSON: %s" text)

let test_lint_mutate_caught () =
  (* progen-42 admits every mutation class; all six must be caught *)
  let code, output =
    run_cli [ "lint"; "--progen"; "42"; "--mutate"; "6" ]
  in
  check_code "lint --mutate" 0 (code, output);
  Alcotest.(check bool)
    "all mutations caught" true
    (contains output "6/6 mutation(s) caught");
  Alcotest.(check bool) "no missed mutant" false (contains output "MISSED")

let test_lint_usage_errors () =
  check_code "lint without input" 2 (run_cli [ "lint" ]);
  check_code "lint unknown workload" 2
    (run_cli [ "lint"; "--workload"; "no-such-workload" ]);
  let src = write_temp clean_src in
  check_code "lint negative mutate" 2 (run_cli [ "lint"; "--mutate"; "-1"; src ])

let test_lint_selective () =
  let code, output =
    run_cli [ "lint"; "--workload"; "gobmk"; "--selective" ]
  in
  check_code "lint --selective" 0 (code, output);
  Alcotest.(check bool) "elided count reported" true (contains output "elided")

(* --- serve --------------------------------------------------------- *)

(* stdout only: the serve report must be byte-identical across --jobs,
   while stderr carries the host-dependent timing footer *)
let run_cli_stdout args =
  let out = Filename.temp_file "smokestackc_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> /dev/null" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let serve_small = [ "serve"; "--sessions"; "60"; "--seed"; "7" ]

let test_serve_small_run () =
  let code, output = run_cli (serve_small @ [ "--jobs"; "2"; "--tenants" ]) in
  check_code "serve run" 0 (code, output);
  Alcotest.(check bool) "summary table present" true
    (contains output "batch-verdict mismatches");
  Alcotest.(check bool) "tenant table present" true
    (contains output "per-tenant service and security");
  Alcotest.(check bool) "pool footer on stderr" true (contains output "pool:")

let test_serve_stdout_identical_across_jobs () =
  let j1 = run_cli_stdout (serve_small @ [ "--jobs"; "1" ]) in
  let j3 = run_cli_stdout (serve_small @ [ "--jobs"; "3" ]) in
  check_code "serve --jobs 1" 0 j1;
  check_code "serve --jobs 3" 0 j3;
  Alcotest.(check string) "stdout byte-identical across --jobs" (snd j1)
    (snd j3);
  let bc = run_cli_stdout (serve_small @ [ "--engine"; "bytecode" ]) in
  check_code "serve --engine bytecode" 0 bc;
  Alcotest.(check string) "stdout byte-identical across engines" (snd j1)
    (snd bc)

let test_serve_json () =
  let json = Filename.temp_file "smokestackc_serve" ".json" in
  let code, output = run_cli (serve_small @ [ "--json"; json ]) in
  check_code "serve --json" 0 (code, output);
  let ic = open_in_bin json in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove json)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Sutil.Json.of_string text with
  | Error e -> Alcotest.failf "serve --json output does not parse: %s" e
  | Ok j -> (
      match Sutil.Json.member "pool" j with
      | Some (Sutil.Json.Obj _) -> ()
      | _ -> Alcotest.failf "serve --json lacks pool counters: %s" text)

let test_serve_usage_errors () =
  check_code "serve --sessions 0" 2 (run_cli [ "serve"; "--sessions"; "0" ]);
  check_code "serve --jobs 0" 2 (run_cli [ "serve"; "--jobs"; "0" ]);
  check_code "serve garbage jobs" 2 (run_cli [ "serve"; "--jobs"; "lots" ]);
  check_code "serve percentages over 100" 2
    (run_cli [ "serve"; "--attack-pct"; "80"; "--chaos-pct"; "30" ]);
  check_code "serve --capacity 0" 2 (run_cli [ "serve"; "--capacity"; "0" ]);
  check_code "serve --workers 0" 2 (run_cli [ "serve"; "--workers"; "0" ]);
  check_code "serve --timeout 0" 2 (run_cli [ "serve"; "--timeout"; "0" ]);
  check_code "serve --mean-gap 0" 2 (run_cli [ "serve"; "--mean-gap"; "0" ])

(* --- campaign ------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store_dir f =
  (* reserve a unique path, then hand the (absent) directory to the CLI,
     which creates the store in it *)
  let dir = Filename.temp_file "smokestackc_store" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let campaign_small dir = [ "campaign"; "--progen"; "25"; "--store"; dir ]

let test_campaign_cold_then_warm_identical () =
  with_store_dir @@ fun dir ->
  let cold = run_cli_stdout (campaign_small dir) in
  let warm = run_cli_stdout (campaign_small dir @ [ "--jobs"; "3" ]) in
  check_code "cold campaign" 0 cold;
  check_code "warm campaign" 0 warm;
  Alcotest.(check bool) "summary table present" true
    (contains (snd cold) "digest");
  Alcotest.(check string)
    "warm stdout byte-identical to cold (across --jobs)" (snd cold) (snd warm)

let test_campaign_resume () =
  with_store_dir @@ fun dir ->
  let half = run_cli_stdout ([ "campaign"; "--progen"; "12"; "--store"; dir ]) in
  check_code "half campaign" 0 half;
  let resumed =
    run_cli
      [ "campaign"; "--progen"; "25"; "--store"; dir; "--resume" ]
  in
  check_code "resumed campaign" 0 resumed;
  let uninterrupted = run_cli_stdout (campaign_small dir) in
  check_code "uninterrupted warm replay" 0 uninterrupted;
  (* the resumed run's stdout must equal a from-scratch run's; compare
     via the warm replay, which serves both from the same store *)
  with_store_dir @@ fun fresh ->
  let scratch = run_cli_stdout (campaign_small fresh) in
  check_code "from-scratch campaign" 0 scratch;
  Alcotest.(check string) "resume converges on the from-scratch report"
    (snd scratch) (snd uninterrupted)

let test_campaign_json () =
  with_store_dir @@ fun dir ->
  ignore (run_cli (campaign_small dir));
  let json = Filename.temp_file "smokestackc_campaign" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove json) @@ fun () ->
  let code, output = run_cli (campaign_small dir @ [ "--json"; json ]) in
  check_code "campaign --json" 0 (code, output);
  let ic = open_in_bin json in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Sutil.Json.of_string text with
  | Error e -> Alcotest.failf "campaign --json output does not parse: %s" e
  | Ok j -> (
      (match Sutil.Json.member "digest" j with
      | Some (Sutil.Json.String d) ->
          Alcotest.(check bool) "digest non-empty" true (String.length d > 0)
      | _ -> Alcotest.failf "campaign JSON lacks digest: %s" text);
      (match Sutil.Json.member "report" j with
      | Some (Sutil.Json.Obj _) -> ()
      | _ -> Alcotest.failf "campaign JSON lacks report: %s" text);
      (match Sutil.Json.member "pool" j with
      | Some (Sutil.Json.Obj _) -> ()
      | _ -> Alcotest.failf "campaign JSON lacks pool counters: %s" text);
      match Sutil.Json.member "store" j with
      | Some store -> (
          (* second run over a populated store: every key hits *)
          match Sutil.Json.member "hits" store with
          | Some (Sutil.Json.Int 25) -> ()
          | _ -> Alcotest.failf "warm run did not hit every key: %s" text)
      | None -> Alcotest.failf "campaign JSON lacks store counters: %s" text)

let test_campaign_usage_errors () =
  with_store_dir @@ fun dir ->
  check_code "campaign without --progen" 2
    (run_cli [ "campaign"; "--store"; dir ]);
  check_code "campaign without --store" 2
    (run_cli [ "campaign"; "--progen"; "5" ]);
  check_code "campaign --progen 0" 2
    (run_cli [ "campaign"; "--progen"; "0"; "--store"; dir ]);
  check_code "campaign garbage progen" 2
    (run_cli [ "campaign"; "--progen"; "lots"; "--store"; dir ]);
  check_code "campaign --jobs 0" 2
    (run_cli (campaign_small dir @ [ "--jobs"; "0" ]));
  check_code "campaign --fuel 0" 2
    (run_cli (campaign_small dir @ [ "--fuel"; "0" ]));
  check_code "campaign --resume with nothing to resume" 2
    (run_cli (campaign_small dir @ [ "--resume" ]))

let test_campaign_rejects_broken_store () =
  (* a file where the store directory should be *)
  let file = Filename.temp_file "smokestackc_store" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () ->
      check_code "store path is a file" 2 (run_cli (campaign_small file)));
  (* a directory written by a future format version *)
  with_store_dir @@ fun dir ->
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "manifest.json") in
  output_string oc "{\"smokestack-store\": 999}\n";
  close_out oc;
  let code, output = run_cli (campaign_small dir) in
  check_code "version-mismatched store" 2 (code, output);
  Alcotest.(check bool)
    "diagnostic names the version mismatch" true
    (contains output "version");
  (* a pre-existing non-store directory *)
  with_store_dir @@ fun dir2 ->
  Sys.mkdir dir2 0o755;
  let oc = open_out (Filename.concat dir2 "unrelated.txt") in
  output_string oc "hands off\n";
  close_out oc;
  let code, output = run_cli (campaign_small dir2) in
  check_code "foreign directory" 2 (code, output);
  Alcotest.(check bool)
    "diagnostic says it is not a store" true
    (contains output "manifest")

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0: clean run" `Quick test_exit_0_clean_run;
          Alcotest.test_case "1: non-zero exit" `Quick
            test_exit_1_nonzero_program_exit;
          Alcotest.test_case "2: usage errors" `Quick test_exit_2_usage;
          Alcotest.test_case "3: parse error" `Quick test_exit_3_parse_error;
          Alcotest.test_case "4: runtime fault" `Quick test_exit_4_runtime_fault;
          Alcotest.test_case "4: chaos detection" `Quick
            test_exit_4_chaos_detection;
        ] );
      ( "flags",
        [
          Alcotest.test_case "chaos degradation line" `Quick
            test_chaos_rng_degradation_reported;
          Alcotest.test_case "timeout + seeds" `Quick test_timeout_multi_seed;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean file" `Quick test_lint_clean_file;
          Alcotest.test_case "clean workload" `Quick test_lint_clean_workload;
          Alcotest.test_case "json report" `Quick test_lint_json;
          Alcotest.test_case "mutations caught" `Slow test_lint_mutate_caught;
          Alcotest.test_case "usage errors" `Quick test_lint_usage_errors;
          Alcotest.test_case "selective" `Quick test_lint_selective;
        ] );
      ( "serve",
        [
          Alcotest.test_case "small run" `Quick test_serve_small_run;
          Alcotest.test_case "stdout identical across jobs/engines" `Quick
            test_serve_stdout_identical_across_jobs;
          Alcotest.test_case "json report" `Quick test_serve_json;
          Alcotest.test_case "usage errors" `Quick test_serve_usage_errors;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "cold then warm identical" `Quick
            test_campaign_cold_then_warm_identical;
          Alcotest.test_case "resume converges" `Quick test_campaign_resume;
          Alcotest.test_case "json report and counters" `Quick
            test_campaign_json;
          Alcotest.test_case "usage errors" `Quick test_campaign_usage_errors;
          Alcotest.test_case "broken store diagnostics" `Quick
            test_campaign_rejects_broken_store;
        ] );
    ]
