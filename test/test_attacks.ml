(* Tests for the attack framework: payload crafting, static layout
   analysis (validated against the live machine), disclosure, verdicts
   and the brute-force driver. *)

(* ------------------------------------------------------------------ *)
(* Overflow crafting *)

let test_craft_basic () =
  let chunk =
    Attacks.Overflow.craft ~len:4
      [ Attacks.Overflow.bytes 6 "XY"; Attacks.Overflow.u32 10 0x01020304L ]
  in
  Alcotest.(check int) "length" 14 (String.length chunk);
  Alcotest.(check char) "filler" 'A' chunk.[0];
  Alcotest.(check string) "bytes" "XY" (String.sub chunk 6 2);
  Alcotest.(check string) "u32 LE" "\x04\x03\x02\x01" (String.sub chunk 10 4)

let test_craft_rejects_overlap () =
  (* unlabeled writes still name their byte ranges *)
  Alcotest.check_raises "overlap"
    (Invalid_argument
       "Attacks.Overflow.craft: write[7..15) overlaps write[4..12)")
    (fun () ->
      ignore
        (Attacks.Overflow.craft ~len:1
           [ Attacks.Overflow.u64 4 1L; Attacks.Overflow.u64 7 2L ]))

let test_craft_overlap_names_slots () =
  (* labeled writes: the diagnostic names the colliding slots, which is
     what a synthesized chain surfaces when a layout guess is
     geometrically impossible *)
  Alcotest.check_raises "labeled overlap"
    (Invalid_argument
       "Attacks.Overflow.craft: stamp[8..16) overlaps seen[4..12)")
    (fun () ->
      ignore
        (Attacks.Overflow.craft ~len:1
           [
             Attacks.Overflow.u64 ~label:"seen" 4 1L;
             Attacks.Overflow.u64 ~label:"stamp" 8 2L;
           ]))

let test_craft_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument
       "Attacks.Overflow.craft: negative offset in ctr[-1..7)")
    (fun () ->
      ignore
        (Attacks.Overflow.craft ~len:1
           [ Attacks.Overflow.u64 ~label:"ctr" (-1) 1L ]))

let prop_craft_writes_land =
  QCheck2.Test.make ~count:100 ~name:"every write lands at its offset"
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (pair (int_range 0 200) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))))
  @@ fun writes ->
  (* space the writes out to avoid overlaps *)
  let writes =
    List.mapi
      (fun i (_, data) -> Attacks.Overflow.bytes (i * 300) data)
      writes
  in
  let chunk = Attacks.Overflow.craft ~len:1 writes in
  List.for_all
    (fun (w : Attacks.Overflow.write) ->
      String.sub chunk w.rel (String.length w.data) = w.data)
    writes

(* ------------------------------------------------------------------ *)
(* Layout vs. the live machine: the static analysis must agree with
   where the interpreter really puts things. *)

let layout_probe_src =
  {|
long leak_addr = 0;
long leak_addr2 = 0;

void inner(long depth) {
  char buf[40];
  long marker = 0;
  buf[0] = 1;
  leak_addr2 = (long)&marker;
  marker = depth;
}

int main() {
  short tag = 3;
  char name[10];
  long big = 0;
  name[0] = (char)tag;
  leak_addr = (long)&big;
  inner(1);
  return 0;
}
|}

let test_layout_matches_machine () =
  let prog = Minic.Driver.compile layout_probe_src in
  let st = Machine.Exec.prepare prog in
  let outcome, _ = Machine.Exec.run st in
  Alcotest.(check bool) "ran" true (outcome = Machine.Exec.Exit 0L);
  let big_addr =
    Int64.to_int
      (Machine.Memory.load st.mem ~width:8 (Machine.Exec.global_addr st "leak_addr"))
  in
  let marker_addr =
    Int64.to_int
      (Machine.Memory.load st.mem ~width:8 (Machine.Exec.global_addr st "leak_addr2"))
  in
  let rows = Attacks.Layout.chain prog [ "main"; "inner" ] in
  let off f v =
    List.find_map (fun (f', v', o) -> if f = f' && v = v' then Some o else None) rows
    |> Option.get
  in
  Alcotest.(check int) "main/big matches machine"
    (Machine.Exec.default_stack_top + off "main" "big")
    big_addr;
  Alcotest.(check int) "inner/marker matches machine"
    (Machine.Exec.default_stack_top + off "inner" "marker")
    marker_addr;
  (* relative distance between the frames, as the exploits compute it *)
  Alcotest.(check int) "cross-frame distance"
    (big_addr - marker_addr)
    (off "main" "big" - off "inner" "marker")

let test_layout_blind_on_hardened () =
  let prog = Minic.Driver.compile layout_probe_src in
  let hardened = Smokestack.Harden.harden Smokestack.Config.default prog in
  let f = Option.get (Ir.Prog.find_func hardened.prog "inner") in
  let frame = Attacks.Layout.frame_of_func f in
  Alcotest.(check bool) "buf invisible" true
    (Option.is_none (Attacks.Layout.var_offset frame "buf"));
  Alcotest.(check bool) "slab visible" true
    (Option.is_some (Attacks.Layout.var_offset frame "__ss_total"))

let test_global_addrs_match () =
  let prog = Minic.Driver.compile layout_probe_src in
  let st = Machine.Exec.prepare prog in
  List.iter
    (fun (name, addr) ->
      Alcotest.(check int) name (Machine.Exec.global_addr st name) addr)
    (Attacks.Layout.global_addrs prog)

(* ------------------------------------------------------------------ *)
(* Disclosure *)

let test_disclosure_find () =
  let prog = Minic.Driver.compile layout_probe_src in
  let st = Machine.Exec.prepare prog in
  let addr = Machine.Exec.global_addr st "leak_addr" in
  Machine.Memory.store st.mem ~width:8 addr 0x4142434445464748L;
  let base = addr and len = 32 in
  (match Attacks.Disclosure.find_u64 st ~base ~len 0x4142434445464748L with
  | [ off ] -> Alcotest.(check int) "found at offset" 0 off
  | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l));
  match Attacks.Disclosure.find_bytes st ~base ~len "HGFE" with
  | [ off ] -> Alcotest.(check int) "substring" 0 off
  | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Verdicts + brute force *)

let test_verdict_classification () =
  let open Attacks.Verdict in
  Alcotest.(check bool) "goal wins" true
    (classify (Machine.Exec.Exit 0L) ~goal_met:true = Success);
  Alcotest.(check bool) "goal wins over crash" true
    (classify
       (Machine.Exec.Fault { fault = Machine.Memory.Null_dereference; func = "f" })
       ~goal_met:true
    = Success);
  Alcotest.(check bool) "crash" true
    (match
       classify
         (Machine.Exec.Fault { fault = Machine.Memory.Null_dereference; func = "f" })
         ~goal_met:false
     with
    | Crashed _ -> true
    | _ -> false);
  Alcotest.(check bool) "detected" true
    (match
       classify (Machine.Exec.Detected { reason = "fid"; func = "f" }) ~goal_met:false
     with
    | Detected _ -> true
    | _ -> false);
  Alcotest.(check bool) "no effect" true
    (classify (Machine.Exec.Exit 0L) ~goal_met:false = No_effect);
  Alcotest.(check (float 0.001)) "rate" 0.25
    (success_rate [ Success; No_effect; Crashed "x"; Detected "y" ])

let test_bruteforce_driver () =
  let r =
    Attacks.Bruteforce.run ~max_attempts:10 (fun i ->
        if i = 3 then Attacks.Verdict.Success else Attacks.Verdict.No_effect)
  in
  Alcotest.(check bool) "succeeded" true r.succeeded;
  Alcotest.(check int) "4 attempts" 4 r.attempts;
  let r2 = Attacks.Bruteforce.run ~max_attempts:5 (fun _ -> Attacks.Verdict.No_effect) in
  Alcotest.(check bool) "failed" false r2.succeeded;
  Alcotest.(check int) "budget exhausted" 5 r2.attempts

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "attacks"
    [
      ( "overflow",
        [
          Alcotest.test_case "craft basic" `Quick test_craft_basic;
          Alcotest.test_case "rejects overlap" `Quick test_craft_rejects_overlap;
          Alcotest.test_case "overlap names slots" `Quick
            test_craft_overlap_names_slots;
          Alcotest.test_case "rejects negative" `Quick test_craft_rejects_negative;
          qt prop_craft_writes_land;
        ] );
      ( "layout",
        [
          Alcotest.test_case "matches machine" `Quick test_layout_matches_machine;
          Alcotest.test_case "blind on hardened" `Quick test_layout_blind_on_hardened;
          Alcotest.test_case "global addrs" `Quick test_global_addrs_match;
        ] );
      ("disclosure", [ Alcotest.test_case "find" `Quick test_disclosure_find ]);
      ( "verdict+brute",
        [
          Alcotest.test_case "classification" `Quick test_verdict_classification;
          Alcotest.test_case "brute force driver" `Quick test_bruteforce_driver;
        ] );
    ]
