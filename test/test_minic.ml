(* Front-end tests: lexer, parser, and full compile-and-execute
   semantics checks (the interpreter doubles as the oracle). *)

let run ?(input = "") src =
  let prog = Minic.Driver.compile src in
  let st = Machine.Exec.prepare prog in
  Machine.Exec.set_input st (Machine.Exec.input_string input);
  Machine.Exec.run st

let expect_output ?input name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let outcome, stats = run ?input src in
      (match outcome with
      | Machine.Exec.Exit 0L -> ()
      | o -> Alcotest.failf "%s: %s" name (Machine.Exec.outcome_to_string o));
      Alcotest.(check string) name expected stats.output)

let expect_error name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Minic.Driver.compile_result src with
      | Ok _ -> Alcotest.failf "%s: expected a compile error" name
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S mentions %S" name msg fragment)
            true
            (let n = String.length fragment in
             let found = ref false in
             for i = 0 to String.length msg - n do
               if String.sub msg i n = fragment then found := true
             done;
             !found))

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = Minic.Lexer.tokenize "x += 0x10 >> 2; // comment\n 'a' \"s\\n\"" in
  let kinds = Array.to_list (Array.map (fun t -> t.Minic.Token.tok) toks) in
  Alcotest.(check bool) "shape" true
    (kinds
    = [
        Minic.Token.Ident "x"; Minic.Token.Plus_assign; Minic.Token.Int_lit 16L;
        Minic.Token.Shr; Minic.Token.Int_lit 2L; Minic.Token.Semi;
        Minic.Token.Char_lit 'a'; Minic.Token.Str_lit "s\n"; Minic.Token.Eof;
      ])

let test_lexer_positions () =
  let toks = Minic.Lexer.tokenize "a\n  b" in
  Alcotest.(check int) "line of b" 2 toks.(1).Minic.Token.loc.line;
  Alcotest.(check int) "col of b" 3 toks.(1).Minic.Token.loc.col

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string"
    (Minic.Srcloc.Error { loc = { line = 1; col = 1 }; msg = "unterminated string literal" })
    (fun () -> ignore (Minic.Lexer.tokenize "\"abc"));
  (match Minic.Lexer.tokenize "@" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Minic.Srcloc.Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Execution semantics *)

let semantics =
  [
    expect_output "arith precedence"
      "int main() { print_int(2 + 3 * 4 - 10 / 2); return 0; }" "9";
    expect_output "modulo and shifts"
      "int main() { print_int((17 % 5) + (1 << 6) + (256 >> 4)); return 0; }"
      "82";
    expect_output "bitwise"
      "int main() { print_int((12 & 10) + (12 | 3) + (12 ^ 10) + (~0)); return 0; }"
      "28";
    expect_output "negative division truncates toward zero"
      "int main() { print_int(-7 / 2); print_int(-7 % 2); return 0; }" "-3-1";
    expect_output "comparison chain"
      "int main() { print_int((3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + (3 == 3) + (3 != 3)); return 0; }"
      "4";
    expect_output "short-circuit and"
      {|
long hits = 0;
long bump() { hits += 1; return 1; }
int main() {
  if (0 && bump()) {}
  if (1 && bump()) {}
  print_int(hits);
  return 0;
}
|}
      "1";
    expect_output "short-circuit or"
      {|
long hits = 0;
long bump() { hits += 1; return 0; }
int main() {
  if (1 || bump()) {}
  if (0 || bump()) {}
  print_int(hits);
  return 0;
}
|}
      "1";
    expect_output "ternary"
      "int main() { int x = 5; print_int(x > 3 ? 10 : 20); print_int(x > 9 ? 10 : 20); return 0; }"
      "1020";
    expect_output "while break continue"
      {|
int main() {
  long s = 0;
  long i = 0;
  while (1) {
    i += 1;
    if (i > 10) break;
    if (i % 2 == 0) continue;
    s += i;
  }
  print_int(s);
  return 0;
}
|}
      "25";
    expect_output "for loop"
      "int main() { long s = 0; for (int i = 0; i < 5; i++) s += i; print_int(s); return 0; }"
      "10";
    expect_output "do-while runs once"
      "int main() { long n = 0; do { n += 1; } while (0); print_int(n); return 0; }"
      "1";
    expect_output "recursion (fib)"
      {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { print_int(fib(15)); return 0; }
|}
      "610";
    expect_output "pointers and address-of"
      {|
int main() {
  long x = 5;
  long *p = &x;
  *p = 9;
  print_int(x + *p);
  return 0;
}
|}
      "18";
    expect_output "pointer arithmetic scales"
      {|
int main() {
  int a[4];
  int *p = a;
  a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
  print_int(*(p + 2));
  print_int((int)((long)(p + 2) - (long)p));
  return 0;
}
|}
      "38";
    expect_output "pointer difference"
      {|
int main() {
  long a[8];
  long *p = &a[6];
  long *q = &a[1];
  print_int(p - q);
  return 0;
}
|}
      "5";
    expect_output "arrays of arrays"
      {|
long m[3][4];
int main() {
  m[1][2] = 42;
  m[2][3] = 7;
  print_int(m[1][2] + m[2][3]);
  return 0;
}
|}
      "49";
    expect_output "struct members and arrows"
      {|
struct point { int x; int y; };
int main() {
  struct point p;
  struct point *q = &p;
  p.x = 3;
  q->y = 4;
  print_int(p.x * q->y);
  return 0;
}
|}
      "12";
    expect_output "struct layout with mixed fields"
      {|
struct mix { char c; long l; short s; };
int main() {
  print_int(sizeof(struct mix));
  return 0;
}
|}
      "24";
    expect_output "sizeof"
      {|
int main() {
  int a[10];
  print_int(sizeof(int));
  print_int(sizeof(long));
  print_int(sizeof(char[64]));
  print_int(sizeof(a));
  return 0;
}
|}
      "486440";
    expect_output "char narrowing wraps"
      {|
int main() {
  char c = (char)300;
  print_int(c);
  return 0;
}
|}
      "44";
    expect_output "short sign extension"
      {|
int main() {
  short s = (short)65535;
  print_int(s);
  return 0;
}
|}
      "-1";
    expect_output "compound assignments"
      {|
int main() {
  long x = 10;
  x += 5; x -= 3; x *= 4; x ^= 1; x |= 2; x &= 51;
  print_int(x);
  return 0;
}
|}
      "51";
    expect_output "pre/post increment"
      {|
int main() {
  long i = 5;
  print_int(i++);
  print_int(i);
  print_int(++i);
  print_int(i--);
  print_int(--i);
  return 0;
}
|}
      "56775";
    expect_output "globals with initializers"
      {|
long g = 40;
const char msg[8] = "hey";
int main() {
  g += 2;
  print_int(g);
  print_str(msg);
  return 0;
}
|}
      "42hey";
    expect_output "string literals intern"
      {|
int main() {
  print_int(strlen("hello"));
  print_int(memcmp("abc", "abc", 3));
  return 0;
}
|}
      "50";
    expect_output "VLA basic"
      {|
int main() {
  long n = 6;
  long a[n];
  long i = 0;
  long s = 0;
  for (i = 0; i < n; i++) a[i] = i * i;
  for (i = 0; i < n; i++) s += a[i];
  print_int(s);
  return 0;
}
|}
      "55";
  ]

let semantics =
  semantics
  @ [
      expect_output "address of function is stable and non-null"
        {|
long twice(long x) { return 2 * x; }
int main() {
  long f = (long)&twice;
  long g = (long)&twice;
  print_int(f == g);
  print_int(f != 0);
  return 0;
}
|}
        "11";
      expect_output ~input:"abcde" "read_input"
        {|
int main() {
  char buf[16];
  long n = read_input(buf, 15);
  buf[n] = 0;
  print_int(n);
  print_str(buf);
  return 0;
}
|}
        "5abcde";
      expect_output "heap malloc"
        {|
int main() {
  long *p = (long*)malloc(16);
  p[0] = 41;
  p[1] = 1;
  print_int(p[0] + p[1]);
  free(p);
  return 0;
}
|}
        "42";
      expect_output "scopes shadow"
        {|
int main() {
  long x = 1;
  {
    long x = 2;
    print_int(x);
  }
  print_int(x);
  return 0;
}
|}
        "21";
      expect_output "switch dispatch and default"
        {|
long classify(long c) {
  switch (c) {
  case 0: return 100;
  case 1:
  case 2: return 200;
  case 0 - 3: return 300;
  default: return 400;
  }
}
int main() {
  print_int(classify(0));
  print_int(classify(1));
  print_int(classify(2));
  print_int(classify(0 - 3));
  print_int(classify(9));
  return 0;
}
|}
        "100200200300400";
      expect_output "switch fallthrough and break"
        {|
int main() {
  long acc = 0;
  switch (2) {
  case 1: acc += 1;
  case 2: acc += 10;
  case 3: acc += 100; break;
  case 4: acc += 1000;
  default: acc += 10000;
  }
  print_int(acc);
  return 0;
}
|}
        "110";
      expect_output "switch without default"
        {|
int main() {
  long acc = 7;
  switch (42) { case 1: acc = 0; }
  print_int(acc);
  return 0;
}
|}
        "7";
      expect_output "continue inside switch binds the loop"
        {|
int main() {
  long s = 0;
  for (int i = 0; i < 6; i++) {
    switch (i % 3) {
    case 0: continue;
    case 1: s += 10; break;
    default: s += 1;
    }
    s += 100;
  }
  print_int(s);
  return 0;
}
|}
        "422";
      expect_output "logical ops yield 0/1"
        {|
int main() {
  print_int(5 && 3);
  print_int(0 || 7);
  print_int(!9);
  print_int(!0);
  return 0;
}
|}
        "1101";
    ]

let edge_cases =
  [
    expect_output "hex literals and escapes"
      {|
int main() {
  print_int(0x10 + 0xFF);
  print_int('\n');
  print_int('\x41');
  print_int('\0');
  return 0;
}
|}
      "27110650";
    expect_output "comments everywhere"
      "int /* c1 */ main( /* c2 */ ) { // line
  return /* deep */ 0; }"
      "";
    expect_output "deeply nested expressions"
      (Printf.sprintf "int main() { print_int(%s1%s); return 0; }"
         (String.concat "" (List.init 40 (fun _ -> "(1+")))
         (String.concat "" (List.init 40 (fun _ -> ")"))))
      "41";
    expect_output "comma declarations share the base type"
      "int main() { long a = 1, b = 2, c = 3; print_int(a + b + c); return 0; }"
      "6";
    expect_output "chained assignment is right-associative"
      "int main() { long a; long b; long c; a = b = c = 9; print_int(a + b + c); return 0; }"
      "27";
    expect_output "unary minus precedence"
      "int main() { print_int(-3 * -4 - -5); return 0; }" "17";
    expect_output "shift and mask precedence"
      "int main() { print_int(1 << 2 + 1); print_int((1 << 2) + 1); return 0; }"
      "85";
    expect_output "sizeof expression uses static type"
      {|
int main() {
  struct p { long x; long y; };
  return 0;
}
struct q { long x; char c; };
long f() { struct q v; return sizeof(v); }
|}
      "" [@warning "-a"];
  ]

(* the struct-in-function above is not supported; keep the valid set *)
let edge_cases =
  List.filteri (fun i _ -> i < List.length edge_cases - 1) edge_cases
  @ [
      expect_output "sizeof an expression"
        {|
struct q { long x; char c; };
long f() { struct q v; v.x = 0; return sizeof(v); }
int main() { print_int(f()); return 0; }
|}
        "16";
      expect_output "arrays decay in calls"
        {|
long first(long *p) { return p[0]; }
int main() { long a[3]; a[0] = 5; print_int(first(a)); return 0; }
|}
        "5";
      expect_output "address of array element across calls"
        {|
void bump(long *cell) { *cell += 1; }
int main() {
  long a[4];
  a[2] = 10;
  bump(&a[2]);
  print_int(a[2]);
  return 0;
}
|}
        "11";
      expect_output "struct pointer chains"
        {|
struct node { long v; struct node *next; };
int main() {
  struct node a; struct node b; struct node c;
  a.v = 1; b.v = 2; c.v = 3;
  a.next = &b; b.next = &c; c.next = (struct node*)0;
  print_int(a.next->next->v);
  return 0;
}
|}
        "3";
      expect_output "ternary nests"
        "int main() { long x = 2; print_int(x == 1 ? 10 : x == 2 ? 20 : 30); return 0; }"
        "20";
      expect_output "empty statements"
        "int main() { long i = 0; ; while (i < 3) { i += 1; ; } ; print_int(i); return 0; }"
        "3";
      expect_output "empty for pieces"
        "int main() { long i = 0; for (;;) { i += 1; if (i > 4) break; } print_int(i); return 0; }"
        "5";
    ]

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let diagnostics =
  [
    expect_error "unknown variable" "int main() { return x; }" "unknown identifier";
    expect_error "unknown function" "int main() { zap(); return 0; }" "unknown identifier";
    expect_error "arity" "long f(long a) { return a; } int main() { return (int)f(1, 2); }" "expects 1 argument";
    expect_error "void misuse" "void v() {} int main() { long x = 0; x = v(); return 0; }" "result of a void";
    expect_error "break outside loop" "int main() { break; return 0; }" "break outside";
    expect_error "aggregate assignment"
      "struct p { int x; }; int main() { struct p a; struct p b; a = b; return 0; }"
      "cannot";
    expect_error "redeclaration" "int main() { long x = 1; long x = 2; return 0; }" "redeclaration";
    expect_error "return value from void" "void f() { return 3; } int main() { return 0; }" "void function";
    expect_error "bad member" "struct p { int x; }; int main() { struct p a; a.y = 1; return 0; }" "no member";
    expect_error "deref non-pointer" "int main() { long x = 1; return (int)*x; }" "non-pointer";
    expect_error "syntax" "int main() { return 0 }" "expected ;";
    expect_error "non-constant case"
      "int main() { long x = 1; switch (x) { case x: return 1; } return 0; }"
      "constant";
    expect_error "default not last"
      "int main() { switch (1) { default: return 1; case 2: return 2; } return 0; }"
      "last";
    expect_error "continue in bare switch"
      "int main() { switch (1) { case 1: continue; } return 0; }"
      "continue outside";
  ]

(* void-call-result case: our checker reports this via the verifier
   rule; make sure the message above matches what Lower emits. *)

let test_builtins_in_sync () =
  (* every builtin Lower declares must be resolvable by the machine *)
  let declared = List.map (fun (n, _, _) -> n) Minic.Lower.builtins in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " known to machine") true
        (List.mem n Machine.Exec.builtin_names))
    declared;
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " declared in minic") true (List.mem n declared))
    Machine.Exec.builtin_names

let test_verified_ir () =
  (* lowering output always passes the verifier (Lower runs it; make
     sure a nontrivial program gets through) *)
  let prog =
    Minic.Driver.compile
      {|
struct node { long v; struct node *next; };
long sum_list(struct node *n) {
  long s = 0;
  while (n != (struct node*)0) {
    s += n->v;
    n = n->next;
  }
  return s;
}
int main() {
  struct node a;
  struct node b;
  a.v = 1; b.v = 2;
  a.next = &b;
  b.next = (struct node*)0;
  print_int(sum_list(&a));
  return 0;
}
|}
  in
  Alcotest.(check int) "verifies" 0 (List.length (Ir.Verifier.verify prog))

(* Progen guarantees: byte-identical output per seed, and every
   function — helpers and main — declares at least one array local and
   one scalar local (the permutation passes need both kinds in every
   frame). *)
let test_progen_determinism () =
  Alcotest.(check string) "same seed, same program"
    (Minic.Progen.generate ~seed:123L)
    (Minic.Progen.generate ~seed:123L);
  Alcotest.(check bool) "different seeds differ" true
    (Minic.Progen.generate ~seed:123L <> Minic.Progen.generate ~seed:124L);
  Alcotest.(check (list string)) "generate_many deterministic"
    (Minic.Progen.generate_many ~seed:55L 5)
    (Minic.Progen.generate_many ~seed:55L 5)

let test_progen_locals_shape () =
  List.iter
    (fun seed ->
      let prog = Minic.Driver.compile (Minic.Progen.generate ~seed) in
      List.iter
        (fun (f : Ir.Func.t) ->
          let arrays = ref 0 and scalars = ref 0 in
          (match f.blocks with
          | entry :: _ ->
              List.iter
                (function
                  | Ir.Instr.Alloca { ty = Ir.Ty.Array _; count = None; _ } ->
                      incr arrays
                  | Ir.Instr.Alloca { count = None; _ } -> incr scalars
                  | _ -> ())
                entry.instrs
          | [] -> ());
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld: %s has an array local" seed f.name)
            true (!arrays >= 1);
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld: %s has a scalar local" seed f.name)
            true (!scalars >= 1))
        prog.Ir.Prog.funcs)
    [ 1L; 2L; 3L; 4L; 5L; 42L; 9001L ]

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ("semantics", semantics);
      ("edge-cases", edge_cases);
      ("diagnostics", diagnostics);
      ( "integration",
        [
          Alcotest.test_case "builtins in sync" `Quick test_builtins_in_sync;
          Alcotest.test_case "verified IR" `Quick test_verified_ir;
        ] );
      ( "progen",
        [
          Alcotest.test_case "determinism" `Quick test_progen_determinism;
          Alcotest.test_case "locals shape" `Quick test_progen_locals_shape;
        ] );
    ]
