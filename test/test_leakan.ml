(* Tests for the interprocedural layout-leak analyzer (lib/analysis
   Leakan), the per-channel laundering discipline in Funcan it relies
   on, the leak-shaped Progen corpus, the leak rows in the Report JSON,
   and the leak-guided attack path (Dopc.Plan.leak_guides +
   Dopc.Exec.brute_guided, cross-checked by Harness.Leakcheck). *)

let full_config = Defenses.Defense.Smokestack Smokestack.Config.default

let find_slot (fa : Analysis.Funcan.t) name =
  match
    List.find_opt (fun (s : Analysis.Funcan.slot) -> s.name = name) fa.slots
  with
  | Some s -> s
  | None -> Alcotest.failf "%s: no slot %s" fa.fname name

let analyze_src src =
  let prog = Minic.Driver.compile src in
  (prog, Analysis.Leakan.analyze prog)

(* output-visible rows: the E19 predicate *)
let visible (lk : Analysis.Leakan.t) =
  List.filter
    (fun (l : Analysis.Leakan.leak) ->
      l.bits > 0.
      &&
      match l.sink with
      | Analysis.Leakan.Output _ | Analysis.Leakan.Oracle_branch -> true
      | _ -> false)
    lk.leaks

(* ------------------------------------------------------------------ *)
(* Funcan per-channel laundering (the discipline Leakan mirrors) *)

(* i indexes a table; the *loaded* table entry feeds the branch.  The
   dereference launders the value channel, so i must get Mem_addr from
   the gep but NOT Branch_feed from the laundered load. *)
let laundering_func ~direct_compare =
  let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
  let b = Ir.Builder.create f in
  let tbl = Ir.Builder.alloca b ~name:"tbl" (Ir.Ty.Array (Ir.Ty.I64, 8)) in
  let i = Ir.Builder.alloca b ~name:"i" Ir.Ty.I64 in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 3L) ~addr:(Ir.Instr.Reg i);
  let iv = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg i) in
  let masked =
    Ir.Builder.binop b Ir.Instr.And (Ir.Instr.Reg iv) (Ir.Instr.Imm 7L)
  in
  let addr =
    Ir.Builder.gep_idx b (Ir.Instr.Reg tbl) ~offset:0
      ~index:(Ir.Instr.Reg masked) ~scale:8
  in
  let entry = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg addr) in
  let c =
    if direct_compare then
      (* per-channel suppression: the same slot compared *directly*
         still earns Branch_feed *)
      Ir.Builder.icmp b Ir.Instr.Slt (Ir.Instr.Reg iv) (Ir.Instr.Imm 4L)
    else Ir.Builder.icmp b Ir.Instr.Slt (Ir.Instr.Reg entry) (Ir.Instr.Imm 4L)
  in
  Ir.Builder.cond_br b (Ir.Instr.Reg c) ~if_true:"yes" ~if_false:"no";
  let _ = Ir.Builder.start_block b "yes" in
  Ir.Builder.ret b None;
  let _ = Ir.Builder.start_block b "no" in
  Ir.Builder.ret b None;
  f

let roles_of ~direct_compare name =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (laundering_func ~direct_compare);
  let fa = Analysis.Funcan.analyze_func prog (List.hd prog.Ir.Prog.funcs) in
  (find_slot fa name).roles

let test_gep_load_launders () =
  let roles = roles_of ~direct_compare:false "i" in
  Alcotest.(check bool) "i reaches an address" true
    (List.mem Analysis.Funcan.Mem_addr roles);
  Alcotest.(check bool) "laundered load does not feed the branch" false
    (List.mem Analysis.Funcan.Branch_feed roles)

let test_direct_compare_keeps_branch_feed () =
  let roles = roles_of ~direct_compare:true "i" in
  Alcotest.(check bool) "Mem_addr kept" true
    (List.mem Analysis.Funcan.Mem_addr roles);
  Alcotest.(check bool) "direct compare still Branch_feed" true
    (List.mem Analysis.Funcan.Branch_feed roles)

(* channel survives a memory round-trip: an address-channel register
   stored to a scratch slot and reloaded still grants only Mem_addr,
   while a value-channel round-trip still grants Branch_feed *)
let roundtrip_func ~address_channel =
  let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
  let b = Ir.Builder.create f in
  let tbl = Ir.Builder.alloca b ~name:"tbl" (Ir.Ty.Array (Ir.Ty.I64, 8)) in
  let i = Ir.Builder.alloca b ~name:"i" Ir.Ty.I64 in
  let tmp = Ir.Builder.alloca b ~name:"tmp" Ir.Ty.I64 in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 3L) ~addr:(Ir.Instr.Reg i);
  let iv = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg i) in
  let carried =
    if address_channel then
      Ir.Builder.gep_idx b (Ir.Instr.Reg tbl) ~offset:0 ~index:(Ir.Instr.Reg iv)
        ~scale:8
    else Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg iv) (Ir.Instr.Imm 1L)
  in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Reg carried)
    ~addr:(Ir.Instr.Reg tmp);
  let back = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg tmp) in
  let c =
    Ir.Builder.icmp b Ir.Instr.Slt (Ir.Instr.Reg back) (Ir.Instr.Imm 100L)
  in
  Ir.Builder.cond_br b (Ir.Instr.Reg c) ~if_true:"yes" ~if_false:"no";
  let _ = Ir.Builder.start_block b "yes" in
  Ir.Builder.ret b None;
  let _ = Ir.Builder.start_block b "no" in
  Ir.Builder.ret b None;
  f

let test_channel_survives_memory () =
  let roles ~address_channel =
    let prog = Ir.Prog.create () in
    Ir.Prog.add_func prog (roundtrip_func ~address_channel);
    let fa = Analysis.Funcan.analyze_func prog (List.hd prog.Ir.Prog.funcs) in
    (find_slot fa "i").roles
  in
  Alcotest.(check bool) "value round-trip feeds the branch" true
    (List.mem Analysis.Funcan.Branch_feed (roles ~address_channel:false));
  Alcotest.(check bool) "address round-trip does not" false
    (List.mem Analysis.Funcan.Branch_feed (roles ~address_channel:true))

(* ------------------------------------------------------------------ *)
(* Leakan detection *)

let test_stack_leaky_detected () =
  let v = Option.get (Apps.Synth.find "stack-leaky") in
  let lk = Analysis.Leakan.analyze (Lazy.force v.Apps.Synth.program) in
  let vis = visible lk in
  Alcotest.(check int) "one leak per disclosed local" 6 (List.length vis);
  List.iter
    (fun (l : Analysis.Leakan.leak) ->
      Alcotest.(check bool)
        (Analysis.Leakan.leak_to_string l ^ ": address disclosure to output")
        true
        (l.channel = Analysis.Leakan.Address_disclosure
        &&
        match (l.source, l.sink) with
        | Analysis.Leakan.Slot_addr _, Analysis.Leakan.Output _ -> true
        | _ -> false))
    vis;
  Alcotest.(check bool) "buff is among the disclosed slots" true
    (List.exists
       (fun (l : Analysis.Leakan.leak) ->
         l.source = Analysis.Leakan.Slot_addr "buff")
       vis);
  Alcotest.(check bool) "positive total bits" true (lk.total_bits > 0.)

let test_clean_corpus_no_leaks () =
  List.iter
    (fun (v : Apps.Synth.variant) ->
      let lk = Analysis.Leakan.analyze (Lazy.force v.program) in
      Alcotest.(check int)
        (v.vname ^ ": no output-visible leak")
        0
        (List.length (visible lk)))
    Apps.Synth.variants;
  let w = Option.get (Apps.Spec.find "mcf") in
  let lk = Analysis.Leakan.analyze (Lazy.force w.program) in
  Alcotest.(check int) "mcf: no output-visible leak" 0
    (List.length (visible lk))

let test_interprocedural_disclosure () =
  let _, lk =
    analyze_src
      {|
long sink2(long y) { print_int(y); print_newline(); return y; }
long sink1(long x) { return sink2(x + 1); }
int main() {
  long a = 1;
  long b = 2;
  long buf[4];
  buf[0] = a + b;
  sink1((long)&buf);
  print_int(buf[0]);
  print_newline();
  return 0;
}
|}
  in
  (* &buf flows through two defined callees before reaching output; the
     flow summaries must carry it the whole way *)
  Alcotest.(check bool) "buf address reaches output interprocedurally" true
    (List.exists
       (fun (l : Analysis.Leakan.leak) ->
         l.source = Analysis.Leakan.Slot_addr "buf"
         && l.source_func = "main"
         && l.channel = Analysis.Leakan.Address_disclosure
         &&
         match l.sink with Analysis.Leakan.Output _ -> true | _ -> false)
       lk.leaks)

let test_comparison_oracle () =
  let _, lk =
    analyze_src
      {|
int main() {
  long a = 1;
  long buf[4];
  buf[0] = a;
  if ((long)&buf < (long)&a) { print_str("L"); } else { print_str("R"); }
  print_newline();
  print_int(buf[0]);
  print_newline();
  return 0;
}
|}
  in
  Alcotest.(check bool) "relative-order branch is a one-bit oracle" true
    (List.exists
       (fun (l : Analysis.Leakan.leak) ->
         l.channel = Analysis.Leakan.Comparison_oracle)
       lk.leaks);
  (* an oracle is worth at most one bit per observation *)
  List.iter
    (fun (l : Analysis.Leakan.leak) ->
      if l.channel = Analysis.Leakan.Comparison_oracle then
        Alcotest.(check bool)
          (Analysis.Leakan.leak_to_string l ^ ": at most 1 bit")
          true (l.bits <= 1.))
    lk.leaks

let test_hardened_slice_addr () =
  let v = Option.get (Apps.Synth.find "stack-leaky") in
  let prog = Lazy.force v.Apps.Synth.program in
  let h = Smokestack.Harden.harden Smokestack.Config.default prog in
  let lk = Analysis.Leakan.analyze ~hardened:h h.Smokestack.Harden.prog in
  (* after instrumentation the disclosure prints slab-slice addresses:
     the sources must be the hardened-form secrets, not raw allocas *)
  Alcotest.(check bool) "hardened program still leaks" true (lk.leaks <> []);
  Alcotest.(check bool) "a slice address escapes" true
    (List.exists
       (fun (l : Analysis.Leakan.leak) -> l.source = Analysis.Leakan.Slice_addr)
       lk.leaks)

(* ------------------------------------------------------------------ *)
(* Report JSON: leak rows and the degraded summary *)

let test_report_json_leak_rows () =
  let v = Option.get (Apps.Synth.find "stack-leaky") in
  let report =
    Analysis.Report.analyze_prog ~name:"stack-leaky" (Lazy.force v.program)
  in
  Alcotest.(check bool) "report carries leak rows" true
    (report.Analysis.Report.leakage.Analysis.Leakan.leaks <> []);
  let blind =
    List.assoc "smokestack" (Analysis.Report.summary report)
  and degraded =
    List.assoc "smokestack" (Analysis.Report.summary_degraded report)
  in
  Alcotest.(check bool)
    (Printf.sprintf "degraded %.2f < blind %.2f" degraded blind)
    true
    (degraded < blind);
  let s = Sutil.Json.to_string ~indent:true (Analysis.Report.to_json report) in
  match Analysis.Report.of_json (Sutil.Json.of_string_exn s) with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok report' ->
      Alcotest.(check bool) "round-trips exactly" true (report = report');
      Alcotest.(check bool) "degraded summary survives the round-trip" true
        (Analysis.Report.summary_degraded report'
        = Analysis.Report.summary_degraded report);
      (* leaking is an application property, not a hardening bug: the
         disclosing build still passes the validator, so [validated]
         and positive [leaked_bits] coexist in the same report *)
      Alcotest.(check bool) "leaky funcs still validate" true
        (report'.Analysis.Report.funcs <> []
        && List.for_all
             (fun (f : Analysis.Report.func_summary) -> f.validated)
             report'.Analysis.Report.funcs);
      Alcotest.(check bool) "leaked_bits positive after round-trip" true
        (Analysis.Leakan.leaked_bits_for report'.Analysis.Report.leakage
           [ "serve" ]
        > 0.)

let test_report_json_leak_free () =
  (* a leak-free program must round-trip with an empty leak list and
     identical blind/degraded summaries *)
  let v = Option.get (Apps.Synth.find "stack-direct") in
  let report =
    Analysis.Report.analyze_prog ~name:"stack-direct" (Lazy.force v.program)
  in
  Alcotest.(check bool) "no visible leak rows" true
    (visible report.Analysis.Report.leakage = []);
  Alcotest.(check bool) "degraded = blind without leaks" true
    (Analysis.Report.summary_degraded report = Analysis.Report.summary report);
  match
    Analysis.Report.of_json
      (Sutil.Json.of_string_exn
         (Sutil.Json.to_string (Analysis.Report.to_json report)))
  with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok report' ->
      Alcotest.(check bool) "round-trips exactly" true (report = report')

(* ------------------------------------------------------------------ *)
(* Leak-shaped Progen *)

let leaky_tail_suffix = "  print_int(acc);\n  print_newline();\n  return 0;\n}\n"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_progen_leaky_determinism () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld deterministic" seed)
        (Minic.Progen.generate_leaky ~seed)
        (Minic.Progen.generate_leaky ~seed))
    [ 9001L; 9002L; 9003L ]

let test_progen_leaky_benign_prefix () =
  (* the shape draw is the rng's last use: the leaky program is the
     benign one with a disclosure spliced in before the checksum *)
  List.iter
    (fun seed ->
      let b = Minic.Progen.generate ~seed
      and l = Minic.Progen.generate_leaky ~seed in
      let strip s =
        Alcotest.(check bool)
          (Printf.sprintf "seed %Ld: fixed tail present" seed)
          true
          (String.length s >= String.length leaky_tail_suffix
          && String.sub s
               (String.length s - String.length leaky_tail_suffix)
               (String.length leaky_tail_suffix)
             = leaky_tail_suffix);
        String.sub s 0 (String.length s - String.length leaky_tail_suffix)
      in
      let bp = strip b and lp = strip l in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: benign prefix byte-identical" seed)
        true
        (String.length lp > String.length bp
        && String.sub lp 0 (String.length bp) = bp))
    [ 9001L; 9002L; 9003L; 9004L ]

let test_progen_leaky_shapes_and_detection () =
  let seeds = List.init 10 (fun i -> Int64.of_int (9001 + i)) in
  let addr_shape = ref 0 and oracle_shape = ref 0 in
  List.iter
    (fun seed ->
      let src = Minic.Progen.generate_leaky ~seed in
      let is_addr = contains src "print_int((long)&mbuf)" in
      if is_addr then incr addr_shape else incr oracle_shape;
      let _, lk = analyze_src src in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: analyzer flags the leak" seed)
        true
        (visible lk <> []);
      let _, bk = analyze_src (Minic.Progen.generate ~seed) in
      Alcotest.(check int)
        (Printf.sprintf "seed %Ld: benign twin is clean" seed)
        0
        (List.length (visible bk)))
    seeds;
  Alcotest.(check bool) "both shapes appear across the corpus" true
    (!addr_shape > 0 && !oracle_shape > 0)

(* ------------------------------------------------------------------ *)
(* Leak-guided planning and delivery *)

let test_leak_guides () =
  let v = Option.get (Apps.Synth.find "stack-leaky") in
  let prog = Lazy.force v.Apps.Synth.program in
  match Dopc.Plan.leak_guides prog with
  | [ g ] ->
      Alcotest.(check string) "disclosing function" "serve" g.Dopc.Plan.gfunc;
      Alcotest.(check bool) "buffer among disclosed slots" true
        (List.mem "buff" g.Dopc.Plan.disclosed);
      Alcotest.(check int) "all six locals disclosed" 6
        (List.length g.Dopc.Plan.disclosed);
      Alcotest.(check bool) "positive guide bits" true (g.Dopc.Plan.gbits > 0.)
  | gs -> Alcotest.failf "expected exactly one guide, got %d" (List.length gs)

let test_guided_beats_blind () =
  let v = Option.get (Apps.Synth.find "stack-leaky") in
  let prog = Lazy.force v.Apps.Synth.program in
  let guides = Dopc.Plan.leak_guides prog in
  let _, chains = Dopc.Plan.synthesize ~target:"stack-leaky" prog in
  let chain =
    match
      List.find_opt
        (fun (c : Dopc.Chain.t) ->
          (match c.goal with
          | Dopc.Chain.Flip_global _ | Dopc.Chain.Output_contains _ -> true
          | Dopc.Chain.Output_differs -> false)
          && Dopc.Plan.guide_for guides c <> None)
        chains
    with
    | Some c -> c
    | None -> Alcotest.fail "no guidable strong-goal chain synthesized"
  in
  let guide = Option.get (Dopc.Plan.guide_for guides chain) in
  let applied = Defenses.Defense.apply ~seed:3L full_config prog in
  let budget = 40 in
  let guided =
    Dopc.Exec.brute_guided applied chain ~disclosed:guide.Dopc.Plan.disclosed
      ~budget ~seed0:1000
  in
  Alcotest.(check bool)
    (Printf.sprintf "guided lands within %d attempts (took %d)" budget
       (List.length guided))
    true
    (List.exists (fun v -> v = Attacks.Verdict.Success) guided);
  let blind = Dopc.Exec.brute applied chain ~budget ~seed0:0 in
  Alcotest.(check bool) "blind walk exhausts the same budget" false
    (List.exists (fun v -> v = Attacks.Verdict.Success) blind)

let test_leakcheck_smoke () =
  (* the default 8 observation seeds: a 1-bit comparison oracle needs
     several draws before both sides show up, so fewer seeds can
     produce a spurious "no variance" dynamic verdict *)
  let t =
    Harness.Leakcheck.run ~progen:1 ~leaky_progen:2 ~budget:80 ~walks:1 ()
  in
  Alcotest.(check int) "zero static/dynamic disagreements" 0 t.disagreements;
  Alcotest.(check bool) "corpus covers benign and leaky programs" true
    (List.length t.Harness.Leakcheck.rows > 10);
  match t.Harness.Leakcheck.guided with
  | None -> Alcotest.fail "no guided measurement"
  | Some g ->
      Alcotest.(check bool) "guided walk lands inside the budget" true
        (List.for_all (fun a -> a <> None) g.Harness.Leakcheck.guided_attempts);
      Alcotest.(check bool) "blind walk does not" true
        (g.Harness.Leakcheck.blind_attempts = None)

(* ------------------------------------------------------------------ *)

let () =
  Engine.Backend.install ();
  Analysis.Validate.install ();
  Alcotest.run "leakan"
    [
      ( "funcan-laundering",
        [
          Alcotest.test_case "gep-indexed load launders" `Quick
            test_gep_load_launders;
          Alcotest.test_case "direct compare keeps Branch_feed" `Quick
            test_direct_compare_keeps_branch_feed;
          Alcotest.test_case "channel survives memory" `Quick
            test_channel_survives_memory;
        ] );
      ( "detect",
        [
          Alcotest.test_case "stack-leaky disclosures" `Quick
            test_stack_leaky_detected;
          Alcotest.test_case "clean corpus zero FP" `Slow
            test_clean_corpus_no_leaks;
          Alcotest.test_case "interprocedural disclosure" `Quick
            test_interprocedural_disclosure;
          Alcotest.test_case "comparison oracle" `Quick test_comparison_oracle;
          Alcotest.test_case "hardened slice address" `Quick
            test_hardened_slice_addr;
        ] );
      ( "json",
        [
          Alcotest.test_case "leak rows round-trip" `Quick
            test_report_json_leak_rows;
          Alcotest.test_case "leak-free round-trip" `Quick
            test_report_json_leak_free;
        ] );
      ( "progen",
        [
          Alcotest.test_case "leaky determinism" `Quick
            test_progen_leaky_determinism;
          Alcotest.test_case "benign prefix" `Quick
            test_progen_leaky_benign_prefix;
          Alcotest.test_case "shapes and detection" `Slow
            test_progen_leaky_shapes_and_detection;
        ] );
      ( "guided",
        [
          Alcotest.test_case "leak guides" `Quick test_leak_guides;
          Alcotest.test_case "guided beats blind" `Slow
            test_guided_beats_blind;
          Alcotest.test_case "leakcheck smoke" `Slow test_leakcheck_smoke;
        ] );
    ]
