(* Tests for the automated DOP-attack compiler (lib/offense) and its
   experiment harness (E17): planner composition, payload-lowering
   round trips, and the determinism properties the acceptance bar
   demands — chain sets and verdicts byte-identical across engines,
   and the E17 report byte-identical across --jobs widths. *)

let ref_backend = Machine.Backend.reference
let bc_backend = Engine.Backend.backend

let prog_of name =
  match Apps.Synth.find name with
  | Some v -> Lazy.force v.Apps.Synth.program
  | None -> Alcotest.failf "no synth variant %s" name

let synth ?max_chains name =
  Dopc.Plan.synthesize ?max_chains ~target:name (prog_of name)

let apply d prog = Defenses.Defense.apply ~seed:3L d prog

let smokestack_full = Defenses.Defense.Smokestack Smokestack.Config.default

(* ------------------------------------------------------------------ *)
(* Planner composition *)

let test_plan_stack_direct_dispatch_loop () =
  let model, chains = synth "stack-direct" in
  Alcotest.(check bool) "static pairs found" true (model.Dopc.Plan.pairs <> []);
  Alcotest.(check bool)
    "probing learned at least one arithmetic gadget" true
    (List.exists
       (fun (g : Dopc.Gadget.t) ->
         match g.kind with Dopc.Gadget.Arith _ -> true | _ -> false)
       model.Dopc.Plan.learned);
  match
    List.find_opt
      (fun (c : Dopc.Chain.t) -> c.family = Dopc.Chain.Dispatch_loop)
      chains
  with
  | None -> Alcotest.fail "no dispatch-loop chain for stack-direct"
  | Some c -> (
      Alcotest.(check bool) "multi-step chain" true (List.length c.steps > 1);
      Alcotest.(check bool) "grounded in static pairs" true (c.pair_ids <> []);
      match c.goal with
      | Dopc.Chain.Flip_global ("auth", v) ->
          Alcotest.(check int64) "flips auth to the compared constant" 0x1337L v
      | g -> Alcotest.failf "unexpected goal %s" (Dopc.Chain.goal_to_string g))

let test_plan_stack_indirect_aim_write () =
  let _, chains = synth "stack-indirect" in
  match
    List.find_opt
      (fun (c : Dopc.Chain.t) -> c.family = Dopc.Chain.Aim_write)
      chains
  with
  | None -> Alcotest.fail "no aim-write chain for stack-indirect"
  | Some c -> (
      match c.goal with
      | Dopc.Chain.Flip_global ("auth", 0x1337L) -> ()
      | g -> Alcotest.failf "unexpected goal %s" (Dopc.Chain.goal_to_string g))

let test_plan_input_free_is_undeliverable () =
  (* no read_input => no Deliver gadget => zero chains, honestly *)
  let prog = Minic.Driver.compile (Minic.Progen.generate ~seed:9001L) in
  let model, chains = Dopc.Plan.synthesize ~target:"progen-9001" prog in
  Alcotest.(check int) "no chains" 0 (List.length chains);
  Alcotest.(check bool)
    "no deliver gadget" true
    (not
       (List.exists
          (fun (g : Dopc.Gadget.t) -> g.kind = Dopc.Gadget.Deliver)
          model.Dopc.Plan.gadgets))

let test_plan_deterministic () =
  List.iter
    (fun name ->
      let _, a = synth name in
      let _, b = synth name in
      Alcotest.(check (list string))
        (name ^ ": chain ids stable across runs")
        (List.map (fun (c : Dopc.Chain.t) -> c.chain_id) a)
        (List.map (fun (c : Dopc.Chain.t) -> c.chain_id) b);
      Alcotest.(check bool) (name ^ ": chains structurally equal") true (a = b))
    [ "stack-direct"; "stack-indirect"; "heap-direct" ]

let test_plan_max_chains_is_prefix () =
  let _, all = synth "stack-direct" in
  let _, two = synth ~max_chains:2 "stack-direct" in
  Alcotest.(check int) "capped" 2 (List.length two);
  Alcotest.(check (list string))
    "cap takes a prefix of the full set"
    (List.map (fun (c : Dopc.Chain.t) -> c.chain_id) two)
    (List.filteri (fun i _ -> i < 2) all
    |> List.map (fun (c : Dopc.Chain.t) -> c.chain_id))

(* ------------------------------------------------------------------ *)
(* Payload lowering *)

let le64_at s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

(* Against an undefended build the binary reveals the frame, so the
   layout is exact and lowering must place every write's value at the
   slot's offset — decoding the payload bytes recovers the chain. *)
let test_lower_round_trip () =
  let prog = prog_of "stack-direct" in
  let applied = apply Defenses.Defense.No_defense prog in
  let _, chains = synth "stack-direct" in
  Alcotest.(check bool) "have chains" true (chains <> []);
  List.iter
    (fun (c : Dopc.Chain.t) ->
      let seed = 5L in
      let payloads = Dopc.Payload.lower applied c ~seed in
      Alcotest.(check int)
        (c.chain_id ^ ": one payload per step")
        (List.length c.steps) (List.length payloads);
      let vars =
        List.sort_uniq compare
          (List.concat_map
             (fun (s : Dopc.Chain.step) ->
               List.map (fun (w : Dopc.Chain.write) -> w.target) s.writes)
             c.steps)
      in
      let layout =
        Dopc.Payload.layout applied ~func:c.func ~buffer:c.buffer ~vars
          ~slots:c.slots ~seed
      in
      let gaddrs = Attacks.Layout.global_addrs applied.prog in
      List.iter2
        (fun (s : Dopc.Chain.step) payload ->
          List.iter
            (fun (w : Dopc.Chain.write) ->
              let off = List.assoc w.target layout in
              let expect =
                match w.value with
                | Dopc.Chain.Const v -> v
                | Dopc.Chain.Addr_of_global g ->
                    Int64.of_int (List.assoc g gaddrs)
              in
              Alcotest.(check int64)
                (Printf.sprintf "%s: %s at offset %d" c.chain_id w.target off)
                expect (le64_at payload off))
            s.writes)
        c.steps payloads)
    chains

(* ------------------------------------------------------------------ *)
(* Determinism properties *)

(* Acceptance bar: verdicts identical on the reference and bytecode
   engines, across >= 50 execution seeds, for every synthesized chain,
   with and without hardening. *)
let test_verdict_engine_parity_50_seeds () =
  List.iter
    (fun name ->
      let prog = prog_of name in
      let _, chains = synth name in
      List.iter
        (fun d ->
          let applied = apply d prog in
          List.iter
            (fun (c : Dopc.Chain.t) ->
              for i = 0 to 49 do
                let seed = Int64.of_int (17 + (1000 * i)) in
                let vr =
                  Dopc.Exec.run_chain ~backend:ref_backend applied c ~seed
                in
                let vb =
                  Dopc.Exec.run_chain ~backend:bc_backend applied c ~seed
                in
                Alcotest.(check string)
                  (Printf.sprintf "%s/%s seed %Ld" name c.chain_id seed)
                  (Attacks.Verdict.to_string vr)
                  (Attacks.Verdict.to_string vb)
              done)
            chains)
        [ Defenses.Defense.No_defense; smokestack_full ])
    [ "stack-direct"; "stack-indirect" ]

let run_e17 jobs =
  Sched.Pool.with_pool ~jobs @@ fun pool ->
  Harness.Offense.run ~pool
    ~workloads:[ "stack-direct"; "stack-indirect" ]
    ~trials:3 ~brute_budget:40 ()

let test_e17_jobs_invariant () =
  let a = run_e17 1 and b = run_e17 8 in
  Alcotest.(check string)
    "E17 report byte-identical at --jobs 1 and 8"
    (Harness.Offense.to_markdown a)
    (Harness.Offense.to_markdown b)

let test_e17_shapes () =
  let t = run_e17 4 in
  Alcotest.(check bool) "a chain lands undefended" true
    (t.Harness.Offense.landed_unhardened >= 1);
  Alcotest.(check int) "no chain survives full hardening" 0
    t.Harness.Offense.full_successes;
  Alcotest.(check bool) "every landing chain statically grounded" true
    t.Harness.Offense.all_grounded

let () =
  Engine.Backend.install ();
  Analysis.Validate.install ();
  Alcotest.run "offense"
    [
      ( "plan",
        [
          Alcotest.test_case "stack-direct dispatch loop" `Quick
            test_plan_stack_direct_dispatch_loop;
          Alcotest.test_case "stack-indirect aim write" `Quick
            test_plan_stack_indirect_aim_write;
          Alcotest.test_case "input-free is undeliverable" `Quick
            test_plan_input_free_is_undeliverable;
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "max-chains prefix" `Quick
            test_plan_max_chains_is_prefix;
        ] );
      ( "payload",
        [ Alcotest.test_case "lowering round trip" `Quick test_lower_round_trip ]
      );
      ( "determinism",
        [
          Alcotest.test_case "engine parity over 50 seeds" `Slow
            test_verdict_engine_parity_50_seeds;
          Alcotest.test_case "E17 jobs invariance" `Slow test_e17_jobs_invariant;
          Alcotest.test_case "E17 shapes" `Slow test_e17_shapes;
        ] );
    ]
