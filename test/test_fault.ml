(* Tests for the deterministic fault-injection layer: plan spec
   round-trips, the SP 800-90B health tests, the RNG degradation chain
   (fail-secure and fail-open), runtime integration (trace events,
   structured Detected outcomes), and the property the whole layer is
   built around — no fault plan can make either execution backend raise
   an uncaught exception. *)

let ref_backend = Machine.Backend.reference
let bc_backend = Engine.Backend.backend

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Plan specs *)

let canonical_specs =
  [
    "rng:stuck=0xdeadbeef@4";
    "rng:ones@1";
    "rng:bias=8@2..100";
    "rng:lat=250@1";
    "rng:off@never";
    "mem:stack:64:3@2000";
    "mem:data:16:1@1500..1600";
    "intr:ss.fid_assert:xor=0x1@1";
  ]

let test_spec_round_trip () =
  List.iter
    (fun spec ->
      match Fault.Plan.of_spec spec with
      | Ok p -> Alcotest.(check string) spec spec (Fault.Plan.to_spec p)
      | Error e -> Alcotest.failf "%s: %s" spec e)
    canonical_specs

let test_random_plans_round_trip () =
  for seed = 0 to 199 do
    let p = Fault.Plan.random ~seed:(Int64.of_int seed) in
    let p' = Fault.Plan.random ~seed:(Int64.of_int seed) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d reproducible" seed)
      true (p = p');
    match Fault.Plan.of_spec (Fault.Plan.to_spec p) with
    | Ok q ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d round-trips" seed)
          (Fault.Plan.to_spec p) (Fault.Plan.to_spec q)
    | Error e -> Alcotest.failf "seed %d: %s: %s" seed (Fault.Plan.to_spec p) e
  done

let test_spec_errors () =
  List.iter
    (fun spec ->
      match Fault.Plan.of_spec spec with
      | Ok _ -> Alcotest.failf "%S should not parse" spec
      | Error _ -> ())
    [
      "";
      "bogus";
      "rng:ones" (* no trigger *);
      "rng:stuck@1" (* missing value *);
      "rng:bias=64@1" (* bias out of range *);
      "mem:stack:1:9@5" (* bit out of range *);
      "mem:heap:1:3@5" (* unsupported segment *);
      "intr:ss.rand@1" (* missing xor *);
      "rng:ones@5..2" (* empty window *);
    ]

let test_trigger_fires () =
  let open Fault.Plan in
  Alcotest.(check bool) "never" false (fires Never 1);
  Alcotest.(check bool) "at below" false (fires (At 3) 2);
  Alcotest.(check bool) "at on" true (fires (At 3) 3);
  Alcotest.(check bool) "at after" true (fires (At 3) 99);
  let w = Window { from_ = 2; until = 4 } in
  Alcotest.(check (list bool))
    "window edges" [ false; true; true; true; false ]
    (List.map (fires w) [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Health tests (SP 800-90B continuous checks) *)

let feed_ok h v =
  match Rng.Health.feed h v with
  | None -> ()
  | Some r -> Alcotest.failf "unexpected health failure: %s" r

let test_health_repetition_count () =
  let h = Rng.Health.create () in
  (* cutoff 5: four identical samples pass, the fifth fails *)
  for _ = 1 to 4 do
    feed_ok h 0xABL
  done;
  match Rng.Health.feed h 0xABL with
  | Some _ -> ()
  | None -> Alcotest.fail "run of 5 identical samples must fail the RCT"

let test_health_adaptive_proportion () =
  let h = Rng.Health.create () in
  (* distinct full-width values (RCT silent) whose low byte never
     changes: the APT must fail at the cutoff (20 hits) *)
  let failed_at = ref 0 in
  (try
     for i = 1 to 100 do
       match Rng.Health.feed h (Int64.of_int ((i * 256) + 7)) with
       | Some _ ->
           failed_at := i;
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  Alcotest.(check int) "APT fails at its cutoff" 20 !failed_at

let test_health_passes_healthy_stream () =
  let h = Rng.Health.create () in
  let rng = Sutil.Simrng.create ~seed:99L in
  for _ = 1 to 5000 do
    feed_ok h (Sutil.Simrng.next_u64 rng)
  done

let test_health_sticky_and_reset () =
  let h = Rng.Health.create () in
  for _ = 1 to 5 do
    ignore (Rng.Health.feed h 0L)
  done;
  Alcotest.(check bool)
    "failure is sticky" true
    (Rng.Health.feed h 1L <> None);
  Rng.Health.reset h;
  feed_ok h 1L

(* ------------------------------------------------------------------ *)
(* Generator degradation chain *)

let entropy seed = Crypto.Entropy.create ~seed

let test_fail_secure_rdrand_falls_back_to_aes10 () =
  let gen =
    Rng.Generator.create Rng.Scheme.Rdrand ~entropy:(entropy 5L)
  in
  let seen = ref None in
  Rng.Generator.set_on_degrade gen (fun d -> seen := Some d);
  (* stuck-at-all-ones hardware: the RCT trips within 5 draws and the
     generator must keep serving draws from AES-10 *)
  Rng.Generator.set_tamper gen (fun ~scheme:_ ~draw:_ _ ->
      Rng.Generator.Value (-1L));
  let draws = List.init 32 (fun _ -> Rng.Generator.next_u64 gen) in
  Alcotest.(check bool)
    "post-degradation draws are not all-ones" true
    (List.exists (fun v -> v <> -1L) draws);
  Alcotest.(check bool)
    "current scheme is AES-10" true
    (Rng.Generator.current_scheme gen = Rng.Scheme.aes10);
  (match Rng.Generator.degradations gen with
  | [ { from_scheme; to_scheme; _ } ] ->
      Alcotest.(check bool) "from RDRAND" true (from_scheme = Rng.Scheme.Rdrand);
      Alcotest.(check bool) "to AES-10" true (to_scheme = Some Rng.Scheme.aes10)
  | ds -> Alcotest.failf "expected exactly one degradation, got %d" (List.length ds));
  match !seen with
  | Some _ -> ()
  | None -> Alcotest.fail "on_degrade was not called"

let test_fail_secure_chain_exhausted_aborts () =
  let gen =
    Rng.Generator.create Rng.Scheme.aes10 ~entropy:(entropy 6L)
  in
  Rng.Generator.set_tamper gen (fun ~scheme:_ ~draw:_ _ ->
      Rng.Generator.Unavailable);
  (* AES-10 is already the last software fallback: its failure must
     abort rather than silently serve weak randomness *)
  (match Rng.Generator.next_u64 gen with
  | _ -> Alcotest.fail "expected Source_failed"
  | exception Rng.Generator.Source_failed _ -> ());
  match Rng.Generator.degradations gen with
  | [ { to_scheme = None; _ } ] -> ()
  | _ -> Alcotest.fail "abort must be recorded as a degradation to None"

let test_fail_open_degrades_to_pseudo_and_keeps_running () =
  let gen =
    Rng.Generator.create ~policy:Rng.Generator.Fail_open Rng.Scheme.Rdrand
      ~entropy:(entropy 7L)
  in
  Rng.Generator.set_tamper gen (fun ~scheme:_ ~draw:_ _ ->
      Rng.Generator.Unavailable);
  let _ = List.init 64 (fun _ -> Rng.Generator.next_u64 gen) in
  Alcotest.(check bool)
    "fail-open lands on pseudo" true
    (Rng.Generator.current_scheme gen = Rng.Scheme.Pseudo);
  match Rng.Generator.degradations gen with
  | [ { to_scheme = Some Rng.Scheme.Pseudo; _ } ] -> ()
  | _ -> Alcotest.fail "expected one degradation to pseudo"

(* ------------------------------------------------------------------ *)
(* Runtime integration: a hardened program under injection *)

let src =
  {|
int leaf(int n) {
  int a[4];
  int b;
  b = n;
  a[0] = b + 1;
  a[1] = a[0] + b;
  return a[1];
}
int main() {
  int i;
  int acc;
  i = 0;
  acc = 0;
  while (i < 400) {
    acc = acc + leaf(i);
    i = i + 1;
  }
  if (acc > 0) { return 0; }
  return 1;
}
|}

let prog = lazy (Minic.Driver.compile src)

let run_hardened ?plan ?(policy = Rng.Generator.Fail_secure)
    ?(scheme = Rng.Scheme.Rdrand) ?(backend = ref_backend) ~seed () =
  let config = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
  let h = Smokestack.Harden.harden config (Lazy.force prog) in
  let entropy = Crypto.Entropy.create ~seed in
  let gen = Rng.Generator.create ~policy scheme ~entropy in
  let st = Smokestack.Harden.prepare h ~entropy ~gen in
  let degr_events = ref [] in
  st.Machine.Exec.on_event <-
    Some
      (function
      | Machine.Exec.Ev_rng_degraded _ as e -> degr_events := e :: !degr_events
      | _ -> ());
  let armed = Option.map (fun p -> Fault.Inject.arm ~gen p st) plan in
  let outcome, stats = backend.Machine.Backend.run ~fuel:50_000_000 st in
  (outcome, stats, gen, armed, List.rev !degr_events)

let plan_of spec =
  match Fault.Plan.of_spec spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad spec %s: %s" spec e

let test_stuck_rdrand_emits_trace_event_and_completes () =
  let outcome, _, gen, armed, events =
    run_hardened ~plan:(plan_of "rng:ones@1") ~seed:11L ()
  in
  Alcotest.(check bool)
    "run completes cleanly on the fallback" true
    (outcome = Machine.Exec.Exit 0L);
  Alcotest.(check bool)
    "injections fired" true
    (Fault.Inject.fired (Option.get armed) > 0);
  Alcotest.(check bool)
    "degraded to AES-10" true
    (Rng.Generator.current_scheme gen = Rng.Scheme.aes10);
  match events with
  | [ Machine.Exec.Ev_rng_degraded { from_; to_; reason } ] ->
      Alcotest.(check string) "from RDRAND" "RDRAND" from_;
      Alcotest.(check (option string)) "to AES-10" (Some "AES-10") to_;
      Alcotest.(check bool) "reason is not empty" true (String.length reason > 0)
  | es -> Alcotest.failf "expected one Ev_rng_degraded, got %d" (List.length es)

let test_chain_exhaustion_is_a_detected_outcome () =
  (* AES-10 source reporting itself unavailable: the fail-secure abort
     must surface as a structured Detected outcome, not an exception *)
  let outcome, _, _, _, events =
    run_hardened ~plan:(plan_of "rng:off@1") ~scheme:Rng.Scheme.aes10 ~seed:12L
      ()
  in
  (match outcome with
  | Machine.Exec.Detected { reason; _ } ->
      Alcotest.(check bool)
        "reason names the source failure" true
        (contains reason "randomness source failed")
  | o ->
      Alcotest.failf "expected Detected, got %s"
        (Machine.Exec.outcome_to_string o));
  match events with
  | [ Machine.Exec.Ev_rng_degraded { to_ = None; _ } ] -> ()
  | _ -> Alcotest.fail "expected one fail-secure abort event"

let test_fid_corruption_detected () =
  let outcome, _, _, _, _ =
    run_hardened
      ~plan:(plan_of "intr:ss.fid_assert:xor=0x1@1")
      ~scheme:Rng.Scheme.aes10 ~seed:13L ()
  in
  match outcome with
  | Machine.Exec.Detected { reason; _ } ->
      Alcotest.(check bool)
        "FID check fired" true
        (contains reason "identifier mismatch")
  | o ->
      Alcotest.failf "expected Detected, got %s"
        (Machine.Exec.outcome_to_string o)

let test_never_firing_plan_is_observation_free () =
  let obs plan =
    let outcome, stats, _, _, _ = run_hardened ?plan ~seed:14L () in
    ( Machine.Exec.outcome_to_string outcome,
      stats.Machine.Exec.output,
      stats.Machine.Exec.cycles,
      stats.Machine.Exec.instr_count )
  in
  let clean = obs None in
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (spec ^ " leaves observables bit-identical")
        true
        (obs (Some (plan_of spec)) = clean))
    [ "rng:ones@never"; "mem:stack:64:3@never"; "intr:ss.rand:xor=0xff@never" ]

(* The acceptance property: over >= 50 seeded random plans, on both
   backends, every run ends in a structured outcome — no plan can make
   the engine raise — and the two engines agree on the result. *)
let test_property_structured_outcomes_both_backends () =
  for seed = 1 to 60 do
    let plan = Fault.Plan.random ~seed:(Int64.of_int seed) in
    let run backend =
      match
        run_hardened ~plan ~seed:(Int64.of_int (1000 + seed)) ~backend ()
      with
      | outcome, stats, _, armed, _ ->
          ( Machine.Exec.outcome_to_string outcome,
            stats.Machine.Exec.output,
            stats.Machine.Exec.cycles,
            stats.Machine.Exec.instr_count,
            Fault.Inject.fired (Option.get armed) )
      | exception e ->
          Alcotest.failf "seed %d (%s) on %s: uncaught %s" seed
            (Fault.Plan.to_spec plan) backend.Machine.Backend.label
            (Printexc.to_string e)
    in
    let r = run ref_backend in
    let b = run bc_backend in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d (%s): engines agree" seed
         (Fault.Plan.to_spec plan))
      true (r = b)
  done

(* ------------------------------------------------------------------ *)
(* The E13 chaos experiment *)

let test_chaos_deterministic_across_pool_widths () =
  let render jobs =
    Sched.Pool.with_pool ~jobs @@ fun pool ->
    Harness.Chaos.to_markdown
      (Harness.Chaos.run ~pool ~workloads:[ "mcf" ] ())
  in
  Alcotest.(check string)
    "E13 report identical at widths 1 and 8" (render 1) (render 8)

let test_chaos_detects_and_scores_policies () =
  let t = Harness.Chaos.run ~workloads:[ "mcf" ] () in
  List.iter
    (fun (r : Harness.Chaos.row) ->
      Alcotest.(check bool) (r.cspec ^ ": engines agree") true r.cengines_agree)
    t.rows;
  Alcotest.(check bool)
    "health tests catch the RNG corruption family" true
    (List.for_all
       (fun (r : Harness.Chaos.row) ->
         (not (String.equal r.cfamily "rng")) || (not r.ccorrupting)
         || r.cfired = 0 || r.ccaught)
       t.rows);
  match t.policy with
  | [ secure; open_ ] ->
      Alcotest.(check string) "secure row" "fail-secure" secure.ppolicy;
      Alcotest.(check string) "open row" "fail-open" open_.ppolicy;
      Alcotest.(check bool)
        "fail-open is measurably weaker" true
        (open_.pscore < secure.pscore);
      Alcotest.(check (float 0.)) "fail-open collapses to one attempt" 1.
        open_.pscore
  | _ -> Alcotest.fail "expected exactly two policy rows"

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "canonical specs round-trip" `Quick
            test_spec_round_trip;
          Alcotest.test_case "200 random plans round-trip" `Quick
            test_random_plans_round_trip;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "trigger windows" `Quick test_trigger_fires;
        ] );
      ( "health",
        [
          Alcotest.test_case "repetition count" `Quick
            test_health_repetition_count;
          Alcotest.test_case "adaptive proportion" `Quick
            test_health_adaptive_proportion;
          Alcotest.test_case "healthy stream passes" `Quick
            test_health_passes_healthy_stream;
          Alcotest.test_case "sticky + reset" `Quick test_health_sticky_and_reset;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "fail-secure RDRAND -> AES-10" `Quick
            test_fail_secure_rdrand_falls_back_to_aes10;
          Alcotest.test_case "fail-secure chain exhausted" `Quick
            test_fail_secure_chain_exhausted_aborts;
          Alcotest.test_case "fail-open -> pseudo" `Quick
            test_fail_open_degrades_to_pseudo_and_keeps_running;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "stuck RDRAND: event + completion" `Quick
            test_stuck_rdrand_emits_trace_event_and_completes;
          Alcotest.test_case "chain exhaustion is Detected" `Quick
            test_chain_exhaustion_is_a_detected_outcome;
          Alcotest.test_case "FID corruption detected" `Quick
            test_fid_corruption_detected;
          Alcotest.test_case "never-firing plans" `Quick
            test_never_firing_plan_is_observation_free;
          Alcotest.test_case "60 random plans: structured outcomes" `Slow
            test_property_structured_outcomes_both_backends;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "deterministic across widths" `Slow
            test_chaos_deterministic_across_pool_widths;
          Alcotest.test_case "detection + policy scoring" `Slow
            test_chaos_detects_and_scores_policies;
        ] );
    ]
