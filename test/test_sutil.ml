(* Unit and property tests for the utility kit. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Align *)

let test_is_pow2 () =
  List.iter (fun n -> check_bool (string_of_int n) true (Sutil.Align.is_pow2 n))
    [ 1; 2; 4; 8; 16; 1024; 1 lsl 30 ];
  List.iter (fun n -> check_bool (string_of_int n) false (Sutil.Align.is_pow2 n))
    [ 0; -1; -8; 3; 6; 12; 100 ]

let test_next_pow2 () =
  check_int "1" 1 (Sutil.Align.next_pow2 1);
  check_int "2" 2 (Sutil.Align.next_pow2 2);
  check_int "3" 4 (Sutil.Align.next_pow2 3);
  check_int "5" 8 (Sutil.Align.next_pow2 5);
  check_int "720" 1024 (Sutil.Align.next_pow2 720);
  check_int "1024" 1024 (Sutil.Align.next_pow2 1024);
  Alcotest.check_raises "non-positive" (Invalid_argument "Sutil.Align.next_pow2: non-positive argument")
    (fun () -> ignore (Sutil.Align.next_pow2 0))

let test_align_up_cases () =
  check_int "0/8" 0 (Sutil.Align.align_up 0 ~alignment:8);
  check_int "1/8" 8 (Sutil.Align.align_up 1 ~alignment:8);
  check_int "8/8" 8 (Sutil.Align.align_up 8 ~alignment:8);
  check_int "9/4" 12 (Sutil.Align.align_up 9 ~alignment:4);
  check_int "neg" (-8) (Sutil.Align.align_up (-9) ~alignment:8);
  Alcotest.check_raises "bad alignment"
    (Invalid_argument "Sutil.Align.align_up: alignment 3 is not a positive power of two")
    (fun () -> ignore (Sutil.Align.align_up 1 ~alignment:3))

let prop_align_up =
  QCheck2.Test.make ~count:500 ~name:"align_up is aligned, minimal, monotone"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 12))
    (fun (off, k) ->
      let alignment = 1 lsl k in
      let r = Sutil.Align.align_up off ~alignment in
      Sutil.Align.is_aligned r ~alignment && r >= off && r - off < alignment)

let prop_align_down =
  QCheck2.Test.make ~count:500 ~name:"align_down dual of align_up"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 12))
    (fun (off, k) ->
      let alignment = 1 lsl k in
      let d = Sutil.Align.align_down off ~alignment in
      Sutil.Align.is_aligned d ~alignment && d <= off && off - d < alignment)

(* ------------------------------------------------------------------ *)
(* Fact *)

let test_factorial () =
  check_int "0!" 1 (Sutil.Fact.factorial 0);
  check_int "1!" 1 (Sutil.Fact.factorial 1);
  check_int "5!" 120 (Sutil.Fact.factorial 5);
  check_int "10!" 3628800 (Sutil.Fact.factorial 10);
  check_int "20!" 2432902008176640000 (Sutil.Fact.factorial 20);
  Alcotest.check_raises "21!"
    (Invalid_argument "Sutil.Fact.factorial: 21! overflows a 63-bit integer")
    (fun () -> ignore (Sutil.Fact.factorial 21))

let test_lehmer_lexical_order () =
  (* permutations of size 3 in lexical order *)
  let expected =
    [ [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |];
      [| 2; 0; 1 |]; [| 2; 1; 0 |] ]
  in
  List.iteri
    (fun i p ->
      Alcotest.(check (array int))
        (Printf.sprintf "perm %d" i)
        p
        (Sutil.Fact.lehmer_decode ~n:3 i))
    expected

let prop_lehmer_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"lehmer encode/decode roundtrip"
    QCheck2.Gen.(int_range 0 (Sutil.Fact.factorial 7 - 1))
    (fun idx ->
      let p = Sutil.Fact.lehmer_decode ~n:7 idx in
      Sutil.Fact.is_permutation p && Sutil.Fact.lehmer_encode p = idx)

let prop_invert =
  QCheck2.Test.make ~count:200 ~name:"invert . invert = id"
    QCheck2.Gen.(int_range 0 (Sutil.Fact.factorial 6 - 1))
    (fun idx ->
      let p = Sutil.Fact.lehmer_decode ~n:6 idx in
      Sutil.Fact.invert (Sutil.Fact.invert p) = p)

let test_apply () =
  let p = [| 2; 0; 1 |] in
  Alcotest.(check (array string))
    "apply" [| "c"; "a"; "b" |]
    (Sutil.Fact.apply p [| "a"; "b"; "c" |])

(* ------------------------------------------------------------------ *)
(* Bytecodec *)

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"get/set roundtrip at every width"
    QCheck2.Gen.(pair (int_range 0 3) int64)
    (fun (wi, v) ->
      let width = [| 1; 2; 4; 8 |].(wi) in
      let b = Bytes.make 16 '\x55' in
      Sutil.Bytecodec.set b ~width 4 v;
      let expect = Sutil.Bytecodec.zext ~width v in
      Sutil.Bytecodec.get b ~width 4 = expect)

let test_sext () =
  Alcotest.(check int64) "i8 -1" (-1L) (Sutil.Bytecodec.sext ~width:1 0xffL);
  Alcotest.(check int64) "i8 127" 127L (Sutil.Bytecodec.sext ~width:1 0x7fL);
  Alcotest.(check int64) "i16 -2" (-2L) (Sutil.Bytecodec.sext ~width:2 0xfffeL);
  Alcotest.(check int64) "i32 -1" (-1L) (Sutil.Bytecodec.sext ~width:4 0xffffffffL);
  Alcotest.(check int64) "i32 +1" 1L (Sutil.Bytecodec.sext ~width:4 1L)

let prop_sext_idempotent =
  QCheck2.Test.make ~count:200 ~name:"sext is idempotent"
    QCheck2.Gen.(pair (int_range 0 3) int64)
    (fun (wi, v) ->
      let width = [| 1; 2; 4; 8 |].(wi) in
      let s = Sutil.Bytecodec.sext ~width v in
      Sutil.Bytecodec.sext ~width s = s)

(* ------------------------------------------------------------------ *)
(* Simrng *)

let test_simrng_deterministic () =
  let a = Sutil.Simrng.create ~seed:42L in
  let b = Sutil.Simrng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sutil.Simrng.next_u64 a)
      (Sutil.Simrng.next_u64 b)
  done

let test_simrng_copy () =
  let a = Sutil.Simrng.create ~seed:7L in
  ignore (Sutil.Simrng.next_u64 a);
  let b = Sutil.Simrng.copy a in
  Alcotest.(check int64) "copy continues identically" (Sutil.Simrng.next_u64 a)
    (Sutil.Simrng.next_u64 b)

let prop_simrng_int_bounds =
  QCheck2.Test.make ~count:300 ~name:"int ~bound in range"
    QCheck2.Gen.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sutil.Simrng.create ~seed in
      let v = Sutil.Simrng.int rng ~bound in
      v >= 0 && v < bound)

let prop_shuffle_permutes =
  QCheck2.Test.make ~count:200 ~name:"shuffle yields a permutation"
    QCheck2.Gen.(pair int64 (int_range 1 40))
    (fun (seed, n) ->
      let rng = Sutil.Simrng.create ~seed in
      let a = Array.init n Fun.id in
      Sutil.Simrng.shuffle rng a;
      Sutil.Fact.is_permutation a)

let test_simrng_distribution () =
  (* a crude uniformity check: all 8 buckets hit over 8000 draws *)
  let rng = Sutil.Simrng.create ~seed:1L in
  let buckets = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Sutil.Simrng.int rng ~bound:8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c -> check_bool (Printf.sprintf "bucket %d populated" i) true (c > 800))
    buckets

(* ------------------------------------------------------------------ *)
(* Stats / Texttable *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Sutil.Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Sutil.Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Sutil.Stats.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-6)) "geomean" 2. (Sutil.Stats.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "overhead +50%" 50.
    (Sutil.Stats.percent_overhead ~baseline:100. ~measured:150.);
  Alcotest.(check (float 1e-9)) "overhead -10%" (-10.)
    (Sutil.Stats.percent_overhead ~baseline:100. ~measured:90.)

let test_texttable () =
  let t =
    Sutil.Texttable.create
      ~columns:[ ("a", Sutil.Texttable.Left); ("b", Sutil.Texttable.Right) ]
  in
  Sutil.Texttable.add_row t [ "x"; "1" ];
  Sutil.Texttable.add_row t [ "long"; "22" ];
  let rendered = Sutil.Texttable.render t in
  check_bool "contains header" true
    (String.length rendered > 0 && String.sub rendered 0 1 = "a");
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Sutil.Texttable.add_row: 1 cells for 2 columns")
    (fun () -> Sutil.Texttable.add_row t [ "only-one" ]);
  Alcotest.(check string) "bytes" "2.0 KiB" (Sutil.Texttable.fmt_bytes 2048);
  Alcotest.(check string) "pct" "+10.3%" (Sutil.Texttable.fmt_pct 10.3)

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_unicode_escapes () =
  (* \uXXXX escapes decode to UTF-8 bytes, not replacement chars *)
  let parse s =
    match Sutil.Json.of_string s with
    | Ok (Sutil.Json.String v) -> v
    | Ok _ -> Alcotest.fail "expected a string"
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check string) "ascii" "A" (parse {|"A"|});
  Alcotest.(check string) "latin-1 escape" "\xc3\xa9" (parse {|"\u00e9"|});
  Alcotest.(check string) "bmp escape" "\xe2\x82\xac" (parse {|"\u20ac"|});
  Alcotest.(check string) "surrogate pair escape" "\xf0\x9f\x98\x80"
    (parse {|"\ud83d\ude00"|});
  Alcotest.(check string) "raw utf-8 passes through" "\xe2\x82\xac"
    (parse "\"\xe2\x82\xac\"");
  let fails s =
    match Sutil.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check_bool "unpaired high surrogate" true (fails {|"\ud83d"|});
  check_bool "unpaired low surrogate" true (fails {|"\ude00"|});
  check_bool "high surrogate + non-escape" true (fails {|"\ud83dxx"|})

let test_json_control_roundtrip () =
  (* our emitter writes control chars as \u00XX; they must survive *)
  let v = Sutil.Json.String "a\x01b\x1fc" in
  match Sutil.Json.of_string (Sutil.Json.to_string v) with
  | Ok v' -> check_bool "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

(* to_channel must stream exactly the bytes to_string materializes —
   the store's entry writer and every --json emitter rely on that. *)
let channel_bytes ?indent v =
  let path = Filename.temp_file "smokestack-json" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  Sutil.Json.to_channel ?indent oc v;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let gnarly_doc =
  Sutil.Json.(
    Obj
      [
        ("null", Null);
        ("bools", List [ Bool true; Bool false ]);
        ("ints", List [ Int 0; Int (-42); Int max_int ]);
        ("floats", List [ Float 0.30000000000000004; Float (-0.) ]);
        ( "strings",
          List
            [
              String "";
              String "plain";
              String "esc \" \\ \n \t \x01 \x1f";
              String "unicode \xE2\x98\x83 \xF0\x9F\x99\x82";
            ] );
        ("empty_obj", Obj []);
        ("empty_list", List []);
        ("nested", Obj [ ("deep", List [ Obj [ ("x", Int 1) ]; Null ]) ]);
      ])

let test_json_to_channel_matches_to_string () =
  List.iter
    (fun v ->
      Alcotest.(check string)
        "compact bytes identical"
        (Sutil.Json.to_string v) (channel_bytes v);
      Alcotest.(check string)
        "indented bytes identical"
        (Sutil.Json.to_string ~indent:true v)
        (channel_bytes ~indent:true v))
    [
      gnarly_doc;
      Sutil.Json.Null;
      Sutil.Json.String "solo";
      Sutil.Json.List [ Sutil.Json.Int 1 ];
    ]

let test_json_doc_to_channel_appends_newline () =
  let path = Filename.temp_file "smokestack-json" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  Sutil.Json.doc_to_channel ~indent:true oc gnarly_doc;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string)
    "document is to_string plus newline"
    (Sutil.Json.to_string ~indent:true gnarly_doc ^ "\n")
    s;
  match Sutil.Json.of_string s with
  | Ok v -> Alcotest.(check bool) "and still parses" true (v = gnarly_doc)
  | Error e -> Alcotest.failf "parse failed: %s" e

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sutil"
    [
      ( "align",
        [
          Alcotest.test_case "is_pow2" `Quick test_is_pow2;
          Alcotest.test_case "next_pow2" `Quick test_next_pow2;
          Alcotest.test_case "align_up cases" `Quick test_align_up_cases;
          qt prop_align_up;
          qt prop_align_down;
        ] );
      ( "fact",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "lexical order" `Quick test_lehmer_lexical_order;
          Alcotest.test_case "apply" `Quick test_apply;
          qt prop_lehmer_roundtrip;
          qt prop_invert;
        ] );
      ( "bytecodec",
        [
          Alcotest.test_case "sext" `Quick test_sext;
          qt prop_codec_roundtrip;
          qt prop_sext_idempotent;
        ] );
      ( "simrng",
        [
          Alcotest.test_case "deterministic" `Quick test_simrng_deterministic;
          Alcotest.test_case "copy" `Quick test_simrng_copy;
          Alcotest.test_case "distribution" `Quick test_simrng_distribution;
          qt prop_simrng_int_bounds;
          qt prop_shuffle_permutes;
        ] );
      ( "stats+texttable",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "texttable" `Quick test_texttable;
        ] );
      ( "json",
        [
          Alcotest.test_case "unicode escapes" `Quick
            test_json_unicode_escapes;
          Alcotest.test_case "control round-trip" `Quick
            test_json_control_roundtrip;
          Alcotest.test_case "to_channel matches to_string" `Quick
            test_json_to_channel_matches_to_string;
          Alcotest.test_case "doc_to_channel appends newline" `Quick
            test_json_doc_to_channel_appends_newline;
        ] );
    ]
