(* Tests for the artifact store (lib/store): content-addressed keys,
   versioned entry codecs with bit-exact floats, the crash-safe disk
   backend (atomic writes, corruption quarantined as a miss), and the
   campaign runner's headline invariants — warm replay and resume both
   render byte-identical reports. *)

module Cache = Store.Cache
module Key = Store.Key
module Entry = Store.Entry
module Campaign = Store.Campaign

(* ------------------------------------------------------------------ *)
(* Temp directories (no Unix dependency beyond getpid) *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "smokestack-test-store-%d-%d" (Unix.getpid ())
       !tmp_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_disk_store f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Cache.open_disk dir) dir)

(* ------------------------------------------------------------------ *)
(* Keys *)

let base_key ?(source_text = "int main() { return 0; }") ?config
    ?(engine = Machine.Backend.Reference) ?(seed = 7L) ?(extra = "t") () =
  Key.of_source ~source_text ~config ~engine ~seed ~extra ()

let test_key_deterministic () =
  let k1 = base_key () and k2 = base_key () in
  Alcotest.(check bool) "equal" true (Key.equal k1 k2);
  Alcotest.(check string) "same id" (Key.id k1) (Key.id k2);
  Alcotest.(check string) "same rendering" (Key.to_string k1)
    (Key.to_string k2)

let test_key_distinct_per_field () =
  let variants =
    [
      ("base", base_key ());
      ("source", base_key ~source_text:"int main() { return 1; }" ());
      ("config", base_key ~config:Smokestack.Config.default ());
      ( "config'",
        base_key
          ~config:(Smokestack.Config.with_selective true Smokestack.Config.default)
          () );
      ("engine", base_key ~engine:Machine.Backend.Bytecode ());
      ("seed", base_key ~seed:8L ());
      ("extra", base_key ~extra:"t2" ());
    ]
  in
  List.iteri
    (fun i (ni, ki) ->
      List.iteri
        (fun j (nj, kj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s vs %s ids differ" ni nj)
              false
              (String.equal (Key.id ki) (Key.id kj)))
        variants)
    variants

let test_key_json_roundtrip () =
  let k = base_key ~config:Smokestack.Config.default ~seed:(-3L) () in
  match Key.of_json (Key.to_json k) with
  | None -> Alcotest.fail "key did not round-trip through JSON"
  | Some k' -> Alcotest.(check bool) "round-tripped key equal" true (Key.equal k k')

(* ------------------------------------------------------------------ *)
(* Entry codecs *)

let sample_stats =
  {
    Machine.Exec.cycles = 0.1 +. 0.2 (* not exactly representable as text *);
    instr_count = 12345;
    call_count = 678;
    max_depth = 9;
    max_frame_bytes = 256;
    rss_bytes = 4096;
    output = "hello\n\xE2\x98\x83 \"quoted\"";
  }

let sample_exec =
  {
    Entry.outcome = "exit 0";
    exit_code = Some 0L;
    stats = sample_stats;
    pbox_bytes = Some 192;
  }

let check_exec_equal msg (a : Entry.exec) (b : Entry.exec) =
  Alcotest.(check string) (msg ^ ": outcome") a.outcome b.outcome;
  Alcotest.(check (option int64)) (msg ^ ": exit code") a.exit_code b.exit_code;
  Alcotest.(check int64)
    (msg ^ ": cycles bit-exact")
    (Int64.bits_of_float a.stats.cycles)
    (Int64.bits_of_float b.stats.cycles);
  Alcotest.(check int) (msg ^ ": instrs") a.stats.instr_count b.stats.instr_count;
  Alcotest.(check int) (msg ^ ": calls") a.stats.call_count b.stats.call_count;
  Alcotest.(check int) (msg ^ ": depth") a.stats.max_depth b.stats.max_depth;
  Alcotest.(check int)
    (msg ^ ": frame") a.stats.max_frame_bytes b.stats.max_frame_bytes;
  Alcotest.(check int) (msg ^ ": rss") a.stats.rss_bytes b.stats.rss_bytes;
  Alcotest.(check string) (msg ^ ": output") a.stats.output b.stats.output;
  Alcotest.(check (option int)) (msg ^ ": pbox") a.pbox_bytes b.pbox_bytes

let test_exec_codec_roundtrip () =
  match Entry.exec_of_entry (Entry.exec_entry sample_exec) with
  | None -> Alcotest.fail "exec entry did not decode"
  | Some e -> check_exec_equal "round-trip" sample_exec e

let test_exec_codec_version_mismatch_is_miss () =
  let entry = Entry.exec_entry sample_exec in
  let future = { entry with Entry.version = entry.Entry.version + 1 } in
  Alcotest.(check bool)
    "future version decodes to None" true
    (Option.is_none (Entry.exec_of_entry future));
  let foreign = { entry with Entry.kind = "something-else" } in
  Alcotest.(check bool)
    "foreign kind decodes to None" true
    (Option.is_none (Entry.exec_of_entry foreign))

let test_verdicts_codec_roundtrip () =
  let verdicts =
    [ ("detected", "permuted slot"); ("crashed", "fault in f: oob"); ("no-effect", "") ]
  in
  Alcotest.(check (option (list (pair string string))))
    "verdicts round-trip" (Some verdicts)
    (Entry.verdicts_of_entry (Entry.verdicts_entry verdicts))

let test_validate_codec_roundtrip () =
  let rows =
    [
      ("no-stack-escape", "main", Some 3, "address of local escapes");
      ("fid-check", "helper", None, "missing check");
    ]
  in
  (match Entry.validate_of_entry (Entry.validate_entry ~clean:false rows) with
  | None -> Alcotest.fail "validate entry did not decode"
  | Some (clean, rows') ->
      Alcotest.(check bool) "clean flag" false clean;
      Alcotest.(check int) "row count" (List.length rows) (List.length rows');
      List.iter2
        (fun (r, f, row, d) (r', f', row', d') ->
          Alcotest.(check string) "rule" r r';
          Alcotest.(check string) "func" f f';
          Alcotest.(check (option int)) "row" row row';
          Alcotest.(check string) "detail" d d')
        rows rows');
  Alcotest.(check bool)
    "clean result round-trips" true
    (match Entry.validate_of_entry (Entry.validate_entry ~clean:true []) with
    | Some (true, []) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Disk backend *)

let test_disk_roundtrip_and_counters () =
  with_disk_store @@ fun store _dir ->
  let key = base_key () in
  Alcotest.(check bool) "cold find misses" true (Option.is_none (Cache.find store key));
  Cache.put store key (Entry.exec_entry sample_exec);
  (match Cache.find store key with
  | None -> Alcotest.fail "entry vanished after put"
  | Some e -> (
      match Entry.exec_of_entry e with
      | None -> Alcotest.fail "stored entry did not decode"
      | Some exec -> check_exec_equal "disk round-trip" sample_exec exec));
  let s = Cache.stats store in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "writes" 1 s.Cache.writes;
  Alcotest.(check int) "evicted" 0 s.Cache.evicted;
  Alcotest.(check bool) "mem sees it" true (Cache.mem store key);
  Alcotest.(check bool)
    "mem leaves counters alone" true
    (Cache.stats store = s)

let test_disk_survives_reopen () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let key = base_key () in
  Cache.put (Cache.open_disk dir) key (Entry.exec_entry sample_exec);
  let store = Cache.open_disk dir in
  match Cache.find store key with
  | None -> Alcotest.fail "entry not visible from a second handle"
  | Some e ->
      check_exec_equal "reopened"
        sample_exec
        (Option.get (Entry.exec_of_entry e))

let object_path root key =
  let id = Key.id key in
  Filename.concat
    (Filename.concat (Filename.concat root "objects") (String.sub id 0 2))
    (id ^ ".json")

let truncate_file path len =
  let ic = open_in_bin path in
  let keep = min len (in_channel_length ic) in
  let prefix = really_input_string ic keep in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc prefix;
  close_out oc

let test_corrupt_entry_is_quarantined_miss () =
  with_disk_store @@ fun store dir ->
  let key = base_key () in
  Cache.put store key (Entry.exec_entry sample_exec);
  truncate_file (object_path dir key) 17;
  Cache.reset_stats store;
  Alcotest.(check bool)
    "truncated entry is a miss, not a crash" true
    (Option.is_none (Cache.find store key));
  let s = Cache.stats store in
  Alcotest.(check int) "counted as miss" 1 s.Cache.misses;
  Alcotest.(check int) "counted as eviction" 1 s.Cache.evicted;
  Alcotest.(check bool)
    "offending file moved aside" false
    (Sys.file_exists (object_path dir key));
  Alcotest.(check bool)
    "quarantine holds it" true
    (Array.length (Sys.readdir (Filename.concat dir "quarantine")) > 0);
  (* the caller recomputes and overwrites; the store heals *)
  Cache.put store key (Entry.exec_entry sample_exec);
  Alcotest.(check bool) "healed" true (Option.is_some (Cache.find store key))

let test_key_echo_mismatch_is_miss () =
  with_disk_store @@ fun store dir ->
  let key = base_key () and other = base_key ~extra:"other" () in
  Cache.put store key (Entry.exec_entry sample_exec);
  (* graft key's entry file onto other's address: a hash collision or a
     hand-copied file must never serve the wrong key *)
  let dst = object_path dir other in
  let dstdir = Filename.dirname dst in
  if not (Sys.file_exists dstdir) then Sys.mkdir dstdir 0o755;
  let ic = open_in_bin (object_path dir key) in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc body;
  close_out oc;
  Alcotest.(check bool)
    "foreign entry degraded to a miss" true
    (Option.is_none (Cache.find store other))

let test_incompatible_manifest_version () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "manifest.json") in
  output_string oc "{\"smokestack-store\": 999}\n";
  close_out oc;
  match Cache.open_disk dir with
  | _ -> Alcotest.fail "version-mismatched store opened without complaint"
  | exception Cache.Incompatible msg ->
      Alcotest.(check bool)
        "diagnostic names the version" true
        (contains_substring msg "999")

let test_foreign_directory_rejected () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "unrelated.txt") in
  output_string oc "not a store\n";
  close_out oc;
  Alcotest.(check bool)
    "non-empty non-store directory is refused" true
    (match Cache.open_disk dir with
    | _ -> false
    | exception Cache.Incompatible _ -> true)

let test_concurrent_writers () =
  with_disk_store @@ fun store _dir ->
  let keys = List.init 24 (fun i -> base_key ~seed:(Int64.of_int i) ()) in
  Sched.Pool.with_pool ~jobs:8 @@ fun pool ->
  (* every job writes its own key and one shared key: distinct writers
     must not clobber each other, same-key writers must both succeed *)
  let shared = base_key ~extra:"shared" () in
  ignore
    (Sched.Pool.run_all pool
       (List.mapi
          (fun i key ->
            Sched.Job.v ~id:(string_of_int i) (fun () ->
                Cache.put store key (Entry.exec_entry sample_exec);
                Cache.put store shared (Entry.exec_entry sample_exec)))
          keys));
  List.iteri
    (fun i key ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d readable" i)
        true
        (Option.is_some (Cache.find store key)))
    (shared :: keys);
  Alcotest.(check bool)
    "no torn temp files left behind" true
    (match Cache.root store with
    | None -> false
    | Some root ->
        Array.for_all
          (fun f -> not (Filename.check_suffix f ".tmp"))
          (Sys.readdir (Filename.concat root "objects")))

(* ------------------------------------------------------------------ *)
(* Campaigns: warm replay and resume *)

let campaign_n = 12
let campaign_config ?count () =
  Campaign.config ~seed:4200L ~count:(Option.value ~default:campaign_n count) ()

let test_campaign_warm_hits_everything () =
  with_disk_store @@ fun store _dir ->
  let cfg = campaign_config () in
  let cold = Campaign.run ~store cfg in
  let cs = Cache.stats store in
  Alcotest.(check int) "cold misses every key" campaign_n cs.Cache.misses;
  Alcotest.(check int) "cold writes every key" campaign_n cs.Cache.writes;
  Cache.reset_stats store;
  let warm = Campaign.run ~store cfg in
  let ws = Cache.stats store in
  Alcotest.(check int) "warm hits every key" campaign_n ws.Cache.hits;
  Alcotest.(check int) "warm misses nothing" 0 ws.Cache.misses;
  Alcotest.(check int) "warm writes nothing" 0 ws.Cache.writes;
  Alcotest.(check string) "byte-identical digest" cold.Campaign.digest
    warm.Campaign.digest;
  Alcotest.(check bool) "whole report identical" true (cold = warm)

let test_campaign_digest_stable_across_jobs () =
  let digest_with run =
    let store = Cache.in_memory () in
    (run store).Campaign.digest
  in
  let cfg = campaign_config () in
  let seq = digest_with (fun store -> Campaign.run ~store cfg) in
  let par =
    digest_with (fun store ->
        Sched.Pool.with_pool ~jobs:8 @@ fun pool ->
        Campaign.run ~pool ~store cfg)
  in
  Alcotest.(check string) "jobs=8 digest equals sequential" seq par

let test_campaign_remaining () =
  with_disk_store @@ fun store _dir ->
  let half = campaign_config ~count:(campaign_n / 2) () in
  let full = campaign_config () in
  Alcotest.(check int) "everything remains cold" campaign_n
    (Campaign.remaining ~store full);
  ignore (Campaign.run ~store half);
  Alcotest.(check int)
    "half remains after a half run"
    (campaign_n - (campaign_n / 2))
    (Campaign.remaining ~store full);
  ignore (Campaign.run ~store full);
  Alcotest.(check int) "nothing remains warm" 0 (Campaign.remaining ~store full)

(* The resume property: killing a campaign after any prefix of the work
   and re-running over the same store yields the digest of an
   uninterrupted run.  A [count = k] run over a shared store is exactly
   the state a kill after k programs leaves behind (the disk backend's
   atomic rename guarantees no torn entries — exercised separately in
   CI with a real SIGKILL). *)
let test_campaign_resume_property () =
  let reference =
    (Campaign.run ~store:(Cache.in_memory ()) (campaign_config ())).Campaign.digest
  in
  let prop k =
    let store = Cache.in_memory () in
    if k > 0 then ignore (Campaign.run ~store (campaign_config ~count:k ()));
    let resumed = Campaign.run ~store (campaign_config ()) in
    String.equal resumed.Campaign.digest reference
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:8 ~name:"resume digest equals uninterrupted"
       QCheck.(int_bound campaign_n)
       prop)

(* ------------------------------------------------------------------ *)
(* Workbench integration: stats are a function of the key, not of
   which store instance served them *)

let test_workbench_stats_store_independent () =
  let w = List.hd Apps.Spec.all in
  Harness.Workbench.force_programs [ w ];
  let s1 = Harness.Workbench.baseline ~store:(Cache.in_memory ()) w in
  let s2 = Harness.Workbench.baseline ~store:(Cache.in_memory ()) w in
  Alcotest.(check int64)
    "baseline cycles bit-identical across stores"
    (Int64.bits_of_float s1.Machine.Exec.cycles)
    (Int64.bits_of_float s2.Machine.Exec.cycles);
  Alcotest.(check string) "baseline output identical" s1.Machine.Exec.output
    s2.Machine.Exec.output;
  let h1, p1 =
    Harness.Workbench.smokestack_stats ~store:(Cache.in_memory ())
      Smokestack.Config.default w
  in
  let h2, p2 =
    Harness.Workbench.smokestack_stats ~store:(Cache.in_memory ())
      Smokestack.Config.default w
  in
  Alcotest.(check int64)
    "hardened cycles bit-identical across stores"
    (Int64.bits_of_float h1.Machine.Exec.cycles)
    (Int64.bits_of_float h2.Machine.Exec.cycles);
  Alcotest.(check int) "pbox bytes identical" p1 p2

let () =
  Alcotest.run "store"
    [
      ( "key",
        [
          Alcotest.test_case "deterministic" `Quick test_key_deterministic;
          Alcotest.test_case "distinct per field" `Quick
            test_key_distinct_per_field;
          Alcotest.test_case "json round-trip" `Quick test_key_json_roundtrip;
        ] );
      ( "entry",
        [
          Alcotest.test_case "exec round-trip bit-exact" `Quick
            test_exec_codec_roundtrip;
          Alcotest.test_case "version/kind mismatch is a miss" `Quick
            test_exec_codec_version_mismatch_is_miss;
          Alcotest.test_case "verdicts round-trip" `Quick
            test_verdicts_codec_roundtrip;
          Alcotest.test_case "validate round-trip" `Quick
            test_validate_codec_roundtrip;
        ] );
      ( "disk",
        [
          Alcotest.test_case "round-trip and counters" `Quick
            test_disk_roundtrip_and_counters;
          Alcotest.test_case "survives reopen" `Quick test_disk_survives_reopen;
          Alcotest.test_case "corruption quarantined as miss" `Quick
            test_corrupt_entry_is_quarantined_miss;
          Alcotest.test_case "key-echo mismatch is miss" `Quick
            test_key_echo_mismatch_is_miss;
          Alcotest.test_case "manifest version mismatch refused" `Quick
            test_incompatible_manifest_version;
          Alcotest.test_case "foreign directory refused" `Quick
            test_foreign_directory_rejected;
          Alcotest.test_case "concurrent writers jobs=8" `Quick
            test_concurrent_writers;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "warm run hits everything" `Quick
            test_campaign_warm_hits_everything;
          Alcotest.test_case "digest stable across jobs" `Quick
            test_campaign_digest_stable_across_jobs;
          Alcotest.test_case "remaining counts cold keys" `Quick
            test_campaign_remaining;
          Alcotest.test_case "resume property" `Quick
            test_campaign_resume_property;
        ] );
      ( "workbench",
        [
          Alcotest.test_case "stats independent of store instance" `Quick
            test_workbench_stats_store_independent;
        ] );
    ]
