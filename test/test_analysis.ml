(* Tests for the static DOP attack-surface analyzer (lib/analysis):
   hand-built IR for the classification corner cases, pair enumeration,
   JSON round-tripping, the Spec dop_hints ground truth, and the
   dynamic/static differential validation. *)

let reasons_to_strings rs = List.map Analysis.Funcan.reason_to_string rs

let find_slot (fa : Analysis.Funcan.t) name =
  match List.find_opt (fun (s : Analysis.Funcan.slot) -> s.name = name) fa.slots with
  | Some s -> s
  | None -> Alcotest.failf "%s: no slot %s" fa.fname name

(* ------------------------------------------------------------------ *)
(* Interval domain *)

let itv = Alcotest.testable Analysis.Interval.pp Analysis.Interval.equal

(* refining against a non-singleton rhs must use the sound bound: from
   lhs < rhs we only know lhs <= max(rhs)-1, and from lhs > rhs only
   lhs >= min(rhs)+1 *)
let test_refine_nonsingleton_rhs () =
  let open Analysis.Interval in
  let lhs = of_bounds 0L 1000L and rhs = of_bounds 0L 100L in
  Alcotest.check itv "slt taken" (of_bounds 0L 99L)
    (refine Ir.Instr.Slt ~taken:true lhs ~rhs);
  Alcotest.check itv "sle taken" (of_bounds 0L 100L)
    (refine Ir.Instr.Sle ~taken:true lhs ~rhs);
  Alcotest.check itv "sgt taken" (of_bounds 1L 1000L)
    (refine Ir.Instr.Sgt ~taken:true lhs ~rhs);
  Alcotest.check itv "sge taken" (of_bounds 0L 1000L)
    (refine Ir.Instr.Sge ~taken:true lhs ~rhs);
  Alcotest.check itv "sge not-taken (lt)" (of_bounds 0L 99L)
    (refine Ir.Instr.Sge ~taken:false lhs ~rhs);
  Alcotest.check itv "sle not-taken (gt)" (of_bounds 1L 1000L)
    (refine Ir.Instr.Sle ~taken:false lhs ~rhs);
  Alcotest.check itv "ult taken" (of_bounds 0L 99L)
    (refine Ir.Instr.Ult ~taken:true lhs ~rhs);
  (* i in [0,1000] refined by i < n, n in [0,100]: must NOT go empty *)
  Alcotest.(check bool) "slt taken not empty" false
    (is_empty (refine Ir.Instr.Slt ~taken:true lhs ~rhs));
  (* singleton rhs still refines exactly *)
  Alcotest.check itv "slt taken singleton" (of_bounds 0L 7L)
    (refine Ir.Instr.Slt ~taken:true lhs ~rhs:(const 8L))

let test_widen_lower_threshold () =
  let open Analysis.Interval in
  (* a lower bound drifting just below zero snaps to -128 (the i8
     boundary), not straight to -2^31 *)
  Alcotest.check itv "snaps to -128" (of_bounds (-128L) 10L)
    (widen ~old:(of_bounds (-5L) 10L) (of_bounds (-6L) 10L));
  Alcotest.check itv "snaps to -32768" (of_bounds (-32768L) 10L)
    (widen ~old:(of_bounds (-200L) 10L) (of_bounds (-201L) 10L));
  Alcotest.check itv "hi snaps to 127" (of_bounds 0L 127L)
    (widen ~old:(of_bounds 0L 5L) (of_bounds 0L 6L))

(* ------------------------------------------------------------------ *)
(* Hand-built IR: classification *)

(* for (i = 0; i < 8; i++) buf[i] = 1;  -- provably in-bounds *)
let bounded_loop_func () =
  let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
  let b = Ir.Builder.create f in
  let buf = Ir.Builder.alloca b ~name:"buf" (Ir.Ty.Array (Ir.Ty.I64, 8)) in
  let i = Ir.Builder.alloca b ~name:"i" Ir.Ty.I64 in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 0L) ~addr:(Ir.Instr.Reg i);
  Ir.Builder.br b "loop";
  let _ = Ir.Builder.start_block b "loop" in
  let iv = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg i) in
  let c = Ir.Builder.icmp b Ir.Instr.Slt (Ir.Instr.Reg iv) (Ir.Instr.Imm 8L) in
  Ir.Builder.cond_br b (Ir.Instr.Reg c) ~if_true:"body" ~if_false:"exit";
  let _ = Ir.Builder.start_block b "body" in
  let iv2 = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg i) in
  let addr =
    Ir.Builder.gep_idx b (Ir.Instr.Reg buf) ~offset:0 ~index:(Ir.Instr.Reg iv2)
      ~scale:8
  in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 1L)
    ~addr:(Ir.Instr.Reg addr);
  let n = Ir.Builder.binop b Ir.Instr.Add (Ir.Instr.Reg iv2) (Ir.Instr.Imm 1L) in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Reg n) ~addr:(Ir.Instr.Reg i);
  Ir.Builder.br b "loop";
  let _ = Ir.Builder.start_block b "exit" in
  Ir.Builder.ret b None;
  f

let test_bounded_loop_safe () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (bounded_loop_func ());
  let fa = Analysis.Funcan.analyze_func prog (List.hd prog.Ir.Prog.funcs) in
  Alcotest.(check (list string)) "buf provably safe" []
    (reasons_to_strings (find_slot fa "buf").overflow);
  Alcotest.(check (list string)) "i provably safe" []
    (reasons_to_strings (find_slot fa "i").overflow)

(* buf[p] = 1 with p a parameter -- the index interval is top *)
let unbounded_index_func () =
  let f = Ir.Func.create ~name:"f" ~params:[ (0, Ir.Ty.I64) ] ~returns:None in
  let b = Ir.Builder.create f in
  let buf = Ir.Builder.alloca b ~name:"buf" (Ir.Ty.Array (Ir.Ty.I64, 8)) in
  let addr =
    Ir.Builder.gep_idx b (Ir.Instr.Reg buf) ~offset:0 ~index:(Ir.Instr.Reg 0)
      ~scale:8
  in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 1L)
    ~addr:(Ir.Instr.Reg addr);
  Ir.Builder.ret b None;
  f

let test_unbounded_index_overflow () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (unbounded_index_func ());
  let fa = Analysis.Funcan.analyze_func prog (List.hd prog.Ir.Prog.funcs) in
  match (find_slot fa "buf").overflow with
  | [] -> Alcotest.fail "buf should be overflow-capable"
  | rs ->
      Alcotest.(check bool) "out-of-extent reason" true
        (List.exists
           (function Analysis.Funcan.Out_of_extent _ -> true | _ -> false)
           rs)

(* g(&buf) -- the address escapes to a defined callee *)
let escape_prog () =
  let prog = Ir.Prog.create () in
  let g = Ir.Func.create ~name:"g" ~params:[ (0, Ir.Ty.Ptr) ] ~returns:None in
  let bg = Ir.Builder.create g in
  Ir.Builder.ret bg None;
  Ir.Prog.add_func prog g;
  let f = Ir.Func.create ~name:"f" ~params:[] ~returns:None in
  let b = Ir.Builder.create f in
  let buf = Ir.Builder.alloca b ~name:"buf" (Ir.Ty.Array (Ir.Ty.I8, 16)) in
  ignore (Ir.Builder.call b ~result:false "g" [ Ir.Instr.Reg buf ]);
  Ir.Builder.ret b None;
  Ir.Prog.add_func prog f;
  prog

let test_escaped_pointer_overflow () =
  let prog = escape_prog () in
  let fas = Analysis.Funcan.analyze prog in
  let fa = List.find (fun (a : Analysis.Funcan.t) -> a.fname = "f") fas in
  match (find_slot fa "buf").overflow with
  | [] -> Alcotest.fail "escaped buf should be overflow-capable"
  | rs ->
      Alcotest.(check bool) "escape reason" true
        (List.exists
           (function Analysis.Funcan.Escape _ -> true | _ -> false)
           rs)

(* ------------------------------------------------------------------ *)
(* Pair enumeration *)

(* vict (declared first, so above) feeds a branch; buf below it is
   overflow-capable through a parameter-indexed store *)
let pair_func () =
  let f = Ir.Func.create ~name:"g" ~params:[ (0, Ir.Ty.I64) ] ~returns:None in
  let b = Ir.Builder.create f in
  let vict = Ir.Builder.alloca b ~name:"vict" Ir.Ty.I64 in
  let buf = Ir.Builder.alloca b ~name:"buf" (Ir.Ty.Array (Ir.Ty.I8, 16)) in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 7L)
    ~addr:(Ir.Instr.Reg vict);
  let addr =
    Ir.Builder.gep_idx b (Ir.Instr.Reg buf) ~offset:0 ~index:(Ir.Instr.Reg 0)
      ~scale:1
  in
  Ir.Builder.store b Ir.Ty.I8 ~value:(Ir.Instr.Imm 65L)
    ~addr:(Ir.Instr.Reg addr);
  let v = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg vict) in
  let c = Ir.Builder.icmp b Ir.Instr.Eq (Ir.Instr.Reg v) (Ir.Instr.Imm 7L) in
  Ir.Builder.cond_br b (Ir.Instr.Reg c) ~if_true:"yes" ~if_false:"no";
  let _ = Ir.Builder.start_block b "yes" in
  Ir.Builder.ret b None;
  let _ = Ir.Builder.start_block b "no" in
  Ir.Builder.ret b None;
  f

let test_pair_enumeration () =
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog (pair_func ());
  let fas = Analysis.Funcan.analyze prog in
  let pairs = Analysis.Dop.enumerate prog fas in
  let same_frame =
    List.filter
      (fun (p : Analysis.Dop.pair) -> p.kind = Analysis.Dop.Same_frame)
      pairs
  in
  match same_frame with
  | [ p ] ->
      Alcotest.(check string) "buffer" "buf" p.buf_slot;
      Alcotest.(check string) "victim" "vict" p.victim_slot;
      (* vict at -8, buf (16 B, below it) at -24: distance 16 *)
      Alcotest.(check (option int)) "static distance" (Some 16)
        p.static_distance;
      Alcotest.(check bool) "victim feeds a branch" true
        (List.mem Analysis.Funcan.Branch_feed p.victim_roles)
  | l -> Alcotest.failf "expected exactly one same-frame pair, got %d" (List.length l)

(* the same program with the declarations swapped yields no same-frame
   pair: overflows only write upward *)
let test_pair_direction_filter () =
  let f = Ir.Func.create ~name:"g" ~params:[ (0, Ir.Ty.I64) ] ~returns:None in
  let b = Ir.Builder.create f in
  let buf = Ir.Builder.alloca b ~name:"buf" (Ir.Ty.Array (Ir.Ty.I8, 16)) in
  let vict = Ir.Builder.alloca b ~name:"vict" Ir.Ty.I64 in
  Ir.Builder.store b Ir.Ty.I64 ~value:(Ir.Instr.Imm 7L)
    ~addr:(Ir.Instr.Reg vict);
  let addr =
    Ir.Builder.gep_idx b (Ir.Instr.Reg buf) ~offset:0 ~index:(Ir.Instr.Reg 0)
      ~scale:1
  in
  Ir.Builder.store b Ir.Ty.I8 ~value:(Ir.Instr.Imm 65L)
    ~addr:(Ir.Instr.Reg addr);
  let v = Ir.Builder.load b Ir.Ty.I64 (Ir.Instr.Reg vict) in
  let c = Ir.Builder.icmp b Ir.Instr.Eq (Ir.Instr.Reg v) (Ir.Instr.Imm 7L) in
  Ir.Builder.cond_br b (Ir.Instr.Reg c) ~if_true:"yes" ~if_false:"no";
  let _ = Ir.Builder.start_block b "yes" in
  Ir.Builder.ret b None;
  let _ = Ir.Builder.start_block b "no" in
  Ir.Builder.ret b None;
  let prog = Ir.Prog.create () in
  Ir.Prog.add_func prog f;
  let pairs = Analysis.Dop.enumerate prog (Analysis.Funcan.analyze prog) in
  Alcotest.(check int) "no same-frame pair downward" 0
    (List.length
       (List.filter
          (fun (p : Analysis.Dop.pair) -> p.kind = Analysis.Dop.Same_frame)
          pairs))

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

let test_json_roundtrip () =
  let v = Option.get (Apps.Synth.find "stack-direct") in
  let report =
    Analysis.Report.analyze_prog ~name:"stack-direct" (Lazy.force v.program)
  in
  let s = Sutil.Json.to_string ~indent:true (Analysis.Report.to_json report) in
  match Sutil.Json.of_string s with
  | Error e -> Alcotest.failf "JSON re-parse failed: %s" e
  | Ok j -> (
      match Analysis.Report.of_json j with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok report' ->
          Alcotest.(check bool) "round-trips exactly" true (report = report');
          Alcotest.(check bool)
            "every function validated under default hardening" true
            (report'.funcs <> []
            && List.for_all
                 (fun (f : Analysis.Report.func_summary) -> f.validated)
                 report'.funcs))

let test_json_roundtrip_unscored () =
  let prog = escape_prog () in
  let report = Analysis.Report.analyze_prog ~name:"tiny" ~score:false prog in
  let s = Sutil.Json.to_string (Analysis.Report.to_json report) in
  match Analysis.Report.of_json (Sutil.Json.of_string_exn s) with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok report' ->
      Alcotest.(check bool) "round-trips exactly" true (report = report')

(* ------------------------------------------------------------------ *)
(* Ground truth: Spec dop_hints, and dynamic => static validation *)

let test_spec_hints_hold () =
  List.iter
    (fun (w : Apps.Spec.workload) ->
      if w.dop_hints <> [] then
        let fas = Analysis.Funcan.analyze (Lazy.force w.program) in
        List.iter
          (fun (fname, slot) ->
            let fa =
              List.find (fun (a : Analysis.Funcan.t) -> a.fname = fname) fas
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s:%s overflow-capable" w.wname fname slot)
              true
              ((find_slot fa slot).overflow <> []))
          w.dop_hints)
    Apps.Spec.all

let test_crossval_all_validated () =
  let t = Harness.Crossval.run ~trials:2 () in
  Alcotest.(check int) "covers all eleven attacks" 11 (List.length t.rows);
  List.iter
    (fun (r : Harness.Crossval.row) ->
      Alcotest.(check bool) (r.cname ^ " lands dynamically") true
        r.dynamic_success;
      Alcotest.(check bool)
        (r.cname ^ " has its witness pair statically")
        true r.validated)
    t.rows;
  Alcotest.(check bool) "all validated" true t.all_validated

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "interval",
        [
          Alcotest.test_case "refine non-singleton rhs" `Quick
            test_refine_nonsingleton_rhs;
          Alcotest.test_case "widen lower thresholds" `Quick
            test_widen_lower_threshold;
        ] );
      ( "classify",
        [
          Alcotest.test_case "bounded loop safe" `Quick test_bounded_loop_safe;
          Alcotest.test_case "unbounded index" `Quick
            test_unbounded_index_overflow;
          Alcotest.test_case "escaped pointer" `Quick
            test_escaped_pointer_overflow;
        ] );
      ( "pairs",
        [
          Alcotest.test_case "enumeration" `Quick test_pair_enumeration;
          Alcotest.test_case "direction filter" `Quick
            test_pair_direction_filter;
        ] );
      ( "json",
        [
          Alcotest.test_case "scored round-trip" `Slow test_json_roundtrip;
          Alcotest.test_case "unscored round-trip" `Quick
            test_json_roundtrip_unscored;
        ] );
      ( "ground-truth",
        [
          Alcotest.test_case "spec hints" `Slow test_spec_hints_hold;
          Alcotest.test_case "crossval" `Slow test_crossval_all_validated;
        ] );
    ]
