(* Tests for the static hardening validator (Analysis.Validate): clean
   validation over every application workload and a Progen corpus,
   each seeded mutation class caught with the right rule, runnable
   mutants still executing bit-identically on both engines, and the
   selective-hardening path (elision oracle, draw-preserving
   bit-identity, validator certification of elisions). *)

module Validate = Analysis.Validate
module Harden = Smokestack.Harden
module Config = Smokestack.Config

let () = Validate.install ()
let () = Engine.Backend.install ()

let default = Config.default

let harden_pair ?(config = default) prog =
  let hardened = Harden.harden config prog in
  (prog, hardened)

let check_clean what ?original hardened =
  match Validate.check ?original hardened with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: unexpected violations:\n%s" what
        (String.concat "\n" (List.map Validate.violation_to_string vs))

let contains s sub =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

let rule = Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Validate.rule_to_string r))
    ( = )

(* ------------------------------------------------------------------ *)
(* Clean validation: applications *)

let test_clean_workloads () =
  List.iter
    (fun (w : Apps.Spec.workload) ->
      let prog = Lazy.force w.program in
      let original, hardened = harden_pair prog in
      check_clean w.wname ~original hardened)
    Apps.Spec.all

let test_clean_synth () =
  List.iter
    (fun (v : Apps.Synth.variant) ->
      let prog = Lazy.force v.program in
      let original, hardened = harden_pair prog in
      check_clean v.vname ~original hardened)
    Apps.Synth.variants

(* ...and under every non-default scheme knob that changes codegen. *)
let test_clean_config_axes () =
  let prog () = Lazy.force (Option.get (Apps.Spec.find "proftpd-io")).program in
  let axes =
    [
      ("no-pow2", { default with pow2_pbox = false });
      ("no-sharing", { default with share_tables = false });
      ("no-roundup", { default with round_up_allocs = false });
      ("no-fid", { default with fid_checks = false });
      ("dynamic-heavy", { default with max_exhaustive_vars = 2 });
    ]
  in
  List.iter
    (fun (label, config) ->
      let original, hardened = harden_pair ~config (prog ()) in
      check_clean label ~original hardened)
    axes

(* ------------------------------------------------------------------ *)
(* Clean validation: Progen corpus *)

let test_clean_progen () =
  for seed = 1 to 50 do
    let src = Minic.Progen.generate ~seed:(Int64.of_int seed) in
    let prog = Minic.Driver.compile src in
    let original, hardened = harden_pair prog in
    check_clean (Printf.sprintf "progen seed %d" seed) ~original hardened
  done

(* ------------------------------------------------------------------ *)
(* Mutation catalogue: every class applicable and caught *)

let mutation_bases =
  [ "proftpd-io"; "gobmk"; "perlbench" ]
  |> List.map (fun n -> (n, Option.get (Apps.Spec.find n)))

let mutant_caught what mutation hardened =
  match Validate.mutate ~seed:7L mutation hardened with
  | None -> None
  | Some (mutant, desc) ->
      let vs = Validate.check mutant in
      if vs = [] then
        Alcotest.failf "%s: mutation %S went undetected" what desc;
      let expected = Validate.expected_rule mutation in
      if
        not
          (List.exists (fun (v : Validate.violation) -> v.rule = expected) vs)
      then
        Alcotest.failf "%s: mutation %S caught, but not by %s (got: %s)" what
          desc
          (Validate.rule_to_string expected)
          (String.concat "; " (List.map Validate.violation_to_string vs));
      Some mutant

let test_mutations_caught () =
  List.iter
    (fun m ->
      let applied =
        List.exists
          (fun (wname, (w : Apps.Spec.workload)) ->
            let prog = Lazy.force w.program in
            let hardened = Harden.harden default prog in
            Option.is_some
              (mutant_caught
                 (Printf.sprintf "%s on %s" (Validate.mutation_to_string m)
                    wname)
                 m hardened))
          mutation_bases
      in
      if not applied then
        Alcotest.failf "mutation %s applied to no base workload"
          (Validate.mutation_to_string m))
    Validate.all_mutations

(* A mutation must be caught by its own rule and, for the IR-level
   ones, leave a program both engines still execute identically: the
   validator flags statically what execution would not reliably
   surface. *)
let test_runnable_mutants_both_engines () =
  let v = Option.get (Apps.Synth.find "stack-direct") in
  let prog = Lazy.force v.program in
  let hardened = Harden.harden default prog in
  List.iter
    (fun m ->
      match
        mutant_caught
          (Printf.sprintf "%s on stack-direct" (Validate.mutation_to_string m))
          m hardened
      with
      | None ->
          Alcotest.failf "mutation %s inapplicable to stack-direct"
            (Validate.mutation_to_string m)
      | Some mutant ->
          let results =
            List.map
              (fun (b : Machine.Backend.t) ->
                let st =
                  Harden.prepare mutant
                    ~entropy:(Crypto.Entropy.create ~seed:11L)
                in
                b.run st)
              [ Machine.Backend.reference; Engine.Backend.backend ]
          in
          (match results with
          | [ r1; r2 ] ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: engines agree on the mutant"
                   (Validate.mutation_to_string m))
                true (r1 = r2)
          | _ -> assert false))
    [ Validate.Raw_alloca; Validate.Spill_index; Validate.Drop_fid_assert ]

(* ------------------------------------------------------------------ *)
(* Harden integration (satellite b): the pipeline reports which
   post-condition failed, naming rule and function *)

let test_harden_reports_validation_failure () =
  let src = "int main() { int a[4]; a[0] = 1; return a[0]; }" in
  let prog = Minic.Driver.compile src in
  Harden.set_validator (fun ~original:_ _ ->
      Error "[fid-pairing] main: synthetic violation");
  let raised =
    try
      ignore (Harden.harden default prog);
      None
    with Failure msg -> Some msg
  in
  Validate.install ();
  match raised with
  | None -> Alcotest.fail "validation failure did not raise"
  | Some msg ->
      Alcotest.(check bool)
        "message distinguishes the post-condition failure" true
        (contains msg "pipeline post-condition validation failed");
      Alcotest.(check bool)
        "message names rule and function" true
        (contains msg "[fid-pairing] main")

(* ------------------------------------------------------------------ *)
(* Selective hardening *)

let test_elidable_nonempty () =
  let found =
    List.exists
      (fun (w : Apps.Spec.workload) ->
        Validate.elidable (Lazy.force w.program) <> [])
      Apps.Spec.all
  in
  Alcotest.(check bool) "some workload has elidable functions" true found

let selective = Config.with_selective true default

let test_selective_validates () =
  List.iter
    (fun (w : Apps.Spec.workload) ->
      let prog = Lazy.force w.program in
      if Validate.elidable prog <> [] then begin
        let hardened = Harden.harden selective prog in
        Alcotest.(check bool)
          (w.wname ^ ": elisions happened")
          true (hardened.elided <> []);
        check_clean (w.wname ^ " selective") ~original:prog hardened;
        (* the saving is real: elided functions have no binding *)
        Alcotest.(check bool)
          (w.wname ^ ": pbox no larger")
          true
          (Harden.pbox_bytes hardened
          <= Harden.pbox_bytes (Harden.harden default prog))
      end)
    Apps.Spec.all

(* Draw-preserving elision: identical entropy, identical outcome and
   output on every workload, full vs selective.  Only outcome/output
   can be compared — elided functions keep their original (smaller)
   frames, so cycle and RSS accounting legitimately differ. *)
let test_selective_bit_identical () =
  List.iter
    (fun (w : Apps.Spec.workload) ->
      let prog = Lazy.force w.program in
      let run config =
        let applied =
          Defenses.Defense.apply ~seed:3L
            (Defenses.Defense.Smokestack config) prog
        in
        Apps.Runner.run_chunks applied ~seed:23L
          ~chunks:(Harness.Workbench.chunks_of_input w.input)
      in
      let o_full, s_full = run default in
      let o_sel, s_sel = run selective in
      Alcotest.(check bool)
        (w.wname ^ ": outcome identical")
        true (o_full = o_sel);
      Alcotest.(check string)
        (w.wname ^ ": output identical")
        s_full.output s_sel.output)
    Apps.Spec.all

(* Certification is not rubber-stamping: force-eliding an unsafe
   function must be rejected. *)
let test_bogus_elision_rejected () =
  let v = Option.get (Apps.Synth.find "stack-direct") in
  let prog = Lazy.force v.program in
  let unsafe =
    (* a function the analyzer puts in a DOP pair *)
    let analyses = Analysis.Funcan.analyze prog in
    let pairs = Analysis.Dop.enumerate prog analyses in
    (List.hd pairs).buf_func
  in
  Harden.set_elision_oracle (fun _ -> [ unsafe ]);
  let raised =
    try
      ignore (Harden.harden selective prog);
      false
    with Failure _ -> true
  in
  Validate.install ();
  Alcotest.(check bool) "unsafe elision rejected" true raised

(* ------------------------------------------------------------------ *)
(* Missing-original and JSON surface *)

let test_missing_original () =
  let w =
    List.find
      (fun (w : Apps.Spec.workload) ->
        Validate.elidable (Lazy.force w.program) <> [])
      Apps.Spec.all
  in
  let prog = Lazy.force w.program in
  let hardened = Harden.harden selective prog in
  if hardened.elided = [] then ()
  else
    let vs = Validate.check hardened in
    Alcotest.(check bool)
      "elision uncertifiable without the original" true
      (List.exists
         (fun (v : Validate.violation) -> v.rule = Validate.Elision)
         vs)

let test_json_rendering () =
  let v =
    {
      Validate.rule = Validate.Pbox_soundness;
      func = "f\"1";
      row = Some 3;
      detail = "overlap";
    }
  in
  let json = Validate.violation_to_json v in
  Alcotest.(check bool)
    "escapes and fields present" true
    (json = "{\"rule\":\"pbox-soundness\",\"func\":\"f\\\"1\",\"row\":3,\"detail\":\"overlap\"}");
  let report = Validate.report_json ~name:"w" [] in
  Alcotest.(check bool)
    "clean report" true
    (report = "{\"program\":\"w\",\"clean\":true,\"violations\":[]}");
  Alcotest.check rule "round-trip mutation rule" Validate.Index_hygiene
    (Validate.expected_rule
       (Option.get (Validate.mutation_of_string "spill-index")))

let () =
  Alcotest.run "validate"
    [
      ( "clean",
        [
          Alcotest.test_case "all workloads validate" `Slow
            test_clean_workloads;
          Alcotest.test_case "synthetic variants validate" `Quick
            test_clean_synth;
          Alcotest.test_case "config axes validate" `Quick
            test_clean_config_axes;
          Alcotest.test_case "progen corpus validates" `Slow test_clean_progen;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "every class caught" `Slow test_mutations_caught;
          Alcotest.test_case "runnable mutants, both engines" `Quick
            test_runnable_mutants_both_engines;
        ] );
      ( "integration",
        [
          Alcotest.test_case "harden reports failures" `Quick
            test_harden_reports_validation_failure;
          Alcotest.test_case "json rendering" `Quick test_json_rendering;
        ] );
      ( "selective",
        [
          Alcotest.test_case "elidable nonempty" `Quick test_elidable_nonempty;
          Alcotest.test_case "selective validates" `Slow
            test_selective_validates;
          Alcotest.test_case "bit-identical outcomes" `Slow
            test_selective_bit_identical;
          Alcotest.test_case "bogus elision rejected" `Quick
            test_bogus_elision_rejected;
          Alcotest.test_case "missing original" `Quick test_missing_original;
        ] );
    ]
