(* Quickstart: compile a MiniC program, harden it with Smokestack, run
   both, and watch the frame layout change on every invocation.

     dune exec examples/quickstart.exe *)

let source =
  {|
// a little service: mixes a session id from caller-provided parts
long mix_session(long a, long b) {
  char nonce[16];
  long acc = 0;
  long i = 0;
  strcpy(nonce, "n0nce-n0nce");
  while (i < 12) {
    acc = acc * 31 + (nonce[i] & 255) + a * i - b;
    i += 1;
  }
  return acc;
}

int main() {
  long s = 0;
  long round = 0;
  while (round < 3) {
    s ^= mix_session(round, 42);
    round += 1;
  }
  print_str("session: ");
  print_int(s);
  print_newline();
  return 0;
}
|}

let () =
  print_endline "1. Compile to IR ------------------------------------------";
  let prog = Minic.Driver.compile source in
  Format.printf "%d function(s), %d global(s)@."
    (List.length prog.funcs) (List.length prog.globals);

  print_endline "\n2. Run the baseline ---------------------------------------";
  let st = Machine.Exec.prepare prog in
  let outcome, stats = Machine.Exec.run st in
  Format.printf "%s | output: %s | %.0f cycles@."
    (Machine.Exec.outcome_to_string outcome)
    (String.trim stats.output) stats.cycles;

  print_endline "\n3. Harden with Smokestack (AES-10, all optimizations) -----";
  let hardened = Smokestack.Harden.harden Smokestack.Config.default prog in
  Format.printf "permuted functions: %s | P-BOX: %d bytes of rodata@."
    (String.concat ", " (Smokestack.Harden.permuted_functions hardened))
    (Smokestack.Harden.pbox_bytes hardened);

  print_endline "\n4. Run hardened — same behaviour, randomized frames -------";
  let st =
    Smokestack.Harden.prepare hardened ~entropy:(Crypto.Entropy.create ~seed:7L)
  in
  let outcome, hstats = Machine.Exec.run st in
  Format.printf "%s | output: %s | %.0f cycles (%s overhead)@."
    (Machine.Exec.outcome_to_string outcome)
    (String.trim hstats.output)
    hstats.cycles
    (Sutil.Texttable.fmt_pct
       (Sutil.Stats.percent_overhead ~baseline:stats.cycles
          ~measured:hstats.cycles));

  print_endline
    "\n5. The point: mix_session's frame layout per invocation -----";
  (match Smokestack.Pbox.binding hardened.pbox "mix_session" with
  | Some b ->
      let entropy = Crypto.Entropy.create ~seed:99L in
      let gen = Rng.Generator.create hardened.config.scheme ~entropy in
      (match Smokestack.Pbox.entry_of hardened.pbox b with
      | Some e ->
          Format.printf
            "slots: a(spill) b(spill) nonce[16] acc i fid — offsets into the \
             frame slab:@.";
          for inv = 1 to 5 do
            let idx =
              Int64.to_int
                (Int64.logand (Rng.Generator.next_u64 gen)
                   (Int64.of_int (e.rows_materialized - 1)))
            in
            let offs = Smokestack.Pbox.lookup_offsets hardened.pbox b ~row:idx in
            Format.printf "  invocation %d: [%s]@." inv
              (String.concat "; "
                 (Array.to_list (Array.map string_of_int offs)))
          done
      | None -> Format.printf "(dynamically decoded frame)@.")
  | None -> Format.printf "mix_session was not instrumented?!@.");
  print_endline
    "\nEvery call draws a fresh permutation: the relative distances a DOP\n\
     exploit needs expire before the attacker can use them."
