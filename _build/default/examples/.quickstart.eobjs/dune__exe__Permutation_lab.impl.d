examples/permutation_lab.ml: Array Format List Printf Smokestack String Sutil Sys
