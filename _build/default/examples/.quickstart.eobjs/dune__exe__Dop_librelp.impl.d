examples/dop_librelp.ml: Apps Attacks Defenses Format Int64 Lazy List Printf Rng Smokestack String
