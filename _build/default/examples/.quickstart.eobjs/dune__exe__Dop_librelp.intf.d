examples/dop_librelp.mli:
