examples/quickstart.mli:
