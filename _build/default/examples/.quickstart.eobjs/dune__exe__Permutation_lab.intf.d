examples/permutation_lab.mli:
