examples/quickstart.ml: Array Crypto Format Int64 List Machine Minic Rng Smokestack String Sutil
