(* Permutation lab: poke at Algorithm 1 and the P-BOX optimizations
   with your own frame shapes.

     dune exec examples/permutation_lab.exe
     dune exec examples/permutation_lab.exe -- 64:1 8:8 8:8 4:4
   (each argument is size:alignment of one stack allocation) *)

let parse_meta s =
  match String.split_on_char ':' s with
  | [ size; alignment ] -> (int_of_string size, int_of_string alignment)
  | _ -> failwith (Printf.sprintf "bad slot spec %S (want size:align)" s)

let () =
  let metas =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as specs) -> Array.of_list (List.map parse_meta specs)
    | _ -> [| (64, 1); (8, 8); (4, 4); (2, 2) |]
  in
  let n = Array.length metas in
  Format.printf "frame: %d allocation(s): %s@." n
    (String.concat " "
       (Array.to_list (Array.map (fun (s, a) -> Printf.sprintf "%d:%d" s a) metas)));

  (* Algorithm 1, unshuffled, to see the lexical order *)
  let table = Smokestack.Permgen.generate metas in
  let rows = Array.length table.offsets in
  Format.printf "@.Algorithm 1 generates %d rows (n!), total allocation %d..%d bytes@."
    rows
    (Array.fold_left min max_int table.totals)
    table.max_total;
  let show = min rows 12 in
  for r = 0 to show - 1 do
    Format.printf "  row %2d: offsets [%s]  (frame %d bytes)@." r
      (String.concat "; "
         (Array.to_list (Array.map string_of_int table.offsets.(r))))
      table.totals.(r)
  done;
  if rows > show then Format.printf "  ... %d more rows@." (rows - show);

  (* entropy: distinct offset vectors (alignment padding merges some) *)
  let distinct =
    List.length
      (List.sort_uniq compare (Array.to_list (Array.map Array.to_list table.offsets)))
  in
  Format.printf
    "@.%d distinct layouts out of %d permutations — alignment padding both@.merges \
     identical-shape slots and creates offsets no padding-free layout has.@."
    distinct rows;

  (* per-slot offset distribution: what the attacker must guess *)
  Format.printf "@.per-slot offset spread (the DOP attacker must pin these):@.";
  Array.iteri
    (fun i (size, alignment) ->
      let offsets =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun row -> row.(i)) table.offsets))
      in
      Format.printf "  slot %d (%4d:%d): %2d possible offsets: %s@." i size
        alignment (List.length offsets)
        (String.concat "," (List.map string_of_int offsets)))
    metas;

  (* what the P-BOX does with it *)
  let config = Smokestack.Config.default in
  let pbox =
    Smokestack.Pbox.build config
      [ ("f", metas); ("g", metas); ("h", Array.append metas [| (8, 8) |]) ]
  in
  Format.printf
    "@.P-BOX for three functions (two share this frame, one has an extra long):@.";
  Format.printf "  %d table(s), %s read-only (power-of-2 rows: %b)@."
    (Array.length pbox.entries)
    (Sutil.Texttable.fmt_bytes (Smokestack.Pbox.blob_bytes pbox))
    config.pow2_pbox;
  Array.iteri
    (fun i (e : Smokestack.Pbox.entry) ->
      Format.printf "  table %d: %d rows materialized, users: %s@." i
        e.rows_materialized
        (String.concat ", " (List.sort compare e.users)))
    pbox.entries
