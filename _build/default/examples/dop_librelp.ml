(* The paper's §II-C story, end to end: a real-world-modeled DOP exploit
   (librelp CVE-2018-1000140) walks through every prior stack-layout
   randomization and dies against Smokestack.

     dune exec examples/dop_librelp.exe *)

let pf fmt = Format.printf (fmt ^^ "@.")

let show verdict =
  match verdict with
  | Attacks.Verdict.Success -> "EXPLOITED — private key on the wire"
  | v -> "blocked (" ^ Attacks.Verdict.to_string v ^ ")"

let () =
  let prog = Lazy.force Apps.Librelp.program in
  pf "mini-librelp: RELP listener checking TLS peer names.";
  pf "The bug: iAllNames += snprintf(allNames + iAllNames, sizeof - iAllNames, ...)";
  pf "Once iAllNames crosses the buffer, the size goes negative -> size_t -> unbounded,";
  pf "and the attacker controls the landing offset: a non-linear overflow.@.";

  (* benign service *)
  let applied = Defenses.Defense.apply Defenses.Defense.No_defense prog in
  let _, stats =
    Apps.Runner.run_chunks applied ~seed:1L ~chunks:Apps.Librelp.benign_chunks
  in
  pf "benign run (certificate matches): log = %S@." (String.trim stats.output);

  pf "The exploit: pad the SAN accumulator to a computed jump point, overshoot";
  pf "the 4 KiB buffer, land 3 bytes exactly on the CALLER's keyPtr, and let the";
  pf "session loop (the DOP gadget dispatcher) stream the private key into the log.@.";

  let rate attack applied =
    let n = 8 in
    let ok = ref 0 in
    for i = 0 to n - 1 do
      match attack applied ~seed:(Int64.of_int (7 + (100 * i))) with
      | Attacks.Verdict.Success -> incr ok
      | _ -> ()
    done;
    (!ok, n)
  in
  List.iter
    (fun d ->
      let applied = Defenses.Defense.apply ~seed:3L d prog in
      let sr, n = rate Apps.Librelp.attack_static applied in
      let dr, _ = rate Apps.Librelp.attack_disclosure applied in
      let describe k =
        if k = n then show Attacks.Verdict.Success
        else if k = 0 then "blocked on all attempts"
        else Printf.sprintf "exploited on %d/%d attempts (layout luck)" k n
      in
      pf "%-22s binary-analysis:  %s" (Defenses.Defense.name d) (describe sr);
      pf "%-22s probe+disclosure: %s" "" (describe dr))
    (Defenses.Defense.all ());

  pf "@.static-perm is fixed per build — how many builds fall to pure binary analysis?";
  let exploitable = ref 0 in
  let builds = 10 in
  for b = 0 to builds - 1 do
    let applied =
      Defenses.Defense.apply ~seed:(Int64.of_int (50 + b))
        Defenses.Defense.Static_perm prog
    in
    match Apps.Librelp.attack_static applied ~seed:7L with
    | Attacks.Verdict.Success -> incr exploitable
    | _ -> ()
  done;
  pf "  %d/%d builds exploitable on the first try (and a build never re-randomizes)."
    !exploitable builds;

  pf "@.Smokestack under brute force (service restarts after each crash):";
  let applied =
    Defenses.Defense.apply ~seed:3L
      (Defenses.Defense.Smokestack Smokestack.Config.default)
      prog
  in
  let result =
    Attacks.Bruteforce.run ~max_attempts:300 (fun i ->
        Apps.Librelp.attack_static applied ~seed:(Int64.of_int (4000 + i)))
  in
  pf "  %s after %d attempt(s): %s"
    (if result.succeeded then "first success" else "no success")
    result.attempts
    (Attacks.Verdict.summarize result.verdicts);
  pf "  …and each success is one invocation only: the next call re-randomizes."

(* The two extension experiments, live: *)
let () =
  let prog = Lazy.force Apps.Librelp.program in
  pf "@.Why the randomness source matters (E10): disclose the pseudo scheme's";
  pf "in-memory state word, run the xorshift BACKWARDS, replay the draws that";
  pf "laid out the live frames, and exploit within the same invocation:";
  List.iter
    (fun scheme ->
      let config =
        Smokestack.Config.with_scheme scheme Smokestack.Config.default
      in
      let applied =
        Defenses.Defense.apply ~seed:3L (Defenses.Defense.Smokestack config) prog
      in
      let ok = ref 0 in
      let n = 6 in
      for i = 0 to n - 1 do
        match
          Apps.Librelp.attack_pseudo_state applied ~seed:(Int64.of_int (60 + i))
        with
        | Attacks.Verdict.Success -> incr ok
        | _ -> ()
      done;
      pf "  %-7s %d/%d runs end with the key on the wire"
        (Rng.Scheme.name scheme) !ok n)
    Rng.Scheme.all;

  pf "@.Why PER-INVOCATION matters (E11): probe the live layout, exploit a later";
  pf "invocation of the same process — against variants that redraw every n-th request:";
  List.iter
    (fun interval ->
      let config =
        { Smokestack.Config.default with redraw_interval = interval }
      in
      let applied =
        Defenses.Defense.apply ~seed:3L (Defenses.Defense.Smokestack config) prog
      in
      let ok = ref 0 in
      let n = 8 in
      for i = 0 to n - 1 do
        match
          Apps.Librelp.attack_probe_then_exploit applied
            ~seed:(Int64.of_int (80 + i))
        with
        | Attacks.Verdict.Success -> incr ok
        | _ -> ()
      done;
      pf "  redraw every %-3d %d/%d" interval !ok n)
    [ 1; 8; 64 ]
