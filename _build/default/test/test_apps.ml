(* Tests for the vulnerable app models and workloads: benign behaviour
   under every defense, and the attack expectations of §II-C / §V-C. *)

let smokestack = Defenses.Defense.Smokestack Smokestack.Config.default

let success_rate attack applied ~n ~seed0 =
  let ok = ref 0 in
  for i = 0 to n - 1 do
    match attack applied ~seed:(Int64.of_int (seed0 + (997 * i))) with
    | Attacks.Verdict.Success -> incr ok
    | _ -> ()
  done;
  float_of_int !ok /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Synthetic variants *)

let test_synth_benign_under_every_defense () =
  List.iter
    (fun (v : Apps.Synth.variant) ->
      let prog = Lazy.force v.program in
      List.iter
        (fun d ->
          let applied = Defenses.Defense.apply ~seed:3L d prog in
          let outcome, stats = Apps.Runner.run_chunks applied ~seed:1L ~chunks:[] in
          Alcotest.(check bool)
            (v.vname ^ " under " ^ Defenses.Defense.name d)
            true
            (outcome = Machine.Exec.Exit 0L
            && stats.output = Apps.Synth.benign_output))
        (Defenses.Defense.all ()))
    Apps.Synth.variants

let test_synth_attacks_succeed_undefended () =
  List.iter
    (fun (v : Apps.Synth.variant) ->
      let applied =
        Defenses.Defense.apply Defenses.Defense.No_defense (Lazy.force v.program)
      in
      match v.attack applied ~seed:7L with
      | Attacks.Verdict.Success -> ()
      | verdict ->
          Alcotest.failf "%s undefended: %s" v.vname
            (Attacks.Verdict.to_string verdict))
    Apps.Synth.variants

let test_synth_attacks_mostly_blocked_by_smokestack () =
  List.iter
    (fun (v : Apps.Synth.variant) ->
      let applied =
        Defenses.Defense.apply ~seed:3L smokestack (Lazy.force v.program)
      in
      let rate = success_rate v.attack applied ~n:15 ~seed0:100 in
      Alcotest.(check bool)
        (Printf.sprintf "%s rate %.2f < 0.35" v.vname rate)
        true (rate < 0.35))
    Apps.Synth.variants

let test_synth_direct_attacks_beat_stack_base () =
  (* relative-distance attacks go through ASLR-style defenses *)
  List.iter
    (fun name ->
      let v = Option.get (Apps.Synth.find name) in
      let applied =
        Defenses.Defense.apply ~seed:3L Defenses.Defense.Stack_base
          (Lazy.force v.program)
      in
      match v.attack applied ~seed:7L with
      | Attacks.Verdict.Success -> ()
      | verdict -> Alcotest.failf "%s: %s" name (Attacks.Verdict.to_string verdict))
    [ "stack-direct"; "data-direct"; "heap-direct" ]

let test_synth_indirect_attacks_blocked_by_stack_base () =
  (* absolute-address attacks are the ones ASLR does stop (sans leak) *)
  List.iter
    (fun name ->
      let v = Option.get (Apps.Synth.find name) in
      let applied =
        Defenses.Defense.apply ~seed:3L Defenses.Defense.Stack_base
          (Lazy.force v.program)
      in
      match v.attack applied ~seed:7L with
      | Attacks.Verdict.Success -> Alcotest.failf "%s should be blocked" name
      | _ -> ())
    [ "data-indirect"; "heap-indirect" ]

let test_stack_direct_is_a_dop_chain () =
  (* the stack-direct exploit really is ~22 chained gadget invocations:
     all of them are needed *)
  let v = Option.get (Apps.Synth.find "stack-direct") in
  let prog = Lazy.force v.program in
  let applied = Defenses.Defense.apply Defenses.Defense.No_defense prog in
  (* sanity: attack works, then a truncated chain must not *)
  (match v.attack applied ~seed:7L with
  | Attacks.Verdict.Success -> ()
  | verdict -> Alcotest.failf "full chain: %s" (Attacks.Verdict.to_string verdict));
  let vr0 = List.assoc "vr0" (Attacks.Layout.global_addrs applied.prog) in
  Alcotest.(check bool) "virtual register file is in the data segment" true
    (vr0 >= 0x200000 && vr0 < 0x400000)

(* ------------------------------------------------------------------ *)
(* librelp *)

let test_librelp_benign () =
  let applied =
    Defenses.Defense.apply Defenses.Defense.No_defense (Lazy.force Apps.Librelp.program)
  in
  let outcome, stats =
    Apps.Runner.run_chunks applied ~seed:1L ~chunks:Apps.Librelp.benign_chunks
  in
  Alcotest.(check bool) "exits" true (outcome = Machine.Exec.Exit 0L);
  Alcotest.(check bool) "does NOT leak the key" false
    (Apps.Dopkit.goal_in_output Apps.Librelp.key_leak_marker stats)

let test_librelp_attack_matrix () =
  let prog = Lazy.force Apps.Librelp.program in
  List.iter
    (fun (d, expect_static) ->
      let applied = Defenses.Defense.apply ~seed:3L d prog in
      let got =
        match Apps.Librelp.attack_static applied ~seed:7L with
        | Attacks.Verdict.Success -> true
        | _ -> false
      in
      Alcotest.(check bool)
        ("static attack vs " ^ Defenses.Defense.name d)
        expect_static got)
    [
      (Defenses.Defense.No_defense, true);
      (Defenses.Defense.Stack_base, true);
      (Defenses.Defense.Forrest_pad, true);
      (Defenses.Defense.Canary, true);
      (* non-linear jump over the guard *)
    ]

let test_librelp_disclosure_beats_static_defenses_not_smokestack () =
  let prog = Lazy.force Apps.Librelp.program in
  let ok d seed =
    let applied = Defenses.Defense.apply ~seed:3L d prog in
    match Apps.Librelp.attack_disclosure applied ~seed with
    | Attacks.Verdict.Success -> true
    | _ -> false
  in
  Alcotest.(check bool) "beats stack-base" true (ok Defenses.Defense.Stack_base 9L);
  Alcotest.(check bool) "beats forrest" true (ok Defenses.Defense.Forrest_pad 9L);
  let applied = Defenses.Defense.apply ~seed:3L smokestack prog in
  let rate = success_rate Apps.Librelp.attack_disclosure applied ~n:20 ~seed0:500 in
  Alcotest.(check bool)
    (Printf.sprintf "smokestack disclosure rate %.2f small" rate)
    true (rate < 0.25)

let test_librelp_state_disclosure_breaks_pseudo_only () =
  (* Table I's security column, executed: the prediction attack is
     deterministic against the pseudo scheme and powerless otherwise *)
  let prog = Lazy.force Apps.Librelp.program in
  let rate scheme =
    let config = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
    let applied =
      Defenses.Defense.apply ~seed:3L (Defenses.Defense.Smokestack config) prog
    in
    success_rate Apps.Librelp.attack_pseudo_state applied ~n:16 ~seed0:4000
  in
  (* the prediction is exact; the residue is exploit physics — some
     drawn layouts put the target beyond the single snprintf jump, and
     the dispatcher grants only four invocations per run (~94%) *)
  let p = rate Rng.Scheme.Pseudo in
  Alcotest.(check bool)
    (Printf.sprintf "pseudo falls almost every run (%.2f)" p)
    true (p >= 0.75);
  Alcotest.(check (float 0.001)) "AES-10 unpredictable" 0.0
    (rate Rng.Scheme.aes10);
  Alcotest.(check (float 0.001)) "RDRAND unpredictable" 0.0
    (rate Rng.Scheme.Rdrand)

let test_probe_then_exploit_needs_a_window () =
  let prog = Lazy.force Apps.Librelp.program in
  let rate interval =
    let config = { Smokestack.Config.default with redraw_interval = interval } in
    let applied =
      Defenses.Defense.apply ~seed:3L (Defenses.Defense.Smokestack config) prog
    in
    success_rate Apps.Librelp.attack_probe_then_exploit applied ~n:12 ~seed0:6000
  in
  let per_invocation = rate 1 in
  let windowed = rate 64 in
  Alcotest.(check bool)
    (Printf.sprintf "per-invocation stays low (%.2f)" per_invocation)
    true (per_invocation <= 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "a 64-request window re-opens the attack (%.2f > %.2f)"
       windowed per_invocation)
    true
    (windowed > per_invocation +. 0.1)

let test_librelp_smokestack_brute_rate_low () =
  let prog = Lazy.force Apps.Librelp.program in
  let applied = Defenses.Defense.apply ~seed:3L smokestack prog in
  let rate = success_rate Apps.Librelp.attack_static applied ~n:40 ~seed0:900 in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.2f < 0.2" rate)
    true (rate < 0.2)

(* ------------------------------------------------------------------ *)
(* wireshark + proftpd *)

let test_wireshark_matrix () =
  let prog = Lazy.force Apps.Wireshark.program in
  let applied0 = Defenses.Defense.apply Defenses.Defense.No_defense prog in
  let outcome, stats =
    Apps.Runner.run_chunks applied0 ~seed:1L ~chunks:Apps.Wireshark.benign_chunks
  in
  Alcotest.(check bool) "benign" true
    (outcome = Machine.Exec.Exit 0L
    && not (Apps.Dopkit.goal_in_output Apps.Wireshark.granted stats));
  (match Apps.Wireshark.attack applied0 ~seed:7L with
  | Attacks.Verdict.Success -> ()
  | v -> Alcotest.failf "undefended: %s" (Attacks.Verdict.to_string v));
  let hardened = Defenses.Defense.apply ~seed:3L smokestack prog in
  let rate = success_rate Apps.Wireshark.attack hardened ~n:15 ~seed0:300 in
  Alcotest.(check bool) (Printf.sprintf "rate %.2f < 0.2" rate) true (rate < 0.2)

let test_proftpd_three_exploits () =
  let prog = Lazy.force Apps.Proftpd.program in
  let applied0 = Defenses.Defense.apply Defenses.Defense.No_defense prog in
  let outcome, stats =
    Apps.Runner.run_chunks applied0 ~seed:1L ~chunks:Apps.Proftpd.benign_chunks
  in
  Alcotest.(check bool) "benign says bye" true
    (outcome = Machine.Exec.Exit 0L && stats.output = "bye\n");
  List.iter
    (fun (name, attack) ->
      (match attack applied0 ~seed:7L with
      | Attacks.Verdict.Success -> ()
      | v -> Alcotest.failf "%s undefended: %s" name (Attacks.Verdict.to_string v));
      let hardened = Defenses.Defense.apply ~seed:3L smokestack prog in
      let rate = success_rate attack hardened ~n:10 ~seed0:700 in
      Alcotest.(check bool)
        (Printf.sprintf "%s rate %.2f < 0.2" name rate)
        true (rate < 0.2))
    [
      ("key-extraction", Apps.Proftpd.attack_key_extraction);
      ("bot", Apps.Proftpd.attack_bot);
      ("mem-permissions", Apps.Proftpd.attack_memperm);
    ]

let test_proftpd_detection_dominates () =
  (* the paper: Smokestack *detected* the ProFTPD attacks (FID) *)
  let prog = Lazy.force Apps.Proftpd.program in
  let hardened = Defenses.Defense.apply ~seed:3L smokestack prog in
  let detected = ref 0 in
  let n = 12 in
  for i = 0 to n - 1 do
    match
      Apps.Proftpd.attack_memperm hardened ~seed:(Int64.of_int (100 + (31 * i)))
    with
    | Attacks.Verdict.Detected _ -> incr detected
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "detections %d/%d > 1/3" !detected n)
    true
    (!detected * 3 > n)

(* ------------------------------------------------------------------ *)
(* Optimization must not change the security story *)

let test_optimized_builds_keep_the_security_story () =
  (* the -O1 pipeline may not delete the vulnerable copies (they flow
     through builtins) — an optimized librelp is exactly as exploitable
     undefended and as protected hardened *)
  let prog = Minic.Driver.compile ~optimize:true Apps.Librelp.source in
  let applied0 = Defenses.Defense.apply Defenses.Defense.No_defense prog in
  (match Apps.Librelp.attack_static applied0 ~seed:7L with
  | Attacks.Verdict.Success -> ()
  | v -> Alcotest.failf "-O1 undefended: %s" (Attacks.Verdict.to_string v));
  let hardened = Defenses.Defense.apply ~seed:3L smokestack prog in
  let rate = success_rate Apps.Librelp.attack_static hardened ~n:15 ~seed0:8000 in
  Alcotest.(check bool)
    (Printf.sprintf "-O1 hardened rate %.2f < 0.25" rate)
    true (rate < 0.25);
  (* benign behaviour preserved at -O1 under hardening, too *)
  let outcome, stats =
    Apps.Runner.run_chunks hardened ~seed:1L ~chunks:Apps.Librelp.benign_chunks
  in
  Alcotest.(check bool) "benign -O1 hardened" true
    (outcome = Machine.Exec.Exit 0L
    && not (Apps.Dopkit.goal_in_output Apps.Librelp.key_leak_marker stats))

(* ------------------------------------------------------------------ *)
(* Workloads *)

let test_workloads_run_and_are_deterministic () =
  List.iter
    (fun (w : Apps.Spec.workload) ->
      let s1 = Harness.Workbench.baseline w in
      let applied =
        Defenses.Defense.apply Defenses.Defense.No_defense (Lazy.force w.program)
      in
      let _, s2 = Harness.Workbench.run applied ~seed:99L w in
      Alcotest.(check string) (w.wname ^ " deterministic") s1.output s2.output;
      Alcotest.(check bool) (w.wname ^ " does real work") true (s1.cycles > 100_000.))
    Apps.Spec.all

let test_workload_count_and_kinds () =
  Alcotest.(check int) "12 SPEC-like kernels" 12 (List.length Apps.Spec.spec);
  Alcotest.(check int) "2 I/O apps" 2 (List.length Apps.Spec.io)

let () =
  Alcotest.run "apps"
    [
      ( "synth",
        [
          Alcotest.test_case "benign under every defense" `Quick
            test_synth_benign_under_every_defense;
          Alcotest.test_case "succeed undefended" `Quick
            test_synth_attacks_succeed_undefended;
          Alcotest.test_case "blocked by smokestack" `Quick
            test_synth_attacks_mostly_blocked_by_smokestack;
          Alcotest.test_case "direct beats stack-base" `Quick
            test_synth_direct_attacks_beat_stack_base;
          Alcotest.test_case "indirect blocked by stack-base" `Quick
            test_synth_indirect_attacks_blocked_by_stack_base;
          Alcotest.test_case "stack-direct is a chain" `Quick
            test_stack_direct_is_a_dop_chain;
        ] );
      ( "librelp",
        [
          Alcotest.test_case "benign" `Quick test_librelp_benign;
          Alcotest.test_case "attack matrix" `Quick test_librelp_attack_matrix;
          Alcotest.test_case "disclosure" `Quick
            test_librelp_disclosure_beats_static_defenses_not_smokestack;
          Alcotest.test_case "smokestack brute rate" `Quick
            test_librelp_smokestack_brute_rate_low;
          Alcotest.test_case "state disclosure breaks pseudo only" `Quick
            test_librelp_state_disclosure_breaks_pseudo_only;
          Alcotest.test_case "probe-then-exploit needs a window" `Quick
            test_probe_then_exploit_needs_a_window;
        ] );
      ( "wireshark+proftpd",
        [
          Alcotest.test_case "wireshark matrix" `Quick test_wireshark_matrix;
          Alcotest.test_case "proftpd exploits" `Quick test_proftpd_three_exploits;
          Alcotest.test_case "proftpd detection" `Quick test_proftpd_detection_dominates;
        ] );
      ( "optimized",
        [
          Alcotest.test_case "security story survives -O1" `Quick
            test_optimized_builds_keep_the_security_story;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "run deterministically" `Slow
            test_workloads_run_and_are_deterministic;
          Alcotest.test_case "inventory" `Quick test_workload_count_and_kinds;
        ] );
    ]
