(* Differential testing: for randomly generated MiniC programs, the
   baseline build, the -O1 build, every baseline defense and the
   Smokestack-hardened builds must all behave identically.  The
   interpreter is the oracle; any divergence is a bug in the optimizer,
   a defense pass, or the Smokestack instrumentation. *)

let run_prog prog =
  let st = Machine.Exec.prepare prog in
  let outcome, stats = Machine.Exec.run ~fuel:50_000_000 st in
  (outcome, stats.output)

let run_applied (applied : Defenses.Defense.applied) seed =
  let st = applied.fresh_state (Crypto.Entropy.create ~seed) in
  let outcome, stats = Machine.Exec.run ~fuel:50_000_000 st in
  (outcome, stats.output)

let check_seed seed =
  let src = Minic.Progen.generate ~seed in
  let fail stage what =
    QCheck2.Test.fail_reportf "seed %Ld, %s: %s@.--- program ---@.%s" seed stage
      what src
  in
  let prog = Minic.Driver.compile src in
  let outcome, expected = run_prog prog in
  (match outcome with
  | Machine.Exec.Exit 0L -> ()
  | o -> fail "baseline" (Machine.Exec.outcome_to_string o));
  (* -O1 *)
  let opt = Minic.Driver.compile ~optimize:true src in
  let o_outcome, o_out = run_prog opt in
  if o_outcome <> Machine.Exec.Exit 0L then
    fail "-O1" (Machine.Exec.outcome_to_string o_outcome);
  if o_out <> expected then
    fail "-O1" (Printf.sprintf "output %S, baseline %S" o_out expected);
  (* defenses, on both the -O0 and -O1 programs *)
  List.iter
    (fun base_prog ->
      List.iter
        (fun d ->
          let applied = Defenses.Defense.apply ~seed d base_prog in
          let d_outcome, d_out = run_applied applied (Int64.add seed 17L) in
          if d_outcome <> Machine.Exec.Exit 0L then
            fail (Defenses.Defense.name d)
              (Machine.Exec.outcome_to_string d_outcome);
          if d_out <> expected then
            fail (Defenses.Defense.name d)
              (Printf.sprintf "output %S, baseline %S" d_out expected))
        (Defenses.Defense.all ()
        @ [
            Defenses.Defense.Smokestack
              (Smokestack.Config.with_scheme Rng.Scheme.Pseudo
                 Smokestack.Config.default);
            Defenses.Defense.Smokestack
              {
                Smokestack.Config.default with
                pow2_pbox = false;
                round_up_allocs = false;
              };
          ]))
    [ prog; opt ];
  true

let prop_differential =
  QCheck2.Test.make ~count:60 ~name:"all builds of a random program agree"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun n -> check_seed (Int64.of_int n))

let test_generator_wellformed () =
  (* every generated program compiles and runs clean on its own *)
  List.iteri
    (fun i src ->
      match Minic.Driver.compile_result src with
      | Error e -> Alcotest.failf "program %d does not compile: %s\n%s" i e src
      | Ok prog -> (
          match run_prog prog with
          | Machine.Exec.Exit 0L, _ -> ()
          | o, _ ->
              Alcotest.failf "program %d: %s\n%s" i
                (Machine.Exec.outcome_to_string o) src))
    (Minic.Progen.generate_many ~seed:424242L 40)

let test_generator_deterministic () =
  Alcotest.(check string)
    "same seed, same program"
    (Minic.Progen.generate ~seed:7L)
    (Minic.Progen.generate ~seed:7L);
  Alcotest.(check bool)
    "different seeds differ" true
    (Minic.Progen.generate ~seed:7L <> Minic.Progen.generate ~seed:8L)

let () =
  Alcotest.run "differential"
    [
      ( "progen",
        [
          Alcotest.test_case "well-formed" `Quick test_generator_wellformed;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest ~long:false prop_differential ] );
    ]
