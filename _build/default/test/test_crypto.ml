(* Known-answer and property tests for the crypto substrate. *)

let hex s =
  String.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let hex_of s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

(* ------------------------------------------------------------------ *)
(* AES known-answer tests *)

let test_sbox () =
  (* spot values from the FIPS-197 S-box table *)
  Alcotest.(check int) "S(0x00)" 0x63 (Crypto.Aes.sbox 0x00);
  Alcotest.(check int) "S(0x01)" 0x7c (Crypto.Aes.sbox 0x01);
  Alcotest.(check int) "S(0x53)" 0xed (Crypto.Aes.sbox 0x53);
  Alcotest.(check int) "S(0xff)" 0x16 (Crypto.Aes.sbox 0xff);
  Alcotest.(check int) "S(0x10)" 0xca (Crypto.Aes.sbox 0x10)

let test_sbox_bijective () =
  let seen = Array.make 256 false in
  for x = 0 to 255 do
    seen.(Crypto.Aes.sbox x) <- true
  done;
  Alcotest.(check bool) "S-box is a bijection" true
    (Array.for_all Fun.id seen)

let test_fips197_appendix_b () =
  let key = Crypto.Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Crypto.Aes.encrypt_block key (hex "3243f6a8885a308d313198a2e0370734") in
  Alcotest.(check string) "FIPS-197 B" "3925841d02dc09fbdc118597196a0b32" (hex_of ct)

let test_fips197_appendix_c () =
  let key = Crypto.Aes.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Crypto.Aes.encrypt_block key (hex "00112233445566778899aabbccddeeff") in
  Alcotest.(check string) "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (hex_of ct)

let test_nist_ecb_vector () =
  (* NIST SP 800-38A F.1.1 ECB-AES128 block #1 *)
  let key = Crypto.Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Crypto.Aes.encrypt_block key (hex "6bc1bee22e409f96e93d7e117393172a") in
  Alcotest.(check string) "SP800-38A" "3ad77bb40d7a3660a89ecaf32466ef97" (hex_of ct)

let test_reduced_rounds_differ () =
  let key = Crypto.Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let block = hex "3243f6a8885a308d313198a2e0370734" in
  let outs =
    List.map (fun rounds -> Crypto.Aes.encrypt_block ~rounds key block)
      [ 1; 2; 5; 9; 10 ]
  in
  Alcotest.(check int) "all distinct" 5 (List.length (List.sort_uniq compare outs))

let test_bad_args () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Crypto.Aes.expand_key: key must be 16 bytes") (fun () ->
      ignore (Crypto.Aes.expand_key "short"));
  let key = Crypto.Aes.expand_key (String.make 16 'k') in
  Alcotest.check_raises "short block"
    (Invalid_argument "Crypto.Aes.encrypt_block: block must be 16 bytes")
    (fun () -> ignore (Crypto.Aes.encrypt_block key "x"));
  Alcotest.check_raises "rounds 0"
    (Invalid_argument "Crypto.Aes.encrypt_block: rounds must be in [1, 10]")
    (fun () -> ignore (Crypto.Aes.encrypt_block ~rounds:0 key (String.make 16 'b')))

let prop_aes_injective_per_key =
  QCheck2.Test.make ~count:100 ~name:"distinct blocks encrypt distinctly"
    QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
    (fun (b1, b2) ->
      let key = Crypto.Aes.expand_key "0123456789abcdef" in
      b1 = b2
      || Crypto.Aes.encrypt_block key b1 <> Crypto.Aes.encrypt_block key b2)

(* ------------------------------------------------------------------ *)
(* CTR mode *)

let fixed_entropy seed =
  let e = Crypto.Entropy.create ~seed in
  Crypto.Entropy.bytes e

let test_ctr_deterministic () =
  let a = Crypto.Ctr.create ~entropy:(fixed_entropy 1L) () in
  let b = Crypto.Ctr.create ~entropy:(fixed_entropy 1L) () in
  for _ = 1 to 64 do
    Alcotest.(check int64) "same stream" (Crypto.Ctr.next_u64 a)
      (Crypto.Ctr.next_u64 b)
  done

let test_ctr_distinct_keys () =
  let a = Crypto.Ctr.create ~entropy:(fixed_entropy 1L) () in
  let b = Crypto.Ctr.create ~entropy:(fixed_entropy 2L) () in
  Alcotest.(check bool) "different keys, different streams" true
    (Crypto.Ctr.next_u64 a <> Crypto.Ctr.next_u64 b)

let test_ctr_rekey () =
  let ctr = Crypto.Ctr.create ~rekey_interval:8 ~entropy:(fixed_entropy 3L) () in
  for _ = 1 to 40 do
    ignore (Crypto.Ctr.next_block ctr)
  done;
  Alcotest.(check int) "blocks" 40 (Crypto.Ctr.blocks_generated ctr);
  Alcotest.(check int) "rekeys" 4 (Crypto.Ctr.rekeys ctr)

let test_ctr_rounds_matter () =
  let a = Crypto.Ctr.create ~rounds:1 ~entropy:(fixed_entropy 1L) () in
  let b = Crypto.Ctr.create ~rounds:10 ~entropy:(fixed_entropy 1L) () in
  Alcotest.(check bool) "1 vs 10 rounds differ" true
    (Crypto.Ctr.next_u64 a <> Crypto.Ctr.next_u64 b)

let prop_ctr_no_short_cycles =
  QCheck2.Test.make ~count:20 ~name:"no repeated u64 in 512 draws"
    QCheck2.Gen.int64
    (fun seed ->
      let ctr = Crypto.Ctr.create ~entropy:(fixed_entropy seed) () in
      let seen = Hashtbl.create 512 in
      let ok = ref true in
      for _ = 1 to 512 do
        let v = Crypto.Ctr.next_u64 ctr in
        if Hashtbl.mem seen v then ok := false;
        Hashtbl.replace seen v ()
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Entropy *)

let test_entropy_deterministic_per_seed () =
  let a = Crypto.Entropy.create ~seed:5L and b = Crypto.Entropy.create ~seed:5L in
  Alcotest.(check string) "same bytes" (Crypto.Entropy.bytes a 33)
    (Crypto.Entropy.bytes b 33);
  let c = Crypto.Entropy.create ~seed:6L
  and d = Crypto.Entropy.create ~seed:5L in
  Alcotest.(check bool) "different seed differs" true
    (Crypto.Entropy.bytes c 33 <> Crypto.Entropy.bytes d 33)

let test_entropy_draw_count () =
  let e = Crypto.Entropy.create ~seed:1L in
  ignore (Crypto.Entropy.bytes e 17);
  Alcotest.(check int) "17 bytes = 3 draws" 3 (Crypto.Entropy.draws e)

(* ------------------------------------------------------------------ *)
(* Rng schemes *)

let prop_pseudo_unstep =
  QCheck2.Test.make ~count:300 ~name:"unstep inverts step" QCheck2.Gen.int64
    (fun s ->
      let s = if Int64.equal s 0L then 1L else s in
      Int64.equal (Rng.Pseudo.unstep (Rng.Pseudo.step s)) s
      && Int64.equal (Rng.Pseudo.step (Rng.Pseudo.unstep s)) s)

let test_scheme_metadata () =
  Alcotest.(check (list string)) "Table I order"
    [ "pseudo"; "AES-1"; "AES-10"; "RDRAND" ]
    (List.map Rng.Scheme.name Rng.Scheme.all);
  Alcotest.(check bool) "pseudo state in memory" true
    (Rng.Scheme.memory_resident_state Rng.Scheme.Pseudo);
  Alcotest.(check bool) "AES state out of memory" false
    (Rng.Scheme.memory_resident_state Rng.Scheme.aes10);
  List.iter
    (fun (n, sec) ->
      match Rng.Scheme.of_name n with
      | Some s ->
          Alcotest.(check string) n sec
            (Rng.Scheme.security_to_string (Rng.Scheme.security s))
      | None -> Alcotest.failf "of_name %s" n)
    [ ("pseudo", "None"); ("AES-1", "Low"); ("AES-10", "High"); ("RDRAND", "High") ]

let test_generator_streams () =
  let e = Crypto.Entropy.create ~seed:3L in
  let g = Rng.Generator.create ~seed_state:99L Rng.Scheme.Pseudo ~entropy:e in
  (* the pseudo stream is exactly step/output over the state word *)
  let s1 = Rng.Pseudo.step 99L in
  Alcotest.(check int64) "pseudo draw 1" (Rng.Pseudo.output s1) (Rng.Generator.next_u64 g);
  Alcotest.(check int64) "pseudo state tracked" s1 (Rng.Generator.pseudo_state g);
  Rng.Generator.set_pseudo_state g 99L;
  Alcotest.(check int64) "attacker reset replays" (Rng.Pseudo.output s1)
    (Rng.Generator.next_u64 g)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "crypto"
    [
      ( "aes",
        [
          Alcotest.test_case "sbox values" `Quick test_sbox;
          Alcotest.test_case "sbox bijective" `Quick test_sbox_bijective;
          Alcotest.test_case "FIPS-197 appendix B" `Quick test_fips197_appendix_b;
          Alcotest.test_case "FIPS-197 appendix C" `Quick test_fips197_appendix_c;
          Alcotest.test_case "SP800-38A ECB" `Quick test_nist_ecb_vector;
          Alcotest.test_case "reduced rounds differ" `Quick test_reduced_rounds_differ;
          Alcotest.test_case "argument checks" `Quick test_bad_args;
          qt prop_aes_injective_per_key;
        ] );
      ( "ctr",
        [
          Alcotest.test_case "deterministic" `Quick test_ctr_deterministic;
          Alcotest.test_case "distinct keys" `Quick test_ctr_distinct_keys;
          Alcotest.test_case "rekey" `Quick test_ctr_rekey;
          Alcotest.test_case "rounds matter" `Quick test_ctr_rounds_matter;
          qt prop_ctr_no_short_cycles;
        ] );
      ( "rng",
        [
          Alcotest.test_case "scheme metadata" `Quick test_scheme_metadata;
          Alcotest.test_case "generator streams" `Quick test_generator_streams;
          qt prop_pseudo_unstep;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_entropy_deterministic_per_seed;
          Alcotest.test_case "draw accounting" `Quick test_entropy_draw_count;
        ] );
    ]
