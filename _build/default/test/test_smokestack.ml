(* Tests for the core contribution: Algorithm 1, the P-BOX with its
   optimizations, the instrumentation pass, and the runtime. *)

let qt = QCheck_alcotest.to_alcotest

(* meta generator: 1..6 slots with realistic sizes/alignments *)
let meta_gen =
  QCheck2.Gen.(
    let slot =
      oneof
        [
          return (8, 8); return (4, 4); return (2, 2); return (1, 1);
          map (fun n -> (n, 1)) (int_range 1 128);
        ]
    in
    map Array.of_list (list_size (int_range 1 5) slot))

(* ------------------------------------------------------------------ *)
(* Permgen (Algorithm 1) *)

let test_permgen_row_count_and_first_row () =
  let metas = [| (8, 8); (4, 4); (16, 1) |] in
  let table = Smokestack.Permgen.generate metas in
  Alcotest.(check int) "3! rows" 6 (Array.length table.offsets);
  (* row 0 (unshuffled) is the identity order: 8@0, 4@8, 16@12 *)
  Alcotest.(check (array int)) "identity layout" [| 0; 8; 12 |] table.offsets.(0)

let test_permgen_alignment_padding_entropy () =
  (* (1,1) before (8,8) forces 7 bytes of padding: totals differ *)
  let table = Smokestack.Permgen.generate [| (1, 1); (8, 8) |] in
  Alcotest.(check (array int)) "1 then 8" [| 0; 8 |] table.offsets.(0);
  Alcotest.(check (array int)) "8 then 1" [| 8; 0 |] table.offsets.(1);
  Alcotest.(check int) "padded total" 16 table.totals.(0);
  Alcotest.(check int) "tight total" 9 table.totals.(1);
  Alcotest.(check int) "max_total" 16 table.max_total

let prop_permgen_rows_valid =
  QCheck2.Test.make ~count:100 ~name:"every row is aligned and non-overlapping"
    meta_gen
    (fun metas ->
      let table = Smokestack.Permgen.generate metas in
      Array.for_all (Smokestack.Permgen.layout_valid metas) table.offsets)

let prop_permgen_matches_oracle =
  QCheck2.Test.make ~count:100 ~name:"generate agrees with row_for_index"
    meta_gen
    (fun metas ->
      let table = Smokestack.Permgen.generate metas in
      let rows = Array.length table.offsets in
      let ok = ref true in
      for p = 0 to rows - 1 do
        let offsets, total = Smokestack.Permgen.row_for_index metas p in
        if offsets <> table.offsets.(p) || total <> table.totals.(p) then
          ok := false
      done;
      !ok)

let prop_permgen_shuffle_is_permutation_of_rows =
  QCheck2.Test.make ~count:50 ~name:"shuffled table has the same row multiset"
    meta_gen
    (fun metas ->
      let plain = Smokestack.Permgen.generate metas in
      let rng = Sutil.Simrng.create ~seed:5L in
      let shuffled = Smokestack.Permgen.generate ~shuffle:rng metas in
      let sort t =
        List.sort compare (Array.to_list (Array.map Array.to_list t))
      in
      sort plain.offsets = sort shuffled.offsets)

let prop_permgen_total_bounds =
  QCheck2.Test.make ~count:100 ~name:"totals between sum and sum+padding"
    meta_gen
    (fun metas ->
      let table = Smokestack.Permgen.generate metas in
      let sum = Array.fold_left (fun a (s, _) -> a + s) 0 metas in
      let slack = Array.fold_left (fun a (_, al) -> a + al - 1) 0 metas in
      Array.for_all (fun t -> t >= sum && t <= sum + slack) table.totals)

(* ------------------------------------------------------------------ *)
(* P-BOX *)

let cfg = Smokestack.Config.default

let test_pbox_pow2_materialization () =
  let pbox = Smokestack.Pbox.build cfg [ ("f", [| (8, 8); (4, 4); (1, 1) |]) ] in
  let e = pbox.entries.(0) in
  Alcotest.(check int) "3! -> 8 rows" 8 e.rows_materialized;
  Alcotest.(check int) "blob = rows * stride"
    (8 * Smokestack.Pbox.row_stride e)
    (Smokestack.Pbox.blob_bytes pbox)

let test_pbox_exact_rows_without_pow2 () =
  let cfg = { cfg with Smokestack.Config.pow2_pbox = false } in
  let pbox = Smokestack.Pbox.build cfg [ ("f", [| (8, 8); (4, 4); (1, 1) |]) ] in
  Alcotest.(check int) "6 rows" 6 pbox.entries.(0).rows_materialized

let test_pbox_sharing_by_multiset () =
  (* paper §III-E: f1(int, double) shares with f2(double, int) *)
  let pbox =
    Smokestack.Pbox.build cfg
      [ ("f1", [| (4, 4); (8, 8) |]); ("f2", [| (8, 8); (4, 4) |]) ]
  in
  Alcotest.(check int) "one table" 1 (Array.length pbox.entries);
  Alcotest.(check (list string)) "both users" [ "f1"; "f2" ]
    (List.sort compare pbox.entries.(0).users)

let test_pbox_no_sharing_when_disabled () =
  let cfg = { cfg with Smokestack.Config.share_tables = false } in
  let pbox =
    Smokestack.Pbox.build cfg
      [ ("f1", [| (4, 4); (8, 8) |]); ("f2", [| (8, 8); (4, 4) |]) ]
  in
  Alcotest.(check int) "two tables" 2 (Array.length pbox.entries)

let test_pbox_rounding_up () =
  (* paper §III-E: f2(double,double) adopts f1(double,double,int)'s table *)
  let pbox =
    Smokestack.Pbox.build cfg
      [
        ("f1", [| (8, 8); (8, 8); (4, 4) |]); ("f2", [| (8, 8); (8, 8) |]);
      ]
  in
  Alcotest.(check int) "one table" 1 (Array.length pbox.entries);
  let b2 = Option.get (Smokestack.Pbox.binding pbox "f2") in
  (match b2.mode with
  | Smokestack.Pbox.Exhaustive { dummy_slots; _ } ->
      Alcotest.(check int) "dummy slot" 1 dummy_slots
  | _ -> Alcotest.fail "expected exhaustive binding");
  (* f2 pays the bigger frame *)
  Alcotest.(check bool) "f2 frame fits both" true
    (Smokestack.Pbox.max_total pbox b2 >= 20)

let test_pbox_dynamic_for_large_frames () =
  let metas = Array.init 9 (fun _ -> (8, 8)) in
  let pbox = Smokestack.Pbox.build cfg [ ("big", metas) ] in
  Alcotest.(check int) "no tables" 0 (Array.length pbox.entries);
  Alcotest.(check int) "one dynamic" 1 (Array.length pbox.dyns);
  let b = Option.get (Smokestack.Pbox.binding pbox "big") in
  Alcotest.(check bool) "dyn frame covers slots + scratch" true
    (Smokestack.Pbox.max_total pbox b >= (9 * 8) + 36)

let prop_pbox_lookup_rows_valid =
  QCheck2.Test.make ~count:60 ~name:"every materialized row decodes validly"
    meta_gen
    (fun metas ->
      let pbox = Smokestack.Pbox.build cfg [ ("f", metas) ] in
      match Smokestack.Pbox.binding pbox "f" with
      | None -> Array.length metas = 0
      | Some b ->
          let e = Option.get (Smokestack.Pbox.entry_of pbox b) in
          let ok = ref true in
          for row = 0 to e.rows_materialized - 1 do
            let offs = Smokestack.Pbox.lookup_offsets pbox b ~row in
            if not (Smokestack.Permgen.layout_valid metas offs) then ok := false
          done;
          !ok)

(* ------------------------------------------------------------------ *)
(* Instrumentation: behaviour preservation and layout variation *)

let sample_program =
  {|
long mix(long a) {
  char buf[24];
  long acc = 0;
  int i = 0;
  short tag = 7;
  strcpy(buf, "0123456789");
  while (i < 10) {
    acc = acc * 31 + buf[i] + a + tag;
    i += 1;
  }
  return acc;
}
int main() {
  long r = 0;
  long round = 0;
  while (round < 5) {
    r ^= mix(round);
    round += 1;
  }
  print_int(r);
  return 0;
}
|}

let run_hardened ?(config = Smokestack.Config.default) ~seed prog =
  let hardened = Smokestack.Harden.harden config prog in
  let st =
    Smokestack.Harden.prepare hardened ~entropy:(Crypto.Entropy.create ~seed)
  in
  Machine.Exec.run st

let test_behaviour_preserved_all_schemes () =
  let prog = Minic.Driver.compile sample_program in
  let base_st = Machine.Exec.prepare prog in
  let _, base = Machine.Exec.run base_st in
  List.iter
    (fun scheme ->
      let config = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
      let outcome, stats = run_hardened ~config ~seed:9L prog in
      (match outcome with
      | Machine.Exec.Exit 0L -> ()
      | o ->
          Alcotest.failf "%s: %s" (Rng.Scheme.name scheme)
            (Machine.Exec.outcome_to_string o));
      Alcotest.(check string)
        (Rng.Scheme.name scheme ^ " output")
        base.output stats.output)
    Rng.Scheme.all

let prop_behaviour_preserved_across_seeds =
  let prog = Minic.Driver.compile sample_program in
  let base =
    let st = Machine.Exec.prepare prog in
    (snd (Machine.Exec.run st)).output
  in
  QCheck2.Test.make ~count:40
    ~name:"hardened output equals baseline for every entropy seed"
    QCheck2.Gen.int64
    (fun seed ->
      let outcome, stats = run_hardened ~seed prog in
      outcome = Machine.Exec.Exit 0L && stats.output = base)

let test_all_opt_combos_preserve_behaviour () =
  let prog = Minic.Driver.compile sample_program in
  let base =
    let st = Machine.Exec.prepare prog in
    (snd (Machine.Exec.run st)).output
  in
  List.iter
    (fun (pow2, share, round_up, fid, vla) ->
      let config =
        {
          Smokestack.Config.default with
          pow2_pbox = pow2;
          share_tables = share;
          round_up_allocs = round_up;
          fid_checks = fid;
          vla_padding = vla;
        }
      in
      let outcome, stats = run_hardened ~config ~seed:4L prog in
      Alcotest.(check bool)
        (Printf.sprintf "combo %b %b %b %b %b" pow2 share round_up fid vla)
        true
        (outcome = Machine.Exec.Exit 0L && stats.output = base))
    [
      (false, false, false, false, false);
      (true, false, false, true, true);
      (false, true, true, true, false);
      (true, true, false, false, true);
    ]

let test_layouts_vary_across_invocations () =
  (* run the hardened sample and record the address of buf across calls
     via a leaked pointer: instead, check P-BOX draw variety through the
     public API *)
  let prog = Minic.Driver.compile sample_program in
  let hardened = Smokestack.Harden.harden Smokestack.Config.default prog in
  let b = Option.get (Smokestack.Pbox.binding hardened.pbox "mix") in
  let e = Option.get (Smokestack.Pbox.entry_of hardened.pbox b) in
  let distinct =
    List.sort_uniq compare
      (List.init e.rows_materialized (fun row ->
           Array.to_list (Smokestack.Pbox.lookup_offsets hardened.pbox b ~row)))
  in
  Alcotest.(check bool) "many distinct layouts" true (List.length distinct > 50)

let test_fid_detects_corruption () =
  (* a program that deliberately smashes its whole frame: with FID
     checks on, the epilogue must catch it *)
  let src =
    {|
void smash() {
  char buf[16];
  long x = 1;
  long i = 0;
  while (i < 200) { buf[i] = 90; i += 1; }
  x += buf[3];
}
int main() {
  char cushion[512];
  cushion[0] = 0;
  smash();
  return 0;
}
|}
  in
  let prog = Minic.Driver.compile src in
  let outcome, _ = run_hardened ~seed:2L prog in
  match outcome with
  | Machine.Exec.Detected { reason; _ } ->
      Alcotest.(check bool) "mentions identifier" true
        (String.length reason > 0)
  | o ->
      Alcotest.failf "expected FID detection, got %s"
        (Machine.Exec.outcome_to_string o)

let test_instrumented_ir_verifies_and_tags () =
  let prog = Minic.Driver.compile sample_program in
  let hardened = Smokestack.Harden.harden Smokestack.Config.default prog in
  Alcotest.(check (list string)) "verifies" []
    (List.map (Format.asprintf "%a" Ir.Verifier.pp_error)
       (Ir.Verifier.verify hardened.prog));
  Alcotest.(check (list string)) "both functions permuted" [ "main"; "mix" ]
    (List.sort compare (Smokestack.Harden.permuted_functions hardened));
  (* the input program is untouched *)
  Alcotest.(check (list string)) "original unhardened" []
    (List.filter_map
       (fun (f : Ir.Func.t) ->
         if Ir.Func.has_attr f Smokestack.Abi.smokestack_attr then Some f.name
         else None)
       prog.funcs)

let test_vla_program_hardened () =
  let src =
    {|
long sum_vla(long n) {
  long a[n];
  long i = 0;
  long s = 0;
  while (i < n) { a[i] = i; i += 1; }
  for (i = 0; i < n; i++) s += a[i];
  return s;
}
int main() { print_int(sum_vla(7)); return 0; }
|}
  in
  let prog = Minic.Driver.compile src in
  let outcome, stats = run_hardened ~seed:5L prog in
  Alcotest.(check bool) "runs" true (outcome = Machine.Exec.Exit 0L);
  Alcotest.(check string) "output" "21" stats.output

let test_pseudo_state_is_vm_resident_and_predictable () =
  (* the paper's reason to call `pseudo` unsafe: its generator state
     lives in attacker-readable memory, so the attacker can predict the
     next permutation index *)
  let prog = Minic.Driver.compile sample_program in
  let config =
    Smokestack.Config.with_scheme Rng.Scheme.Pseudo Smokestack.Config.default
  in
  let hardened = Smokestack.Harden.harden config prog in
  let st =
    Smokestack.Harden.prepare hardened ~entropy:(Crypto.Entropy.create ~seed:8L)
  in
  let addr = Machine.Exec.global_addr st Smokestack.Abi.prng_state_global in
  let state_word = Machine.Memory.load st.mem ~width:8 addr in
  (* predict: next draw = output (step state) *)
  let predicted = Rng.Pseudo.output (Rng.Pseudo.step state_word) in
  (* make one draw through the runtime *)
  let drawn = ref 0L in
  (match Hashtbl.find_opt st.intrinsics Smokestack.Abi.intr_rand with
  | Some fn -> drawn := Option.get (fn st [||])
  | None -> Alcotest.fail "ss.rand not installed");
  Alcotest.(check int64) "attacker prediction matches" predicted !drawn

let test_entropy_analysis () =
  (* distinct-size slots: every permutation is a distinct layout, so the
     whole-frame collision is exactly 1/n! *)
  let table = Smokestack.Permgen.generate [| (32, 1); (8, 8); (4, 4) |] in
  let t = Smokestack.Entropy_an.of_table table in
  Alcotest.(check int) "rows" 6 t.rows;
  Alcotest.(check int) "distinct" 6 t.distinct_layouts;
  Alcotest.(check (float 1e-9)) "1/6" (1. /. 6.) t.whole_frame_collision;
  Alcotest.(check (float 1e-9)) "expected attempts" 6. t.expected_bruteforce_attempts;
  (* two identical-shape slots still swap places (the attacker cares
     which VARIABLE sits where): 2 assignments, collision 1/2 *)
  let degenerate = Smokestack.Permgen.generate [| (8, 8); (8, 8) |] in
  let td = Smokestack.Entropy_an.of_table degenerate in
  Alcotest.(check int) "degenerate distinct" 2 td.distinct_layouts;
  Alcotest.(check (float 1e-9)) "degenerate collision" 0.5 td.whole_frame_collision;
  (* subset collision is at least the whole-frame collision and at most
     any single member's *)
  let sub = Smokestack.Entropy_an.subset_collision table ~slots:[ 0; 1 ] in
  let slot0 = (List.nth t.per_slot 0).collision_probability in
  Alcotest.(check bool) "bounds" true
    (sub >= t.whole_frame_collision -. 1e-9 && sub <= slot0 +. 1e-9)

let test_entropy_of_dynamic_binding () =
  let metas = Array.init 9 (fun i -> if i = 0 then (256, 1) else (8, 8)) in
  let pbox = Smokestack.Pbox.build cfg [ ("big", metas) ] in
  let b = Option.get (Smokestack.Pbox.binding pbox "big") in
  let t = Smokestack.Entropy_an.of_binding pbox b in
  Alcotest.(check int) "sampled" 4096 t.rows;
  Alcotest.(check bool) "rich layout space" true (t.distinct_layouts > 1000);
  Alcotest.(check bool) "buffer slot has many positions" true
    ((List.nth t.per_slot 0).distinct_offsets >= 8)

let test_vla_padding_randomizes_placement () =
  (* isolate the §III-D VLA defense: one static slot (no permutation
     freedom), FID off — any address variation must come from the
     random dummy alloca in front of the VLA *)
  let src =
    {|
long leak = 0;
void f(long n) {
  char v[n];
  leak = (long)v;
  v[0] = 1;
}
int main() { f(64); return 0; }
|}
  in
  let prog = Minic.Driver.compile src in
  let leak_addrs config seeds =
    List.sort_uniq compare
      (List.map
         (fun seed ->
           let hardened = Smokestack.Harden.harden config prog in
           let st =
             Smokestack.Harden.prepare hardened
               ~entropy:(Crypto.Entropy.create ~seed)
           in
           let outcome, _ = Machine.Exec.run st in
           Alcotest.(check bool) "runs" true (outcome = Machine.Exec.Exit 0L);
           Machine.Memory.load st.mem ~width:8
             (Machine.Exec.global_addr st "leak"))
         seeds)
  in
  let seeds = List.init 12 (fun i -> Int64.of_int (100 + i)) in
  let base = { Smokestack.Config.default with fid_checks = false } in
  let with_pad = leak_addrs { base with vla_padding = true } seeds in
  let without_pad = leak_addrs { base with vla_padding = false } seeds in
  Alcotest.(check bool) "padding varies the VLA address" true
    (List.length with_pad > 4);
  Alcotest.(check int) "no padding, fixed address" 1 (List.length without_pad)

let test_exclude_supports_gradual_migration () =
  (* §III-A: modular support — excluded functions keep their baseline
     frame and the mixed binary still behaves identically *)
  let prog = Minic.Driver.compile sample_program in
  let base =
    let st = Machine.Exec.prepare prog in
    (snd (Machine.Exec.run st)).output
  in
  let config = Smokestack.Config.with_exclude [ "mix" ] Smokestack.Config.default in
  let hardened = Smokestack.Harden.harden config prog in
  Alcotest.(check (list string)) "only main instrumented" [ "main" ]
    (Smokestack.Harden.permuted_functions hardened);
  (* the excluded function's allocas survive untouched, by name *)
  let mix = Option.get (Ir.Prog.find_func hardened.prog "mix") in
  let frame = Attacks.Layout.frame_of_func mix in
  Alcotest.(check bool) "buf still visible to binary analysis" true
    (Option.is_some (Attacks.Layout.var_offset frame "buf"));
  let st =
    Smokestack.Harden.prepare hardened ~entropy:(Crypto.Entropy.create ~seed:4L)
  in
  let outcome, stats = Machine.Exec.run st in
  Alcotest.(check bool) "mixed binary runs" true (outcome = Machine.Exec.Exit 0L);
  Alcotest.(check string) "same output" base stats.output

let test_builds_are_reproducible () =
  (* same program + same build seed -> bit-identical P-BOX and IR *)
  let prog = Minic.Driver.compile sample_program in
  let h1 = Smokestack.Harden.harden ~seed:9L Smokestack.Config.default prog in
  let h2 = Smokestack.Harden.harden ~seed:9L Smokestack.Config.default prog in
  Alcotest.(check string) "same blob" h1.pbox.blob h2.pbox.blob;
  Alcotest.(check string) "same IR"
    (Ir.Printer.prog_to_string h1.prog)
    (Ir.Printer.prog_to_string h2.prog);
  let h3 = Smokestack.Harden.harden ~seed:10L Smokestack.Config.default prog in
  Alcotest.(check bool) "different seed shuffles rows" true
    (h1.pbox.blob <> h3.pbox.blob)

let test_double_harden_rejected () =
  let prog = Minic.Driver.compile sample_program in
  let h = Smokestack.Harden.harden Smokestack.Config.default prog in
  match Smokestack.Harden.harden Smokestack.Config.default h.prog with
  | _ -> Alcotest.fail "expected rejection of double hardening"
  | exception Failure msg ->
      Alcotest.(check bool) "says why" true
        (String.length msg > 0)

let prop_pbox_round_up_mapping_sound =
  (* whenever a function adopts a bigger table, its slots map to
     distinct canonical columns with matching shapes *)
  QCheck2.Test.make ~count:60 ~name:"round-up bindings map shapes faithfully"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 4)
           (oneofl [ (8, 8); (4, 4); (2, 2); (16, 1) ]))
        (oneofl [ (8, 8); (4, 4); (2, 2) ]))
    (fun (small, extra) ->
      let small = Array.of_list small in
      let big = Array.append small [| extra |] in
      let pbox =
        Smokestack.Pbox.build Smokestack.Config.default
          [ ("big", big); ("small", small) ]
      in
      match Smokestack.Pbox.binding pbox "small" with
      | None -> false
      | Some b -> (
          match (b.mode, Smokestack.Pbox.entry_of pbox b) with
          | Smokestack.Pbox.Exhaustive { canon_of_orig; dummy_slots; _ }, Some e
            ->
              let distinct =
                List.length
                  (List.sort_uniq compare (Array.to_list canon_of_orig))
                = Array.length canon_of_orig
              in
              let shapes_match =
                Array.for_all2
                  (fun m col -> e.canon_meta.(col) = m)
                  small canon_of_orig
              in
              (* sharing requires both tables to be the same entry *)
              let shared = List.length e.users = 2 in
              distinct && shapes_match && (dummy_slots = 1) = shared
              || (* no adoption happened: small has its own exact table *)
              (dummy_slots = 0 && distinct && shapes_match)
          | _ -> false))

let test_config_validation () =
  (match Smokestack.Config.validate Smokestack.Config.default with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "default invalid: %s" e);
  (match
     Smokestack.Config.validate
       { Smokestack.Config.default with max_exhaustive_vars = 12 }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of huge tables");
  match
    Smokestack.Config.validate
      (Smokestack.Config.with_scheme
         (Rng.Scheme.Aes_ctr { rounds = 11 })
         Smokestack.Config.default)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of 11 AES rounds"

let () =
  Alcotest.run "smokestack"
    [
      ( "permgen",
        [
          Alcotest.test_case "row count + lexical first" `Quick
            test_permgen_row_count_and_first_row;
          Alcotest.test_case "alignment padding entropy" `Quick
            test_permgen_alignment_padding_entropy;
          qt prop_permgen_rows_valid;
          qt prop_permgen_matches_oracle;
          qt prop_permgen_shuffle_is_permutation_of_rows;
          qt prop_permgen_total_bounds;
        ] );
      ( "pbox",
        [
          Alcotest.test_case "pow2 materialization" `Quick test_pbox_pow2_materialization;
          Alcotest.test_case "exact rows without pow2" `Quick
            test_pbox_exact_rows_without_pow2;
          Alcotest.test_case "sharing by multiset" `Quick test_pbox_sharing_by_multiset;
          Alcotest.test_case "no sharing when disabled" `Quick
            test_pbox_no_sharing_when_disabled;
          Alcotest.test_case "rounding up" `Quick test_pbox_rounding_up;
          Alcotest.test_case "dynamic for large frames" `Quick
            test_pbox_dynamic_for_large_frames;
          qt prop_pbox_lookup_rows_valid;
        ] );
      ( "instrument+runtime",
        [
          Alcotest.test_case "behaviour preserved (schemes)" `Quick
            test_behaviour_preserved_all_schemes;
          Alcotest.test_case "behaviour preserved (opt combos)" `Quick
            test_all_opt_combos_preserve_behaviour;
          Alcotest.test_case "layouts vary" `Quick test_layouts_vary_across_invocations;
          Alcotest.test_case "FID detects corruption" `Quick test_fid_detects_corruption;
          Alcotest.test_case "IR verifies, attrs set" `Quick
            test_instrumented_ir_verifies_and_tags;
          Alcotest.test_case "VLA hardened" `Quick test_vla_program_hardened;
          Alcotest.test_case "pseudo state predictable" `Quick
            test_pseudo_state_is_vm_resident_and_predictable;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "entropy analysis" `Quick test_entropy_analysis;
          Alcotest.test_case "entropy of dynamic binding" `Quick
            test_entropy_of_dynamic_binding;
          Alcotest.test_case "VLA padding randomizes placement" `Quick
            test_vla_padding_randomizes_placement;
          Alcotest.test_case "exclude = gradual migration" `Quick
            test_exclude_supports_gradual_migration;
          Alcotest.test_case "reproducible builds" `Quick
            test_builds_are_reproducible;
          Alcotest.test_case "double harden rejected" `Quick
            test_double_harden_rejected;
          qt prop_pbox_round_up_mapping_sound;
          qt prop_behaviour_preserved_across_seeds;
        ] );
    ]
