(* Tests for the prior-work defense baselines. *)

let sample =
  {|
long work(long a) {
  char buf[32];
  long x = 1;
  long y = 2;
  strcpy(buf, "abcdef");
  return a + x + y + buf[2];
}
int main() { print_int(work(5)); return 0; }
|}

let compile () = Minic.Driver.compile sample

let run_applied (applied : Defenses.Defense.applied) seed =
  let st = applied.fresh_state (Crypto.Entropy.create ~seed) in
  Machine.Exec.run st

let baseline_output () =
  let st = Machine.Exec.prepare (compile ()) in
  (snd (Machine.Exec.run st)).output

let test_all_defenses_preserve_behaviour () =
  let prog = compile () in
  let expected = baseline_output () in
  List.iter
    (fun d ->
      let applied = Defenses.Defense.apply ~seed:11L d prog in
      let outcome, stats = run_applied applied 21L in
      Alcotest.(check bool)
        (Defenses.Defense.name d ^ " exits cleanly")
        true
        (outcome = Machine.Exec.Exit 0L);
      Alcotest.(check string) (Defenses.Defense.name d ^ " output") expected stats.output)
    (Defenses.Defense.all ())

let test_apply_does_not_mutate_input () =
  let prog = compile () in
  let before = Ir.Printer.prog_to_string prog in
  List.iter
    (fun d -> ignore (Defenses.Defense.apply ~seed:1L d prog))
    (Defenses.Defense.all ());
  Alcotest.(check string) "input untouched" before (Ir.Printer.prog_to_string prog)

(* ------------------------------------------------------------------ *)
(* Forrest padding *)

let frame_of prog name =
  Attacks.Layout.frame_of_func (Option.get (Ir.Prog.find_func prog name))

let test_forrest_pads_only_large_frames () =
  let prog = compile () in
  let applied = Defenses.Defense.apply ~seed:5L Defenses.Defense.Forrest_pad prog in
  (* work has a 32-byte buffer -> padded; main has only a long -> not *)
  let work = frame_of applied.prog "work" in
  let main = frame_of applied.prog "main" in
  Alcotest.(check bool) "work padded" true
    (Option.is_some (Attacks.Layout.var_offset work "__pad"));
  Alcotest.(check bool) "main not padded" false
    (Option.is_some (Attacks.Layout.var_offset main "__pad"))

let test_forrest_pad_sizes_legal () =
  (* across builds, pads come only from {8,16,...,64} *)
  let prog = compile () in
  let sizes = Hashtbl.create 8 in
  for seed = 0 to 40 do
    let applied =
      Defenses.Defense.apply ~seed:(Int64.of_int seed) Defenses.Defense.Forrest_pad prog
    in
    let f = Option.get (Ir.Prog.find_func applied.prog "work") in
    Ir.Func.iter_instrs f (fun i ->
        match i with
        | Ir.Instr.Alloca { ty; name = "__pad"; _ } ->
            Hashtbl.replace sizes (Ir.Ty.size ty) ()
        | _ -> ())
  done;
  Hashtbl.iter
    (fun size () ->
      Alcotest.(check bool)
        (Printf.sprintf "pad %d legal" size)
        true
        (Array.exists (Int.equal size) Defenses.Forrest.pad_choices))
    sizes;
  Alcotest.(check bool) "several sizes drawn" true (Hashtbl.length sizes >= 3)

(* ------------------------------------------------------------------ *)
(* Static permutation *)

let test_static_perm_changes_layout_per_build () =
  let prog = compile () in
  let layouts =
    List.init 10 (fun seed ->
        let applied =
          Defenses.Defense.apply ~seed:(Int64.of_int seed) Defenses.Defense.Static_perm
            prog
        in
        (frame_of applied.prog "work").vars)
  in
  Alcotest.(check bool) "multiple distinct layouts" true
    (List.length (List.sort_uniq compare layouts) > 3)

let test_static_perm_is_fixed_within_build () =
  let prog = compile () in
  let applied = Defenses.Defense.apply ~seed:7L Defenses.Defense.Static_perm prog in
  let l1 = (frame_of applied.prog "work").vars in
  (* two fresh states of the SAME build share the layout: run twice and
     compare live addresses of buf via the overflow-free probe *)
  let l2 = (frame_of applied.prog "work").vars in
  Alcotest.(check bool) "same layout" true (l1 = l2)

(* ------------------------------------------------------------------ *)
(* Canary *)

let test_canary_detects_linear_cross_frame_overflow () =
  let src =
    {|
void smash() {
  char buf[32];
  long i = 0;
  while (i < 120) { buf[i] = 65; i += 1; }
}
int main() {
  char cushion[256];
  cushion[0] = 0;
  smash();
  return 0;
}
|}
  in
  let prog = Minic.Driver.compile src in
  let applied = Defenses.Defense.apply Defenses.Defense.Canary prog in
  match run_applied applied 3L with
  | Machine.Exec.Detected { reason = "stack canary clobbered"; _ }, _ -> ()
  | o, _ -> Alcotest.failf "expected canary, got %s" (Machine.Exec.outcome_to_string o)

let test_canary_misses_short_stopping_overflow () =
  (* a DOP-style overflow that stays below the guard is invisible *)
  let src =
    {|
void smash() {
  long victim = 0;
  char buf[32];
  long i = 0;
  while (i < 36) { buf[i] = 65; i += 1; }
  if (victim != 0) print_str("corrupted-under-the-guard");
}
int main() { smash(); return 0; }
|}
  in
  let prog = Minic.Driver.compile src in
  let applied = Defenses.Defense.apply Defenses.Defense.Canary prog in
  let outcome, stats = run_applied applied 3L in
  Alcotest.(check bool) "no detection" true (outcome = Machine.Exec.Exit 0L);
  Alcotest.(check string) "victim corrupted silently" "corrupted-under-the-guard"
    stats.output

(* ------------------------------------------------------------------ *)
(* Stack base randomization *)

let test_stack_base_shifts_per_run () =
  let prog = compile () in
  let applied = Defenses.Defense.apply Defenses.Defense.Stack_base prog in
  let sp_of seed =
    let st = applied.fresh_state (Crypto.Entropy.create ~seed) in
    st.Machine.Exec.sp
  in
  let sps = List.init 12 (fun i -> sp_of (Int64.of_int i)) in
  Alcotest.(check bool) "several distinct bases" true
    (List.length (List.sort_uniq compare sps) > 6);
  List.iter
    (fun sp ->
      Alcotest.(check bool) "16-aligned" true (sp mod 16 = 0);
      Alcotest.(check bool) "within pad budget" true
        (Machine.Exec.default_stack_top - sp < Defenses.Stack_base.max_pad))
    sps

let test_stack_base_preserves_relative_layout () =
  (* the defining weakness: relative distances unchanged *)
  let src =
    {|
int main() {
  long a = 0;
  long b = 0;
  print_int((long)&a - (long)&b);
  return 0;
}
|}
  in
  let prog = Minic.Driver.compile src in
  let applied = Defenses.Defense.apply Defenses.Defense.Stack_base prog in
  let _, s1 = run_applied applied 1L in
  let _, s2 = run_applied applied 2L in
  Alcotest.(check string) "same relative distance" s1.output s2.output

let () =
  Alcotest.run "defenses"
    [
      ( "generic",
        [
          Alcotest.test_case "behaviour preserved" `Quick
            test_all_defenses_preserve_behaviour;
          Alcotest.test_case "input not mutated" `Quick test_apply_does_not_mutate_input;
        ] );
      ( "forrest",
        [
          Alcotest.test_case "pads large frames only" `Quick
            test_forrest_pads_only_large_frames;
          Alcotest.test_case "pad sizes legal" `Quick test_forrest_pad_sizes_legal;
        ] );
      ( "static-perm",
        [
          Alcotest.test_case "varies per build" `Quick
            test_static_perm_changes_layout_per_build;
          Alcotest.test_case "fixed within build" `Quick
            test_static_perm_is_fixed_within_build;
        ] );
      ( "canary",
        [
          Alcotest.test_case "detects linear overflow" `Quick
            test_canary_detects_linear_cross_frame_overflow;
          Alcotest.test_case "misses short-stopping overflow" `Quick
            test_canary_misses_short_stopping_overflow;
        ] );
      ( "stack-base",
        [
          Alcotest.test_case "shifts per run" `Quick test_stack_base_shifts_per_run;
          Alcotest.test_case "relative layout preserved" `Quick
            test_stack_base_preserves_relative_layout;
        ] );
    ]
