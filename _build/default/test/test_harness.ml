(* Tests for the experiment harness: the properties each paper artifact
   must exhibit, on reduced workload subsets to stay fast. *)

let subset names =
  List.filter_map Apps.Spec.find names

(* ------------------------------------------------------------------ *)
(* Table I *)

let test_randrate_matches_table1 () =
  let t = Harness.Randrate.run ~draws:20_000 () in
  List.iter
    (fun (r : Harness.Randrate.row) ->
      let paper =
        List.assoc (Rng.Scheme.name r.scheme) Harness.Randrate.paper_values
      in
      Alcotest.(check (float 0.5))
        (Rng.Scheme.name r.scheme)
        paper r.cycles_per_draw)
    t.rows

(* ------------------------------------------------------------------ *)
(* Figure 3 *)

let fig3 =
  lazy (Harness.Overhead.run ~workloads:(subset [ "gobmk"; "mcf"; "sjeng"; "wireshark-io" ]) ())

let test_overhead_scheme_ordering () =
  let t = Lazy.force fig3 in
  List.iter
    (fun (r : Harness.Overhead.row) ->
      let v s = List.assoc s r.by_scheme in
      let open Rng.Scheme in
      Alcotest.(check bool)
        (r.workload ^ ": RDRAND >= AES-10 >= AES-1 >= pseudo")
        true
        (v Rdrand >= v aes10 && v aes10 >= v aes1 && v aes1 >= v Pseudo))
    t.rows

let test_overhead_call_density_dominates () =
  let t = Lazy.force fig3 in
  let get name =
    List.find (fun (r : Harness.Overhead.row) -> r.workload = name) t.rows
  in
  let aes10 r = List.assoc Rng.Scheme.aes10 r.Harness.Overhead.by_scheme in
  Alcotest.(check bool) "gobmk (call-dense) >> mcf (loop-dominated)" true
    (aes10 (get "gobmk") > 10. *. Float.max 0.1 (aes10 (get "mcf")))

let test_overhead_io_modest () =
  let t = Lazy.force fig3 in
  let ws = List.find (fun (r : Harness.Overhead.row) -> r.kind = `Io) t.rows in
  Alcotest.(check bool) "I/O-bound app under 10%" true
    (List.for_all (fun (_, v) -> v < 10.) ws.by_scheme)

let test_overhead_full_set_matches_paper_bands () =
  (* the full Figure 3: means must land in the paper's neighbourhood *)
  let t = Harness.Overhead.run () in
  let mean s = List.assoc s t.spec_means in
  let open Rng.Scheme in
  Alcotest.(check bool)
    (Printf.sprintf "pseudo mean %.1f in [-1, 6]" (mean Pseudo))
    true
    (mean Pseudo >= -1. && mean Pseudo <= 6.);
  Alcotest.(check bool)
    (Printf.sprintf "AES-10 mean %.1f in [4, 15] (paper 10.3)" (mean aes10))
    true
    (mean aes10 >= 4. && mean aes10 <= 15.);
  Alcotest.(check bool)
    (Printf.sprintf "RDRAND mean %.1f in [10, 30] (paper ~22)" (mean Rdrand))
    true
    (mean Rdrand >= 10. && mean Rdrand <= 30.);
  (* at least one loop-dominated benchmark shows the paper's speedup *)
  Alcotest.(check bool) "some negative overhead exists under pseudo" true
    (List.exists
       (fun (r : Harness.Overhead.row) -> List.assoc Pseudo r.by_scheme < 0.)
       t.rows);
  Alcotest.(check bool)
    (Printf.sprintf "I/O worst %.1f <= 8 (paper 6)" t.io_worst)
    true (t.io_worst <= 8.)

(* ------------------------------------------------------------------ *)
(* Figure 4 *)

let test_memov_positive_and_pbox_driven () =
  let t =
    Harness.Memov.run ~workloads:(subset [ "h264ref"; "libquantum" ]) ()
  in
  List.iter
    (fun (r : Harness.Memov.row) ->
      Alcotest.(check bool) (r.workload ^ " overhead >= 0") true (r.overhead_pct >= 0.);
      Alcotest.(check bool) (r.workload ^ " hardened >= base") true
        (r.hardened_rss >= r.baseline_rss);
      Alcotest.(check bool) (r.workload ^ " has a P-BOX") true (r.pbox_bytes > 0))
    t.rows;
  (* the many-functions benchmark pays more *)
  let get n = List.find (fun (r : Harness.Memov.row) -> r.workload = n) t.rows in
  Alcotest.(check bool) "h264ref P-BOX > libquantum P-BOX" true
    ((get "h264ref").pbox_bytes > (get "libquantum").pbox_bytes)

(* ------------------------------------------------------------------ *)
(* Ablation *)

let test_ablation_tradeoffs () =
  let t = Harness.Ablation.run () in
  let get label =
    List.find (fun (r : Harness.Ablation.row) -> r.label = label) t.rows
  in
  let all = get "all optimizations" in
  let no_pow2 = get "no power-of-2 rows" in
  let no_share = get "neither sharing opt" in
  Alcotest.(check bool) "pow2 costs memory" true
    (all.total_pbox_bytes > no_pow2.total_pbox_bytes);
  Alcotest.(check bool) "pow2 saves cycles (AND vs modulo)" true
    (all.gobmk_cycles < no_pow2.gobmk_cycles);
  Alcotest.(check bool) "sharing saves memory" true
    (all.total_pbox_bytes < no_share.total_pbox_bytes)

(* ------------------------------------------------------------------ *)
(* Security experiments *)

let test_realvuln_shape () =
  let t = Harness.Security.realvuln ~trials_per_cell:4 () in
  List.iter
    (fun (c : Harness.Security.cell) ->
      match c.defense with
      | Defenses.Defense.No_defense ->
          Alcotest.(check (float 0.001))
            (c.attack_name ^ " undefended") 1.0 c.success_rate
      | _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s vs smokestack: %.2f <= 0.25" c.attack_name
               c.success_rate)
            true (c.success_rate <= 0.25))
    t.cells

let test_pentest_shape () =
  let t = Harness.Security.pentest ~trials_per_cell:4 () in
  List.iter
    (fun (c : Harness.Security.cell) ->
      match c.defense with
      | Defenses.Defense.No_defense ->
          Alcotest.(check (float 0.001)) (c.attack_name ^ " undefended") 1.0 c.success_rate
      | Defenses.Defense.Smokestack _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s vs smokestack %.2f" c.attack_name c.success_rate)
            true (c.success_rate <= 0.5)
      | _ -> ())
    t.cells

let test_brute_shape () =
  let rows = Harness.Security.brute ~max_attempts:120 () in
  let get d =
    List.find (fun (r : Harness.Security.brute_row) -> r.bdefense = d) rows
  in
  Alcotest.(check (option int)) "undefended falls immediately" (Some 1)
    (get Defenses.Defense.No_defense).attempts_to_success;
  let ss = get (Defenses.Defense.Smokestack Smokestack.Config.default) in
  Alcotest.(check bool) "smokestack needs many attempts or resists" true
    (match ss.attempts_to_success with None -> true | Some n -> n > 5)

(* ------------------------------------------------------------------ *)
(* Reporting plumbing *)

let test_markdown_renderers () =
  let t1 = Harness.Randrate.run ~draws:2_000 () in
  Alcotest.(check bool) "randrate md" true
    (String.length (Harness.Randrate.to_markdown t1) > 100);
  let e = Harness.Security.realvuln ~trials_per_cell:1 () in
  Alcotest.(check bool) "security md" true
    (String.length (Harness.Security.to_markdown e) > 100)

let test_str_replace () =
  Alcotest.(check string) "replace" "aXbXc"
    (Harness.Str_replace.replace ~needle:"-" ~by:"X" "a-b-c");
  Alcotest.(check string) "absent" "abc"
    (Harness.Str_replace.replace ~needle:"z" ~by:"X" "abc")

let () =
  Alcotest.run "harness"
    [
      ("table1", [ Alcotest.test_case "matches paper" `Quick test_randrate_matches_table1 ]);
      ( "fig3",
        [
          Alcotest.test_case "scheme ordering" `Slow test_overhead_scheme_ordering;
          Alcotest.test_case "call density dominates" `Slow
            test_overhead_call_density_dominates;
          Alcotest.test_case "io modest" `Slow test_overhead_io_modest;
          Alcotest.test_case "full set in paper bands" `Slow
            test_overhead_full_set_matches_paper_bands;
        ] );
      ("fig4", [ Alcotest.test_case "pbox-driven" `Slow test_memov_positive_and_pbox_driven ]);
      ("ablation", [ Alcotest.test_case "tradeoffs" `Slow test_ablation_tradeoffs ]);
      ( "security",
        [
          Alcotest.test_case "realvuln shape" `Slow test_realvuln_shape;
          Alcotest.test_case "pentest shape" `Slow test_pentest_shape;
          Alcotest.test_case "brute shape" `Slow test_brute_shape;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "markdown" `Quick test_markdown_renderers;
          Alcotest.test_case "str_replace" `Quick test_str_replace;
        ] );
    ]
