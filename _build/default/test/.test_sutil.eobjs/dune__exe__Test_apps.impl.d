test/test_apps.ml: Alcotest Apps Attacks Defenses Harness Int64 Lazy List Machine Minic Option Printf Rng Smokestack
