test/test_diff.ml: Alcotest Crypto Defenses Int64 List Machine Minic Printf QCheck2 QCheck_alcotest Rng Smokestack
