test/test_minic.ml: Alcotest Array Ir List Machine Minic Printf String
