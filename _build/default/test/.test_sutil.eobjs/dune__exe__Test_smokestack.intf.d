test/test_smokestack.mli:
