test/test_defenses.ml: Alcotest Array Attacks Crypto Defenses Hashtbl Int Int64 Ir List Machine Minic Option Printf
