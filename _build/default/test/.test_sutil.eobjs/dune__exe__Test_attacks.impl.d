test/test_attacks.ml: Alcotest Attacks Int64 Ir List Machine Minic Option QCheck2 QCheck_alcotest Smokestack String
