test/test_crypto.ml: Alcotest Array Char Crypto Fun Hashtbl Int64 List Printf QCheck2 QCheck_alcotest Rng String
