test/test_ir.ml: Alcotest Format Ir List Machine Minic Option QCheck2 QCheck_alcotest Smokestack String
