test/test_sutil.ml: Alcotest Array Bytes Fun List Printf QCheck2 QCheck_alcotest String Sutil
