test/test_harness.ml: Alcotest Apps Defenses Float Harness Lazy List Printf Rng Smokestack String
