test/test_smokestack.ml: Alcotest Array Attacks Crypto Format Hashtbl Int64 Ir List Machine Minic Option Printf QCheck2 QCheck_alcotest Rng Smokestack String Sutil
