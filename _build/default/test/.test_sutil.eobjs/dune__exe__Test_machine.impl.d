test/test_machine.ml: Alcotest Crypto Format Ir List Machine Minic Smokestack String
