lib/machine/memory.ml: Array Buffer Bytes Char Format Int64 List Printf String Sutil
