lib/machine/memory.mli: Bytes Format
