lib/machine/trace.mli: Exec Format
