lib/machine/cost.ml:
