lib/machine/cost.mli:
