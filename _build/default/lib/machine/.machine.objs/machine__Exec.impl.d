lib/machine/exec.ml: Array Buffer Char Cost Format Hashtbl Int64 Ir List Memory Option Printf Stdlib String Sutil
