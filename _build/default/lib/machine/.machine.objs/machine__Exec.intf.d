lib/machine/exec.mli: Buffer Format Hashtbl Ir Memory
