lib/machine/trace.ml: Array Buffer Exec Format List Option Printf String
