(** Cycle cost model.

    Stands in for the Xeon D-1541 testbed.  Absolute values are a
    simple in-order approximation; what the experiments rely on is the
    {e relative} cost structure — in particular the per-invocation RNG
    costs, which are calibrated to the paper's Table I measurements. *)

val alu : float
(** binop / icmp / select / sext / trunc / gep *)

val div : float
(** integer division and remainder — markedly slower than simple ALU
    ops, which is what makes the paper's power-of-2 P-BOX optimization
    (replacing a modulo with a masking AND) pay off *)

val load : float

val load_rodata : float
(** Loads from the read-only segment — the P-BOX is deliberately
    cache-friendly (§IV-B), so its row reads hit L1. *)

val store : float
val alloca : float
val branch : float
val cond_branch : float
val call_overhead : float
(** fixed prologue+epilogue cost per call *)

val intrinsic_base : float
val builtin_base : float
val builtin_per_byte : float

val syscall : float
(** I/O builtins ([read_input], [input_byte], [print_*]) model a
    kernel round-trip — this is what makes the I/O-bound applications
    I/O bound under the cycle model. *)

(** {1 RNG costs — Table I (cycles per 64-bit invocation)} *)

val rng_pseudo : float  (** 3.4 *)

val rng_aes1 : float  (** 19.2 *)

val rng_aes10 : float  (** 92.8 *)

val rng_rdrand : float  (** 265.6 *)

val rng_aes : rounds:int -> float
(** Linear interpolation between AES-1 and AES-10 costs for
    intermediate round counts. *)

val layout_dynamic_per_var : float
(** Per-variable cost of decoding a permutation at the prologue when
    the table is too large to materialize (see DESIGN.md). *)
