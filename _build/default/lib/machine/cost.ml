let alu = 1.
let div = 24.
let load = 4.
let load_rodata = 1.5
let store = 4.
let alloca = 2.
let branch = 1.
let cond_branch = 2.
let call_overhead = 12.
let intrinsic_base = 2.
let builtin_base = 20.
let builtin_per_byte = 0.25
let syscall = 2500.
let rng_pseudo = 3.4
let rng_aes1 = 19.2
let rng_aes10 = 92.8
let rng_rdrand = 265.6

let rng_aes ~rounds =
  if rounds < 1 || rounds > 10 then
    invalid_arg "Machine.Cost.rng_aes: rounds must be in [1, 10]";
  rng_aes1 +. (float_of_int (rounds - 1) /. 9. *. (rng_aes10 -. rng_aes1))

let layout_dynamic_per_var = 14.
