type p = { toks : Token.spanned array; mutable pos : int }

let cur p = p.toks.(p.pos).Token.tok
let cur_loc p = p.toks.(p.pos).Token.loc

let peek_at p k =
  let i = min (p.pos + k) (Array.length p.toks - 1) in
  p.toks.(i).Token.tok

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let expect p tok =
  if cur p = tok then advance p
  else
    Srcloc.error (cur_loc p) "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (cur p))

let expect_ident p =
  match cur p with
  | Token.Ident name ->
      advance p;
      name
  | t -> Srcloc.error (cur_loc p) "expected identifier, found %s" (Token.to_string t)

let is_type_start = function
  | Token.Kw_char | Token.Kw_short | Token.Kw_int | Token.Kw_long
  | Token.Kw_void | Token.Kw_struct | Token.Kw_const ->
      true
  | _ -> false

(* type-spec: [const] (char|short|int|long|void|struct Ident) '*'* *)
let parse_type_spec p =
  if cur p = Token.Kw_const then advance p;
  let base =
    match cur p with
    | Token.Kw_char -> advance p; Ctype.Char
    | Token.Kw_short -> advance p; Ctype.Short
    | Token.Kw_int -> advance p; Ctype.Int
    | Token.Kw_long -> advance p; Ctype.Long
    | Token.Kw_void -> advance p; Ctype.Void
    | Token.Kw_struct ->
        advance p;
        Ctype.Struct (expect_ident p)
    | t -> Srcloc.error (cur_loc p) "expected a type, found %s" (Token.to_string t)
  in
  if cur p = Token.Kw_const then advance p;
  let rec stars t =
    if cur p = Token.Star then begin
      advance p;
      stars (Ctype.Ptr t)
    end
    else t
  in
  stars base

(* Constant expressions for array bounds and global initializers. *)
let rec const_eval (e : Ast.expr) : int64 option =
  match e.e with
  | Ast.Int_lit v -> Some v
  | Ast.Char_lit c -> Some (Int64.of_int (Char.code c))
  | Ast.Unop (Ast.Neg, a) -> Option.map Int64.neg (const_eval a)
  | Ast.Binop (op, a, b) -> (
      match (const_eval a, const_eval b) with
      | Some a, Some b -> (
          match op with
          | Ast.Add -> Some (Int64.add a b)
          | Ast.Sub -> Some (Int64.sub a b)
          | Ast.Mul -> Some (Int64.mul a b)
          | Ast.Shl -> Some (Int64.shift_left a (Int64.to_int b))
          | _ -> None)
      | _ -> None)
  | _ -> None

let rec parse_expr p = parse_assign p

and parse_assign p =
  let lhs = parse_cond p in
  let loc = cur_loc p in
  match cur p with
  | Token.Assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Assign (lhs, rhs); eloc = loc }
  | Token.Plus_assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Op_assign (Ast.Add, lhs, rhs); eloc = loc }
  | Token.Minus_assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Op_assign (Ast.Sub, lhs, rhs); eloc = loc }
  | Token.Star_assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Op_assign (Ast.Mul, lhs, rhs); eloc = loc }
  | Token.Amp_assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Op_assign (Ast.Band, lhs, rhs); eloc = loc }
  | Token.Pipe_assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Op_assign (Ast.Bor, lhs, rhs); eloc = loc }
  | Token.Caret_assign ->
      advance p;
      let rhs = parse_assign p in
      { Ast.e = Ast.Op_assign (Ast.Bxor, lhs, rhs); eloc = loc }
  | _ -> lhs

and parse_cond p =
  let c = parse_or p in
  if cur p = Token.Question then begin
    let loc = cur_loc p in
    advance p;
    let a = parse_expr p in
    expect p Token.Colon;
    let b = parse_cond p in
    { Ast.e = Ast.Cond (c, a, b); eloc = loc }
  end
  else c

and parse_or p =
  let rec go lhs =
    if cur p = Token.Or_or then begin
      let loc = cur_loc p in
      advance p;
      let rhs = parse_and p in
      go { Ast.e = Ast.Logical (`Or, lhs, rhs); eloc = loc }
    end
    else lhs
  in
  go (parse_and p)

and parse_and p =
  let rec go lhs =
    if cur p = Token.And_and then begin
      let loc = cur_loc p in
      advance p;
      let rhs = parse_binary p 0 in
      go { Ast.e = Ast.Logical (`And, lhs, rhs); eloc = loc }
    end
    else lhs
  in
  go (parse_binary p 0)

(* Precedence-climbing for the plain binary operators. *)
and binop_of_token = function
  | Token.Pipe -> Some (Ast.Bor, 1)
  | Token.Caret -> Some (Ast.Bxor, 2)
  | Token.Amp -> Some (Ast.Band, 3)
  | Token.Eq -> Some (Ast.Eq, 4)
  | Token.Ne -> Some (Ast.Ne, 4)
  | Token.Lt -> Some (Ast.Lt, 5)
  | Token.Le -> Some (Ast.Le, 5)
  | Token.Gt -> Some (Ast.Gt, 5)
  | Token.Ge -> Some (Ast.Ge, 5)
  | Token.Shl -> Some (Ast.Shl, 6)
  | Token.Shr -> Some (Ast.Shr, 6)
  | Token.Plus -> Some (Ast.Add, 7)
  | Token.Minus -> Some (Ast.Sub, 7)
  | Token.Star -> Some (Ast.Mul, 8)
  | Token.Slash -> Some (Ast.Div, 8)
  | Token.Percent -> Some (Ast.Mod, 8)
  | _ -> None

and parse_binary p min_prec =
  let lhs = ref (parse_unary p) in
  let continue = ref true in
  while !continue do
    match binop_of_token (cur p) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = cur_loc p in
        advance p;
        let rhs = parse_binary p (prec + 1) in
        lhs := { Ast.e = Ast.Binop (op, !lhs, rhs); eloc = loc }
    | _ -> continue := false
  done;
  !lhs

and parse_unary p =
  let loc = cur_loc p in
  match cur p with
  | Token.Minus ->
      advance p;
      { Ast.e = Ast.Unop (Ast.Neg, parse_unary p); eloc = loc }
  | Token.Tilde ->
      advance p;
      { Ast.e = Ast.Unop (Ast.Bnot, parse_unary p); eloc = loc }
  | Token.Bang ->
      advance p;
      { Ast.e = Ast.Unop (Ast.Lnot, parse_unary p); eloc = loc }
  | Token.Star ->
      advance p;
      { Ast.e = Ast.Deref (parse_unary p); eloc = loc }
  | Token.Amp ->
      advance p;
      { Ast.e = Ast.Addr_of (parse_unary p); eloc = loc }
  | Token.Plus_plus ->
      advance p;
      { Ast.e = Ast.Incdec (`Pre, `Inc, parse_unary p); eloc = loc }
  | Token.Minus_minus ->
      advance p;
      { Ast.e = Ast.Incdec (`Pre, `Dec, parse_unary p); eloc = loc }
  | Token.Kw_sizeof ->
      advance p;
      expect p Token.Lparen;
      let e =
        if is_type_start (cur p) then begin
          let t = parse_sizeof_type p in
          { Ast.e = Ast.Sizeof_type t; eloc = loc }
        end
        else
          let inner = parse_expr p in
          { Ast.e = Ast.Sizeof_expr inner; eloc = loc }
      in
      expect p Token.Rparen;
      e
  | Token.Lparen when is_type_start (peek_at p 1) ->
      (* cast *)
      advance p;
      let t = parse_type_spec p in
      expect p Token.Rparen;
      { Ast.e = Ast.Cast (t, parse_unary p); eloc = loc }
  | _ -> parse_postfix p

(* sizeof accepts array-suffixed types: sizeof(char[64]) *)
and parse_sizeof_type p =
  let base = parse_type_spec p in
  let rec arrays t =
    if cur p = Token.Lbracket then begin
      advance p;
      let len_expr = parse_expr p in
      expect p Token.Rbracket;
      match const_eval len_expr with
      | Some n -> arrays (Ctype.Array (t, Int64.to_int n))
      | None -> Srcloc.error (cur_loc p) "sizeof array bound must be constant"
    end
    else t
  in
  arrays base

and parse_postfix p =
  let e = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    let loc = cur_loc p in
    match cur p with
    | Token.Lparen ->
        advance p;
        let args = ref [] in
        if cur p <> Token.Rparen then begin
          args := [ parse_expr p ];
          while cur p = Token.Comma do
            advance p;
            args := parse_expr p :: !args
          done
        end;
        expect p Token.Rparen;
        e := { Ast.e = Ast.Call (!e, List.rev !args); eloc = loc }
    | Token.Lbracket ->
        advance p;
        let i = parse_expr p in
        expect p Token.Rbracket;
        e := { Ast.e = Ast.Index (!e, i); eloc = loc }
    | Token.Dot ->
        advance p;
        e := { Ast.e = Ast.Member (!e, expect_ident p); eloc = loc }
    | Token.Arrow ->
        advance p;
        e := { Ast.e = Ast.Arrow (!e, expect_ident p); eloc = loc }
    | Token.Plus_plus ->
        advance p;
        e := { Ast.e = Ast.Incdec (`Post, `Inc, !e); eloc = loc }
    | Token.Minus_minus ->
        advance p;
        e := { Ast.e = Ast.Incdec (`Post, `Dec, !e); eloc = loc }
    | _ -> continue := false
  done;
  !e

and parse_primary p =
  let loc = cur_loc p in
  match cur p with
  | Token.Int_lit v ->
      advance p;
      { Ast.e = Ast.Int_lit v; eloc = loc }
  | Token.Char_lit c ->
      advance p;
      { Ast.e = Ast.Char_lit c; eloc = loc }
  | Token.Str_lit s ->
      advance p;
      { Ast.e = Ast.Str_lit s; eloc = loc }
  | Token.Ident name ->
      advance p;
      { Ast.e = Ast.Var name; eloc = loc }
  | Token.Lparen ->
      advance p;
      let e = parse_expr p in
      expect p Token.Rparen;
      e
  | t -> Srcloc.error loc "unexpected token %s in expression" (Token.to_string t)

(* declarator: name ('[' expr ']')*.  Only the outermost array bound
   may be non-constant; in that case the returned type is the ELEMENT
   type and the bound expression is returned separately (VLA). *)
let parse_declarator p base =
  let name = expect_ident p in
  let bounds = ref [] in
  while cur p = Token.Lbracket do
    advance p;
    let e = parse_expr p in
    expect p Token.Rbracket;
    bounds := e :: !bounds
  done;
  match List.rev !bounds (* source order: outermost first *) with
  | [] -> (name, base, None)
  | outer :: inner ->
      let const_bound e =
        match const_eval e with
        | Some n when Int64.compare n 0L >= 0 -> Int64.to_int n
        | _ ->
            Srcloc.error e.Ast.eloc
              "only the outermost array bound may be non-constant"
      in
      let elem =
        List.fold_right (fun b t -> Ctype.Array (t, const_bound b)) inner base
      in
      (match const_eval outer with
      | Some n when Int64.compare n 0L >= 0 ->
          (name, Ctype.Array (elem, Int64.to_int n), None)
      | _ -> (name, elem, Some outer))

let rec parse_stmt p : Ast.stmt =
  let loc = cur_loc p in
  match cur p with
  | Token.Semi ->
      advance p;
      { Ast.s = Ast.Block []; sloc = loc }
  | Token.Lbrace ->
      advance p;
      let body = parse_block_items p in
      expect p Token.Rbrace;
      { Ast.s = Ast.Block body; sloc = loc }
  | Token.Kw_if ->
      advance p;
      expect p Token.Lparen;
      let c = parse_expr p in
      expect p Token.Rparen;
      let then_ = parse_stmt_as_list p in
      let else_ =
        if cur p = Token.Kw_else then begin
          advance p;
          parse_stmt_as_list p
        end
        else []
      in
      { Ast.s = Ast.If (c, then_, else_); sloc = loc }
  | Token.Kw_while ->
      advance p;
      expect p Token.Lparen;
      let c = parse_expr p in
      expect p Token.Rparen;
      { Ast.s = Ast.While (c, parse_stmt_as_list p); sloc = loc }
  | Token.Kw_do ->
      advance p;
      let body = parse_stmt_as_list p in
      expect p Token.Kw_while;
      expect p Token.Lparen;
      let c = parse_expr p in
      expect p Token.Rparen;
      expect p Token.Semi;
      { Ast.s = Ast.Do_while (body, c); sloc = loc }
  | Token.Kw_for ->
      advance p;
      expect p Token.Lparen;
      let init =
        if cur p = Token.Semi then begin
          advance p;
          None
        end
        else if is_type_start (cur p) then Some (parse_decl_stmt p)
        else begin
          let e = parse_expr p in
          expect p Token.Semi;
          Some { Ast.s = Ast.Expr_stmt e; sloc = loc }
        end
      in
      let cond = if cur p = Token.Semi then None else Some (parse_expr p) in
      expect p Token.Semi;
      let step = if cur p = Token.Rparen then None else Some (parse_expr p) in
      expect p Token.Rparen;
      { Ast.s = Ast.For (init, cond, step, parse_stmt_as_list p); sloc = loc }
  | Token.Kw_switch ->
      advance p;
      expect p Token.Lparen;
      let scrut = parse_expr p in
      expect p Token.Rparen;
      expect p Token.Lbrace;
      let cases = ref [] in
      let default = ref None in
      while cur p <> Token.Rbrace do
        (* one group: case/default labels, then statements *)
        let values = ref [] in
        let is_default = ref false in
        let rec labels () =
          match cur p with
          | Token.Kw_case ->
              advance p;
              let e = parse_expr p in
              (match const_eval e with
              | Some v -> values := v :: !values
              | None -> Srcloc.error e.Ast.eloc "case label must be constant");
              expect p Token.Colon;
              labels ()
          | Token.Kw_default ->
              advance p;
              expect p Token.Colon;
              is_default := true;
              labels ()
          | _ -> ()
        in
        labels ();
        if !values = [] && not !is_default then
          Srcloc.error (cur_loc p) "expected case or default label";
        if !is_default && !values <> [] then
          Srcloc.error (cur_loc p) "default may not share a group with case labels";
        let body = ref [] in
        while
          cur p <> Token.Rbrace && cur p <> Token.Kw_case
          && cur p <> Token.Kw_default
        do
          body := parse_stmt p :: !body
        done;
        let body = List.rev !body in
        if !is_default then begin
          if Option.is_some !default then
            Srcloc.error (cur_loc p) "duplicate default label";
          if cur p <> Token.Rbrace then
            Srcloc.error (cur_loc p) "default must be the last switch group";
          default := Some body
        end
        else
          cases :=
            { Ast.case_values = List.rev !values; case_body = body } :: !cases
      done;
      expect p Token.Rbrace;
      { Ast.s = Ast.Switch (scrut, List.rev !cases, !default); sloc = loc }
  | Token.Kw_return ->
      advance p;
      let v = if cur p = Token.Semi then None else Some (parse_expr p) in
      expect p Token.Semi;
      { Ast.s = Ast.Return v; sloc = loc }
  | Token.Kw_break ->
      advance p;
      expect p Token.Semi;
      { Ast.s = Ast.Break; sloc = loc }
  | Token.Kw_continue ->
      advance p;
      expect p Token.Semi;
      { Ast.s = Ast.Continue; sloc = loc }
  | t when is_type_start t -> parse_decl_stmt p
  | _ ->
      let e = parse_expr p in
      expect p Token.Semi;
      { Ast.s = Ast.Expr_stmt e; sloc = loc }

and parse_stmt_as_list p =
  match parse_stmt p with
  | { Ast.s = Ast.Block body; _ } -> body
  | s -> [ s ]

and parse_block_items p =
  let items = ref [] in
  while cur p <> Token.Rbrace && cur p <> Token.Eof do
    items := parse_stmt p :: !items
  done;
  List.rev !items

(* declaration statement: possibly several comma-separated declarators *)
and parse_decl_stmt p : Ast.stmt =
  let loc = cur_loc p in
  let base = parse_type_spec p in
  let one () =
    let name, ty, vla_len = parse_declarator p base in
    let init =
      if cur p = Token.Assign then begin
        advance p;
        Some (parse_expr p)
      end
      else None
    in
    { Ast.s = Ast.Decl { dname = name; dty = ty; vla_len; init }; sloc = loc }
  in
  let first = one () in
  let rest = ref [] in
  while cur p = Token.Comma do
    advance p;
    (* subsequent declarators share the base type, with optional extra
       stars: [int *a, b, *c;] *)
    let rec stars t =
      if cur p = Token.Star then begin
        advance p;
        stars (Ctype.Ptr t)
      end
      else t
    in
    let base' = stars base in
    let name, ty, vla_len = parse_declarator p base' in
    let init =
      if cur p = Token.Assign then begin
        advance p;
        Some (parse_expr p)
      end
      else None
    in
    rest :=
      { Ast.s = Ast.Decl { dname = name; dty = ty; vla_len; init }; sloc = loc }
      :: !rest
  done;
  expect p Token.Semi;
  match List.rev !rest with
  | [] -> first
  | rest -> { Ast.s = Ast.Seq (first :: rest); sloc = loc }

let parse_params p =
  expect p Token.Lparen;
  if cur p = Token.Rparen then begin
    advance p;
    []
  end
  else if cur p = Token.Kw_void && peek_at p 1 = Token.Rparen then begin
    advance p;
    advance p;
    []
  end
  else begin
    let one () =
      let base = parse_type_spec p in
      let name, ty, vla_len = parse_declarator p base in
      (match vla_len with
      | Some _ -> Srcloc.error (cur_loc p) "VLA parameters are not supported"
      | None -> ());
      (name, Ctype.decay ty)
    in
    let params = ref [ one () ] in
    while cur p = Token.Comma do
      advance p;
      params := one () :: !params
    done;
    expect p Token.Rparen;
    List.rev !params
  end

let parse_top p : Ast.top =
  let loc = cur_loc p in
  match cur p with
  | Token.Kw_struct when peek_at p 2 = Token.Lbrace ->
      advance p;
      let sname = expect_ident p in
      expect p Token.Lbrace;
      let fields = ref [] in
      while cur p <> Token.Rbrace do
        let base = parse_type_spec p in
        let name, ty, vla_len = parse_declarator p base in
        (match vla_len with
        | Some _ -> Srcloc.error (cur_loc p) "VLA struct fields are not supported"
        | None -> ());
        expect p Token.Semi;
        fields := (name, ty) :: !fields
      done;
      expect p Token.Rbrace;
      expect p Token.Semi;
      Ast.Struct_def { sname; fields = List.rev !fields }
  | Token.Kw_extern ->
      advance p;
      let ret = parse_type_spec p in
      let ename = expect_ident p in
      let params = parse_params p in
      expect p Token.Semi;
      Ast.Extern_decl { ename; eparams = List.map snd params; eret = ret }
  | _ ->
      let gconst = cur p = Token.Kw_const in
      let base = parse_type_spec p in
      let name = expect_ident p in
      if cur p = Token.Lparen then begin
        (* function definition *)
        let params = parse_params p in
        expect p Token.Lbrace;
        let body = parse_block_items p in
        expect p Token.Rbrace;
        Ast.Func_def { fname = name; params; ret = base; body; floc = loc }
      end
      else begin
        (* global variable *)
        let rec arrays t =
          if cur p = Token.Lbracket then begin
            advance p;
            let e = parse_expr p in
            expect p Token.Rbracket;
            match const_eval e with
            | Some n -> arrays (Ctype.Array (t, Int64.to_int n))
            | None -> Srcloc.error (cur_loc p) "global array bound must be constant"
          end
          else t
        in
        let gty = arrays base in
        let ginit =
          if cur p = Token.Assign then begin
            advance p;
            let e = parse_expr p in
            match (e.Ast.e, const_eval e) with
            | Ast.Str_lit s, _ -> Some (Ast.Gi_string s)
            | _, Some v -> Some (Ast.Gi_int v)
            | _ ->
                Srcloc.error loc "global initializer must be a constant or string"
          end
          else None
        in
        expect p Token.Semi;
        Ast.Global { gname = name; gty; ginit; gconst }
      end

let parse_tokens toks =
  let p = { toks; pos = 0 } in
  let tops = ref [] in
  while cur p <> Token.Eof do
    tops := parse_top p :: !tops
  done;
  List.rev !tops

let parse src = parse_tokens (Lexer.tokenize src)
