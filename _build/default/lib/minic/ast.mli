(** MiniC abstract syntax. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Bnot | Lnot

type expr = { e : expr_kind; eloc : Srcloc.t }

and expr_kind =
  | Int_lit of int64
  | Char_lit of char
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Logical of [ `And | `Or ] * expr * expr  (** short-circuit *)
  | Assign of expr * expr
  | Op_assign of binop * expr * expr  (** [+=], [-=] *)
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Call of expr * expr list  (** callee is a name or a pointer expression *)
  | Index of expr * expr
  | Member of expr * string
  | Arrow of expr * string
  | Deref of expr
  | Addr_of of expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Cast of Ctype.t * expr
  | Incdec of [ `Pre | `Post ] * [ `Inc | `Dec ] * expr

type stmt = { s : stmt_kind; sloc : Srcloc.t }

and stmt_kind =
  | Expr_stmt of expr
  | Decl of {
      dname : string;
      dty : Ctype.t;
      vla_len : expr option;  (** [Some e] for [T x[e]] with non-constant [e] *)
      init : expr option;
    }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Switch of expr * switch_case list * stmt list option
      (** cases in source order (fallthrough applies); the optional
          final list is [default] *)
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Seq of stmt list
      (** statement group WITHOUT its own scope (comma declarations) *)

and switch_case = { case_values : int64 list; case_body : stmt list }

type func = {
  fname : string;
  params : (string * Ctype.t) list;
  ret : Ctype.t;
  body : stmt list;
  floc : Srcloc.t;
}

type ginit = Gi_int of int64 | Gi_string of string

type top =
  | Func_def of func
  | Global of { gname : string; gty : Ctype.t; ginit : ginit option; gconst : bool }
  | Struct_def of { sname : string; fields : (string * Ctype.t) list }
  | Extern_decl of { ename : string; eparams : Ctype.t list; eret : Ctype.t }

type program = top list
