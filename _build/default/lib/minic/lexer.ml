type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let loc c = { Srcloc.line = c.line; col = c.col }
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let peek2 c =
  if c.pos + 1 < String.length c.src then Some c.src.[c.pos + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.pos <- c.pos + 1

let is_ident_start ch = ch = '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
let is_digit ch = ch >= '0' && ch <= '9'
let is_ident ch = is_ident_start ch || is_digit ch
let is_hex ch = is_digit ch || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')

let rec skip_trivia c =
  match (peek c, peek2 c) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance c;
      skip_trivia c
  | Some '/', Some '/' ->
      while peek c <> None && peek c <> Some '\n' do
        advance c
      done;
      skip_trivia c
  | Some '/', Some '*' ->
      let start = loc c in
      advance c;
      advance c;
      let rec go () =
        match (peek c, peek2 c) with
        | Some '*', Some '/' ->
            advance c;
            advance c
        | Some _, _ ->
            advance c;
            go ()
        | None, _ -> Srcloc.error start "unterminated block comment"
      in
      go ();
      skip_trivia c
  | _ -> ()

let lex_escape c start =
  advance c (* backslash *);
  match peek c with
  | Some 'n' -> advance c; '\n'
  | Some 't' -> advance c; '\t'
  | Some 'r' -> advance c; '\r'
  | Some '0' -> advance c; '\000'
  | Some '\\' -> advance c; '\\'
  | Some '\'' -> advance c; '\''
  | Some '"' -> advance c; '"'
  | Some 'x' ->
      advance c;
      let hex_val ch =
        if is_digit ch then Char.code ch - Char.code '0'
        else (Char.code (Char.lowercase_ascii ch) - Char.code 'a') + 10
      in
      let h1 =
        match peek c with
        | Some ch when is_hex ch -> advance c; hex_val ch
        | _ -> Srcloc.error start "bad \\x escape"
      in
      let h2 =
        match peek c with
        | Some ch when is_hex ch -> advance c; hex_val ch
        | _ -> -1
      in
      if h2 >= 0 then Char.chr ((h1 * 16) + h2) else Char.chr h1
  | _ -> Srcloc.error start "bad escape sequence"

let lex_number c =
  let start = loc c in
  let begin_pos = c.pos in
  if peek c = Some '0' && (peek2 c = Some 'x' || peek2 c = Some 'X') then begin
    advance c;
    advance c;
    while (match peek c with Some ch -> is_hex ch | None -> false) do
      advance c
    done
  end
  else
    while (match peek c with Some ch -> is_digit ch | None -> false) do
      advance c
    done;
  let text = String.sub c.src begin_pos (c.pos - begin_pos) in
  match Int64.of_string_opt text with
  | Some v -> Token.Int_lit v
  | None -> Srcloc.error start "bad integer literal %s" text

let tokenize src =
  let c = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let push tok l = out := { Token.tok; loc = l } :: !out in
  let two tok = advance c; advance c; tok in
  let one tok = advance c; tok in
  let rec go () =
    skip_trivia c;
    let l = loc c in
    match (peek c, peek2 c) with
    | None, _ -> push Token.Eof l
    | Some ch, _ when is_digit ch ->
        push (lex_number c) l;
        go ()
    | Some ch, _ when is_ident_start ch ->
        let begin_pos = c.pos in
        while (match peek c with Some ch -> is_ident ch | None -> false) do
          advance c
        done;
        let text = String.sub c.src begin_pos (c.pos - begin_pos) in
        push
          (match Token.keyword_of_string text with
          | Some kw -> kw
          | None -> Token.Ident text)
          l;
        go ()
    | Some '\'', _ ->
        advance c;
        let ch =
          match peek c with
          | Some '\\' -> lex_escape c l
          | Some ch -> advance c; ch
          | None -> Srcloc.error l "unterminated character literal"
        in
        (match peek c with
        | Some '\'' -> advance c
        | _ -> Srcloc.error l "unterminated character literal");
        push (Token.Char_lit ch) l;
        go ()
    | Some '"', _ ->
        advance c;
        let buf = Buffer.create 16 in
        let rec str () =
          match peek c with
          | Some '"' -> advance c
          | Some '\\' ->
              Buffer.add_char buf (lex_escape c l);
              str ()
          | Some ch ->
              advance c;
              Buffer.add_char buf ch;
              str ()
          | None -> Srcloc.error l "unterminated string literal"
        in
        str ();
        push (Token.Str_lit (Buffer.contents buf)) l;
        go ()
    | Some '+', Some '+' -> push (two Token.Plus_plus) l; go ()
    | Some '+', Some '=' -> push (two Token.Plus_assign) l; go ()
    | Some '-', Some '-' -> push (two Token.Minus_minus) l; go ()
    | Some '-', Some '=' -> push (two Token.Minus_assign) l; go ()
    | Some '-', Some '>' -> push (two Token.Arrow) l; go ()
    | Some '*', Some '=' -> push (two Token.Star_assign) l; go ()
    | Some '&', Some '=' -> push (two Token.Amp_assign) l; go ()
    | Some '|', Some '=' -> push (two Token.Pipe_assign) l; go ()
    | Some '^', Some '=' -> push (two Token.Caret_assign) l; go ()
    | Some '<', Some '<' -> push (two Token.Shl) l; go ()
    | Some '>', Some '>' -> push (two Token.Shr) l; go ()
    | Some '<', Some '=' -> push (two Token.Le) l; go ()
    | Some '>', Some '=' -> push (two Token.Ge) l; go ()
    | Some '=', Some '=' -> push (two Token.Eq) l; go ()
    | Some '!', Some '=' -> push (two Token.Ne) l; go ()
    | Some '&', Some '&' -> push (two Token.And_and) l; go ()
    | Some '|', Some '|' -> push (two Token.Or_or) l; go ()
    | Some '+', _ -> push (one Token.Plus) l; go ()
    | Some '-', _ -> push (one Token.Minus) l; go ()
    | Some '*', _ -> push (one Token.Star) l; go ()
    | Some '/', _ -> push (one Token.Slash) l; go ()
    | Some '%', _ -> push (one Token.Percent) l; go ()
    | Some '&', _ -> push (one Token.Amp) l; go ()
    | Some '|', _ -> push (one Token.Pipe) l; go ()
    | Some '^', _ -> push (one Token.Caret) l; go ()
    | Some '~', _ -> push (one Token.Tilde) l; go ()
    | Some '!', _ -> push (one Token.Bang) l; go ()
    | Some '<', _ -> push (one Token.Lt) l; go ()
    | Some '>', _ -> push (one Token.Gt) l; go ()
    | Some '=', _ -> push (one Token.Assign) l; go ()
    | Some '(', _ -> push (one Token.Lparen) l; go ()
    | Some ')', _ -> push (one Token.Rparen) l; go ()
    | Some '{', _ -> push (one Token.Lbrace) l; go ()
    | Some '}', _ -> push (one Token.Rbrace) l; go ()
    | Some '[', _ -> push (one Token.Lbracket) l; go ()
    | Some ']', _ -> push (one Token.Rbracket) l; go ()
    | Some ';', _ -> push (one Token.Semi) l; go ()
    | Some ',', _ -> push (one Token.Comma) l; go ()
    | Some '.', _ -> push (one Token.Dot) l; go ()
    | Some '?', _ -> push (one Token.Question) l; go ()
    | Some ':', _ -> push (one Token.Colon) l; go ()
    | Some ch, _ -> Srcloc.error l "unexpected character %C" ch
  in
  go ();
  Array.of_list (List.rev !out)
