let builtins =
  [
    ("memcpy", Some [ Ctype.Ptr Ctype.Void; Ctype.Ptr Ctype.Void; Ctype.Long ], Ctype.Ptr Ctype.Void);
    ("memset", Some [ Ctype.Ptr Ctype.Void; Ctype.Int; Ctype.Long ], Ctype.Ptr Ctype.Void);
    ("memcmp", Some [ Ctype.Ptr Ctype.Void; Ctype.Ptr Ctype.Void; Ctype.Long ], Ctype.Int);
    ("strlen", Some [ Ctype.Ptr Ctype.Char ], Ctype.Long);
    ("strcpy", Some [ Ctype.Ptr Ctype.Char; Ctype.Ptr Ctype.Char ], Ctype.Ptr Ctype.Char);
    ("strncpy", Some [ Ctype.Ptr Ctype.Char; Ctype.Ptr Ctype.Char; Ctype.Long ], Ctype.Ptr Ctype.Char);
    ("snprintf_cat", Some [ Ctype.Ptr Ctype.Char; Ctype.Long; Ctype.Ptr Ctype.Char ], Ctype.Long);
    ("malloc", Some [ Ctype.Long ], Ctype.Ptr Ctype.Void);
    ("free", Some [ Ctype.Ptr Ctype.Void ], Ctype.Void);
    ("print_int", Some [ Ctype.Long ], Ctype.Void);
    ("print_char", Some [ Ctype.Int ], Ctype.Void);
    ("print_str", Some [ Ctype.Ptr Ctype.Char ], Ctype.Void);
    ("print_newline", Some [], Ctype.Void);
    ("read_input", Some [ Ctype.Ptr Ctype.Char; Ctype.Long ], Ctype.Long);
    ("input_byte", Some [], Ctype.Int);
    ("exit", Some [ Ctype.Int ], Ctype.Void);
    ("abort", Some [], Ctype.Void);
  ]

type genv = {
  prog : Ir.Prog.t;
  structs : (string, (string * Ctype.t) list) Hashtbl.t;
  funcs : (string, Ctype.t list option * Ctype.t) Hashtbl.t;
  globals : (string, Ctype.t) Hashtbl.t;
  strings : (string, string) Hashtbl.t;
  mutable str_count : int;
}

type binding = { addr : Ir.Instr.operand; bty : Ctype.t }

type fenv = {
  genv : genv;
  b : Ir.Builder.t;
  func : Ir.Func.t;
  fret : Ctype.t;
  entry : Ir.Func.block;
  mutable scopes : (string * binding) list list;
  mutable loops : (string * string option) list;
      (* (break target, continue target — [None] inside a switch that is
         not nested in a loop) *)
  mutable scratch : Ir.Instr.reg option;
}

(* An rvalue: a 64-bit register/immediate plus its C type.  Integers
   narrower than 64 bits are kept sign-extended. *)
type value = { v : Ir.Instr.operand; ty : Ctype.t }

let rec ir_ty genv loc (t : Ctype.t) : Ir.Ty.t =
  match t with
  | Ctype.Void -> Srcloc.error loc "void is not a value type here"
  | Ctype.Char -> Ir.Ty.I8
  | Ctype.Short -> Ir.Ty.I16
  | Ctype.Int -> Ir.Ty.I32
  | Ctype.Long -> Ir.Ty.I64
  | Ctype.Ptr _ -> Ir.Ty.Ptr
  | Ctype.Array (e, n) -> Ir.Ty.Array (ir_ty genv loc e, n)
  | Ctype.Struct s -> (
      match Hashtbl.find_opt genv.structs s with
      | Some fields ->
          Ir.Ty.Struct
            { name = s; fields = List.map (fun (_, ft) -> ir_ty genv loc ft) fields }
      | None -> Srcloc.error loc "unknown struct %s" s)

let sizeof genv loc t = Ir.Ty.size (ir_ty genv loc t)

let field_info genv loc sname fname =
  match Hashtbl.find_opt genv.structs sname with
  | None -> Srcloc.error loc "unknown struct %s" sname
  | Some fields -> (
      let offsets =
        Ir.Ty.struct_field_offsets
          (List.map (fun (_, ft) -> ir_ty genv loc ft) fields)
      in
      match
        List.find_opt
          (fun ((name, _), _) -> String.equal name fname)
          (List.combine fields offsets)
      with
      | Some ((_, fty), off) -> (fty, off)
      | None -> Srcloc.error loc "struct %s has no member %s" sname fname)

let lookup_var fe name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with Some b -> Some b | None -> go rest)
  in
  go fe.scopes

let define_var fe loc name binding =
  match fe.scopes with
  | scope :: rest ->
      if List.mem_assoc name scope then
        Srcloc.error loc "redeclaration of %s" name
      else fe.scopes <- ((name, binding) :: scope) :: rest
  | [] -> assert false

let push_scope fe = fe.scopes <- [] :: fe.scopes

let pop_scope fe =
  match fe.scopes with _ :: rest -> fe.scopes <- rest | [] -> assert false

(* Entry-block alloca: storage for any local, wherever it is declared,
   is claimed at function entry (clang -O0 shape; required for the
   Smokestack pass to see the whole frame). *)
let entry_alloca fe ty name =
  let r = Ir.Func.fresh_reg fe.func in
  fe.entry.instrs <-
    fe.entry.instrs @ [ Ir.Instr.Alloca { dst = r; ty; count = None; name } ];
  r

let scratch_addr fe =
  match fe.scratch with
  | Some r -> Ir.Instr.Reg r
  | None ->
      let r = entry_alloca fe Ir.Ty.I64 "__sc_tmp" in
      fe.scratch <- Some r;
      Ir.Instr.Reg r

(* Sign-normalize a 64-bit register value to the range of [ty]. *)
let normalize fe (ty : Ctype.t) v =
  match ty with
  | Ctype.Char | Ctype.Short | Ctype.Int ->
      let w = Ctype.integer_width ty in
      let t = Ir.Builder.trunc fe.b ~width:w v in
      Ir.Instr.Reg (Ir.Builder.sext fe.b ~width:w (Ir.Instr.Reg t))
  | _ -> v

(* Load an rvalue from an address, decaying arrays. *)
let load_rvalue fe loc (addr : Ir.Instr.operand) (ty : Ctype.t) : value =
  match ty with
  | Ctype.Array (elt, _) -> { v = addr; ty = Ctype.Ptr elt }
  | Ctype.Struct _ -> Srcloc.error loc "cannot use a struct as a value; take a pointer"
  | Ctype.Void -> Srcloc.error loc "void value"
  | Ctype.Ptr _ ->
      { v = Ir.Instr.Reg (Ir.Builder.load fe.b Ir.Ty.Ptr addr); ty }
  | _ ->
      let w = Ctype.integer_width ty in
      let ity = ir_ty fe.genv loc ty in
      let r = Ir.Builder.load fe.b ity addr in
      let r = if w < 8 then Ir.Builder.sext fe.b ~width:w (Ir.Instr.Reg r) else r in
      { v = Ir.Instr.Reg r; ty }

let store_value fe loc ~(addr : Ir.Instr.operand) ~(ty : Ctype.t) (v : value) =
  if Ctype.equal v.ty Ctype.Void then
    Srcloc.error loc "cannot use the result of a void expression";
  match ty with
  | Ctype.Array _ | Ctype.Struct _ ->
      Srcloc.error loc "cannot assign to an aggregate; use memcpy"
  | Ctype.Void -> Srcloc.error loc "cannot assign to void"
  | _ -> Ir.Builder.store fe.b (ir_ty fe.genv loc ty) ~value:v.v ~addr

let intern_string genv s =
  match Hashtbl.find_opt genv.strings s with
  | Some g -> g
  | None ->
      let g = Printf.sprintf "__str.%d" genv.str_count in
      genv.str_count <- genv.str_count + 1;
      Hashtbl.replace genv.strings s g;
      Ir.Prog.add_global genv.prog ~name:g
        ~ty:(Ir.Ty.Array (Ir.Ty.I8, String.length s + 1))
        ~init:(s ^ "\000") ~writable:false ();
      g

let cmp_ne0 fe (v : value) =
  Ir.Builder.icmp fe.b Ir.Instr.Ne v.v (Ir.Instr.Imm 0L)

let arith_result_ty a b =
  (* both integers: 64-bit arithmetic, nominal type long unless both
     are sub-long, in which case int (C's usual promotions, collapsed) *)
  match (a, b) with
  | Ctype.Long, _ | _, Ctype.Long -> Ctype.Long
  | _ -> Ctype.Int

let binop_ir : Ast.binop -> Ir.Instr.binop = function
  | Ast.Add -> Ir.Instr.Add
  | Ast.Sub -> Ir.Instr.Sub
  | Ast.Mul -> Ir.Instr.Mul
  | Ast.Div -> Ir.Instr.Sdiv
  | Ast.Mod -> Ir.Instr.Srem
  | Ast.Band -> Ir.Instr.And
  | Ast.Bor -> Ir.Instr.Or
  | Ast.Bxor -> Ir.Instr.Xor
  | Ast.Shl -> Ir.Instr.Shl
  | Ast.Shr -> Ir.Instr.Ashr
  | _ -> invalid_arg "binop_ir: comparison"

let icmp_ir : Ast.binop -> Ir.Instr.icmp = function
  | Ast.Eq -> Ir.Instr.Eq
  | Ast.Ne -> Ir.Instr.Ne
  | Ast.Lt -> Ir.Instr.Slt
  | Ast.Le -> Ir.Instr.Sle
  | Ast.Gt -> Ir.Instr.Sgt
  | Ast.Ge -> Ir.Instr.Sge
  | _ -> invalid_arg "icmp_ir: not a comparison"

let is_cmp = function
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | _ -> false

let rec lower_expr fe (e : Ast.expr) : value =
  let loc = e.eloc in
  match e.e with
  | Ast.Int_lit v -> { v = Ir.Instr.Imm v; ty = Ctype.Int }
  | Ast.Char_lit c -> { v = Ir.Instr.Imm (Int64.of_int (Char.code c)); ty = Ctype.Char }
  | Ast.Str_lit s ->
      { v = Ir.Instr.Global (intern_string fe.genv s); ty = Ctype.Ptr Ctype.Char }
  | Ast.Var name -> (
      match lookup_var fe name with
      | Some b -> load_rvalue fe loc b.addr b.bty
      | None -> (
          match Hashtbl.find_opt fe.genv.globals name with
          | Some gty -> load_rvalue fe loc (Ir.Instr.Global name) gty
          | None ->
              if Hashtbl.mem fe.genv.funcs name then
                { v = Ir.Instr.Func_ref name; ty = Ctype.Ptr Ctype.Void }
              else Srcloc.error loc "unknown identifier %s" name))
  | Ast.Unop (op, a) -> (
      let va = lower_expr fe a in
      match op with
      | Ast.Neg ->
          {
            v = Ir.Instr.Reg (Ir.Builder.binop fe.b Ir.Instr.Sub (Ir.Instr.Imm 0L) va.v);
            ty = va.ty;
          }
      | Ast.Bnot ->
          {
            v = Ir.Instr.Reg (Ir.Builder.binop fe.b Ir.Instr.Xor va.v (Ir.Instr.Imm (-1L)));
            ty = va.ty;
          }
      | Ast.Lnot ->
          {
            v = Ir.Instr.Reg (Ir.Builder.icmp fe.b Ir.Instr.Eq va.v (Ir.Instr.Imm 0L));
            ty = Ctype.Int;
          })
  | Ast.Binop (op, a, b) -> lower_binop fe loc op a b
  | Ast.Logical (kind, a, b) -> lower_logical fe loc kind a b
  | Ast.Assign (lhs, rhs) ->
      let addr, lty = lower_lvalue fe lhs in
      let v = lower_expr fe rhs in
      store_value fe loc ~addr ~ty:lty v;
      { v = normalize fe lty v.v; ty = lty }
  | Ast.Op_assign (op, lhs, rhs) ->
      let addr, lty = lower_lvalue fe lhs in
      let old_v = load_rvalue fe loc addr lty in
      let rhs_v = lower_expr fe rhs in
      let combined = apply_binop fe loc op old_v rhs_v in
      store_value fe loc ~addr ~ty:lty combined;
      { v = normalize fe lty combined.v; ty = lty }
  | Ast.Cond (c, a, b) ->
      let slot = scratch_addr fe in
      let vc = lower_expr fe c in
      let r = cmp_ne0 fe vc in
      let l_then = Ir.Builder.fresh_label fe.b "cond.then" in
      let l_else = Ir.Builder.fresh_label fe.b "cond.else" in
      let l_join = Ir.Builder.fresh_label fe.b "cond.join" in
      Ir.Builder.cond_br fe.b (Ir.Instr.Reg r) ~if_true:l_then ~if_false:l_else;
      let _ = Ir.Builder.start_block fe.b l_then in
      let va = lower_expr fe a in
      Ir.Builder.store fe.b Ir.Ty.I64 ~value:va.v ~addr:slot;
      Ir.Builder.br fe.b l_join;
      let _ = Ir.Builder.start_block fe.b l_else in
      let vb = lower_expr fe b in
      Ir.Builder.store fe.b Ir.Ty.I64 ~value:vb.v ~addr:slot;
      Ir.Builder.br fe.b l_join;
      let _ = Ir.Builder.start_block fe.b l_join in
      let r = Ir.Builder.load fe.b Ir.Ty.I64 slot in
      let ty = if Ctype.is_pointer va.ty then va.ty else arith_result_ty va.ty vb.ty in
      { v = Ir.Instr.Reg r; ty }
  | Ast.Call (callee, args) -> lower_call fe loc callee args
  | Ast.Index (a, i) ->
      let addr, elt = lower_index_addr fe loc a i in
      load_rvalue fe loc addr elt
  | Ast.Member _ | Ast.Arrow _ ->
      let addr, fty = lower_lvalue fe e in
      load_rvalue fe loc addr fty
  | Ast.Deref a -> (
      let va = lower_expr fe a in
      match va.ty with
      | Ctype.Ptr pointee -> load_rvalue fe loc va.v pointee
      | _ -> Srcloc.error loc "dereference of non-pointer (%s)" (Ctype.to_string va.ty))
  | Ast.Addr_of a -> (
      match a.e with
      | Ast.Var name when lookup_var fe name = None
                          && not (Hashtbl.mem fe.genv.globals name)
                          && Hashtbl.mem fe.genv.funcs name ->
          (* &function *)
          { v = Ir.Instr.Func_ref name; ty = Ctype.Ptr Ctype.Void }
      | _ ->
          let addr, lty = lower_lvalue fe a in
          { v = addr; ty = Ctype.Ptr lty })
  | Ast.Sizeof_type t ->
      { v = Ir.Instr.Imm (Int64.of_int (sizeof fe.genv loc t)); ty = Ctype.Long }
  | Ast.Sizeof_expr inner ->
      let t = type_of_expr fe inner in
      { v = Ir.Instr.Imm (Int64.of_int (sizeof fe.genv loc t)); ty = Ctype.Long }
  | Ast.Cast (t, a) -> (
      let va = lower_expr fe a in
      match t with
      | Ctype.Void -> { v = Ir.Instr.Imm 0L; ty = Ctype.Void }
      | Ctype.Ptr _ -> { v = va.v; ty = t }
      | _ when Ctype.is_integer t -> { v = normalize fe t va.v; ty = t }
      | _ -> Srcloc.error loc "unsupported cast to %s" (Ctype.to_string t))
  | Ast.Incdec (timing, dir, lhs) ->
      let addr, lty = lower_lvalue fe lhs in
      let old_v = load_rvalue fe loc addr lty in
      let one = { v = Ir.Instr.Imm 1L; ty = Ctype.Int } in
      let op = match dir with `Inc -> Ast.Add | `Dec -> Ast.Sub in
      let new_v = apply_binop fe loc op old_v one in
      store_value fe loc ~addr ~ty:lty new_v;
      (match timing with
      | `Pre -> { v = normalize fe lty new_v.v; ty = lty }
      | `Post -> old_v)

(* Static type of an expression without emitting code (sizeof). *)
and type_of_expr fe (e : Ast.expr) : Ctype.t =
  let loc = e.eloc in
  match e.e with
  | Ast.Int_lit _ -> Ctype.Int
  | Ast.Char_lit _ -> Ctype.Char
  | Ast.Str_lit s -> Ctype.Array (Ctype.Char, String.length s + 1)
  | Ast.Var name -> (
      match lookup_var fe name with
      | Some b -> b.bty
      | None -> (
          match Hashtbl.find_opt fe.genv.globals name with
          | Some t -> t
          | None -> Srcloc.error loc "unknown identifier %s" name))
  | Ast.Deref a -> (
      match Ctype.decay (type_of_expr fe a) with
      | Ctype.Ptr p -> p
      | t -> Srcloc.error loc "dereference of non-pointer (%s)" (Ctype.to_string t))
  | Ast.Index (a, _) -> (
      match Ctype.decay (type_of_expr fe a) with
      | Ctype.Ptr p -> p
      | t -> Srcloc.error loc "indexing non-array (%s)" (Ctype.to_string t))
  | Ast.Member (a, f) -> (
      match type_of_expr fe a with
      | Ctype.Struct s -> fst (field_info fe.genv loc s f)
      | t -> Srcloc.error loc "member access on non-struct (%s)" (Ctype.to_string t))
  | Ast.Arrow (a, f) -> (
      match Ctype.decay (type_of_expr fe a) with
      | Ctype.Ptr (Ctype.Struct s) -> fst (field_info fe.genv loc s f)
      | t -> Srcloc.error loc "-> on non-struct-pointer (%s)" (Ctype.to_string t))
  | Ast.Addr_of a -> Ctype.Ptr (type_of_expr fe a)
  | Ast.Cast (t, _) -> t
  | Ast.Assign (lhs, _) | Ast.Op_assign (_, lhs, _) -> type_of_expr fe lhs
  | Ast.Incdec (_, _, lhs) -> type_of_expr fe lhs
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ -> Ctype.Long
  | Ast.Unop (_, a) -> type_of_expr fe a
  | Ast.Binop (op, a, b) ->
      if is_cmp op then Ctype.Int
      else
        let ta = Ctype.decay (type_of_expr fe a) in
        let tb = Ctype.decay (type_of_expr fe b) in
        if Ctype.is_pointer ta then ta
        else if Ctype.is_pointer tb then tb
        else arith_result_ty ta tb
  | Ast.Logical _ -> Ctype.Int
  | Ast.Cond (_, a, _) -> type_of_expr fe a
  | Ast.Call (callee, _) -> (
      match callee.e with
      | Ast.Var name -> (
          match Hashtbl.find_opt fe.genv.funcs name with
          | Some (_, ret) -> ret
          | None -> Ctype.Long)
      | _ -> Ctype.Long)

and apply_binop fe loc op (a : value) (b : value) : value =
  if is_cmp op then
    { v = Ir.Instr.Reg (Ir.Builder.icmp fe.b (icmp_ir op) a.v b.v); ty = Ctype.Int }
  else
    match (op, a.ty, b.ty) with
    | Ast.Add, Ctype.Ptr p, bt when Ctype.is_integer bt ->
        let scaled =
          Ir.Builder.binop fe.b Ir.Instr.Mul b.v
            (Ir.Instr.Imm (Int64.of_int (sizeof fe.genv loc p)))
        in
        {
          v = Ir.Instr.Reg (Ir.Builder.binop fe.b Ir.Instr.Add a.v (Ir.Instr.Reg scaled));
          ty = a.ty;
        }
    | Ast.Add, at, Ctype.Ptr _ when Ctype.is_integer at -> apply_binop fe loc op b a
    | Ast.Sub, Ctype.Ptr p, bt when Ctype.is_integer bt ->
        let scaled =
          Ir.Builder.binop fe.b Ir.Instr.Mul b.v
            (Ir.Instr.Imm (Int64.of_int (sizeof fe.genv loc p)))
        in
        {
          v = Ir.Instr.Reg (Ir.Builder.binop fe.b Ir.Instr.Sub a.v (Ir.Instr.Reg scaled));
          ty = a.ty;
        }
    | Ast.Sub, Ctype.Ptr p, Ctype.Ptr _ ->
        let diff = Ir.Builder.binop fe.b Ir.Instr.Sub a.v b.v in
        {
          v =
            Ir.Instr.Reg
              (Ir.Builder.binop fe.b Ir.Instr.Sdiv (Ir.Instr.Reg diff)
                 (Ir.Instr.Imm (Int64.of_int (max 1 (sizeof fe.genv loc p)))));
          ty = Ctype.Long;
        }
    | _, at, bt when Ctype.is_integer at && Ctype.is_integer bt ->
        {
          v = Ir.Instr.Reg (Ir.Builder.binop fe.b (binop_ir op) a.v b.v);
          ty = arith_result_ty at bt;
        }
    | _ ->
        Srcloc.error loc "invalid operands (%s and %s)" (Ctype.to_string a.ty)
          (Ctype.to_string b.ty)

and lower_binop fe loc op a b =
  let va = lower_expr fe a in
  let vb = lower_expr fe b in
  apply_binop fe loc op va vb

and lower_logical fe _loc kind a b =
  let slot = scratch_addr fe in
  let l_rhs = Ir.Builder.fresh_label fe.b "sc.rhs" in
  let l_short = Ir.Builder.fresh_label fe.b "sc.short" in
  let l_join = Ir.Builder.fresh_label fe.b "sc.join" in
  let va = lower_expr fe a in
  let ra = cmp_ne0 fe va in
  (match kind with
  | `And ->
      Ir.Builder.cond_br fe.b (Ir.Instr.Reg ra) ~if_true:l_rhs ~if_false:l_short
  | `Or ->
      Ir.Builder.cond_br fe.b (Ir.Instr.Reg ra) ~if_true:l_short ~if_false:l_rhs);
  let _ = Ir.Builder.start_block fe.b l_rhs in
  let vb = lower_expr fe b in
  let rb = cmp_ne0 fe vb in
  Ir.Builder.store fe.b Ir.Ty.I64 ~value:(Ir.Instr.Reg rb) ~addr:slot;
  Ir.Builder.br fe.b l_join;
  let _ = Ir.Builder.start_block fe.b l_short in
  let short_val = match kind with `And -> 0L | `Or -> 1L in
  Ir.Builder.store fe.b Ir.Ty.I64 ~value:(Ir.Instr.Imm short_val) ~addr:slot;
  Ir.Builder.br fe.b l_join;
  let _ = Ir.Builder.start_block fe.b l_join in
  { v = Ir.Instr.Reg (Ir.Builder.load fe.b Ir.Ty.I64 slot); ty = Ctype.Int }

and lower_index_addr fe loc a i =
  let va = lower_expr fe a in
  let vi = lower_expr fe i in
  match va.ty with
  | Ctype.Ptr elt ->
      if not (Ctype.is_integer vi.ty) then
        Srcloc.error loc "array index must be an integer";
      let scale = sizeof fe.genv loc elt in
      let r =
        Ir.Builder.gep_idx fe.b va.v ~offset:0 ~index:vi.v ~scale
      in
      (Ir.Instr.Reg r, elt)
  | t -> Srcloc.error loc "indexing non-array (%s)" (Ctype.to_string t)

and lower_lvalue fe (e : Ast.expr) : Ir.Instr.operand * Ctype.t =
  let loc = e.eloc in
  match e.e with
  | Ast.Var name -> (
      match lookup_var fe name with
      | Some b -> (b.addr, b.bty)
      | None -> (
          match Hashtbl.find_opt fe.genv.globals name with
          | Some gty -> (Ir.Instr.Global name, gty)
          | None -> Srcloc.error loc "unknown identifier %s" name))
  | Ast.Deref a -> (
      let va = lower_expr fe a in
      match va.ty with
      | Ctype.Ptr pointee -> (va.v, pointee)
      | t -> Srcloc.error loc "dereference of non-pointer (%s)" (Ctype.to_string t))
  | Ast.Index (a, i) -> lower_index_addr fe loc a i
  | Ast.Member (a, f) -> (
      let addr, aty = lower_lvalue fe a in
      match aty with
      | Ctype.Struct s ->
          let fty, off = field_info fe.genv loc s f in
          (Ir.Instr.Reg (Ir.Builder.gep fe.b addr ~offset:off), fty)
      | t -> Srcloc.error loc "member access on non-struct (%s)" (Ctype.to_string t))
  | Ast.Arrow (a, f) -> (
      let va = lower_expr fe a in
      match va.ty with
      | Ctype.Ptr (Ctype.Struct s) ->
          let fty, off = field_info fe.genv loc s f in
          (Ir.Instr.Reg (Ir.Builder.gep fe.b va.v ~offset:off), fty)
      | t -> Srcloc.error loc "-> on non-struct-pointer (%s)" (Ctype.to_string t))
  | _ -> Srcloc.error loc "expression is not assignable"

and lower_call fe loc callee args =
  let lowered_args = List.map (lower_expr fe) args in
  let arg_ops = List.map (fun v -> v.v) lowered_args in
  match callee.Ast.e with
  | Ast.Var name when lookup_var fe name = None && Hashtbl.mem fe.genv.funcs name ->
      let params, ret = Hashtbl.find fe.genv.funcs name in
      (match params with
      | Some ps when List.length ps <> List.length args ->
          Srcloc.error loc "%s expects %d argument(s), got %d" name
            (List.length ps) (List.length args)
      | _ -> ());
      let want_result = not (Ctype.equal ret Ctype.Void) in
      let dst = Ir.Builder.call fe.b ~result:want_result name arg_ops in
      (match dst with
      | Some d -> { v = Ir.Instr.Reg d; ty = ret }
      | None -> { v = Ir.Instr.Imm 0L; ty = Ctype.Void })
  | _ ->
      (* call through a pointer: unchecked signature, returns long *)
      let vf = lower_expr fe callee in
      let dst = Ir.Builder.call_ind fe.b ~result:true vf.v arg_ops in
      { v = Ir.Instr.Reg (Option.get dst); ty = Ctype.Long }

let rec lower_stmt fe (st : Ast.stmt) =
  let loc = st.sloc in
  match st.s with
  | Ast.Expr_stmt e -> ignore (lower_expr fe e)
  | Ast.Block body ->
      push_scope fe;
      lower_stmts fe body;
      pop_scope fe
  | Ast.Seq body -> lower_stmts fe body
  | Ast.Decl { dname; dty; vla_len = None; init } ->
      let ity = ir_ty fe.genv loc dty in
      let r = entry_alloca fe ity dname in
      define_var fe loc dname { addr = Ir.Instr.Reg r; bty = dty };
      (match init with
      | Some e ->
          let v = lower_expr fe e in
          (match dty with
          | Ctype.Array (Ctype.Char, n) -> (
              (* char buf[N] = "literal"; *)
              match e.Ast.e with
              | Ast.Str_lit s when String.length s < n ->
                  ignore
                    (Ir.Builder.call fe.b "strcpy"
                       [ Ir.Instr.Reg r; v.v ])
              | _ ->
                  Srcloc.error loc
                    "array initializer must be a short-enough string literal")
          | Ctype.Array _ | Ctype.Struct _ ->
              Srcloc.error loc "aggregate initializers are not supported"
          | _ -> store_value fe loc ~addr:(Ir.Instr.Reg r) ~ty:dty v)
      | None -> ())
  | Ast.Decl { dname; dty; vla_len = Some len; init } ->
      (match init with
      | Some _ -> Srcloc.error loc "VLAs cannot have initializers"
      | None -> ());
      let elem_ir = ir_ty fe.genv loc dty in
      let vlen = lower_expr fe len in
      let r = Ir.Builder.alloca_vla fe.b ~name:dname elem_ir ~count:vlen.v in
      define_var fe loc dname { addr = Ir.Instr.Reg r; bty = Ctype.Array (dty, 0) }
  | Ast.If (c, then_, else_) ->
      let vc = lower_expr fe c in
      let r = cmp_ne0 fe vc in
      let l_then = Ir.Builder.fresh_label fe.b "if.then" in
      let l_else = Ir.Builder.fresh_label fe.b "if.else" in
      let l_join = Ir.Builder.fresh_label fe.b "if.join" in
      let has_else = else_ <> [] in
      Ir.Builder.cond_br fe.b (Ir.Instr.Reg r) ~if_true:l_then
        ~if_false:(if has_else then l_else else l_join);
      let _ = Ir.Builder.start_block fe.b l_then in
      push_scope fe;
      lower_stmts fe then_;
      pop_scope fe;
      if not (Ir.Builder.terminated fe.b) then Ir.Builder.br fe.b l_join;
      if has_else then begin
        let _ = Ir.Builder.start_block fe.b l_else in
        push_scope fe;
        lower_stmts fe else_;
        pop_scope fe;
        if not (Ir.Builder.terminated fe.b) then Ir.Builder.br fe.b l_join
      end;
      let _ = Ir.Builder.start_block fe.b l_join in
      ()
  | Ast.While (c, body) ->
      let l_head = Ir.Builder.fresh_label fe.b "while.head" in
      let l_body = Ir.Builder.fresh_label fe.b "while.body" in
      let l_exit = Ir.Builder.fresh_label fe.b "while.exit" in
      Ir.Builder.br fe.b l_head;
      let _ = Ir.Builder.start_block fe.b l_head in
      let vc = lower_expr fe c in
      let r = cmp_ne0 fe vc in
      Ir.Builder.cond_br fe.b (Ir.Instr.Reg r) ~if_true:l_body ~if_false:l_exit;
      let _ = Ir.Builder.start_block fe.b l_body in
      fe.loops <- (l_exit, Some l_head) :: fe.loops;
      push_scope fe;
      lower_stmts fe body;
      pop_scope fe;
      fe.loops <- List.tl fe.loops;
      if not (Ir.Builder.terminated fe.b) then Ir.Builder.br fe.b l_head;
      let _ = Ir.Builder.start_block fe.b l_exit in
      ()
  | Ast.Do_while (body, c) ->
      let l_body = Ir.Builder.fresh_label fe.b "do.body" in
      let l_cond = Ir.Builder.fresh_label fe.b "do.cond" in
      let l_exit = Ir.Builder.fresh_label fe.b "do.exit" in
      Ir.Builder.br fe.b l_body;
      let _ = Ir.Builder.start_block fe.b l_body in
      fe.loops <- (l_exit, Some l_cond) :: fe.loops;
      push_scope fe;
      lower_stmts fe body;
      pop_scope fe;
      fe.loops <- List.tl fe.loops;
      if not (Ir.Builder.terminated fe.b) then Ir.Builder.br fe.b l_cond;
      let _ = Ir.Builder.start_block fe.b l_cond in
      let vc = lower_expr fe c in
      let r = cmp_ne0 fe vc in
      Ir.Builder.cond_br fe.b (Ir.Instr.Reg r) ~if_true:l_body ~if_false:l_exit;
      let _ = Ir.Builder.start_block fe.b l_exit in
      ()
  | Ast.For (init, cond, step, body) ->
      push_scope fe;
      Option.iter (lower_stmt fe) init;
      let l_head = Ir.Builder.fresh_label fe.b "for.head" in
      let l_body = Ir.Builder.fresh_label fe.b "for.body" in
      let l_step = Ir.Builder.fresh_label fe.b "for.step" in
      let l_exit = Ir.Builder.fresh_label fe.b "for.exit" in
      Ir.Builder.br fe.b l_head;
      let _ = Ir.Builder.start_block fe.b l_head in
      (match cond with
      | Some c ->
          let vc = lower_expr fe c in
          let r = cmp_ne0 fe vc in
          Ir.Builder.cond_br fe.b (Ir.Instr.Reg r) ~if_true:l_body ~if_false:l_exit
      | None -> Ir.Builder.br fe.b l_body);
      let _ = Ir.Builder.start_block fe.b l_body in
      fe.loops <- (l_exit, Some l_step) :: fe.loops;
      push_scope fe;
      lower_stmts fe body;
      pop_scope fe;
      fe.loops <- List.tl fe.loops;
      if not (Ir.Builder.terminated fe.b) then Ir.Builder.br fe.b l_step;
      let _ = Ir.Builder.start_block fe.b l_step in
      Option.iter (fun e -> ignore (lower_expr fe e)) step;
      Ir.Builder.br fe.b l_head;
      let _ = Ir.Builder.start_block fe.b l_exit in
      pop_scope fe
  | Ast.Switch (scrut, cases, default) ->
      let v = lower_expr fe scrut in
      let exit_l = Ir.Builder.fresh_label fe.b "switch.exit" in
      let case_labels =
        List.map (fun _ -> Ir.Builder.fresh_label fe.b "switch.case") cases
      in
      let default_l =
        Option.map (fun _ -> Ir.Builder.fresh_label fe.b "switch.default") default
      in
      (* linear dispatch: one equality test per case value *)
      List.iter2
        (fun lbl (c : Ast.switch_case) ->
          List.iter
            (fun value ->
              let r = Ir.Builder.icmp fe.b Ir.Instr.Eq v.v (Ir.Instr.Imm value) in
              let next_test = Ir.Builder.fresh_label fe.b "switch.test" in
              Ir.Builder.cond_br fe.b (Ir.Instr.Reg r) ~if_true:lbl
                ~if_false:next_test;
              ignore (Ir.Builder.start_block fe.b next_test))
            c.case_values)
        case_labels cases;
      Ir.Builder.br fe.b (Option.value ~default:exit_l default_l);
      (* bodies in source order; an unterminated body falls through *)
      let inherited_continue =
        match fe.loops with (_, c) :: _ -> c | [] -> None
      in
      fe.loops <- (exit_l, inherited_continue) :: fe.loops;
      let n = List.length cases in
      List.iteri
        (fun i (lbl, (c : Ast.switch_case)) ->
          ignore (Ir.Builder.start_block fe.b lbl);
          push_scope fe;
          lower_stmts fe c.case_body;
          pop_scope fe;
          if not (Ir.Builder.terminated fe.b) then
            Ir.Builder.br fe.b
              (if i + 1 < n then List.nth case_labels (i + 1)
               else Option.value ~default:exit_l default_l))
        (List.combine case_labels cases);
      (match (default, default_l) with
      | Some body, Some lbl ->
          ignore (Ir.Builder.start_block fe.b lbl);
          push_scope fe;
          lower_stmts fe body;
          pop_scope fe;
          if not (Ir.Builder.terminated fe.b) then Ir.Builder.br fe.b exit_l
      | _ -> ());
      fe.loops <- List.tl fe.loops;
      ignore (Ir.Builder.start_block fe.b exit_l)
  | Ast.Return v -> (
      match (v, fe.fret) with
      | None, Ctype.Void -> Ir.Builder.ret fe.b None
      | Some _, Ctype.Void ->
          Srcloc.error loc "returning a value from a void function"
      | None, _ -> Srcloc.error loc "missing return value"
      | Some e, ret_ty ->
          let rv = lower_expr fe e in
          Ir.Builder.ret fe.b (Some (normalize fe ret_ty rv.v)))
  | Ast.Break -> (
      match fe.loops with
      | (l_exit, _) :: _ -> Ir.Builder.br fe.b l_exit
      | [] -> Srcloc.error loc "break outside a loop")
  | Ast.Continue -> (
      match fe.loops with
      | (_, Some l_cont) :: _ -> Ir.Builder.br fe.b l_cont
      | (_, None) :: _ | [] -> Srcloc.error loc "continue outside a loop")

and lower_stmts fe stmts =
  List.iter
    (fun st -> if not (Ir.Builder.terminated fe.b) then lower_stmt fe st)
    stmts

let ginit_bytes loc (gty : Ctype.t) = function
  | None -> ""
  | Some (Ast.Gi_int v) ->
      let w =
        match gty with
        | t when Ctype.is_integer t -> Ctype.integer_width t
        | Ctype.Ptr _ -> 8
        | _ -> Srcloc.error loc "scalar initializer for aggregate global"
      in
      String.init w (fun i ->
          Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  | Some (Ast.Gi_string s) -> (
      match gty with
      | Ctype.Array (Ctype.Char, n) when String.length s < n -> s ^ "\000"
      | Ctype.Ptr Ctype.Char ->
          Srcloc.error loc
            "char* globals initialized with literals are not supported; use a \
             char array"
      | _ -> Srcloc.error loc "string initializer needs a large-enough char array")

let lower_func genv (f : Ast.func) =
  let params_with_regs = List.mapi (fun i (name, ty) -> (i, name, ty)) f.params in
  let func =
    Ir.Func.create ~name:f.fname
      ~params:
        (List.map
           (fun (i, _, ty) -> (i, ir_ty genv f.floc (Ctype.decay ty)))
           params_with_regs)
      ~returns:
        (match f.ret with
        | Ctype.Void -> None
        | t -> Some (ir_ty genv f.floc t))
  in
  let b = Ir.Builder.create func in
  let fe =
    {
      genv;
      b;
      func;
      fret = f.ret;
      entry = Ir.Func.entry func;
      scopes = [ [] ];
      loops = [];
      scratch = None;
    }
  in
  (* Parameters become addressable entry allocas, stored on entry —
     the register spills the paper notes are part of the frame. *)
  List.iter
    (fun (i, name, ty) ->
      let ty = Ctype.decay ty in
      let r = entry_alloca fe (ir_ty genv f.floc ty) name in
      Ir.Builder.store fe.b (ir_ty genv f.floc ty) ~value:(Ir.Instr.Reg i)
        ~addr:(Ir.Instr.Reg r);
      define_var fe f.floc name { addr = Ir.Instr.Reg r; bty = ty })
    params_with_regs;
  lower_stmts fe f.body;
  if not (Ir.Builder.terminated fe.b) then begin
    match f.ret with
    | Ctype.Void -> Ir.Builder.ret fe.b None
    | _ -> Ir.Builder.ret fe.b (Some (Ir.Instr.Imm 0L))
  end;
  Ir.Prog.add_func genv.prog func

let lower (program : Ast.program) : Ir.Prog.t =
  let genv =
    {
      prog = Ir.Prog.create ();
      structs = Hashtbl.create 8;
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      strings = Hashtbl.create 16;
      str_count = 0;
    }
  in
  (* Builtins are implicitly declared externs. *)
  List.iter
    (fun (name, params, ret) ->
      Hashtbl.replace genv.funcs name (params, ret);
      Ir.Prog.add_extern genv.prog name)
    builtins;
  (* Pass 1: collect structs, signatures, globals. *)
  List.iter
    (fun top ->
      match top with
      | Ast.Struct_def { sname; fields } -> Hashtbl.replace genv.structs sname fields
      | Ast.Extern_decl { ename; eparams; eret } ->
          Hashtbl.replace genv.funcs ename (Some eparams, eret);
          Ir.Prog.add_extern genv.prog ename
      | Ast.Func_def f ->
          Hashtbl.replace genv.funcs f.fname
            (Some (List.map snd f.params), f.ret)
      | Ast.Global { gname; gty; _ } -> Hashtbl.replace genv.globals gname gty)
    program;
  (* Pass 2: emit globals then function bodies. *)
  List.iter
    (fun top ->
      match top with
      | Ast.Global { gname; gty; ginit; gconst } ->
          Ir.Prog.add_global genv.prog ~name:gname
            ~ty:(ir_ty genv Srcloc.dummy gty)
            ~init:(ginit_bytes Srcloc.dummy gty ginit)
            ~writable:(not gconst) ()
      | _ -> ())
    program;
  List.iter
    (function Ast.Func_def f -> lower_func genv f | _ -> ())
    program;
  (match Ir.Verifier.verify genv.prog with
  | [] -> ()
  | errors ->
      let report =
        String.concat "\n" (List.map (Format.asprintf "%a" Ir.Verifier.pp_error) errors)
      in
      failwith ("Minic.Lower produced invalid IR (bug):\n" ^ report));
  genv.prog
