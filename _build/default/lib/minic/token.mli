(** Lexical tokens of MiniC. *)

type t =
  | Int_lit of int64
  | Char_lit of char
  | Str_lit of string
  | Ident of string
  (* keywords *)
  | Kw_char | Kw_short | Kw_int | Kw_long | Kw_void | Kw_struct
  | Kw_if | Kw_else | Kw_while | Kw_for | Kw_do
  | Kw_switch | Kw_case | Kw_default
  | Kw_return | Kw_break | Kw_continue | Kw_sizeof | Kw_const | Kw_extern
  (* punctuation *)
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semi | Comma | Dot | Arrow
  (* operators *)
  | Assign | Plus_assign | Minus_assign
  | Star_assign | Amp_assign | Pipe_assign | Caret_assign
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde | Bang
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | And_and | Or_or
  | Plus_plus | Minus_minus
  | Question | Colon
  | Eof

type spanned = { tok : t; loc : Srcloc.t }

val to_string : t -> string
val keyword_of_string : string -> t option
