type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Ptr of t
  | Array of t * int
  | Struct of string

let is_integer = function Char | Short | Int | Long -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar t = is_integer t || is_pointer t

let integer_width = function
  | Char -> 1
  | Short -> 2
  | Int -> 4
  | Long -> 8
  | t ->
      invalid_arg
        (Printf.sprintf "Minic.Ctype.integer_width: not an integer type (%s)"
           (match t with
           | Void -> "void"
           | Ptr _ -> "pointer"
           | Array _ -> "array"
           | Struct _ -> "struct"
           | _ -> assert false))

let decay = function Array (elt, _) -> Ptr elt | t -> t

let rec equal a b =
  match (a, b) with
  | Void, Void | Char, Char | Short, Short | Int, Int | Long, Long -> true
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | Struct a, Struct b -> String.equal a b
  | _ -> false

let rec to_string = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Ptr t -> to_string t ^ "*"
  | Array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Struct s -> "struct " ^ s

let pp fmt t = Format.pp_print_string fmt (to_string t)
