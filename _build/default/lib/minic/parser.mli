(** Recursive-descent parser for MiniC.

    Grammar summary (C subset): struct definitions, globals with
    constant initializers, extern prototypes, function definitions;
    statements: declarations (including VLAs), expression statements,
    [if]/[else], [while], [do]/[while], [for], [return], [break],
    [continue], blocks; the usual C expression grammar with
    precedence-correct binary operators, short-circuit [&&]/[||],
    [?:], assignment ([=], [+=], [-=]), casts, [sizeof], pre/post
    increment, member access, indexing, and calls (direct or through a
    pointer).

    Raises {!Srcloc.Error} on syntax errors. *)

val parse : string -> Ast.program
(** Lex and parse a full translation unit. *)

val parse_tokens : Token.spanned array -> Ast.program
