let compile ?(optimize = false) source =
  let prog = Lower.lower (Parser.parse source) in
  if optimize then Ir.Optpipe.optimize prog;
  prog

let compile_result ?optimize source =
  match compile ?optimize source with
  | prog -> Ok prog
  | exception e -> (
      match Srcloc.to_string e with Some msg -> Error msg | None -> raise e)
