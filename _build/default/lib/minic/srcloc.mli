(** Source locations and front-end errors. *)

type t = { line : int; col : int }

val dummy : t
val pp : Format.formatter -> t -> unit

exception Error of { loc : t; msg : string }

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)

val to_string : exn -> string option
(** Renders an {!Error}; [None] for other exceptions. *)
