type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let pp fmt { line; col } = Format.fprintf fmt "%d:%d" line col

exception Error of { loc : t; msg : string }

let error loc fmt = Format.kasprintf (fun msg -> raise (Error { loc; msg })) fmt

let to_string = function
  | Error { loc; msg } ->
      Some (Format.asprintf "minic error at %a: %s" pp loc msg)
  | _ -> None
