type t =
  | Int_lit of int64
  | Char_lit of char
  | Str_lit of string
  | Ident of string
  | Kw_char | Kw_short | Kw_int | Kw_long | Kw_void | Kw_struct
  | Kw_if | Kw_else | Kw_while | Kw_for | Kw_do
  | Kw_switch | Kw_case | Kw_default
  | Kw_return | Kw_break | Kw_continue | Kw_sizeof | Kw_const | Kw_extern
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semi | Comma | Dot | Arrow
  | Assign | Plus_assign | Minus_assign
  | Star_assign | Amp_assign | Pipe_assign | Caret_assign
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde | Bang
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | And_and | Or_or
  | Plus_plus | Minus_minus
  | Question | Colon
  | Eof

type spanned = { tok : t; loc : Srcloc.t }

let keywords =
  [
    ("char", Kw_char); ("short", Kw_short); ("int", Kw_int); ("long", Kw_long);
    ("void", Kw_void); ("struct", Kw_struct); ("if", Kw_if); ("else", Kw_else);
    ("while", Kw_while); ("for", Kw_for); ("do", Kw_do); ("return", Kw_return);
    ("switch", Kw_switch); ("case", Kw_case); ("default", Kw_default);
    ("break", Kw_break); ("continue", Kw_continue); ("sizeof", Kw_sizeof);
    ("const", Kw_const); ("extern", Kw_extern);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let to_string = function
  | Int_lit i -> Int64.to_string i
  | Char_lit c -> Printf.sprintf "%C" c
  | Str_lit s -> Printf.sprintf "%S" s
  | Ident s -> s
  | Kw_char -> "char" | Kw_short -> "short" | Kw_int -> "int" | Kw_long -> "long"
  | Kw_void -> "void" | Kw_struct -> "struct" | Kw_if -> "if" | Kw_else -> "else"
  | Kw_while -> "while" | Kw_for -> "for" | Kw_do -> "do" | Kw_return -> "return"
  | Kw_switch -> "switch" | Kw_case -> "case" | Kw_default -> "default"
  | Kw_break -> "break" | Kw_continue -> "continue" | Kw_sizeof -> "sizeof"
  | Kw_const -> "const" | Kw_extern -> "extern"
  | Lparen -> "(" | Rparen -> ")" | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]"
  | Semi -> ";" | Comma -> "," | Dot -> "." | Arrow -> "->"
  | Assign -> "=" | Plus_assign -> "+=" | Minus_assign -> "-="
  | Star_assign -> "*=" | Amp_assign -> "&=" | Pipe_assign -> "|=" | Caret_assign -> "^="
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | Amp -> "&" | Pipe -> "|" | Caret -> "^" | Tilde -> "~" | Bang -> "!"
  | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And_and -> "&&" | Or_or -> "||"
  | Plus_plus -> "++" | Minus_minus -> "--"
  | Question -> "?" | Colon -> ":"
  | Eof -> "<eof>"
