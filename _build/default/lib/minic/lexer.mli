(** Hand-written MiniC lexer.

    Supports decimal and hexadecimal integer literals, character
    literals with the usual escapes, string literals, line ([//]) and
    block comments.  Raises {!Srcloc.Error} on malformed input. *)

val tokenize : string -> Token.spanned array
(** The token stream, always terminated by {!Token.Eof}. *)
