(** MiniC's source-level types.

    All integer types are signed (char 1, short 2, int 4, long 8 bytes,
    as on LP64).  Structs are referenced by name and resolved against
    the program's struct table during lowering. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Ptr of t
  | Array of t * int
  | Struct of string

val is_integer : t -> bool
val is_pointer : t -> bool

val is_scalar : t -> bool
(** integer or pointer *)

val integer_width : t -> int
(** Byte width of an integer type. Raises [Invalid_argument]
    otherwise. *)

val decay : t -> t
(** Array-to-pointer decay; identity on other types. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
