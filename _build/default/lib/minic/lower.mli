(** Typed lowering of MiniC to IR.

    Performs C-style type checking while emitting clang [-O0]-shaped
    IR: every local (parameters included) becomes an entry-block
    [alloca]; reads load and sign-extend; integer arithmetic is 64-bit
    with results truncated on store; pointer arithmetic scales by the
    pointee size; [&&]/[||]/[?:] compile to control flow through a
    shared scratch slot; string literals are interned in rodata.

    VLAs lower to dynamic allocas at their declaration point (their
    storage is reclaimed at function exit, not scope exit — documented
    divergence from C).

    Raises {!Srcloc.Error} on type errors (unknown names, aggregate
    assignment, calls with wrong arity, void misuse, …). *)

val builtins : (string * Ctype.t list option * Ctype.t) list
(** Known VM builtins: name, parameter types ([None] = unchecked
    arity/types, for the printf-like ones), return type.  Kept in sync
    with {!Machine.Exec.builtin_names} by a test. *)

val lower : Ast.program -> Ir.Prog.t
(** Lower a full translation unit; the result passes
    {!Ir.Verifier.verify}. *)
