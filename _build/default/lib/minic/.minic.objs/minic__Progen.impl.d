lib/minic/progen.ml: Buffer List Printf String Sutil
