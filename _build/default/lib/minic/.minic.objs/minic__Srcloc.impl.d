lib/minic/srcloc.ml: Format
