lib/minic/lower.ml: Ast Char Ctype Format Hashtbl Int64 Ir List Option Printf Srcloc String
