lib/minic/ctype.ml: Format Printf String
