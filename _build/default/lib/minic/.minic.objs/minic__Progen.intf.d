lib/minic/progen.mli:
