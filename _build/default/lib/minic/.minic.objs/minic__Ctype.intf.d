lib/minic/ctype.mli: Format
