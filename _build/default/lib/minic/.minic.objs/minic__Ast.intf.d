lib/minic/ast.mli: Ctype Srcloc
