lib/minic/parser.ml: Array Ast Char Ctype Int64 Lexer List Option Srcloc Token
