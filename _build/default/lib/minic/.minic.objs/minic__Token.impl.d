lib/minic/token.ml: Int64 List Printf Srcloc
