lib/minic/driver.mli: Ir
