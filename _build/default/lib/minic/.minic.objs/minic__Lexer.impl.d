lib/minic/lexer.ml: Array Buffer Char Int64 List Srcloc String Token
