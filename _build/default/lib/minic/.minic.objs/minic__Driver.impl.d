lib/minic/driver.ml: Ir Lower Parser Srcloc
