lib/minic/ast.ml: Ctype Srcloc
