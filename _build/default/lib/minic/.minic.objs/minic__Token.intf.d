lib/minic/token.mli: Srcloc
