lib/minic/lower.mli: Ast Ctype Ir
