(** One-call MiniC compilation. *)

val compile : ?optimize:bool -> string -> Ir.Prog.t
(** [compile source] lexes, parses and lowers a translation unit; with
    [optimize] (default [false]) the result additionally goes through
    {!Ir.Optpipe.optimize} (constant folding, DCE, CFG cleanup).
    Raises {!Srcloc.Error} on any front-end diagnostic. *)

val compile_result : ?optimize:bool -> string -> (Ir.Prog.t, string) result
(** Like {!compile} but rendering front-end diagnostics to a string. *)
