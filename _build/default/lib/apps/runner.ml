let run_adaptive ?fuel ?heap_size ?stack_size
    (applied : Defenses.Defense.applied) ~seed ~input =
  let entropy = Crypto.Entropy.create ~seed in
  let st = applied.fresh_state ?heap_size ?stack_size entropy in
  Machine.Exec.set_input st input;
  Machine.Exec.run ?fuel st

let run_chunks ?fuel ?heap_size ?stack_size applied ~seed ~chunks =
  let remaining = ref chunks in
  let input _st max =
    match !remaining with
    | [] -> ""
    | chunk :: rest ->
        remaining := rest;
        if String.length chunk > max then String.sub chunk 0 max else chunk
  in
  run_adaptive ?fuel ?heap_size ?stack_size applied ~seed ~input
