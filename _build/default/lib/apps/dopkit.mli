(** Shared machinery for building DOP exploits against the app models.

    The central abstraction is {e how the attacker learns the frame
    layout}:

    - {!binary_offsets} — static analysis of the (defense-applied)
      binary.  Exact for every static defense; blind against
      Smokestack, whose binary only shows the opaque total slab.
    - {!guessed_offsets} — a brute-force guess: assume the frame is laid
      out by one of the Algorithm-1 permutations of the slot multiset
      the attacker knows from the source, picked by [seed].  Against a
      Smokestack frame this is right with probability ~1/n!.

    Both return offsets {e relative to a chosen buffer variable}, which
    is all a DOP overflow needs. *)

type rel_layout = (string * int) list
(** Variable name → signed byte offset from the buffer start. *)

val binary_offsets :
  Ir.Prog.t -> func:string -> buffer:string -> vars:string list -> rel_layout option
(** [None] when the binary doesn't reveal the buffer or any requested
    variable (the Smokestack case). *)

val chain_offsets :
  Ir.Prog.t ->
  chain:string list ->
  buffer:string * string ->
  vars:(string * string) list ->
  rel_layout option
(** Cross-frame variant: [chain] is the call path from outermost to the
    vulnerable function; [buffer] and [vars] are [(func, var)] pairs.
    Returned names are the variable names. *)

val guessed_offsets :
  slots:(string * int * int) list ->
  buffer:string ->
  vars:string list ->
  fid_slot:bool ->
  seed:int64 ->
  rel_layout
(** [slots] is the attacker's source-level knowledge:
    [(name, size, alignment)] per local in declaration order.
    [fid_slot] adds the hidden 8-byte Smokestack identifier slot to the
    multiset (Kerckhoffs: the defense design is public).  The guess is
    a uniformly drawn Algorithm-1 row over those slots. *)

val guessed_slab_offsets :
  slots:(string * int * int) list ->
  vars:string list ->
  fid_slot:bool ->
  seed:int64 ->
  (string * int) list
(** Like {!guessed_offsets} but offsets are relative to the slab base —
    what an attacker combines with the [__ss_total] address visible in
    the hardened binary to aim an absolute write. *)

val goal_in_output : string -> Machine.Exec.stats -> bool
(** Does the program's output contain the marker? *)
