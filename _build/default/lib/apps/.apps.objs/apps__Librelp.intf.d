lib/apps/librelp.mli: Attacks Defenses Ir Lazy
