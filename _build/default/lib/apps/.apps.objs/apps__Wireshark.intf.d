lib/apps/wireshark.mli: Attacks Defenses Ir Lazy
