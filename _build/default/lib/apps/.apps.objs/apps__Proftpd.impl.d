lib/apps/proftpd.ml: Attacks Char Defenses Dopkit Int64 List Minic Runner String Sutil
