lib/apps/runner.mli: Defenses Machine
