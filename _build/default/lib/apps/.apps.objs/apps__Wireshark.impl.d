lib/apps/wireshark.ml: Attacks Defenses Dopkit Int64 List Minic Runner String Sutil
