lib/apps/synth.ml: Attacks Defenses Dopkit Int64 Ir Lazy List Machine Minic Runner String
