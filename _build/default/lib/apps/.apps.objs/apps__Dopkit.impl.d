lib/apps/dopkit.ml: Array Attacks Fun Hashtbl Ir List Machine Option Smokestack String Sutil
