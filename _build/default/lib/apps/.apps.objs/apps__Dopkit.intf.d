lib/apps/dopkit.mli: Ir Machine
