lib/apps/spec.mli: Ir Lazy
