lib/apps/runner.ml: Crypto Defenses Machine String
