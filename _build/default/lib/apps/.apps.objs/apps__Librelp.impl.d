lib/apps/librelp.ml: Array Attacks Char Defenses Dopkit Int64 List Machine Minic Option Printf Rng Runner Smokestack String Sutil
