lib/apps/proftpd.mli: Attacks Defenses Ir Lazy
