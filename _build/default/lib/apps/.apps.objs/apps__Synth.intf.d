lib/apps/synth.mli: Attacks Defenses Ir Lazy
