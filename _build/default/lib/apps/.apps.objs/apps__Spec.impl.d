lib/apps/spec.ml: Buffer Char Ir Lazy List Minic Printf Proftpd String
