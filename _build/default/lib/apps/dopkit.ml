type rel_layout = (string * int) list

let binary_offsets prog ~func ~buffer ~vars =
  match Ir.Prog.find_func prog func with
  | None -> None
  | Some f -> (
      let frame = Attacks.Layout.frame_of_func f in
      match Attacks.Layout.var_offset frame buffer with
      | None -> None
      | Some b ->
          let resolved =
            List.map
              (fun v ->
                Option.map (fun o -> (v, o - b)) (Attacks.Layout.var_offset frame v))
              vars
          in
          if List.exists Option.is_none resolved then None
          else Some (List.filter_map Fun.id resolved))

let chain_offsets prog ~chain ~buffer ~vars =
  let rows = Attacks.Layout.chain prog chain in
  let resolved =
    List.map
      (fun (func, var) ->
        Option.map
          (fun d -> (var, d))
          (Attacks.Layout.distance rows ~from_:buffer ~to_:(func, var)))
      vars
  in
  if List.exists Option.is_none resolved then None
  else Some (List.filter_map Fun.id resolved)

let guess_table ~slots ~fid_slot ~seed =
  let slots = if fid_slot then slots @ [ ("__ss_fid", 8, 8) ] else slots in
  let n = List.length slots in
  let rng = Sutil.Simrng.create ~seed in
  let arr = Array.of_list slots in
  Sutil.Simrng.shuffle rng arr;
  (* Lay the guessed order out exactly as the defense would (its design
     is public): oversized frames are decoded at runtime into a slab
     that starts with a u32-per-slot scratch area, smaller ones start at
     the slab base. *)
  let scratch =
    if n > Smokestack.Config.default.max_exhaustive_vars then
      Sutil.Align.align_up (4 * n) ~alignment:16
    else 0
  in
  let offsets = Hashtbl.create 16 in
  let ind = ref scratch in
  Array.iter
    (fun (name, size, alignment) ->
      ind := Sutil.Align.align_up !ind ~alignment;
      Hashtbl.replace offsets name !ind;
      ind := !ind + size)
    arr;
  offsets

let find_slot offsets v =
  match Hashtbl.find_opt offsets v with
  | Some o -> o
  | None -> invalid_arg ("Apps.Dopkit: no slot named " ^ v)

let guessed_offsets ~slots ~buffer ~vars ~fid_slot ~seed =
  let offsets = guess_table ~slots ~fid_slot ~seed in
  let base = find_slot offsets buffer in
  List.map (fun v -> (v, find_slot offsets v - base)) vars

let guessed_slab_offsets ~slots ~vars ~fid_slot ~seed =
  let offsets = guess_table ~slots ~fid_slot ~seed in
  List.map (fun v -> (v, find_slot offsets v)) vars

let goal_in_output marker (stats : Machine.Exec.stats) =
  let hay = stats.output and needle = marker in
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let found = ref false in
  for i = 0 to nh - nn do
    if (not !found) && String.sub hay i nn = needle then found := true
  done;
  !found
