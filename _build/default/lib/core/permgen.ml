type table = {
  offsets : int array array;
  totals : int array;
  max_total : int;
}

(* One row of Algorithm 1: place the allocations in the [p]-th
   lexical-order permutation, aligning each as it is placed, and record
   each allocation's offset indexed by its ORIGINAL position. *)
let row_for_index meta p =
  let n = Array.length meta in
  let order = Sutil.Fact.lehmer_decode ~n p in
  let indexes = Array.make n 0 in
  let ind = ref 0 in
  Array.iter
    (fun e ->
      let size, alignment = meta.(e) in
      ind := Sutil.Align.align_up !ind ~alignment;
      indexes.(e) <- !ind;
      ind := !ind + size)
    order;
  (indexes, !ind)

let generate ?shuffle meta =
  let n = Array.length meta in
  if n > Sutil.Fact.max_factorial_arg then
    invalid_arg "Smokestack.Permgen.generate: too many allocations";
  Array.iter
    (fun (size, alignment) ->
      if size < 0 then invalid_arg "Smokestack.Permgen.generate: negative size";
      if not (Sutil.Align.is_pow2 alignment) then
        invalid_arg "Smokestack.Permgen.generate: alignment not a power of two")
    meta;
  let rows = Sutil.Fact.factorial n in
  let offsets = Array.make rows [||] in
  let totals = Array.make rows 0 in
  for p = 0 to rows - 1 do
    let indexes, total = row_for_index meta p in
    offsets.(p) <- indexes;
    totals.(p) <- total
  done;
  (* Shuffle rows in tandem to break lexical adjacency. *)
  (match shuffle with
  | Some rng ->
      let order = Array.init rows Fun.id in
      Sutil.Simrng.shuffle rng order;
      let offsets' = Array.map (fun i -> offsets.(i)) order in
      let totals' = Array.map (fun i -> totals.(i)) order in
      Array.blit offsets' 0 offsets 0 rows;
      Array.blit totals' 0 totals 0 rows
  | None -> ());
  let max_total = Array.fold_left max 0 totals in
  { offsets; totals; max_total }

let layout_valid meta row =
  let n = Array.length meta in
  Array.length row = n
  && (let ok = ref true in
      for i = 0 to n - 1 do
        let _, alignment = meta.(i) in
        if not (Sutil.Align.is_aligned row.(i) ~alignment) then ok := false
      done;
      !ok)
  &&
  (* no overlap: sort intervals by start and check adjacency *)
  let intervals =
    Array.init n (fun i -> (row.(i), row.(i) + fst meta.(i)))
  in
  Array.sort compare intervals;
  let ok = ref true in
  for i = 1 to n - 1 do
    let _, prev_end = intervals.(i - 1) in
    let start, _ = intervals.(i) in
    if start < prev_end then ok := false
  done;
  !ok
