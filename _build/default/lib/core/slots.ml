type slot = {
  reg : Ir.Instr.reg;
  ty : Ir.Ty.t;
  size : int;
  alignment : int;
  var_name : string;
}

type t = { func_name : string; static_slots : slot list; vla_count : int }

let discover (f : Ir.Func.t) =
  let static_slots = ref [] in
  let vla_count = ref 0 in
  let entry = Ir.Func.entry f in
  List.iter
    (fun i ->
      match i with
      | Ir.Instr.Alloca { dst; ty; count = None; name } ->
          static_slots :=
            {
              reg = dst;
              ty;
              size = Ir.Ty.size ty;
              alignment = Ir.Ty.alignment ty;
              var_name = name;
            }
            :: !static_slots
      | Ir.Instr.Alloca { count = Some _; _ } -> incr vla_count
      | _ -> ())
    entry.instrs;
  (* VLAs can appear outside the entry block (e.g. in a scope entered
     conditionally); count them everywhere. *)
  List.iter
    (fun (b : Ir.Func.block) ->
      if b != entry then
        List.iter
          (function Ir.Instr.Alloca { count = Some _; _ } -> incr vla_count | _ -> ())
          b.instrs)
    f.blocks;
  { func_name = f.name; static_slots = List.rev !static_slots; vla_count = !vla_count }

let meta t =
  Array.of_list (List.map (fun s -> (s.size, s.alignment)) t.static_slots)

let total_static_bytes t =
  List.fold_left (fun acc s -> acc + s.size) 0 t.static_slots
