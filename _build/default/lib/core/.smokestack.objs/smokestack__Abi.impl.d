lib/core/abi.ml: Char Int64 String
