lib/core/entropy_an.mli: Format Pbox Permgen
