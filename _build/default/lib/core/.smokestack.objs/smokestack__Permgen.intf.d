lib/core/permgen.mli: Sutil
