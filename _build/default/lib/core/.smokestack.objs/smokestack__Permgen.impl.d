lib/core/permgen.ml: Array Fun Sutil
