lib/core/runtime.ml: Abi Array Config Crypto Fun Int64 Machine Pbox Rng Sutil
