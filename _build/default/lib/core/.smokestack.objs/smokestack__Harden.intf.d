lib/core/harden.mli: Config Crypto Ir Machine Pbox
