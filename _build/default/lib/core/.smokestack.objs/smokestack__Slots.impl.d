lib/core/slots.ml: Array Ir List
