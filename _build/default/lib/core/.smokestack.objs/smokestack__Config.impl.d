lib/core/config.ml: Printf Rng
