lib/core/instrument.mli: Config Ir Pbox Slots
