lib/core/entropy_an.ml: Array Format Fun Hashtbl List Option Pbox Permgen Sutil
