lib/core/pbox.ml: Array Buffer Char Config Hashtbl List Permgen String Sutil
