lib/core/slots.mli: Ir
