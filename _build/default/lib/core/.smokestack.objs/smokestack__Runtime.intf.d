lib/core/runtime.mli: Config Crypto Machine Pbox Rng
