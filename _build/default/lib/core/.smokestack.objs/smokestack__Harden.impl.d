lib/core/harden.ml: Abi Config Crypto Instrument Ir List Machine Pbox Runtime
