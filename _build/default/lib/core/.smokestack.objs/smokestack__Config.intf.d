lib/core/config.mli: Rng
