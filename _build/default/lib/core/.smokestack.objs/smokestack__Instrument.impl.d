lib/core/instrument.ml: Abi Array Config Int64 Ir List Option Pbox Printf Slots
