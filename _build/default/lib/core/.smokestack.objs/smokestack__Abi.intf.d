lib/core/abi.mli:
