lib/core/pbox.mli: Config Hashtbl Permgen
