(** Permutation engine — the paper's Algorithm 1.

    Given the [(size, alignment)] metadata of a function's [n] stack
    allocations, generates the offset table for all [n!] orderings: row
    [p] of the table gives, for each allocation {e in its original
    program order}, its byte offset from the frame base when the
    allocations are laid out in the [p]-th lexical-order permutation,
    with alignment padding inserted as needed ([ALIGN]).  The rows are
    then shuffled to break the lexical correlation between adjacent
    indices (§III-D).

    Alignment padding varies between permutations, which the paper
    notes is an extra entropy source: the same variable can land at
    offsets that no padding-free layout would produce. *)

type table = {
  offsets : int array array;
      (** [offsets.(row).(i)] = offset of original allocation [i] *)
  totals : int array;  (** frame bytes consumed by each row's layout *)
  max_total : int;  (** max over [totals]: the total-allocation size *)
}

val generate : ?shuffle:Sutil.Simrng.t -> (int * int) array -> table
(** [generate ?shuffle meta] runs Algorithm 1 on [meta] =
    [(size, alignment)] pairs in program order.  [shuffle], when given,
    permutes the finished rows (the paper always does; tests omit it to
    check lexical order).  Raises [Invalid_argument] if any alignment is
    not a power of two, or if [length meta] exceeds
    {!Sutil.Fact.max_factorial_arg}. *)

val row_for_index : (int * int) array -> int -> int array * int
(** [row_for_index meta p] computes just the [p]-th lexical-order row
    and its total — the on-demand variant used for frames too large to
    materialize (and by the property tests as an oracle against
    {!generate}). *)

val layout_valid : (int * int) array -> int array -> bool
(** [layout_valid meta row] checks the defining invariants of a row:
    every allocation is placed at an offset honouring its alignment,
    and no two allocations overlap. *)
