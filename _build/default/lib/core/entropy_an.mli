(** Quantitative entropy analysis of permuted frames.

    The paper argues security from the size of the permutation space;
    this module computes the numbers an attacker actually faces.  A DOP
    exploit must pin the offsets of a {e set} of slots simultaneously
    (the buffer plus every victim), so the relevant quantity is the
    probability that one uniformly drawn layout assigns that whole set
    the offsets of another draw — identical-shape slots and alignment
    degeneracy make this larger than [1/n!], which the paper's
    alignment-entropy remark cuts both ways.

    All numbers are exact counts over the materialized table (or over
    a sampled set of rows for dynamic bindings). *)

type slot_stats = {
  orig_index : int;
  distinct_offsets : int;
  collision_probability : float;
      (** probability two independent draws give this slot the same
          offset: Σ p_i² *)
}

type t = {
  rows : int;  (** layouts considered *)
  distinct_layouts : int;
  per_slot : slot_stats list;
  whole_frame_collision : float;
      (** probability two draws give the {e identical} full layout *)
  expected_bruteforce_attempts : float;
      (** 1 / whole-frame collision — the E8 prediction *)
}

val of_table : Permgen.table -> t
(** Analysis over an explicit table (unshuffled or shuffled alike). *)

val of_binding : Pbox.t -> Pbox.binding -> t
(** Analysis of a bound function's frame.  Exhaustive bindings use
    their materialized rows; dynamic bindings are sampled with 4096
    decoded layouts. *)

val subset_collision : Permgen.table -> slots:int list -> float
(** Probability that two independent draws agree on the offsets of all
    the given slots simultaneously — the chance a DOP payload crafted
    from one observed layout works against a fresh invocation. *)

val pp : Format.formatter -> t -> unit
