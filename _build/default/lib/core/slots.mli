(** Discovering stack allocations (paper §III-D).

    The analysis gathers, per function, the size and alignment of every
    automatic variable: the static allocas of the entry block (what the
    permutation engine will reorder) and the VLAs that must instead be
    padded at runtime. *)

type slot = {
  reg : Ir.Instr.reg;  (** register the alloca defines *)
  ty : Ir.Ty.t;
  size : int;
  alignment : int;
  var_name : string;
}

type t = {
  func_name : string;
  static_slots : slot list;  (** entry-block fixed-size allocas, program order *)
  vla_count : int;  (** dynamic allocas anywhere in the function *)
}

val discover : Ir.Func.t -> t

val meta : t -> (int * int) array
(** [(size, alignment)] per static slot, in program order — the
    permutation engine's input. *)

val total_static_bytes : t -> int
(** Sum of static slot sizes (no padding). *)
