type slot_stats = {
  orig_index : int;
  distinct_offsets : int;
  collision_probability : float;
}

type t = {
  rows : int;
  distinct_layouts : int;
  per_slot : slot_stats list;
  whole_frame_collision : float;
  expected_bruteforce_attempts : float;
}

let collision_of_counts total counts =
  let t = float_of_int total in
  Hashtbl.fold
    (fun _ c acc ->
      let p = float_of_int c /. t in
      acc +. (p *. p))
    counts 0.

let of_rows (rows : int array array) =
  let n_rows = Array.length rows in
  if n_rows = 0 then
    {
      rows = 0;
      distinct_layouts = 0;
      per_slot = [];
      whole_frame_collision = 1.;
      expected_bruteforce_attempts = 1.;
    }
  else begin
    let n_slots = Array.length rows.(0) in
    let per_slot =
      List.init n_slots (fun i ->
          let counts = Hashtbl.create 16 in
          Array.iter
            (fun row ->
              let o = row.(i) in
              Hashtbl.replace counts o
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
            rows;
          {
            orig_index = i;
            distinct_offsets = Hashtbl.length counts;
            collision_probability = collision_of_counts n_rows counts;
          })
    in
    let layout_counts = Hashtbl.create 64 in
    Array.iter
      (fun row ->
        let key = Array.to_list row in
        Hashtbl.replace layout_counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt layout_counts key)))
      rows;
    let whole = collision_of_counts n_rows layout_counts in
    {
      rows = n_rows;
      distinct_layouts = Hashtbl.length layout_counts;
      per_slot;
      whole_frame_collision = whole;
      expected_bruteforce_attempts = (if whole > 0. then 1. /. whole else infinity);
    }
  end

let of_table (table : Permgen.table) = of_rows table.offsets

let subset_collision (table : Permgen.table) ~slots =
  let rows = table.offsets in
  let n_rows = Array.length rows in
  if n_rows = 0 then 1.
  else begin
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun row ->
        let key = List.map (fun s -> row.(s)) slots in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
      rows;
    collision_of_counts n_rows counts
  end

let of_binding (pbox : Pbox.t) (b : Pbox.binding) =
  match b.mode with
  | Pbox.Exhaustive { entry_index; canon_of_orig; _ } ->
      let e = pbox.entries.(entry_index) in
      let rows =
        Array.init e.rows_materialized (fun row ->
            ignore canon_of_orig;
            Pbox.lookup_offsets pbox b ~row)
      in
      of_rows rows
  | Pbox.Dynamic { dyn_id } ->
      (* sample the runtime decoder's distribution *)
      let dyn = pbox.dyns.(dyn_id) in
      let n = Array.length dyn.metas in
      let rng = Sutil.Simrng.create ~seed:0xEA7L in
      let rows =
        Array.init 4096 (fun _ ->
            let order = Array.init n Fun.id in
            Sutil.Simrng.shuffle rng order;
            let offsets = Array.make n 0 in
            let ind = ref dyn.scratch_bytes in
            Array.iter
              (fun slot ->
                let size, alignment = dyn.metas.(slot) in
                ind := Sutil.Align.align_up !ind ~alignment;
                offsets.(slot) <- !ind;
                ind := !ind + size)
              order;
            offsets)
      in
      of_rows rows

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%d layout(s), %d distinct; whole-frame collision %.2e (expected \
     brute-force attempts %.1f)@,"
    t.rows t.distinct_layouts t.whole_frame_collision
    t.expected_bruteforce_attempts;
  List.iter
    (fun s ->
      Format.fprintf fmt "slot %d: %d offsets, collision %.3f@," s.orig_index
        s.distinct_offsets s.collision_probability)
    t.per_slot;
  Format.fprintf fmt "@]"
