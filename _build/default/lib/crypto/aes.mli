(** AES-128 block cipher (FIPS-197), software implementation.

    The paper accelerates its permutation-index generator with the Intel
    AES-NI instructions; this is the software equivalent.  The number of
    rounds is configurable to reproduce the paper's {b AES-1} (one
    round, low security) and {b AES-10} (ten rounds, standard AES)
    operating points.

    State layout follows FIPS-197: the 16-byte block is a 4x4 column-
    major byte matrix.  Only encryption is provided — counter mode never
    needs the inverse cipher. *)

type key
(** An expanded AES-128 key schedule (11 round keys). *)

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key. Raises [Invalid_argument] if
    [String.length k <> 16]. *)

val standard_rounds : int
(** 10 — the FIPS-197 round count for AES-128. *)

val encrypt_block : ?rounds:int -> key -> string -> string
(** [encrypt_block ?rounds key block] encrypts one 16-byte block.
    [rounds] defaults to {!standard_rounds}; it must be in [1, 10].
    With fewer than 10 rounds the schedule is truncated: the cipher runs
    [rounds - 1] full rounds plus the final (MixColumns-free) round,
    mirroring how a reduced-round AES-NI loop behaves.  Raises
    [Invalid_argument] on a block that is not 16 bytes. *)

val sbox : int -> int
(** The AES S-box, exposed for the known-answer tests. *)
