(** AES counter-mode pseudo-random stream.

    This reproduces the paper's permutation-index generator: AES in
    counter mode, keyed and nonce'd from a true-random source, with the
    universal function-call counter as the counter input.  The key and
    nonce are refreshed after [rekey_interval] blocks, matching the
    paper's "updated when a counter reaches a certain maximum value". *)

type t

val create :
  ?rounds:int -> ?rekey_interval:int -> entropy:(int -> string) -> unit -> t
(** [create ?rounds ?rekey_interval ~entropy ()] builds a CTR stream.
    [entropy n] must return [n] fresh true-random bytes (used for the
    key and nonce, at creation and at every rekey).  [rounds] defaults
    to 10, [rekey_interval] to 65536 blocks. *)

val next_block : t -> string
(** The next 16-byte keystream block. *)

val next_u64 : t -> int64
(** The next 64 bits of keystream (one block yields two values). *)

val blocks_generated : t -> int
(** Total blocks produced since creation (across rekeys). *)

val rekeys : t -> int
(** Number of rekey events so far. *)

val rounds : t -> int
