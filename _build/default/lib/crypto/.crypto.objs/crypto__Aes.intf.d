lib/crypto/aes.mli:
