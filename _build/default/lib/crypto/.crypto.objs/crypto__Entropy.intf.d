lib/crypto/entropy.mli:
