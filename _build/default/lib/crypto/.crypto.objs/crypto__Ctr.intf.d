lib/crypto/ctr.mli:
