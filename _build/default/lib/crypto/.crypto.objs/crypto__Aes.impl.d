lib/crypto/aes.ml: Array Char Lazy String
