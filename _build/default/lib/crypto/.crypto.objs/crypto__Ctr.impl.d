lib/crypto/ctr.ml: Aes Char Int64 String
