lib/crypto/entropy.ml: Bytes Char Hashtbl Int64 Sutil Unix
