type t = { rng : Sutil.Simrng.t; mutable draws : int }

let create ~seed = { rng = Sutil.Simrng.create ~seed; draws = 0 }

let system () =
  let seed =
    Int64.logxor
      (Int64.of_float (Unix.gettimeofday () *. 1e6))
      (Int64.of_int (Hashtbl.hash (Unix.getpid ())))
  in
  create ~seed

let u64 t =
  t.draws <- t.draws + 1;
  Sutil.Simrng.next_u64 t.rng

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = u64 t in
    let take = min 8 (n - !i) in
    for j = 0 to take - 1 do
      Bytes.set b (!i + j)
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * j)) land 0xff))
    done;
    i := !i + take
  done;
  Bytes.to_string b

let draws t = t.draws
