(** Simulated true-random entropy source.

    Stands in for the paper's hardware sources (Intel RDRAND, and
    /dev/random which the paper rejects for stalling).  The defining
    property for the threat model is that the source's state is {e not}
    resident in attacker-readable memory — on real hardware it lives
    on-chip.  Here the state lives in the OCaml heap, outside the
    virtual machine's address space, which models the same boundary.

    The source is seedable so experiments are reproducible; an attack
    that could predict its output would have to read state the VM
    cannot address, which is exactly what the paper assumes is
    impossible. *)

type t

val create : seed:int64 -> t
(** [create ~seed] builds a deterministic-but-opaque entropy source.
    Distinct seeds give independent streams. *)

val system : unit -> t
(** An entropy source seeded from the OS (for the CLI tools; tests and
    experiments should use {!create}). *)

val bytes : t -> int -> string
(** [bytes t n] draws [n] fresh bytes. *)

val u64 : t -> int64
(** One 64-bit draw — the RDRAND analogue. *)

val draws : t -> int
(** Number of primitive 64-bit draws so far (throughput accounting). *)
