type t = {
  rounds : int;
  rekey_interval : int;
  entropy : int -> string;
  mutable key : Aes.key;
  mutable nonce : string; (* 8 bytes *)
  mutable counter : int64; (* universal call counter *)
  mutable since_rekey : int;
  mutable total_blocks : int;
  mutable rekeys : int;
  mutable pending : int64 option; (* second half of the last block *)
}

let fresh_key entropy = Aes.expand_key (entropy 16)

let create ?(rounds = Aes.standard_rounds) ?(rekey_interval = 65536) ~entropy () =
  if rekey_interval <= 0 then
    invalid_arg "Crypto.Ctr.create: rekey_interval must be positive";
  {
    rounds;
    rekey_interval;
    entropy;
    key = fresh_key entropy;
    nonce = entropy 8;
    counter = 0L;
    since_rekey = 0;
    total_blocks = 0;
    rekeys = 0;
    pending = None;
  }

let rekey t =
  t.key <- fresh_key t.entropy;
  t.nonce <- t.entropy 8;
  t.since_rekey <- 0;
  t.rekeys <- t.rekeys + 1

let next_block t =
  if t.since_rekey >= t.rekey_interval then rekey t;
  let ctr = t.counter in
  t.counter <- Int64.add t.counter 1L;
  t.since_rekey <- t.since_rekey + 1;
  t.total_blocks <- t.total_blocks + 1;
  let block =
    String.init 16 (fun i ->
        if i < 8 then t.nonce.[i]
        else Char.chr (Int64.to_int (Int64.shift_right_logical ctr ((i - 8) * 8)) land 0xff))
  in
  Aes.encrypt_block ~rounds:t.rounds t.key block

let u64_of_sub s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let next_u64 t =
  match t.pending with
  | Some v ->
      t.pending <- None;
      v
  | None ->
      let block = next_block t in
      t.pending <- Some (u64_of_sub block 8);
      u64_of_sub block 0

let blocks_generated t = t.total_blocks
let rekeys t = t.rekeys
let rounds t = t.rounds
