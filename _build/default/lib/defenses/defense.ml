type t =
  | No_defense
  | Stack_base
  | Forrest_pad
  | Static_perm
  | Canary
  | Smokestack of Smokestack.Config.t

let name = function
  | No_defense -> "none"
  | Stack_base -> "stack-base"
  | Forrest_pad -> "forrest-pad"
  | Static_perm -> "static-perm"
  | Canary -> "canary"
  | Smokestack config ->
      Printf.sprintf "smokestack(%s)" (Rng.Scheme.name config.Smokestack.Config.scheme)

let all ?(smokestack = Smokestack.Config.default) () =
  [ No_defense; Stack_base; Forrest_pad; Static_perm; Canary; Smokestack smokestack ]

type applied = {
  defense : t;
  prog : Ir.Prog.t;
  fresh_state :
    ?heap_size:int -> ?stack_size:int -> Crypto.Entropy.t -> Machine.Exec.state;
  pbox_bytes : int;
}

let apply ?(seed = 1L) defense prog =
  match defense with
  | No_defense ->
      let prog = Ir.Prog.copy prog in
      {
        defense;
        prog;
        fresh_state =
          (fun ?heap_size ?stack_size _entropy ->
            Machine.Exec.prepare ?heap_size ?stack_size prog);
        pbox_bytes = 0;
      }
  | Stack_base ->
      let prog = Ir.Prog.copy prog in
      {
        defense;
        prog;
        fresh_state =
          (fun ?heap_size ?stack_size entropy ->
            let st = Machine.Exec.prepare ?heap_size ?stack_size prog in
            Stack_base.install ~entropy st;
            st);
        pbox_bytes = 0;
      }
  | Forrest_pad ->
      let prog = Ir.Prog.copy prog in
      Ir.Pass.run [ Forrest.pass (Sutil.Simrng.create ~seed) ] prog;
      {
        defense;
        prog;
        fresh_state =
          (fun ?heap_size ?stack_size _entropy ->
            Machine.Exec.prepare ?heap_size ?stack_size prog);
        pbox_bytes = 0;
      }
  | Static_perm ->
      let prog = Ir.Prog.copy prog in
      Ir.Pass.run [ Static_perm.pass (Sutil.Simrng.create ~seed) ] prog;
      {
        defense;
        prog;
        fresh_state =
          (fun ?heap_size ?stack_size _entropy ->
            Machine.Exec.prepare ?heap_size ?stack_size prog);
        pbox_bytes = 0;
      }
  | Canary ->
      let prog = Ir.Prog.copy prog in
      Ir.Pass.run [ Canary.pass ] prog;
      {
        defense;
        prog;
        fresh_state =
          (fun ?heap_size ?stack_size entropy ->
            let st = Machine.Exec.prepare ?heap_size ?stack_size prog in
            Canary.install ~entropy st;
            st);
        pbox_bytes = 0;
      }
  | Smokestack config ->
      let hardened = Smokestack.Harden.harden ~seed config prog in
      {
        defense;
        prog = hardened.prog;
        fresh_state =
          (fun ?heap_size ?stack_size entropy ->
            Smokestack.Harden.prepare ?heap_size ?stack_size ~entropy hardened);
        pbox_bytes = Smokestack.Harden.pbox_bytes hardened;
      }
