(** Static (compile-time) stack layout randomization (Giuffrida et al.,
    the paper's §II-B third transformation).

    Shuffles the order of each function's entry-block allocas once, at
    compile time.  Relative distances between locals become unknown
    a priori — but identical on every run and every call, so a single
    memory disclosure (or an offline brute force over at most [n!]
    layouts) de-randomizes the binary for good, which is exactly how
    the paper's §II-C exploit defeats it. *)

val pass : Sutil.Simrng.t -> Ir.Pass.t
