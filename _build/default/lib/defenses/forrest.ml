let pad_choices = [| 8; 16; 24; 32; 40; 48; 56; 64 |]
let frame_threshold = 16

let pad_function rng (f : Ir.Func.t) =
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
      let static_bytes =
        List.fold_left
          (fun acc i ->
            match i with
            | Ir.Instr.Alloca { ty; count = None; _ } -> acc + Ir.Ty.size ty
            | _ -> acc)
          0 entry.instrs
      in
      if static_bytes > frame_threshold then begin
        let pad = pad_choices.(Sutil.Simrng.int rng ~bound:(Array.length pad_choices)) in
        let dst = Ir.Func.fresh_reg f in
        entry.instrs <-
          Ir.Instr.Alloca
            { dst; ty = Ir.Ty.Array (Ir.Ty.I8, pad); count = None; name = "__pad" }
          :: entry.instrs
      end

let pass rng =
  Ir.Pass.Module_pass
    {
      name = "forrest-random-padding";
      run = (fun prog -> List.iter (pad_function rng) prog.Ir.Prog.funcs);
    }
