(** Unified interface over all evaluated defenses.

    The security experiments run each attack against every defense
    through this one type, so a row of the paper's penetration-test
    comparison is literally a fold over {!all}. *)

type t =
  | No_defense
  | Stack_base  (** per-run stack base pad; static layout *)
  | Forrest_pad  (** per-build random frame padding *)
  | Static_perm  (** per-build alloca permutation *)
  | Canary  (** classic terminator canary *)
  | Smokestack of Smokestack.Config.t  (** per-invocation permutation *)

val name : t -> string

val all : ?smokestack:Smokestack.Config.t -> unit -> t list
(** All six, Smokestack last (default config {!Smokestack.Config.default}). *)

type applied = {
  defense : t;
  prog : Ir.Prog.t;  (** transformed copy; the input program is untouched *)
  fresh_state :
    ?heap_size:int -> ?stack_size:int -> Crypto.Entropy.t -> Machine.Exec.state;
      (** prepare a runnable state, installing whatever runtime the
          defense needs; per-run randomness comes from the entropy
          source, so distinct sources model service restarts *)
  pbox_bytes : int;  (** 0 except for Smokestack *)
}

val apply : ?seed:int64 -> t -> Ir.Prog.t -> applied
(** Compile-time application.  [seed] fixes the build-time random
    choices (Forrest pad sizes, static permutation, P-BOX row
    shuffles). *)
