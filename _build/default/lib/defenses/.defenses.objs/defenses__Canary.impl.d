lib/defenses/canary.ml: Array Crypto Forrest Int64 Ir List Machine
