lib/defenses/static_perm.mli: Ir Sutil
