lib/defenses/defense.ml: Canary Crypto Forrest Ir Machine Printf Rng Smokestack Stack_base Static_perm Sutil
