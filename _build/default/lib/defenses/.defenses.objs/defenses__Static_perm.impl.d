lib/defenses/static_perm.ml: Array Ir List Sutil
