lib/defenses/forrest.mli: Ir Sutil
