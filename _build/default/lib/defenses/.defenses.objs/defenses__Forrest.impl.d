lib/defenses/forrest.ml: Array Ir List Sutil
