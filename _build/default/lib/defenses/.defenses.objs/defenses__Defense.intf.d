lib/defenses/defense.mli: Crypto Ir Machine Smokestack
