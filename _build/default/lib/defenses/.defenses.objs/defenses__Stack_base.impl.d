lib/defenses/stack_base.ml: Crypto Int64 Machine Sutil
