lib/defenses/canary.mli: Crypto Ir Machine
