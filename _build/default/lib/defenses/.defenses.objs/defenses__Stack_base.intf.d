lib/defenses/stack_base.mli: Crypto Machine
