(** Classic stack-smashing-protector canary (the default protection
    Smokestack replaces in the paper's evaluation setup).

    Each function with a frame larger than {!Forrest.frame_threshold}
    gets a guard slot allocated {e above} its other locals (adjacent to
    the caller's frame).  The prologue stores the per-run canary value;
    every epilogue reloads it and asserts equality via the
    [canary.fail] intrinsic.

    A linear stack overflow must cross the guard and is detected at
    function return — but a non-linear overflow (librelp's
    snprintf gap) or a targeted DOP write that never touches the guard
    sails through: canaries do not stop DOP. *)

val pass : Ir.Pass.t

val install : entropy:Crypto.Entropy.t -> Machine.Exec.state -> unit
(** Registers the [canary.get] / [canary.fail] intrinsics with a fresh
    per-run guard value. *)

val intr_get : string
val intr_check : string
