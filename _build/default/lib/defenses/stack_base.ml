let max_pad = 64 * 1024

let install ~entropy (st : Machine.Exec.state) =
  let raw = Int64.to_int (Int64.logand (Crypto.Entropy.u64 entropy) 0xffffL) in
  let pad = Sutil.Align.align_down (raw mod max_pad) ~alignment:16 in
  st.sp <- st.sp - pad
