let shuffle_function rng (f : Ir.Func.t) =
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
      let allocas, others =
        List.partition
          (function Ir.Instr.Alloca { count = None; _ } -> true | _ -> false)
          entry.instrs
      in
      if List.length allocas > 1 then begin
        let arr = Array.of_list allocas in
        Sutil.Simrng.shuffle rng arr;
        (* Allocas stay at the head of the block (their registers must
           still dominate every use); only their relative order — and
           hence the frame layout — changes. *)
        entry.instrs <- Array.to_list arr @ others
      end

let pass rng =
  Ir.Pass.Module_pass
    {
      name = "static-stack-permutation";
      run = (fun prog -> List.iter (shuffle_function rng) prog.Ir.Prog.funcs);
    }
