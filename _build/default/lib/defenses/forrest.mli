(** Random padding at function entry (Forrest et al., HotOS 1997 — the
    paper's §II-B second transformation).

    At {e compile} time, every function whose static frame exceeds 16
    bytes (the original heuristic for "contains a buffer") receives one
    padding allocation whose size is drawn uniformly from
    [{8, 16, 24, ..., 64}].  The pad is inserted {e before} the other
    allocas, shifting the whole frame; because the choice is fixed per
    build, a disclosure of any one frame instance reveals it for every
    future call — the weakness §II-C exploits. *)

val pad_choices : int array
(** [|8; 16; 24; 32; 40; 48; 56; 64|] — the 8 possible paddings. *)

val frame_threshold : int
(** 16 bytes. *)

val pass : Sutil.Simrng.t -> Ir.Pass.t
(** The compile-time pass; the generator supplies the per-function
    padding choices (per-build randomness). *)
