(** Stack base address randomization (ASLR for the stack — the paper's
    §II-B first transformation).

    A random, 16-byte-aligned pad is subtracted from the initial stack
    pointer at program start, so every absolute stack address differs
    between runs.  Relative distances between a vulnerable buffer and
    its victims are untouched — which is why the paper's DOP attacks,
    which only need relative offsets, go straight through it. *)

val max_pad : int
(** Exclusive bound on the pad (64 KiB). *)

val install : entropy:Crypto.Entropy.t -> Machine.Exec.state -> unit
(** Applies the per-run pad to the prepared state's stack pointer. *)
