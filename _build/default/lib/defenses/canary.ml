let intr_get = "canary.get"
let intr_check = "canary.check"

let protect_function (f : Ir.Func.t) =
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
      let static_bytes =
        List.fold_left
          (fun acc i ->
            match i with
            | Ir.Instr.Alloca { ty; count = None; _ } -> acc + Ir.Ty.size ty
            | _ -> acc)
          0 entry.instrs
      in
      if static_bytes > Forrest.frame_threshold then begin
        let slot = Ir.Func.fresh_reg f in
        let r_val = Ir.Func.fresh_reg f in
        (* First alloca = highest address = the attack path between
           this frame's buffers and the caller's locals. *)
        entry.instrs <-
          Ir.Instr.Alloca
            { dst = slot; ty = Ir.Ty.I64; count = None; name = "__guard" }
          :: Ir.Instr.Intrinsic { dst = Some r_val; name = intr_get; args = [] }
          :: Ir.Instr.Store
               { ty = Ir.Ty.I64; value = Ir.Instr.Reg r_val; addr = Ir.Instr.Reg slot }
          :: entry.instrs;
        List.iter
          (fun (b : Ir.Func.block) ->
            match b.term with
            | Ir.Instr.Ret _ ->
                let r_cur = Ir.Func.fresh_reg f in
                b.instrs <-
                  b.instrs
                  @ [
                      Ir.Instr.Load
                        { dst = r_cur; ty = Ir.Ty.I64; addr = Ir.Instr.Reg slot };
                      Ir.Instr.Intrinsic
                        {
                          dst = None;
                          name = intr_check;
                          args = [ Ir.Instr.Reg r_cur ];
                        };
                    ]
            | _ -> ())
          f.blocks
      end

let pass =
  Ir.Pass.Module_pass
    {
      name = "stack-canary";
      run = (fun prog -> List.iter protect_function prog.Ir.Prog.funcs);
    }

let install ~entropy (st : Machine.Exec.state) =
  (* Terminator-style canary: a NUL low byte frustrates string-based
     linear overflows. *)
  let value =
    Int64.logand (Crypto.Entropy.u64 entropy) 0xffffffffffffff00L
  in
  Machine.Exec.register_intrinsic st intr_get (fun st _ ->
      Machine.Exec.charge st 1.;
      Some value);
  Machine.Exec.register_intrinsic st intr_check (fun st args ->
      Machine.Exec.charge st 2.;
      if not (Int64.equal args.(0) value) then
        raise (Machine.Exec.Detect "stack canary clobbered");
      None)
