lib/attacks/layout.mli: Ir
