lib/attacks/overflow.mli:
