lib/attacks/layout.ml: Hashtbl Ir List Machine String Sutil
