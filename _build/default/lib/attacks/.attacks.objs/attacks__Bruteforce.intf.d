lib/attacks/bruteforce.mli: Verdict
