lib/attacks/verdict.ml: List Machine Printf
