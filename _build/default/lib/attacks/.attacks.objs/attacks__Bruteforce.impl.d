lib/attacks/bruteforce.ml: List Verdict
