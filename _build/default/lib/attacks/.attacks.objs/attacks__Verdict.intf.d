lib/attacks/verdict.mli: Machine
