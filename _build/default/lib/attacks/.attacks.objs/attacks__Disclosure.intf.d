lib/attacks/disclosure.mli: Machine
