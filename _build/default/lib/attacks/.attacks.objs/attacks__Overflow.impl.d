lib/attacks/overflow.ml: Bytes Char Int64 List Printf String
