lib/attacks/disclosure.ml: Char Int64 List Machine String
