(** Memory-disclosure primitives (threat model §III-B: full read access
    to mapped memory).

    Attack code calls these from inside an input callback — i.e. while
    the vulnerable program is live — to scan the stack for recognizable
    values ("using the semantics of the underlying program to reverse
    engineer a randomized stack layout", §II-C).  For the static
    defenses the layout learned in one probe run carries over to the
    exploit run; against Smokestack it expires with the invocation. *)

val read : Machine.Exec.state -> int -> int -> string
(** [read st addr n] — raw disclosure of any mapped bytes. *)

val read_u64 : Machine.Exec.state -> int -> int64
val read_u32 : Machine.Exec.state -> int -> int64

val find_u64 : Machine.Exec.state -> base:int -> len:int -> int64 -> int list
(** Offsets within [base, base+len) (8-byte stride 1 scan) where the
    64-bit little-endian value occurs. *)

val find_bytes : Machine.Exec.state -> base:int -> len:int -> string -> int list

val live_stack : Machine.Exec.state -> int * int
(** [(base, len)] of the currently live stack region [sp, stack_top). *)
