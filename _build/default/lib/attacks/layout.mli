(** Static stack-layout analysis — the attacker's "binary analysis"
    step (threat model §III-B: the adversary can obtain the binary).

    Replays the machine's allocation rule (descending, aligned bumps)
    over a function's entry-block allocas, yielding each named
    variable's offset.  On a Smokestack-hardened binary the per-variable
    allocas are gone — only the opaque [__ss_total] slab remains — so
    the analysis comes back empty for exactly the variables the attack
    needs, which is the point. *)

type frame = {
  fname : string;
  vars : (string * int) list;
      (** offsets relative to the frame's {e entry} stack pointer
          (negative, descending) in allocation order *)
  frame_bytes : int;  (** total static frame consumption *)
}

val frame_of_func : Ir.Func.t -> frame

val var_offset : frame -> string -> int option
(** Offset of a named variable; [None] if the binary does not reveal
    it. *)

val chain : Ir.Prog.t -> string list -> (string * string * int) list
(** [chain prog [f1; f2; ...]] simulates the call chain [f1 -> f2 ->
    ...]: each function's frame is placed below its caller's.  Returns
    [(func, var, offset)] triples relative to [f1]'s entry stack
    pointer.  This is how a cross-frame overflow distance (librelp) is
    computed from the binary. *)

val global_addrs : Ir.Prog.t -> (string * int) list
(** Loaded address of every global — static analysis of the data and
    rodata layout, which no evaluated defense randomizes.  (Obtained by
    actually loading the program into a throwaway state, so it cannot
    drift from the machine's placement rule.) *)

val distance :
  (string * string * int) list ->
  from_:string * string ->
  to_:string * string ->
  int option
(** Byte distance between two (func, var) addresses in a simulated
    chain: positive when [to_] lies above (at a higher address than)
    [from_]. *)
