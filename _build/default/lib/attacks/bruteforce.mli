(** Brute-force attack driver (threat model §III-B: a finite number of
    attempts against a service that restarts after each crash). *)

type result = {
  attempts : int;  (** attempts actually made *)
  succeeded : bool;
  verdicts : Verdict.t list;  (** per-attempt verdicts, first first *)
}

val run : max_attempts:int -> (int -> Verdict.t) -> result
(** [run ~max_attempts attempt] calls [attempt i] for [i = 0, 1, ...]
    until it returns {!Verdict.Success} or the budget is exhausted. *)

val expected_attempts : space:int -> float
(** Mean attempts to hit a uniformly random 1-in-[space] layout with
    independent per-invocation re-randomization (geometric
    distribution): exactly [space]. *)
