type t = Success | Crashed of string | Detected of string | No_effect

let classify (outcome : Machine.Exec.outcome) ~goal_met =
  if goal_met then Success
  else
    match outcome with
    | Machine.Exec.Exit _ -> No_effect
    | Machine.Exec.Fault { fault; func } ->
        Crashed
          (Printf.sprintf "%s in %s" (Machine.Memory.fault_to_string fault) func)
    | Machine.Exec.Detected { reason; func } ->
        Detected (Printf.sprintf "%s in %s" reason func)
    | Machine.Exec.Fuel_exhausted -> Crashed "fuel exhausted (runaway)"

let blocked = function Success -> false | _ -> true

let to_string = function
  | Success -> "SUCCESS"
  | Crashed m -> "crashed: " ^ m
  | Detected m -> "detected: " ^ m
  | No_effect -> "no effect"

let success_rate vs =
  if vs = [] then 0.
  else
    float_of_int (List.length (List.filter (fun v -> not (blocked v)) vs))
    /. float_of_int (List.length vs)

let summarize vs =
  let count p = List.length (List.filter p vs) in
  Printf.sprintf "%d/%d success, %d crashed, %d detected, %d no-effect"
    (count (fun v -> v = Success))
    (List.length vs)
    (count (function Crashed _ -> true | _ -> false))
    (count (function Detected _ -> true | _ -> false))
    (count (fun v -> v = No_effect))
