type result = { attempts : int; succeeded : bool; verdicts : Verdict.t list }

let run ~max_attempts attempt =
  let rec go i acc =
    if i >= max_attempts then
      { attempts = i; succeeded = false; verdicts = List.rev acc }
    else
      let v = attempt i in
      if not (Verdict.blocked v) then
        { attempts = i + 1; succeeded = true; verdicts = List.rev (v :: acc) }
      else go (i + 1) (v :: acc)
  in
  go 0 []

let expected_attempts ~space = float_of_int space
