let read (st : Machine.Exec.state) addr n = Machine.Memory.read_bytes st.mem addr n
let read_u64 (st : Machine.Exec.state) addr = Machine.Memory.load st.mem ~width:8 addr
let read_u32 (st : Machine.Exec.state) addr = Machine.Memory.load st.mem ~width:4 addr

let find_bytes (st : Machine.Exec.state) ~base ~len needle =
  let hay = read st base len in
  let out = ref [] in
  let nl = String.length needle in
  if nl > 0 then
    for i = 0 to String.length hay - nl do
      if String.sub hay i nl = needle then out := i :: !out
    done;
  List.rev !out

let find_u64 st ~base ~len v =
  let needle =
    String.init 8 (fun i ->
        Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  in
  find_bytes st ~base ~len needle

let live_stack (st : Machine.Exec.state) = (st.sp, st.stack_top - st.sp)
