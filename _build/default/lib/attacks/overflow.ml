type write = { rel : int; data : string }

let le_bytes width v =
  String.init width (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))

let u64 rel v = { rel; data = le_bytes 8 v }
let u32 rel v = { rel; data = le_bytes 4 v }
let bytes rel data = { rel; data }

let craft ?(filler = 'A') ~len writes =
  let writes = List.sort (fun a b -> compare a.rel b.rel) writes in
  let total =
    List.fold_left
      (fun acc w ->
        if w.rel < 0 then invalid_arg "Attacks.Overflow.craft: negative offset";
        max acc (w.rel + String.length w.data))
      len writes
  in
  let buf = Bytes.make total filler in
  let last_end = ref (-1) in
  List.iter
    (fun w ->
      if w.rel < !last_end then
        invalid_arg
          (Printf.sprintf "Attacks.Overflow.craft: overlapping write at %d" w.rel);
      Bytes.blit_string w.data 0 buf w.rel (String.length w.data);
      last_end := w.rel + String.length w.data)
    writes;
  Bytes.to_string buf
