type frame = {
  fname : string;
  vars : (string * int) list;
  frame_bytes : int;
}

(* Must mirror Machine.Exec.do_alloca: sp -= size, then align down. *)
let frame_of_func (f : Ir.Func.t) =
  match f.blocks with
  | [] -> { fname = f.name; vars = []; frame_bytes = 0 }
  | entry :: _ ->
      let sp = ref 0 in
      let vars = ref [] in
      List.iter
        (fun i ->
          match i with
          | Ir.Instr.Alloca { ty; count = None; name; _ } ->
              sp :=
                Sutil.Align.align_down (!sp - Ir.Ty.size ty)
                  ~alignment:(max 1 (Ir.Ty.alignment ty));
              vars := (name, !sp) :: !vars
          | _ -> ())
        entry.instrs;
      { fname = f.name; vars = List.rev !vars; frame_bytes = - !sp }

let var_offset frame name = List.assoc_opt name frame.vars

(* The running stack pointer is threaded through the whole chain:
   alignment padding depends on the actual entry sp of each frame, so
   composing per-function offsets computed from a zero base would be
   wrong whenever a caller's frame size is not 8-aligned. *)
let chain (prog : Ir.Prog.t) funcs =
  let sp = ref 0 in
  List.concat_map
    (fun fname ->
      match Ir.Prog.find_func prog fname with
      | None -> invalid_arg ("Attacks.Layout.chain: unknown function " ^ fname)
      | Some f ->
          let rows = ref [] in
          (match f.blocks with
          | [] -> ()
          | entry :: _ ->
              List.iter
                (fun i ->
                  match i with
                  | Ir.Instr.Alloca { ty; count = None; name; _ } ->
                      sp :=
                        Sutil.Align.align_down (!sp - Ir.Ty.size ty)
                          ~alignment:(max 1 (Ir.Ty.alignment ty));
                      rows := (fname, name, !sp) :: !rows
                  | _ -> ())
                entry.instrs);
          List.rev !rows)
    funcs

let global_addrs (prog : Ir.Prog.t) =
  let st = Machine.Exec.prepare ~heap_size:4096 ~stack_size:4096 prog in
  Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) st.globals []

let distance rows ~from_:(ff, fv) ~to_:(tf, tv) =
  let find f v =
    List.find_map
      (fun (f', v', off) ->
        if String.equal f f' && String.equal v v' then Some off else None)
      rows
  in
  match (find ff fv, find tf tv) with
  | Some a, Some b -> Some (b - a)
  | _ -> None
