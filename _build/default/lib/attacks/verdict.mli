(** Attack outcome classification.

    A defense "blocks" an attack if the attacker's goal predicate does
    not hold afterwards — whether because the corrupted program
    crashed (the paper's restart-after-crash service model), a defense
    check fired, or the payload landed on the wrong bytes and did
    nothing. *)

type t =
  | Success  (** goal predicate met: the attack worked *)
  | Crashed of string  (** memory fault — unintended corruption *)
  | Detected of string  (** FID check / canary fired *)
  | No_effect  (** program finished normally, goal unmet *)

val classify : Machine.Exec.outcome -> goal_met:bool -> t
(** [goal_met] is evaluated by the caller from the final state/output
    (e.g. "the secret appeared on the wire"). A met goal counts as
    {!constructor:Success} even if the program crashed afterwards. *)

val blocked : t -> bool
val to_string : t -> string
val summarize : t list -> string
(** e.g. ["3/100 success, 82 crashed, 15 detected"]. *)

val success_rate : t list -> float
