(** Tiny literal string substitution (no [Str] dependency). *)

val replace : needle:string -> by:string -> string -> string
(** Replace every occurrence; returns the input unchanged when the
    needle is absent. Raises [Invalid_argument] on an empty needle. *)
