(** Running workloads under defenses, with the input chunking the
    I/O-bound applications expect (one network message per read). *)

val chunk_size : int
(** 48 bytes per [read_input] answer. *)

val run :
  ?fuel:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Apps.Spec.workload ->
  Machine.Exec.outcome * Machine.Exec.stats
(** One process run of the workload.  Raises [Failure] if the program
    did not exit cleanly — a workload crash means the harness itself is
    broken, and the experiment must not silently absorb that. *)

val baseline :
  ?seed:int64 -> Apps.Spec.workload -> Machine.Exec.stats
(** No-defense run (memoized per workload). *)

val smokestack_stats :
  ?seed:int64 ->
  Smokestack.Config.t ->
  Apps.Spec.workload ->
  Machine.Exec.stats * int
(** Hardened run; also returns the P-BOX bytes of the hardened
    binary. *)
