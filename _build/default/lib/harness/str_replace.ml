let replace ~needle ~by s =
  if String.length needle = 0 then
    invalid_arg "Harness.Str_replace.replace: empty needle";
  let buf = Buffer.create (String.length s) in
  let n = String.length s and m = String.length needle in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = needle then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf
