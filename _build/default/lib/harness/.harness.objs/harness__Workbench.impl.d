lib/harness/workbench.ml: Apps Defenses Hashtbl Lazy Machine Printf String
