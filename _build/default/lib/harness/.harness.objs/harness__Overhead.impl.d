lib/harness/overhead.ml: Apps Buffer List Printf Rng Smokestack Sutil Workbench
