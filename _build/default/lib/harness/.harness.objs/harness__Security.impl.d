lib/harness/security.ml: Apps Attacks Buffer Defenses Int64 Lazy List Printf Rng Smokestack String Sutil
