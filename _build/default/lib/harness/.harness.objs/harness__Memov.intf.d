lib/harness/memov.mli: Apps Sutil
