lib/harness/security.mli: Attacks Defenses Sutil
