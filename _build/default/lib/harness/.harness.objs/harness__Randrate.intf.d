lib/harness/randrate.mli: Rng Sutil
