lib/harness/workbench.mli: Apps Defenses Machine Smokestack
