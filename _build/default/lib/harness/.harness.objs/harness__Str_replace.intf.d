lib/harness/str_replace.mli:
