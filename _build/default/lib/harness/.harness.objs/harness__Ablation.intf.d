lib/harness/ablation.mli: Smokestack Sutil
