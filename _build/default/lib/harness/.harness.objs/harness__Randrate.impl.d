lib/harness/randrate.ml: Buffer Crypto List Machine Minic Printf Rng Smokestack Str_replace Sutil
