lib/harness/memov.ml: Apps Buffer List Printf Smokestack Sutil Workbench
