lib/harness/ablation.ml: Apps Buffer Lazy List Printf Smokestack Sutil Workbench
