lib/harness/overhead.mli: Apps Rng Sutil
