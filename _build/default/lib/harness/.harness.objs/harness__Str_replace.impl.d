lib/harness/str_replace.ml: Buffer String
