(** Textual rendering of IR programs (LLVM-flavoured, for humans). *)

val func_to_string : Func.t -> string
val prog_to_string : Prog.t -> string
val pp_func : Format.formatter -> Func.t -> unit
val pp_prog : Format.formatter -> Prog.t -> unit
