let pp_func fmt (f : Func.t) =
  let pp_param fmt (r, ty) = Format.fprintf fmt "%a %%r%d" Ty.pp ty r in
  let ret = match f.returns with Some ty -> Ty.to_string ty | None -> "void" in
  Format.fprintf fmt "define %s @%s(%a)" ret f.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_param)
    f.params;
  if f.attrs <> [] then
    Format.fprintf fmt " #[%s]" (String.concat "," f.attrs);
  Format.fprintf fmt " {@\n";
  List.iter
    (fun (b : Func.block) ->
      Format.fprintf fmt "%s:@\n" b.label;
      List.iter (fun i -> Format.fprintf fmt "  %a@\n" Instr.pp i) b.instrs;
      Format.fprintf fmt "  %a@\n" Instr.pp_terminator b.term)
    f.blocks;
  Format.fprintf fmt "}@\n"

let pp_global fmt (g : Prog.global) =
  Format.fprintf fmt "@%s = %s %a, init %d bytes@\n" g.gname
    (if g.gwritable then "global" else "constant")
    Ty.pp g.gty (String.length g.ginit)

let pp_prog fmt (p : Prog.t) =
  List.iter (fun e -> Format.fprintf fmt "declare @%s@\n" e) p.externs;
  List.iter (pp_global fmt) p.globals;
  List.iter (fun f -> Format.fprintf fmt "@\n%a" pp_func f) p.funcs

let func_to_string f = Format.asprintf "%a" pp_func f
let prog_to_string p = Format.asprintf "%a" pp_prog p
