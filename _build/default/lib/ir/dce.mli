(** Dead code elimination.

    Deletes side-effect-free instructions whose result register is
    never read anywhere in the function: arithmetic, comparisons,
    casts, geps, loads (a dead load's only observable effect would be a
    fault on an undefined access — which C lets us drop) and unused
    allocas.  Stores whose target alloca is write-only (never loaded,
    never escaping) are dead too, which in turn frees the alloca.
    Calls and intrinsics are never removed.  Runs to a local
    fixpoint. *)

val run : Prog.t -> Func.t -> unit
val pass : Pass.t
