(** Imperative IR construction.

    A builder holds a current insertion block within a function; every
    emit-style call appends there and returns the defined register (if
    any).  The MiniC lowering and the hand-built app models both
    construct IR through this interface. *)

type t

val create : Func.t -> t
(** Builder positioned at a fresh entry block named ["entry"]. *)

val on : Func.t -> Func.block -> t
(** Builder positioned at an existing block. *)

val func : t -> Func.t
val current_block : t -> Func.block

val start_block : t -> string -> Func.block
(** Creates a block with the given label and moves the insertion point
    to it. *)

val switch_to : t -> Func.block -> unit
val fresh_label : t -> string -> string

(** {1 Emitters} — each appends an instruction and returns its result
    register. *)

val alloca : t -> ?name:string -> Ty.t -> Instr.reg
val alloca_vla : t -> ?name:string -> Ty.t -> count:Instr.operand -> Instr.reg
val load : t -> Ty.t -> Instr.operand -> Instr.reg
val store : t -> Ty.t -> value:Instr.operand -> addr:Instr.operand -> unit
val gep : t -> Instr.operand -> offset:int -> Instr.reg
val gep_idx : t -> Instr.operand -> offset:int -> index:Instr.operand -> scale:int -> Instr.reg
val binop : t -> Instr.binop -> Instr.operand -> Instr.operand -> Instr.reg
val icmp : t -> Instr.icmp -> Instr.operand -> Instr.operand -> Instr.reg
val select : t -> Instr.operand -> Instr.operand -> Instr.operand -> Instr.reg
val sext : t -> width:int -> Instr.operand -> Instr.reg
val trunc : t -> width:int -> Instr.operand -> Instr.reg
val call : t -> ?result:bool -> string -> Instr.operand list -> Instr.reg option
val call_ind : t -> ?result:bool -> Instr.operand -> Instr.operand list -> Instr.reg option
val intrinsic : t -> ?result:bool -> string -> Instr.operand list -> Instr.reg option

(** {1 Terminators} *)

val ret : t -> Instr.operand option -> unit
val br : t -> string -> unit
val cond_br : t -> Instr.operand -> if_true:string -> if_false:string -> unit
val terminated : t -> bool
(** True once the current block's terminator has been set explicitly. *)
