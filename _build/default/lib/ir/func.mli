(** IR basic blocks and functions. *)

type block = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

type t = {
  name : string;
  params : (Instr.reg * Ty.t) list;
  returns : Ty.t option;  (** [None] means void *)
  mutable blocks : block list;  (** entry block first *)
  mutable next_reg : Instr.reg;  (** first unused virtual register *)
  mutable attrs : string list;  (** free-form attributes, e.g. ["smokestack"] once hardened *)
}

val create :
  name:string -> params:(Instr.reg * Ty.t) list -> returns:Ty.t option -> t
(** Creates a function with no blocks; [next_reg] starts past the
    parameter registers. *)

val entry : t -> block
(** The entry block. Raises [Invalid_argument] if the function has no
    blocks. *)

val find_block : t -> string -> block option
val fresh_reg : t -> Instr.reg

val add_block : t -> label:string -> block
(** Appends an empty block (terminator [Unreachable] until set). *)

val iter_instrs : t -> (Instr.t -> unit) -> unit
(** Iterates instructions of all blocks in block order. *)

val allocas : t -> (Instr.reg * Ty.t * Instr.operand option * string) list
(** All [Alloca] instructions in the function, in program order:
    [(dst, ty, vla_count, name)].  This is the paper's "discovering
    stack allocations" input. *)

val has_attr : t -> string -> bool
val add_attr : t -> string -> unit
val reg_count : t -> int
