(** The -O1 pipeline: constant folding, DCE and CFG simplification,
    iterated until the program stops shrinking.

    Run it {e before} hardening — exactly where the paper's passes sit
    in the LLVM pipeline — so Smokestack permutes the allocas that
    survive optimization. *)

val passes : Pass.t list
(** One round: [constfold; store-to-load-forwarding; dce;
    simplify-cfg]. *)

val optimize : ?max_rounds:int -> Prog.t -> unit
(** Iterates {!passes} until a fixpoint (or [max_rounds], default 8),
    verifying after each pass. *)

val instr_count : Prog.t -> int
(** Instructions across all functions — the shrinkage metric. *)
