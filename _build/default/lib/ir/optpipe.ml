let passes = [ Constfold.pass; Memfwd.pass; Dce.pass; Simplify_cfg.pass ]

let instr_count (prog : Prog.t) =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Func.block) -> acc + List.length b.instrs + 1)
        acc f.blocks)
    0 prog.funcs

let optimize ?(max_rounds = 8) prog =
  let rec go round prev =
    if round < max_rounds then begin
      Pass.run passes prog;
      let now = instr_count prog in
      if now < prev then go (round + 1) now
    end
  in
  go 0 (instr_count prog)
