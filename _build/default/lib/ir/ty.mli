(** IR types with x86-64 (System V) size and alignment rules.

    Smokestack's analysis passes need exactly two facts about every
    stack allocation: its byte size and its alignment requirement,
    including for aggregates where the paper notes the computation is
    recursive (element alignments) with the aggregate aligned to its
    largest element.  This module is the single source of truth for
    both. *)

type t =
  | I1  (** boolean, stored as one byte *)
  | I8
  | I16
  | I32
  | I64
  | Ptr  (** untyped 8-byte pointer *)
  | Array of t * int  (** [Array (elt, n)], [n >= 0] *)
  | Struct of { name : string; fields : t list }

val size : t -> int
(** Byte size, including internal and trailing struct padding. *)

val alignment : t -> int
(** Alignment requirement: natural for scalars; for arrays, the element
    alignment; for structs, the maximum field alignment (recursively),
    per the paper's §IV-A. *)

val struct_field_offsets : t list -> int list
(** Byte offset of each field once alignment padding is inserted. *)

val is_scalar : t -> bool
(** True for [I1]..[I64] and [Ptr]. *)

val scalar_width : t -> int
(** Byte width of a scalar type. Raises [Invalid_argument] on
    aggregates. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
