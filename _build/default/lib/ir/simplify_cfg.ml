let successors (b : Func.block) =
  match b.term with
  | Instr.Ret _ | Instr.Unreachable -> []
  | Instr.Br l -> [ l ]
  | Instr.Cond_br { if_true; if_false; _ } -> [ if_true; if_false ]

let retarget (b : Func.block) ~from ~to_ =
  let r l = if String.equal l from then to_ else l in
  b.term <-
    (match b.term with
    | Instr.Br l -> Instr.Br (r l)
    | Instr.Cond_br { cond; if_true; if_false } ->
        Instr.Cond_br { cond; if_true = r if_true; if_false = r if_false }
    | t -> t)

let remove_unreachable (f : Func.t) =
  match f.blocks with
  | [] -> false
  | entry :: _ ->
      let reachable = Hashtbl.create 16 in
      let rec visit label =
        if not (Hashtbl.mem reachable label) then begin
          Hashtbl.add reachable label ();
          match Func.find_block f label with
          | Some b -> List.iter visit (successors b)
          | None -> ()
        end
      in
      visit entry.label;
      let before = List.length f.blocks in
      f.blocks <-
        List.filter (fun (b : Func.block) -> Hashtbl.mem reachable b.label) f.blocks;
      List.length f.blocks <> before

let collapse_trivial (f : Func.t) =
  match f.blocks with
  | [] | [ _ ] -> false
  | entry :: rest ->
      let changed = ref false in
      (* thread empty forwarding blocks *)
      List.iter
        (fun (b : Func.block) ->
          match (b.instrs, b.term) with
          | [], Instr.Br target when not (String.equal target b.label) ->
              List.iter
                (fun (p : Func.block) ->
                  if p != b then retarget p ~from:b.label ~to_:target)
                f.blocks;
              changed := true
          | _ -> ())
        rest;
      ignore entry;
      (* fold cond_br with equal arms *)
      List.iter
        (fun (b : Func.block) ->
          match b.term with
          | Instr.Cond_br { if_true; if_false; _ }
            when String.equal if_true if_false ->
              b.term <- Instr.Br if_true;
              changed := true
          | _ -> ())
        f.blocks;
      !changed

(* One merge per call (the caller runs to a fixpoint): merging while
   iterating would let a just-merged block be visited again. *)
let merge_linear (f : Func.t) =
  let preds = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun l ->
          Hashtbl.replace preds l
            (1 + Option.value ~default:0 (Hashtbl.find_opt preds l)))
        (successors b))
    f.blocks;
  let candidate =
    List.find_map
      (fun (b : Func.block) ->
        match b.term with
        | Instr.Br l when not (String.equal l b.label) -> (
            match (Func.find_block f l, Hashtbl.find_opt preds l) with
            | Some succ, Some 1 when succ != List.hd f.blocks -> Some (b, succ)
            | _ -> None)
        | _ -> None)
      f.blocks
  in
  match candidate with
  | Some (b, succ) ->
      b.instrs <- b.instrs @ succ.instrs;
      b.term <- succ.term;
      f.blocks <- List.filter (fun x -> x != succ) f.blocks;
      true
  | None -> false

let run (_prog : Prog.t) (f : Func.t) =
  let continue_ = ref true in
  while !continue_ do
    let a = remove_unreachable f in
    let b = collapse_trivial f in
    let c = remove_unreachable f in
    let d = merge_linear f in
    continue_ := a || b || c || d
  done

let pass = Pass.Function_pass { name = "simplify-cfg"; run }
