module IntSet = Set.Make (Int)

(* A "private" alloca's address never leaves load/store/constant-gep
   position, so nothing outside this function's visible instructions
   can alias it.  Dynamic-index geps disqualify the root: writes
   through them could land on any offset. *)
let private_allocas (f : Func.t) =
  let defs = Hashtbl.create 32 in
  Func.iter_instrs f (fun i ->
      match Instr.defined_reg i with
      | Some r -> Hashtbl.replace defs r i
      | None -> ());
  let rec root_of r =
    match Hashtbl.find_opt defs r with
    | Some (Instr.Alloca { count = None; _ }) -> Some r
    | Some (Instr.Gep { base = Instr.Reg b; index = None; _ }) -> root_of b
    | _ -> None
  in
  (* collect disqualifying uses *)
  let bad = ref IntSet.empty in
  let disqualify operand =
    match operand with
    | Instr.Reg r -> (
        match root_of r with
        | Some root -> bad := IntSet.add root !bad
        | None -> ())
    | _ -> ()
  in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun i ->
          match i with
          | Instr.Load { addr; _ } -> (
              (* fine unless the address chain is not const-resolvable *)
              match addr with Instr.Reg _ -> () | _ -> disqualify addr)
          | Instr.Store { value; addr = _; _ } -> disqualify value
          | Instr.Gep { base; index; _ } -> (
              match index with
              | Some _ -> disqualify base (* dynamic index *)
              | None -> ())
          | _ -> List.iter disqualify (Instr.operands i))
        b.instrs;
      List.iter disqualify (Instr.terminator_operands b.term))
    f.blocks;
  let privates = ref IntSet.empty in
  Func.iter_instrs f (fun i ->
      match i with
      | Instr.Alloca { dst; count = None; _ } when not (IntSet.mem dst !bad) ->
          privates := IntSet.add dst !privates
      | _ -> ());
  (!privates, root_of, defs)

let run (_prog : Prog.t) (f : Func.t) =
  let privates, _root_of, defs = private_allocas f in
  let rec resolve r =
    match Hashtbl.find_opt defs r with
    | Some (Instr.Alloca { count = None; _ }) when IntSet.mem r privates ->
        Some (r, 0)
    | Some (Instr.Gep { base = Instr.Reg b; offset; index = None; _ }) ->
        Option.map (fun (root, off) -> (root, off + offset)) (resolve b)
    | _ -> None
  in
  List.iter
    (fun (b : Func.block) ->
      (* (root, off, width) -> forwarded operand *)
      let known : (int * int * int, Instr.operand) Hashtbl.t = Hashtbl.create 16 in
      let invalidate_overlaps root off width =
        let stale =
          Hashtbl.fold
            (fun ((r, o, w) as key) _ acc ->
              if r = root && o < off + width && off < o + w then key :: acc
              else acc)
            known []
        in
        List.iter (Hashtbl.remove known) stale
      in
      let invalidate_value_reg d =
        let stale =
          Hashtbl.fold
            (fun key v acc -> if v = Instr.Reg d then key :: acc else acc)
            known []
        in
        List.iter (Hashtbl.remove known) stale
      in
      b.instrs <-
        List.map
          (fun i ->
            let i' =
              match i with
              | Instr.Load { dst; ty; addr = Instr.Reg r } -> (
                  match resolve r with
                  | Some (root, off) -> (
                      let width = Ty.scalar_width ty in
                      match Hashtbl.find_opt known (root, off, width) with
                      | Some v -> Instr.Trunc { dst; width; value = v }
                      | None -> i)
                  | None -> i)
              | _ -> i
            in
            (match i' with
            | Instr.Store { ty; value; addr = Instr.Reg r } -> (
                match resolve r with
                | Some (root, off) ->
                    let width = Ty.scalar_width ty in
                    invalidate_overlaps root off width;
                    Hashtbl.replace known (root, off, width) value
                | None -> ())
            | Instr.Store _ -> ()
            | Instr.Call _ | Instr.Call_ind _ | Instr.Intrinsic _ ->
                Hashtbl.reset known
            | _ -> ());
            (match Instr.defined_reg i' with
            | Some d -> invalidate_value_reg d
            | None -> ());
            i')
          b.instrs)
    f.blocks

let pass = Pass.Function_pass { name = "store-to-load-forwarding"; run }
