lib/ir/optpipe.mli: Pass Prog
