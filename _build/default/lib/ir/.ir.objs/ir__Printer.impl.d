lib/ir/printer.ml: Format Func Instr List Prog String Ty
