lib/ir/constfold.ml: Func Hashtbl Instr Int64 List Option Pass Prog Sutil
