lib/ir/func.ml: Instr List Option Printf String Ty
