lib/ir/constfold.mli: Func Pass Prog
