lib/ir/builder.ml: Func Hashtbl Instr Printf
