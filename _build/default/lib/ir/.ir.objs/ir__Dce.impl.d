lib/ir/dce.ml: Func Hashtbl Instr Int List Pass Prog Set
