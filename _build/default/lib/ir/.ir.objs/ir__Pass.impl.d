lib/ir/pass.ml: Format Func Hashtbl List Option Printf Prog String Sys Verifier
