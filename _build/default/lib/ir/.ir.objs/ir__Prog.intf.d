lib/ir/prog.mli: Func Ty
