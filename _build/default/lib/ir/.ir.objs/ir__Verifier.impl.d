lib/ir/verifier.ml: Array Format Fun Func Hashtbl Instr Int List Option Printf Prog Set String Ty
