lib/ir/memfwd.mli: Func Pass Prog
