lib/ir/instr.mli: Format Ty
