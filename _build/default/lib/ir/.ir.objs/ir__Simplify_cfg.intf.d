lib/ir/simplify_cfg.mli: Func Pass Prog
