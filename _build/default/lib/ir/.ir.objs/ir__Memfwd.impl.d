lib/ir/memfwd.ml: Func Hashtbl Instr Int List Option Pass Prog Set Ty
