lib/ir/pass.mli: Func Prog
