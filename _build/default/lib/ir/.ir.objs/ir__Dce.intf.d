lib/ir/dce.mli: Func Pass Prog
