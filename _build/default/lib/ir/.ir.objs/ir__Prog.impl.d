lib/ir/prog.ml: Func List Option Printf String Ty
