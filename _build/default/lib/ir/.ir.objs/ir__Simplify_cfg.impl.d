lib/ir/simplify_cfg.ml: Func Hashtbl Instr List Option Pass Prog String
