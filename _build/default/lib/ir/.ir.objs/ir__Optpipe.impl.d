lib/ir/optpipe.ml: Constfold Dce Func List Memfwd Pass Prog Simplify_cfg
