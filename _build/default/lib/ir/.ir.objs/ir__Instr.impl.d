lib/ir/instr.ml: Format Option Ty
