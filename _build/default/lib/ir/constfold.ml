let fold_binop op a b =
  let open Instr in
  match op with
  | Sdiv | Udiv | Srem | Urem when Int64.equal b 0L -> None (* keep the fault *)
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Sdiv -> Some (Int64.div a b)
  | Udiv -> Some (Int64.unsigned_div a b)
  | Srem -> Some (Int64.rem a b)
  | Urem -> Some (Int64.unsigned_rem a b)
  | And -> Some (Int64.logand a b)
  | Or -> Some (Int64.logor a b)
  | Xor -> Some (Int64.logxor a b)
  | Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Lshr -> Some (Int64.shift_right_logical a (Int64.to_int b land 63))
  | Ashr -> Some (Int64.shift_right a (Int64.to_int b land 63))

let fold_icmp op a b =
  let open Instr in
  let r =
    match op with
    | Eq -> Int64.equal a b
    | Ne -> not (Int64.equal a b)
    | Slt -> Int64.compare a b < 0
    | Sle -> Int64.compare a b <= 0
    | Sgt -> Int64.compare a b > 0
    | Sge -> Int64.compare a b >= 0
    | Ult -> Int64.unsigned_compare a b < 0
    | Ule -> Int64.unsigned_compare a b <= 0
  in
  if r then 1L else 0L

(* Algebraic identities that fire even with one symbolic operand. *)
let fold_identity op (lhs : Instr.operand) (rhs : Instr.operand) =
  let open Instr in
  match (op, lhs, rhs) with
  | Add, v, Imm 0L | Add, Imm 0L, v -> Some v
  | Sub, v, Imm 0L -> Some v
  | Mul, v, Imm 1L | Mul, Imm 1L, v -> Some v
  | Mul, _, Imm 0L | Mul, Imm 0L, _ -> Some (Imm 0L)
  | And, _, Imm 0L | And, Imm 0L, _ -> Some (Imm 0L)
  | And, v, Imm -1L | And, Imm -1L, v -> Some v
  | Or, v, Imm 0L | Or, Imm 0L, v -> Some v
  | Xor, v, Imm 0L | Xor, Imm 0L, v -> Some v
  | Shl, v, Imm 0L | Lshr, v, Imm 0L | Ashr, v, Imm 0L -> Some v
  | _ -> None

let run (_prog : Prog.t) (f : Func.t) =
  List.iter
    (fun (b : Func.block) ->
      (* constants and copies live per-block: reg -> immediate / reg,
         invalidated on redefinition of either side *)
      let consts : (Instr.reg, int64) Hashtbl.t = Hashtbl.create 16 in
      let copies : (Instr.reg, Instr.reg) Hashtbl.t = Hashtbl.create 16 in
      let subst (o : Instr.operand) =
        match o with
        | Instr.Reg r -> (
            match Hashtbl.find_opt consts r with
            | Some v -> Instr.Imm v
            | None -> (
                match Hashtbl.find_opt copies r with
                | Some s -> Instr.Reg s
                | None -> o))
        | _ -> o
      in
      let rewrite (i : Instr.t) : Instr.t =
        match i with
        | Instr.Alloca _ -> i
        | Instr.Load { dst; ty; addr } -> Instr.Load { dst; ty; addr = subst addr }
        | Instr.Store { ty; value; addr } ->
            Instr.Store { ty; value = subst value; addr = subst addr }
        | Instr.Gep { dst; base; offset; index } ->
            Instr.Gep
              {
                dst;
                base = subst base;
                offset;
                index = Option.map (fun (i, s) -> (subst i, s)) index;
              }
        | Instr.Binop { dst; op; lhs; rhs } ->
            Instr.Binop { dst; op; lhs = subst lhs; rhs = subst rhs }
        | Instr.Icmp { dst; op; lhs; rhs } ->
            Instr.Icmp { dst; op; lhs = subst lhs; rhs = subst rhs }
        | Instr.Select { dst; cond; if_true; if_false } ->
            Instr.Select
              {
                dst;
                cond = subst cond;
                if_true = subst if_true;
                if_false = subst if_false;
              }
        | Instr.Sext { dst; width; value } ->
            Instr.Sext { dst; width; value = subst value }
        | Instr.Trunc { dst; width; value } ->
            Instr.Trunc { dst; width; value = subst value }
        | Instr.Call { dst; callee; args } ->
            Instr.Call { dst; callee; args = List.map subst args }
        | Instr.Call_ind { dst; callee; args } ->
            Instr.Call_ind { dst; callee = subst callee; args = List.map subst args }
        | Instr.Intrinsic { dst; name; args } ->
            Instr.Intrinsic { dst; name; args = List.map subst args }
      in
      let note (i : Instr.t) =
        (* a defined register invalidates any recorded constant or copy
           (in either direction); a foldable definition records anew *)
        (match Instr.defined_reg i with
        | Some r ->
            Hashtbl.remove consts r;
            Hashtbl.remove copies r;
            let stale =
              Hashtbl.fold (fun d s acc -> if s = r then d :: acc else acc) copies []
            in
            List.iter (Hashtbl.remove copies) stale
        | None -> ());
        match i with
        | Instr.Binop { dst; op; lhs = Instr.Imm a; rhs = Instr.Imm b } -> (
            match fold_binop op a b with
            | Some v -> Hashtbl.replace consts dst v
            | None -> ())
        | Instr.Icmp { dst; op; lhs = Instr.Imm a; rhs = Instr.Imm b } ->
            Hashtbl.replace consts dst (fold_icmp op a b)
        | Instr.Select { dst; cond = Instr.Imm c; if_true; if_false } -> (
            match (if Int64.equal c 0L then if_false else if_true) with
            | Instr.Imm v -> Hashtbl.replace consts dst v
            | _ -> ())
        | Instr.Sext { dst; width; value = Instr.Imm v } ->
            Hashtbl.replace consts dst (Sutil.Bytecodec.sext ~width v)
        | Instr.Trunc { dst; width; value = Instr.Imm v } ->
            Hashtbl.replace consts dst (Sutil.Bytecodec.zext ~width v)
        | Instr.Binop { dst; op; lhs; rhs } -> (
            match fold_identity op lhs rhs with
            | Some (Instr.Imm v) -> Hashtbl.replace consts dst v
            | Some (Instr.Reg s) when s <> dst -> Hashtbl.replace copies dst s
            | _ -> ())
        | _ -> ()
      in
      b.instrs <-
        List.map
          (fun i ->
            let i = rewrite i in
            note i;
            i)
          b.instrs;
      (* fold a constant conditional branch *)
      b.term <-
        (match b.term with
        | Instr.Cond_br { cond; if_true; if_false } -> (
            match subst cond with
            | Instr.Imm c ->
                Instr.Br (if Int64.equal c 0L then if_false else if_true)
            | cond -> Instr.Cond_br { cond; if_true; if_false })
        | Instr.Ret (Some v) -> Instr.Ret (Some (subst v))
        | t -> t))
    f.blocks

let pass = Pass.Function_pass { name = "constfold"; run }
