type global = { gname : string; gty : Ty.t; ginit : string; gwritable : bool }

type t = {
  mutable globals : global list;
  mutable funcs : Func.t list;
  mutable externs : string list;
}

let create () = { globals = []; funcs = []; externs = [] }

let find_global t name =
  List.find_opt (fun g -> String.equal g.gname name) t.globals

let find_func t name =
  List.find_opt (fun (f : Func.t) -> String.equal f.name name) t.funcs

let is_extern t name = List.mem name t.externs

let add_global t ~name ~ty ?(init = "") ~writable () =
  if Option.is_some (find_global t name) then
    invalid_arg (Printf.sprintf "Ir.Prog.add_global: duplicate global %s" name);
  let size = Ty.size ty in
  if String.length init > size then
    invalid_arg
      (Printf.sprintf "Ir.Prog.add_global: init for %s is %d bytes, type holds %d"
         name (String.length init) size);
  t.globals <- t.globals @ [ { gname = name; gty = ty; ginit = init; gwritable = writable } ]

let add_func t (f : Func.t) =
  if Option.is_some (find_func t f.name) then
    invalid_arg (Printf.sprintf "Ir.Prog.add_func: duplicate function %s" f.name);
  t.funcs <- t.funcs @ [ f ]

let add_extern t name =
  if not (is_extern t name) then t.externs <- t.externs @ [ name ]

let copy_block (b : Func.block) : Func.block =
  { label = b.label; instrs = b.instrs; term = b.term }

let copy_func (f : Func.t) : Func.t =
  {
    name = f.name;
    params = f.params;
    returns = f.returns;
    blocks = List.map copy_block f.blocks;
    next_reg = f.next_reg;
    attrs = f.attrs;
  }

let copy t =
  {
    globals = t.globals;
    funcs = List.map copy_func t.funcs;
    externs = t.externs;
  }
