type t =
  | Function_pass of { name : string; run : Prog.t -> Func.t -> unit }
  | Module_pass of { name : string; run : Prog.t -> unit }

let name = function Function_pass { name; _ } | Module_pass { name; _ } -> name

let timing_table : (string, float) Hashtbl.t = Hashtbl.create 16

let record name dt =
  let prev = Option.value ~default:0. (Hashtbl.find_opt timing_table name) in
  Hashtbl.replace timing_table name (prev +. dt)

let run ?(verify = true) passes prog =
  List.iter
    (fun pass ->
      let t0 = Sys.time () in
      (match pass with
      | Function_pass { run; _ } -> List.iter (run prog) prog.Prog.funcs
      | Module_pass { run; _ } -> run prog);
      record (name pass) (Sys.time () -. t0);
      if verify then
        match Verifier.verify prog with
        | [] -> ()
        | errors ->
            let report =
              String.concat "\n"
                (List.map (Format.asprintf "%a" Verifier.pp_error) errors)
            in
            failwith
              (Printf.sprintf "pass %s broke IR invariants:\n%s" (name pass) report))
    passes

let timings () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) timing_table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset_timings () = Hashtbl.reset timing_table
