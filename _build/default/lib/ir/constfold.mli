(** Constant folding and copy propagation.

    Folds [binop]/[icmp]/[select]/cast instructions whose operands are
    immediates, propagates single-assignment immediate registers into
    later uses within a block, and turns conditional branches on
    constant conditions into unconditional ones.  Runs to a fixpoint
    with {!Dce} in the {!Optpipe} pipeline.

    Registers are not SSA, so propagation is per-block and a register
    is only treated as constant between its definition and the next
    redefinition. *)

val run : Prog.t -> Func.t -> unit
val pass : Pass.t
