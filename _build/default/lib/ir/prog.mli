(** IR compilation units (LLVM modules).

    A program owns its globals and functions.  Globals carry their
    initial bytes and a writability flag; read-only globals land in the
    machine's rodata segment, which the threat model says the attacker
    cannot write — this is where Smokestack's P-BOX lives. *)

type global = {
  gname : string;
  gty : Ty.t;
  ginit : string;  (** initial bytes; padded with zeros to [Ty.size gty] *)
  gwritable : bool;
}

type t = {
  mutable globals : global list;
  mutable funcs : Func.t list;
  mutable externs : string list;  (** builtins resolved by the machine *)
}

val create : unit -> t

val add_global :
  t -> name:string -> ty:Ty.t -> ?init:string -> writable:bool -> unit -> unit
(** Raises [Invalid_argument] on duplicate names or oversized [init]. *)

val add_func : t -> Func.t -> unit
val add_extern : t -> string -> unit
val find_func : t -> string -> Func.t option
val find_global : t -> string -> global option
val is_extern : t -> string -> bool

val copy : t -> t
(** Deep copy: hardening passes transform a copy so baseline and
    hardened variants of one program can coexist. *)
