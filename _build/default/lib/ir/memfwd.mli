(** Store-to-load forwarding (per block, alias-conservative).

    Within a basic block, a load from a non-escaping alloca (or a
    constant-offset gep rooted at one) whose width matches the latest
    store to the same location is replaced by the stored value
    (extended to the load's zero-extension semantics).  All tracked
    knowledge is dropped at calls, intrinsics, and stores through
    addresses that cannot be proven distinct.

    Together with {!Constfold} and {!Dce} this promotes most scalar
    locals out of memory in straight-line code — the [-O1] shape the
    paper's pipeline feeds to the Smokestack pass. *)

val run : Prog.t -> Func.t -> unit
val pass : Pass.t
