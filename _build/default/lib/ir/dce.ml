module IntSet = Set.Make (Int)

let used_regs (f : Func.t) =
  let add set = function Instr.Reg r -> IntSet.add r set | _ -> set in
  List.fold_left
    (fun set (b : Func.block) ->
      let set =
        List.fold_left
          (fun set i -> List.fold_left add set (Instr.operands i))
          set b.instrs
      in
      List.fold_left add set (Instr.terminator_operands b.term))
    IntSet.empty f.blocks

let removable (i : Instr.t) =
  match i with
  | Instr.Binop _ | Instr.Icmp _ | Instr.Select _ | Instr.Sext _
  | Instr.Trunc _ | Instr.Gep _ | Instr.Load _ | Instr.Alloca _ ->
      true
  | Instr.Store _ | Instr.Call _ | Instr.Call_ind _ | Instr.Intrinsic _ -> false

(* A register "escapes" when it is used anywhere except as the address
   of a store, or as the base/index of a gep whose own result does not
   escape.  An alloca that never escapes backs write-only storage: its
   stores die, which then kills the geps and the alloca itself. *)
let escaping_regs (f : Func.t) =
  let add set = function Instr.Reg r -> IntSet.add r set | _ -> set in
  let base =
    List.fold_left
      (fun set (b : Func.block) ->
        let set =
          List.fold_left
            (fun set i ->
              match i with
              | Instr.Store { value; addr = _; _ } -> add set value
              | Instr.Gep _ -> set (* handled in the propagation below *)
              | _ -> List.fold_left add set (Instr.operands i))
            set b.instrs
        in
        List.fold_left add set (Instr.terminator_operands b.term))
      IntSet.empty f.blocks
  in
  let escaping = ref base in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Func.block) ->
        List.iter
          (fun i ->
            match i with
            | Instr.Gep { dst; base; index; _ } when IntSet.mem dst !escaping ->
                let before = IntSet.cardinal !escaping in
                escaping := add !escaping base;
                (match index with
                | Some (op, _) -> escaping := add !escaping op
                | None -> ());
                if IntSet.cardinal !escaping <> before then changed := true
            | _ -> ())
          b.instrs)
      f.blocks
  done;
  !escaping

let remove_dead_stores (f : Func.t) =
  let escaping = escaping_regs f in
  (* only storage rooted at one of THIS function's non-escaping allocas
     may be dropped: a gep off a parameter or global is observable *)
  let defs = Hashtbl.create 32 in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun i ->
          match Instr.defined_reg i with
          | Some r -> Hashtbl.replace defs r i
          | None -> ())
        b.instrs)
    f.blocks;
  let rec rooted_in_dead_alloca r =
    match Hashtbl.find_opt defs r with
    | Some (Instr.Alloca { count = None; _ }) -> not (IntSet.mem r escaping)
    | Some (Instr.Gep { base = Instr.Reg b; _ }) -> rooted_in_dead_alloca b
    | _ -> false
  in
  let slot_like = ref IntSet.empty in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun i ->
          match i with
          | (Instr.Alloca { dst; count = None; _ } | Instr.Gep { dst; _ })
            when (not (IntSet.mem dst escaping)) && rooted_in_dead_alloca dst ->
              slot_like := IntSet.add dst !slot_like
          | _ -> ())
        b.instrs)
    f.blocks;
  let changed = ref false in
  if not (IntSet.is_empty !slot_like) then
    List.iter
      (fun (b : Func.block) ->
        let before = List.length b.instrs in
        b.instrs <-
          List.filter
            (fun i ->
              match i with
              | Instr.Store { addr = Instr.Reg r; _ } when IntSet.mem r !slot_like
                -> false
              | _ -> true)
            b.instrs;
        if List.length b.instrs <> before then changed := true)
      f.blocks;
  !changed

let run (_prog : Prog.t) (f : Func.t) =
  let changed = ref true in
  while !changed do
    changed := false;
    if remove_dead_stores f then changed := true;
    let live = used_regs f in
    List.iter
      (fun (b : Func.block) ->
        let before = List.length b.instrs in
        b.instrs <-
          List.filter
            (fun i ->
              match Instr.defined_reg i with
              | Some r when removable i && not (IntSet.mem r live) -> false
              | _ -> true)
            b.instrs;
        if List.length b.instrs <> before then changed := true)
      f.blocks
  done

let pass = Pass.Function_pass { name = "dce"; run }
