(** Control-flow graph cleanup.

    - removes blocks unreachable from the entry;
    - threads jumps through empty forwarding blocks
      ([b: br l] with no instructions);
    - merges a block into its unique successor when that successor has
      no other predecessors;
    - rewrites [Cond_br] with identical targets to [Br].

    Runs to a fixpoint.  Never touches the entry block's identity (the
    machine and the Smokestack pass both assume the first block is the
    entry). *)

val run : Prog.t -> Func.t -> unit
val pass : Pass.t
