type t = {
  func : Func.t;
  mutable block : Func.block;
  mutable label_counter : int;
  terminated_blocks : (string, unit) Hashtbl.t;
}

let on func block =
  { func; block; label_counter = 0; terminated_blocks = Hashtbl.create 8 }

let create func = on func (Func.add_block func ~label:"entry")
let func t = t.func
let current_block t = t.block

let start_block t label =
  let b = Func.add_block t.func ~label in
  t.block <- b;
  b

let switch_to t b = t.block <- b

let fresh_label t base =
  t.label_counter <- t.label_counter + 1;
  Printf.sprintf "%s.%d" base t.label_counter

let emit t i = t.block.instrs <- t.block.instrs @ [ i ]

let emit_def t mk =
  let dst = Func.fresh_reg t.func in
  emit t (mk dst);
  dst

let alloca t ?(name = "") ty =
  emit_def t (fun dst -> Instr.Alloca { dst; ty; count = None; name })

let alloca_vla t ?(name = "") ty ~count =
  emit_def t (fun dst -> Instr.Alloca { dst; ty; count = Some count; name })

let load t ty addr = emit_def t (fun dst -> Instr.Load { dst; ty; addr })
let store t ty ~value ~addr = emit t (Instr.Store { ty; value; addr })

let gep t base ~offset =
  emit_def t (fun dst -> Instr.Gep { dst; base; offset; index = None })

let gep_idx t base ~offset ~index ~scale =
  emit_def t (fun dst -> Instr.Gep { dst; base; offset; index = Some (index, scale) })

let binop t op lhs rhs = emit_def t (fun dst -> Instr.Binop { dst; op; lhs; rhs })
let icmp t op lhs rhs = emit_def t (fun dst -> Instr.Icmp { dst; op; lhs; rhs })

let select t cond if_true if_false =
  emit_def t (fun dst -> Instr.Select { dst; cond; if_true; if_false })

let sext t ~width value = emit_def t (fun dst -> Instr.Sext { dst; width; value })
let trunc t ~width value = emit_def t (fun dst -> Instr.Trunc { dst; width; value })

let call_like t ~result mk =
  if result then begin
    let dst = Func.fresh_reg t.func in
    emit t (mk (Some dst));
    Some dst
  end
  else begin
    emit t (mk None);
    None
  end

let call t ?(result = false) callee args =
  call_like t ~result (fun dst -> Instr.Call { dst; callee; args })

let call_ind t ?(result = false) callee args =
  call_like t ~result (fun dst -> Instr.Call_ind { dst; callee; args })

let intrinsic t ?(result = false) name args =
  call_like t ~result (fun dst -> Instr.Intrinsic { dst; name; args })

let set_term t term =
  if Hashtbl.mem t.terminated_blocks t.block.label then
    invalid_arg
      (Printf.sprintf "Ir.Builder: block %s already terminated" t.block.label);
  Hashtbl.add t.terminated_blocks t.block.label ();
  t.block.term <- term

let ret t v = set_term t (Instr.Ret v)
let br t label = set_term t (Instr.Br label)

let cond_br t cond ~if_true ~if_false =
  set_term t (Instr.Cond_br { cond; if_true; if_false })

let terminated t = Hashtbl.mem t.terminated_blocks t.block.label
