type reg = int

type operand =
  | Reg of reg
  | Imm of int64
  | Global of string
  | Func_ref of string

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule

type t =
  | Alloca of { dst : reg; ty : Ty.t; count : operand option; name : string }
  | Load of { dst : reg; ty : Ty.t; addr : operand }
  | Store of { ty : Ty.t; value : operand; addr : operand }
  | Gep of {
      dst : reg;
      base : operand;
      offset : int;
      index : (operand * int) option;
    }
  | Binop of { dst : reg; op : binop; lhs : operand; rhs : operand }
  | Icmp of { dst : reg; op : icmp; lhs : operand; rhs : operand }
  | Select of { dst : reg; cond : operand; if_true : operand; if_false : operand }
  | Sext of { dst : reg; width : int; value : operand }
  | Trunc of { dst : reg; width : int; value : operand }
  | Call of { dst : reg option; callee : string; args : operand list }
  | Call_ind of { dst : reg option; callee : operand; args : operand list }
  | Intrinsic of { dst : reg option; name : string; args : operand list }

type terminator =
  | Ret of operand option
  | Br of string
  | Cond_br of { cond : operand; if_true : string; if_false : string }
  | Unreachable

let defined_reg = function
  | Alloca { dst; _ }
  | Load { dst; _ }
  | Gep { dst; _ }
  | Binop { dst; _ }
  | Icmp { dst; _ }
  | Select { dst; _ }
  | Sext { dst; _ }
  | Trunc { dst; _ } ->
      Some dst
  | Store _ -> None
  | Call { dst; _ } | Call_ind { dst; _ } | Intrinsic { dst; _ } -> dst

let operands = function
  | Alloca { count; _ } -> Option.to_list count
  | Load { addr; _ } -> [ addr ]
  | Store { value; addr; _ } -> [ value; addr ]
  | Gep { base; index; _ } -> base :: (match index with Some (i, _) -> [ i ] | None -> [])
  | Binop { lhs; rhs; _ } | Icmp { lhs; rhs; _ } -> [ lhs; rhs ]
  | Select { cond; if_true; if_false; _ } -> [ cond; if_true; if_false ]
  | Sext { value; _ } | Trunc { value; _ } -> [ value ]
  | Call { args; _ } | Intrinsic { args; _ } -> args
  | Call_ind { callee; args; _ } -> callee :: args

let terminator_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Br _ | Unreachable -> []
  | Cond_br { cond; _ } -> [ cond ]

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"
  | Srem -> "srem"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let icmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "%%r%d" r
  | Imm i -> Format.fprintf fmt "%Ld" i
  | Global g -> Format.fprintf fmt "@%s" g
  | Func_ref f -> Format.fprintf fmt "@fn.%s" f

let pp_dst fmt = function
  | Some d -> Format.fprintf fmt "%%r%d = " d
  | None -> ()

let pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_operand fmt args

let pp fmt = function
  | Alloca { dst; ty; count; name } -> (
      match count with
      | None -> Format.fprintf fmt "%%r%d = alloca %a ; %s" dst Ty.pp ty name
      | Some c ->
          Format.fprintf fmt "%%r%d = alloca %a, count %a ; %s (vla)" dst Ty.pp
            ty pp_operand c name)
  | Load { dst; ty; addr } ->
      Format.fprintf fmt "%%r%d = load %a, %a" dst Ty.pp ty pp_operand addr
  | Store { ty; value; addr } ->
      Format.fprintf fmt "store %a %a, %a" Ty.pp ty pp_operand value pp_operand addr
  | Gep { dst; base; offset; index } -> (
      match index with
      | None -> Format.fprintf fmt "%%r%d = gep %a, %d" dst pp_operand base offset
      | Some (i, scale) ->
          Format.fprintf fmt "%%r%d = gep %a, %d, %a * %d" dst pp_operand base
            offset pp_operand i scale)
  | Binop { dst; op; lhs; rhs } ->
      Format.fprintf fmt "%%r%d = %s %a, %a" dst (binop_to_string op) pp_operand
        lhs pp_operand rhs
  | Icmp { dst; op; lhs; rhs } ->
      Format.fprintf fmt "%%r%d = icmp %s %a, %a" dst (icmp_to_string op)
        pp_operand lhs pp_operand rhs
  | Select { dst; cond; if_true; if_false } ->
      Format.fprintf fmt "%%r%d = select %a, %a, %a" dst pp_operand cond
        pp_operand if_true pp_operand if_false
  | Sext { dst; width; value } ->
      Format.fprintf fmt "%%r%d = sext.%d %a" dst (width * 8) pp_operand value
  | Trunc { dst; width; value } ->
      Format.fprintf fmt "%%r%d = trunc.%d %a" dst (width * 8) pp_operand value
  | Call { dst; callee; args } ->
      Format.fprintf fmt "%acall @%s(%a)" pp_dst dst callee pp_args args
  | Call_ind { dst; callee; args } ->
      Format.fprintf fmt "%acall_ind %a(%a)" pp_dst dst pp_operand callee pp_args args
  | Intrinsic { dst; name; args } ->
      Format.fprintf fmt "%aintrinsic @%s(%a)" pp_dst dst name pp_args args

let pp_terminator fmt = function
  | Ret None -> Format.pp_print_string fmt "ret void"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" pp_operand v
  | Br l -> Format.fprintf fmt "br %%%s" l
  | Cond_br { cond; if_true; if_false } ->
      Format.fprintf fmt "br %a, %%%s, %%%s" pp_operand cond if_true if_false
  | Unreachable -> Format.pp_print_string fmt "unreachable"
