(** IR instructions.

    The IR is a register machine over an unbounded set of per-function
    virtual registers holding 64-bit values (pointers included).  It
    deliberately sits at the clang [-O0] level: every source local is an
    [alloca] accessed through [load]/[store], because Smokestack's
    transformation is defined over allocas.  Memory addressing is
    byte-precise via {!constructor:Gep}. *)

type reg = int
(** Virtual register index, unique within a function. *)

type operand =
  | Reg of reg
  | Imm of int64
  | Global of string  (** address of a global (data or rodata) *)
  | Func_ref of string  (** opaque function token, callable via [Call_ind] *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule

type t =
  | Alloca of {
      dst : reg;
      ty : Ty.t;
      count : operand option;  (** [Some n] for VLAs: [n] elements of [ty] *)
      name : string;  (** source-level variable name, for diagnostics *)
    }
  | Load of { dst : reg; ty : Ty.t; addr : operand }
      (** [ty] must be scalar; loads [size ty] bytes, zero-extended into
          the register ([I1]/[I8]/[I16]/[I32] are unsigned in registers;
          use {!constructor:Sext} to sign-extend). *)
  | Store of { ty : Ty.t; value : operand; addr : operand }
  | Gep of {
      dst : reg;
      base : operand;
      offset : int;  (** constant byte offset *)
      index : (operand * int) option;  (** [Some (i, scale)] adds [i * scale] bytes *)
    }
  | Binop of { dst : reg; op : binop; lhs : operand; rhs : operand }
  | Icmp of { dst : reg; op : icmp; lhs : operand; rhs : operand }
  | Select of { dst : reg; cond : operand; if_true : operand; if_false : operand }
  | Sext of { dst : reg; width : int; value : operand }
      (** sign-extend the low [width] bytes of [value] *)
  | Trunc of { dst : reg; width : int; value : operand }
      (** zero out all but the low [width] bytes *)
  | Call of { dst : reg option; callee : string; args : operand list }
  | Call_ind of { dst : reg option; callee : operand; args : operand list }
  | Intrinsic of { dst : reg option; name : string; args : operand list }
      (** runtime hooks (RNG draws, Smokestack checks, VM services);
          resolved by the machine's intrinsic table *)

type terminator =
  | Ret of operand option
  | Br of string
  | Cond_br of { cond : operand; if_true : string; if_false : string }
  | Unreachable

val defined_reg : t -> reg option
(** The register an instruction defines, if any. *)

val operands : t -> operand list
(** All operands read by an instruction. *)

val terminator_operands : terminator -> operand list
val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit
val binop_to_string : binop -> string
val icmp_to_string : icmp -> string
