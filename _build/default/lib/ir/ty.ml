type t =
  | I1
  | I8
  | I16
  | I32
  | I64
  | Ptr
  | Array of t * int
  | Struct of { name : string; fields : t list }

let rec alignment = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | Ptr -> 8
  | Array (elt, _) -> alignment elt
  | Struct { fields; _ } ->
      List.fold_left (fun a f -> max a (alignment f)) 1 fields

let rec size = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | Ptr -> 8
  | Array (elt, n) ->
      if n < 0 then invalid_arg "Ir.Ty.size: negative array length";
      size elt * n
  | Struct { fields; _ } as t ->
      let last =
        List.fold_left
          (fun off f -> Sutil.Align.align_up off ~alignment:(alignment f) + size f)
          0 fields
      in
      Sutil.Align.align_up last ~alignment:(alignment t)

let struct_field_offsets fields =
  List.rev
    (fst
       (List.fold_left
          (fun (offs, off) f ->
            let o = Sutil.Align.align_up off ~alignment:(alignment f) in
            (o :: offs, o + size f))
          ([], 0) fields))

let is_scalar = function
  | I1 | I8 | I16 | I32 | I64 | Ptr -> true
  | Array _ | Struct _ -> false

let scalar_width t =
  if is_scalar t then size t
  else invalid_arg "Ir.Ty.scalar_width: aggregate type"

let rec equal a b =
  match (a, b) with
  | I1, I1 | I8, I8 | I16, I16 | I32, I32 | I64, I64 | Ptr, Ptr -> true
  | Array (ea, na), Array (eb, nb) -> na = nb && equal ea eb
  | Struct { name = na; fields = fa }, Struct { name = nb; fields = fb } ->
      String.equal na nb
      && List.length fa = List.length fb
      && List.for_all2 equal fa fb
  | _ -> false

let rec to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | Ptr -> "ptr"
  | Array (elt, n) -> Printf.sprintf "[%d x %s]" n (to_string elt)
  | Struct { name; _ } -> "%struct." ^ name

let compare a b = String.compare (to_string a) (to_string b)
let pp fmt t = Format.pp_print_string fmt (to_string t)
