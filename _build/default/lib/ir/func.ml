type block = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

type t = {
  name : string;
  params : (Instr.reg * Ty.t) list;
  returns : Ty.t option;
  mutable blocks : block list;
  mutable next_reg : Instr.reg;
  mutable attrs : string list;
}

let create ~name ~params ~returns =
  let next_reg =
    List.fold_left (fun m (r, _) -> max m (r + 1)) 0 params
  in
  { name; params; returns; blocks = []; next_reg; attrs = [] }

let entry t =
  match t.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Ir.Func.entry: %s has no blocks" t.name)

let find_block t label = List.find_opt (fun b -> String.equal b.label label) t.blocks

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let add_block t ~label =
  if Option.is_some (find_block t label) then
    invalid_arg
      (Printf.sprintf "Ir.Func.add_block: duplicate label %s in %s" label t.name);
  let b = { label; instrs = []; term = Instr.Unreachable } in
  t.blocks <- t.blocks @ [ b ];
  b

let iter_instrs t f = List.iter (fun b -> List.iter f b.instrs) t.blocks

let allocas t =
  let acc = ref [] in
  iter_instrs t (function
    | Instr.Alloca { dst; ty; count; name } -> acc := (dst, ty, count, name) :: !acc
    | _ -> ());
  List.rev !acc

let has_attr t a = List.mem a t.attrs
let add_attr t a = if not (has_attr t a) then t.attrs <- a :: t.attrs
let reg_count t = t.next_reg
