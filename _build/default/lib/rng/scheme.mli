(** Random-number generation schemes for permutation selection.

    The four operating points evaluated in the paper (§V, Table I):

    - {b pseudo} — memory-based xorshift64*; no security, 3.4 cyc/draw.
    - {b AES-1} — AES-CTR truncated to one round; low security,
      19.2 cyc/draw.
    - {b AES-10} — full AES-128 CTR (the AES standard); high security,
      92.8 cyc/draw.
    - {b RDRAND} — a true-random draw per invocation; high security,
      265.6 cyc/draw. *)

type t = Pseudo | Aes_ctr of { rounds : int } | Rdrand

val all : t list
(** The paper's four experiments, in Table I order:
    [pseudo; AES-1; AES-10; RDRAND]. *)

val aes1 : t
val aes10 : t
val name : t -> string
(** ["pseudo"], ["AES-1"], ["AES-10"], ["RDRAND"]. *)

val of_name : string -> t option

type security = No_security | Low | High

val security : t -> security
val security_to_string : security -> string

val memory_resident_state : t -> bool
(** [true] only for {!constructor:Pseudo}: its generator state must live
    in attacker-readable memory.  The Smokestack runtime uses this to
    decide whether to mirror state into the VM's data segment. *)
