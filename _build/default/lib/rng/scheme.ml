type t = Pseudo | Aes_ctr of { rounds : int } | Rdrand

let aes1 = Aes_ctr { rounds = 1 }
let aes10 = Aes_ctr { rounds = 10 }
let all = [ Pseudo; aes1; aes10; Rdrand ]

let name = function
  | Pseudo -> "pseudo"
  | Aes_ctr { rounds } -> Printf.sprintf "AES-%d" rounds
  | Rdrand -> "RDRAND"

let of_name s =
  match String.lowercase_ascii s with
  | "pseudo" -> Some Pseudo
  | "rdrand" -> Some Rdrand
  | s when String.length s > 4 && String.sub s 0 4 = "aes-" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some r when r >= 1 && r <= 10 -> Some (Aes_ctr { rounds = r })
      | _ -> None)
  | _ -> None

type security = No_security | Low | High

let security = function
  | Pseudo -> No_security
  | Aes_ctr { rounds } -> if rounds >= 10 then High else Low
  | Rdrand -> High

let security_to_string = function
  | No_security -> "None"
  | Low -> "Low"
  | High -> "High"

let memory_resident_state = function Pseudo -> true | Aes_ctr _ | Rdrand -> false
