(** The memory-based pseudo-random generator (the paper's "pseudo").

    Its whole state is a single 64-bit word that the Smokestack runtime
    keeps {e inside VM data memory} — which is precisely why the paper
    classifies it as unsafe: the threat model's attacker reads (and can
    even write) that word, then replays {!step} to predict every future
    permutation index.  The attack framework does exactly that in the
    pseudo-prediction experiment.

    The function is xorshift64*: fast (Table I: 3.4 cycles) and
    statistically fine, with zero disclosure resistance. *)

val step : int64 -> int64
(** Advance the state one step.  State must be non-zero; a zero state
    is re-seeded to a fixed odd constant first (xorshift fixed point
    avoidance). *)

val output : int64 -> int64
(** The value exposed for permutation selection given the
    (post-{!step}) state: the star-multiplication finalizer. *)

val unstep : int64 -> int64
(** Inverse of {!step} (xorshift is a bijection): given the state
    after a draw, recover the state before it.  This is the attacker's
    tool — one disclosed state word replays every {e past} draw of the
    process as well as every future one.  [unstep (step s) = s] for all
    non-zero [s]. *)
