lib/rng/generator.ml: Crypto Pseudo Scheme
