lib/rng/pseudo.mli:
