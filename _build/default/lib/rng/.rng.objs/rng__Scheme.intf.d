lib/rng/scheme.mli:
