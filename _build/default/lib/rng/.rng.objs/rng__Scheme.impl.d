lib/rng/scheme.ml: Printf String
