lib/rng/pseudo.ml: Int64
