lib/rng/generator.mli: Crypto Scheme
