let step s =
  let s = if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  Int64.logxor s (Int64.shift_left s 17)

let output s = Int64.mul s 0x2545F4914F6CDD1DL

(* Inverting x ^= x << k (resp. >>): xor-folding converges in
   ceil(64/k) rounds. *)
let invert_shl y k =
  let x = ref y in
  for _ = 1 to (64 / k) + 1 do
    x := Int64.logxor y (Int64.shift_left !x k)
  done;
  !x

let invert_shr y k =
  let x = ref y in
  for _ = 1 to (64 / k) + 1 do
    x := Int64.logxor y (Int64.shift_right_logical !x k)
  done;
  !x

let unstep s =
  let s = invert_shl s 17 in
  let s = invert_shr s 7 in
  invert_shl s 13
