type kind =
  | Kpseudo of { mutable state : int64 }
  | Kaes of Crypto.Ctr.t
  | Krdrand of Crypto.Entropy.t

type t = { scheme : Scheme.t; kind : kind; mutable draws : int }

let create ?seed_state ?(rekey_interval = 65536) scheme ~entropy =
  let kind =
    match scheme with
    | Scheme.Pseudo ->
        let state =
          match seed_state with Some s -> s | None -> Crypto.Entropy.u64 entropy
        in
        Kpseudo { state }
    | Scheme.Aes_ctr { rounds } ->
        Kaes
          (Crypto.Ctr.create ~rounds ~rekey_interval
             ~entropy:(Crypto.Entropy.bytes entropy) ())
    | Scheme.Rdrand -> Krdrand entropy
  in
  { scheme; kind; draws = 0 }

let scheme t = t.scheme

let next_u64 t =
  t.draws <- t.draws + 1;
  match t.kind with
  | Kpseudo p ->
      p.state <- Pseudo.step p.state;
      Pseudo.output p.state
  | Kaes ctr -> Crypto.Ctr.next_u64 ctr
  | Krdrand e -> Crypto.Entropy.u64 e

let draws t = t.draws

let pseudo_state t =
  match t.kind with
  | Kpseudo p -> p.state
  | _ -> invalid_arg "Rng.Generator.pseudo_state: not a pseudo generator"

let set_pseudo_state t v =
  match t.kind with
  | Kpseudo p -> p.state <- v
  | _ -> invalid_arg "Rng.Generator.set_pseudo_state: not a pseudo generator"
