(** Small statistics kit used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean; inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation. *)

val median : float list -> float
val min_max : float list -> float * float

val percent_overhead : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline * 100.]; negative means speedup. *)
