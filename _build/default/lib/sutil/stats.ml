let require_nonempty fn = function
  | [] -> invalid_arg (Printf.sprintf "Sutil.Stats.%s: empty list" fn)
  | l -> l

let mean l =
  let l = require_nonempty "mean" l in
  List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let geomean l =
  let l = require_nonempty "geomean" l in
  List.iter
    (fun x -> if x <= 0. then invalid_arg "Sutil.Stats.geomean: non-positive value")
    l;
  exp (mean (List.map log l))

let stddev l =
  let l = require_nonempty "stddev" l in
  let m = mean l in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.) l))

let median l =
  let l = require_nonempty "median" l in
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_max l =
  let l = require_nonempty "min_max" l in
  (List.fold_left min infinity l, List.fold_left max neg_infinity l)

let percent_overhead ~baseline ~measured =
  if baseline = 0. then invalid_arg "Sutil.Stats.percent_overhead: zero baseline";
  (measured -. baseline) /. baseline *. 100.
