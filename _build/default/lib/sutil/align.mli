(** Alignment arithmetic on byte offsets.

    All functions raise [Invalid_argument] when [alignment] is not a
    positive power of two, mirroring the constraints the IR type system
    places on object alignments. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two. *)

val next_pow2 : int -> int
(** [next_pow2 n] is the smallest power of two [>= n]. [n] must be
    positive and representable. *)

val is_aligned : int -> alignment:int -> bool
(** [is_aligned off ~alignment] is [true] iff [off] is a multiple of
    [alignment]. *)

val align_up : int -> alignment:int -> int
(** [align_up off ~alignment] rounds [off] up to the next multiple of
    [alignment]. This is the [ALIGN] procedure of the paper's
    Algorithm 1. *)

val align_down : int -> alignment:int -> int
(** [align_down off ~alignment] rounds [off] down to the previous
    multiple of [alignment]. *)

val padding : int -> alignment:int -> int
(** [padding off ~alignment] is the number of bytes needed to bring
    [off] up to [alignment]; equal to [align_up off ~alignment - off]. *)
