lib/sutil/texttable.ml: Buffer List Printf String
