lib/sutil/bytecodec.ml: Bytes Char Int32 Int64 Printf
