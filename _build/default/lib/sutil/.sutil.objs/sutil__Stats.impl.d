lib/sutil/stats.ml: Array List Printf
