lib/sutil/texttable.mli:
