lib/sutil/bytecodec.mli: Bytes
