lib/sutil/stats.mli:
