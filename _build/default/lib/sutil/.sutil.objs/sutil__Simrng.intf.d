lib/sutil/simrng.mli: Bytes
