lib/sutil/fact.ml: Array Fun Int List Printf
