lib/sutil/align.mli:
