lib/sutil/simrng.ml: Array Bytes Char Int64
