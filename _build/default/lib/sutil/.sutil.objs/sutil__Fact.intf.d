lib/sutil/fact.mli:
