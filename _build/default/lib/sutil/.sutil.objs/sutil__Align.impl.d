lib/sutil/align.ml: Printf
