(** Factorials, Lehmer codes, and permutation utilities.

    The paper's Algorithm 1 enumerates the [n!] permutations of a
    function's stack allocations in lexical order by decoding each index
    through the factorial number system.  This module provides that
    decoding, its inverse, and validity checks used by the property
    tests. *)

val factorial : int -> int
(** [factorial n] is [n!]. Raises [Invalid_argument] if [n < 0] or the
    result would overflow a 63-bit integer ([n > 20]). *)

val max_factorial_arg : int
(** Largest [n] accepted by {!factorial} (20 on 64-bit systems). *)

val lehmer_decode : n:int -> int -> int array
(** [lehmer_decode ~n idx] is the [idx]-th permutation of
    [0 .. n-1] in lexical order, for [0 <= idx < n!].  Element [i] of the
    result is the value placed at position [i].  Raises
    [Invalid_argument] on out-of-range [idx]. *)

val lehmer_encode : int array -> int
(** [lehmer_encode p] is the lexical-order index of permutation [p];
    inverse of {!lehmer_decode}. Raises [Invalid_argument] if [p] is not
    a permutation of [0 .. n-1]. *)

val is_permutation : int array -> bool
(** [is_permutation a] is [true] iff [a] contains each of
    [0 .. length a - 1] exactly once. *)

val identity : int -> int array
(** [identity n] is the identity permutation of size [n]. *)

val invert : int array -> int array
(** [invert p] is the inverse permutation: [invert p.(i) = j] iff
    [p.(j) = i]. Raises [Invalid_argument] if [p] is not a
    permutation. *)

val apply : int array -> 'a array -> 'a array
(** [apply p a] permutes [a] so that element [p.(i)] of [a] lands at
    position [i] of the result. *)
