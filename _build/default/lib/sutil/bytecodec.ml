let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let set_u32 b off v =
  Bytes.set_int32_le b off (Int32.of_int (v land 0xffffffff))

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

let get b ~width off =
  match width with
  | 1 -> Int64.of_int (get_u8 b off)
  | 2 -> Int64.of_int (get_u16 b off)
  | 4 -> Int64.of_int (get_u32 b off)
  | 8 -> get_i64 b off
  | _ -> invalid_arg (Printf.sprintf "Sutil.Bytecodec.get: bad width %d" width)

let set b ~width off v =
  match width with
  | 1 -> set_u8 b off (Int64.to_int v)
  | 2 -> set_u16 b off (Int64.to_int v)
  | 4 -> set_u32 b off (Int64.to_int v)
  | 8 -> set_i64 b off v
  | _ -> invalid_arg (Printf.sprintf "Sutil.Bytecodec.set: bad width %d" width)

let zext ~width v =
  match width with
  | 1 -> Int64.logand v 0xffL
  | 2 -> Int64.logand v 0xffffL
  | 4 -> Int64.logand v 0xffffffffL
  | 8 -> v
  | _ -> invalid_arg (Printf.sprintf "Sutil.Bytecodec.zext: bad width %d" width)

let sext ~width v =
  match width with
  | 1 | 2 | 4 ->
      let shift = 64 - (8 * width) in
      Int64.shift_right (Int64.shift_left v shift) shift
  | 8 -> v
  | _ -> invalid_arg (Printf.sprintf "Sutil.Bytecodec.sext: bad width %d" width)
