let is_pow2 n = n > 0 && n land (n - 1) = 0

let check_alignment fn alignment =
  if not (is_pow2 alignment) then
    invalid_arg
      (Printf.sprintf "Sutil.Align.%s: alignment %d is not a positive power of two" fn alignment)

let next_pow2 n =
  if n <= 0 then invalid_arg "Sutil.Align.next_pow2: non-positive argument";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let is_aligned off ~alignment =
  check_alignment "is_aligned" alignment;
  off land (alignment - 1) = 0

let align_up off ~alignment =
  check_alignment "align_up" alignment;
  (off + alignment - 1) land lnot (alignment - 1)

let align_down off ~alignment =
  check_alignment "align_down" alignment;
  off land lnot (alignment - 1)

let padding off ~alignment = align_up off ~alignment - off
