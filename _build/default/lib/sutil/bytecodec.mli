(** Little-endian integer codecs over [Bytes.t].

    The virtual machine stores all multi-byte values little-endian, as
    on the x86-64 testbed used in the paper.  Widths are 1, 2, 4 and 8
    bytes; values are represented as OCaml [int64] for full 64-bit
    loads/stores and [int] elsewhere. *)

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val set_u32 : Bytes.t -> int -> int -> unit
val get_i64 : Bytes.t -> int -> int64
val set_i64 : Bytes.t -> int -> int64 -> unit

val get : Bytes.t -> width:int -> int -> int64
(** [get b ~width off] reads a [width]-byte little-endian value
    (zero-extended). [width] must be 1, 2, 4 or 8. *)

val set : Bytes.t -> width:int -> int -> int64 -> unit
(** [set b ~width off v] writes the low [width] bytes of [v]
    little-endian at [off]. *)

val sext : width:int -> int64 -> int64
(** [sext ~width v] sign-extends the low [width] bytes of [v]. *)

val zext : width:int -> int64 -> int64
(** [zext ~width v] zero-extends (truncates) [v] to [width] bytes. *)
