let max_factorial_arg = 20

let factorial n =
  if n < 0 then invalid_arg "Sutil.Fact.factorial: negative argument";
  if n > max_factorial_arg then
    invalid_arg
      (Printf.sprintf "Sutil.Fact.factorial: %d! overflows a 63-bit integer" n);
  let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
  go 1 n

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then ok := false else seen.(v) <- true)
    a;
  !ok

let lehmer_decode ~n idx =
  if n < 0 || n > max_factorial_arg then
    invalid_arg "Sutil.Fact.lehmer_decode: size out of range";
  let total = factorial n in
  if idx < 0 || idx >= total then
    invalid_arg
      (Printf.sprintf "Sutil.Fact.lehmer_decode: index %d out of [0, %d)" idx total);
  (* Decode [idx] through the factorial number system, selecting the
     [e]-th remaining element at each step — exactly the inner loop of
     the paper's PERMUTE procedure. *)
  let remaining = ref (List.init n Fun.id) in
  let temp = ref idx in
  Array.init n (fun i ->
      let f = factorial (n - i - 1) in
      let e = !temp / f in
      temp := !temp mod f;
      let v = List.nth !remaining e in
      remaining := List.filteri (fun j _ -> j <> e) !remaining;
      v)

let lehmer_encode p =
  if not (is_permutation p) then
    invalid_arg "Sutil.Fact.lehmer_encode: not a permutation";
  let n = Array.length p in
  let remaining = ref (List.init n Fun.id) in
  let idx = ref 0 in
  Array.iteri
    (fun i v ->
      let e =
        match List.find_index (Int.equal v) !remaining with
        | Some e -> e
        | None -> assert false
      in
      idx := !idx + (e * factorial (n - i - 1));
      remaining := List.filteri (fun j _ -> j <> e) !remaining)
    p;
  !idx

let identity n = Array.init n Fun.id

let invert p =
  if not (is_permutation p) then
    invalid_arg "Sutil.Fact.invert: not a permutation";
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) p;
  inv

let apply p a =
  if Array.length p <> Array.length a then
    invalid_arg "Sutil.Fact.apply: length mismatch";
  Array.map (fun i -> a.(i)) p
