(* smokestackc — compile, harden, inspect and run MiniC programs.

   Examples:
     smokestackc run examples/programs/hello.c
     smokestackc run --scheme AES-10 --seed 42 prog.c --input "bytes"
     smokestackc run --harden --chaos rng:ones@1 prog.c
     smokestackc ir --harden prog.c
     smokestackc pbox prog.c
     smokestackc serve --sessions 1300 --jobs 8 --json BENCH_server.json

   Exit codes: 0 clean exit, 1 non-zero program exit (or internal
   error), 2 usage error, 3 compile/parse error, 4 runtime fault
   (memory fault, defense detection, fuel exhaustion, timeout). *)

open Cmdliner

(* Diagnostics are one line: the first line of a multi-line message
   carries the location and summary; the rest is detail for the IR
   tools, not for a shell script checking $?. *)
let one_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let exit_usage = 2
let exit_compile = 3
let exit_runtime = 4

let usage_fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "smokestackc: %s\n" msg;
      exit exit_usage)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile ?optimize path =
  match Minic.Driver.compile_result ?optimize (read_file path) with
  | Ok prog -> prog
  | Error msg ->
      Printf.eprintf "smokestackc: %s\n" (one_line msg);
      exit exit_compile

let opt_flag =
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the -O1 pipeline before anything else")

let scheme_conv =
  let parse s =
    match Rng.Scheme.of_name s with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S (pseudo, AES-1..AES-10, RDRAND)" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Rng.Scheme.name s))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Rng.Scheme.aes10
    & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Randomness scheme for hardening")

let seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Entropy seed (reproducible runs)")

let harden_flag =
  Arg.(value & flag & info [ "harden" ] ~doc:"Apply Smokestack before the action")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "input" ] ~docv:"BYTES" ~doc:"Bytes served to read_input")

let no_fid =
  Arg.(value & flag & info [ "no-fid-checks" ] ~doc:"Disable function-identifier checks")

let config_of scheme no_fid =
  let c = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
  if no_fid then { c with Smokestack.Config.fid_checks = false } else c

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print a call/intrinsic trace after the run")

let engine_conv =
  let parse s =
    match Machine.Backend.kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S (ref, bytecode)" s))
  in
  Arg.conv
    (parse, fun fmt k -> Format.pp_print_string fmt (Machine.Backend.kind_to_string k))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Machine.Backend.Reference
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,ref) (tree-walking reference \
           interpreter) or $(b,bytecode) (compiled dispatch loop; \
           identical observable behaviour, several times faster)")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for multi-seed runs (default: the host's \
           recommended domain count).  Output order is seed order \
           regardless of N.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:
          "Run N times with consecutive seeds (seed, seed+1, ...); \
           combined with $(b,--jobs) the runs execute in parallel.  \
           N=1 (the default) is the plain single run.")

let chaos_conv =
  let parse s =
    match Fault.Plan.of_spec s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Fault.Plan.to_spec p))

let chaos_arg =
  Arg.(
    value
    & opt (some chaos_conv) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Arm one deterministic fault plan before the run, e.g. \
           $(b,rng:ones\\@1) (RDRAND stuck at all-ones from the first \
           draw), $(b,mem:stack:64:3\\@2000) (flip bit 3 of the byte 64 \
           below the stack top at instruction 2000), \
           $(b,intr:ss.fid_assert:xor=1\\@1).  $(b,rng:*) plans require \
           $(b,--harden) (they tamper with the Smokestack generator).")

let fail_open_flag =
  Arg.(
    value & flag
    & info [ "fail-open" ]
        ~doc:
          "On a randomness-source health failure, degrade to the \
           memory-resident pseudo scheme and keep running instead of the \
           fail-secure RDRAND -> AES-10 -> abort chain (for studying what \
           silent degradation costs; see E13)")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock limit per run; a run still going after $(docv) \
           seconds is abandoned and reported timed out (exit code 4).  \
           With $(b,--seeds), each seed's run is supervised \
           independently and the others still complete.")

let run_cmd =
  let action file harden scheme seed input no_fid optimize trace engine jobs
      seeds chaos fail_open timeout =
    if seeds < 1 then usage_fail "run: --seeds must be >= 1";
    (match jobs with
    | Some j when j < 1 -> usage_fail "run: --jobs must be >= 1"
    | _ -> ());
    (match timeout with
    | Some t when t <= 0. -> usage_fail "run: --timeout must be positive"
    | _ -> ());
    (match chaos with
    | Some { Fault.Plan.site = Fault.Plan.Rng _; _ } when not harden ->
        usage_fail
          "run: rng fault plans tamper with the Smokestack generator — add \
           --harden"
    | _ -> ());
    let prog = compile ~optimize file in
    let policy =
      if fail_open then Rng.Generator.Fail_open else Rng.Generator.Fail_secure
    in
    let degr_str (d : Rng.Generator.degradation) =
      Printf.sprintf "%s->%s"
        (Rng.Scheme.name d.from_scheme)
        (match d.to_scheme with
        | Some s -> Rng.Scheme.name s
        | None -> "ABORT")
    in
    (* One self-contained run; returns everything to print so that
       multi-seed runs can execute as pool jobs and still emit output in
       seed order. *)
    let run_one ~seed =
      let entropy = Crypto.Entropy.create ~seed in
      let st, gen =
        if harden then
          let hardened =
            Smokestack.Harden.harden (config_of scheme no_fid) prog
          in
          let gen = Rng.Generator.create ~policy scheme ~entropy in
          (Smokestack.Harden.prepare hardened ~entropy ~gen, Some gen)
        else (Machine.Exec.prepare prog, None)
      in
      let armed = Option.map (fun p -> Fault.Inject.arm ?gen p st) chaos in
      let tracer =
        if trace then begin
          let t = Machine.Trace.create () in
          Machine.Trace.attach t st;
          Some t
        end
        else None
      in
      Machine.Exec.set_input st (Machine.Exec.input_string input);
      let backend = Machine.Backend.find engine in
      let outcome, stats = backend.Machine.Backend.run st in
      let chaos_str =
        Option.map
          (fun a ->
            Printf.sprintf "-- chaos %s: fired=%d%s\n"
              (Fault.Plan.to_spec (Fault.Inject.plan a))
              (Fault.Inject.fired a)
              (match gen with
              | Some g when Rng.Generator.degradations g <> [] ->
                  " degraded: "
                  ^ String.concat ", "
                      (List.map degr_str (Rng.Generator.degradations g))
              | _ -> ""))
          armed
      in
      ( outcome,
        stats,
        Option.map (Machine.Trace.render ~limit:200) tracer,
        chaos_str )
    in
    let code_of_outcome = function
      | Machine.Exec.Exit 0L -> 0
      | Machine.Exec.Exit _ -> 1
      | Machine.Exec.Fault _ | Machine.Exec.Detected _
      | Machine.Exec.Fuel_exhausted ->
          exit_runtime
    in
    let print_result ?seed
        (outcome, (stats : Machine.Exec.stats), trace_str, chaos_str) =
      Option.iter prerr_string trace_str;
      Option.iter (Printf.printf "== seed %Ld ==\n") seed;
      print_string stats.output;
      Printf.printf
        "-- %s | cycles=%.0f instrs=%d calls=%d max-depth=%d max-frame=%dB rss=%s\n"
        (Machine.Exec.outcome_to_string outcome)
        stats.cycles stats.instr_count stats.call_count stats.max_depth
        stats.max_frame_bytes
        (Sutil.Texttable.fmt_bytes stats.rss_bytes);
      Option.iter print_string chaos_str;
      code_of_outcome outcome
    in
    if seeds = 1 && timeout = None then exit (print_result (run_one ~seed))
    else begin
      let seed_list = List.init seeds (fun i -> Int64.add seed (Int64.of_int i)) in
      let batch =
        List.map
          (fun seed ->
            Sched.Job.v ~id:(Printf.sprintf "run/seed-%Ld" seed) ~seed
              (fun () -> run_one ~seed))
          seed_list
      in
      let width =
        match jobs with
        | Some j -> j
        | None -> min seeds (Domain.recommended_domain_count ())
      in
      let outcomes =
        Sched.Pool.with_pool ~jobs:width @@ fun pool ->
        match timeout with
        | None -> List.map (fun v -> Sched.Job.Ok v) (Sched.Pool.run_all pool batch)
        | Some t -> Sched.Pool.run_all_outcomes ~timeout:t pool batch
      in
      let with_seed = seeds > 1 in
      let code =
        List.fold_left2
          (fun code sd outcome ->
            match outcome with
            | Sched.Job.Ok result ->
                let seed = if with_seed then Some sd else None in
                max code (print_result ?seed result)
            | Sched.Job.Timed_out ->
                if with_seed then Printf.printf "== seed %Ld ==\n" sd;
                Printf.printf "-- timed out after %.1f s\n"
                  (Option.get timeout);
                max code exit_runtime
            | Sched.Job.Failed e ->
                Printf.eprintf "smokestackc: error: seed %Ld: %s\n" sd
                  (one_line (Printexc.to_string e));
                max code 1)
          0 seed_list outcomes
      in
      exit code
    end
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a MiniC program")
    Term.(
      const action $ file_arg $ harden_flag $ scheme_arg $ seed_arg $ input_arg
      $ no_fid $ opt_flag $ trace_flag $ engine_arg $ jobs_arg $ seeds_arg
      $ chaos_arg $ fail_open_flag $ timeout_arg)

let ir_cmd =
  let action file harden scheme no_fid optimize =
    let prog = compile ~optimize file in
    let prog =
      if harden then
        (Smokestack.Harden.harden (config_of scheme no_fid) prog).prog
      else prog
    in
    print_string (Ir.Printer.prog_to_string prog)
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Print the (optionally hardened) IR")
    Term.(const action $ file_arg $ harden_flag $ scheme_arg $ no_fid $ opt_flag)

let pbox_cmd =
  let action file scheme no_fid =
    let prog = compile file in
    let hardened = Smokestack.Harden.harden (config_of scheme no_fid) prog in
    let pbox = hardened.pbox in
    Printf.printf "P-BOX: %d shared table(s), %d dynamically-decoded frame(s), %s of read-only data\n"
      (Array.length pbox.entries) (Array.length pbox.dyns)
      (Sutil.Texttable.fmt_bytes (Smokestack.Pbox.blob_bytes pbox));
    Array.iteri
      (fun i (e : Smokestack.Pbox.entry) ->
        Printf.printf "  table %d: %d slot(s), %d rows (%d materialized), users: %s\n"
          i
          (Array.length e.canon_meta)
          (Array.length e.table.offsets)
          e.rows_materialized
          (String.concat ", " e.users))
      pbox.entries;
    Array.iter
      (fun (d : Smokestack.Pbox.dyn_binding) ->
        Printf.printf "  dynamic: %s — %d slots, decoded per invocation\n"
          d.dfunc (Array.length d.metas))
      pbox.dyns
  in
  Cmd.v
    (Cmd.info "pbox" ~doc:"Summarize the P-BOX a program would get")
    Term.(const action $ file_arg $ scheme_arg $ no_fid)

let layouts_cmd =
  let action file func runs scheme seed =
    let prog = compile file in
    let hardened = Smokestack.Harden.harden (config_of scheme false) prog in
    (* observe the chosen frame layout by dumping the offsets the
       runtime would select across invocations *)
    let binding = Smokestack.Pbox.binding hardened.pbox func in
    match binding with
    | None ->
        Printf.eprintf "function %s has no permuted frame\n" func;
        exit 1
    | Some b -> (
        match b.mode with
        | Smokestack.Pbox.Dynamic _ ->
            Printf.printf "%s uses per-invocation dynamic decoding (%d slots)\n"
              func b.n_orig
        | Smokestack.Pbox.Exhaustive _ ->
            let entropy = Crypto.Entropy.create ~seed in
            let gen =
              Rng.Generator.create hardened.config.scheme ~entropy
            in
            let e = Option.get (Smokestack.Pbox.entry_of hardened.pbox b) in
            for _ = 1 to runs do
              let idx =
                Int64.to_int
                  (Int64.logand (Rng.Generator.next_u64 gen)
                     (Int64.of_int (e.rows_materialized - 1)))
              in
              let offs = Smokestack.Pbox.lookup_offsets hardened.pbox b ~row:idx in
              Printf.printf "row %5d: [%s]\n" idx
                (String.concat "; "
                   (Array.to_list (Array.map string_of_int offs)))
            done)
  in
  let func_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FUNC" ~doc:"Function whose layouts to sample")
  in
  let runs_arg =
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc:"Invocations to sample")
  in
  Cmd.v
    (Cmd.info "layouts"
       ~doc:"Sample the per-invocation frame layouts of a function")
    Term.(const action $ file_arg $ func_arg $ runs_arg $ scheme_arg $ seed_arg)

let entropy_cmd =
  let action file scheme =
    let prog = compile file in
    let hardened = Smokestack.Harden.harden (config_of scheme false) prog in
    List.iter
      (fun fname ->
        match Smokestack.Pbox.binding hardened.pbox fname with
        | None -> ()
        | Some b ->
            let t = Smokestack.Entropy_an.of_binding hardened.pbox b in
            Printf.printf
              "%s: %d layout(s) considered, %d distinct; whole-frame \
               collision %.2e; expected brute-force attempts %.0f\n"
              fname t.rows t.distinct_layouts t.whole_frame_collision
              t.expected_bruteforce_attempts;
            List.iter
              (fun (s : Smokestack.Entropy_an.slot_stats) ->
                Printf.printf
                  "    slot %d: %d possible offsets, collision %.3f\n"
                  s.orig_index s.distinct_offsets s.collision_probability)
              t.per_slot)
      (Smokestack.Harden.permuted_functions hardened)
  in
  Cmd.v
    (Cmd.info "entropy"
       ~doc:"Quantify each permuted frame's layout entropy (what a \
             brute-force attacker faces)")
    Term.(const action $ file_arg $ scheme_arg)

(* Shared by analyze and lint: resolve a --workload name to a program. *)
let builtin_workload w =
  match w with
  | "librelp" -> (w, Lazy.force Apps.Librelp.program)
  | "wireshark" -> (w, Lazy.force Apps.Wireshark.program)
  | "proftpd" -> (w, Lazy.force Apps.Proftpd.program)
  | _ -> (
      match Apps.Spec.find w with
      | Some wl -> (wl.Apps.Spec.wname, Lazy.force wl.Apps.Spec.program)
      | None -> (
          match Apps.Synth.find w with
          | Some v -> (v.Apps.Synth.vname, Minic.Driver.compile v.Apps.Synth.source)
          | None ->
              usage_fail
                "unknown workload %S (an apps name like gobmk, a real-vuln \
                 program: librelp, wireshark, proftpd, or a synth variant \
                 like stack-direct)"
                w))

let workload_opt cmd =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "%s a built-in workload (an application kernel like $(b,gobmk) \
              or $(b,proftpd-io), or a synthetic pentest variant like \
              $(b,stack-direct)) instead of a file"
             cmd))

let analyze_cmd =
  let action file workload progen leaky json_path no_score leaks optimize =
    if leaky && progen = None then
      usage_fail "analyze: --leaky needs --progen SEED";
    let name, prog =
      match (workload, progen, file) with
      | Some w, _, _ -> builtin_workload w
      | None, Some s, _ ->
          let src =
            if leaky then Minic.Progen.generate_leaky ~seed:s
            else Minic.Progen.generate ~seed:s
          in
          ( Printf.sprintf "progen-%s%Ld" (if leaky then "leaky-" else "") s,
            Minic.Driver.compile ~optimize src )
      | None, None, Some f -> (Filename.basename f, compile ~optimize f)
      | None, None, None ->
          usage_fail "analyze: need a FILE, --workload NAME or --progen SEED"
    in
    let report = Analysis.Report.analyze_prog ~name ~score:(not no_score) prog in
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Sutil.Json.doc_to_channel ~indent:true oc
              (Analysis.Report.to_json report))
    | None -> ());
    if leaks then begin
      (* leak-focused view: just the disclosure flows and their cost *)
      let lk = report.Analysis.Report.leakage in
      Printf.printf "layout leaks: %s\n" name;
      if lk.Analysis.Leakan.leaks = [] then
        print_endline "  none (no layout secret reaches an observable sink)"
      else begin
        List.iter
          (fun l -> Printf.printf "  %s\n" (Analysis.Leakan.leak_to_string l))
          lk.Analysis.Leakan.leaks;
        List.iter
          (fun (fb : Analysis.Leakan.func_bits) ->
            Printf.printf "  %s: %.2f of %.2f frame bits disclosed\n"
              fb.fname fb.leaked_bits fb.frame_bits)
          lk.Analysis.Leakan.funcs;
        Printf.printf "  total: %.2f bits\n" lk.Analysis.Leakan.total_bits;
        if not no_score then begin
          print_endline "  easiest pair per defense (blind -> leak-guided):";
          List.iter2
            (fun (d, blind) (_, guided) ->
              Printf.printf "    %-12s %s -> %s\n" d
                (if blind = infinity then "-"
                 else Format.asprintf "%.3g" blind)
                (if guided = infinity then "-"
                 else Format.asprintf "%.3g" guided))
            (Analysis.Report.summary report)
            (Analysis.Report.summary_degraded report)
        end
      end
    end
    else print_string (Analysis.Report.to_text report)
  in
  let file_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let workload_arg = workload_opt "Analyze" in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the full report as JSON to $(docv)")
  in
  let no_score_arg =
    Arg.(
      value & flag
      & info [ "no-score" ]
          ~doc:
            "Skip the per-defense expected-attempts scoring (classification \
             and pair enumeration only; much faster)")
  in
  let leaks_arg =
    Arg.(
      value & flag
      & info [ "leaks" ]
          ~doc:
            "Leak-focused view: print only the interprocedural layout-leak \
             flows (source, channel, sink, bits) and the leak-degraded \
             expected attempts per defense")
  in
  let progen_arg =
    Arg.(
      value
      & opt (some int64) None
      & info [ "progen" ] ~docv:"SEED"
          ~doc:
            "Analyze the Progen-generated program of $(docv) instead of a \
             file (the differential-testing corpus shape)")
  in
  let leaky_arg =
    Arg.(
      value & flag
      & info [ "leaky" ]
          ~doc:
            "With $(b,--progen): generate the leak-shaped variant — the \
             same program with a layout disclosure (an address print or a \
             comparison oracle) spliced in before the checksum; a \
             ground-truth positive for the leak analyzer")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static DOP attack-surface analysis: classify stack slots as \
          overflow-capable or safe, enumerate (buffer, victim) DOP pairs, \
          and score expected brute-force attempts per defense")
    Term.(
      const action $ file_opt $ workload_arg $ progen_arg $ leaky_arg
      $ json_arg $ no_score_arg $ leaks_arg $ opt_flag)

let lint_cmd =
  let action file workload progen scheme no_fid selective seed json_path mutate
      leaks optimize =
    let name, prog =
      match (workload, progen, file) with
      | Some w, _, _ -> builtin_workload w
      | None, Some s, _ ->
          ( Printf.sprintf "progen-%Ld" s,
            match Minic.Driver.compile_result (Minic.Progen.generate ~seed:s) with
            | Ok prog -> prog
            | Error msg ->
                Printf.eprintf "smokestackc: %s\n" (one_line msg);
                exit exit_compile )
      | None, None, Some f -> (Filename.basename f, compile ~optimize f)
      | None, None, None ->
          usage_fail "lint: need a FILE, --workload NAME or --progen SEED"
    in
    if mutate < 0 then usage_fail "lint: --mutate must be non-negative";
    let config =
      Smokestack.Config.with_selective selective (config_of scheme no_fid)
    in
    (* ~validate:false: we run the validator ourselves so violations are
       reported as lint findings (exit 1), not a hardening exception. *)
    let hardened =
      try Smokestack.Harden.harden ~seed ~validate:false config prog
      with Failure msg ->
        Printf.eprintf "smokestackc: %s\n" (one_line msg);
        exit exit_compile
    in
    let violations = Analysis.Validate.check ~original:prog hardened in
    (* Advisory layout-leak lint (opt-in): flows from layout secrets to
       observable sinks in the hardened build. *)
    let leak_violations =
      if leaks then Analysis.Validate.check_leaks hardened else []
    in
    (* Mutation smoke test: N seeded mutants cycling the classes, each
       applicable one must be caught by its expected rule. *)
    let mutants =
      List.init mutate (fun i ->
          let m =
            List.nth Analysis.Validate.all_mutations
              (i mod List.length Analysis.Validate.all_mutations)
          in
          let mseed = Int64.add seed (Int64.of_int i) in
          match Analysis.Validate.mutate ~seed:mseed m hardened with
          | None -> (m, `Inapplicable)
          | Some (mutant, desc) ->
              let vs = Analysis.Validate.check ~original:prog mutant in
              let want = Analysis.Validate.expected_rule m in
              if List.exists (fun v -> v.Analysis.Validate.rule = want) vs then
                (m, `Caught desc)
              else (m, `Missed desc))
    in
    let missed =
      List.filter (fun (_, st) -> match st with `Missed _ -> true | _ -> false)
        mutants
    in
    (match json_path with
    | Some path ->
        let module J = Sutil.Json in
        let violation_json (v : Analysis.Validate.violation) =
          J.Obj
            [
              ("rule", J.String (Analysis.Validate.rule_to_string v.rule));
              ("func", J.String v.func);
              ("row", match v.row with Some r -> J.Int r | None -> J.Null);
              ("detail", J.String v.detail);
            ]
        in
        let base =
          [
            ("program", J.String name);
            ("clean", J.Bool (violations = [] && leak_violations = []));
            ("violations", J.List (List.map violation_json violations));
          ]
          @
          if not leaks then []
          else [ ("leaks", J.List (List.map violation_json leak_violations)) ]
        in
        let fields =
          if mutants = [] then base
          else
            base
            @ [
                ( "mutations",
                  J.List
                    (List.map
                       (fun (m, st) ->
                         let status, detail =
                           match st with
                           | `Inapplicable -> ("inapplicable", "")
                           | `Caught d -> ("caught", d)
                           | `Missed d -> ("missed", d)
                         in
                         J.Obj
                           [
                             ( "mutation",
                               J.String (Analysis.Validate.mutation_to_string m)
                             );
                             ("status", J.String status);
                             ("detail", J.String detail);
                           ])
                       mutants) );
              ]
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> J.doc_to_channel ~indent:true oc (J.Obj fields))
    | None -> ());
    List.iter
      (fun v ->
        Printf.printf "violation: %s\n" (Analysis.Validate.violation_to_string v))
      violations;
    List.iter
      (fun v ->
        Printf.printf "leak: %s\n" (Analysis.Validate.violation_to_string v))
      leak_violations;
    List.iter
      (fun (m, st) ->
        let mname = Analysis.Validate.mutation_to_string m in
        match st with
        | `Inapplicable -> Printf.printf "mutation %-16s inapplicable\n" mname
        | `Caught d -> Printf.printf "mutation %-16s caught   (%s)\n" mname d
        | `Missed d -> Printf.printf "mutation %-16s MISSED   (%s)\n" mname d)
      mutants;
    let elided = hardened.Smokestack.Harden.elided in
    Printf.printf "%s: %s (%d function(s) checked%s%s)\n" name
      (if violations = [] && leak_violations = [] then "clean"
       else
         Printf.sprintf "%d violation(s)"
           (List.length violations + List.length leak_violations))
      (List.length hardened.Smokestack.Harden.prog.Ir.Prog.funcs)
      (if selective then Printf.sprintf ", %d elided" (List.length elided)
       else "")
      (if mutate = 0 then ""
       else
         Printf.sprintf ", %d/%d mutation(s) caught"
           (List.length
              (List.filter
                 (fun (_, st) -> match st with `Caught _ -> true | _ -> false)
                 mutants))
           mutate);
    if violations <> [] || leak_violations <> [] || missed <> [] then exit 1
  in
  let file_opt =
    Arg.(
      value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let workload_arg = workload_opt "Lint" in
  let progen_arg =
    Arg.(
      value
      & opt (some int64) None
      & info [ "progen" ] ~docv:"SEED"
          ~doc:"Lint the Progen-generated program for $(docv) instead of a file")
  in
  let selective_flag =
    Arg.(
      value & flag
      & info [ "selective" ]
          ~doc:
            "Harden selectively (elide provably-safe functions) before \
             validating; the validator then also certifies each elision")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the findings as JSON to $(docv)")
  in
  let mutate_arg =
    Arg.(
      value & opt int 0
      & info [ "mutate" ] ~docv:"N"
          ~doc:
            "Also apply N seeded IR mutations (cycling the known classes) \
             and assert the validator catches each applicable one with the \
             expected rule; a missed mutant is a lint failure")
  in
  let leaks_flag =
    Arg.(
      value & flag
      & info [ "leaks" ]
          ~doc:
            "Also run the advisory layout-leak rule: flag hardened \
             functions whose observable outputs are taint-reachable from \
             the layout secrets (ss.rand draws, P-BOX rows, slice \
             addresses); each flow is a lint finding")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically validate a hardened program: frame integrity, P-BOX \
          soundness, index hygiene and FID pairing, plus per-elision \
          certification under --selective.  Exit 1 on any violation or \
          missed mutation.")
    Term.(
      const action $ file_opt $ workload_arg $ progen_arg $ scheme_arg $ no_fid
      $ selective_flag $ seed_arg $ json_arg $ mutate_arg $ leaks_flag
      $ opt_flag)

let serve_cmd =
  let action sessions attack_pct chaos_pct mean_gap workers capacity seed jobs
      engine timeout json_path show_tenants affinity classes breaker storm =
    if sessions < 1 then usage_fail "serve: --sessions must be >= 1";
    if attack_pct < 0 || chaos_pct < 0 || attack_pct + chaos_pct > 100 then
      usage_fail
        "serve: --attack-pct and --chaos-pct must be non-negative and sum to \
         at most 100";
    if mean_gap < 1 then usage_fail "serve: --mean-gap must be >= 1";
    if workers < 1 then usage_fail "serve: --workers must be >= 1";
    if capacity < 1 then usage_fail "serve: --capacity must be >= 1";
    (match jobs with
    | Some j when j < 1 -> usage_fail "serve: --jobs must be >= 1"
    | _ -> ());
    (match timeout with
    | Some t when t <= 0. -> usage_fail "serve: --timeout must be positive"
    | _ -> ());
    (match breaker with
    | Some _ when not affinity ->
        usage_fail "serve: --breaker only makes sense with --affinity"
    | Some (base, trips) when base <= 0. || trips < 0 ->
        usage_fail "serve: --breaker wants BASE>0 and TRIPS>=0"
    | _ -> ());
    let policy =
      if affinity then
        let b =
          match breaker with
          | None -> Server.Policy.default_breaker
          | Some (base_backoff, max_trips) ->
              { Server.Policy.default_breaker with base_backoff; max_trips }
        in
        Some { Server.Policy.affinity = true; breaker = b }
      else None
    in
    let config =
      {
        Harness.Serve.default with
        traffic =
          {
            Server.Traffic.default with
            Server.Traffic.sessions;
            attack_pct;
            chaos_pct;
            mean_gap;
            root = seed;
            storm =
              (if storm then Some (Fault.Storm.plan ~root:seed ~sessions ())
               else None);
          };
        dispatch =
          {
            Server.Dispatch.default with
            Server.Dispatch.virtual_workers = workers;
            queue_capacity = capacity;
            timeout;
            discipline =
              (if classes then Server.Dispatch.Wfq else Server.Dispatch.Fcfs);
            policy;
            degradation =
              (if classes || affinity then
                 Some Server.Dispatch.default_degradation
               else None);
          };
      }
    in
    let backend = Machine.Backend.find engine in
    let width =
      match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
    in
    let t0 = Unix.gettimeofday () in
    let t, stats =
      Sched.Pool.with_pool ~jobs:width @@ fun pool ->
      let t = Harness.Serve.run ~pool ~backend ~config () in
      (t, Sched.Pool.stats pool)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Sutil.Texttable.print
      ~title:"server runtime — mixed benign+attack traffic under load"
      (Harness.Serve.summary_table t);
    if classes then
      Sutil.Texttable.print ~title:"per-class service and latency"
        (Harness.Serve.class_table t);
    if show_tenants then
      Sutil.Texttable.print ~title:"per-tenant service and security"
        (Harness.Serve.tenant_table t);
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            (* the table fields are deterministic; "tenants" embeds the
               per-tenant breakdown so dashboards need not re-parse the
               text table; "pool" carries this run's scheduler counters
               (host-dependent, asserted on by CI's saturation checks) *)
            let doc =
              match
                Sutil.Texttable.to_json
                  ~title:"server runtime — mixed benign+attack traffic"
                  (Harness.Serve.summary_table t)
              with
              | Sutil.Json.Obj fields ->
                  Sutil.Json.Obj
                    (fields
                    @ [ ("tenants",
                          Sutil.Texttable.to_json
                            (Harness.Serve.tenant_table t)) ]
                    @ (if classes then
                         [ ("classes",
                             Sutil.Texttable.to_json
                               (Harness.Serve.class_table t)) ]
                       else [])
                    @ [ ("pool", Sched.Pool.stats_to_json stats) ])
              | other -> other
            in
            Sutil.Json.doc_to_channel ~indent:true oc doc)
    | None -> ());
    (* host-dependent numbers go to stderr, never into the report *)
    Printf.eprintf
      "serve: %.1f s wall; pool: %d jobs, %d retries, %d timeouts, peak queue %d\n"
      wall stats.Sched.Pool.jobs_run stats.Sched.Pool.retries
      stats.Sched.Pool.timeouts stats.Sched.Pool.peak_queue;
    (* a served attack diverging from its batch verdict is a harness
       soundness bug; make it impossible to miss in scripts and CI *)
    if t.Harness.Serve.summary.Server.Metrics.batch_mismatches > 0 then begin
      Printf.eprintf "smokestackc: serve: %d batch-verdict mismatch(es)\n"
        t.Harness.Serve.summary.Server.Metrics.batch_mismatches;
      exit 1
    end
  in
  let sessions_arg =
    Arg.(
      value
      & opt int Server.Traffic.default.Server.Traffic.sessions
      & info [ "sessions" ] ~docv:"N" ~doc:"Sessions in the traffic schedule")
  in
  let attack_arg =
    Arg.(
      value
      & opt int Server.Traffic.default.Server.Traffic.attack_pct
      & info [ "attack-pct" ] ~docv:"PCT"
          ~doc:"Percent of sessions that are attack sessions")
  in
  let chaos_arg =
    Arg.(
      value
      & opt int Server.Traffic.default.Server.Traffic.chaos_pct
      & info [ "chaos-pct" ] ~docv:"PCT"
          ~doc:"Percent of sessions served under an armed fault plan")
  in
  let gap_arg =
    Arg.(
      value
      & opt int Server.Traffic.default.Server.Traffic.mean_gap
      & info [ "mean-gap" ] ~docv:"CYCLES"
          ~doc:"Mean inter-arrival gap in VM cycles (smaller = more overload)")
  in
  let workers_arg =
    Arg.(
      value
      & opt int Server.Dispatch.default.Server.Dispatch.virtual_workers
      & info [ "workers" ] ~docv:"N" ~doc:"Simulated request handlers")
  in
  let capacity_arg =
    Arg.(
      value
      & opt int Server.Dispatch.default.Server.Dispatch.queue_capacity
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Waiting sessions admitted before load-shedding kicks in")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the summary table as JSON to $(docv)")
  in
  let tenants_flag =
    Arg.(
      value & flag
      & info [ "tenants" ] ~doc:"Also print the per-tenant breakdown")
  in
  let affinity_flag =
    Arg.(
      value & flag
      & info [ "affinity" ]
          ~doc:
            "Enable session affinity: per-client circuit breakers with \
             exponential virtual-time backoff and quarantine (see \
             $(b,--breaker))")
  in
  let classes_flag =
    Arg.(
      value & flag
      & info [ "classes" ]
          ~doc:
            "Enable priority classes: weighted-fair queueing over \
             paying/standard/suspect traffic, class-aware shedding, and \
             graceful degradation under fault storms")
  in
  let breaker_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' float int)) None
      & info [ "breaker" ] ~docv:"BASE:TRIPS"
          ~doc:
            "Breaker tuning for $(b,--affinity): base backoff in virtual \
             cycles and trips before permanent quarantine (default \
             20000:3)")
  in
  let storm_flag =
    Arg.(
      value & flag
      & info [ "storm" ]
          ~doc:
            "Overlay a deterministic fault storm on the schedule: burst \
             windows of elevated attack and chaos rates, derived from the \
             seed")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the hardened multi-tenant server harness: a deterministic \
          mixed benign+attack traffic schedule dispatched over a worker \
          pool, reporting throughput, latency percentiles, shed rate and \
          the security ledger.  $(b,--affinity), $(b,--classes) and \
          $(b,--storm) enable the resilience control plane: per-client \
          circuit breakers, weighted-fair priority scheduling and \
          graceful degradation under fault storms.  The report is \
          byte-identical at any $(b,--jobs) and on either engine; exit 1 \
          if any served attack's verdict diverges from the batch harness.")
    Term.(
      const action $ sessions_arg $ attack_arg $ chaos_arg $ gap_arg
      $ workers_arg $ capacity_arg $ seed_arg $ jobs_arg $ engine_arg
      $ timeout_arg $ json_arg $ tenants_flag $ affinity_flag $ classes_flag
      $ breaker_arg $ storm_flag)

let campaign_cmd =
  let action progen store_dir resume seed exec_seed harden scheme no_fid
      engine fuel jobs json_path =
    if progen < 1 then usage_fail "campaign: --progen must be >= 1";
    if fuel < 1 then usage_fail "campaign: --fuel must be >= 1";
    (match jobs with
    | Some j when j < 1 -> usage_fail "campaign: --jobs must be >= 1"
    | _ -> ());
    if String.equal store_dir "" then
      usage_fail "campaign: --store must name a directory";
    if
      resume
      && not
           (Sys.file_exists (Filename.concat store_dir "manifest.json")
           && Sys.file_exists store_dir)
    then
      usage_fail
        "campaign: --resume needs an existing store at %s (nothing to resume \
         — run once without --resume, or point --store at the interrupted \
         campaign's directory)"
        store_dir;
    let store =
      (* a corrupt or foreign store directory is a usage error: the fix
         (pick another directory, or delete it) is the caller's *)
      try Store.Cache.open_disk store_dir with
      | Store.Cache.Incompatible msg -> usage_fail "campaign: %s" msg
      | Sys_error msg -> usage_fail "campaign: --store %s" msg
    in
    let config =
      Store.Campaign.config ~seed ~exec_seed
        ?harden:(if harden then Some (config_of scheme no_fid) else None)
        ~engine ~fuel ~count:progen ()
    in
    if resume then
      Printf.eprintf "campaign: resuming: %d of %d program(s) still to run\n%!"
        (Store.Campaign.remaining ~store config)
        progen;
    let width =
      match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
    in
    let t0 = Unix.gettimeofday () in
    let report, pool_stats =
      Sched.Pool.with_pool ~jobs:width @@ fun pool ->
      let r = Store.Campaign.run ~pool ~store config in
      (r, Sched.Pool.stats pool)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let store_stats = Store.Cache.stats store in
    Sutil.Texttable.print
      ~title:
        (Printf.sprintf "campaign — %d progen program(s) from seed %Ld (%s%s)"
           progen seed
           (Machine.Backend.kind_to_string engine)
           (if harden then ", hardened" else ""))
      (Store.Campaign.report_table report);
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            (* "report" and "digest" are deterministic; "store" and
               "pool" are this run's counters and may differ between a
               cold and a warm invocation *)
            Sutil.Json.doc_to_channel ~indent:true oc
              (Sutil.Json.Obj
                 [
                   ("report", Store.Campaign.report_to_json report);
                   ("digest", Sutil.Json.String report.Store.Campaign.digest);
                   ("store", Store.Cache.stats_to_json store_stats);
                   ("pool", Sched.Pool.stats_to_json pool_stats);
                 ]))
    | None -> ());
    (* host-dependent numbers go to stderr, never into the report *)
    Printf.eprintf
      "campaign: %.1f s wall, %.0f program(s)/s; store: %d hit(s), %d \
       miss(es), %d write(s), %d evicted; pool: %d jobs, peak queue %d\n"
      wall
      (float_of_int progen /. Float.max wall 1e-9)
      store_stats.Store.Cache.hits store_stats.Store.Cache.misses
      store_stats.Store.Cache.writes store_stats.Store.Cache.evicted
      pool_stats.Sched.Pool.jobs_run pool_stats.Sched.Pool.peak_queue
  in
  let progen_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "progen" ] ~docv:"N"
          ~doc:"Number of Progen programs to run (seeds seed, seed+1, ...)")
  in
  let store_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Artifact store directory (created if absent).  Results are \
             keyed on program, configuration, engine and seed; re-running \
             against a populated store replays cached observables without \
             executing anything.")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Require an existing store and report how many programs remain \
             before continuing an interrupted campaign (the final report is \
             byte-identical to an uninterrupted run)")
  in
  let seed_first =
    Arg.(
      value & opt int64 1000L
      & info [ "seed" ] ~docv:"SEED" ~doc:"First Progen seed of the range")
  in
  let exec_seed_arg =
    Arg.(
      value & opt int64 7L
      & info [ "exec-seed" ] ~docv:"SEED"
          ~doc:"Entropy seed for the (hardened) runs; part of every store key")
  in
  let fuel_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget per program")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the report (deterministic) plus this run's store and \
             pool counters (host-dependent) as JSON to $(docv)")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a store-backed execution campaign over a Progen seed range.  \
          Every program's observables are cached in $(b,--store) keyed on \
          (source, config, engine, seed); warm re-runs and $(b,--resume) \
          after a kill replay cached results and render the byte-identical \
          report at any $(b,--jobs) width.")
    Term.(
      const action $ progen_arg $ store_arg $ resume_flag $ seed_first
      $ exec_seed_arg $ harden_flag $ scheme_arg $ no_fid $ engine_arg
      $ fuel_arg $ jobs_arg $ json_arg)

let attack_cmd =
  let action workloads progen chains trials budget store_dir engine jobs
      json_path leak_guided =
    if progen < 0 then usage_fail "attack: --progen must be non-negative";
    if chains < 1 then usage_fail "attack: --chains must be >= 1";
    if trials < 1 then usage_fail "attack: --trials must be >= 1";
    if budget < 1 then usage_fail "attack: --budget must be >= 1";
    (match jobs with
    | Some j when j < 1 -> usage_fail "attack: --jobs must be >= 1"
    | _ -> ());
    (* chain synthesis probes on the reference engine regardless; the
       process default decides what executes the attacks (and is part
       of every store key) *)
    Machine.Backend.set_default engine;
    let avail = Harness.Offense.available_workloads () in
    List.iter
      (fun w ->
        if not (List.mem w avail) then
          usage_fail "attack: unknown workload %S (available: %s)" w
            (String.concat ", " avail))
      workloads;
    let workloads = match workloads with [] -> None | ws -> Some ws in
    let store =
      Option.map
        (fun dir ->
          try Store.Cache.open_disk dir with
          | Store.Cache.Incompatible msg -> usage_fail "attack: %s" msg
          | Sys_error msg -> usage_fail "attack: --store %s" msg)
        store_dir
    in
    let width =
      match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
    in
    let t0 = Unix.gettimeofday () in
    let t, pool_stats =
      Sched.Pool.with_pool ~jobs:width @@ fun pool ->
      let t =
        Harness.Offense.run ~pool ?store ~trials ~brute_budget:budget
          ~max_chains:chains ?workloads ~progen ()
      in
      (t, Sched.Pool.stats pool)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Sutil.Texttable.print ~title:"attack compiler — synthesis summary"
      (Harness.Offense.synth_table t);
    Sutil.Texttable.print
      ~title:"synthesized chains vs defenses (successes/trials)"
      (Harness.Offense.chain_table t);
    Sutil.Texttable.print
      ~title:
        "brute-force entropy under full hardening, synthesized vs \
         hand-written"
      (Harness.Offense.entropy_table t);
    Sutil.Texttable.print ~title:"static grounding of landing chains"
      (Harness.Offense.feedback_table t);
    Printf.printf
      "chains landing undefended: %d; full-hardening successes: %d; all \
       landing chains grounded: %b\n"
      t.Harness.Offense.landed_unhardened t.Harness.Offense.full_successes
      t.Harness.Offense.all_grounded;
    (* --leak-guided: the disclosure-guided planner mode — leak guides
       from Analysis.Leakan pin the revealed offsets and the guided
       brute walk runs next to the blind one on the disclosing target *)
    let guided =
      if not leak_guided then None
      else begin
        let g = Harness.Leakcheck.guided_run ~budget () in
        Sutil.Texttable.print
          ~title:
            "leak-guided attack vs blind Algorithm-1 walk (full hardening)"
          (Harness.Leakcheck.guided_only_table g);
        (match g with
        | None ->
            Printf.printf
              "leak-guided: no guidable chain (no disclosure gadget \
               reaches a plannable buffer)\n"
        | Some g ->
            Printf.printf
              "leak-guided: predicted %.1f attempts, measured mean %.1f, \
               within factor-3 bound: %b\n"
              g.Harness.Leakcheck.predicted g.Harness.Leakcheck.guided_mean
              g.Harness.Leakcheck.within_bound);
        Some g
      end
    in
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            (* the four tables and the summary are deterministic at any
               --jobs, engine and store temperature; "pool" carries this
               run's scheduler counters (host-dependent) *)
            let module J = Sutil.Json in
            J.doc_to_channel ~indent:true oc
              (J.Obj
                 ([
                   ( "synthesis",
                     Sutil.Texttable.to_json (Harness.Offense.synth_table t) );
                   ( "chains",
                     Sutil.Texttable.to_json (Harness.Offense.chain_table t) );
                   ( "entropy",
                     Sutil.Texttable.to_json (Harness.Offense.entropy_table t)
                   );
                   ( "feedback",
                     Sutil.Texttable.to_json (Harness.Offense.feedback_table t)
                   );
                   ( "summary",
                     J.Obj
                       [
                         ( "landed_unhardened",
                           J.Int t.Harness.Offense.landed_unhardened );
                         ("full_successes", J.Int t.Harness.Offense.full_successes);
                         ("all_grounded", J.Bool t.Harness.Offense.all_grounded);
                         ("trials", J.Int t.Harness.Offense.trials);
                       ] );
                 ]
                 @
                 match guided with
                 | None -> []
                 | Some g ->
                     [
                       ( "leak_guided",
                         Sutil.Texttable.to_json
                           (Harness.Leakcheck.guided_only_table g) );
                     ])))
    | None -> ());
    (* host-dependent numbers go to stderr, never into the report *)
    Printf.eprintf "attack: %.1f s wall; pool: %d jobs, peak queue %d\n" wall
      pool_stats.Sched.Pool.jobs_run pool_stats.Sched.Pool.peak_queue;
    (* a machine-synthesized chain landing without static grounding is
       an analyzer soundness bug — make it impossible to miss in CI *)
    if not t.Harness.Offense.all_grounded then begin
      Printf.eprintf
        "smokestackc: attack: a landing chain has no static DOP pair\n";
      exit 1
    end
  in
  let workload_arg =
    Arg.(
      value & opt_all string []
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Attack only this workload (repeatable); default: every \
             built-in target — the six synthetic pentest variants plus the \
             $(b,proftpd-io) and $(b,wireshark-io) request loops")
  in
  let progen_arg =
    Arg.(
      value & opt int 0
      & info [ "progen" ] ~docv:"N"
          ~doc:
            "Also synthesize against N Progen-generated programs (seeds \
             9001, 9002, ...); input-free programs honestly yield zero \
             deliverable chains and appear only in the synthesis table")
  in
  let chains_arg =
    Arg.(
      value & opt int 8
      & info [ "chains" ] ~docv:"N"
          ~doc:"Cap the synthesized chain set per target")
  in
  let trials_arg =
    Arg.(
      value & opt int 6
      & info [ "trials" ] ~docv:"N"
          ~doc:"Fresh-process attempts per (chain, defense) cell")
  in
  let budget_arg =
    Arg.(
      value & opt int 600
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Restart-after-crash attempts per brute-force entropy \
             measurement")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Artifact store directory (created if absent): every cell's \
             verdict list is keyed on (chain, config, engine, parameters); \
             a warm re-run replays cached verdicts and reports identically")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the four tables and the summary (all deterministic) \
             as JSON to $(docv)")
  in
  let leak_guided_flag =
    Arg.(
      value & flag
      & info [ "leak-guided" ]
          ~doc:
            "Also run the leak-guided planner mode: consume the \
             Analysis.Leakan disclosure gadgets of the disclosing \
             $(b,stack-leaky) target, pin the revealed offsets mid-session \
             and shrink the Algorithm-1 guess, reporting measured guided \
             attempts against the degraded-entropy prediction (and the \
             blind walk next to it); shares $(b,--budget)")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Run the automated DOP-attack compiler: synthesize gadget chains \
          from static analysis plus semantic probing of an unhardened \
          replica, execute them against undefended, selectively hardened \
          and fully hardened builds, and report survival, brute-force \
          entropy vs the hand-written corpus, and static grounding of \
          every landing chain.  The report is byte-identical at any \
          $(b,--jobs), on either engine, and on a warm store re-run; exit 1 \
          if a landing chain has no static DOP pair.")
    Term.(
      const action $ workload_arg $ progen_arg $ chains_arg $ trials_arg
      $ budget_arg $ store_arg $ engine_arg $ jobs_arg $ json_arg
      $ leak_guided_flag)

let () =
  (* force the engine library to link so --engine=bytecode resolves *)
  Engine.Backend.install ();
  (* register the static validator as harden's post-condition hook and
     the elision oracle behind Config.selective *)
  Analysis.Validate.install ();
  let info =
    Cmd.info "smokestackc" ~version:"1.0.0"
      ~doc:"MiniC compiler with Smokestack runtime stack-layout randomization"
  in
  (* ~catch:false: an escaped exception becomes a one-line diagnostic
     and exit 1, not a backtrace dump; cmdliner's own CLI errors
     (unknown flag, bad conversion) are remapped to exit 2. *)
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             run_cmd;
             ir_cmd;
             pbox_cmd;
             layouts_cmd;
             entropy_cmd;
             analyze_cmd;
             lint_cmd;
             serve_cmd;
             campaign_cmd;
             attack_cmd;
           ])
    with e ->
      Printf.eprintf "smokestackc: error: %s\n" (one_line (Printexc.to_string e));
      1
  in
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
