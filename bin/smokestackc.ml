(* smokestackc — compile, harden, inspect and run MiniC programs.

   Examples:
     smokestackc run examples/programs/hello.c
     smokestackc run --scheme AES-10 --seed 42 prog.c --input "bytes"
     smokestackc ir --harden prog.c
     smokestackc pbox prog.c *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile ?optimize path =
  match Minic.Driver.compile_result ?optimize (read_file path) with
  | Ok prog -> prog
  | Error msg ->
      prerr_endline msg;
      exit 1

let opt_flag =
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the -O1 pipeline before anything else")

let scheme_conv =
  let parse s =
    match Rng.Scheme.of_name s with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S (pseudo, AES-1..AES-10, RDRAND)" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Rng.Scheme.name s))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Rng.Scheme.aes10
    & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Randomness scheme for hardening")

let seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Entropy seed (reproducible runs)")

let harden_flag =
  Arg.(value & flag & info [ "harden" ] ~doc:"Apply Smokestack before the action")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "input" ] ~docv:"BYTES" ~doc:"Bytes served to read_input")

let no_fid =
  Arg.(value & flag & info [ "no-fid-checks" ] ~doc:"Disable function-identifier checks")

let config_of scheme no_fid =
  let c = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
  if no_fid then { c with Smokestack.Config.fid_checks = false } else c

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print a call/intrinsic trace after the run")

let engine_conv =
  let parse s =
    match Machine.Backend.kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S (ref, bytecode)" s))
  in
  Arg.conv
    (parse, fun fmt k -> Format.pp_print_string fmt (Machine.Backend.kind_to_string k))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Machine.Backend.Reference
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,ref) (tree-walking reference \
           interpreter) or $(b,bytecode) (compiled dispatch loop; \
           identical observable behaviour, several times faster)")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for multi-seed runs (default: the host's \
           recommended domain count).  Output order is seed order \
           regardless of N.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:
          "Run N times with consecutive seeds (seed, seed+1, ...); \
           combined with $(b,--jobs) the runs execute in parallel.  \
           N=1 (the default) is the plain single run.")

let run_cmd =
  let action file harden scheme seed input no_fid optimize trace engine jobs
      seeds =
    if seeds < 1 then begin
      prerr_endline "smokestackc run: --seeds must be >= 1";
      exit 2
    end;
    let prog = compile ~optimize file in
    (* One self-contained run; returns everything to print so that
       multi-seed runs can execute as pool jobs and still emit output in
       seed order. *)
    let run_one ~seed =
      let st =
        if harden then
          let hardened =
            Smokestack.Harden.harden (config_of scheme no_fid) prog
          in
          Smokestack.Harden.prepare hardened
            ~entropy:(Crypto.Entropy.create ~seed)
        else Machine.Exec.prepare prog
      in
      let tracer =
        if trace then begin
          let t = Machine.Trace.create () in
          Machine.Trace.attach t st;
          Some t
        end
        else None
      in
      Machine.Exec.set_input st (Machine.Exec.input_string input);
      let backend = Machine.Backend.find engine in
      let outcome, stats = backend.Machine.Backend.run st in
      (outcome, stats, Option.map (Machine.Trace.render ~limit:200) tracer)
    in
    let print_result ?seed (outcome, (stats : Machine.Exec.stats), trace_str) =
      Option.iter prerr_string trace_str;
      Option.iter (Printf.printf "== seed %Ld ==\n") seed;
      print_string stats.output;
      Printf.printf
        "-- %s | cycles=%.0f instrs=%d calls=%d max-depth=%d max-frame=%dB rss=%s\n"
        (Machine.Exec.outcome_to_string outcome)
        stats.cycles stats.instr_count stats.call_count stats.max_depth
        stats.max_frame_bytes
        (Sutil.Texttable.fmt_bytes stats.rss_bytes);
      match outcome with Machine.Exec.Exit 0L -> true | _ -> false
    in
    if seeds = 1 then begin
      if not (print_result (run_one ~seed)) then exit 1
    end
    else begin
      let results =
        Sched.Pool.with_pool ?jobs @@ fun pool ->
        Sched.Pool.run_all pool
          (List.init seeds (fun i ->
               let seed = Int64.add seed (Int64.of_int i) in
               Sched.Job.v ~id:(Printf.sprintf "run/seed-%Ld" seed) ~seed
                 (fun () -> (seed, run_one ~seed))))
      in
      let ok =
        List.fold_left
          (fun acc (seed, result) -> print_result ~seed result && acc)
          true results
      in
      if not ok then exit 1
    end
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a MiniC program")
    Term.(
      const action $ file_arg $ harden_flag $ scheme_arg $ seed_arg $ input_arg
      $ no_fid $ opt_flag $ trace_flag $ engine_arg $ jobs_arg $ seeds_arg)

let ir_cmd =
  let action file harden scheme no_fid optimize =
    let prog = compile ~optimize file in
    let prog =
      if harden then
        (Smokestack.Harden.harden (config_of scheme no_fid) prog).prog
      else prog
    in
    print_string (Ir.Printer.prog_to_string prog)
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Print the (optionally hardened) IR")
    Term.(const action $ file_arg $ harden_flag $ scheme_arg $ no_fid $ opt_flag)

let pbox_cmd =
  let action file scheme no_fid =
    let prog = compile file in
    let hardened = Smokestack.Harden.harden (config_of scheme no_fid) prog in
    let pbox = hardened.pbox in
    Printf.printf "P-BOX: %d shared table(s), %d dynamically-decoded frame(s), %s of read-only data\n"
      (Array.length pbox.entries) (Array.length pbox.dyns)
      (Sutil.Texttable.fmt_bytes (Smokestack.Pbox.blob_bytes pbox));
    Array.iteri
      (fun i (e : Smokestack.Pbox.entry) ->
        Printf.printf "  table %d: %d slot(s), %d rows (%d materialized), users: %s\n"
          i
          (Array.length e.canon_meta)
          (Array.length e.table.offsets)
          e.rows_materialized
          (String.concat ", " e.users))
      pbox.entries;
    Array.iter
      (fun (d : Smokestack.Pbox.dyn_binding) ->
        Printf.printf "  dynamic: %s — %d slots, decoded per invocation\n"
          d.dfunc (Array.length d.metas))
      pbox.dyns
  in
  Cmd.v
    (Cmd.info "pbox" ~doc:"Summarize the P-BOX a program would get")
    Term.(const action $ file_arg $ scheme_arg $ no_fid)

let layouts_cmd =
  let action file func runs scheme seed =
    let prog = compile file in
    let hardened = Smokestack.Harden.harden (config_of scheme false) prog in
    (* observe the chosen frame layout by dumping the offsets the
       runtime would select across invocations *)
    let binding = Smokestack.Pbox.binding hardened.pbox func in
    match binding with
    | None ->
        Printf.eprintf "function %s has no permuted frame\n" func;
        exit 1
    | Some b -> (
        match b.mode with
        | Smokestack.Pbox.Dynamic _ ->
            Printf.printf "%s uses per-invocation dynamic decoding (%d slots)\n"
              func b.n_orig
        | Smokestack.Pbox.Exhaustive _ ->
            let entropy = Crypto.Entropy.create ~seed in
            let gen =
              Rng.Generator.create hardened.config.scheme ~entropy
            in
            let e = Option.get (Smokestack.Pbox.entry_of hardened.pbox b) in
            for _ = 1 to runs do
              let idx =
                Int64.to_int
                  (Int64.logand (Rng.Generator.next_u64 gen)
                     (Int64.of_int (e.rows_materialized - 1)))
              in
              let offs = Smokestack.Pbox.lookup_offsets hardened.pbox b ~row:idx in
              Printf.printf "row %5d: [%s]\n" idx
                (String.concat "; "
                   (Array.to_list (Array.map string_of_int offs)))
            done)
  in
  let func_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FUNC" ~doc:"Function whose layouts to sample")
  in
  let runs_arg =
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc:"Invocations to sample")
  in
  Cmd.v
    (Cmd.info "layouts"
       ~doc:"Sample the per-invocation frame layouts of a function")
    Term.(const action $ file_arg $ func_arg $ runs_arg $ scheme_arg $ seed_arg)

let entropy_cmd =
  let action file scheme =
    let prog = compile file in
    let hardened = Smokestack.Harden.harden (config_of scheme false) prog in
    List.iter
      (fun fname ->
        match Smokestack.Pbox.binding hardened.pbox fname with
        | None -> ()
        | Some b ->
            let t = Smokestack.Entropy_an.of_binding hardened.pbox b in
            Printf.printf
              "%s: %d layout(s) considered, %d distinct; whole-frame \
               collision %.2e; expected brute-force attempts %.0f\n"
              fname t.rows t.distinct_layouts t.whole_frame_collision
              t.expected_bruteforce_attempts;
            List.iter
              (fun (s : Smokestack.Entropy_an.slot_stats) ->
                Printf.printf
                  "    slot %d: %d possible offsets, collision %.3f\n"
                  s.orig_index s.distinct_offsets s.collision_probability)
              t.per_slot)
      (Smokestack.Harden.permuted_functions hardened)
  in
  Cmd.v
    (Cmd.info "entropy"
       ~doc:"Quantify each permuted frame's layout entropy (what a \
             brute-force attacker faces)")
    Term.(const action $ file_arg $ scheme_arg)

let analyze_cmd =
  let action file workload json_path no_score optimize =
    let name, prog =
      match (workload, file) with
      | Some w, _ -> (
          match w with
          | "librelp" -> (w, Lazy.force Apps.Librelp.program)
          | "wireshark" -> (w, Lazy.force Apps.Wireshark.program)
          | "proftpd" -> (w, Lazy.force Apps.Proftpd.program)
          | _ -> (
              match Apps.Spec.find w with
              | Some wl -> (wl.Apps.Spec.wname, Lazy.force wl.Apps.Spec.program)
              | None -> (
                  match Apps.Synth.find w with
                  | Some v ->
                      ( v.Apps.Synth.vname,
                        Minic.Driver.compile v.Apps.Synth.source )
                  | None ->
                      Printf.eprintf
                        "unknown workload %S (an apps name like gobmk, a \
                         real-vuln program: librelp, wireshark, proftpd, or \
                         a synth variant like stack-direct)\n"
                        w;
                      exit 2)))
      | None, Some f -> (Filename.basename f, compile ~optimize f)
      | None, None ->
          prerr_endline "smokestackc analyze: need a FILE or --workload NAME";
          exit 2
    in
    let report = Analysis.Report.analyze_prog ~name ~score:(not no_score) prog in
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc
              (Sutil.Json.to_string ~indent:true (Analysis.Report.to_json report));
            output_char oc '\n')
    | None -> ());
    print_string (Analysis.Report.to_text report)
  in
  let file_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Analyze a built-in workload (an application kernel like \
             $(b,gobmk) or $(b,proftpd-io), or a synthetic pentest variant \
             like $(b,stack-direct)) instead of a file")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the full report as JSON to $(docv)")
  in
  let no_score_arg =
    Arg.(
      value & flag
      & info [ "no-score" ]
          ~doc:
            "Skip the per-defense expected-attempts scoring (classification \
             and pair enumeration only; much faster)")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static DOP attack-surface analysis: classify stack slots as \
          overflow-capable or safe, enumerate (buffer, victim) DOP pairs, \
          and score expected brute-force attempts per defense")
    Term.(
      const action $ file_opt $ workload_arg $ json_arg $ no_score_arg
      $ opt_flag)

let () =
  (* force the engine library to link so --engine=bytecode resolves *)
  Engine.Backend.install ();
  let info =
    Cmd.info "smokestackc" ~version:"1.0.0"
      ~doc:"MiniC compiler with Smokestack runtime stack-layout randomization"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; ir_cmd; pbox_cmd; layouts_cmd; entropy_cmd; analyze_cmd ]))
