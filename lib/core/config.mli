(** Smokestack configuration.

    One value of this type fixes everything about a hardening run: the
    randomness scheme for permutation selection, which of the paper's
    §III-E optimizations are enabled, how large a function's permutation
    table may get before switching to on-demand decoding, and whether
    the auxiliary defenses (function-identifier checks, VLA padding) are
    active. *)

type t = {
  scheme : Rng.Scheme.t;  (** permutation-index generator (Table I) *)
  pow2_pbox : bool;
      (** §III-E "P-BOX size of power of 2": materialize tables with a
          power-of-two row count so index selection is an AND instead of
          a modulo *)
  share_tables : bool;
      (** §III-E "Rearranging Stack Allocations": functions whose
          allocations form the same multiset share one table *)
  round_up_allocs : bool;
      (** §III-E "Rounding up Allocations": a function may use the table
          of a one-primitive-larger frame, paying a dummy slot *)
  max_exhaustive_vars : int;
      (** materialize the full n!-row table only for n <= this; larger
          frames decode their permutation at the prologue (DESIGN.md
          extension — the paper is silent on large n) *)
  fid_checks : bool;  (** §III-D.2 function-identifier XOR checks *)
  vla_padding : bool;  (** §III-D.1 random dummy alloca before each VLA *)
  vla_pad_max : int;  (** exclusive bound on the dummy's byte size *)
  rekey_interval : int;
      (** AES-CTR blocks between key/nonce refreshes (the paper's
          universal call counter maximum) *)
  exclude : string list;
      (** functions left un-instrumented — the §III-A "modular support
          to enable gradual migration of code" requirement *)
  redraw_interval : int;
      (** draw a fresh permutation index every [n]-th request instead
          of every one.  1 (the default, the paper's design) is
          per-invocation; larger values interpolate toward static
          permutation and re-open the same-run probe-then-exploit
          window the E11 experiment measures. *)
  selective : bool;
      (** analysis-guided selective hardening (DESIGN.md §12): elide
          the permutation/FID machinery for functions every one of
          whose slots is provably overflow-safe and non-escaping and
          that appear in no DOP pair.  Elision is {e draw-preserving}
          — the prologue still consumes one randomness draw — so the
          generator stream, and with it every attack outcome, is
          bit-identical to full hardening.  Requires the elision
          oracle of [Analysis.Validate.install] to be registered. *)
}

val default : t
(** AES-10, every optimization and auxiliary defense on,
    [max_exhaustive_vars = 6], [vla_pad_max = 128],
    [rekey_interval = 65536], nothing excluded. *)

val with_exclude : string list -> t -> t

val with_scheme : Rng.Scheme.t -> t -> t

val with_selective : bool -> t -> t

val validate : t -> (t, string) result
(** Checks ranges ([max_exhaustive_vars] within factorial limits, VLA
    pad bound positive, AES rounds in range). *)

val fingerprint : t -> string
(** Canonical, human-readable rendering of every field in a fixed
    order — [fingerprint a = fingerprint b] iff [a] and [b] harden
    identically.  The configuration component of [Store.Key]. *)
