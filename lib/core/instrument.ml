let effective_metas (config : Config.t) (slots : Slots.t) =
  let static = Slots.meta slots in
  if config.fid_checks && (Array.length static > 0 || slots.vla_count > 0) then
    Array.append static [| (8, 8) |]
  else static

let excluded (config : Config.t) name = List.mem name config.exclude

let collect_metas ?(elided = []) config (prog : Ir.Prog.t) =
  List.filter_map
    (fun f ->
      if excluded config f.Ir.Func.name || List.mem f.Ir.Func.name elided then
        None
      else Some (f.Ir.Func.name, effective_metas config (Slots.discover f)))
    prog.funcs

(* Check that no fixed-size alloca hides outside the entry block: the
   pass only rewrites entry allocas, so anything else would silently
   stay un-randomized. *)
let check_alloca_placement (f : Ir.Func.t) =
  match f.blocks with
  | [] -> ()
  | _entry :: rest ->
      List.iter
        (fun (b : Ir.Func.block) ->
          List.iter
            (function
              | Ir.Instr.Alloca { count = None; name; _ } ->
                  invalid_arg
                    (Printf.sprintf
                       "Smokestack.Instrument: fixed-size alloca %S outside the \
                        entry block of %s"
                       name f.name)
              | _ -> ())
            b.instrs)
        rest

(* Insert a randomly-sized dummy alloca before every VLA (§III-D.1). *)
let pad_vlas (f : Ir.Func.t) =
  List.iter
    (fun (b : Ir.Func.block) ->
      b.instrs <-
        List.concat_map
          (fun i ->
            match i with
            | Ir.Instr.Alloca { count = Some _; _ } ->
                let r_pad = Ir.Func.fresh_reg f in
                [
                  Ir.Instr.Intrinsic
                    { dst = Some r_pad; name = Abi.intr_pad; args = [] };
                  Ir.Instr.Alloca
                    {
                      dst = Ir.Func.fresh_reg f;
                      ty = Ir.Ty.I8;
                      count = Some (Ir.Instr.Reg r_pad);
                      name = "__ss_vla_pad";
                    };
                  i;
                ]
            | _ -> [ i ])
          b.instrs)
    f.blocks

(* Draw-preserving elision (selective hardening, DESIGN.md §12): the
   function keeps its original fixed-layout allocas — the analysis
   proved no slot can overflow or escape, so permuting them defends
   nothing — but the prologue still performs the one randomness draw
   full hardening would have made.  That keeps the generator stream
   (and the rekey/redraw counters behind it) bit-identical to full
   hardening, which is what lets Harness.Crossval assert attack
   outcomes are unchanged rather than merely similar. *)
let elide_function (config : Config.t) (f : Ir.Func.t) =
  let slots = Slots.discover f in
  if slots.vla_count > 0 then
    invalid_arg
      (Printf.sprintf
         "Smokestack.Instrument: elided function %s has a VLA (the elision \
          oracle must reject VLA functions: their pad draws cannot be \
          preserved without instrumentation)"
         f.name);
  if Array.length (effective_metas config slots) > 0 then begin
    let entry = Ir.Func.entry f in
    let r = Ir.Func.fresh_reg f in
    entry.instrs <-
      Ir.Instr.Intrinsic { dst = Some r; name = Abi.intr_rand; args = [] }
      :: entry.instrs;
    Ir.Func.add_attr f Abi.smokestack_elided_attr
  end

let instrument_function ?(elided = []) (config : Config.t) ~(pbox : Pbox.t)
    (f : Ir.Func.t) =
  check_alloca_placement f;
  if excluded config f.name then ()
  else if List.mem f.name elided then elide_function config f
  else
  let slots = Slots.discover f in
  let metas = effective_metas config slots in
  if Array.length metas = 0 && slots.vla_count = 0 then ()
  else begin
    if config.vla_padding then pad_vlas f;
    if Array.length metas = 0 then ()
    else begin
      let binding =
        match Pbox.binding pbox f.name with
        | Some b -> b
        | None ->
            invalid_arg
              (Printf.sprintf "Smokestack.Instrument: no P-BOX binding for %s"
                 f.name)
      in
      let entry = Ir.Func.entry f in
      let fresh () = Ir.Func.fresh_reg f in
      let prologue = ref [] in
      let emit i = prologue := i :: !prologue in
      let max_total = Pbox.max_total pbox binding in
      let r_total = fresh () in
      emit
        (Ir.Instr.Alloca
           {
             dst = r_total;
             ty = Ir.Ty.Array (Ir.Ty.I8, max_total);
             count = None;
             name = "__ss_total";
           });
      (* Destination registers in meta order: the original allocas',
         then (with FID checks) a fresh one for the FID slot. *)
      let fid_slot_reg = if config.fid_checks then Some (fresh ()) else None in
      let all_dsts =
        List.map (fun (s : Slots.slot) -> s.reg) slots.static_slots
        @ Option.to_list fid_slot_reg
      in
      (* addr-of-column -> load u32 -> slice gep, one triple per slot *)
      let emit_slot_gep ~column_addr_of dst i =
        let r_col = column_addr_of i in
        let r_off = fresh () in
        emit (Ir.Instr.Load { dst = r_off; ty = Ir.Ty.I32; addr = Ir.Instr.Reg r_col });
        emit
          (Ir.Instr.Gep
             {
               dst;
               base = Ir.Instr.Reg r_total;
               offset = 0;
               index = Some (Ir.Instr.Reg r_off, 1);
             })
      in
      (match binding.mode with
      | Pbox.Exhaustive { entry_index; canon_of_orig; _ } ->
          let e = pbox.entries.(entry_index) in
          let stride = Pbox.row_stride e in
          let r_rand = fresh () in
          emit
            (Ir.Instr.Intrinsic
               { dst = Some r_rand; name = Abi.intr_rand; args = [] });
          let r_idx = fresh () in
          let op, rhs =
            if config.pow2_pbox then
              (Ir.Instr.And, Int64.of_int (e.rows_materialized - 1))
            else (Ir.Instr.Urem, Int64.of_int e.rows_materialized)
          in
          emit
            (Ir.Instr.Binop
               { dst = r_idx; op; lhs = Ir.Instr.Reg r_rand; rhs = Ir.Instr.Imm rhs });
          let r_row = fresh () in
          emit
            (Ir.Instr.Gep
               {
                 dst = r_row;
                 base = Ir.Instr.Global Abi.pbox_global;
                 offset = e.byte_offset;
                 index = Some (Ir.Instr.Reg r_idx, stride);
               });
          List.iteri
            (fun i dst ->
              emit_slot_gep dst i ~column_addr_of:(fun i ->
                  let r_col = fresh () in
                  emit
                    (Ir.Instr.Gep
                       {
                         dst = r_col;
                         base = Ir.Instr.Reg r_row;
                         offset = 4 * canon_of_orig.(i);
                         index = None;
                       });
                  r_col))
            all_dsts
      | Pbox.Dynamic { dyn_id } ->
          emit
            (Ir.Instr.Intrinsic
               {
                 dst = None;
                 name = Abi.intr_layout_dynamic;
                 args = [ Ir.Instr.Imm (Int64.of_int dyn_id); Ir.Instr.Reg r_total ];
               });
          List.iteri
            (fun i dst ->
              emit_slot_gep dst i ~column_addr_of:(fun i ->
                  let r_col = fresh () in
                  emit
                    (Ir.Instr.Gep
                       {
                         dst = r_col;
                         base = Ir.Instr.Reg r_total;
                         offset = 4 * i;
                         index = None;
                       });
                  r_col))
            all_dsts);
      (* FID prologue: slot <- fid XOR key (§III-D.2). *)
      (match fid_slot_reg with
      | Some slot ->
          let fid = Abi.fid_const f.name in
          let r_key = fresh () in
          emit
            (Ir.Instr.Intrinsic
               { dst = Some r_key; name = Abi.intr_fid_key; args = [] });
          let r_x = fresh () in
          emit
            (Ir.Instr.Binop
               {
                 dst = r_x;
                 op = Ir.Instr.Xor;
                 lhs = Ir.Instr.Imm fid;
                 rhs = Ir.Instr.Reg r_key;
               });
          emit
            (Ir.Instr.Store
               { ty = Ir.Ty.I64; value = Ir.Instr.Reg r_x; addr = Ir.Instr.Reg slot })
      | None -> ());
      (* Rebuild the entry block: prologue, then the original
         instructions minus the replaced allocas. *)
      let body =
        List.filter
          (function Ir.Instr.Alloca { count = None; _ } -> false | _ -> true)
          entry.instrs
      in
      entry.instrs <- List.rev !prologue @ body;
      (* FID epilogue before every return. *)
      (match fid_slot_reg with
      | Some slot ->
          let fid = Abi.fid_const f.name in
          List.iter
            (fun (b : Ir.Func.block) ->
              match b.term with
              | Ir.Instr.Ret _ ->
                  let r_v = fresh () in
                  let r_k = fresh () in
                  let r_y = fresh () in
                  b.instrs <-
                    b.instrs
                    @ [
                        Ir.Instr.Load
                          { dst = r_v; ty = Ir.Ty.I64; addr = Ir.Instr.Reg slot };
                        Ir.Instr.Intrinsic
                          { dst = Some r_k; name = Abi.intr_fid_key; args = [] };
                        Ir.Instr.Binop
                          {
                            dst = r_y;
                            op = Ir.Instr.Xor;
                            lhs = Ir.Instr.Reg r_v;
                            rhs = Ir.Instr.Reg r_k;
                          };
                        Ir.Instr.Intrinsic
                          {
                            dst = None;
                            name = Abi.intr_fid_assert;
                            args = [ Ir.Instr.Reg r_y; Ir.Instr.Imm fid ];
                          };
                      ]
              | _ -> ())
            f.blocks
      | None -> ());
      Ir.Func.add_attr f Abi.smokestack_attr
    end
  end

let add_runtime_globals ~(pbox : Pbox.t) (prog : Ir.Prog.t) =
  if Option.is_none (Ir.Prog.find_global prog Abi.pbox_global) then
    Ir.Prog.add_global prog ~name:Abi.pbox_global
      ~ty:(Ir.Ty.Array (Ir.Ty.I8, max 4 (Pbox.blob_bytes pbox)))
      ~init:pbox.blob ~writable:false ();
  if Option.is_none (Ir.Prog.find_global prog Abi.prng_state_global) then
    Ir.Prog.add_global prog ~name:Abi.prng_state_global ~ty:Ir.Ty.I64
      ~writable:true ()

let run ?elided config ~pbox (prog : Ir.Prog.t) =
  add_runtime_globals ~pbox prog;
  List.iter (instrument_function ?elided config ~pbox) prog.funcs

let pass ?elided config ~pbox =
  Ir.Pass.Module_pass
    { name = "smokestack-instrument"; run = run ?elided config ~pbox }
