let pbox_global = "__ss_pbox"
let prng_state_global = "__ss_prng_state"
let intr_rand = "ss.rand"
let intr_pad = "ss.pad"
let intr_fid_key = "ss.fid_key"
let intr_fid_assert = "ss.fid_assert"
let intr_layout_dynamic = "ss.layout_dynamic"
let smokestack_attr = "smokestack"
let smokestack_elided_attr = "smokestack-elided"

(* FNV-1a, 64-bit. *)
let fid_const name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  !h
