(** Names shared between the instrumentation pass and the runtime. *)

val pbox_global : string
(** Read-only global holding the serialized P-BOX. *)

val prng_state_global : string
(** Writable 8-byte global holding the pseudo-scheme generator state —
    deliberately attacker-readable, as the paper's threat model
    demands. *)

val intr_rand : string
(** [i64 ss.rand()] — draw a permutation index. *)

val intr_pad : string
(** [i64 ss.pad()] — random byte count for VLA dummy allocas. *)

val intr_fid_key : string
(** [i64 ss.fid_key()] — the per-run XOR key (lives outside VM memory,
    modelling a reserved register). *)

val intr_fid_assert : string
(** [ss.fid_assert(decoded, expected)] — raises detection on
    mismatch. *)

val intr_layout_dynamic : string
(** [ss.layout_dynamic(dyn_id, frame_base)] — decode a fresh
    permutation for an oversized frame, writing per-slot u32 offsets at
    the frame base. *)

val fid_const : string -> int64
(** The unique load-time function identifier (stable FNV-1a hash of the
    function name). *)

val smokestack_attr : string
(** Attribute set on hardened functions. *)

val smokestack_elided_attr : string
(** Attribute set on functions that selective hardening
    ([Config.selective]) left with their fixed frame layout: the
    analysis proved every slot overflow-safe and non-escaping, so the
    permutation/FID machinery is elided.  The prologue still consumes
    one randomness draw (draw-preserving elision), keeping the
    generator stream identical to full hardening. *)
