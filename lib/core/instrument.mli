(** The Smokestack instrumentation pass (paper §III-D.1/2, §IV-B).

    For every function with automatic variables, the pass

    - inserts one total-allocation [alloca] sized to the worst-case
      permuted frame;
    - draws a random permutation index at the prologue
      ({!Abi.intr_rand}), masks it (power-of-2 tables) or reduces it
      modulo the row count, and indexes the function's P-BOX table;
    - replaces each original [alloca] with a [gep] slice into the total
      allocation at the offset loaded from the selected row;
    - precedes every VLA with a randomly-sized dummy alloca
      ({!Abi.intr_pad});
    - when FID checks are enabled, reserves an extra permuted slot that
      the prologue fills with [fid XOR key] and every epilogue verifies
      ({!Abi.intr_fid_assert}).

    The pass also embeds the serialized P-BOX as the read-only
    {!Abi.pbox_global} and declares the writable
    {!Abi.prng_state_global}. *)

val effective_metas : Config.t -> Slots.t -> (int * int) array
(** The [(size, alignment)] list handed to {!Pbox.build}: the static
    slots in program order, plus the trailing 8-byte FID slot when FID
    checks are on.  {!run} relies on the same convention. *)

val collect_metas :
  ?elided:string list -> Config.t -> Ir.Prog.t -> (string * (int * int) array) list
(** [effective_metas] for every function in the program, skipping
    excluded and elided ones (neither gets a P-BOX binding). *)

val run : ?elided:string list -> Config.t -> pbox:Pbox.t -> Ir.Prog.t -> unit
(** Transforms the program in place.  Functions in [elided] (selective
    hardening) receive the draw-preserving elision treatment instead of
    the full instrumentation: their allocas stay put, the prologue
    consumes one {!Abi.intr_rand} draw so the generator stream matches
    full hardening exactly, and the {!Abi.smokestack_elided_attr}
    attribute records the decision.  Raises [Invalid_argument] if a
    fixed-size alloca appears outside an entry block (the front end
    never emits those) or an elided function has a VLA. *)

val pass : ?elided:string list -> Config.t -> pbox:Pbox.t -> Ir.Pass.t
