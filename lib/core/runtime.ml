let scheme_cost = function
  | Rng.Scheme.Pseudo -> Machine.Cost.rng_pseudo
  | Rng.Scheme.Aes_ctr { rounds } -> Machine.Cost.rng_aes ~rounds
  | Rng.Scheme.Rdrand -> Machine.Cost.rng_rdrand

let dynamic_offsets_for_draw (dyn : Pbox.dyn_binding) draw =
  let n = Array.length dyn.metas in
  let perm_rng = Sutil.Simrng.create ~seed:draw in
  let order = Array.init n Fun.id in
  Sutil.Simrng.shuffle perm_rng order;
  let offsets = Array.make n 0 in
  let ind = ref dyn.scratch_bytes in
  Array.iter
    (fun slot ->
      let size, alignment = dyn.metas.(slot) in
      ind := Sutil.Align.align_up !ind ~alignment;
      offsets.(slot) <- !ind;
      ind := !ind + size)
    order;
  offsets

let install ?gen (config : Config.t) ~(pbox : Pbox.t) ~entropy
    (st : Machine.Exec.state) =
  let scheme = config.scheme in
  let gen =
    match gen with
    | Some g -> g
    | None ->
        Rng.Generator.create ~rekey_interval:config.rekey_interval scheme
          ~entropy
  in
  (* Every degradation of the randomness source becomes a structured
     trace event, so Machine.Trace transcripts show the fallback chain
     in flight.  The hook is read at event time: attaching a tracer
     after install still sees later degradations. *)
  Rng.Generator.set_on_degrade gen (fun (d : Rng.Generator.degradation) ->
      match st.Machine.Exec.on_event with
      | Some emit ->
          emit
            (Machine.Exec.Ev_rng_degraded
               {
                 from_ = Rng.Scheme.name d.from_scheme;
                 to_ = Option.map Rng.Scheme.name d.to_scheme;
                 reason = d.reason;
               })
      | None -> ());
  (* Charge the cost of the scheme actually serving draws, so a
     degraded run's cycle accounting reflects its fallback; identical
     to the static cost while no degradation has happened. *)
  let cost () = scheme_cost (Rng.Generator.current_scheme gen) in
  let fid_key = Crypto.Entropy.u64 entropy in
  (* For the pseudo scheme the live state word sits in VM data memory:
     mirror the seed in, and route every draw through memory so an
     attacker with a read (or write) primitive sees exactly what the
     paper's unsafe baseline exposes. *)
  let state_addr =
    if Rng.Scheme.memory_resident_state scheme then begin
      let addr = Machine.Exec.global_addr st Abi.prng_state_global in
      Machine.Memory.store st.mem ~width:8 addr (Rng.Generator.pseudo_state gen);
      Some addr
    end
    else None
  in
  let raw_draw () =
    match state_addr with
    | Some addr ->
        let s = Machine.Memory.load st.mem ~width:8 addr in
        let s' = Rng.Pseudo.step s in
        Machine.Memory.store st.mem ~width:8 addr s';
        Rng.Pseudo.output s'
    | None -> (
        (* a fail-secure generator with its fallback chain exhausted
           aborts the run as a detection, never as a raw exception *)
        try Rng.Generator.next_u64 gen
        with Rng.Generator.Source_failed reason ->
          raise
            (Machine.Exec.Detect
               ("smokestack: randomness source failed, aborting (fail-secure): "
              ^ reason)))
  in
  (* redraw_interval > 1 reuses the last index for a window of requests
     (the E11 periodic-rerandomization ablation); 1 is the paper. *)
  let cached = ref None in
  let since_redraw = ref 0 in
  let draw () =
    match !cached with
    | Some v when !since_redraw < config.redraw_interval ->
        incr since_redraw;
        v
    | _ ->
        let v = raw_draw () in
        cached := Some v;
        since_redraw := 1;
        v
  in
  Machine.Exec.register_intrinsic st Abi.intr_rand (fun st _args ->
      Machine.Exec.charge st (cost ());
      Some (draw ()));
  Machine.Exec.register_intrinsic st Abi.intr_pad (fun st _args ->
      Machine.Exec.charge st (cost ());
      let v = Int64.to_int (Int64.logand (draw ()) 0x7fffffffL) in
      Some (Int64.of_int (v mod config.vla_pad_max)));
  Machine.Exec.register_intrinsic st Abi.intr_fid_key (fun st _args ->
      Machine.Exec.charge st 1.;
      Some fid_key);
  Machine.Exec.register_intrinsic st Abi.intr_fid_assert (fun st args ->
      Machine.Exec.charge st 1.;
      if not (Int64.equal args.(0) args.(1)) then
        raise (Machine.Exec.Detect "smokestack: function identifier mismatch");
      None);
  Machine.Exec.register_intrinsic st Abi.intr_layout_dynamic (fun st args ->
      let dyn_id = Int64.to_int args.(0) in
      let base = Int64.to_int args.(1) in
      if dyn_id < 0 || dyn_id >= Array.length pbox.dyns then
        raise (Machine.Memory.Fault (Machine.Memory.Misc "bad dynamic layout id"));
      let dyn = pbox.dyns.(dyn_id) in
      let n = Array.length dyn.metas in
      Machine.Exec.charge st
        (cost () +. (Machine.Cost.layout_dynamic_per_var *. float_of_int n));
      (* One scheme draw seeds the permutation; for the secure schemes
         this is as unpredictable as the draw itself (see DESIGN.md on
         oversized frames). *)
      let offsets = dynamic_offsets_for_draw dyn (draw ()) in
      Array.iteri
        (fun slot off ->
          assert (off + fst dyn.metas.(slot) <= dyn.dyn_max_total);
          Machine.Memory.store st.mem ~width:4 (base + (4 * slot))
            (Int64.of_int off))
        offsets;
      None)
