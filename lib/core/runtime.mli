(** The Smokestack runtime (the paper's compiler-rt additions).

    Installs the {!module:Abi} intrinsics into a prepared machine
    state:

    - {!Abi.intr_rand} / {!Abi.intr_pad} draw from the configured
      scheme, charging its Table-I cycle cost.  For the [pseudo] scheme
      the generator state is kept in the VM's writable
      {!Abi.prng_state_global} — readable and writable by the threat
      model's attacker;
    - {!Abi.intr_fid_key} returns the per-run XOR key, which lives in
      the OCaml heap (modelling a reserved register — the threat model
      explicitly denies the attacker register access);
    - {!Abi.intr_fid_assert} raises {!Machine.Exec.Detect} on mismatch;
    - {!Abi.intr_layout_dynamic} decodes a fresh permutation for
      oversized frames and writes the per-slot offsets to the frame's
      scratch area.

    The runtime also wires the generator's graceful-degradation chain
    (see {!Rng.Generator}): every degradation is forwarded to the
    state's trace hook as an [Ev_rng_degraded] event, draw costs follow
    the scheme actually serving draws, and a fail-secure abort
    ({!Rng.Generator.Source_failed}) is converted to
    {!Machine.Exec.Detect} so every run still ends in a structured
    outcome. *)

val install :
  ?gen:Rng.Generator.t ->
  Config.t ->
  pbox:Pbox.t ->
  entropy:Crypto.Entropy.t ->
  Machine.Exec.state ->
  unit
(** Registers all intrinsics and seeds the in-VM pseudo state (when the
    scheme needs it).  The entropy source supplies the AES keys/nonces,
    RDRAND draws, pseudo seed, and FID key.  [gen] substitutes a
    caller-owned generator (the chaos experiments pass one with a
    fault-injection tamper armed, or a [Fail_open] policy); it must
    have been created with the config's scheme.  Note the [pseudo]
    scheme routes draws through VM memory, bypassing any generator —
    RNG fault plans apply to the hardware-backed schemes only. *)

val scheme_cost : Rng.Scheme.t -> float
(** Cycles charged per {!Abi.intr_rand} draw (Table I). *)

val dynamic_offsets_for_draw : Pbox.dyn_binding -> int64 -> int array
(** The layout an oversized frame gets for a given {!Abi.intr_rand}
    draw — the deterministic decode the runtime performs at the
    prologue.  Public because the defense's design is public
    (Kerckhoffs): an attacker who learns a draw (e.g. by disclosing the
    [pseudo] scheme's in-memory state) replicates exactly this. *)
