(** Top-level Smokestack API: compile-time hardening plus runtime
    installation.

    {[
      let hardened = Harden.harden Config.default prog in
      let st = Harden.prepare hardened ~entropy in
      let outcome, stats = Machine.Exec.run st in
      ...
    ]} *)

type t = {
  prog : Ir.Prog.t;  (** the hardened program (the input is not mutated) *)
  pbox : Pbox.t;
  config : Config.t;
}

val harden : ?seed:int64 -> Config.t -> Ir.Prog.t -> t
(** Runs the full pipeline on a copy of the program: allocation
    discovery → P-BOX generation (with the configured optimizations and
    row shuffles driven by [seed], default 1) → instrumentation →
    verification.  Raises [Failure] if the configuration is invalid,
    the program was already hardened (re-instrumenting a permuted frame
    would permute the opaque slab, not the variables), or the
    instrumented IR fails verification. *)

val prepare :
  ?heap_size:int ->
  ?stack_size:int ->
  ?entropy:Crypto.Entropy.t ->
  ?gen:Rng.Generator.t ->
  t ->
  Machine.Exec.state
(** {!Machine.Exec.prepare} followed by {!Runtime.install}.  [entropy]
    defaults to a source seeded from the OS.  [gen] passes a
    caller-owned generator through to the runtime (fault-injection and
    fail-open/fail-secure policy experiments); it must match the
    config's scheme. *)

val pbox_bytes : t -> int
(** Read-only bytes the P-BOX adds (Figure 4's numerator). *)

val permuted_functions : t -> string list
(** Names of functions that received the frame-permutation treatment. *)
