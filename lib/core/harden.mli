(** Top-level Smokestack API: compile-time hardening plus runtime
    installation.

    {[
      let hardened = Harden.harden Config.default prog in
      let st = Harden.prepare hardened ~entropy in
      let outcome, stats = Machine.Exec.run st in
      ...
    ]} *)

type t = {
  prog : Ir.Prog.t;  (** the hardened program (the input is not mutated) *)
  pbox : Pbox.t;
  config : Config.t;
  elided : string list;
      (** functions selective hardening left with their fixed layout
          (draw-preserving elision); [[]] unless [config.selective] *)
}

val harden : ?seed:int64 -> ?validate:bool -> Config.t -> Ir.Prog.t -> t
(** Runs the full pipeline on a copy of the program: allocation
    discovery → P-BOX generation (with the configured optimizations and
    row shuffles driven by [seed], default 1) → instrumentation →
    verification.  With [config.selective], the registered elision
    oracle first selects provably-safe functions to elide.

    When the static validator of [Analysis.Validate] has been
    registered (via [Analysis.Validate.install ()]) and [validate] is
    [true] (the default), the hardened result is also checked against
    the Smokestack security post-conditions — frame integrity, P-BOX
    soundness, index hygiene, FID pairing, and the per-function elision
    obligations — and a violation raises [Failure] whose message names
    the failed rule, the offending function, and (for P-BOX rows) the
    row.  Structural IR breakage is reported separately as a
    pass-manager failure, so the two are distinguishable.

    Raises [Failure] if the configuration is invalid, the program was
    already hardened (re-instrumenting a permuted frame would permute
    the opaque slab, not the variables), [config.selective] is set
    without an installed oracle, the instrumented IR fails
    verification, or validation finds a violation. *)

val prepare :
  ?heap_size:int ->
  ?stack_size:int ->
  ?entropy:Crypto.Entropy.t ->
  ?gen:Rng.Generator.t ->
  t ->
  Machine.Exec.state
(** {!Machine.Exec.prepare} followed by {!Runtime.install}.  [entropy]
    defaults to a source seeded from the OS.  [gen] passes a
    caller-owned generator through to the runtime (fault-injection and
    fail-open/fail-secure policy experiments); it must match the
    config's scheme. *)

val pbox_bytes : t -> int
(** Read-only bytes the P-BOX adds (Figure 4's numerator). *)

val permuted_functions : t -> string list
(** Names of functions that received the frame-permutation treatment
    (elided functions are not listed). *)

(** {2 Validation hooks}

    [lib/analysis] depends on this library, so its validator and
    elision oracle register themselves here
    ([Analysis.Validate.install ()]) rather than being called
    directly — the same inversion [Engine.Backend.install] uses.
    Executables that want hardening validated (or selective hardening
    at all) must call the install function once at startup. *)

type validator = original:Ir.Prog.t -> t -> (unit, string) result
(** [original] is the un-instrumented input program — the validator
    needs it to re-derive the elision proof obligations, which the
    hardened IR no longer exposes. *)

val set_validator : validator -> unit
val set_elision_oracle : (Ir.Prog.t -> string list) -> unit
val validator_installed : unit -> bool
