(** The P-BOX: read-only permutation tables (paper §III-C/E).

    Built at compile time from every function's allocation metadata and
    embedded in the program's read-only data (the paper links it as a
    shared library; here it becomes the [__ss_pbox] rodata global).
    Rows are indexed at each function prologue by a fresh random number.

    The three §III-E optimizations are implemented here:

    - {b power-of-2 row counts}: tables are materialized with
      [next_pow2 (n!)] rows (wrapping), so the prologue masks the random
      index with [rows - 1] instead of taking a modulo;
    - {b table sharing}: functions whose allocations form the same
      multiset of [(size, alignment)] share one table, via a canonical
      allocation order plus a per-function original→canonical map;
    - {b rounding up}: a function may adopt the table of a frame that is
      one primitive allocation larger, treating the surplus allocation
      as a dummy that merely pads its frame.

    Functions with more than [max_exhaustive_vars] allocations are not
    materialized at all: they receive a {e dynamic} binding, and the
    runtime decodes a fresh permutation at each prologue into a scratch
    region at the base of the frame (see DESIGN.md). *)

type exhaustive = {
  entry_index : int;
  canon_of_orig : int array;
      (** original slot [i]'s column in the shared canonical table *)
  dummy_slots : int;  (** 1 if bound via rounding-up, else 0 *)
}

type mode = Exhaustive of exhaustive | Dynamic of { dyn_id : int }

type binding = { bfunc : string; n_orig : int; mode : mode }

type entry = {
  key : (int * int) list;  (** canonical multiset, sorted *)
  canon_meta : (int * int) array;
  table : Permgen.table;
  rows_materialized : int;
  byte_offset : int;  (** of this table within the blob *)
  mutable users : string list;
}

type dyn_binding = {
  dyn_id : int;
  dfunc : string;
  metas : (int * int) array;  (** original order *)
  scratch_bytes : int;  (** u32 offset slots at the frame base *)
  dyn_max_total : int;
}

type t = {
  entries : entry array;
  dyns : dyn_binding array;
  bindings : (string, binding) Hashtbl.t;
  blob : string;
  config : Config.t;
}

val build :
  ?seed:int64 ->
  ?elided:string list ->
  Config.t ->
  (string * (int * int) array) list ->
  t
(** [build config funcs] where each element is
    [(function name, per-slot (size, alignment) in program order)].
    Functions with zero slots are skipped.  [seed] drives the row
    shuffles (default 1).

    [elided] (selective hardening) names functions that shape group
    formation and consume table shuffles exactly as under full hardening
    — keeping every other function's layout bit-identical — but receive
    no binding and are not registered as users; a table all of whose
    users were elided is kept in {!t.entries} (indices are stable) but
    contributes no blob bytes. *)

val binding : t -> string -> binding option
val entry_of : t -> binding -> entry option
val dyn_of : t -> binding -> dyn_binding option
val blob_bytes : t -> int
(** Read-only bytes the P-BOX adds to the binary — the memory-overhead
    experiment's numerator. *)

val row_stride : entry -> int
(** Bytes per row: 4 x canonical slot count. *)

val max_total : t -> binding -> int
(** Total-allocation size for the function's frame. *)

val lookup_offsets : t -> binding -> row:int -> int array
(** Offsets (original slot order) encoded in the blob for a
    materialized row — decoding what the instrumented loads would read;
    used by tests and the disclosure-attack oracle. *)
