type exhaustive = {
  entry_index : int;
  canon_of_orig : int array;
  dummy_slots : int;
}

type mode = Exhaustive of exhaustive | Dynamic of { dyn_id : int }
type binding = { bfunc : string; n_orig : int; mode : mode }

type entry = {
  key : (int * int) list;
  canon_meta : (int * int) array;
  table : Permgen.table;
  rows_materialized : int;
  byte_offset : int;
  mutable users : string list;
}

type dyn_binding = {
  dyn_id : int;
  dfunc : string;
  metas : (int * int) array;
  scratch_bytes : int;
  dyn_max_total : int;
}

type t = {
  entries : entry array;
  dyns : dyn_binding array;
  bindings : (string, binding) Hashtbl.t;
  blob : string;
  config : Config.t;
}

(* Canonical order: descending (size, alignment).  Any deterministic
   order works; descending keeps big buffers first, which also gives the
   shared tables a stable visual layout in dumps. *)
let canonicalize metas =
  let canon = Array.copy metas in
  Array.sort (fun a b -> compare b a) canon;
  canon

let key_of metas = Array.to_list (canonicalize metas)

(* Match each original slot to a distinct canonical column with the
   same (size, alignment). *)
let canon_map ~canon metas =
  let used = Array.make (Array.length canon) false in
  Array.map
    (fun m ->
      let rec find j =
        if j >= Array.length canon then
          invalid_arg "Smokestack.Pbox: canonical map mismatch"
        else if (not used.(j)) && canon.(j) = m then begin
          used.(j) <- true;
          j
        end
        else find (j + 1)
      in
      find 0)
    metas

(* Is [small] a sub-multiset of [big] with exactly one extra primitive
   (scalar-sized) allocation left over? *)
let one_extra_primitive ~small ~big =
  let remaining = ref big in
  let ok =
    List.for_all
      (fun m ->
        let rec remove acc = function
          | [] -> None
          | x :: rest when x = m -> Some (List.rev_append acc rest)
          | x :: rest -> remove (x :: acc) rest
        in
        match remove [] !remaining with
        | Some rest ->
            remaining := rest;
            true
        | None -> false)
      small
  in
  match (ok, !remaining) with
  | true, [ (size, _) ] when size <= 16 -> true
  | _ -> false

(* [elided] (selective hardening) lists functions that participate in
   group formation and table generation exactly as under full hardening
   — the per-entry row shuffles consume a single shared [shuffle_rng]
   stream, so dropping a function up front would reshuffle every other
   function's table and break the selective-vs-full bit-identity the
   harness asserts — but receive no binding, are not recorded as users,
   and tables left with no users at all are not serialized (that is the
   P-BOX byte saving). *)
let build ?(seed = 1L) ?(elided = []) (config : Config.t) funcs =
  let is_elided fname = List.mem fname elided in
  let shuffle_rng = Sutil.Simrng.create ~seed in
  let funcs = List.filter (fun (_, metas) -> Array.length metas > 0) funcs in
  let exhaustive, dynamic =
    List.partition
      (fun (_, metas) -> Array.length metas <= config.Config.max_exhaustive_vars)
      funcs
  in
  (* Group exhaustively-tabled functions by key (or privately when
     sharing is off). *)
  let groups : ((int * int) list * (string * (int * int) array) list) list ref =
    ref []
  in
  List.iter
    (fun (fname, metas) ->
      let key = key_of metas in
      if config.share_tables then begin
        match List.assoc_opt key !groups with
        | Some _ ->
            groups :=
              List.map
                (fun (k, m) -> if k = key then (k, (fname, metas) :: m) else (k, m))
                !groups
        | None -> groups := (key, [ (fname, metas) ]) :: !groups
      end
      else groups := (key, [ (fname, metas) ]) :: !groups)
    exhaustive;
  (* Rounding-up: larger groups first so smaller ones can adopt them.
     Only meaningful when tables are shared. *)
  let groups =
    List.sort
      (fun (ka, _) (kb, _) -> compare (List.length kb) (List.length ka))
      (List.rev !groups)
  in
  let entries : entry list ref = ref [] in
  let bindings = Hashtbl.create 32 in
  let bind_into ~entry_index ~(entry : entry) ~dummy (fname, metas) =
    if not (is_elided fname) then begin
      let canon_of_orig = canon_map ~canon:entry.canon_meta metas in
      entry.users <- fname :: entry.users;
      Hashtbl.replace bindings fname
        {
          bfunc = fname;
          n_orig = Array.length metas;
          mode = Exhaustive { entry_index; canon_of_orig; dummy_slots = dummy };
        }
    end
  in
  List.iter
    (fun (key, members) ->
      let adopt =
        if config.share_tables && config.round_up_allocs then
          List.find_index
            (fun (e : entry) -> one_extra_primitive ~small:key ~big:e.key)
            !entries
        else None
      in
      match adopt with
      | Some entry_index ->
          let entry = List.nth !entries entry_index in
          List.iter
            (fun (fname, metas) ->
              (* Map against the bigger canonical set: the unmatched
                 column is the dummy slot, which only consumes frame
                 space. *)
              if not (is_elided fname) then begin
                let canon_of_orig = canon_map ~canon:entry.canon_meta metas in
                entry.users <- fname :: entry.users;
                Hashtbl.replace bindings fname
                  {
                    bfunc = fname;
                    n_orig = Array.length metas;
                    mode =
                      Exhaustive { entry_index; canon_of_orig; dummy_slots = 1 };
                  }
              end)
            members
      | None ->
          let canon_meta = canonicalize (snd (List.hd members)) in
          let table = Permgen.generate ~shuffle:shuffle_rng canon_meta in
          let rows = Array.length table.offsets in
          let rows_materialized =
            if config.pow2_pbox then Sutil.Align.next_pow2 rows else rows
          in
          let entry =
            {
              key;
              canon_meta;
              table;
              rows_materialized;
              byte_offset = 0 (* assigned at serialization *);
              users = [];
            }
          in
          let entry_index = List.length !entries in
          entries := !entries @ [ entry ];
          List.iter (bind_into ~entry_index ~entry ~dummy:0) members)
    groups;
  (* Serialize: tables back to back, u32 little-endian, wrapping rows
     for the power-of-2 materialization. *)
  let buf = Buffer.create 4096 in
  let put_u32 v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))
  in
  let entries =
    Array.of_list
      (List.map
         (fun e ->
           (* A table every user of which was elided never gets read:
              skip its rows.  The entry itself stays (indices into
              [entries] were already handed out), pointing at offset 0
              of a region it does not own — harmless, since nothing is
              bound to it. *)
           if e.users = [] then { e with byte_offset = 0 }
           else begin
             let byte_offset = Buffer.length buf in
             let real_rows = Array.length e.table.offsets in
             for r = 0 to e.rows_materialized - 1 do
               Array.iter put_u32 e.table.offsets.(r mod real_rows)
             done;
             { e with byte_offset }
           end)
         !entries)
  in
  (* Dynamic bindings for oversized frames. *)
  let dynamic =
    List.filter (fun (fname, _) -> not (is_elided fname)) dynamic
  in
  let dyns =
    Array.of_list
      (List.mapi
         (fun dyn_id (fname, metas) ->
           let n = Array.length metas in
           let scratch_bytes = Sutil.Align.align_up (4 * n) ~alignment:16 in
           let worst =
             Array.fold_left
               (fun acc (size, alignment) -> acc + size + alignment - 1)
               0 metas
           in
           Hashtbl.replace bindings fname
             { bfunc = fname; n_orig = n; mode = Dynamic { dyn_id } };
           {
             dyn_id;
             dfunc = fname;
             metas;
             scratch_bytes;
             dyn_max_total =
               Sutil.Align.align_up (scratch_bytes + worst) ~alignment:16;
           })
         dynamic)
  in
  { entries; dyns; bindings; blob = Buffer.contents buf; config }

let binding t fname = Hashtbl.find_opt t.bindings fname

let entry_of t b =
  match b.mode with
  | Exhaustive { entry_index; _ } -> Some t.entries.(entry_index)
  | Dynamic _ -> None

let dyn_of t b =
  match b.mode with
  | Dynamic { dyn_id } -> Some t.dyns.(dyn_id)
  | Exhaustive _ -> None

let blob_bytes t = String.length t.blob
let row_stride (e : entry) = 4 * Array.length e.canon_meta

let max_total t b =
  match b.mode with
  | Exhaustive { entry_index; _ } -> t.entries.(entry_index).table.max_total
  | Dynamic { dyn_id } -> t.dyns.(dyn_id).dyn_max_total

let lookup_offsets t b ~row =
  match b.mode with
  | Dynamic _ ->
      invalid_arg "Smokestack.Pbox.lookup_offsets: dynamic binding has no table"
  | Exhaustive { entry_index; canon_of_orig; _ } ->
      let e = t.entries.(entry_index) in
      if row < 0 || row >= e.rows_materialized then
        invalid_arg "Smokestack.Pbox.lookup_offsets: row out of range";
      let stride = row_stride e in
      let base = e.byte_offset + (row * stride) in
      Array.map
        (fun canon_col ->
          let off = base + (4 * canon_col) in
          Char.code t.blob.[off]
          lor (Char.code t.blob.[off + 1] lsl 8)
          lor (Char.code t.blob.[off + 2] lsl 16)
          lor (Char.code t.blob.[off + 3] lsl 24))
        canon_of_orig
