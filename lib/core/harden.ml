type t = {
  prog : Ir.Prog.t;
  pbox : Pbox.t;
  config : Config.t;
  elided : string list;
}

(* Hooks installed by Analysis.Validate.install ().  lib/analysis
   depends on this library, so the validator and the elision oracle
   arrive through registration, the same pattern Engine.Backend.install
   uses.  Set once at startup, read from many domains: Atomic, per the
   PR-2 domain-safety audit. *)
type validator = original:Ir.Prog.t -> t -> (unit, string) result

let validator_hook : validator option Atomic.t = Atomic.make None
let elision_hook : (Ir.Prog.t -> string list) option Atomic.t = Atomic.make None
let set_validator v = Atomic.set validator_hook (Some v)
let set_elision_oracle o = Atomic.set elision_hook (Some o)
let validator_installed () = Option.is_some (Atomic.get validator_hook)

let harden ?(seed = 1L) ?(validate = true) config prog =
  let config =
    match Config.validate config with
    | Ok c -> c
    | Error msg -> failwith ("Smokestack.Harden: invalid config: " ^ msg)
  in
  if
    List.exists
      (fun f ->
        Ir.Func.has_attr f Abi.smokestack_attr
        || Ir.Func.has_attr f Abi.smokestack_elided_attr)
      prog.Ir.Prog.funcs
  then failwith "Smokestack.Harden: program is already hardened";
  let original = prog in
  let prog = Ir.Prog.copy prog in
  let elided =
    if not config.selective then []
    else
      match Atomic.get elision_hook with
      | None ->
          failwith
            "Smokestack.Harden: selective hardening needs the elision oracle \
             — call Analysis.Validate.install () first"
      | Some oracle ->
          List.filter
            (fun n -> not (List.mem n config.exclude))
            (oracle original)
  in
  (* The full (unfiltered) meta list goes to Pbox.build even under
     selective hardening: table shuffles consume one shared RNG stream,
     so the group structure must match full hardening exactly for the
     surviving functions' layouts to stay bit-identical.  Pbox.build
     itself withholds bindings (and blob bytes for user-less tables)
     from elided functions. *)
  let metas = Instrument.collect_metas config prog in
  let pbox = Pbox.build ~seed ~elided config metas in
  (* The validator runs as the pass pipeline's semantic post-condition:
     a structural break still reports "pass smokestack-instrument broke
     IR invariants", while a violated security post-condition reports
     the rule, function and (for P-BOX rows) row that failed. *)
  let post =
    if validate then
      Option.map
        (fun v prog -> v ~original { prog; pbox; config; elided })
        (Atomic.get validator_hook)
    else None
  in
  Ir.Pass.run ?post [ Instrument.pass ~elided config ~pbox ] prog;
  { prog; pbox; config; elided }

let prepare ?heap_size ?stack_size ?entropy ?gen t =
  let entropy =
    match entropy with Some e -> e | None -> Crypto.Entropy.system ()
  in
  let st = Machine.Exec.prepare ?heap_size ?stack_size t.prog in
  Runtime.install ?gen t.config ~pbox:t.pbox ~entropy st;
  st

let pbox_bytes t = Pbox.blob_bytes t.pbox

let permuted_functions t =
  List.filter_map
    (fun (f : Ir.Func.t) ->
      if Ir.Func.has_attr f Abi.smokestack_attr then Some f.name else None)
    t.prog.funcs
