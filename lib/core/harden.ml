type t = { prog : Ir.Prog.t; pbox : Pbox.t; config : Config.t }

let harden ?(seed = 1L) config prog =
  let config =
    match Config.validate config with
    | Ok c -> c
    | Error msg -> failwith ("Smokestack.Harden: invalid config: " ^ msg)
  in
  if
    List.exists
      (fun f -> Ir.Func.has_attr f Abi.smokestack_attr)
      prog.Ir.Prog.funcs
  then failwith "Smokestack.Harden: program is already hardened";
  let prog = Ir.Prog.copy prog in
  let metas = Instrument.collect_metas config prog in
  let pbox = Pbox.build ~seed config metas in
  Ir.Pass.run [ Instrument.pass config ~pbox ] prog;
  { prog; pbox; config }

let prepare ?heap_size ?stack_size ?entropy ?gen t =
  let entropy =
    match entropy with Some e -> e | None -> Crypto.Entropy.system ()
  in
  let st = Machine.Exec.prepare ?heap_size ?stack_size t.prog in
  Runtime.install ?gen t.config ~pbox:t.pbox ~entropy st;
  st

let pbox_bytes t = Pbox.blob_bytes t.pbox

let permuted_functions t =
  List.filter_map
    (fun (f : Ir.Func.t) ->
      if Ir.Func.has_attr f Abi.smokestack_attr then Some f.name else None)
    t.prog.funcs
