type t = {
  scheme : Rng.Scheme.t;
  pow2_pbox : bool;
  share_tables : bool;
  round_up_allocs : bool;
  max_exhaustive_vars : int;
  fid_checks : bool;
  vla_padding : bool;
  vla_pad_max : int;
  rekey_interval : int;
  exclude : string list;
  redraw_interval : int;
  selective : bool;
}

let default =
  {
    scheme = Rng.Scheme.aes10;
    pow2_pbox = true;
    share_tables = true;
    round_up_allocs = true;
    max_exhaustive_vars = 6;
    fid_checks = true;
    vla_padding = true;
    vla_pad_max = 128;
    rekey_interval = 65536;
    exclude = [];
    redraw_interval = 1;
    selective = false;
  }

let with_scheme scheme t = { t with scheme }
let with_exclude exclude t = { t with exclude }
let with_selective selective t = { t with selective }

(* Every field participates: two configs fingerprint equally iff they
   harden identically, which is what content-addressed caching keys on.
   The rendering is explicit (field=value, fixed order) rather than a
   hash, so a mismatched cache key is diagnosable by eye. *)
let fingerprint t =
  String.concat ","
    [
      "scheme=" ^ Rng.Scheme.name t.scheme;
      Printf.sprintf "pow2=%b" t.pow2_pbox;
      Printf.sprintf "share=%b" t.share_tables;
      Printf.sprintf "roundup=%b" t.round_up_allocs;
      Printf.sprintf "maxvars=%d" t.max_exhaustive_vars;
      Printf.sprintf "fid=%b" t.fid_checks;
      Printf.sprintf "vlapad=%b" t.vla_padding;
      Printf.sprintf "vlamax=%d" t.vla_pad_max;
      Printf.sprintf "rekey=%d" t.rekey_interval;
      "exclude=" ^ String.concat "+" t.exclude;
      Printf.sprintf "redraw=%d" t.redraw_interval;
      Printf.sprintf "selective=%b" t.selective;
    ]

let validate t =
  if t.max_exhaustive_vars < 1 || t.max_exhaustive_vars > 8 then
    Error
      (Printf.sprintf
         "max_exhaustive_vars = %d: must be in [1, 8] (8! = 40320 rows is \
          already 1.1 MiB per table)"
         t.max_exhaustive_vars)
  else if t.vla_pad_max < 1 then Error "vla_pad_max must be positive"
  else if t.rekey_interval < 1 then Error "rekey_interval must be positive"
  else if t.redraw_interval < 1 then Error "redraw_interval must be positive"
  else
    match t.scheme with
    | Rng.Scheme.Aes_ctr { rounds } when rounds < 1 || rounds > 10 ->
        Error (Printf.sprintf "AES rounds = %d: must be in [1, 10]" rounds)
    | _ -> Ok t
