type t = {
  scheme : Rng.Scheme.t;
  pow2_pbox : bool;
  share_tables : bool;
  round_up_allocs : bool;
  max_exhaustive_vars : int;
  fid_checks : bool;
  vla_padding : bool;
  vla_pad_max : int;
  rekey_interval : int;
  exclude : string list;
  redraw_interval : int;
  selective : bool;
}

let default =
  {
    scheme = Rng.Scheme.aes10;
    pow2_pbox = true;
    share_tables = true;
    round_up_allocs = true;
    max_exhaustive_vars = 6;
    fid_checks = true;
    vla_padding = true;
    vla_pad_max = 128;
    rekey_interval = 65536;
    exclude = [];
    redraw_interval = 1;
    selective = false;
  }

let with_scheme scheme t = { t with scheme }
let with_exclude exclude t = { t with exclude }
let with_selective selective t = { t with selective }

let validate t =
  if t.max_exhaustive_vars < 1 || t.max_exhaustive_vars > 8 then
    Error
      (Printf.sprintf
         "max_exhaustive_vars = %d: must be in [1, 8] (8! = 40320 rows is \
          already 1.1 MiB per table)"
         t.max_exhaustive_vars)
  else if t.vla_pad_max < 1 then Error "vla_pad_max must be positive"
  else if t.rekey_interval < 1 then Error "rekey_interval must be positive"
  else if t.redraw_interval < 1 then Error "redraw_interval must be positive"
  else
    match t.scheme with
    | Rng.Scheme.Aes_ctr { rounds } when rounds < 1 || rounds > 10 ->
        Error (Printf.sprintf "AES rounds = %d: must be in [1, 10]" rounds)
    | _ -> Ok t
