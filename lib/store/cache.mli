(** The artifact store: a content-addressed, crash-safe cache.

    Two backends share one interface: an in-process [Memory] store
    (what the harness modules default to, replacing their former ad-hoc
    hashtables) and a [Disk] store rooted at a directory.

    {b Disk layout.}
    {v
    root/
      manifest.json             {"smokestack-store": 1}
      objects/<hh>/<id>.json    one entry per key, sharded on the
                                first two hex digits of the key id
      tmp/                      staging for atomic writes
      quarantine/               corrupt entries moved aside by find
    v}

    {b Crash safety.}  [put] writes the entry to a uniquely-named file
    under [tmp/] (same filesystem as [objects/]) and then [rename]s it
    into place, so readers only ever observe absent or complete entry
    files — a campaign killed mid-write leaves at worst a stale temp
    file, never a torn entry.  Concurrent writers of the same key both
    succeed; last rename wins, and since entries are deterministic
    functions of their key the contents agree.

    {b Corruption.}  [find] treats anything unexpected — unparsable
    JSON, a failed decode, an entry whose echoed key differs from the
    one looked up — as a {e miss}: the offending file is moved to
    [quarantine/], the [evicted] counter bumped, and the caller
    recomputes and overwrites.  A truncated or bit-flipped store can
    cost recomputation, never a crash and never a wrong answer. *)

type t

exception Incompatible of string
(** Raised by {!open_disk} when the directory exists but is not a
    store (no manifest) or was written by a different
    {!format_version}.  The message tells the user exactly which and
    what to do. *)

val format_version : int
(** On-disk format version recorded in [manifest.json]. *)

val open_disk : string -> t
(** Opens (creating directories and manifest as needed) a disk store
    rooted at the given path.  Raises {!Incompatible} as documented
    above, and [Sys_error] if the path exists but is not a
    directory. *)

val in_memory : unit -> t
(** A fresh private in-process store. *)

val root : t -> string option
(** The disk root, or [None] for a memory store. *)

val find : t -> Key.t -> Entry.t option
(** Lookup; bumps [hits]/[misses], quarantines corrupt disk entries. *)

val mem : t -> Key.t -> bool
(** Existence probe without touching counters or reading payloads
    (campaign resume uses this to size the remaining work). *)

val put : t -> Key.t -> Entry.t -> unit
(** Insert (or deterministically overwrite); bumps [writes]. *)

type stats = { hits : int; misses : int; writes : int; evicted : int }

val stats : t -> stats
val reset_stats : t -> unit

val stats_to_json : stats -> Sutil.Json.t
(** [{"hits": _, "misses": _, "writes": _, "evicted": _}] — surfaced
    by [smokestackc campaign --json] and asserted on by CI's
    warm-hit-rate check. *)
