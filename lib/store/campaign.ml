module J = Sutil.Json

type config = {
  seed : int64;
  count : int;
  exec_seed : int64;
  harden : Smokestack.Config.t option;
  engine : Machine.Backend.kind;
  fuel : int;
  shard : int;
}

let config ?(seed = 1000L) ?(exec_seed = 7L) ?harden
    ?(engine = Machine.Backend.Reference) ?(fuel = 2_000_000) ?(shard = 512)
    ~count () =
  { seed; count; exec_seed; harden; engine; fuel; shard }

(* The harden pipeline's own layout-draw seed.  Fixed (matching the
   harness convention) but still recorded in the key's [extra] so a
   future knob can't silently alias entries. *)
let harden_seed = 3L

let key_of cfg source =
  Key.of_source ~source_text:source ~config:cfg.harden ~engine:cfg.engine
    ~seed:cfg.exec_seed
    ~extra:(Printf.sprintf "campaign;fuel=%d;hseed=%Ld" cfg.fuel harden_seed)
    ()

type report = {
  programs : int;
  exited_zero : int;
  exited_nonzero : int;
  faulted : int;
  detected : int;
  fuel_exhausted : int;
  total_instrs : int;
  total_calls : int;
  deepest_call : int;
  digest : string;
}

(* Execute one program fresh (cache miss path). *)
let execute cfg backend pseed source =
  let prog = Minic.Driver.compile source in
  let entropy = Crypto.Entropy.create ~seed:(Int64.add cfg.exec_seed pseed) in
  let st, pbox_bytes =
    match cfg.harden with
    | None -> (Machine.Exec.prepare prog, None)
    | Some hcfg ->
        let hardened =
          Smokestack.Harden.harden ~seed:harden_seed ~validate:false hcfg prog
        in
        ( Smokestack.Harden.prepare ~entropy hardened,
          Some (Smokestack.Harden.pbox_bytes hardened) )
  in
  Entry.exec_of_run ?pbox_bytes ((backend : Machine.Backend.t).run ~fuel:cfg.fuel st)

let lookup_or_execute cfg backend store pseed source =
  let key = key_of cfg source in
  let cached =
    match Cache.find store key with
    | Some e -> Entry.exec_of_entry e
    | None -> None
  in
  match cached with
  | Some exec -> exec
  | None ->
      let exec = execute cfg backend pseed source in
      Cache.put store key (Entry.exec_entry exec);
      exec

let classify (e : Entry.exec) =
  match e.exit_code with
  | Some 0L -> `Exit_zero
  | Some _ -> `Exit_nonzero
  | None ->
      if String.starts_with ~prefix:"fault" e.outcome then `Fault
      else if String.starts_with ~prefix:"attack detected" e.outcome then
        `Detected
      else `Fuel

(* One canonical line per program; the report digest is a hash over
   these in seed order, so it witnesses every observable byte. *)
let line pseed (e : Entry.exec) =
  let s = e.stats in
  Printf.sprintf "%Ld|%s|%h|%d|%d|%d|%d|%d|%s" pseed e.outcome s.cycles
    s.instr_count s.call_count s.max_depth s.max_frame_bytes s.rss_bytes
    (Hash.hex s.output)

let take_chunk n seq =
  let rec go n seq acc =
    if n = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> go (n - 1) rest (x :: acc)
  in
  go n seq []

let run ?(pool = Sched.Pool.sequential) ~store cfg =
  let backend = Machine.Backend.find cfg.engine in
  let shard = max 1 cfg.shard in
  let buf = Buffer.create (96 * max 16 cfg.count) in
  let exited_zero = ref 0
  and exited_nonzero = ref 0
  and faulted = ref 0
  and detected = ref 0
  and fuel_exhausted = ref 0
  and total_instrs = ref 0
  and total_calls = ref 0
  and deepest_call = ref 0 in
  let fold pseed exec =
    (match classify exec with
    | `Exit_zero -> incr exited_zero
    | `Exit_nonzero -> incr exited_nonzero
    | `Fault -> incr faulted
    | `Detected -> incr detected
    | `Fuel -> incr fuel_exhausted);
    total_instrs := !total_instrs + exec.stats.instr_count;
    total_calls := !total_calls + exec.stats.call_count;
    deepest_call := max !deepest_call exec.stats.max_depth;
    Buffer.add_string buf (line pseed exec);
    Buffer.add_char buf '\n'
  in
  let rec waves seq =
    match take_chunk shard seq with
    | [], _ -> ()
    | chunk, rest ->
        let jobs =
          List.map
            (fun (pseed, source) ->
              Sched.Job.v
                ~id:(Printf.sprintf "campaign/%Ld" pseed)
                ~seed:pseed
                (fun () -> lookup_or_execute cfg backend store pseed source))
            chunk
        in
        let results = Sched.Pool.run_all pool jobs in
        List.iter2 (fun (pseed, _) exec -> fold pseed exec) chunk results;
        waves rest
  in
  waves (Minic.Progen.range ~seed:cfg.seed cfg.count);
  {
    programs = cfg.count;
    exited_zero = !exited_zero;
    exited_nonzero = !exited_nonzero;
    faulted = !faulted;
    detected = !detected;
    fuel_exhausted = !fuel_exhausted;
    total_instrs = !total_instrs;
    total_calls = !total_calls;
    deepest_call = !deepest_call;
    digest = Hash.hex (Buffer.contents buf);
  }

let remaining ~store cfg =
  Seq.fold_left
    (fun acc (_, source) ->
      if Cache.mem store (key_of cfg source) then acc else acc + 1)
    0
    (Minic.Progen.range ~seed:cfg.seed cfg.count)

let report_table r =
  let t =
    Sutil.Texttable.create
      ~columns:[ ("metric", Sutil.Texttable.Left); ("value", Sutil.Texttable.Right) ]
  in
  let row m v = Sutil.Texttable.add_row t [ m; v ] in
  row "programs" (string_of_int r.programs);
  row "exit 0" (string_of_int r.exited_zero);
  row "exit nonzero" (string_of_int r.exited_nonzero);
  row "faults" (string_of_int r.faulted);
  row "detections" (string_of_int r.detected);
  row "fuel exhausted" (string_of_int r.fuel_exhausted);
  row "total instructions" (string_of_int r.total_instrs);
  row "total calls" (string_of_int r.total_calls);
  row "deepest call" (string_of_int r.deepest_call);
  Sutil.Texttable.add_rule t;
  row "digest" r.digest;
  t

let report_to_json r =
  J.Obj
    [
      ("programs", J.Int r.programs);
      ("exit_zero", J.Int r.exited_zero);
      ("exit_nonzero", J.Int r.exited_nonzero);
      ("faults", J.Int r.faulted);
      ("detections", J.Int r.detected);
      ("fuel_exhausted", J.Int r.fuel_exhausted);
      ("total_instrs", J.Int r.total_instrs);
      ("total_calls", J.Int r.total_calls);
      ("deepest_call", J.Int r.deepest_call);
      ("digest", J.String r.digest);
    ]
