type t = {
  source : string;
  config : string;
  engine : string;
  seed : int64;
  extra : string;
}

let v ~source ~config ~engine ~seed ?(extra = "") () =
  { source; config; engine = Machine.Backend.kind_to_string engine; seed; extra }

let of_source ~source_text ~config ~engine ~seed ?extra () =
  let config =
    match config with
    | None -> "none"
    | Some c -> Smokestack.Config.fingerprint c
  in
  v ~source:(Hash.hex source_text) ~config ~engine ~seed ?extra ()

let to_string k =
  Printf.sprintf "src=%s cfg=%s eng=%s seed=%Ld extra=%s" k.source k.config
    k.engine k.seed k.extra

let id k =
  Hash.hex_of_parts
    [ k.source; k.config; k.engine; Int64.to_string k.seed; k.extra ]

let equal a b =
  String.equal a.source b.source
  && String.equal a.config b.config
  && String.equal a.engine b.engine
  && Int64.equal a.seed b.seed
  && String.equal a.extra b.extra

let to_json k =
  Sutil.Json.Obj
    [
      ("source", Sutil.Json.String k.source);
      ("config", Sutil.Json.String k.config);
      ("engine", Sutil.Json.String k.engine);
      ("seed", Sutil.Json.String (Int64.to_string k.seed));
      ("extra", Sutil.Json.String k.extra);
    ]

let of_json j =
  let module J = Sutil.Json in
  let str k = Option.bind (J.member k j) J.to_str_opt in
  match (str "source", str "config", str "engine", str "seed", str "extra") with
  | Some source, Some config, Some engine, Some seed_s, Some extra -> (
      match Int64.of_string_opt seed_s with
      | Some seed -> Some { source; config; engine; seed; extra }
      | None -> None)
  | _ -> None
