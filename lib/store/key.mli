(** Cache keys: the coordinates that determine an experiment outcome.

    Executions in this repository are deterministic functions of

    - the {b program source} (hashed, so the key is content-addressed:
      two paths to the same bytes share one entry),
    - the {b hardening configuration} (the
      [Smokestack.Config.fingerprint] rendering, or ["none"] for an
      unhardened run — any change to the config changes the key),
    - the {b engine kind} (reference vs bytecode; observables are
      differentially validated identical, but the cache must never
      launder one engine's artifact into the other's experiment), and
    - the {b seed} driving the run's entropy.

    [extra] carries any further determinism inputs a producer has
    (input chunk bytes, trial counts, analysis flags) in digested form;
    producers that disagree on [extra] get distinct entries. *)

type t = private {
  source : string;  (** hex digest of the program source/IR *)
  config : string;  (** hardening fingerprint, or ["none"] *)
  engine : string;  (** [Machine.Backend.kind_to_string] *)
  seed : int64;
  extra : string;  (** further determinism inputs, [""] if none *)
}

val v :
  source:string ->
  config:string ->
  engine:Machine.Backend.kind ->
  seed:int64 ->
  ?extra:string ->
  unit ->
  t

val of_source :
  source_text:string ->
  config:Smokestack.Config.t option ->
  engine:Machine.Backend.kind ->
  seed:int64 ->
  ?extra:string ->
  unit ->
  t
(** Hashes the raw source text and fingerprints the config ([None] =
    unhardened, rendered ["none"]). *)

val to_string : t -> string
(** Stable one-line rendering (diagnostics and the entry-file echo). *)

val id : t -> string
(** The content address: hex digest over every field.  Distinct keys
    have distinct ids (modulo hash collision, which {!Cache.find}'s
    key-echo check degrades to a miss). *)

val equal : t -> t -> bool

val to_json : t -> Sutil.Json.t
val of_json : Sutil.Json.t -> t option
