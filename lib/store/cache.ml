module J = Sutil.Json

let format_version = 1

type backend =
  | Memory of (string, Key.t * Entry.t) Hashtbl.t
  | Disk of { dir : string }

type t = {
  backend : backend;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable evicted : int;
}

exception Incompatible of string

type stats = { hits : int; misses : int; writes : int; evicted : int }

let manifest_name = "manifest.json"
let manifest_field = "smokestack-store"

let ( / ) = Filename.concat

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ())
    end
    else if not (Sys.is_directory d) then
      raise (Sys_error (d ^ ": not a directory"))
  in
  go dir

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* Unique temp-file suffix: pid disambiguates processes, the atomic
   counter disambiguates domains within one process. *)
let tmp_counter = Atomic.make 0

let write_atomic ~dir ~tmp_dir ~name json =
  let tmp =
    tmp_dir
    / Printf.sprintf "%d.%d.tmp" (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)
  in
  Out_channel.with_open_bin tmp (fun oc -> J.doc_to_channel oc json);
  Sys.rename tmp (dir / name)

let mk backend =
  { backend; mutex = Mutex.create (); hits = 0; misses = 0; writes = 0; evicted = 0 }

let in_memory () = mk (Memory (Hashtbl.create 64))

let validate_manifest dir =
  let path = dir / manifest_name in
  if Sys.file_exists path then begin
    let doc =
      match J.of_string (read_file path) with
      | Ok j -> j
      | Error e ->
          raise
            (Incompatible
               (Printf.sprintf
                  "%s: unreadable store manifest (%s); move the directory \
                   aside or delete it to start a fresh store"
                  path e))
    in
    match Option.bind (J.member manifest_field doc) J.to_int_opt with
    | Some v when v = format_version -> ()
    | Some v ->
        raise
          (Incompatible
             (Printf.sprintf
                "%s: store format version %d, this binary writes version %d; \
                 rebuild the store in a fresh directory"
                path v format_version))
    | None ->
        raise
          (Incompatible
             (Printf.sprintf
                "%s: not a smokestack store manifest; move the directory \
                 aside or delete it to start a fresh store"
                path))
  end
  else if Sys.readdir dir <> [||] then
    raise
      (Incompatible
         (Printf.sprintf
            "%s: directory exists, is not empty, and has no %s — refusing to \
             adopt it as a store"
            dir manifest_name))
  else
    write_atomic ~dir ~tmp_dir:dir ~name:manifest_name
      (J.Obj [ (manifest_field, J.Int format_version) ])

let open_disk dir =
  mkdir_p dir;
  validate_manifest dir;
  mkdir_p (dir / "objects");
  mkdir_p (dir / "tmp");
  mkdir_p (dir / "quarantine");
  mk (Disk { dir })

let root t = match t.backend with Memory _ -> None | Disk { dir } -> Some dir

let entry_path dir id = dir / "objects" / String.sub id 0 2 / (id ^ ".json")

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let quarantine t dir id path =
  (* Move the corrupt file aside so the slot reads as a plain miss from
     now on; races with a concurrent quarantine/overwrite are benign. *)
  let dst =
    dir / "quarantine"
    / Printf.sprintf "%s.%d.%d" id (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
  in
  (try Sys.rename path dst with Sys_error _ -> ());
  locked t (fun () -> t.evicted <- t.evicted + 1)

let hit t = locked t (fun () -> t.hits <- t.hits + 1)
let miss t = locked t (fun () -> t.misses <- t.misses + 1)

let find t key =
  let id = Key.id key in
  match t.backend with
  | Memory tbl -> (
      match locked t (fun () -> Hashtbl.find_opt tbl id) with
      | Some (k, e) when Key.equal k key ->
          hit t;
          Some e
      | _ ->
          miss t;
          None)
  | Disk { dir } -> (
      let path = entry_path dir id in
      if not (Sys.file_exists path) then begin
        miss t;
        None
      end
      else
        let parsed =
          match J.of_string (read_file path) with
          | Ok doc -> Entry.of_json doc
          | Error _ -> None
          | exception Sys_error _ -> None
        in
        match parsed with
        | Some (k, e) when Key.equal k key ->
            hit t;
            Some e
        | _ ->
            quarantine t dir id path;
            miss t;
            None)

let mem t key =
  let id = Key.id key in
  match t.backend with
  | Memory tbl -> locked t (fun () -> Hashtbl.mem tbl id)
  | Disk { dir } -> Sys.file_exists (entry_path dir id)

let put t key entry =
  let id = Key.id key in
  (match t.backend with
  | Memory tbl -> locked t (fun () -> Hashtbl.replace tbl id (key, entry))
  | Disk { dir } ->
      let shard = dir / "objects" / String.sub id 0 2 in
      mkdir_p shard;
      write_atomic ~dir:shard ~tmp_dir:(dir / "tmp") ~name:(id ^ ".json")
        (Entry.to_json ~key entry));
  locked t (fun () -> t.writes <- t.writes + 1)

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; writes = t.writes; evicted = t.evicted })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.writes <- 0;
      t.evicted <- 0)

let stats_to_json s =
  J.Obj
    [
      ("hits", J.Int s.hits);
      ("misses", J.Int s.misses);
      ("writes", J.Int s.writes);
      ("evicted", J.Int s.evicted);
    ]
