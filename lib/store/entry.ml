module J = Sutil.Json

type t = { kind : string; version : int; payload : J.t }

let make ~kind ~version payload = { kind; version; payload }

let to_json ~key e =
  J.Obj
    [
      ("key", Key.to_json key);
      ("kind", J.String e.kind);
      ("version", J.Int e.version);
      ("payload", e.payload);
    ]

let of_json j =
  match
    ( Option.bind (J.member "key" j) Key.of_json,
      Option.bind (J.member "kind" j) J.to_str_opt,
      Option.bind (J.member "version" j) J.to_int_opt,
      J.member "payload" j )
  with
  | Some key, Some kind, Some version, Some payload ->
      Some (key, { kind; version; payload })
  | _ -> None

(* Execution outcomes *)

type exec = {
  outcome : string;
  exit_code : int64 option;
  stats : Machine.Exec.stats;
  pbox_bytes : int option;
}

let exec_kind = "exec"
let exec_version = 1

let exec_of_run ?pbox_bytes (outcome, stats) =
  let exit_code =
    match outcome with Machine.Exec.Exit c -> Some c | _ -> None
  in
  {
    outcome = Machine.Exec.outcome_to_string outcome;
    exit_code;
    stats;
    pbox_bytes;
  }

(* Cycles are accumulated floats whose exact value the byte-identical
   report contract depends on, so they are stored as their IEEE-754 bit
   pattern rather than a decimal rendering. *)
let bits_of_cycles c = Printf.sprintf "%016Lx" (Int64.bits_of_float c)

let cycles_of_bits s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> Some (Int64.float_of_bits b)
  | None -> None

let exec_entry e =
  let s = e.stats in
  let payload =
    J.Obj
      ([ ("outcome", J.String e.outcome) ]
      @ (match e.exit_code with
        | Some c -> [ ("exit_code", J.String (Int64.to_string c)) ]
        | None -> [])
      @ [
          ("cycles_bits", J.String (bits_of_cycles s.cycles));
          ("instr_count", J.Int s.instr_count);
          ("call_count", J.Int s.call_count);
          ("max_depth", J.Int s.max_depth);
          ("max_frame_bytes", J.Int s.max_frame_bytes);
          ("rss_bytes", J.Int s.rss_bytes);
          ("output", J.String s.output);
        ]
      @
      match e.pbox_bytes with
      | Some b -> [ ("pbox_bytes", J.Int b) ]
      | None -> [])
  in
  make ~kind:exec_kind ~version:exec_version payload

let exec_of_entry e =
  if e.kind <> exec_kind || e.version <> exec_version then None
  else
    let j = e.payload in
    let str k = Option.bind (J.member k j) J.to_str_opt in
    let int k = Option.bind (J.member k j) J.to_int_opt in
    match
      ( str "outcome",
        Option.bind (str "cycles_bits") cycles_of_bits,
        (int "instr_count", int "call_count", int "max_depth"),
        (int "max_frame_bytes", int "rss_bytes", str "output") )
    with
    | ( Some outcome,
        Some cycles,
        (Some instr_count, Some call_count, Some max_depth),
        (Some max_frame_bytes, Some rss_bytes, Some output) ) ->
        let exit_code = Option.bind (str "exit_code") Int64.of_string_opt in
        Some
          {
            outcome;
            exit_code;
            stats =
              {
                Machine.Exec.cycles;
                instr_count;
                call_count;
                max_depth;
                max_frame_bytes;
                rss_bytes;
                output;
              };
            pbox_bytes = int "pbox_bytes";
          }
    | _ -> None

(* Attack verdict lists *)

let verdicts_kind = "verdicts"
let verdicts_version = 1

let verdicts_entry vs =
  let payload =
    J.List
      (List.map
         (fun (tag, detail) ->
           J.Obj [ ("tag", J.String tag); ("detail", J.String detail) ])
         vs)
  in
  make ~kind:verdicts_kind ~version:verdicts_version payload

let verdicts_of_entry e =
  if e.kind <> verdicts_kind || e.version <> verdicts_version then None
  else
    let decode j =
      match
        ( Option.bind (J.member "tag" j) J.to_str_opt,
          Option.bind (J.member "detail" j) J.to_str_opt )
      with
      | Some tag, Some detail -> Some (tag, detail)
      | _ -> None
    in
    let items = List.map decode (J.to_list e.payload) in
    if List.for_all Option.is_some items then
      Some (List.filter_map Fun.id items)
    else None

(* Validator results *)

let validate_kind = "validate"
let validate_version = 1

let validate_entry ~clean violations =
  let payload =
    J.Obj
      [
        ("clean", J.Bool clean);
        ( "violations",
          J.List
            (List.map
               (fun (rule, func, row, detail) ->
                 J.Obj
                   ([ ("rule", J.String rule); ("func", J.String func) ]
                   @ (match row with
                     | Some r -> [ ("row", J.Int r) ]
                     | None -> [])
                   @ [ ("detail", J.String detail) ]))
               violations) );
      ]
  in
  make ~kind:validate_kind ~version:validate_version payload

let validate_of_entry e =
  if e.kind <> validate_kind || e.version <> validate_version then None
  else
    let j = e.payload in
    match
      ( Option.bind (J.member "clean" j) (function
          | J.Bool b -> Some b
          | _ -> None),
        J.member "violations" j )
    with
    | Some clean, Some (J.List items) ->
        let decode v =
          match
            ( Option.bind (J.member "rule" v) J.to_str_opt,
              Option.bind (J.member "func" v) J.to_str_opt,
              Option.bind (J.member "detail" v) J.to_str_opt )
          with
          | Some rule, Some func, Some detail ->
              let row = Option.bind (J.member "row" v) J.to_int_opt in
              Some (rule, func, row, detail)
          | _ -> None
        in
        let decoded = List.map decode items in
        if List.for_all Option.is_some decoded then
          Some (clean, List.filter_map Fun.id decoded)
        else None
    | _ -> None
