(** Cached artifacts and their versioned JSON codecs.

    An entry is a [(kind, version, payload)] triple.  [kind] names the
    artifact family (execution outcome, attack verdict list, analyzer
    report row, validator result); [version] is bumped whenever that
    family's payload shape changes, and a reader that finds an
    unexpected kind or version treats the entry as a miss — never as a
    decode error — so stores written by older binaries degrade
    gracefully instead of crashing campaigns.

    Payload floats round-trip bit-exactly: the order-sensitive cycle
    count is stored as its IEEE-754 bit pattern, which is what lets a
    warm campaign render byte-identical reports without touching the
    VM. *)

type t = { kind : string; version : int; payload : Sutil.Json.t }

val make : kind:string -> version:int -> Sutil.Json.t -> t

val to_json : key:Key.t -> t -> Sutil.Json.t
(** The on-disk document: the full key is echoed next to the payload so
    a reader can verify the file really belongs to the key it was
    addressed by (hash-collision and foreign-file safety). *)

val of_json : Sutil.Json.t -> (Key.t * t) option

(** {2 Execution outcomes} — the hot artifact: one run's observables. *)

type exec = {
  outcome : string;  (** [Machine.Exec.outcome_to_string] rendering *)
  exit_code : int64 option;  (** [Some c] iff the outcome was [Exit c] *)
  stats : Machine.Exec.stats;
  pbox_bytes : int option;
      (** P-BOX bytes of the hardened binary, when the producer ran a
          hardened build and measured them *)
}

val exec_kind : string
val exec_version : int

val exec_of_run :
  ?pbox_bytes:int -> Machine.Exec.outcome * Machine.Exec.stats -> exec

val exec_entry : exec -> t

val exec_of_entry : t -> exec option
(** [None] on a kind/version mismatch or malformed payload (both are
    cache misses by contract). *)

(** {2 Attack verdict lists} — [(tag, detail)] pairs so the store stays
    independent of [lib/attacks]; producers own the conversion. *)

val verdicts_kind : string
val verdicts_version : int
val verdicts_entry : (string * string) list -> t
val verdicts_of_entry : t -> (string * string) list option

(** {2 Validator results} — rule violations as
    [(rule, func, row, detail)]. *)

val validate_kind : string
val validate_version : int
val validate_entry : clean:bool -> (string * string * int option * string) list -> t
val validate_of_entry : t -> (bool * (string * string * int option * string) list) option
