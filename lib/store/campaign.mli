(** Sharded, resumable execution campaigns over Progen seed ranges.

    A campaign walks [count] generated programs starting at [seed],
    executes each one (optionally hardened) on the selected engine, and
    folds the per-program observables into a summary {!report} whose
    [digest] covers every observable of every program in seed order.

    The store is the campaign's memory: each program's observables are
    looked up by {!Key.t} before any compilation or execution happens,
    so a warm re-run (or a resumed half-finished run — resuming {e is}
    just re-running over the same store) touches zero VM cycles for
    cached keys and still renders the byte-identical report, because
    cached and fresh legs flow through the same {!Entry.exec} record.

    Determinism contract: {!report} (and therefore {!report_table} /
    the ["report"]+["digest"] JSON fields) is a pure function of the
    campaign {!config} — identical at any pool width, on either engine
    for programs whose observables agree, and regardless of how much of
    the store was already populated.  Hit rates, wall clock and pool
    counters are host/run-dependent and deliberately live {e outside}
    the report (in {!Cache.stats} and [Sched.Pool.stats]). *)

type config = {
  seed : int64;  (** first Progen seed; programs use [seed..seed+count-1] *)
  count : int;
  exec_seed : int64;  (** entropy/run seed recorded in every {!Key.t} *)
  harden : Smokestack.Config.t option;  (** [None] = unhardened baseline *)
  engine : Machine.Backend.kind;
  fuel : int;
  shard : int;  (** jobs submitted per pool wave *)
}

val config :
  ?seed:int64 ->
  ?exec_seed:int64 ->
  ?harden:Smokestack.Config.t ->
  ?engine:Machine.Backend.kind ->
  ?fuel:int ->
  ?shard:int ->
  count:int ->
  unit ->
  config
(** Defaults: [seed = 1000], [exec_seed = 7], no hardening,
    [engine = Reference], [fuel = 2_000_000] (Progen programs terminate
    well under this), [shard = 512]. *)

type report = {
  programs : int;
  exited_zero : int;
  exited_nonzero : int;
  faulted : int;
  detected : int;
  fuel_exhausted : int;
  total_instrs : int;
  total_calls : int;
  deepest_call : int;
  digest : string;
      (** hex digest over one canonical line per program (seed order),
          each covering outcome, bit-exact cycles, every stats field
          and a digest of the program output *)
}

val run : ?pool:Sched.Pool.t -> store:Cache.t -> config -> report
(** Executes the campaign against [store].  Work is submitted in waves
    of [config.shard] jobs; results are folded in submission (= seed)
    order, so the rolling digest never depends on completion order.
    Raises [Failure] if [config.engine]'s backend is not linked. *)

val remaining : store:Cache.t -> config -> int
(** Number of the campaign's keys not yet present in [store] (what a
    [--resume] run still has to execute).  Walks the seed range without
    executing anything. *)

val report_table : report -> Sutil.Texttable.t
(** The deterministic summary table the CLI prints. *)

val report_to_json : report -> Sutil.Json.t
