(** Content hashing for the store.

    The store is a local, non-adversarial cache: the hash only needs to
    be deterministic, fast, and collision-free in practice, so the
    stdlib's 128-bit digest is used rather than a vendored
    cryptographic hash (the repo's crypto library implements AES for
    the {e defense}, not for storage).  Every entry file echoes its
    full key, and {!Cache.find} verifies the echo, so even a hash
    collision degrades to a miss, never to a wrong answer. *)

val hex : string -> string
(** 32-character lowercase hex digest of the bytes. *)

val hex_of_parts : string list -> string
(** Digest of the parts joined with an unambiguous length-prefixed
    framing, so [["ab"; "c"]] and [["a"; "bc"]] hash differently. *)
