(** SP 800-90B-style startup/continuous health tests.

    Real RDRAND hardware has failed in the field (stuck-at all-ones on
    several AMD steppings), and NIST SP 800-90B §4.4 requires every
    entropy source to run two cheap continuous tests so such failures
    are caught within a bounded number of samples:

    - the {e repetition count test} (RCT) fails when the same sample
      value repeats [rct_cutoff] times in a row — the canonical
      stuck-at detector;
    - the {e adaptive proportion test} (APT) fails when, within a
      window of [apt_window] samples, the window's first sample value
      recurs [apt_cutoff] or more times — catching sources that are
      not stuck but heavily biased.

    The APT here runs on the {e low byte} of each 64-bit sample, so a
    source whose high bits stay random while the low bits freeze (the
    "biased low bits" failure mode) is still caught; a full-width APT
    would never see two equal samples.

    Feeding samples never perturbs them — a generator with health
    tests enabled produces exactly the draw stream it produces with
    them disabled, until the moment a test fails.  The default cutoffs
    are chosen so a healthy uniform source fails with probability
    < 1e-13 per window (never, in any plausible experiment), while a
    stuck source fails within [rct_cutoff] draws and an 8-bit-biased
    source within one window. *)

type config = {
  rct_cutoff : int;  (** identical consecutive samples that fail the RCT *)
  apt_window : int;  (** samples per adaptive-proportion window *)
  apt_cutoff : int;  (** low-byte recurrences within a window that fail *)
}

val default : config
(** [{ rct_cutoff = 5; apt_window = 512; apt_cutoff = 20 }]. *)

type t

val create : ?config:config -> unit -> t

val feed : t -> int64 -> string option
(** Observe one sample.  [None] while the source looks healthy;
    [Some reason] the first time a test fails.  After a failure the
    state keeps reporting failures until {!reset}. *)

val reset : t -> unit
(** Forget all history (used when a generator switches to a fallback
    source: the new source starts with a clean bill of health). *)

val samples : t -> int
(** Samples fed since creation or the last {!reset}. *)
