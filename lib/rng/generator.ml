type kind =
  | Kpseudo of { mutable state : int64 }
  | Kaes of Crypto.Ctr.t
  | Krdrand of Crypto.Entropy.t

type policy = Fail_secure | Fail_open

type degradation = {
  from_scheme : Scheme.t;
  to_scheme : Scheme.t option;
  reason : string;
}

exception Source_failed of string

type tampered = Value of int64 | Unavailable

type t = {
  initial : Scheme.t;
  mutable scheme : Scheme.t;
  mutable kind : kind;
  mutable draws : int;
  entropy : Crypto.Entropy.t;
  rekey_interval : int;
  policy : policy;
  health : Health.t;
  mutable health_enabled : bool;
  mutable tamper : (scheme:Scheme.t -> draw:int -> int64 -> tampered) option;
  mutable on_degrade : (degradation -> unit) option;
  mutable degradations_rev : degradation list;
}

let make_kind ?seed_state ~rekey_interval ~entropy scheme =
  match scheme with
  | Scheme.Pseudo ->
      let state =
        match seed_state with Some s -> s | None -> Crypto.Entropy.u64 entropy
      in
      Kpseudo { state }
  | Scheme.Aes_ctr { rounds } ->
      Kaes
        (Crypto.Ctr.create ~rounds ~rekey_interval
           ~entropy:(Crypto.Entropy.bytes entropy) ())
  | Scheme.Rdrand -> Krdrand entropy

let create ?seed_state ?(rekey_interval = 65536) ?(policy = Fail_secure)
    ?(health = Health.default) scheme ~entropy =
  {
    initial = scheme;
    scheme;
    kind = make_kind ?seed_state ~rekey_interval ~entropy scheme;
    draws = 0;
    entropy;
    rekey_interval;
    policy;
    health = Health.create ~config:health ();
    health_enabled = true;
    tamper = None;
    on_degrade = None;
    degradations_rev = [];
  }

let scheme t = t.initial
let current_scheme t = t.scheme
let policy t = t.policy
let draws t = t.draws
let degradations t = List.rev t.degradations_rev
let set_on_degrade t f = t.on_degrade <- Some f
let set_tamper t f = t.tamper <- Some f
let clear_tamper t = t.tamper <- None

(* The fallback chain.  A degraded source is abandoned for good, so the
   tamper hook (which models a defect of that physical source) is
   cleared, and the fallback starts with fresh health state. *)
let degrade t ~reason =
  let from_scheme = t.scheme in
  let next =
    match (t.policy, t.scheme) with
    | Fail_open, _ -> Some Scheme.Pseudo
    | Fail_secure, Scheme.Rdrand -> Some (Scheme.Aes_ctr { rounds = 10 })
    | Fail_secure, (Scheme.Aes_ctr _ | Scheme.Pseudo) -> None
  in
  let d = { from_scheme; to_scheme = next; reason } in
  t.degradations_rev <- d :: t.degradations_rev;
  t.tamper <- None;
  (match t.on_degrade with Some f -> f d | None -> ());
  match next with
  | None -> raise (Source_failed reason)
  | Some s ->
      t.scheme <- s;
      t.kind <-
        make_kind ~rekey_interval:t.rekey_interval ~entropy:t.entropy s;
      Health.reset t.health;
      (* fail-open means "keep serving whatever we have": no further
         screening, no further degradation *)
      if t.policy = Fail_open then t.health_enabled <- false

let rec draw_checked t =
  let raw =
    match t.kind with
    | Kpseudo p ->
        p.state <- Pseudo.step p.state;
        Pseudo.output p.state
    | Kaes ctr -> Crypto.Ctr.next_u64 ctr
    | Krdrand e -> Crypto.Entropy.u64 e
  in
  let sample =
    match t.tamper with
    | None -> Value raw
    | Some f -> f ~scheme:t.scheme ~draw:t.draws raw
  in
  match sample with
  | Unavailable ->
      degrade t ~reason:"source unavailable";
      draw_checked t
  | Value v ->
      (* The SP 800-90B continuous tests qualify the *noise source*:
         only hardware (Rdrand) draws are screened.  DRBG output is
         deliberately exempt — single-round AES has poor enough
         diffusion that its low byte legitimately trips the
         adaptive-proportion test, and Table I's AES-1 operating point
         must keep working. *)
      let hardware = match t.kind with Krdrand _ -> true | _ -> false in
      if not (t.health_enabled && hardware) then v
      else begin
        match Health.feed t.health v with
        | None -> v
        | Some reason ->
            degrade t ~reason;
            draw_checked t
      end

let next_u64 t =
  t.draws <- t.draws + 1;
  draw_checked t

let pseudo_state t =
  match t.kind with
  | Kpseudo p -> p.state
  | _ -> invalid_arg "Rng.Generator.pseudo_state: not a pseudo generator"

let set_pseudo_state t v =
  match t.kind with
  | Kpseudo p -> p.state <- v
  | _ -> invalid_arg "Rng.Generator.set_pseudo_state: not a pseudo generator"
