(** Stateful generators for each {!module:Scheme}, with source health
    monitoring and a graceful-degradation chain.

    For [Pseudo] the generator also tracks its state word so the
    Smokestack runtime can mirror it into VM memory (and accept
    attacker-tampered values back) — see {!Pseudo}.  [Aes_ctr] keys and
    nonces come from the supplied entropy source and are periodically
    refreshed; [Rdrand] draws straight from the entropy source.

    {2 Health and degradation}

    Every {e hardware} ([Rdrand]) draw is screened by the SP 800-90B
    continuous tests in {!module:Health} (repetition count + adaptive
    proportion).  Software schemes are exempt — the 800-90B tests
    qualify a noise source, and AES-1's weak diffusion would
    legitimately trip the adaptive-proportion test even though it is a
    documented Table-I operating point.  When a test fails — or a
    {!set_tamper} hook reports the source unavailable (any scheme) —
    the generator {e degrades} according to its {!type:policy}:

    - [Fail_secure] (the default) walks the documented fallback chain
      [Rdrand → Aes_ctr {rounds = 10} → abort]: a failed hardware
      source is replaced by the strongest software scheme, and a
      failure of that (or of an initially-software scheme) raises
      {!exception:Source_failed} — the runtime converts this into a
      detection outcome rather than serving weak randomness;
    - [Fail_open] switches to [Pseudo] and keeps serving draws with
      health checks disabled — explicitly representable so the chaos
      experiment (E13) can measure what silent degradation costs.

    Each degradation is reported through {!set_on_degrade} (the
    Smokestack runtime forwards it as an [Ev_rng_degraded] trace
    event) and recorded in {!degradations}.  Degrading also clears any
    tamper hook: the fault modelled a defect of the physical source
    that was just abandoned.

    Domain-safety: this module holds no module-level mutable state —
    all state (pseudo word, AES key schedule, draw counter, health
    state) lives in the [t] instance.  A generator belongs to the job
    that created it; parallel jobs each create their own from an
    explicit seed. *)

type t

type policy = Fail_secure | Fail_open

type degradation = {
  from_scheme : Scheme.t;
  to_scheme : Scheme.t option;  (** [None] = fail-secure abort *)
  reason : string;
}

exception Source_failed of string
(** Raised by {!next_u64} when a [Fail_secure] generator has no
    fallback left.  The Smokestack runtime turns it into
    {!Machine.Exec.Detect} so the VM reports a structured outcome. *)

type tampered = Value of int64 | Unavailable
(** What a fault-injection hook turns a raw hardware draw into:
    a (possibly corrupted) value, or a read failure. *)

val create :
  ?seed_state:int64 ->
  ?rekey_interval:int ->
  ?policy:policy ->
  ?health:Health.config ->
  Scheme.t ->
  entropy:Crypto.Entropy.t ->
  t
(** [seed_state] initializes the pseudo state word (default drawn from
    [entropy], as a real deployment would seed its PRNG once).
    [rekey_interval] bounds the AES-CTR blocks between key refreshes
    (default 65536 — the paper's universal call counter maximum).
    [policy] defaults to [Fail_secure]; [health] to {!Health.default}
    (always on — the cutoffs are unreachable by a healthy source). *)

val scheme : t -> Scheme.t
(** The scheme the generator was created with. *)

val current_scheme : t -> Scheme.t
(** The scheme currently serving draws ([<> scheme t] after a
    degradation). *)

val policy : t -> policy

val next_u64 : t -> int64
(** One 64-bit draw, screened by the health tests when the serving
    scheme is hardware; transparently switches to the fallback scheme
    on failure.  Raises
    {!exception:Source_failed} only under [Fail_secure] with the
    chain exhausted. *)

val draws : t -> int

val degradations : t -> degradation list
(** Every degradation so far, oldest first. *)

val set_on_degrade : t -> (degradation -> unit) -> unit
(** Called synchronously at each degradation, before the fallback
    serves its first draw. *)

val set_tamper : t -> (scheme:Scheme.t -> draw:int -> int64 -> tampered) -> unit
(** Install a fault-injection hook between the raw source and the
    health tests: it sees each raw draw (with the live scheme and the
    1-based draw index) and returns what the hardware "really"
    delivered.  Cleared automatically when the generator degrades. *)

val clear_tamper : t -> unit

val pseudo_state : t -> int64
(** Current state word. Raises [Invalid_argument] when the current
    scheme is not [Pseudo]. *)

val set_pseudo_state : t -> int64 -> unit
(** Overwrite the state word (models the attacker, or the runtime
    reading the word back from VM memory).  Raises [Invalid_argument]
    when the current scheme is not [Pseudo]. *)
