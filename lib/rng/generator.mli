(** Stateful generators for each {!module:Scheme}.

    For [Pseudo] the generator also tracks its state word so the
    Smokestack runtime can mirror it into VM memory (and accept
    attacker-tampered values back) — see {!Pseudo}.  [Aes_ctr] keys and
    nonces come from the supplied entropy source and are periodically
    refreshed; [Rdrand] draws straight from the entropy source.

    Domain-safety: this module holds no module-level mutable state —
    all state (pseudo word, AES key schedule, draw counter) lives in
    the [t] instance.  A generator belongs to the job that created it;
    parallel jobs each create their own from an explicit seed. *)

type t

val create :
  ?seed_state:int64 ->
  ?rekey_interval:int ->
  Scheme.t ->
  entropy:Crypto.Entropy.t ->
  t
(** [seed_state] initializes the pseudo state word (default drawn from
    [entropy], as a real deployment would seed its PRNG once).
    [rekey_interval] bounds the AES-CTR blocks between key refreshes
    (default 65536 — the paper's universal call counter maximum). *)

val scheme : t -> Scheme.t
val next_u64 : t -> int64
val draws : t -> int

val pseudo_state : t -> int64
(** Current state word. Raises [Invalid_argument] for non-[Pseudo]
    generators. *)

val set_pseudo_state : t -> int64 -> unit
(** Overwrite the state word (models the attacker, or the runtime
    reading the word back from VM memory).  Raises [Invalid_argument]
    for non-[Pseudo] generators. *)
