type config = { rct_cutoff : int; apt_window : int; apt_cutoff : int }

let default = { rct_cutoff = 5; apt_window = 512; apt_cutoff = 20 }

type t = {
  config : config;
  mutable samples : int;
  (* RCT: current run of identical full-width samples *)
  mutable rct_last : int64;
  mutable rct_run : int;
  (* APT: low-byte reference for the current window *)
  mutable apt_ref : int;
  mutable apt_pos : int;  (* samples seen in the current window *)
  mutable apt_hits : int;
  mutable failed : string option;
}

let create ?(config = default) () =
  if config.rct_cutoff < 2 then
    invalid_arg "Rng.Health.create: rct_cutoff must be >= 2";
  if config.apt_cutoff < 2 || config.apt_window < config.apt_cutoff then
    invalid_arg "Rng.Health.create: need 2 <= apt_cutoff <= apt_window";
  {
    config;
    samples = 0;
    rct_last = 0L;
    rct_run = 0;
    apt_ref = -1;
    apt_pos = 0;
    apt_hits = 0;
    failed = None;
  }

let reset t =
  t.samples <- 0;
  t.rct_run <- 0;
  t.apt_ref <- -1;
  t.apt_pos <- 0;
  t.apt_hits <- 0;
  t.failed <- None

let samples t = t.samples

let feed t v =
  match t.failed with
  | Some _ as f -> f
  | None ->
      t.samples <- t.samples + 1;
      (* repetition count *)
      if t.rct_run > 0 && Int64.equal v t.rct_last then
        t.rct_run <- t.rct_run + 1
      else begin
        t.rct_last <- v;
        t.rct_run <- 1
      end;
      if t.rct_run >= t.config.rct_cutoff then
        t.failed <-
          Some
            (Printf.sprintf
               "repetition-count test: value 0x%Lx repeated %d times" v
               t.rct_run)
      else begin
        (* adaptive proportion, on the low byte *)
        let b = Int64.to_int (Int64.logand v 0xffL) in
        if t.apt_pos = 0 then begin
          t.apt_ref <- b;
          t.apt_hits <- 1;
          t.apt_pos <- 1
        end
        else begin
          if b = t.apt_ref then t.apt_hits <- t.apt_hits + 1;
          t.apt_pos <- t.apt_pos + 1
        end;
        if t.apt_hits >= t.config.apt_cutoff then
          t.failed <-
            Some
              (Printf.sprintf
                 "adaptive-proportion test: low byte 0x%02x seen %d times in \
                  %d samples"
                 t.apt_ref t.apt_hits t.apt_pos)
        else if t.apt_pos >= t.config.apt_window then begin
          t.apt_pos <- 0;
          t.apt_hits <- 0
        end
      end;
      t.failed
