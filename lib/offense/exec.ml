let run_chunks_probed ?backend ?fuel (applied : Defenses.Defense.applied)
    ~seed ~chunks ~globals =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let entropy = Crypto.Entropy.create ~seed in
  let st = applied.fresh_state entropy in
  let remaining = ref chunks in
  Machine.Exec.set_input st (fun _st max ->
      match !remaining with
      | [] -> ""
      | chunk :: rest ->
          remaining := rest;
          if String.length chunk > max then String.sub chunk 0 max else chunk);
  let outcome, stats = backend.Machine.Backend.run ?fuel st in
  let finals =
    List.map
      (fun g ->
        ( g,
          Machine.Memory.load_unchecked st.Machine.Exec.mem ~width:8
            (Machine.Exec.global_addr st g) ))
      globals
  in
  (outcome, stats, finals)

let run_chain ?backend (applied : Defenses.Defense.applied) (chain : Chain.t)
    ~seed =
  match Payload.lower applied chain ~seed with
  | exception Invalid_argument _ -> Attacks.Verdict.No_effect
  | chunks -> (
      let globals =
        match chain.goal with Chain.Flip_global (g, _) -> [ g ] | _ -> []
      in
      match run_chunks_probed ?backend applied ~seed ~chunks ~globals with
      | exception Invalid_argument _ ->
          (* a goal global the build doesn't define *)
          Attacks.Verdict.No_effect
      | outcome, stats, finals ->
          let goal_met =
            match chain.goal with
            | Chain.Flip_global (g, c) -> List.assoc_opt g finals = Some c
            | Chain.Output_contains m -> Apps.Dopkit.goal_in_output m stats
            | Chain.Output_differs ->
                let benign =
                  List.map (fun c -> String.make (String.length c) 'A') chunks
                in
                let _, bstats, _ =
                  run_chunks_probed ?backend applied ~seed ~chunks:benign
                    ~globals:[]
                in
                not
                  (String.equal stats.Machine.Exec.output
                     bstats.Machine.Exec.output)
          in
          Attacks.Verdict.classify outcome ~goal_met)

(* ------------------------------------------------------------------ *)
(* Disclosure-guided delivery.

   Convention with the leak analyzer ({!Analysis.Leakan} /
   {!Plan.leak_guides}): a disclosing target prints the absolute
   addresses of [disclosed] slots — one integer line each, in that
   order — before its first read.  Per-invocation randomization makes
   stale addresses worthless, so the attacker must parse them and craft
   the payload inside the same session: this runner does exactly that
   with an adaptive input callback. *)

let parse_disclosures out n =
  let lines = String.split_on_char '\n' out in
  let rec take k = function
    | _ when k = 0 -> Some []
    | [] -> None
    | l :: rest -> (
        match Int64.of_string_opt (String.trim l) with
        | Some v -> Option.map (fun t -> v :: t) (take (k - 1) rest)
        | None -> None)
  in
  take n lines

let run_chain_guided ?backend (applied : Defenses.Defense.applied)
    (chain : Chain.t) ~disclosed ~seed =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let chunks_ref = ref None in
  let delivered = ref [] in
  let state_ref = ref None in
  let craft (st : Machine.Exec.state) =
    let out = Buffer.contents st.Machine.Exec.output in
    match parse_disclosures out (List.length disclosed) with
    | None -> []  (* the target never disclosed: nothing to aim with *)
    | Some addrs -> (
        let pairs = List.combine disclosed addrs in
        match List.assoc_opt chain.buffer pairs with
        | None -> []
        | Some base -> (
            (* differences of disclosed addresses are base-invariant
               buffer-relative offsets — the exact quantities the
               Algorithm-1 guess would otherwise have to hit *)
            let pinned =
              List.filter_map
                (fun (v, a) ->
                  if v = chain.buffer then None
                  else Some (v, Int64.to_int (Int64.sub a base)))
                pairs
            in
            match Payload.lower_pinned applied chain ~pinned ~seed with
            | exception Invalid_argument _ -> []
            | cs -> cs))
  in
  let input st max =
    (match !chunks_ref with
    | Some _ -> ()
    | None -> chunks_ref := Some (craft st));
    match !chunks_ref with
    | Some (c :: rest) ->
        chunks_ref := Some rest;
        delivered := c :: !delivered;
        if String.length c > max then String.sub c 0 max else c
    | _ -> ""
  in
  match
    Apps.Runner.run_adaptive ~backend
      ~arm:(fun st -> state_ref := Some st)
      applied ~seed ~input
  with
  | exception Invalid_argument _ -> Attacks.Verdict.No_effect
  | outcome, stats ->
      let goal_met =
        match chain.goal with
        | Chain.Flip_global (g, c) -> (
            match !state_ref with
            | None -> false
            | Some st -> (
                match
                  Machine.Memory.load_unchecked st.Machine.Exec.mem ~width:8
                    (Machine.Exec.global_addr st g)
                with
                | v -> v = c
                | exception Invalid_argument _ -> false))
        | Chain.Output_contains m -> Apps.Dopkit.goal_in_output m stats
        | Chain.Output_differs -> (
            let benign =
              List.rev_map
                (fun c -> String.make (String.length c) 'A')
                !delivered
            in
            match
              run_chunks_probed ~backend applied ~seed ~chunks:benign
                ~globals:[]
            with
            | exception Invalid_argument _ -> false
            | _, bstats, _ ->
                not
                  (String.equal stats.Machine.Exec.output
                     bstats.Machine.Exec.output))
      in
      Attacks.Verdict.classify outcome ~goal_met

let brute_guided ?backend applied chain ~disclosed ~budget ~seed0 =
  let rec go i acc =
    if i >= budget then List.rev acc
    else
      let v =
        run_chain_guided ?backend applied chain ~disclosed
          ~seed:(Int64.of_int (seed0 + i))
      in
      let acc = v :: acc in
      if v = Attacks.Verdict.Success then List.rev acc else go (i + 1) acc
  in
  go 0 []

let trials ?backend applied chain ~n ~seed0 =
  List.init n (fun i ->
      run_chain ?backend applied chain ~seed:(Int64.of_int (seed0 + (1000 * i))))

let brute ?backend applied chain ~budget ~seed0 =
  let rec go i acc =
    if i >= budget then List.rev acc
    else
      let v = run_chain ?backend applied chain ~seed:(Int64.of_int (seed0 + i)) in
      let acc = v :: acc in
      if v = Attacks.Verdict.Success then List.rev acc else go (i + 1) acc
  in
  go 0 []
