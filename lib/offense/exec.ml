let run_chunks_probed ?backend ?fuel (applied : Defenses.Defense.applied)
    ~seed ~chunks ~globals =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let entropy = Crypto.Entropy.create ~seed in
  let st = applied.fresh_state entropy in
  let remaining = ref chunks in
  Machine.Exec.set_input st (fun _st max ->
      match !remaining with
      | [] -> ""
      | chunk :: rest ->
          remaining := rest;
          if String.length chunk > max then String.sub chunk 0 max else chunk);
  let outcome, stats = backend.Machine.Backend.run ?fuel st in
  let finals =
    List.map
      (fun g ->
        ( g,
          Machine.Memory.load_unchecked st.Machine.Exec.mem ~width:8
            (Machine.Exec.global_addr st g) ))
      globals
  in
  (outcome, stats, finals)

let run_chain ?backend (applied : Defenses.Defense.applied) (chain : Chain.t)
    ~seed =
  match Payload.lower applied chain ~seed with
  | exception Invalid_argument _ -> Attacks.Verdict.No_effect
  | chunks -> (
      let globals =
        match chain.goal with Chain.Flip_global (g, _) -> [ g ] | _ -> []
      in
      match run_chunks_probed ?backend applied ~seed ~chunks ~globals with
      | exception Invalid_argument _ ->
          (* a goal global the build doesn't define *)
          Attacks.Verdict.No_effect
      | outcome, stats, finals ->
          let goal_met =
            match chain.goal with
            | Chain.Flip_global (g, c) -> List.assoc_opt g finals = Some c
            | Chain.Output_contains m -> Apps.Dopkit.goal_in_output m stats
            | Chain.Output_differs ->
                let benign =
                  List.map (fun c -> String.make (String.length c) 'A') chunks
                in
                let _, bstats, _ =
                  run_chunks_probed ?backend applied ~seed ~chunks:benign
                    ~globals:[]
                in
                not
                  (String.equal stats.Machine.Exec.output
                     bstats.Machine.Exec.output)
          in
          Attacks.Verdict.classify outcome ~goal_met)

let trials ?backend applied chain ~n ~seed0 =
  List.init n (fun i ->
      run_chain ?backend applied chain ~seed:(Int64.of_int (seed0 + (1000 * i))))

let brute ?backend applied chain ~budget ~seed0 =
  let rec go i acc =
    if i >= budget then List.rev acc
    else
      let v = run_chain ?backend applied chain ~seed:(Int64.of_int (seed0 + i)) in
      let acc = v :: acc in
      if v = Attacks.Verdict.Success then List.rev acc else go (i + 1) acc
  in
  go 0 []
