(** Typed gadget model — step 1 of the attack compiler (DESIGN.md §15).

    A gadget is a primitive the synthesizer can invoke: classified from
    the static evidence {!Analysis.Dop} and {!Analysis.Funcan} already
    produce (pair kind + victim role), enriched with two miners over
    the IR:

    - {e slot compare constants}: equality tests of a slot's loaded
      value against an immediate ([req == 1]) give branch-flip gadgets
      their target values;
    - {e global flip targets}: equality tests of a writable global
      against an immediate whose initial value differs ([auth == 4919])
      give chains a semantically checkable goal — drive the global to
      the compared constant.

    Arithmetic gadgets ({!constructor:Arith}) are not mined statically:
    the planner discovers them by {e semantic probing} of the
    attacker's own unhardened replica (see {!Plan}), which is how a
    STEROIDS-style compiler learns what a dispatcher loop computes
    without pattern-matching its code. *)

type op = Add | Sub | Mov

val op_to_string : op -> string

type kind =
  | Deliver
      (** write primitive: an overflow-capable buffer whose unbounded
          write is fed by [read_input] — the chain's injection point *)
  | Branch_flip of int64 list
      (** the victim feeds a conditional branch; the payload lists the
          mined compare constants for the slot (may be empty) *)
  | Ptr_aim  (** deref primitive: the victim feeds a load/store address *)
  | Wild_value
      (** write primitive: the victim's value is written through a wild
          pointer *)
  | Leak  (** read primitive: the victim flows into a call argument *)
  | Call_redirect  (** the victim reaches an indirect-call target *)
  | Arith of { aop : op; sel_slot : string; sel_value : int64; dst_first : bool }
      (** probed dispatcher operation: delivering [sel_slot = sel_value]
          makes the loop body compute [*p1 aop= *p2] ([dst_first]) or
          [*p2 aop= *p1] over the frame's first two pointer slots *)

type t = {
  gid : string;  (** stable digest of (kind tag, func, slot, detail) *)
  kind : kind;
  func : string;  (** function owning the slot *)
  slot : string;
  pair_ids : string list;
      (** the {!Analysis.Dop} pairs this gadget is grounded in —
          [Deliver] collects every pair using the buffer, victim-side
          gadgets carry their own pair *)
}

val kind_to_string : kind -> string

val v : kind -> func:string -> slot:string -> pair_ids:string list -> t
(** Constructor computing [gid]; the planner uses it for probed
    {!constructor:Arith} gadgets. *)

val mined_slot_consts : Ir.Func.t -> (string * int64 list) list
(** Per-slot [Eq]/[Ne] compare immediates, slots in alloca order,
    constants deduplicated in first-seen order.  Follows one [Gep]
    (offset 0) and [Sext]/[Trunc] hop, matching [-O0] codegen. *)

val global_init : Ir.Prog.t -> string -> int64 option
(** Initial value of a writable scalar (≤ 8 byte) global, decoded from
    its padded init bytes; [None] for read-only, aggregate or absent
    globals. *)

val mined_global_flips : Ir.Prog.t -> (string * int64 * int64) list
(** [(global, initial value, compared constant)] for every writable
    scalar global compared [Eq]/[Ne] against an immediate that differs
    from its initial bytes — the chain goals.  Program order, deduped. *)

val harvest :
  Ir.Prog.t -> Analysis.Funcan.t list -> Analysis.Dop.pair list -> t list
(** Classify pairs and slots into gadgets, deterministic order:
    [Deliver] gadgets in analysis order, then one victim gadget per
    (pair, role). *)
