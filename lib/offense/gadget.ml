type op = Add | Sub | Mov

let op_to_string = function Add -> "add" | Sub -> "sub" | Mov -> "mov"

type kind =
  | Deliver
  | Branch_flip of int64 list
  | Ptr_aim
  | Wild_value
  | Leak
  | Call_redirect
  | Arith of { aop : op; sel_slot : string; sel_value : int64; dst_first : bool }

type t = {
  gid : string;
  kind : kind;
  func : string;
  slot : string;
  pair_ids : string list;
}

let kind_to_string = function
  | Deliver -> "deliver"
  | Branch_flip cs ->
      "branch-flip"
      ^
      if cs = [] then ""
      else "{" ^ String.concat "," (List.map Int64.to_string cs) ^ "}"
  | Ptr_aim -> "ptr-aim"
  | Wild_value -> "wild-value"
  | Leak -> "leak"
  | Call_redirect -> "call-redirect"
  | Arith { aop; sel_slot; sel_value; dst_first } ->
      Printf.sprintf "arith{%s;%s=%Ld;%s}" (op_to_string aop) sel_slot
        sel_value
        (if dst_first then "p1<-p2" else "p2<-p1")

(* Same length-prefixed framing + truncated MD5 as Analysis.Dop pair
   ids, so every offense identifier renders uniformly. *)
let digest_fields fields =
  let b = Buffer.create 64 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    fields;
  String.sub (Digest.to_hex (Digest.string (Buffer.contents b))) 0 12

let mk kind func slot pair_ids =
  { gid = digest_fields [ kind_to_string kind; func; slot ]; kind; func;
    slot; pair_ids }

let v kind ~func ~slot ~pair_ids = mk kind func slot pair_ids

(* ------------------------------------------------------------------ *)
(* IR miners *)

(* Per-function context: register definitions and alloca names, enough
   to walk the -O0 load/compare/branch idiom backwards. *)
let defs_of (f : Ir.Func.t) =
  let defs = Hashtbl.create 64 in
  Ir.Func.iter_instrs f (fun i ->
      match Ir.Instr.defined_reg i with
      | Some r -> Hashtbl.replace defs r i
      | None -> ());
  defs

(* What address does an operand denote?  One Gep hop with constant
   offset 0 and no index is transparent (taking a slot's address). *)
let rec resolve_addr defs fuel (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Global g -> `Glob g
  | Ir.Instr.Reg r when fuel > 0 -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Instr.Alloca { name; _ }) -> `Slot name
      | Some (Ir.Instr.Gep { base; offset = 0; index = None; _ }) ->
          resolve_addr defs (fuel - 1) base
      | _ -> `Other)
  | _ -> `Other

(* Whose loaded value is this operand?  Sext/Trunc hops are
   transparent (narrow locals compared as i64). *)
let rec resolve_val defs fuel (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Reg r when fuel > 0 -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Instr.Load { addr; _ }) -> resolve_addr defs 4 addr
      | Some (Ir.Instr.Sext { value; _ }) | Some (Ir.Instr.Trunc { value; _ })
        ->
          resolve_val defs (fuel - 1) value
      | _ -> `Other)
  | _ -> `Other

(* Registers that decide control flow: Cond_br and Select conditions,
   propagated backwards through the [icmp ne x, 0] normalization the
   front end wraps every condition in. *)
let branch_conds (f : Ir.Func.t) defs =
  let conds = Hashtbl.create 16 in
  let add = function
    | Ir.Instr.Reg r -> Hashtbl.replace conds r ()
    | _ -> ()
  in
  List.iter
    (fun (b : Ir.Func.block) ->
      match b.term with
      | Ir.Instr.Cond_br { cond; _ } -> add cond
      | _ -> ())
    f.blocks;
  Ir.Func.iter_instrs f (function
    | Ir.Instr.Select { cond; _ } -> add cond
    | _ -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun r () ->
        match Hashtbl.find_opt defs r with
        | Some
            (Ir.Instr.Icmp
               { op = Ir.Instr.Ne; lhs = Ir.Instr.Reg x; rhs = Ir.Instr.Imm 0L; _ })
        | Some
            (Ir.Instr.Icmp
               { op = Ir.Instr.Ne; lhs = Ir.Instr.Imm 0L; rhs = Ir.Instr.Reg x; _ })
          ->
            if not (Hashtbl.mem conds x) then begin
              Hashtbl.replace conds x ();
              changed := true
            end
        | _ -> ())
      (Hashtbl.copy conds)
  done;
  conds

(* Every (what, constant) with [what == c] / [what != c] feeding a
   branch, in program order. *)
let equality_tests (f : Ir.Func.t) =
  let defs = defs_of f in
  let conds = branch_conds f defs in
  let out = ref [] in
  Ir.Func.iter_instrs f (function
    | Ir.Instr.Icmp { dst; op = Ir.Instr.Eq | Ir.Instr.Ne; lhs; rhs }
      when Hashtbl.mem conds dst -> (
        let classify imm other =
          match resolve_val defs 4 other with
          | `Slot s -> out := (`Slot s, imm) :: !out
          | `Glob g -> out := (`Glob g, imm) :: !out
          | `Other -> ()
        in
        match (lhs, rhs) with
        | Ir.Instr.Imm c, x | x, Ir.Instr.Imm c -> classify c x
        | _ -> ())
    | _ -> ());
  List.rev !out

let dedup_consts cs =
  List.rev
    (List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) [] cs)

let mined_slot_consts (f : Ir.Func.t) =
  let tests = equality_tests f in
  List.filter_map
    (fun (_, _, _, name) ->
      let cs =
        List.filter_map
          (function `Slot s, c when s = name -> Some c | _ -> None)
          tests
      in
      if cs = [] then None else Some (name, dedup_consts cs))
    (Ir.Func.allocas f)

(* Initial value of a writable scalar global, from its padded init
   bytes (little-endian, zero-extended). *)
let global_init (prog : Ir.Prog.t) g =
  match Ir.Prog.find_global prog g with
  | Some { gwritable = true; gty; ginit; _ } when Ir.Ty.size gty <= 8 ->
      let size = Ir.Ty.size gty in
      let v = ref 0L in
      for i = size - 1 downto 0 do
        let byte =
          if i < String.length ginit then Char.code ginit.[i] else 0
        in
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
      done;
      Some !v
  | _ -> None

let mined_global_flips (prog : Ir.Prog.t) =
  let out = ref [] in
  List.iter
    (fun (f : Ir.Func.t) ->
      List.iter
        (fun (what, c) ->
          match what with
          | `Glob g -> (
              match global_init prog g with
              | Some init
                when init <> c
                     && not
                          (List.exists
                             (fun (g', _, c') -> g' = g && c' = c)
                             !out) ->
                  out := (g, init, c) :: !out
              | _ -> ())
          | `Slot _ -> ())
        (equality_tests f))
    prog.funcs;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Classification *)

let harvest (prog : Ir.Prog.t) (ans : Analysis.Funcan.t list)
    (pairs : Analysis.Dop.pair list) =
  let consts_of =
    let cache = Hashtbl.create 8 in
    fun fname slot ->
      let table =
        match Hashtbl.find_opt cache fname with
        | Some t -> t
        | None ->
            let t =
              match Ir.Prog.find_func prog fname with
              | Some f -> mined_slot_consts f
              | None -> []
            in
            Hashtbl.replace cache fname t;
            t
      in
      Option.value ~default:[] (List.assoc_opt slot table)
  in
  (* merged by (kind, func, slot), first-seen order; a plain assoc
     accumulator keeps the output independent of hashing and gadget
     counts are small *)
  let acc : ((string * string * string) * (kind * string * string * string list ref)) list ref =
    ref []
  in
  let push kind func slot pid =
    let key = (kind_to_string kind, func, slot) in
    match List.assoc_opt key !acc with
    | Some (_, _, _, ids) -> if not (List.mem pid !ids) then ids := !ids @ [ pid ]
    | None -> acc := !acc @ [ (key, (kind, func, slot, ref [ pid ])) ]
  in
  List.iter
    (fun (a : Analysis.Funcan.t) ->
      List.iter
        (fun (s : Analysis.Funcan.slot) ->
          if
            List.exists
              (function
                | Analysis.Funcan.Unbounded_intrinsic "read_input" -> true
                | _ -> false)
              s.overflow
          then
            List.iter
              (fun (p : Analysis.Dop.pair) ->
                if p.buf_func = a.fname && p.buf_slot = s.name then
                  push Deliver a.fname s.name p.pair_id)
              pairs)
        a.slots)
    ans;
  List.iter
    (fun (p : Analysis.Dop.pair) ->
      List.iter
        (fun role ->
          let kind =
            match role with
            | Analysis.Funcan.Branch_feed ->
                Branch_flip (consts_of p.victim_func p.victim_slot)
            | Analysis.Funcan.Mem_addr -> Ptr_aim
            | Analysis.Funcan.Wild_data -> Wild_value
            | Analysis.Funcan.Call_arg -> Leak
            | Analysis.Funcan.Call_target -> Call_redirect
          in
          push kind p.victim_func p.victim_slot p.pair_id)
        p.victim_roles)
    pairs;
  List.map
    (fun (_, (kind, func, slot, ids)) -> mk kind func slot !ids)
    !acc
