let layout (applied : Defenses.Defense.applied) ~func ~buffer ~vars ~slots
    ~seed =
  match Apps.Dopkit.binary_offsets applied.prog ~func ~buffer ~vars with
  | Some l -> l
  | None -> Apps.Dopkit.guessed_offsets ~slots ~buffer ~vars ~fid_slot:true ~seed

let resolve_value (applied : Defenses.Defense.applied) = function
  | Chain.Const v -> v
  | Chain.Addr_of_global g -> (
      match List.assoc_opt g (Attacks.Layout.global_addrs applied.prog) with
      | Some a -> Int64.of_int a
      | None -> invalid_arg ("Offense.Payload: no global " ^ g))

let lower (applied : Defenses.Defense.applied) (chain : Chain.t) ~seed =
  let vars =
    List.sort_uniq compare
      (List.concat_map
         (fun (s : Chain.step) ->
           List.map (fun (w : Chain.write) -> w.target) s.writes)
         chain.steps)
  in
  let l =
    layout applied ~func:chain.func ~buffer:chain.buffer ~vars
      ~slots:chain.slots ~seed
  in
  let offset_of target =
    match List.assoc_opt target l with
    | Some o -> o
    | None ->
        (* the binary revealed the frame but not this slot — as
           impossible a geometry as a colliding guess *)
        invalid_arg ("Offense.Payload: no offset for slot " ^ target)
  in
  List.map
    (fun (s : Chain.step) ->
      Attacks.Overflow.craft ~len:1
        (List.map
           (fun (w : Chain.write) ->
             Attacks.Overflow.u64 ~label:w.target (offset_of w.target)
               (resolve_value applied w.value))
           s.writes))
    chain.steps
