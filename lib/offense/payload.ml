let layout (applied : Defenses.Defense.applied) ~func ~buffer ~vars ~slots
    ~seed =
  match Apps.Dopkit.binary_offsets applied.prog ~func ~buffer ~vars with
  | Some l -> l
  | None -> Apps.Dopkit.guessed_offsets ~slots ~buffer ~vars ~fid_slot:true ~seed

let resolve_value (applied : Defenses.Defense.applied) = function
  | Chain.Const v -> v
  | Chain.Addr_of_global g -> (
      match List.assoc_opt g (Attacks.Layout.global_addrs applied.prog) with
      | Some a -> Int64.of_int a
      | None -> invalid_arg ("Offense.Payload: no global " ^ g))

let written_vars (chain : Chain.t) =
  List.sort_uniq compare
    (List.concat_map
       (fun (s : Chain.step) ->
         List.map (fun (w : Chain.write) -> w.target) s.writes)
       chain.steps)

let lower_at (applied : Defenses.Defense.applied) (chain : Chain.t) ~layout:l =
  let offset_of target =
    match List.assoc_opt target l with
    | Some o -> o
    | None ->
        (* the binary revealed the frame but not this slot — as
           impossible a geometry as a colliding guess *)
        invalid_arg ("Offense.Payload: no offset for slot " ^ target)
  in
  List.map
    (fun (s : Chain.step) ->
      Attacks.Overflow.craft ~len:1
        (List.map
           (fun (w : Chain.write) ->
             Attacks.Overflow.u64 ~label:w.target (offset_of w.target)
               (resolve_value applied w.value))
           s.writes))
    chain.steps

let lower (applied : Defenses.Defense.applied) (chain : Chain.t) ~seed =
  let vars = written_vars chain in
  let l =
    layout applied ~func:chain.func ~buffer:chain.buffer ~vars
      ~slots:chain.slots ~seed
  in
  lower_at applied chain ~layout:l

let lower_pinned (applied : Defenses.Defense.applied) (chain : Chain.t)
    ~pinned ~seed =
  let vars = written_vars chain in
  let l =
    layout applied ~func:chain.func ~buffer:chain.buffer ~vars
      ~slots:chain.slots ~seed
  in
  (* disclosed offsets override the guess; slots the guess missed but
     the target disclosed are simply added *)
  let l =
    List.map
      (fun (v, o) ->
        match List.assoc_opt v pinned with Some p -> (v, p) | None -> (v, o))
      l
    @ List.filter (fun (v, _) -> not (List.mem_assoc v l)) pinned
  in
  lower_at applied chain ~layout:l
