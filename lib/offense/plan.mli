(** Chain planner — the compiler front-end: from static evidence (and a
    probing pass on the attacker's replica) to executable chains.

    Three composition strategies, tried per deliverable buffer in a
    fixed order so the chain set is deterministic:

    - {e direct-flip}: one message writing a mined compare constant
      into a branch-feeding victim of the same frame.  Goal:
      output-differs (the weak witness — see {!Chain.goal}).
    - {e aim-write}: one message that re-aims a pointer-feeding victim
      at a mined global flip target and plants the compared constant in
      a wild-value victim, pinning the other branch-feeding victims to
      keep the dispatcher alive.  Goal: the global's final value.
    - {e dispatch-loop}: the STEROIDS shape.  The planner {e probes}
      the attacker's own unhardened replica — deliver a selector
      constant with the frame's two pointer victims re-aimed at a pair
      of known-value globals, run, read the globals back, and infer the
      dispatcher operation from the value deltas (two applications
      disambiguate add/sub/mov/nop).  A learned [add] plus a unit
      global (init 1) and an accumulator global (init 0) compile the
      flip delta by double-and-add: one message per gadget invocation,
      ending with an add into the flip target.

    Probing always runs on the {e reference} engine — it is the
    attacker's offline analysis, and pinning it to the semantic oracle
    makes the synthesized chain set independent of the session's
    [--engine] choice by construction. *)

type model = {
  prog : Ir.Prog.t;
  funcans : Analysis.Funcan.t list;
  pairs : Analysis.Dop.pair list;
  gadgets : Gadget.t list;
  flips : (string * int64 * int64) list;
      (** mined (global, init, constant) flip targets *)
  probes_run : int;  (** replica executions spent learning dispatcher ops *)
  learned : Gadget.t list;  (** probed {!Gadget.Arith} gadgets *)
}

val synthesize :
  ?max_chains:int -> target:string -> Ir.Prog.t -> model * Chain.t list
(** [max_chains] (default 8) caps the emitted chain list.  Everything —
    analysis, mining, probing, planning — is deterministic: same
    program, same model, same chains, byte for byte. *)

(** {2 Leak-guided planning}

    The static leak analyzer ({!Analysis.Leakan}) finds
    address-disclosure flows — slot addresses reaching an output sink.
    A {!guide} packages each disclosing function's gadget for the
    guided executor: which slots the target prints (in frame
    declaration order, the order the disclosure preamble emits them)
    and how many collision-entropy bits that surrenders.  Pinning the
    revealed offsets shrinks Algorithm-1's guess space by [2^gbits]
    ({!Analysis.Report}'s degraded attempt count);
    {!Exec.run_chain_guided} measures it. *)

type guide = {
  gfunc : string;  (** the disclosing function *)
  disclosed : string list;
      (** slots whose addresses reach output, frame declaration order *)
  gbits : float;  (** {!Analysis.Leakan.leaked_bits_for} of [gfunc] *)
}

val leak_guides : Ir.Prog.t -> guide list
(** Deterministic (program order); analyzes the {e original} program,
    like {!synthesize}.  Empty for leak-free programs. *)

val guide_for : guide list -> Chain.t -> guide option
(** The guide usable by a chain: same frame, and the chain's buffer is
    among the disclosed slots (the executor needs the buffer address
    as the base all other disclosures are made relative to). *)
