type model = {
  prog : Ir.Prog.t;
  funcans : Analysis.Funcan.t list;
  pairs : Analysis.Dop.pair list;
  gadgets : Gadget.t list;
  flips : (string * int64 * int64) list;
  probes_run : int;
  learned : Gadget.t list;
}

(* ------------------------------------------------------------------ *)
(* Frame knowledge helpers *)

let slots_of (a : Analysis.Funcan.t) =
  List.map
    (fun (s : Analysis.Funcan.slot) ->
      (s.name, s.size, Ir.Ty.alignment s.ty))
    a.slots

let has_role role (p : Analysis.Dop.pair) = List.mem role p.victim_roles

(* Branch-feeding victims that keep the dispatcher loop alive must be
   pinned to 0 (the loop-counter trick of the hand-written corpus);
   slots already carrying a payload write are left alone. *)
let pins same_pairs ~written =
  List.filter_map
    (fun (p : Analysis.Dop.pair) ->
      if
        has_role Analysis.Funcan.Branch_feed p
        && not (List.mem p.victim_slot written)
      then
        Some { Chain.target = p.victim_slot; value = Chain.Const 0L }
      else None)
    same_pairs

(* dedup preserving first occurrence *)
let uniq l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

(* ------------------------------------------------------------------ *)
(* Semantic probing: learn what the dispatcher computes by running the
   attacker's own unhardened replica and reading two known-value
   globals back.  Two applications of the gadget disambiguate the op:
   with observed global A (init a) as the written operand and B (init
   b) as the source, add lands on a+2b, sub on a-2b, mov on b, and an
   op that never touches A leaves a. *)

let probe_predictions a b =
  [
    (`Add, Int64.add a (Int64.mul 2L b));
    (`Sub, Int64.sub a (Int64.mul 2L b));
    (`Mov, b);
    (`Nop, a);
  ]

let distinct_predictions a b =
  let vs = List.map snd (probe_predictions a b) in
  List.length (List.sort_uniq compare vs) = List.length vs

(* A writable 8-byte global with a known initial value, usable as a
   probe operand, accumulator or unit cell. *)
let scalar_globals (prog : Ir.Prog.t) =
  List.filter_map
    (fun (g : Ir.Prog.global) ->
      if g.gwritable && Ir.Ty.size g.gty = 8 then
        Option.map (fun v -> (g.gname, v)) (Gadget.global_init prog g.gname)
      else None)
    prog.globals

let probe_global_pair prog =
  let gs = scalar_globals prog in
  List.find_map
    (fun (ga, a) ->
      List.find_map
        (fun (gb, b) ->
          if ga <> gb && distinct_predictions a b then Some ((ga, a), (gb, b))
          else None)
        gs)
    gs

type probe_ctx = {
  replica : Defenses.Defense.applied;
  target : string;
  func : string;
  buffer : string;
  frame_slots : (string * int * int) list;
  same_pairs : Analysis.Dop.pair list;
  p1 : string;  (** first pointer-feeding victim slot *)
  p2 : string;
  mutable runs : int;
}

(* One probe execution: deliver [sel = k] twice with the pointer slots
   re-aimed at the chosen globals, return their final values.  Always
   on the reference engine — probing is the attacker's offline
   analysis, and pinning it to the oracle keeps the synthesized chain
   set independent of the session's --engine choice. *)
let probe_run ctx ~sel ~k ~aim1 ~aim2 ~observe =
  let writes =
    [
      { Chain.target = ctx.p1; value = Chain.Addr_of_global aim1 };
      { Chain.target = ctx.p2; value = Chain.Addr_of_global aim2 };
      { Chain.target = sel; value = Chain.Const k };
    ]
  in
  let written = [ ctx.p1; ctx.p2; sel ] in
  let step = { Chain.writes = writes @ pins ctx.same_pairs ~written } in
  let chain =
    Chain.make ~family:Chain.Dispatch_loop ~target:ctx.target ~func:ctx.func
      ~buffer:ctx.buffer ~slots:ctx.frame_slots ~steps:[ step; step ]
      ~goal:Chain.Output_differs ~pair_ids:[] ~note:"probe"
  in
  match Payload.lower ctx.replica chain ~seed:0L with
  | exception Invalid_argument _ -> None
  | chunks -> (
      ctx.runs <- ctx.runs + 1;
      match
        Exec.run_chunks_probed ~backend:Machine.Backend.reference ctx.replica
          ~seed:11L ~chunks ~globals:[ observe ]
      with
      | exception Invalid_argument _ -> None
      | _, _, finals -> List.assoc_opt observe finals)

(* Classify one (selector, constant) pair into an Arith gadget, or
   nothing if the deltas match no model. *)
let probe_selector ctx ~sel ~k ((ga, a), (gb, b)) =
  let classify observed ~dst_first =
    List.find_map
      (fun (tag, v) ->
        if observed = v then
          match tag with
          | `Add -> Some (Gadget.Add, dst_first)
          | `Sub -> Some (Gadget.Sub, dst_first)
          | `Mov -> Some (Gadget.Mov, dst_first)
          | `Nop -> None
        else None)
      (probe_predictions a b)
  in
  (* orientation X: p1 observed (aimed at ga), p2 sources gb *)
  match probe_run ctx ~sel ~k ~aim1:ga ~aim2:gb ~observe:ga with
  | None -> None
  | Some final -> (
      match classify final ~dst_first:true with
      | Some (aop, dst_first) -> Some (aop, dst_first)
      | None ->
          if final <> a then None
          else
            (* p1 untouched: try the mirrored orientation, p2 observed *)
            Option.bind
              (probe_run ctx ~sel ~k ~aim1:gb ~aim2:ga ~observe:ga)
              (fun final -> classify final ~dst_first:false))

(* ------------------------------------------------------------------ *)
(* Double-and-add compilation of a flip delta from a learned add
   gadget: acc starts at 0, unit holds 1; MSB-first doubling builds the
   delta in acc, a final add lands it on the flip target. *)

let bits_of delta =
  let n = Int64.to_int delta in
  let nbits =
    let rec go b = if n lsr b = 0 then b else go (b + 1) in
    go 0
  in
  List.init nbits (fun i -> (n lsr (nbits - 1 - i)) land 1)

let dispatch_step ctx ~sel ~k ~dst_first ~dst ~src =
  let aim1, aim2 = if dst_first then (dst, src) else (src, dst) in
  let writes =
    [
      { Chain.target = ctx.p1; value = Chain.Addr_of_global aim1 };
      { Chain.target = ctx.p2; value = Chain.Addr_of_global aim2 };
      { Chain.target = sel; value = Chain.Const k };
    ]
  in
  let written = [ ctx.p1; ctx.p2; sel ] in
  { Chain.writes = writes @ pins ctx.same_pairs ~written }

(* ------------------------------------------------------------------ *)
(* Leak-guided planning: turn the static leak analysis into disclosure
   gadgets the executor can consume. *)

type guide = { gfunc : string; disclosed : string list; gbits : float }

let leak_guides prog =
  let lk = Analysis.Leakan.analyze prog in
  (* slots whose addresses reach an output sink, per owning function *)
  let disclosed_by : (string, string list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (l : Analysis.Leakan.leak) ->
      match (l.source, l.channel, l.sink) with
      | ( Analysis.Leakan.Slot_addr s,
          Analysis.Leakan.Address_disclosure,
          Analysis.Leakan.Output _ ) ->
          let cell =
            match Hashtbl.find_opt disclosed_by l.source_func with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace disclosed_by l.source_func c;
                c
          in
          if not (List.mem s !cell) then cell := s :: !cell
      | _ -> ())
    lk.leaks;
  (* one guide per disclosing function, slots in frame declaration
     order — the order the disclosure preamble prints them (the
     {!Exec.run_chain_guided} convention) *)
  List.filter_map
    (fun (f : Ir.Func.t) ->
      match Hashtbl.find_opt disclosed_by f.name with
      | None -> None
      | Some cell ->
          let decl_order =
            match f.blocks with
            | [] -> []
            | entry :: _ ->
                List.filter_map
                  (function
                    | Ir.Instr.Alloca { count = None; name; _ } -> Some name
                    | _ -> None)
                  entry.instrs
          in
          let disclosed =
            List.filter (fun n -> List.mem n !cell) decl_order
          in
          if disclosed = [] then None
          else
            Some
              {
                gfunc = f.name;
                disclosed;
                gbits = Analysis.Leakan.leaked_bits_for lk [ f.name ];
              })
    prog.funcs

let guide_for guides (chain : Chain.t) =
  List.find_opt
    (fun g -> g.gfunc = chain.func && List.mem chain.buffer g.disclosed)
    guides

(* ------------------------------------------------------------------ *)

let synthesize ?(max_chains = 8) ~target prog =
  let funcans = Analysis.Funcan.analyze prog in
  let pairs = Analysis.Dop.enumerate prog funcans in
  let gadgets = Gadget.harvest prog funcans pairs in
  let flips = Gadget.mined_global_flips prog in
  let an_of = Hashtbl.create 8 in
  List.iter
    (fun (a : Analysis.Funcan.t) -> Hashtbl.replace an_of a.fname a)
    funcans;
  let consts_of =
    let cache = Hashtbl.create 8 in
    fun fname ->
      match Hashtbl.find_opt cache fname with
      | Some t -> t
      | None ->
          let t =
            match Ir.Prog.find_func prog fname with
            | Some f -> Gadget.mined_slot_consts f
            | None -> []
          in
          Hashtbl.replace cache fname t;
          t
  in
  (* the attacker's replica: an unhardened build of the same program,
     used only for offline probing *)
  let replica = lazy (Defenses.Defense.apply ~seed:3L Defenses.Defense.No_defense prog) in
  let probes_run = ref 0 in
  let learned = ref [] in
  let chains = ref [] in
  let emit c = if List.length !chains < max_chains then chains := !chains @ [ c ] in
  let deliverables =
    List.filter_map
      (fun (g : Gadget.t) ->
        if g.kind = Gadget.Deliver then Some (g.func, g.slot) else None)
      gadgets
  in
  List.iter
    (fun (func, buffer) ->
      let an = Hashtbl.find an_of func in
      let frame_slots = slots_of an in
      let same_pairs =
        List.filter
          (fun (p : Analysis.Dop.pair) ->
            p.kind = Analysis.Dop.Same_frame
            && p.buf_func = func && p.buf_slot = buffer)
          pairs
      in
      let slot_consts = consts_of func in
      (* ---- family 1: direct-flip ---- *)
      List.iter
        (fun (p : Analysis.Dop.pair) ->
          if has_role Analysis.Funcan.Branch_feed p then
            List.iter
              (fun c ->
                emit
                  (Chain.make ~family:Chain.Direct_flip ~target ~func ~buffer
                     ~slots:frame_slots
                     ~steps:
                       [
                         {
                           Chain.writes =
                             [
                               {
                                 Chain.target = p.victim_slot;
                                 value = Chain.Const c;
                               };
                             ];
                         };
                       ]
                     ~goal:Chain.Output_differs ~pair_ids:[ p.pair_id ]
                     ~note:
                       (Printf.sprintf "flip branch on %s with mined %Ld"
                          p.victim_slot c)))
              (Option.value ~default:[]
                 (List.assoc_opt p.victim_slot slot_consts)))
        same_pairs;
      (* ---- family 2: aim-then-write ---- *)
      (match
         ( List.find_opt (has_role Analysis.Funcan.Mem_addr) same_pairs,
           List.find_opt (has_role Analysis.Funcan.Wild_data) same_pairs,
           flips )
       with
      | Some pp, Some pd, (g, _init, c) :: _ when pp.victim_slot <> pd.victim_slot
        ->
          let writes =
            [
              { Chain.target = pp.victim_slot;
                value = Chain.Addr_of_global g };
              { Chain.target = pd.victim_slot; value = Chain.Const c };
            ]
          in
          let written = [ pp.victim_slot; pd.victim_slot ] in
          emit
            (Chain.make ~family:Chain.Aim_write ~target ~func ~buffer
               ~slots:frame_slots
               ~steps:[ { Chain.writes = writes @ pins same_pairs ~written } ]
               ~goal:(Chain.Flip_global (g, c))
               ~pair_ids:[ pp.pair_id; pd.pair_id ]
               ~note:
                 (Printf.sprintf "aim %s at %s, plant %Ld via %s"
                    pp.victim_slot g c pd.victim_slot))
      | _ -> ());
      (* ---- family 3: dispatch-loop ---- *)
      let ptrs =
        uniq
          (List.filter_map
             (fun (p : Analysis.Dop.pair) ->
               if has_role Analysis.Funcan.Mem_addr p then
                 Some (p.victim_slot, p.pair_id)
               else None)
             same_pairs)
      in
      let selectors =
        List.filter_map
          (fun (p : Analysis.Dop.pair) ->
            if has_role Analysis.Funcan.Branch_feed p then
              match List.assoc_opt p.victim_slot slot_consts with
              | Some cs when cs <> [] -> Some (p.victim_slot, cs, p.pair_id)
              | _ -> None
            else None)
          same_pairs
      in
      match (ptrs, probe_global_pair prog) with
      | (p1, pid1) :: (p2, pid2) :: _, Some probe_pair
        when selectors <> [] ->
          let ctx =
            {
              replica = Lazy.force replica;
              target;
              func;
              buffer;
              frame_slots;
              same_pairs;
              p1;
              p2;
              runs = 0;
            }
          in
          let arsenal =
            List.concat_map
              (fun (sel, cs, spid) ->
                if sel = p1 || sel = p2 then []
                else
                  List.filter_map
                    (fun k ->
                      match probe_selector ctx ~sel ~k probe_pair with
                      | Some (aop, dst_first) ->
                          Some (sel, k, aop, dst_first, spid)
                      | None -> None)
                    cs)
              selectors
          in
          probes_run := !probes_run + ctx.runs;
          learned :=
            !learned
            @ List.map
                (fun (sel, k, aop, dst_first, spid) ->
                  Gadget.v
                    (Gadget.Arith
                       { aop; sel_slot = sel; sel_value = k; dst_first })
                    ~func ~slot:sel ~pair_ids:[ spid ])
                arsenal;
          (* compile the first flip with the first learned add, a unit
             cell and an accumulator cell *)
          let cells = scalar_globals prog in
          let adds =
            List.filter (fun (_, _, aop, _, _) -> aop = Gadget.Add) arsenal
          in
          (match adds with
          | (sel, k, _, dst_first, spid) :: _ ->
              let pick p = List.find_opt p cells in
              let unit_cell = pick (fun (_, v) -> v = 1L) in
              (match
                 List.find_map
                   (fun (g, init, c) ->
                     let delta = Int64.sub c init in
                     if Int64.compare delta 0L > 0
                        && Int64.compare delta 0x4000_0000L < 0
                     then
                       Option.bind unit_cell (fun (u, _) ->
                           Option.map
                             (fun (acc, _) -> (g, c, delta, u, acc))
                             (pick (fun (cell, v) ->
                                  v = 0L && cell <> u && cell <> g)))
                     else None)
                   flips
               with
              | Some (g, c, delta, unit, acc) ->
                  let add ~dst ~src =
                    dispatch_step ctx ~sel ~k ~dst_first ~dst ~src
                  in
                  let steps =
                    List.concat_map
                      (fun bit ->
                        (add ~dst:acc ~src:acc)
                        :: (if bit = 1 then [ add ~dst:acc ~src:unit ] else []))
                      (bits_of delta)
                    @ [ add ~dst:g ~src:acc ]
                  in
                  emit
                    (Chain.make ~family:Chain.Dispatch_loop ~target ~func
                       ~buffer ~slots:frame_slots ~steps
                       ~goal:(Chain.Flip_global (g, c))
                       ~pair_ids:(uniq [ pid1; pid2; spid ])
                       ~note:
                         (Printf.sprintf
                            "probed add (%s=%Ld); %Ld into %s by \
                             double-and-add over %s/%s"
                            sel k delta g acc unit))
              | None -> ())
          | [] -> ())
      | _ -> ())
    deliverables;
  ( {
      prog;
      funcans;
      pairs;
      gadgets;
      flips;
      probes_run = !probes_run;
      learned = !learned;
    },
    !chains )
