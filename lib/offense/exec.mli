(** Chain executor — step 4 of the attack compiler: run a synthesized
    chain against one defense-applied build and judge it.

    Unlike {!Apps.Runner} this runner keeps the final machine state, so
    a {!Chain.Flip_global} goal is judged from the global's actual
    in-memory value after the run — the semantic witness — rather than
    from program output.  Everything reported is derived from the
    outcome, the output and final memory, all of which the engine
    contract keeps bit-identical across backends. *)

val run_chunks_probed :
  ?backend:Machine.Backend.t ->
  ?fuel:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  chunks:string list ->
  globals:string list ->
  Machine.Exec.outcome * Machine.Exec.stats * (string * int64) list
(** One service process: fresh state from [seed]-derived entropy, each
    [read_input] consumes the next chunk (truncated to the callee's
    limit, empty once exhausted), then the named globals' final 8-byte
    values are read back from memory. *)

val run_chain :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  seed:int64 ->
  Attacks.Verdict.t
(** Lower, deliver, judge.  An impossible layout guess wastes the
    attempt ({!Attacks.Verdict.No_effect}); a defense check firing is
    {!Attacks.Verdict.Detected}; {!Chain.Output_differs} runs the
    benign length-matched baseline under the same seed. *)

val run_chain_guided :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  disclosed:string list ->
  seed:int64 ->
  Attacks.Verdict.t
(** Disclosure-guided delivery against a target that {e prints} slot
    addresses (the {!Analysis.Leakan} address-disclosure channel, cf.
    {!Plan.leak_guides}).  Convention: the target emits one integer
    line per slot of [disclosed], in that order, before its first
    read.  The attacker adapts within the session — per-invocation
    randomization makes stale addresses worthless — parsing the lines
    from live output, pinning each disclosed slot's buffer-relative
    offset (address differences are base-invariant) and guessing only
    the rest ({!Payload.lower_pinned}).  [disclosed] must contain
    [chain.buffer]; judging is exactly {!run_chain}'s.  A target that
    never discloses, or a combined layout that is geometrically
    impossible, wastes the attempt. *)

val brute_guided :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  disclosed:string list ->
  budget:int ->
  seed0:int ->
  Attacks.Verdict.t list
(** {!brute} with {!run_chain_guided} sessions: the expected length is
    the {!Analysis.Report} leak-degraded attempt count rather than the
    blind Algorithm-1 one. *)

val trials :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  n:int ->
  seed0:int ->
  Attacks.Verdict.t list
(** [n] independent attempts with seeds [seed0 + 1000*i] (the
    {!Harness.Security.trials} convention), in trial order. *)

val brute :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  budget:int ->
  seed0:int ->
  Attacks.Verdict.t list
(** Restart-after-crash brute force: attempts with seeds [seed0 + i]
    until the first success or the budget is spent.  Returns every
    attempt's verdict (the list length is the attempts consumed);
    [attempts-to-success] is the index of the first
    {!Attacks.Verdict.Success} plus one. *)
