(** Chain executor — step 4 of the attack compiler: run a synthesized
    chain against one defense-applied build and judge it.

    Unlike {!Apps.Runner} this runner keeps the final machine state, so
    a {!Chain.Flip_global} goal is judged from the global's actual
    in-memory value after the run — the semantic witness — rather than
    from program output.  Everything reported is derived from the
    outcome, the output and final memory, all of which the engine
    contract keeps bit-identical across backends. *)

val run_chunks_probed :
  ?backend:Machine.Backend.t ->
  ?fuel:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  chunks:string list ->
  globals:string list ->
  Machine.Exec.outcome * Machine.Exec.stats * (string * int64) list
(** One service process: fresh state from [seed]-derived entropy, each
    [read_input] consumes the next chunk (truncated to the callee's
    limit, empty once exhausted), then the named globals' final 8-byte
    values are read back from memory. *)

val run_chain :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  seed:int64 ->
  Attacks.Verdict.t
(** Lower, deliver, judge.  An impossible layout guess wastes the
    attempt ({!Attacks.Verdict.No_effect}); a defense check firing is
    {!Attacks.Verdict.Detected}; {!Chain.Output_differs} runs the
    benign length-matched baseline under the same seed. *)

val trials :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  n:int ->
  seed0:int ->
  Attacks.Verdict.t list
(** [n] independent attempts with seeds [seed0 + 1000*i] (the
    {!Harness.Security.trials} convention), in trial order. *)

val brute :
  ?backend:Machine.Backend.t ->
  Defenses.Defense.applied ->
  Chain.t ->
  budget:int ->
  seed0:int ->
  Attacks.Verdict.t list
(** Restart-after-crash brute force: attempts with seeds [seed0 + i]
    until the first success or the budget is spent.  Returns every
    attempt's verdict (the list length is the attempts consumed);
    [attempts-to-success] is the index of the first
    {!Attacks.Verdict.Success} plus one. *)
