(** Chain IR — step 2 of the attack compiler.

    A chain is a small data-oriented program: an ordered list of
    {e deliver steps}, each one network message answering one
    [read_input] call, each carrying precise slot writes for the
    vulnerable frame.  Values are either immediates or addresses of
    globals (resolved at lowering time against the actual build, though
    no evaluated defense moves globals).

    Chains are content-addressed: {!make} digests the family, target,
    frame, steps and goal into [chain_id], which store keys, reports
    and crossval feedback reference.  Two planner runs that synthesize
    the same program get the same id. *)

type value =
  | Const of int64
  | Addr_of_global of string  (** resolved via {!Attacks.Layout.global_addrs} *)

type write = { target : string;  (** slot name in the vulnerable frame *)
               value : value }

type step = { writes : write list }
(** One delivered message: filler up to the buffer, then the writes at
    the (build-dependent) slot offsets. *)

type goal =
  | Flip_global of string * int64
      (** success iff the global's final in-memory value equals the
          constant — the semantic witness (e.g. [auth = 0x1337]) *)
  | Output_contains of string
  | Output_differs
      (** success iff the run's output differs from a benign baseline
          fed the same number of same-length filler messages — the weak
          generic witness for chains flipping frame-local state;
          chains with this goal are excluded from the entropy
          measurement because payload bytes vary with the layout
          guess *)

type family = Direct_flip | Aim_write | Dispatch_loop

type t = {
  chain_id : string;
  family : family;
  target : string;  (** program/workload name *)
  func : string;  (** function owning the vulnerable frame *)
  buffer : string;  (** the deliverable buffer slot *)
  slots : (string * int * int) list;
      (** the attacker's source-level knowledge of the frame:
          [(name, size, alignment)] in declaration order — the multiset
          {!Apps.Dopkit.guessed_offsets} permutes when the binary hides
          the layout *)
  steps : step list;
  goal : goal;
  pair_ids : string list;
      (** the static {!Analysis.Dop} pairs the chain rests on *)
  note : string;  (** one-line human rationale *)
}

val value_to_string : value -> string
val goal_to_string : goal -> string
val family_to_string : family -> string

val make :
  family:family ->
  target:string ->
  func:string ->
  buffer:string ->
  slots:(string * int * int) list ->
  steps:step list ->
  goal:goal ->
  pair_ids:string list ->
  note:string ->
  t
(** Computes [chain_id] from the content (target, family, frame, steps,
    goal — not the note). *)

val describe : t -> string
(** e.g. ["aim-write #3f2a... serve:buff 1 step(s) -> flip auth=4919"]. *)
