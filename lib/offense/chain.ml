type value = Const of int64 | Addr_of_global of string

type write = { target : string; value : value }
type step = { writes : write list }

type goal =
  | Flip_global of string * int64
  | Output_contains of string
  | Output_differs

type family = Direct_flip | Aim_write | Dispatch_loop

type t = {
  chain_id : string;
  family : family;
  target : string;
  func : string;
  buffer : string;
  slots : (string * int * int) list;
  steps : step list;
  goal : goal;
  pair_ids : string list;
  note : string;
}

let value_to_string = function
  | Const v -> Int64.to_string v
  | Addr_of_global g -> "&" ^ g

let goal_to_string = function
  | Flip_global (g, c) -> Printf.sprintf "flip %s=%Ld" g c
  | Output_contains m -> Printf.sprintf "output has %S" m
  | Output_differs -> "output differs"

let family_to_string = function
  | Direct_flip -> "direct-flip"
  | Aim_write -> "aim-write"
  | Dispatch_loop -> "dispatch-loop"

let digest_fields fields =
  let b = Buffer.create 128 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    fields;
  String.sub (Digest.to_hex (Digest.string (Buffer.contents b))) 0 12

let make ~family ~target ~func ~buffer ~slots ~steps ~goal ~pair_ids ~note =
  let step_field { writes } =
    String.concat ","
      (List.map
         (fun (w : write) -> w.target ^ "=" ^ value_to_string w.value)
         writes)
  in
  let chain_id =
    digest_fields
      ([ family_to_string family; target; func; buffer; goal_to_string goal ]
      @ List.map
          (fun (n, s, a) -> Printf.sprintf "%s/%d/%d" n s a)
          slots
      @ List.map step_field steps)
  in
  { chain_id; family; target; func; buffer; slots; steps; goal; pair_ids;
    note }

let describe t =
  Printf.sprintf "%s #%s %s:%s %d step(s) -> %s"
    (family_to_string t.family)
    t.chain_id t.func t.buffer (List.length t.steps)
    (goal_to_string t.goal)
