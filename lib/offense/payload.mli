(** Payload compiler — step 3 of the attack compiler: lower a chain
    onto concrete byte strings against one defense-applied build.

    Offsets come from the same two-tier attacker model the hand-written
    corpus uses ({!Apps.Dopkit}): static analysis of the applied binary
    when it reveals the frame ({!Apps.Dopkit.binary_offsets} — exact
    against every static defense), else a seed-driven Algorithm-1 guess
    over the chain's slot multiset (blind against Smokestack, right
    with probability ~1/n!).  One guess per session: the frame is laid
    out once per invocation, and a chain runs inside one invocation.

    A guess can be geometrically impossible — victim at or below the
    buffer, colliding writes.  {!lower} then raises the
    [Invalid_argument] from {!Attacks.Overflow.craft} (which names the
    colliding slots); callers treat it as a wasted attempt. *)

val layout :
  Defenses.Defense.applied ->
  func:string ->
  buffer:string ->
  vars:string list ->
  slots:(string * int * int) list ->
  seed:int64 ->
  (string * int) list
(** Buffer-relative offsets for [vars], exact or guessed. *)

val lower :
  Defenses.Defense.applied -> Chain.t -> seed:int64 -> string list
(** One byte string per chain step.  Raises [Invalid_argument] when the
    layout (under this build and seed) cannot host the writes. *)

val lower_pinned :
  Defenses.Defense.applied ->
  Chain.t ->
  pinned:(string * int) list ->
  seed:int64 ->
  string list
(** {!lower}, but [pinned] buffer-relative offsets — observed from a
    live disclosure, see {!Exec.run_chain_guided} — override the
    corresponding entries of the derived layout; only the slots the
    target did not disclose keep their Algorithm-1 guess.  Raises
    [Invalid_argument] exactly as {!lower} does when the combined
    layout is geometrically impossible. *)
