(** A unit of experiment work.

    A job is a pure thunk plus the two pieces of metadata the scheduler
    needs to make parallel execution reproducible: a {e stable id}
    (results are merged by submission order, and errors are attributed
    by id, never by completion order) and an {e explicit seed}, so that
    everything random the job does is derived from values fixed at
    submission time rather than from shared, order-sensitive state.

    Jobs must be self-contained: they may not touch module-level
    mutable state (beyond the domain-safe caches documented in
    [lib/engine] and [lib/harness]) and must not submit further jobs to
    the pool that is running them. *)

type 'a t = private { id : string; seed : int64; run : unit -> 'a }

type 'a outcome = Ok of 'a | Timed_out | Failed of exn
(** How one supervised job ended (see {!Pool.run_all_outcomes}):
    normal result, wall-clock timeout, or an exception after all
    retries were spent. *)

val v : id:string -> ?seed:int64 -> (unit -> 'a) -> 'a t
(** [v ~id f] is a job with an explicitly chosen seed (default [0L] for
    jobs whose thunk owns its seeding, e.g. the paper experiments with
    historical per-cell seed formulas). *)

val seeded : root:int64 -> id:string -> (seed:int64 -> 'a) -> 'a t
(** [seeded ~root ~id f] derives the job's seed from [(root, id)] via
    {!Sutil.Simrng.split_seed}, so every job owns an independent
    deterministic stream no matter how the pool interleaves them. *)

val id : _ t -> string
val seed : _ t -> int64

val run : 'a t -> 'a
(** Run the thunk in the calling domain. *)
