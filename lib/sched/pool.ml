type counters = {
  c_jobs_run : int Atomic.t;
  c_retries : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_peak_queue : int Atomic.t;
}

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
  mutable active : int list;
      (* ids of domains currently executing a task of this pool, for
         nested-submission detection; guarded by [mutex] *)
  counters : counters;
}

type stats = {
  jobs_run : int;
  retries : int;
  timeouts : int;
  peak_queue : int;
}

let fresh_counters () =
  {
    c_jobs_run = Atomic.make 0;
    c_retries = Atomic.make 0;
    c_timeouts = Atomic.make 0;
    c_peak_queue = Atomic.make 0;
  }

let bump c n = ignore (Atomic.fetch_and_add c n)

let rec raise_peak c depth =
  let cur = Atomic.get c in
  if depth > cur && not (Atomic.compare_and_set c cur depth) then
    raise_peak c depth

let stats t =
  {
    jobs_run = Atomic.get t.counters.c_jobs_run;
    retries = Atomic.get t.counters.c_retries;
    timeouts = Atomic.get t.counters.c_timeouts;
    peak_queue = Atomic.get t.counters.c_peak_queue;
  }

let stats_to_json s =
  Sutil.Json.Obj
    [
      ("jobs_run", Sutil.Json.Int s.jobs_run);
      ("retries", Sutil.Json.Int s.retries);
      ("timeouts", Sutil.Json.Int s.timeouts);
      ("peak_queue", Sutil.Json.Int s.peak_queue);
    ]

let max_jobs = 128

let clamp jobs = max 1 (min max_jobs jobs)

let self_id () = (Domain.self () :> int)

(* Run one queued task with the executing domain registered as busy, so
   a job that tries to drive its own pool gets a clear error instead of
   a deadlock. *)
let run_task t task =
  let id = self_id () in
  Mutex.lock t.mutex;
  t.active <- id :: t.active;
  Mutex.unlock t.mutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.mutex;
      t.active <-
        (let rec drop = function
           | [] -> []
           | x :: rest -> if x = id then rest else x :: drop rest
         in
         drop t.active);
      Mutex.unlock t.mutex)
    task

let check_not_nested t fn =
  let id = self_id () in
  Mutex.lock t.mutex;
  let nested = List.mem id t.active in
  Mutex.unlock t.mutex;
  if nested then
    failwith
      (fn
     ^ ": a job submitted a batch to the pool that is running it (the \
        queue has no nesting support; this would deadlock).  Use \
        Pool.sequential, or a separate pool, for nested experiments.")

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.work_ready t.mutex;
            next ()
          end
    in
    let task = next () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        run_task t task;
        loop ()
  in
  loop ()

let create ?jobs () =
  let size =
    clamp (match jobs with Some n -> n | None -> Domain.recommended_domain_count ())
  in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      workers = [];
      closed = false;
      active = [];
      counters = fresh_counters ();
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let jobs t = t.size

let sequential =
  {
    size = 1;
    queue = Queue.create ();
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    batch_done = Condition.create ();
    workers = [];
    closed = false;
    active = [];
    counters = fresh_counters ();
  }

let run_all (type a) t (batch : a Job.t list) : a list =
  match (t.workers, batch) with
  | [], _ | _, ([] | [ _ ]) ->
      (* the exact sequential path: in submission order, exceptions
         propagate eagerly from the failing job *)
      List.map
        (fun job ->
          let r = Job.run job in
          bump t.counters.c_jobs_run 1;
          r)
        batch
  | _ :: _, _ ->
      check_not_nested t "Sched.Pool.run_all";
      let arr = Array.of_list batch in
      let n = Array.length arr in
      let slots :
          (a, exn * Printexc.raw_backtrace) result option array =
        Array.make n None
      in
      let remaining = Atomic.make n in
      let task i () =
        let r =
          match Job.run arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        bump t.counters.c_jobs_run 1;
        slots.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (task i) t.queue
      done;
      raise_peak t.counters.c_peak_queue (Queue.length t.queue);
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* the submitting domain participates until the batch drains *)
      let rec help () =
        if Atomic.get remaining > 0 then begin
          Mutex.lock t.mutex;
          let task = Queue.take_opt t.queue in
          (match task with
          | Some _ -> Mutex.unlock t.mutex
          | None ->
              if Atomic.get remaining > 0 then
                Condition.wait t.batch_done t.mutex;
              Mutex.unlock t.mutex);
          (match task with Some task -> run_task t task | None -> ());
          help ()
        end
      in
      help ();
      (* merge by submission order; the first failure in that order
         wins, regardless of which domain hit it first *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        slots;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           slots)

(* ------------------------------------------------------------------ *)
(* Supervised execution: per-job wall-clock timeout and bounded retry.

   Each attempt runs in its own spawned domain (never on the pool's
   queue workers), because OCaml domains cannot be interrupted: a
   timed-out job is *abandoned* — its domain keeps running, its
   eventual result is discarded — and the batch continues on fresh
   domains.  At most [t.size] supervised domains run at once, so a
   hung job occupies one window slot until its timeout, never the
   whole pool. *)

type 'a exec_result = Done of 'a | Raised of exn

type 'a running = {
  r_idx : int;
  r_attempt : int;  (* 0 = first execution *)
  r_started : float;
  r_cell : 'a exec_result option Atomic.t;
  r_domain : unit Domain.t;
}

(* Exponential backoff with deterministic jitter derived from the
   job's seed, so a retried experiment replays the same delays. *)
let backoff_delay ~backoff ~seed ~attempt =
  if backoff <= 0. then 0.
  else
    let rng =
      Sutil.Simrng.create ~seed:(Int64.add seed (Int64.of_int (0x9e37 * attempt)))
    in
    let jitter = 0.5 +. (float_of_int (Sutil.Simrng.int rng ~bound:1024) /. 1024.) in
    backoff *. float_of_int (1 lsl min 16 (attempt - 1)) *. jitter

let run_all_outcomes (type a) ?timeout ?(retries = 0) ?(backoff = 0.01) t
    (batch : a Job.t list) : a Job.outcome list =
  (match timeout with
  | Some s when s <= 0. ->
      invalid_arg "Sched.Pool.run_all_outcomes: timeout must be positive"
  | _ -> ());
  if retries < 0 then
    invalid_arg "Sched.Pool.run_all_outcomes: retries must be >= 0";
  check_not_nested t "Sched.Pool.run_all_outcomes";
  let arr = Array.of_list batch in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out : a Job.outcome option array = Array.make n None in
    let width = t.size in
    let pending = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i pending
    done;
    (* (ready_at, idx, attempt), unordered — batches are small *)
    let retryq : (float * int * int) list ref = ref [] in
    let running : a running list ref = ref [] in
    let completed = ref 0 in
    let spawn idx attempt =
      let cell = Atomic.make None in
      let job = arr.(idx) in
      let counters = t.counters in
      let domain =
        Domain.spawn (fun () ->
            let r =
              match Job.run job with v -> Done v | exception e -> Raised e
            in
            bump counters.c_jobs_run 1;
            Atomic.set cell (Some r))
      in
      running :=
        {
          r_idx = idx;
          r_attempt = attempt;
          r_started = Unix.gettimeofday ();
          r_cell = cell;
          r_domain = domain;
        }
        :: !running
    in
    let take_ready_retry now =
      let rec go acc = function
        | [] -> None
        | ((at, idx, attempt) as e) :: rest ->
            if at <= now then begin
              retryq := List.rev_append acc rest;
              Some (idx, attempt)
            end
            else go (e :: acc) rest
      in
      go [] !retryq
    in
    let try_start () =
      let continue = ref true in
      while !continue && List.length !running < width do
        let now = Unix.gettimeofday () in
        match take_ready_retry now with
        | Some (idx, attempt) -> spawn idx attempt
        | None ->
            if Queue.is_empty pending then continue := false
            else spawn (Queue.pop pending) 0
      done
    in
    let poll () =
      let progressed = ref false in
      let now = Unix.gettimeofday () in
      running :=
        List.filter
          (fun r ->
            match Atomic.get r.r_cell with
            | Some (Done v) ->
                Domain.join r.r_domain;
                out.(r.r_idx) <- Some (Job.Ok v);
                incr completed;
                progressed := true;
                false
            | Some (Raised e) ->
                Domain.join r.r_domain;
                if r.r_attempt < retries then begin
                  bump t.counters.c_retries 1;
                  retryq :=
                    ( now
                      +. backoff_delay ~backoff ~seed:(Job.seed arr.(r.r_idx))
                           ~attempt:(r.r_attempt + 1),
                      r.r_idx,
                      r.r_attempt + 1 )
                    :: !retryq
                end
                else begin
                  out.(r.r_idx) <- Some (Job.Failed e);
                  incr completed
                end;
                progressed := true;
                false
            | None -> (
                match timeout with
                | Some s when now -. r.r_started > s ->
                    (* abandon the domain: it cannot be interrupted;
                       its slot is reclaimed and its eventual write to
                       its private cell is discarded *)
                    bump t.counters.c_timeouts 1;
                    out.(r.r_idx) <- Some Job.Timed_out;
                    incr completed;
                    progressed := true;
                    false
                | _ -> true))
          !running;
      !progressed
    in
    while !completed < n do
      raise_peak t.counters.c_peak_queue
        (Queue.length pending + List.length !retryq);
      try_start ();
      let progressed = poll () in
      if (not progressed) && !completed < n then Unix.sleepf 0.0005
    done;
    Array.to_list (Array.map Option.get out)
  end

let close t =
  let workers =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work_ready;
    let w = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    w
  in
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
