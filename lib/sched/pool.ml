type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let max_jobs = 128

let clamp jobs = max 1 (min max_jobs jobs)

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.work_ready t.mutex;
            next ()
          end
    in
    let task = next () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        task ();
        loop ()
  in
  loop ()

let create ?jobs () =
  let size =
    clamp (match jobs with Some n -> n | None -> Domain.recommended_domain_count ())
  in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let jobs t = t.size

let sequential =
  {
    size = 1;
    queue = Queue.create ();
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    batch_done = Condition.create ();
    workers = [];
    closed = false;
  }

let run_all (type a) t (batch : a Job.t list) : a list =
  match (t.workers, batch) with
  | [], _ | _, ([] | [ _ ]) ->
      (* the exact sequential path: in submission order, exceptions
         propagate eagerly from the failing job *)
      List.map Job.run batch
  | _ :: _, _ ->
      let arr = Array.of_list batch in
      let n = Array.length arr in
      let slots :
          (a, exn * Printexc.raw_backtrace) result option array =
        Array.make n None
      in
      let remaining = Atomic.make n in
      let task i () =
        let r =
          match Job.run arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        slots.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (task i) t.queue
      done;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* the submitting domain participates until the batch drains *)
      let rec help () =
        if Atomic.get remaining > 0 then begin
          Mutex.lock t.mutex;
          let task = Queue.take_opt t.queue in
          (match task with
          | Some _ -> Mutex.unlock t.mutex
          | None ->
              if Atomic.get remaining > 0 then
                Condition.wait t.batch_done t.mutex;
              Mutex.unlock t.mutex);
          (match task with Some task -> task () | None -> ());
          help ()
        end
      in
      help ();
      (* merge by submission order; the first failure in that order
         wins, regardless of which domain hit it first *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        slots;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           slots)

let close t =
  let workers =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work_ready;
    let w = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    w
  in
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
