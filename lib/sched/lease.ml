type 'a entry = { value : 'a; mutable count : int }

type 'a t = { mutex : Mutex.t; table : (string, 'a entry) Hashtbl.t }

let create () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let acquire t ~key ~build =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          e.count <- e.count + 1;
          e.value
      | None ->
          (* building under the lock is deliberate: a second acquirer of
             the same key must wait for the one build, not start its own *)
          let value = build () in
          Hashtbl.replace t.table key { value; count = 1 };
          value)

let peek t ~key =
  locked t (fun () ->
      Option.map (fun e -> e.value) (Hashtbl.find_opt t.table key))

let built t = locked t (fun () -> Hashtbl.length t.table)

let leases t =
  locked t (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e.count) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let clear t = locked t (fun () -> Hashtbl.reset t.table)
