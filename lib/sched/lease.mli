(** Keyed leasing of expensive, immutable resources.

    A lease table memoizes [build] results by string key so that a
    resource built deterministically from its key — a hardened tenant
    binary, a compiled program — is constructed {e once} and then
    handed out ("leased") to every subsequent acquirer.  The server
    runtime uses one table to share each tenant's prepared instance
    across thousands of sessions and across repeated experiment runs.

    Concurrency: the table is mutex-guarded and safe to drive from
    parallel {!Pool} jobs.  A build runs under the table lock, so two
    domains can never build the same key twice; builds of {e distinct}
    keys serialize too — acceptable because acquirers are expected to
    pre-build their keys sequentially (see {!Tenant.prepare_all} in
    [lib/server]) and lease from jobs afterwards.

    Determinism: [build] must be a pure function of the key; a leased
    value is indistinguishable from a freshly built one. *)

type 'a t

val create : unit -> 'a t

val acquire : 'a t -> key:string -> build:(unit -> 'a) -> 'a
(** [acquire t ~key ~build] returns the cached value for [key],
    building and caching it first if absent.  Every call (hit or miss)
    counts as one lease. *)

val peek : 'a t -> key:string -> 'a option
(** Cached value, if any; does not count as a lease. *)

val built : 'a t -> int
(** Number of distinct keys built so far. *)

val leases : 'a t -> (string * int) list
(** [(key, lease count)] pairs, sorted by key. *)

val clear : 'a t -> unit
(** Drop every cached value and counter (for tests). *)
