(** Domain-based worker pool with deterministic result collection.

    A pool owns [jobs - 1] worker domains plus the submitting domain,
    all draining one work queue.  {!run_all} submits a batch of
    {!Job.t}s and returns their results {e in submission order} — never
    in completion order — so a report rendered from pooled results is
    byte-identical to the sequential run.  With [~jobs:1] no domains
    are spawned and {!run_all} degenerates to [List.map Job.run], the
    exact sequential path (including eager exception propagation).

    Restrictions: a pool must only be driven from the domain that
    created it, and jobs must not call {!run_all} on the pool running
    them (the queue has no nesting support; doing so can deadlock). *)

type t

val max_jobs : int
(** Hard upper clamp on pool width (128). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs]
    defaults to [Domain.recommended_domain_count ()] and is clamped to
    [\[1, max_jobs\]]. *)

val jobs : t -> int
(** Total parallelism, including the submitting domain. *)

val sequential : t
(** The width-1 pool: no worker domains, [run_all = List.map Job.run].
    The default everywhere a pool is optional. *)

val run_all : t -> 'a Job.t list -> 'a list
(** Run every job, return results in submission order.  If jobs raised,
    the remaining jobs still run to completion, then the exception of
    the {e first failed job in submission order} is re-raised (with its
    original backtrace) — completion order can not leak into which
    error the caller sees. *)

val close : t -> unit
(** Drain and join the worker domains.  Idempotent; a closed pool (and
    {!sequential}, which owns no domains) still accepts {!run_all},
    which then runs sequentially. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] is [f (create ~jobs ())] with a guaranteed
    {!close} on any exit. *)
