(** Domain-based worker pool with deterministic result collection.

    A pool owns [jobs - 1] worker domains plus the submitting domain,
    all draining one work queue.  {!run_all} submits a batch of
    {!Job.t}s and returns their results {e in submission order} — never
    in completion order — so a report rendered from pooled results is
    byte-identical to the sequential run.  With [~jobs:1] no domains
    are spawned and {!run_all} degenerates to [List.map Job.run], the
    exact sequential path (including eager exception propagation).

    {!run_all_outcomes} adds supervision: a per-job wall-clock timeout
    and bounded retry with seeded backoff, reporting each job's
    {!Job.outcome} instead of raising — a hung or crashing job can
    neither take down the pool nor lose the other jobs' results.

    Restrictions: a pool must only be driven from the domain that
    created it, and jobs must not call {!run_all} (or
    {!run_all_outcomes}) on the pool running them — the queue has no
    nesting support, so a nested submission is rejected with a clear
    [Failure] instead of being left to deadlock.  Nested experiments
    use {!sequential} (whose zero-worker {!run_all} nests freely) or a
    pool of their own. *)

type t

type stats = {
  jobs_run : int;
      (** tasks executed to completion, including every supervised
          attempt (a retried job counts once per attempt) *)
  retries : int;  (** re-runs scheduled by {!run_all_outcomes} *)
  timeouts : int;  (** jobs abandoned as [Timed_out] *)
  peak_queue : int;
      (** deepest backlog observed: queued-but-unclaimed tasks for
          {!run_all}, pending + retry-waiting jobs for
          {!run_all_outcomes} *)
}
(** Cumulative counters over the pool's lifetime, for attributing
    saturation in timing footers.  {!val:sequential} accumulates across
    everything ever run on it (it is a shared value). *)

val stats : t -> stats
(** Snapshot of the counters.  Domain-safe; cheap. *)

val stats_to_json : stats -> Sutil.Json.t
(** [{"jobs_run", "retries", "timeouts", "peak_queue"}] — the same
    counters the stderr footers print, for the [--json] surfaces (CI
    asserts on retry/timeout counts). *)

val max_jobs : int
(** Hard upper clamp on pool width (128). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs]
    defaults to [Domain.recommended_domain_count ()] and is clamped to
    [\[1, max_jobs\]]. *)

val jobs : t -> int
(** Total parallelism, including the submitting domain. *)

val sequential : t
(** The width-1 pool: no worker domains, [run_all = List.map Job.run].
    The default everywhere a pool is optional. *)

val run_all : t -> 'a Job.t list -> 'a list
(** Run every job, return results in submission order.  If jobs raised,
    the remaining jobs still run to completion, then the exception of
    the {e first failed job in submission order} is re-raised (with its
    original backtrace) — completion order can not leak into which
    error the caller sees. *)

val run_all_outcomes :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  t ->
  'a Job.t list ->
  'a Job.outcome list
(** Supervised variant of {!run_all}: every job's fate is reported in
    submission order and nothing is re-raised.

    - [timeout] (seconds of wall clock, default none): a job still
      running after this long is {e abandoned} — OCaml domains cannot
      be interrupted, so its domain keeps running and its eventual
      result is discarded — and reported [Timed_out].  Timed-out jobs
      are not retried (a hung job would hang again, and each
      abandoned attempt leaks a domain).
    - [retries] (default 0): a job that raised is re-run up to this
      many additional times; the exception of the {e last} attempt is
      reported as [Failed].
    - [backoff] (default 0.01 s): base delay before a retry,
      exponential in the attempt number with deterministic jitter
      derived from the job's seed.

    Each attempt runs on its own spawned domain (never on the queue
    workers), at most {!val:jobs}[ t] at once; a closed pool (and
    {!sequential}) supervises with a window of 1.  Deterministic
    modulo wall-clock effects: for jobs that neither time out nor
    race a timeout, the outcome list is the same at every pool
    width. *)

val close : t -> unit
(** Drain and join the worker domains.  Idempotent; a closed pool (and
    {!sequential}, which owns no domains) still accepts {!run_all},
    which then runs sequentially. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] is [f (create ~jobs ())] with a guaranteed
    {!close} on any exit. *)
