type 'a t = { id : string; seed : int64; run : unit -> 'a }

type 'a outcome = Ok of 'a | Timed_out | Failed of exn

let v ~id ?(seed = 0L) run = { id; seed; run }

let seeded ~root ~id f =
  let seed = Sutil.Simrng.split_seed ~root ~id in
  { id; seed; run = (fun () -> f ~seed) }

let id t = t.id
let seed t = t.seed
let run t = t.run ()
