let backend =
  { Machine.Backend.kind = Machine.Backend.Bytecode; label = "bytecode"; run = Interp.run }

let install () = Machine.Backend.register backend
let () = install ()
