(* Flattening Ir.Func.t into dense bytecode.

   Everything the reference interpreter resolves per-instruction through
   hashtables or list walks is resolved once here: block labels become
   instruction indices, globals and function references become immediate
   addresses/tokens, direct callees become function indices, intrinsic
   names become slots into a per-run closure table.  The runtime loop in
   Interp then touches only arrays.

   Resolution failures (unknown global, unknown function reference or
   callee, missing label) must NOT fail at compile time: the reference
   interpreter only raises when the broken operand is actually
   evaluated — and some operands are evaluated lazily (Select reads only
   the taken arm).  A failed resolution therefore compiles to an [Strap]
   operand (or a trailing trap op for branch targets) that replays the
   reference exception at the exact evaluation point. *)

type trap =
  | Unknown_global of string  (* Invalid_argument, as Exec.global_addr *)
  | Unknown_func_ref of string  (* Memory.Fault, as Exec's eval *)
  | Unknown_callee of string  (* Memory.Fault, as Exec's do_call *)
  | Missing_label  (* Not_found, as Hashtbl.find in Exec's run_block *)

type src = Sreg of int | Simm of int64 | Strap of trap

type op =
  | Obinop of { dst : int; cost : float; op : Ir.Instr.binop; lhs : src; rhs : src }
  | Oicmp of { dst : int; op : Ir.Instr.icmp; lhs : src; rhs : src }
  | Oselect of { dst : int; cond : src; if_true : src; if_false : src }
  | Osext of { dst : int; width : int; value : src }
  | Otrunc of { dst : int; width : int; value : src }
  | Ogep of { dst : int; base : src; offset : int; index : src; scale : int }
      (** absent index encodes as [index = Simm 0, scale = 0] *)
  | Oload of { dst : int; width : int; addr : src }
  | Ostore of { width : int; value : src; addr : src }
  | Oalloca of { dst : int; elt : int; align : int; count : src option }
  | Ocall of { dst : int; fidx : int; args : src array }  (** dst = -1: none *)
  | Obuiltin of { dst : int; name : string; args : src array }
  | Ocall_unknown of { name : string; args : src array }
      (** callee is neither a function nor an extern: evaluate the
          arguments (they may trap first, as in the reference), then
          fault *)
  | Ocall_ind of { dst : int; callee : src; args : src array }
  | Ointrinsic of { dst : int; slot : int; name : string; args : src array }
  | Ojmp of int
  | Ocondbr of { cond : src; if_true : int; if_false : int }
  | Oret of src  (** void returns encode as [Oret (Simm 0)] *)
  | Ounreachable of string  (** function name, for the fault message *)
  | Otrap  (** jump target of branches to labels that do not exist *)

type bfunc = {
  fname : string;
  param_regs : int array;
  nregs : int;
  code : op array;
  src_blocks : Ir.Func.block list;  (* spine identity, for cache checks *)
  src_shape : (Ir.Instr.t list * Ir.Instr.terminator) array;
      (* per-block instruction-list spine + terminator, same order *)
}

type program = {
  src : Ir.Prog.t;
  src_funcs : Ir.Func.t list;  (* spine identity *)
  funcs : bfunc array;
  index : (string, int) Hashtbl.t;
  intrinsic_names : string array;  (* slot -> name *)
}

let token_base = Machine.Exec.func_token_base

(* ------------------------------------------------------------------ *)

type ctx = {
  globals : (string, int) Hashtbl.t;
  func_tokens : (string, int) Hashtbl.t;
  func_index : (string, int) Hashtbl.t;
  prog : Ir.Prog.t;
  intrinsic_slots : (string, int) Hashtbl.t;
  mutable slot_names : string list;  (* reverse order *)
  mutable next_slot : int;
}

let resolve ctx = function
  | Ir.Instr.Reg r -> Sreg r
  | Ir.Instr.Imm i -> Simm i
  | Ir.Instr.Global g -> (
      match Hashtbl.find_opt ctx.globals g with
      | Some a -> Simm (Int64.of_int a)
      | None -> Strap (Unknown_global g))
  | Ir.Instr.Func_ref fn -> (
      match Hashtbl.find_opt ctx.func_tokens fn with
      | Some t -> Simm (Int64.of_int t)
      | None -> Strap (Unknown_func_ref fn))

let intrinsic_slot ctx name =
  match Hashtbl.find_opt ctx.intrinsic_slots name with
  | Some s -> s
  | None ->
      let s = ctx.next_slot in
      ctx.next_slot <- s + 1;
      ctx.slot_names <- name :: ctx.slot_names;
      Hashtbl.replace ctx.intrinsic_slots name s;
      s

let compile_instr ctx (i : Ir.Instr.t) : op =
  let src o = resolve ctx o in
  let srcs l = Array.of_list (List.map src l) in
  let dst_of = function Some d -> d | None -> -1 in
  match i with
  | Binop { dst; op; lhs; rhs } ->
      let cost =
        match op with
        | Sdiv | Udiv | Srem | Urem -> Machine.Cost.div
        | _ -> Machine.Cost.alu
      in
      Obinop { dst; cost; op; lhs = src lhs; rhs = src rhs }
  | Icmp { dst; op; lhs; rhs } -> Oicmp { dst; op; lhs = src lhs; rhs = src rhs }
  | Select { dst; cond; if_true; if_false } ->
      Oselect
        { dst; cond = src cond; if_true = src if_true; if_false = src if_false }
  | Sext { dst; width; value } -> Osext { dst; width; value = src value }
  | Trunc { dst; width; value } -> Otrunc { dst; width; value = src value }
  | Gep { dst; base; offset; index } ->
      let index, scale =
        match index with None -> (Simm 0L, 0) | Some (i, scale) -> (src i, scale)
      in
      Ogep { dst; base = src base; offset; index; scale }
  | Load { dst; ty; addr } ->
      Oload { dst; width = Ir.Ty.scalar_width ty; addr = src addr }
  | Store { ty; value; addr } ->
      Ostore { width = Ir.Ty.scalar_width ty; value = src value; addr = src addr }
  | Alloca { dst; ty; count; name = _ } ->
      Oalloca
        {
          dst;
          elt = Ir.Ty.size ty;
          align = max 1 (Ir.Ty.alignment ty);
          count = Option.map src count;
        }
  | Call { dst; callee; args } -> (
      let args = srcs args in
      let dst = dst_of dst in
      match Hashtbl.find_opt ctx.func_index callee with
      | Some fidx -> Ocall { dst; fidx; args }
      | None ->
          if Ir.Prog.is_extern ctx.prog callee then
            Obuiltin { dst; name = callee; args }
          else Ocall_unknown { name = callee; args })
  | Call_ind { dst; callee; args } ->
      Ocall_ind { dst = dst_of dst; callee = src callee; args = srcs args }
  | Intrinsic { dst; name; args } ->
      Ointrinsic
        { dst = dst_of dst; slot = intrinsic_slot ctx name; name; args = srcs args }

let compile_func ctx (f : Ir.Func.t) : bfunc =
  (* Layout: blocks in order, one op per instruction plus one per
     terminator, then a single trailing trap op shared by branches to
     labels that do not exist. *)
  let starts = Hashtbl.create 16 in
  let len =
    List.fold_left
      (fun off (b : Ir.Func.block) ->
        Hashtbl.replace starts b.label off;
        off + List.length b.instrs + 1)
      0 f.blocks
  in
  let trap_idx = len in
  let target l =
    match Hashtbl.find_opt starts l with Some i -> i | None -> trap_idx
  in
  let code = Array.make (len + 1) Otrap in
  let pos = ref 0 in
  List.iter
    (fun (b : Ir.Func.block) ->
      List.iter
        (fun i ->
          code.(!pos) <- compile_instr ctx i;
          incr pos)
        b.instrs;
      (code.(!pos) <-
         (match b.term with
         | Ir.Instr.Ret None -> Oret (Simm 0L)
         | Ir.Instr.Ret (Some v) -> Oret (resolve ctx v)
         | Ir.Instr.Br l -> Ojmp (target l)
         | Ir.Instr.Cond_br { cond; if_true; if_false } ->
             Ocondbr
               {
                 cond = resolve ctx cond;
                 if_true = target if_true;
                 if_false = target if_false;
               }
         | Ir.Instr.Unreachable -> Ounreachable f.name));
      incr pos)
    f.blocks;
  {
    fname = f.name;
    param_regs = Array.of_list (List.map fst f.params);
    nregs = max 1 (Ir.Func.reg_count f);
    code;
    src_blocks = f.blocks;
    src_shape =
      Array.of_list
        (List.map (fun (b : Ir.Func.block) -> (b.instrs, b.term)) f.blocks);
  }

let compile (st : Machine.Exec.state) : program =
  let prog = st.prog in
  let func_index = Hashtbl.create 32 in
  List.iteri (fun i (f : Ir.Func.t) -> Hashtbl.replace func_index f.name i) prog.funcs;
  let ctx =
    {
      globals = st.globals;
      func_tokens = st.func_tokens;
      func_index;
      prog;
      intrinsic_slots = Hashtbl.create 8;
      slot_names = [];
      next_slot = 0;
    }
  in
  let funcs = Array.of_list (List.map (compile_func ctx) prog.funcs) in
  {
    src = prog;
    src_funcs = prog.funcs;
    funcs;
    index = func_index;
    intrinsic_names = Array.of_list (List.rev ctx.slot_names);
  }

(* A compiled program stays valid while the IR it was flattened from is
   physically unchanged — passes replace the [blocks] list or a block's
   [instrs]/[term] fields, all of which we snapshot by identity. *)
let valid (p : program) (prog : Ir.Prog.t) =
  p.src == prog
  && p.src_funcs == prog.funcs
  &&
  (* same spine => same length and same Func.t values, positionally *)
  let i = ref 0 and ok = ref true in
  List.iter
    (fun (f : Ir.Func.t) ->
      let bf = p.funcs.(!i) in
      incr i;
      if bf.src_blocks != f.blocks then ok := false
      else
        List.iteri
          (fun j (b : Ir.Func.block) ->
            let instrs, term = bf.src_shape.(j) in
            if b.instrs != instrs || b.term != term then ok := false)
          f.blocks)
    prog.funcs;
  !ok
