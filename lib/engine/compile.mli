(** IR-to-bytecode compiler for the fast execution engine.

    Flattens each {!Ir.Func.t} into a dense instruction array with every
    name pre-resolved: block labels become instruction indices, SSA
    values become integer register slots, globals and function
    references become immediate addresses/tokens, direct callees become
    function indices, intrinsic names become slots into a per-run
    closure table.  {!Interp} executes the result with no hashtable
    lookups or list traversals on the hot path.

    Resolution failures never fail compilation: the reference
    interpreter only raises when a broken operand is actually
    evaluated, so they compile to {!constructor:Strap} operands (or the
    {!constructor:Otrap} op for branch targets) that replay the exact
    reference exception at the exact evaluation point. *)

type trap =
  | Unknown_global of string
  | Unknown_func_ref of string
  | Unknown_callee of string
  | Missing_label

type src = Sreg of int | Simm of int64 | Strap of trap

type op =
  | Obinop of { dst : int; cost : float; op : Ir.Instr.binop; lhs : src; rhs : src }
  | Oicmp of { dst : int; op : Ir.Instr.icmp; lhs : src; rhs : src }
  | Oselect of { dst : int; cond : src; if_true : src; if_false : src }
  | Osext of { dst : int; width : int; value : src }
  | Otrunc of { dst : int; width : int; value : src }
  | Ogep of { dst : int; base : src; offset : int; index : src; scale : int }
  | Oload of { dst : int; width : int; addr : src }
  | Ostore of { width : int; value : src; addr : src }
  | Oalloca of { dst : int; elt : int; align : int; count : src option }
  | Ocall of { dst : int; fidx : int; args : src array }
  | Obuiltin of { dst : int; name : string; args : src array }
  | Ocall_unknown of { name : string; args : src array }
  | Ocall_ind of { dst : int; callee : src; args : src array }
  | Ointrinsic of { dst : int; slot : int; name : string; args : src array }
  | Ojmp of int
  | Ocondbr of { cond : src; if_true : int; if_false : int }
  | Oret of src
  | Ounreachable of string
  | Otrap

type bfunc = {
  fname : string;
  param_regs : int array;
  nregs : int;
  code : op array;
  src_blocks : Ir.Func.block list;
  src_shape : (Ir.Instr.t list * Ir.Instr.terminator) array;
}

type program = {
  src : Ir.Prog.t;
  src_funcs : Ir.Func.t list;
  funcs : bfunc array;
  index : (string, int) Hashtbl.t;  (** function name -> index *)
  intrinsic_names : string array;  (** intrinsic slot -> name *)
}

val token_base : int
(** = {!Machine.Exec.func_token_base}; function [i] has token
    [token_base + 16 * i], so indirect-call tokens resolve to function
    indices with two integer operations. *)

val compile : Machine.Exec.state -> program
(** Compiles the state's program against its global/function-token
    layout (which is deterministic per program, so the result is
    reusable across fresh states of the same program). *)

val valid : program -> Ir.Prog.t -> bool
(** Whether the compiled image still matches the (mutable) IR it was
    flattened from — physical identity of the function list, each
    function's block list, and each block's instruction list and
    terminator. *)
