(* Flat dispatch loop over compiled bytecode.

   Executes against the same Machine.Exec.state the reference
   interpreter uses, so every intrinsic, defense installation and
   adaptive-input callback works unchanged.  Observable behaviour must
   be bit-identical to Machine.Exec.run — same outcomes, same output,
   same float cycle accumulation (same charges in the same order), same
   instruction/call counts, same trace events.  test/test_engine.ml
   enforces this differentially; when editing here, keep every charge
   and side effect in the reference interpreter's order.

   Cycle accounting uses an unboxed one-element [floatarray]
   accumulator instead of charging the (boxed) [st.cycles] field per
   instruction.  Float addition is not associative, so charges are
   still applied one at a time in reference order — only the storage
   differs, which keeps the bits identical.  The accumulator is flushed
   to [st.cycles] around every external closure (builtins, intrinsics,
   trace hooks) because those may read or charge [st.cycles]
   themselves, and re-synced afterwards on both the normal and the
   exception path. *)

open Compile
module Exec = Machine.Exec
module Memory = Machine.Memory
module Cost = Machine.Cost

(* Compiled-program cache, keyed by physical program identity and
   revalidated against the mutable IR (passes run strictly before
   execution, so in the steady state — one applied defense, many runs —
   every run after the first is a cache hit).  The MRU list is
   domain-local: each domain compiles and caches independently, so
   concurrent jobs on a Sched.Pool never contend or observe each
   other's evictions, and the single-domain path costs one extra array
   read per run (Domain.DLS.get). *)
let cache_key : Compile.program list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let cache_cap = 8

let compiled_for (st : Exec.state) =
  let cache = Domain.DLS.get cache_key in
  match List.find_opt (fun p -> Compile.valid p st.prog) !cache with
  | Some p ->
      cache := p :: List.filter (fun q -> q != p) !cache;
      p
  | None ->
      let p = Compile.compile st in
      cache :=
        p :: (if List.length !cache >= cache_cap then List.filteri (fun i _ -> i < cache_cap - 1) !cache else !cache);
      p

let raise_trap = function
  | Unknown_global g ->
      invalid_arg (Printf.sprintf "Machine.Exec.global_addr: no global %s" g)
  | Unknown_func_ref fn ->
      raise
        (Memory.Fault
           (Memory.Misc (Printf.sprintf "unknown function reference %s" fn)))
  | Unknown_callee c ->
      raise
        (Memory.Fault
           (Memory.Misc (Printf.sprintf "call to unknown function %s" c)))
  | Missing_label -> raise Not_found

let[@inline] get regs = function
  | Sreg r -> Array.unsafe_get regs r
  | Simm i -> i
  | Strap t -> raise_trap t

let run ?(fuel = 200_000_000) ?(entry = "main") ?(args = []) (st : Exec.state) =
  st.fuel <- fuel;
  let prog = compiled_for st in
  (* Intrinsic closures are linked lazily per run: registration happens
     after prepare (and in principle during execution), and an
     unregistered intrinsic must only fault when it executes. *)
  let impls : Exec.intrinsic option array =
    Array.make (Array.length prog.intrinsic_names) None
  in
  let funcs = prog.funcs in
  let nfuncs = Array.length funcs in
  let cur = ref entry in
  let cyc = Float.Array.make 1 st.cycles in
  let[@inline] charge c =
    Float.Array.unsafe_set cyc 0 (Float.Array.unsafe_get cyc 0 +. c)
  in
  let flush () = st.cycles <- Float.Array.unsafe_get cyc 0 in
  let resync () = Float.Array.unsafe_set cyc 0 st.cycles in
  (* trace hooks are arbitrary closures that may inspect the state, so
     they see an up-to-date [st.cycles] just like under the reference *)
  let emit_sync emit ev =
    flush ();
    match emit ev with
    | () -> resync ()
    | exception e ->
        resync ();
        raise e
  in
  let rec call_fn (bf : bfunc) (argv : int64 array) : int64 =
    st.call_count <- st.call_count + 1;
    st.depth <- st.depth + 1;
    if st.depth > st.max_depth then st.max_depth <- st.depth;
    charge Cost.call_overhead;
    let caller = !cur in
    cur := bf.fname;
    (match st.on_event with
    | Some emit ->
        emit_sync emit
          (Exec.Ev_call { func = bf.fname; depth = st.depth; sp = st.sp })
    | None -> ());
    let entry_sp = st.sp in
    let regs = Array.make bf.nregs 0L in
    let nparams = Array.length bf.param_regs in
    if Array.length argv <> nparams then
      raise
        (Memory.Fault
           (Memory.Misc
              (Printf.sprintf "call to %s with %d args, expected %d" bf.fname
                 (Array.length argv) nparams)));
    for i = 0 to nparams - 1 do
      regs.(bf.param_regs.(i)) <- argv.(i)
    done;
    let code = bf.code in
    let getv args = Array.map (fun s -> get regs s) args in
    let rec step pc =
      match Array.unsafe_get code pc with
      | Obinop { dst; cost; op; lhs; rhs } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge cost;
          (* reference operand order: rhs, then lhs *)
          let b = get regs rhs in
          let a = get regs lhs in
          regs.(dst) <- Exec.eval_binop op a b;
          step (pc + 1)
      | Oicmp { dst; op; lhs; rhs } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.alu;
          let b = get regs rhs in
          let a = get regs lhs in
          regs.(dst) <- Exec.eval_icmp op a b;
          step (pc + 1)
      | Oselect { dst; cond; if_true; if_false } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.alu;
          (* the non-taken arm is never evaluated, as in the reference *)
          regs.(dst) <-
            (if Int64.equal (get regs cond) 0L then get regs if_false
             else get regs if_true);
          step (pc + 1)
      | Osext { dst; width; value } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.alu;
          regs.(dst) <- Sutil.Bytecodec.sext ~width (get regs value);
          step (pc + 1)
      | Otrunc { dst; width; value } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.alu;
          regs.(dst) <- Sutil.Bytecodec.zext ~width (get regs value);
          step (pc + 1)
      | Ogep { dst; base; offset; index; scale } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.alu;
          let idx = Int64.mul (get regs index) (Int64.of_int scale) in
          regs.(dst) <-
            Int64.add (Int64.add (get regs base) (Int64.of_int offset)) idx;
          step (pc + 1)
      | Oload { dst; width; addr } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          let a = Int64.to_int (get regs addr) in
          charge
            (if a >= Exec.rodata_base && a < Exec.data_base then
               Cost.load_rodata
             else Cost.load);
          regs.(dst) <- Memory.load st.mem ~width a;
          step (pc + 1)
      | Ostore { width; value; addr } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.store;
          (* reference operand order: value, then addr *)
          let v = get regs value in
          Memory.store st.mem ~width (Int64.to_int (get regs addr)) v;
          step (pc + 1)
      | Oalloca { dst; elt; align; count } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          let n =
            match count with
            | None -> 1
            | Some c ->
                let v = get regs c in
                if Int64.compare v 0L < 0 || Int64.compare v 0x10000000L > 0
                then
                  raise (Memory.Fault (Memory.Misc "VLA length out of range"))
                else Int64.to_int v
          in
          let bytes = elt * n in
          let new_sp = Sutil.Align.align_down (st.sp - bytes) ~alignment:align in
          if new_sp < st.stack_limit then
            raise
              (Memory.Fault (Memory.Stack_overflow { sp = st.sp; need = bytes }));
          st.sp <- new_sp;
          if entry_sp - new_sp > st.max_frame_bytes then
            st.max_frame_bytes <- entry_sp - new_sp;
          charge Cost.alloca;
          regs.(dst) <- Int64.of_int new_sp;
          step (pc + 1)
      | Ocall { dst; fidx; args } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          let r = call_fn (Array.unsafe_get funcs fidx) (getv args) in
          if dst >= 0 then regs.(dst) <- r;
          step (pc + 1)
      | Obuiltin { dst; name; args } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          let argv = getv args in
          flush ();
          let r =
            match Exec.run_builtin st name argv with
            | r ->
                resync ();
                r
            | exception e ->
                resync ();
                raise e
          in
          if dst >= 0 then
            regs.(dst) <- (match r with Some v -> v | None -> 0L);
          step (pc + 1)
      | Ocall_unknown { name; args } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          ignore (getv args);
          raise
            (Memory.Fault
               (Memory.Misc (Printf.sprintf "call to unknown function %s" name)))
      | Ocall_ind { dst; callee; args } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          let target = Int64.to_int (get regs callee) in
          let rel = target - Compile.token_base in
          if rel >= 0 && rel land 15 = 0 && rel asr 4 < nfuncs then begin
            let r = call_fn (Array.unsafe_get funcs (rel asr 4)) (getv args) in
            if dst >= 0 then regs.(dst) <- r;
            step (pc + 1)
          end
          else
            raise
              (Memory.Fault
                 (Memory.Misc
                    (Printf.sprintf "indirect call to non-function address 0x%x"
                       target)))
      | Ointrinsic { dst; slot; name; args } ->
          st.instr_count <- st.instr_count + 1;
          st.fuel <- st.fuel - 1;
          if st.fuel <= 0 then raise Exec.Out_of_fuel;
          charge Cost.intrinsic_base;
          let fn =
            match Array.unsafe_get impls slot with
            | Some fn -> fn
            | None -> (
                match Hashtbl.find_opt st.intrinsics name with
                | Some fn ->
                    impls.(slot) <- Some fn;
                    fn
                | None ->
                    raise
                      (Memory.Fault
                         (Memory.Misc
                            (Printf.sprintf "unregistered intrinsic %s" name))))
          in
          let argv = getv args in
          flush ();
          let result =
            match fn st argv with
            | r ->
                resync ();
                r
            | exception e ->
                resync ();
                raise e
          in
          (match st.on_event with
          | Some emit -> emit_sync emit (Exec.Ev_intrinsic { name; result })
          | None -> ());
          if dst >= 0 then
            regs.(dst) <- (match result with Some v -> v | None -> 0L);
          step (pc + 1)
      | Ojmp t ->
          charge Cost.branch;
          step t
      | Ocondbr { cond; if_true; if_false } ->
          charge Cost.cond_branch;
          step (if Int64.equal (get regs cond) 0L then if_false else if_true)
      | Oret v ->
          charge Cost.branch;
          get regs v
      | Ounreachable fname ->
          raise
            (Memory.Fault (Memory.Misc ("unreachable executed in " ^ fname)))
      | Otrap -> raise Not_found
    in
    match step 0 with
    | result ->
        st.sp <- entry_sp;
        st.depth <- st.depth - 1;
        (match st.on_event with
        | Some emit ->
            emit_sync emit (Exec.Ev_return { func = bf.fname; depth = st.depth })
        | None -> ());
        cur := caller;
        result
    | exception e ->
        (* unwind bookkeeping but propagate, as the reference does *)
        st.depth <- st.depth - 1;
        raise e
  in
  let outcome =
    match Hashtbl.find_opt prog.index entry with
    | None ->
        Exec.Fault { fault = Memory.Misc ("no entry function " ^ entry); func = "-" }
    | Some fidx -> (
        match call_fn funcs.(fidx) (Array.of_list args) with
        | v ->
            flush ();
            Exec.Exit v
        | exception Exec.Exit_program code ->
            flush ();
            Exec.Exit code
        | exception Memory.Fault fault ->
            flush ();
            (match st.on_event with
            | Some emit ->
                emit (Exec.Ev_fault { detail = Memory.fault_to_string fault })
            | None -> ());
            Exec.Fault { fault; func = !cur }
        | exception Exec.Detect reason ->
            flush ();
            (match st.on_event with
            | Some emit -> emit (Exec.Ev_detected { reason })
            | None -> ());
            Exec.Detected { reason; func = !cur }
        | exception Exec.Out_of_fuel ->
            flush ();
            Exec.Fuel_exhausted)
  in
  (outcome, Exec.stats_of_state st)
