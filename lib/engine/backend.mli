(** Registration of the bytecode engine as a {!Machine.Backend}. *)

val backend : Machine.Backend.t
(** The bytecode backend ({!Interp.run} behind the shared interface). *)

val install : unit -> unit
(** Registers {!backend} in the {!Machine.Backend} registry.  Linking
    this module does it once automatically; executables should still
    call [install] so the library is linked at all (OCaml drops
    unreferenced modules from executables). *)
