(** Bytecode dispatch loop.

    Runs a prepared {!Machine.Exec.state} by compiling its program to
    bytecode (cached per program, {e per domain} — the MRU cache lives
    in domain-local storage, so concurrent {!Sched.Pool} jobs never
    share or invalidate each other's compiled images) and executing a
    flat dispatch loop over mutable [int64] register frames.  Preserves the reference
    interpreter's full observable contract — identical outcomes, program
    output, cycle/instruction/call accounting, memory faults, detection
    events and trace emission — which [test/test_engine.ml] checks
    differentially against {!Machine.Exec.run} on fuzzed programs and
    every application workload. *)

val run :
  ?fuel:int ->
  ?entry:string ->
  ?args:int64 list ->
  Machine.Exec.state ->
  Machine.Exec.outcome * Machine.Exec.stats
(** Drop-in replacement for {!Machine.Exec.run} (same defaults).  The
    state is consumed: run each prepared state once. *)
