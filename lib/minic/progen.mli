(** Random well-formed MiniC programs, for differential testing.

    Every generated program is deterministic (no input), terminating
    (all loops have constant bounds), memory-safe (array indices are
    masked into range) and division-safe (divisors are forced
    non-zero).  The interpreter is therefore a full oracle: the
    baseline, the [-O1]-optimized build, every defense-applied build
    and every Smokestack-hardened build of the same program must all
    print the same output — the property the differential tests
    check across hundreds of seeds. *)

val generate : seed:int64 -> string
(** A complete translation unit ending in a [print_int] of an
    accumulated checksum.  Every function — helpers and [main] —
    declares at least one array local and at least one scalar local,
    so every frame gives the permutation passes (and the DOP pair
    enumeration) something to separate. *)

val generate_leaky : seed:int64 -> string
(** {!generate}'s program with a leak-shaped tail: before the checksum
    it additionally discloses layout — either printing a local's
    address or printing which of two locals sits lower (a comparison
    oracle), the shape seed-chosen.  Leaky programs are ground-truth
    positives for the {!Analysis.Leakan} analyzer and the E19
    cross-validation; they deliberately {e break} the
    differential-oracle property (their output depends on the drawn
    layout), so they must never enter the diff corpus.  The benign
    prefix is byte-identical to {!generate} of the same seed. *)

val generate_many : seed:int64 -> int -> string list
(** [n] programs with seeds drawn from one stream rooted at [seed]
    (the historical smoke-test corpus shape).  Materializes the list;
    for campaign-scale ranges use {!range}. *)

val range : seed:int64 -> int -> (int64 * string) Seq.t
(** [range ~seed n] is the lazy stream
    [(seed, generate ~seed); (seed+1, ...); ...] of [n] consecutive
    seeds.  Sources are generated on demand as the sequence is
    consumed, so a campaign over 10^4–10^5 programs never holds the
    corpus in memory. *)
