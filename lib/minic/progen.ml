(* The generator works over a tiny typed context: every variable in
   scope is a [long] scalar or a [long] array of known size; values are
   combined with total operators only. *)

type ctx = {
  rng : Sutil.Simrng.t;
  scalars : string list;  (** in-scope long scalars *)
  arrays : (string * int) list;  (** in-scope long arrays, pow2 sizes *)
  funcs : (string * int) list;  (** defined helpers: name, arity *)
  depth : int;
}

let pick rng l = List.nth l (Sutil.Simrng.int rng ~bound:(List.length l))

(* Expressions: total by construction.  Division and modulo get a
   "| 1"-forced divisor; shifts get masked counts. *)
let rec gen_expr (c : ctx) : string =
  let leaf () =
    match Sutil.Simrng.int c.rng ~bound:4 with
    | 0 -> string_of_int (Sutil.Simrng.int c.rng ~bound:2000 - 1000)
    | 1 | 2 when c.scalars <> [] -> pick c.rng c.scalars
    | _ when c.arrays <> [] ->
        let name, size = pick c.rng c.arrays in
        Printf.sprintf "%s[%s & %d]" name (gen_index c) (size - 1)
    | _ -> string_of_int (Sutil.Simrng.int c.rng ~bound:100)
  in
  if c.depth <= 0 then leaf ()
  else
    let sub () = gen_expr { c with depth = c.depth - 1 } in
    match Sutil.Simrng.int c.rng ~bound:12 with
    | 0 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 1 -> Printf.sprintf "(%s - %s)" (sub ()) (sub ())
    | 2 -> Printf.sprintf "(%s * %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s / ((%s & 7) + 1))" (sub ()) (sub ())
    | 4 -> Printf.sprintf "(%s %% ((%s & 15) + 1))" (sub ()) (sub ())
    | 5 -> Printf.sprintf "(%s & %s)" (sub ()) (sub ())
    | 6 -> Printf.sprintf "(%s | %s)" (sub ()) (sub ())
    | 7 -> Printf.sprintf "(%s ^ %s)" (sub ()) (sub ())
    | 8 -> Printf.sprintf "(%s << (%s & 7))" (sub ()) (sub ())
    | 9 -> Printf.sprintf "(%s >> (%s & 15))" (sub ()) (sub ())
    | 10 -> Printf.sprintf "(%s %s %s ? %s : %s)" (sub ())
              (pick c.rng [ "<"; "<="; ">"; ">="; "=="; "!=" ])
              (sub ()) (sub ()) (sub ())
    | _ when c.funcs <> [] ->
        let name, arity = pick c.rng c.funcs in
        Printf.sprintf "%s(%s)" name
          (String.concat ", " (List.init arity (fun _ -> sub ())))
    | _ -> leaf ()

and gen_index c =
  if c.scalars = [] then string_of_int (Sutil.Simrng.int c.rng ~bound:64)
  else pick c.rng c.scalars

let gen_stmt (c : ctx) ~indent : string =
  let pad = String.make indent ' ' in
  match Sutil.Simrng.int c.rng ~bound:6 with
  | 0 | 1 when c.scalars <> [] ->
      Printf.sprintf "%s%s %s %s;" pad (pick c.rng c.scalars)
        (pick c.rng [ "="; "+="; "-="; "^=" ])
        (gen_expr c)
  | 2 when c.arrays <> [] ->
      let name, size = pick c.rng c.arrays in
      Printf.sprintf "%s%s[%s & %d] = %s;" pad name (gen_index c) (size - 1)
        (gen_expr c)
  | 3 when c.scalars <> [] ->
      let v = pick c.rng c.scalars in
      Printf.sprintf "%sif (%s %s %s) { %s %s %s; } else { %s -= 1; }" pad
        (gen_expr c)
        (pick c.rng [ "<"; ">"; "==" ])
        (gen_expr c) v
        (pick c.rng [ "+="; "^=" ])
        (gen_expr c) v
  | _ when c.scalars <> [] ->
      (* constant-bounded loop over a fresh counter *)
      let v = pick c.rng c.scalars in
      let bound = 1 + Sutil.Simrng.int c.rng ~bound:7 in
      Printf.sprintf "%sfor (int it%d = 0; it%d < %d; it%d++) { %s += %s; }"
        pad indent indent bound indent v (gen_expr c)
  | _ -> pad ^ ";"

let gen_helper rng ~name ~arity ~funcs =
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let n_locals = 1 + Sutil.Simrng.int rng ~bound:3 in
  let locals = List.init n_locals (fun i -> Printf.sprintf "l%d" i) in
  let arr_size = 1 lsl (2 + Sutil.Simrng.int rng ~bound:3) in
  let c =
    {
      rng;
      scalars = params @ locals;
      arrays = [ ("buf", arr_size) ];
      funcs;
      depth = 2;
    }
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "long %s(%s) {\n" name
       (String.concat ", " (List.map (fun p -> "long " ^ p) params)));
  Buffer.add_string buf (Printf.sprintf "  long buf[%d];\n" arr_size);
  List.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  long %s = %d;\n" l ((i * 37) + 5)))
    locals;
  Buffer.add_string buf
    (Printf.sprintf "  for (int z = 0; z < %d; z++) buf[z] = z * 3;\n" arr_size);
  let n_stmts = 2 + Sutil.Simrng.int rng ~bound:5 in
  for _ = 1 to n_stmts do
    Buffer.add_string buf (gen_stmt c ~indent:2);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "  return %s;\n}\n\n" (gen_expr c));
  Buffer.contents buf

let gen ~leaky ~seed =
  let rng = Sutil.Simrng.create ~seed in
  let buf = Buffer.create 1024 in
  (* globals *)
  let n_globals = 1 + Sutil.Simrng.int rng ~bound:3 in
  let globals = List.init n_globals (fun i -> Printf.sprintf "g%d" i) in
  List.iteri
    (fun i g ->
      Buffer.add_string buf
        (Printf.sprintf "long %s = %d;\n" g ((i * 11) + 1)))
    globals;
  Buffer.add_char buf '\n';
  (* helpers, each allowed to call the previous ones *)
  let n_funcs = 1 + Sutil.Simrng.int rng ~bound:3 in
  let funcs = ref [] in
  for i = 0 to n_funcs - 1 do
    let name = Printf.sprintf "h%d" i in
    let arity = 1 + Sutil.Simrng.int rng ~bound:2 in
    Buffer.add_string buf (gen_helper rng ~name ~arity ~funcs:!funcs);
    funcs := (name, arity) :: !funcs
  done;
  (* main: accumulate helper results and globals into a checksum.  Like
     every helper, main gets at least one array local and one scalar
     local — the frame-permutation passes need both kinds in every
     function to have anything to separate. *)
  let c =
    {
      rng;
      scalars = "acc" :: globals;
      arrays = [ ("mbuf", 8) ];
      funcs = !funcs;
      depth = 2;
    }
  in
  Buffer.add_string buf "int main() {\n  long acc = 0;\n  long mbuf[8];\n";
  Buffer.add_string buf "  for (int z = 0; z < 8; z++) mbuf[z] = z * 7;\n";
  let rounds = 2 + Sutil.Simrng.int rng ~bound:4 in
  for r = 1 to rounds do
    Buffer.add_string buf
      (Printf.sprintf "  acc = acc * 31 + %s;\n" (gen_expr c));
    if r mod 2 = 0 && globals <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  %s += acc & 1023;\n" (pick rng globals))
  done;
  Buffer.add_string buf "  acc = acc * 31 + mbuf[acc & 7];\n";
  (* Leak-shaped tail (ground-truth positives for the leak analyzer and
     E19): either print a local's address outright, or branch on the
     relative order of two locals — a one-bit comparison oracle.  The
     shape draw is the rng's last use, so the benign prefix is
     byte-identical to the leaky=false output of the same seed. *)
  if leaky then begin
    match Sutil.Simrng.int rng ~bound:2 with
    | 0 ->
        Buffer.add_string buf
          "  print_int((long)&mbuf);\n  print_newline();\n"
    | _ ->
        Buffer.add_string buf
          "  if ((long)&mbuf < (long)&acc) { print_str(\"L\"); } else { \
           print_str(\"R\"); }\n\
          \  print_newline();\n"
  end;
  Buffer.add_string buf
    "  print_int(acc);\n  print_newline();\n  return 0;\n}\n";
  Buffer.contents buf

let generate ~seed = gen ~leaky:false ~seed
let generate_leaky ~seed = gen ~leaky:true ~seed

let generate_many ~seed n =
  let rng = Sutil.Simrng.create ~seed in
  List.init n (fun _ -> generate ~seed:(Sutil.Simrng.next_u64 rng))

(* Campaign-scale corpora walk consecutive seeds through this lazy
   sequence: each source is generated when the consumer reaches it and
   dropped when the consumer moves on, so a 10^5-program range costs the
   memory of one program, not the corpus. *)
let range ~seed n =
  Seq.init n (fun i ->
      let pseed = Int64.add seed (Int64.of_int i) in
      (pseed, generate ~seed:pseed))
