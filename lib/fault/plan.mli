(** Deterministic fault plans: {e site} × {e trigger} × behaviour.

    A plan is a pure value describing one injected fault.  It can be
    parsed from a compact spec string ({!of_spec}), printed back
    ({!to_spec} — a round-trip), or derived reproducibly from a
    {!Sutil.Simrng} seed ({!random}), so a chaos experiment over a
    seeded plan population is replayable bit-for-bit.

    {2 Spec grammar}

    [SITE@TRIGGER], where [TRIGGER] is [never], [N] (from the N-th
    event on, 1-based) or [N..M] (events N through M inclusive), and
    [SITE] is one of:

    - [rng:stuck=HEX] — every hardware draw returns the value
    - [rng:ones] — stuck-at all-ones (the documented AMD RDRAND field
      failure)
    - [rng:bias=K] — the low K bits of every draw read as zero
    - [rng:lat=CYCLES] — each draw costs CYCLES extra cycles (a
      retry-loop latency spike); the draw values are untouched
    - [rng:off] — the source reports itself unavailable
    - [mem:stack:OFF:BIT] / [mem:data:OFF:BIT] — flip bit BIT of the
      byte OFF bytes into the segment (from the top for the stack,
      from the base for data), once, at the first memory access with
      the instruction counter inside the trigger
    - [intr:NAME:xor=HEX] — corrupt the Smokestack intrinsic [NAME]:
      its result (or, for result-less intrinsics, its first argument)
      is XORed with the constant

    Trigger units are per-site: RNG draws for [rng:*], executed
    instructions for [mem:*], per-name invocations for [intr:*].

    Examples: [rng:ones@1], [rng:bias=8@2..100], [mem:stack:64:3@5000],
    [intr:ss.fid_key:xor=1@1], [rng:stuck=0xff@never]. *)

type rng_behaviour =
  | Stuck_at of int64
  | All_ones
  | Bias_low of int  (** low [k] bits forced to zero, [1 <= k <= 63] *)
  | Latency of float  (** extra cycles charged per draw *)
  | Unavailable

type segment = Stack | Data

type site =
  | Rng of rng_behaviour
  | Mem_flip of { seg : segment; offset : int; bit : int }
  | Intrinsic of { name : string; xor : int64 }

type trigger =
  | Never
  | At of int  (** from the [n]-th event on (1-based) *)
  | Window of { from_ : int; until : int }  (** inclusive *)

type t = { site : site; trigger : trigger }

val fires : trigger -> int -> bool
(** [fires trigger n] — does the trigger cover 1-based event index
    [n]? *)

val of_spec : string -> (t, string) result
val to_spec : t -> string
(** [of_spec (to_spec p) = Ok p] for every [p] with canonical
    parameters. *)

val random : seed:int64 -> t
(** A reproducible plan: same seed, same plan.  Sites, behaviours and
    triggers are drawn so that typical workload runs can actually
    reach them (instruction triggers within the first ~20k
    instructions, draw triggers within the first ~40 draws). *)

val family : t -> string
(** ["rng"], ["mem"] or ["intr"] — the injection-site family. *)

val describe : t -> string
(** One human-readable line. *)
