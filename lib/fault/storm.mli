(** Deterministic fault-storm schedules for the server runtime.

    A storm is a set of burst windows over the session index axis:
    inside a burst the traffic generator swaps its baseline attack and
    chaos percentages for the (much hotter) storm rates, outside it the
    baseline applies.  The windows are a pure function of the
    [(root, "storm/k")] keyed streams, so the same config replays the
    same storm on any engine, at any pool width — the property every
    resilience report depends on.

    Storms live here rather than in [Server.Traffic] because they are a
    fault-pressure model, not a traffic model: the chaos sessions they
    inflate are served under armed {!Plan} fault plans, and the breaker
    storms they trigger are what the control plane's graceful
    degradation is tested against. *)

type t = {
  bursts : (int * int) list;
      (** [\[start, stop)] session-index windows, disjoint, ascending *)
  attack_pct : int;  (** attack percentage inside a burst *)
  chaos_pct : int;  (** chaos percentage inside a burst *)
}

val plan :
  ?bursts:int ->
  ?burst_len:int ->
  ?attack_pct:int ->
  ?chaos_pct:int ->
  root:int64 ->
  sessions:int ->
  unit ->
  t
(** [plan ~root ~sessions ()] draws [bursts] (default 3) windows of
    [burst_len] sessions (default [sessions/6], min 1), one per equal
    segment of the schedule so they never overlap.  Inside a burst the
    mix runs at [attack_pct]/[chaos_pct] (defaults 35/30 — hot enough
    to trip breakers and trigger degradation). *)

val in_burst : t -> int -> bool
(** Is session index [sid] inside a burst window? *)

val rates_at : t -> int -> base:int * int -> int * int
(** [(attack_pct, chaos_pct)] in effect at session index [sid]:
    the storm rates inside a burst, [base] outside. *)

val storm_sessions : t -> int
(** Total session indices covered by burst windows. *)

val describe : t -> string
(** One-line human summary, e.g. ["3 bursts x 150 sessions @ 35/30"]. *)
