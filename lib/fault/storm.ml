type t = {
  bursts : (int * int) list;
  attack_pct : int;
  chaos_pct : int;
}

let plan ?(bursts = 3) ?burst_len ?(attack_pct = 35) ?(chaos_pct = 30) ~root
    ~sessions () =
  if sessions <= 0 then invalid_arg "Fault.Storm.plan: sessions must be > 0";
  let bursts = max 1 bursts in
  let burst_len =
    match burst_len with
    | Some l -> max 1 l
    | None -> max 1 (sessions / 6)
  in
  let seg = max 1 (sessions / bursts) in
  (* One burst per equal segment of the schedule, start drawn from the
     segment's own keyed stream: windows are disjoint by construction
     and independent of draw order. *)
  let windows =
    List.init bursts (fun k ->
        let rng =
          Sutil.Simrng.stream ~root ~id:(Printf.sprintf "storm/%02d" k)
        in
        let lo = k * seg in
        let hi = min sessions ((k + 1) * seg) in
        let span = max 1 (hi - lo - burst_len) in
        let start = lo + Sutil.Simrng.int rng ~bound:span in
        (start, min hi (start + burst_len)))
  in
  let windows = List.filter (fun (a, b) -> b > a) windows in
  { bursts = windows; attack_pct; chaos_pct }

let in_burst t sid = List.exists (fun (a, b) -> sid >= a && sid < b) t.bursts

let rates_at t sid ~base =
  if in_burst t sid then (t.attack_pct, t.chaos_pct) else base

let storm_sessions t =
  List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t.bursts

let describe t =
  Printf.sprintf "%d bursts x %d sessions @ %d/%d" (List.length t.bursts)
    (match t.bursts with (a, b) :: _ -> b - a | [] -> 0)
    t.attack_pct t.chaos_pct
