(** Arming a {!Plan} against a live machine state.

    [arm] threads one plan into the three injection layers:

    - {b RNG draws} ([rng:*] except [lat]) install a
      {!Rng.Generator.set_tamper} hook on the supplied generator; the
      tamper applies only while the generator still runs the scheme it
      had at arm time (a degraded generator has abandoned the faulty
      physical source).  Without [?gen] — an unhardened run, or the
      [pseudo] scheme whose draws live in VM memory and never touch
      the generator — the plan arms as a no-op.
    - {b RNG latency} ([rng:lat]) wraps the [ss.rand]/[ss.pad]
      intrinsics to charge the extra cycles on each triggered draw
      request (a hardware retry loop costs time, not correctness).
    - {b Memory flips} ([mem:*]) install a {!Machine.Memory} access
      hook that fires {e once}, at the first checked access whose
      instruction count the trigger covers, flipping the planned bit
      via {!Machine.Memory.flip_bit}.  The byte offset counts down
      from the stack top (where live frames sit) or up from the data
      base, reduced modulo the segment size.
    - {b Intrinsics} ([intr:*]) wrap the named intrinsic: on triggered
      invocations the first argument (for result-less intrinsics such
      as [ss.fid_assert]) or the result is XORed with the plan's
      constant.

    Arming must happen after the Smokestack runtime is installed
    (otherwise there is no intrinsic to wrap) and before {!run}.  All
    injections are deterministic: a plan whose trigger never fires
    leaves every observable of the run bit-identical to the fault-free
    run (asserted by E13). *)

type armed

val arm : ?gen:Rng.Generator.t -> Plan.t -> Machine.Exec.state -> armed

val plan : armed -> Plan.t

val fired : armed -> int
(** Injections that actually happened: tampered draws, flipped bits,
    corrupted or delayed intrinsic invocations. *)
