type rng_behaviour =
  | Stuck_at of int64
  | All_ones
  | Bias_low of int
  | Latency of float
  | Unavailable

type segment = Stack | Data

type site =
  | Rng of rng_behaviour
  | Mem_flip of { seg : segment; offset : int; bit : int }
  | Intrinsic of { name : string; xor : int64 }

type trigger = Never | At of int | Window of { from_ : int; until : int }

type t = { site : site; trigger : trigger }

let fires trigger n =
  match trigger with
  | Never -> false
  | At k -> n >= k
  | Window { from_; until } -> n >= from_ && n <= until

(* ---------------------------------------------------------------- *)
(* Printing                                                          *)

let segment_name = function Stack -> "stack" | Data -> "data"

let trigger_to_string = function
  | Never -> "never"
  | At n -> string_of_int n
  | Window { from_; until } -> Printf.sprintf "%d..%d" from_ until

let site_to_string = function
  | Rng (Stuck_at v) -> Printf.sprintf "rng:stuck=0x%Lx" v
  | Rng All_ones -> "rng:ones"
  | Rng (Bias_low k) -> Printf.sprintf "rng:bias=%d" k
  | Rng (Latency c) -> Printf.sprintf "rng:lat=%.0f" c
  | Rng Unavailable -> "rng:off"
  | Mem_flip { seg; offset; bit } ->
      Printf.sprintf "mem:%s:%d:%d" (segment_name seg) offset bit
  | Intrinsic { name; xor } -> Printf.sprintf "intr:%s:xor=0x%Lx" name xor

let to_spec t =
  Printf.sprintf "%s@%s" (site_to_string t.site) (trigger_to_string t.trigger)

let family t =
  match t.site with Rng _ -> "rng" | Mem_flip _ -> "mem" | Intrinsic _ -> "intr"

let describe t =
  let site =
    match t.site with
    | Rng (Stuck_at v) -> Printf.sprintf "RNG stuck at 0x%Lx" v
    | Rng All_ones -> "RNG stuck at all-ones"
    | Rng (Bias_low k) -> Printf.sprintf "RNG low %d bit(s) forced to zero" k
    | Rng (Latency c) -> Printf.sprintf "RNG latency spike (+%.0f cycles)" c
    | Rng Unavailable -> "RNG source unavailable"
    | Mem_flip { seg; offset; bit } ->
        Printf.sprintf "flip bit %d of %s byte %d" bit (segment_name seg)
          offset
    | Intrinsic { name; xor } ->
        Printf.sprintf "intrinsic %s XOR 0x%Lx" name xor
  in
  let trig =
    match t.trigger with
    | Never -> "never triggered"
    | At n -> Printf.sprintf "from event %d" n
    | Window { from_; until } -> Printf.sprintf "events %d..%d" from_ until
  in
  site ^ ", " ^ trig

(* ---------------------------------------------------------------- *)
(* Parsing                                                           *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let parse_int what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | _ -> err "bad %s %S (want a non-negative integer)" what s

let parse_u64 what s =
  (* accepts decimal and 0x forms; Int64.of_string handles both, and
     0xffffffffffffffff wraps to -1L as intended *)
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> err "bad %s %S (want an integer, 0x.. allowed)" what s

let parse_trigger s =
  if String.equal s "never" then Ok Never
  else
    match String.index_opt s '.' with
    | None ->
        let* n = parse_int "trigger" s in
        if n < 1 then err "trigger must be >= 1 (events are 1-based)"
        else Ok (At n)
    | Some i ->
        if i + 1 >= String.length s || s.[i + 1] <> '.' then
          err "bad trigger %S (want N, N..M or never)" s
        else
          let* from_ = parse_int "trigger start" (String.sub s 0 i) in
          let* until =
            parse_int "trigger end"
              (String.sub s (i + 2) (String.length s - i - 2))
          in
          if from_ < 1 || until < from_ then
            err "bad trigger window %S (want 1 <= N <= M)" s
          else Ok (Window { from_; until })

let strip_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let parse_rng s =
  match s with
  | "ones" -> Ok All_ones
  | "off" -> Ok Unavailable
  | _ -> (
      match strip_prefix ~prefix:"stuck=" s with
      | Some v ->
          let* v = parse_u64 "stuck value" v in
          Ok (Stuck_at v)
      | None -> (
          match strip_prefix ~prefix:"bias=" s with
          | Some k ->
              let* k = parse_int "bias width" k in
              if k < 1 || k > 63 then err "bias width must be in [1, 63]"
              else Ok (Bias_low k)
          | None -> (
              match strip_prefix ~prefix:"lat=" s with
              | Some c -> (
                  match float_of_string_opt c with
                  | Some c when c > 0. -> Ok (Latency c)
                  | _ -> err "bad latency %S (want a positive cycle count)" c)
              | None ->
                  err
                    "bad rng behaviour %S (want stuck=HEX, ones, bias=K, \
                     lat=CYCLES or off)"
                    s)))

let parse_site s =
  match String.split_on_char ':' s with
  | "rng" :: rest ->
      let* b = parse_rng (String.concat ":" rest) in
      Ok (Rng b)
  | [ "mem"; seg; off; bit ] ->
      let* seg =
        match seg with
        | "stack" -> Ok Stack
        | "data" -> Ok Data
        | _ -> err "bad segment %S (want stack or data)" seg
      in
      let* offset = parse_int "offset" off in
      let* bit = parse_int "bit" bit in
      if bit > 7 then err "bit must be in [0, 7]"
      else Ok (Mem_flip { seg; offset; bit })
  | "mem" :: _ -> err "bad mem site %S (want mem:stack|data:OFFSET:BIT)" s
  | "intr" :: rest -> (
      (* the intrinsic name itself contains no ':' (ABI names are
         dotted), so the xor= part is the last component *)
      match List.rev rest with
      | last :: (_ :: _ as name_rev) -> (
          match strip_prefix ~prefix:"xor=" last with
          | Some v ->
              let* xor = parse_u64 "xor constant" v in
              Ok (Intrinsic { name = String.concat ":" (List.rev name_rev); xor })
          | None -> err "bad intr site %S (want intr:NAME:xor=HEX)" s)
      | _ -> err "bad intr site %S (want intr:NAME:xor=HEX)" s)
  | _ -> err "unknown site %S (want rng:..., mem:... or intr:...)" s

let of_spec s =
  match String.rindex_opt s '@' with
  | None -> err "missing trigger in %S (want SITE@TRIGGER)" s
  | Some i ->
      let* site = parse_site (String.sub s 0 i) in
      let* trigger =
        parse_trigger (String.sub s (i + 1) (String.length s - i - 1))
      in
      Ok { site; trigger }

(* ---------------------------------------------------------------- *)
(* Seeded derivation                                                 *)

let random ~seed =
  let rng = Sutil.Simrng.create ~seed in
  let draw_trigger ~bound =
    (* 1/8 never, 1/2 open-ended, else a window *)
    match Sutil.Simrng.int rng ~bound:8 with
    | 0 -> Never
    | 1 | 2 | 3 | 4 -> At (1 + Sutil.Simrng.int rng ~bound)
    | _ ->
        let from_ = 1 + Sutil.Simrng.int rng ~bound in
        Window { from_; until = from_ + Sutil.Simrng.int rng ~bound }
  in
  let site, trigger =
    match Sutil.Simrng.int rng ~bound:3 with
    | 0 ->
        let b =
          match Sutil.Simrng.int rng ~bound:5 with
          | 0 -> Stuck_at (Sutil.Simrng.next_u64 rng)
          | 1 -> All_ones
          | 2 -> Bias_low (4 + Sutil.Simrng.int rng ~bound:60)
          | 3 -> Latency (float_of_int (50 + Sutil.Simrng.int rng ~bound:450))
          | _ -> Unavailable
        in
        (Rng b, draw_trigger ~bound:40)
    | 1 ->
        let seg = if Sutil.Simrng.bool rng then Stack else Data in
        ( Mem_flip
            {
              seg;
              offset = Sutil.Simrng.int rng ~bound:4096;
              bit = Sutil.Simrng.int rng ~bound:8;
            },
          draw_trigger ~bound:20_000 )
    | _ ->
        let name =
          match Sutil.Simrng.int rng ~bound:4 with
          | 0 -> "ss.rand"
          | 1 -> "ss.pad"
          | 2 -> "ss.fid_key"
          | _ -> "ss.fid_assert"
        in
        let xor =
          (* never zero: a zero XOR is no fault at all *)
          Int64.logor 1L (Sutil.Simrng.next_u64 rng)
        in
        (Intrinsic { name; xor }, draw_trigger ~bound:16)
  in
  { site; trigger }
