type armed = { plan : Plan.t; mutable fired : int }

let plan t = t.plan
let fired t = t.fired

let arm_rng_tamper armed gen behaviour trigger =
  match gen with
  | None -> ()  (* nothing draws from a generator in this run *)
  | Some gen ->
      let orig = Rng.Generator.current_scheme gen in
      Rng.Generator.set_tamper gen (fun ~scheme ~draw v ->
          if scheme = orig && Plan.fires trigger draw then begin
            armed.fired <- armed.fired + 1;
            match behaviour with
            | Plan.Stuck_at x -> Rng.Generator.Value x
            | Plan.All_ones -> Rng.Generator.Value (-1L)
            | Plan.Bias_low k ->
                Rng.Generator.Value (Int64.logand v (Int64.shift_left (-1L) k))
            | Plan.Unavailable -> Rng.Generator.Unavailable
            | Plan.Latency _ -> Rng.Generator.Value v
          end
          else Rng.Generator.Value v)

(* Latency costs time, not values: charge the spike at the intrinsic
   layer, where cycle accounting lives.  One shared counter across the
   two draw-site intrinsics keeps "the N-th draw request" well defined. *)
let arm_rng_latency armed (st : Machine.Exec.state) extra trigger =
  let requests = ref 0 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt st.intrinsics name with
      | None -> ()
      | Some f ->
          Machine.Exec.register_intrinsic st name (fun st args ->
              incr requests;
              if Plan.fires trigger !requests then begin
                armed.fired <- armed.fired + 1;
                Machine.Exec.charge st extra
              end;
              f st args))
    [ "ss.rand"; "ss.pad" ]

let arm_mem_flip armed (st : Machine.Exec.state) ~seg ~offset ~bit trigger =
  let name = match seg with Plan.Stack -> "stack" | Plan.Data -> "data" in
  let s = Machine.Memory.segment st.mem name in
  let len = Bytes.length s.bytes in
  let addr =
    match seg with
    | Plan.Stack -> s.base + len - 1 - (offset mod len)
    | Plan.Data -> s.base + (offset mod len)
  in
  let done_ = ref false in
  Machine.Memory.set_access_hook st.mem
    (Some
       (fun () ->
         if (not !done_) && Plan.fires trigger st.instr_count then begin
           done_ := true;
           armed.fired <- armed.fired + 1;
           Machine.Memory.flip_bit st.mem ~addr ~bit;
           Machine.Memory.set_access_hook st.mem None
         end))

let arm_intrinsic armed (st : Machine.Exec.state) ~name ~xor trigger =
  match Hashtbl.find_opt st.intrinsics name with
  | None -> ()  (* unhardened run, or a name this program never uses *)
  | Some f ->
      let calls = ref 0 in
      Machine.Exec.register_intrinsic st name (fun st args ->
          incr calls;
          if Plan.fires trigger !calls then begin
            armed.fired <- armed.fired + 1;
            if Array.length args > 0 then begin
              (* corrupt what the intrinsic observes (this is how a
                 fault reaches ss.fid_assert, whose XOR check is the
                 detection mechanism under test) *)
              args.(0) <- Int64.logxor args.(0) xor;
              f st args
            end
            else
              match f st args with
              | Some v -> Some (Int64.logxor v xor)
              | None -> None
          end
          else f st args)

let arm ?gen (plan : Plan.t) (st : Machine.Exec.state) =
  let armed = { plan; fired = 0 } in
  (match plan.site with
  | Plan.Rng (Plan.Latency extra) -> arm_rng_latency armed st extra plan.trigger
  | Plan.Rng behaviour -> arm_rng_tamper armed gen behaviour plan.trigger
  | Plan.Mem_flip { seg; offset; bit } ->
      arm_mem_flip armed st ~seg ~offset ~bit plan.trigger
  | Plan.Intrinsic { name; xor } ->
      arm_intrinsic armed st ~name ~xor plan.trigger);
  armed
