(* GF(2^8) arithmetic with the AES reduction polynomial x^8+x^4+x^3+x+1. *)

let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then (b lxor 0x11b) land 0xff else b

let gmul a b =
  let acc = ref 0 in
  let a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

(* The S-box is derived rather than transcribed: multiplicative inverse
   in GF(2^8) followed by the FIPS-197 affine transformation.  The
   known-answer tests pin it against published vectors.  Computed
   eagerly at module init — a module-level [lazy] would be a concurrent
   Lazy.force hazard once pool jobs run AES on several domains. *)
let sbox_table =
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inv.(a) <- b
    done
  done;
  Array.init 256 (fun x ->
      let b = inv.(x) in
      let rotl8 v k = ((v lsl k) lor (v lsr (8 - k))) land 0xff in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let sbox x = sbox_table.(x land 0xff)

type key = { round_keys : int array array (* 11 round keys x 16 bytes *) }

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let expand_key k =
  if String.length k <> 16 then
    invalid_arg "Crypto.Aes.expand_key: key must be 16 bytes";
  (* Words are 4 bytes; 44 words total for AES-128. *)
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- Char.code k.[(4 * i) + j]
    done
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord *)
      let t0 = temp.(0) in
      temp.(0) <- temp.(1);
      temp.(1) <- temp.(2);
      temp.(2) <- temp.(3);
      temp.(3) <- t0;
      (* SubWord + Rcon *)
      for j = 0 to 3 do
        temp.(j) <- sbox temp.(j)
      done;
      temp.(0) <- temp.(0) lxor rcon.((i / 4) - 1)
    end;
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor temp.(j)
    done
  done;
  let round_keys =
    Array.init 11 (fun r -> Array.init 16 (fun b -> w.((4 * r) + (b / 4)).(b mod 4)))
  in
  { round_keys }

let standard_rounds = 10

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- sbox state.(i)
  done

(* State is stored column-major: byte [4*c + r] is row r, column c. *)
let shift_rows state =
  let s = Array.copy state in
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * c) + r) <- s.((4 * ((c + r) mod 4)) + r)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let b = c * 4 in
    let a0 = state.(b) and a1 = state.(b + 1) and a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <- gmul 2 a0 lxor gmul 3 a1 lxor a2 lxor a3;
    state.(b + 1) <- a0 lxor gmul 2 a1 lxor gmul 3 a2 lxor a3;
    state.(b + 2) <- a0 lxor a1 lxor gmul 2 a2 lxor gmul 3 a3;
    state.(b + 3) <- gmul 3 a0 lxor a1 lxor a2 lxor gmul 2 a3
  done

let encrypt_block ?(rounds = standard_rounds) { round_keys } block =
  if String.length block <> 16 then
    invalid_arg "Crypto.Aes.encrypt_block: block must be 16 bytes";
  if rounds < 1 || rounds > standard_rounds then
    invalid_arg "Crypto.Aes.encrypt_block: rounds must be in [1, 10]";
  let state = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key state round_keys.(0);
  for r = 1 to rounds - 1 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state round_keys.(r)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state round_keys.(rounds);
  String.init 16 (fun i -> Char.chr state.(i))
