(** Interprocedural layout-leak analysis (DESIGN.md §17).

    Smokestack's security argument is the entropy an attacker cannot
    observe; this pass finds the flows that hand that entropy back.  It
    tracks taint from the layout secrets — [ss.rand] draws, P-BOX row
    contents, and slot/slice addresses — through a call graph with
    per-function flow summaries (argument → return/output), down to the
    observable sinks: output builtins, stores to global (attacker-
    readable) memory, and stores into overflow buffers of
    {!Analysis.Dop} pairs.

    The taint discipline matches {!Funcan}'s per-channel laundering:
    dereferencing a secret-derived address yields a {e clean} value (a
    hardened prologue's slice loads are the product, not the secret),
    while the numeric value of such an address — or of a draw, or of a
    P-BOX row entry — stays tainted through arithmetic, casts, memory
    round-trips and calls.  Comparisons collapse taint to a one-bit
    oracle.

    On an {e unhardened} program every fixed-size entry alloca's
    address is a source: the analysis answers "which layout bits would
    this program disclose once hardened".  On a {e hardened} program
    (any function carrying the smokestack attribute) the sources are
    the [ss.rand] results, P-BOX row loads and the slab-slice geps the
    instrumentation emitted; raw allocas are not secret there.

    Each leak is quantified in bits of Rényi collision entropy
    ([-log2 Σp²] over the default hardening's offset distribution), the
    same quantity {!Score}'s 1/Σp² attempt model exponentiates — so
    [attempts / 2^bits] is exactly the conditional collision estimate
    the degraded scoring and the leak-guided planner use. *)

type source =
  | Rand_draw  (** an [ss.rand] permutation draw *)
  | Pbox_row  (** a value loaded from the P-BOX rodata (or a decoded
                  dynamic-layout offset read back from the slab) *)
  | Slot_addr of string
      (** the address of a named slot of an unhardened function — the
          quantity randomization will turn into a secret *)
  | Slice_addr
      (** a P-BOX-indexed slice of the [__ss_total] slab in a hardened
          function: slab base plus the drawn offset *)

type channel =
  | Direct_value  (** a draw or row content reaches the sink as-is *)
  | Address_disclosure  (** a slot/slice address value reaches the sink *)
  | Comparison_oracle
      (** the taint survives only a comparison: one bit per observation *)

type sink =
  | Output of string
      (** an output builtin, or a defined callee whose summary shows the
          argument reaching output *)
  | Global_store of string  (** stored to a writable global ["*"] = wild *)
  | Readable_buffer of string
      (** stored into an overflow buffer of a DOP pair — attacker-
          adjacent memory *)
  | Oracle_branch
      (** a branch/select condition in a function that emits output *)

type leak = {
  func : string;  (** function containing the sink *)
  source_func : string;  (** function whose layout secret escapes *)
  source : source;
  channel : channel;
  sink : sink;
  bits : float;  (** collision entropy handed to the attacker *)
}

type func_bits = {
  fname : string;
  frame_bits : float;
      (** log2 of the frame's expected brute-force attempts *)
  leaked_bits : float;
      (** per-source max, summed over distinct sources, capped at
          [frame_bits] *)
}

type t = {
  leaks : leak list;  (** deduplicated, deterministic order *)
  funcs : func_bits list;  (** one row per leaking source function *)
  total_bits : float;  (** sum of [leaked_bits] *)
}

val source_to_string : source -> string
val channel_to_string : channel -> string
val sink_to_string : sink -> string
val leak_to_string : leak -> string

val analyze :
  ?hardened:Smokestack.Harden.t ->
  ?readable:(string * string) list ->
  Ir.Prog.t ->
  t
(** [analyze prog] runs the interprocedural flow analysis on [prog].
    [hardened] supplies the P-BOX used to quantify bits (and is
    mandatory for non-zero bits when [prog] itself is the hardened IR);
    without it, an unhardened [prog] is hardened internally under the
    default config (bits are 0 if that fails).  [readable] lists
    [(func, slot)] overflow buffers (from {!Dop} pairs) treated as
    attacker-readable store sinks. *)

val leaked_bits_for : t -> string list -> float
(** Total [leaked_bits] over the given source functions (deduplicated)
    — the exponent the degraded attempt scoring divides by. *)
