(** Int64 interval domain for the bounds dataflow (DESIGN.md §10).

    An interval abstracts the set of runtime int64 values a register or
    memory slot may hold.  [None] bounds mean unbounded on that side;
    the lattice top is [(None, None)].  Empty intervals (lo > hi) arise
    from branch refinement of dead paths and behave as bottom.

    All transfer functions are overflow-aware: any operation whose
    concrete counterpart can wrap returns an unbounded side rather than
    a wrong bound.  Narrow memory traffic follows the VM's semantics
    exactly — loads are {e zero}-extended ([Machine.Memory.load]), so
    the value read back from a [w]-byte slot always lies in
    [[0, 2^(8w)-1]]. *)

type t = { lo : int64 option; hi : int64 option }

val top : t
val const : int64 -> t
val of_bounds : int64 -> int64 -> t
val is_top : t -> bool
val is_empty : t -> bool

val equal : t -> t -> bool
val join : t -> t -> t
val widen : old:t -> t -> t
(** Standard widening: a bound that moved outward jumps to unbounded. *)

val meet : t -> t -> t

(** {2 Arithmetic transfer functions} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sdiv : t -> t -> t
val udiv : t -> t -> t
val srem : t -> t -> t
val urem : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

val sext : width:int -> t -> t
(** Sign-extend from the low [width] bytes ([width < 8] narrows). *)

val zext : width:int -> t -> t
(** The VM's [Trunc]: keep the low [width] bytes, zero-extended. *)

val of_load : width:int -> t
(** Value range of a [width]-byte load (zero-extended). *)

val store_narrow : width:int -> t -> t
(** Abstract value a [width]-byte store leaves in the slot, accounting
    for the truncate-on-store / zero-extend-on-load round trip. *)

(** {2 Branch refinement} *)

val refine : Ir.Instr.icmp -> taken:bool -> t -> rhs:t -> t
(** [refine op ~taken lhs ~rhs] shrinks [lhs] assuming
    [lhs `op` rhs = taken].  Unsigned comparisons refine only when sign
    information permits; the result is always a superset of the exact
    refinement (sound). *)

val contains : t -> lo:int64 -> hi:int64 -> bool
(** [contains t ~lo ~hi]: every value of [t] lies within [[lo, hi]].
    Empty intervals are contained in everything. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
