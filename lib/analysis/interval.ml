type t = { lo : int64 option; hi : int64 option }

let top = { lo = None; hi = None }
let const c = { lo = Some c; hi = Some c }
let of_bounds lo hi = { lo = Some lo; hi = Some hi }
let is_top t = t.lo = None && t.hi = None

let is_empty t =
  match (t.lo, t.hi) with
  | Some lo, Some hi -> Int64.compare lo hi > 0
  | _ -> false

let equal a b = a.lo = b.lo && a.hi = b.hi

(* bound helpers: [None] means "unbounded" on that side *)
let outer_min a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b -> Some (if Int64.compare a b <= 0 then a else b)

let outer_max a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b -> Some (if Int64.compare a b >= 0 then a else b)

let inner_max a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if Int64.compare a b >= 0 then a else b)

let inner_min a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if Int64.compare a b <= 0 then a else b)

let join a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = outer_min a.lo b.lo; hi = outer_max a.hi b.hi }

(* Unstable bounds jump through the narrow-int range boundaries before
   going unbounded: an i32 loop counter widened straight to +inf makes
   the sext that follows every i32 load assume the full signed range,
   and branch refinement can never narrow it back.  Snapping to
   2^31-1 first keeps sext the identity, so the loop bound survives. *)
let widen_thresholds = [ 127L; 32767L; 2147483647L ]

let widen ~old now =
  if is_empty old then now
  else if is_empty now then old
  else
    {
      lo =
        (match (old.lo, now.lo) with
        | Some o, Some n when Int64.compare n o >= 0 -> Some o
        | Some _, Some n ->
            List.fold_left
              (fun acc t ->
                let t = Int64.neg (Int64.add t 1L) in
                if acc = None && Int64.compare t n <= 0 then Some t else acc)
              None widen_thresholds
        | _ -> None);
      hi =
        (match (old.hi, now.hi) with
        | Some o, Some n when Int64.compare n o <= 0 -> Some o
        | Some _, Some n ->
            List.fold_left
              (fun acc t ->
                if acc = None && Int64.compare t n >= 0 then Some t else acc)
              None widen_thresholds
        | _ -> None);
    }

let meet a b = { lo = inner_max a.lo b.lo; hi = inner_min a.hi b.hi }

(* checked int64 arithmetic: None on overflow *)
let checked_add a b =
  let s = Int64.add a b in
  let sa = Int64.compare a 0L and sb = Int64.compare b 0L in
  if (sa > 0 && sb > 0 && Int64.compare s a < 0)
     || (sa < 0 && sb < 0 && Int64.compare s a > 0)
  then None
  else Some s

let checked_mul a b =
  if a = 0L || b = 0L then Some 0L
  else if a = -1L && b = Int64.min_int then None
  else if b = -1L && a = Int64.min_int then None
  else
    let p = Int64.mul a b in
    if Int64.div p b = a then Some p else None

let lift2 f a b = match (a, b) with Some a, Some b -> f a b | _ -> None

let add a b =
  if is_empty a || is_empty b then a
  else { lo = lift2 checked_add a.lo b.lo; hi = lift2 checked_add a.hi b.hi }

let neg t =
  if is_empty t then t
  else
    let flip = function
      | Some v when v <> Int64.min_int -> Some (Int64.neg v)
      | _ -> None
    in
    { lo = flip t.hi; hi = flip t.lo }

let sub a b = add a (neg b)

let mul a b =
  if is_empty a || is_empty b then a
  else
    match (a.lo, a.hi, b.lo, b.hi) with
    | Some al, Some ah, Some bl, Some bh ->
        let ps =
          [
            checked_mul al bl; checked_mul al bh; checked_mul ah bl;
            checked_mul ah bh;
          ]
        in
        if List.exists (( = ) None) ps then top
        else
          let vs = List.filter_map Fun.id ps in
          let v = List.hd vs and rest = List.tl vs in
          {
            lo =
              Some
                (List.fold_left
                   (fun acc x -> if Int64.compare x acc < 0 then x else acc)
                   v rest);
            hi =
              Some
                (List.fold_left
                   (fun acc x -> if Int64.compare x acc > 0 then x else acc)
                   v rest);
          }
    | _ -> top

let nonneg t = match t.lo with Some l -> Int64.compare l 0L >= 0 | None -> false

let singleton t =
  match (t.lo, t.hi) with Some a, Some b when a = b -> Some a | _ -> None

(* truncation division is monotone non-decreasing in the dividend for a
   positive constant divisor *)
let sdiv a b =
  if is_empty a || is_empty b then a
  else
    match singleton b with
    | Some c when Int64.compare c 0L > 0 ->
        {
          lo = Option.map (fun v -> Int64.div v c) a.lo;
          hi = Option.map (fun v -> Int64.div v c) a.hi;
        }
    | _ -> (
        match b.lo with
        | Some bl when Int64.compare bl 1L >= 0 && nonneg a ->
            { lo = Some 0L; hi = a.hi }
        | _ -> top)

let udiv a b =
  if is_empty a || is_empty b then a
  else if nonneg a then
    match singleton b with
    | Some c when Int64.compare c 0L > 0 ->
        {
          lo = Option.map (fun v -> Int64.div v c) a.lo;
          hi = Option.map (fun v -> Int64.div v c) a.hi;
        }
    | _ -> (
        match b.lo with
        | Some bl when Int64.compare bl 1L >= 0 -> { lo = Some 0L; hi = a.hi }
        | _ -> top)
  else top

let srem a b =
  if is_empty a || is_empty b then a
  else
    match singleton b with
    | Some c when c <> 0L && c <> Int64.min_int ->
        let m = Int64.abs c in
        if nonneg a then
          { lo = Some 0L; hi = inner_min a.hi (Some (Int64.sub m 1L)) }
        else of_bounds (Int64.sub 1L m) (Int64.sub m 1L)
    | _ -> top

let urem a b =
  if is_empty a || is_empty b then a
  else
    match singleton b with
    | Some c when Int64.compare c 0L > 0 ->
        { lo = Some 0L; hi = Some (Int64.sub c 1L) }
    | _ -> top

(* x land m lies in [0, m] whenever m >= 0, regardless of x's sign *)
let logand a b =
  if is_empty a || is_empty b then a
  else
    let mask t =
      match (t.lo, t.hi) with
      | Some l, Some h when Int64.compare l 0L >= 0 -> Some h
      | _ -> None
    in
    match (mask a, mask b) with
    | Some m, Some m' ->
        { lo = Some 0L; hi = Some (if Int64.compare m m' <= 0 then m else m') }
    | Some m, None | None, Some m -> { lo = Some 0L; hi = Some m }
    | None, None -> top

let pow2_mask_above v =
  (* smallest 2^k - 1 >= v, for v >= 0 *)
  let rec go m =
    if Int64.compare m v >= 0 then m
    else if Int64.compare m (Int64.div Int64.max_int 2L) >= 0 then Int64.max_int
    else go (Int64.add (Int64.mul m 2L) 1L)
  in
  go 0L

let bitwise_up a b =
  if is_empty a || is_empty b then a
  else
    match (a.lo, a.hi, b.lo, b.hi) with
    | Some al, Some ah, Some bl, Some bh
      when Int64.compare al 0L >= 0 && Int64.compare bl 0L >= 0 ->
        let m = if Int64.compare ah bh >= 0 then ah else bh in
        { lo = Some 0L; hi = Some (pow2_mask_above m) }
    | _ -> top

let logor = bitwise_up
let logxor = bitwise_up

let shl a b =
  if is_empty a || is_empty b then a
  else
    match singleton b with
    | Some s when Int64.compare s 0L >= 0 && Int64.compare s 62L <= 0 ->
        mul a (const (Int64.shift_left 1L (Int64.to_int s)))
    | _ -> top

let lshr a b =
  if is_empty a || is_empty b then a
  else
    match singleton b with
    | Some s when Int64.compare s 0L >= 0 && Int64.compare s 63L <= 0 ->
        let s = Int64.to_int s in
        if s = 0 then a
        else if nonneg a then
          {
            lo = Option.map (fun v -> Int64.shift_right_logical v s) a.lo;
            hi = Option.map (fun v -> Int64.shift_right_logical v s) a.hi;
          }
        else { lo = Some 0L; hi = Some (Int64.shift_right_logical (-1L) s) }
    | _ -> top

let ashr a b =
  if is_empty a || is_empty b then a
  else
    match singleton b with
    | Some s when Int64.compare s 0L >= 0 && Int64.compare s 63L <= 0 ->
        let s = Int64.to_int s in
        {
          lo = Option.map (fun v -> Int64.shift_right v s) a.lo;
          hi = Option.map (fun v -> Int64.shift_right v s) a.hi;
        }
    | _ -> top

let signed_range width =
  let half = Int64.shift_left 1L ((8 * width) - 1) in
  of_bounds (Int64.neg half) (Int64.sub half 1L)

let unsigned_range width =
  of_bounds 0L (Int64.sub (Int64.shift_left 1L (8 * width)) 1L)

let within t r =
  match (t.lo, t.hi, r.lo, r.hi) with
  | Some tl, Some th, Some rl, Some rh ->
      Int64.compare tl rl >= 0 && Int64.compare th rh <= 0
  | _ -> false

let sext ~width t =
  if width >= 8 || is_empty t then t
  else if within t (signed_range width) then t
  else signed_range width

let zext ~width t =
  if width >= 8 || is_empty t then t
  else if within t (unsigned_range width) then t
  else unsigned_range width

let of_load ~width = if width >= 8 then top else unsigned_range width
let store_narrow ~width t = zext ~width t

let refine (op : Ir.Instr.icmp) ~taken lhs ~rhs =
  if is_empty lhs || is_empty rhs then lhs
  else
    let dec = function
      | Some v when v <> Int64.min_int -> Some (Int64.sub v 1L)
      | b -> b
    in
    let inc = function
      | Some v when v <> Int64.max_int -> Some (Int64.add v 1L)
      | b -> b
    in
    (* signed bounds: the rhs value is only known to lie somewhere in
       [rhs.lo, rhs.hi], so lhs < rhs only certifies lhs <= max(rhs)-1
       and lhs > rhs only certifies lhs >= min(rhs)+1 *)
    let le () = { lhs with hi = inner_min lhs.hi rhs.hi } in
    let lt () = { lhs with hi = inner_min lhs.hi (dec rhs.hi) } in
    let ge () = { lhs with lo = inner_max lhs.lo rhs.lo } in
    let gt () = { lhs with lo = inner_max lhs.lo (inc rhs.lo) } in
    match (op, taken) with
    | (Eq, true) | (Ne, false) -> meet lhs rhs
    | (Eq, false) | (Ne, true) -> (
        match singleton rhs with
        | Some c ->
            let lhs =
              if lhs.lo = Some c then { lhs with lo = inc lhs.lo } else lhs
            in
            if lhs.hi = Some c then { lhs with hi = dec lhs.hi } else lhs
        | None -> lhs)
    | Slt, true | Sge, false -> lt ()
    | Sle, true | Sgt, false -> le ()
    | Sgt, true | Sle, false -> gt ()
    | Sge, true | Slt, false -> ge ()
    (* unsigned comparisons: x <u c with c >= 0 (signed) pins x to
       [0, c-1] — any negative x is huge unsigned and fails the test *)
    | Ult, true ->
        if nonneg rhs then { lo = Some 0L; hi = inner_min lhs.hi (dec rhs.hi) }
        else lhs
    | Ule, true ->
        if nonneg rhs then { lo = Some 0L; hi = inner_min lhs.hi rhs.hi }
        else lhs
    | Ult, false ->
        (* x >=u c: meaningful signed refinement only for non-negative x *)
        if nonneg lhs && nonneg rhs then ge () else lhs
    | Ule, false -> if nonneg lhs && nonneg rhs then gt () else lhs

let contains t ~lo ~hi =
  if is_empty t then true
  else
    match (t.lo, t.hi) with
    | Some l, Some h -> Int64.compare l lo >= 0 && Int64.compare h hi <= 0
    | _ -> false

let pp fmt t =
  let b = function None -> "?" | Some v -> Int64.to_string v in
  if is_top t then Format.pp_print_string fmt "T"
  else Format.fprintf fmt "[%s,%s]" (b t.lo) (b t.hi)

let to_string t = Format.asprintf "%a" pp t
