(** Per-function stack-slot classification (DESIGN.md §10).

    For every static stack slot of a function this pass decides
    {e overflow-capable} vs {e safe} (an interval dataflow over
    gep/load/store plus an escape analysis — calls taking pointers to a
    slot count as escapes, per the CleanStack/STEROIDS stance), and
    computes the {e victim roles} of each slot: whether values loaded
    from it (possibly laundered through other slots) feed branches,
    indirect-call targets, memory addresses, call arguments, or the
    value operand of a wild store.

    Soundness stance (w.r.t. the dynamic harness): writes are
    first-order — the intervals assume callees are memory-safe, so a
    slot whose address never escapes keeps its bounds across calls.
    Within the function, any out-of-extent or wild write havocs every
    tracked slot.  See DESIGN.md §10 for the known imprecision list. *)

type reason =
  | Out_of_extent of string
      (** a store's resolved offset interval is not contained in the
          slot's extent; the payload names the site *)
  | Unbounded_intrinsic of string
      (** a builtin write ([read_input], [memcpy], [strncpy],
          [snprintf_cat], ...) whose length bound exceeds the space
          left in the slot *)
  | Escape of string
      (** the slot's address flows somewhere the analysis cannot
          follow: callee argument, stored to memory, laundered through
          arithmetic *)

type role =
  | Branch_feed  (** reaches a conditional branch or select condition *)
  | Call_target  (** reaches an indirect-call callee *)
  | Mem_addr  (** reaches a load/store address or gep operand *)
  | Call_arg  (** passed to a call *)
  | Wild_data  (** becomes the value written through a wild pointer *)

(** Role taint is tracked per channel: the {e value} channel (the
    slot's content and its arithmetic derivations) grants every role;
    the {e address} channel (gep/pointer arithmetic over that value)
    grants only [Mem_addr].  Dereferencing is the laundering point — a
    value loaded through a tainted address is clean, so a slice index
    deliberately laundered through a table lookup does not leak into
    [Branch_feed]/[Call_arg] reports.  Suppression is per-channel, not
    global: a direct compare of the same slot still yields
    [Branch_feed]. *)

type slot = {
  index : int;  (** static slot index (P-BOX column order) *)
  name : string;
  reg : Ir.Instr.reg;
  ty : Ir.Ty.t;
  size : int;
  offset : int;  (** unhardened frame offset (negative, from frame top) *)
  overflow : reason list;  (** [] = provably safe *)
  roles : role list;
}

type t = {
  fname : string;
  slots : slot list;
  wild_stores : int;
      (** stores through pointers of unknown provenance (loaded,
          parameter-derived, or absolute) — the second DOP write channel *)
  heap_stores : int;
  global_overflows : string list;  (** globals written out of extent *)
  callees : string list;  (** defined functions this one calls *)
  has_call_ind : bool;
}

val reason_to_string : reason -> string
val role_to_string : role -> string

val analyze_func : Ir.Prog.t -> Ir.Func.t -> t

val analyze : Ir.Prog.t -> t list
(** Every defined function, in program order. *)
