let defense_names =
  [ "none"; "stack-base"; "canary"; "forrest-pad"; "static-perm"; "smokestack" ]

let n_build_samples = 32
let n_draw_samples = 2048

type ctx = {
  base : Ir.Prog.t;
  hardened : Smokestack.Harden.t;
  forrest : Ir.Prog.t list;
  static_perm : Ir.Prog.t list;
  slot_index : (string * string, int) Hashtbl.t;  (** (func, slot) -> orig idx *)
  draw_cache : (string * int, int array) Hashtbl.t;
      (** (func, orig idx) -> sampled per-invocation offsets *)
}

let make_ctx (prog : Ir.Prog.t) (ans : Funcan.t list) =
  let slot_index = Hashtbl.create 32 in
  List.iter
    (fun (a : Funcan.t) ->
      List.iter
        (fun (s : Funcan.slot) ->
          Hashtbl.replace slot_index (a.fname, s.name) s.index)
        a.slots)
    ans;
  let builds defense =
    List.init n_build_samples (fun i ->
        (Defenses.Defense.apply ~seed:(Int64.of_int (i + 1)) defense prog).prog)
  in
  {
    base = prog;
    hardened = Smokestack.Harden.harden Smokestack.Config.default prog;
    forrest = builds Defenses.Defense.Forrest_pad;
    static_perm = builds Defenses.Defense.Static_perm;
    slot_index;
    draw_cache = Hashtbl.create 32;
  }

(* expected attempts from an observed distribution: 1 / Σ p² over the
   [n] samples; [infinity] when no sample is counted at all *)
let attempts_of_counts counts n =
  let sq =
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. float_of_int n in
        acc +. (p *. p))
      counts 0.
  in
  if sq <= 0. then infinity else 1. /. sq

let tally counts key =
  Hashtbl.replace counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))

(* distribution of [sample seed -> 'a option] over the seeded builds *)
let sampled_attempts samples =
  let counts = Hashtbl.create 16 in
  let n = List.length samples in
  List.iter (function Some v -> tally counts v | None -> ()) samples;
  attempts_of_counts counts n

(* ---- per-build layouts (forrest-pad / static-perm) ---- *)

let build_distance prog (p : Dop.pair) =
  match p.kind with
  | Dop.Same_frame -> (
      match Ir.Prog.find_func prog p.buf_func with
      | None -> None
      | Some f ->
          let frame = Attacks.Layout.frame_of_func f in
          let off n = Attacks.Layout.var_offset frame n in
          (match (off p.buf_slot, off p.victim_slot) with
          | Some b, Some v -> Some (v - b)
          | _ -> None))
  | Dop.Cross_frame ->
      let rows = Attacks.Layout.chain prog p.path in
      Attacks.Layout.distance rows
        ~from_:(p.buf_func, p.buf_slot)
        ~to_:(p.victim_func, p.victim_slot)
  | Dop.Wild_write -> (
      (* a wild write needs the victim's position, not a distance *)
      match Ir.Prog.find_func prog p.victim_func with
      | None -> None
      | Some f ->
          Attacks.Layout.var_offset
            (Attacks.Layout.frame_of_func f)
            p.victim_slot)

let per_build_attempts builds p =
  sampled_attempts (List.map (fun prog -> build_distance prog p) builds)

(* ---- Smokestack ---- *)

(* per-invocation offsets of one original slot, sampled from the same
   decode the instrumented prologue performs *)
let draw_offsets ctx fname idx =
  match Hashtbl.find_opt ctx.draw_cache (fname, idx) with
  | Some a -> a
  | None ->
      let pbox = ctx.hardened.pbox in
      let seed = Int64.of_int (1 + (Hashtbl.hash (fname, idx) land 0xffff)) in
      let rng = Sutil.Simrng.create ~seed in
      let a =
        match Smokestack.Pbox.binding pbox fname with
        | None -> Array.make n_draw_samples 0
        | Some b -> (
            match b.mode with
            | Smokestack.Pbox.Dynamic _ ->
                let dyn = Option.get (Smokestack.Pbox.dyn_of pbox b) in
                Array.init n_draw_samples (fun _ ->
                    (Smokestack.Runtime.dynamic_offsets_for_draw dyn
                       (Sutil.Simrng.next_u64 rng)).(idx))
            | Smokestack.Pbox.Exhaustive _ ->
                let e = Option.get (Smokestack.Pbox.entry_of pbox b) in
                let mask = Int64.of_int (e.rows_materialized - 1) in
                Array.init n_draw_samples (fun _ ->
                    let row =
                      Int64.to_int (Int64.logand (Sutil.Simrng.next_u64 rng) mask)
                    in
                    (Smokestack.Pbox.lookup_offsets pbox b ~row).(idx)))
      in
      Hashtbl.replace ctx.draw_cache (fname, idx) a;
      a

let smokestack_same_frame ctx p =
  let pbox = ctx.hardened.pbox in
  match
    ( Hashtbl.find_opt ctx.slot_index (p.Dop.buf_func, p.Dop.buf_slot),
      Hashtbl.find_opt ctx.slot_index (p.Dop.victim_func, p.Dop.victim_slot) )
  with
  | Some bi, Some vi -> (
      match Smokestack.Pbox.binding pbox p.Dop.buf_func with
      | None -> 1. (* excluded from hardening: layout fixed *)
      | Some b -> (
          match b.mode with
          | Smokestack.Pbox.Exhaustive ex ->
              let e = Option.get (Smokestack.Pbox.entry_of pbox b) in
              let sq =
                Smokestack.Entropy_an.subset_collision e.table
                  ~slots:[ ex.canon_of_orig.(bi); ex.canon_of_orig.(vi) ]
              in
              if sq <= 0. then infinity else 1. /. sq
          | Smokestack.Pbox.Dynamic _ ->
              (* one frame, one draw: joint (buffer, victim) offsets *)
              let dyn =
                Option.get (Smokestack.Pbox.dyn_of pbox b)
              in
              let seed = Int64.of_int (1 + (Hashtbl.hash p.Dop.buf_func land 0xffff)) in
              let rng = Sutil.Simrng.create ~seed in
              let counts = Hashtbl.create 64 in
              for _ = 1 to n_draw_samples do
                let offs =
                  Smokestack.Runtime.dynamic_offsets_for_draw dyn
                    (Sutil.Simrng.next_u64 rng)
                in
                tally counts (offs.(bi), offs.(vi))
              done;
              attempts_of_counts counts n_draw_samples))
  | _ -> 1.

let smokestack_cross_frame ctx p =
  match
    ( Hashtbl.find_opt ctx.slot_index (p.Dop.buf_func, p.Dop.buf_slot),
      Hashtbl.find_opt ctx.slot_index (p.Dop.victim_func, p.Dop.victim_slot) )
  with
  | Some bi, Some vi -> (
      let hprog = ctx.hardened.prog in
      let rows = Attacks.Layout.chain hprog p.Dop.path in
      match
        Attacks.Layout.distance rows
          ~from_:(p.Dop.buf_func, "__ss_total")
          ~to_:(p.Dop.victim_func, "__ss_total")
      with
      | None -> 1.
      | Some slab_gap ->
          let boffs = draw_offsets ctx p.Dop.buf_func bi in
          let voffs = draw_offsets ctx p.Dop.victim_func vi in
          let counts = Hashtbl.create 64 in
          for i = 0 to n_draw_samples - 1 do
            tally counts (slab_gap + voffs.(i) - boffs.(i))
          done;
          attempts_of_counts counts n_draw_samples)
  | _ -> 1.

let smokestack_wild ctx p =
  match Hashtbl.find_opt ctx.slot_index (p.Dop.victim_func, p.Dop.victim_slot) with
  | Some vi ->
      let voffs = draw_offsets ctx p.Dop.victim_func vi in
      let counts = Hashtbl.create 64 in
      Array.iter (tally counts) voffs;
      attempts_of_counts counts n_draw_samples
  | None -> 1.

let stack_base_pads = Defenses.Stack_base.max_pad / 16

let attempts ctx (p : Dop.pair) =
  let relative = p.kind <> Dop.Wild_write in
  let stack_base = if relative then 1. else float_of_int stack_base_pads in
  let smokestack =
    match p.kind with
    | Dop.Same_frame -> smokestack_same_frame ctx p
    | Dop.Cross_frame -> smokestack_cross_frame ctx p
    | Dop.Wild_write -> smokestack_wild ctx p
  in
  [
    ("none", 1.);
    ("stack-base", stack_base);
    ("canary", 1.);
    ("forrest-pad", per_build_attempts ctx.forrest p);
    ("static-perm", per_build_attempts ctx.static_perm p);
    ("smokestack", smokestack);
  ]
