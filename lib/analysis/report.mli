(** Attack-surface reports: the analyzer's user-facing output.

    [analyze_prog] runs the whole pipeline — per-function slot
    classification ({!Funcan}), DOP pair enumeration ({!Dop}) and
    per-defense expected-attempts scoring ({!Score}) — and packages the
    result for the [smokestackc analyze] subcommand, the [analysis]
    bench experiment, and the differential validator in [lib/harness].

    The JSON form round-trips: [of_json (to_json t)] reconstructs the
    report exactly (floats via their shortest decimal form). *)

type scored_pair = {
  pair : Dop.pair;
  attempts : (string * float) list;
  degraded : (string * float) list;
      (** expected attempts after conditioning on the statically-found
          layout leaks ({!Leakan}) of the pair's two frames; [[]] when
          those frames leak nothing.  For the per-invocation defense
          this divides by [2^leaked_bits] (the conditional collision
          estimate); per-build defenses collapse to one attempt under
          any value/address disclosure. *)
}

type func_summary = {
  fname : string;
  n_slots : int;
  n_overflow : int;  (** overflow-capable slots *)
  n_victims : int;  (** slots with at least one victim role *)
  wild_stores : int;
  frame_bytes : int;
  validated : bool;
      (** default-config hardening of the program passes the static
          validator ({!Validate}) with no violation attributed to this
          function *)
  leaked_bits : float;
      (** collision-entropy bits this function's layout secrets
          disclose ({!Leakan.leaked_bits_for}); [0.] when leak-free *)
}

type t = {
  name : string;
  funcs : func_summary list;
  analyses : Funcan.t list;
  pairs : scored_pair list;
  defense_names : string list;
  leakage : Leakan.t;
}

val analyze_prog : ?name:string -> ?score:bool -> Ir.Prog.t -> t
(** [score] defaults to [true]; pass [false] to skip the (sampled)
    per-defense attempts and get classification + pairs only.  Leak
    analysis always runs (it is cheap and unsampled). *)

val summary : t -> (string * float) list
(** Per defense, the expected attempts of the {e easiest} pair — the
    attacker picks the cheapest channel.  [infinity] when the program
    has no pairs at all. *)

val summary_degraded : t -> (string * float) list
(** Like {!summary} but using each pair's leak-degraded attempts where
    available — the disclosure-aware attacker's cost. *)

val to_table : t -> Sutil.Texttable.t
(** Pair-level table (one row per scored pair). *)

val funcs_table : t -> Sutil.Texttable.t

val to_text : t -> string
(** Full human-readable report (both tables plus per-slot detail). *)

val to_json : t -> Sutil.Json.t
val of_json : Sutil.Json.t -> (t, string) result
