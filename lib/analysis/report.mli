(** Attack-surface reports: the analyzer's user-facing output.

    [analyze_prog] runs the whole pipeline — per-function slot
    classification ({!Funcan}), DOP pair enumeration ({!Dop}) and
    per-defense expected-attempts scoring ({!Score}) — and packages the
    result for the [smokestackc analyze] subcommand, the [analysis]
    bench experiment, and the differential validator in [lib/harness].

    The JSON form round-trips: [of_json (to_json t)] reconstructs the
    report exactly (floats via their shortest decimal form). *)

type scored_pair = { pair : Dop.pair; attempts : (string * float) list }

type func_summary = {
  fname : string;
  n_slots : int;
  n_overflow : int;  (** overflow-capable slots *)
  n_victims : int;  (** slots with at least one victim role *)
  wild_stores : int;
  frame_bytes : int;
  validated : bool;
      (** default-config hardening of the program passes the static
          validator ({!Validate}) with no violation attributed to this
          function *)
}

type t = {
  name : string;
  funcs : func_summary list;
  analyses : Funcan.t list;
  pairs : scored_pair list;
  defense_names : string list;
}

val analyze_prog : ?name:string -> ?score:bool -> Ir.Prog.t -> t
(** [score] defaults to [true]; pass [false] to skip the (sampled)
    per-defense attempts and get classification + pairs only. *)

val summary : t -> (string * float) list
(** Per defense, the expected attempts of the {e easiest} pair — the
    attacker picks the cheapest channel.  [infinity] when the program
    has no pairs at all. *)

val to_table : t -> Sutil.Texttable.t
(** Pair-level table (one row per scored pair). *)

val funcs_table : t -> Sutil.Texttable.t

val to_text : t -> string
(** Full human-readable report (both tables plus per-slot detail). *)

val to_json : t -> Sutil.Json.t
val of_json : Sutil.Json.t -> (t, string) result
