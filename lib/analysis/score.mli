(** Expected brute-force attempts per DOP pair per defense (step 3).

    For every enumerated pair this module answers: how many attempts
    does a payload crafted from one observed layout need, in
    expectation, before it lands against a fresh target under each
    defense?  The per-attempt success probability is a collision
    probability (guess and reality drawn from the same distribution —
    the E9 argument), so expected attempts are [1 / Σ p²].

    - [none], [canary]: the layout is fixed and adjacency-based DOP
      writes never cross the canary word, so 1 attempt.
    - [stack-base]: relative distances are unchanged (1 attempt);
      wild writes need the absolute base, a uniform draw over the
      4096 distinct pads.
    - [forrest-pad], [static-perm]: per-{e build} randomization — the
      distance distribution is sampled over 32 seeded builds.
    - [smokestack]: per-{e invocation} randomization — exhaustive
      bindings are scored exactly with {!Smokestack.Entropy_an.subset_collision}
      over the pair's canonical P-BOX columns; dynamic bindings and
      cross-frame pairs are sampled from the runtime's own decode
      ({!Smokestack.Runtime.dynamic_offsets_for_draw}), with the
      inter-frame slab gap read off the hardened binary. *)

val defense_names : string list
(** Column order of every [(defense, attempts)] list this module
    produces. *)

type ctx
(** Prepared scoring context: one Smokestack hardening plus the seeded
    forrest-pad / static-perm builds of a program, shared by all its
    pairs. *)

val make_ctx : Ir.Prog.t -> Funcan.t list -> ctx

val attempts : ctx -> Dop.pair -> (string * float) list
(** Expected attempts for this pair under every defense, in
    {!defense_names} order.  [infinity] means no sampled layout ever
    repeated (the sample lower-bounds the true number). *)
