(** DOP pair enumeration (the tentpole's step 2).

    A {e DOP pair} couples an overflow-capable stack buffer with a
    victim slot an attacker would want to corrupt — a slot whose loaded
    values feed branches, indirect-call targets, memory addresses, call
    arguments, or wild-store values ({!Funcan.role}).  Three channels:

    - {e same-frame}: buffer and victim co-resident in one frame, the
      victim above the buffer under the unhardened layout (overflows
      write upward);
    - {e cross-frame}: the victim lives in an ancestor frame of the
      buffer's function (the librelp/proftpd shape) — the pair carries
      the call path used to compute the static distance;
    - {e wild-write}: the function performs stores through pointers of
      unknown provenance, so any live victim slot (own frame or an
      ancestor's) is addressable without an adjacency requirement.

    Distances come from {!Attacks.Layout} replayed over the unhardened
    binary, i.e. exactly what the paper's adversary reads out of the
    target before Smokestack randomizes it away. *)

type kind = Same_frame | Cross_frame | Wild_write

type pair = {
  pair_id : string;
      (** stable content digest of the identifying tuple (kind, buffer,
          victim, distance, path) — the handle chain synthesis, store
          keys and crossval feedback use to reference a pair without
          re-deriving the tuple.  Deterministic across runs, engines and
          platforms; 12 hex characters. *)
  kind : kind;
  buf_func : string;
  buf_slot : string;  (** ["*"] for {!Wild_write} *)
  victim_func : string;
  victim_slot : string;
  static_distance : int option;
      (** buffer-to-victim bytes under the unhardened layout (positive:
          victim above buffer); [None] for wild writes *)
  path : string list;
      (** caller-first call path for cross-frame pairs, [[]] otherwise *)
  victim_roles : Funcan.role list;
  reasons : Funcan.reason list;
      (** why the buffer is overflow-capable; [[]] for wild writes *)
}

val kind_to_string : kind -> string

val compute_pair_id :
  kind:kind ->
  buf_func:string ->
  buf_slot:string ->
  victim_func:string ->
  victim_slot:string ->
  static_distance:int option ->
  path:string list ->
  string
(** The digest {!enumerate} stores in [pair_id]: length-prefixed
    framing over the identifying fields, hashed and truncated.  Exposed
    so consumers (report decoding, tests) can recompute and verify
    ids. *)

val enumerate : Ir.Prog.t -> Funcan.t list -> pair list
(** Deterministic order: buffer functions in analysis order, then
    victims by frame and slot index. *)
