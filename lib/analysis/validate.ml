module Abi = Smokestack.Abi
module Config = Smokestack.Config
module Harden = Smokestack.Harden
module Pbox = Smokestack.Pbox
module Slots = Smokestack.Slots
module Runtime = Smokestack.Runtime

type rule =
  | Frame_integrity
  | Pbox_soundness
  | Index_hygiene
  | Fid_pairing
  | Elision
  | Layout_leak

let rule_to_string = function
  | Frame_integrity -> "frame-integrity"
  | Pbox_soundness -> "pbox-soundness"
  | Index_hygiene -> "index-hygiene"
  | Fid_pairing -> "fid-pairing"
  | Elision -> "elision"
  | Layout_leak -> "layout-leak"

type violation = {
  rule : rule;
  func : string;
  row : int option;
  detail : string;
}

type adder = rule -> string -> ?row:int -> string -> unit

let violation_to_string v =
  match v.row with
  | Some r ->
      Printf.sprintf "[%s] %s, row %d: %s" (rule_to_string v.rule) v.func r
        v.detail
  | None -> Printf.sprintf "[%s] %s: %s" (rule_to_string v.rule) v.func v.detail

(* ------------------------------------------------------------------ *)
(* Symbolic classification of prologue registers                       *)
(* ------------------------------------------------------------------ *)

(* Every register of an instrumented function is assigned a symbolic
   class by one forward pass in block order (registers are in SSA-like
   single-assignment form per function, so a flow-insensitive map is
   exact).  The classes mirror the instrumentation grammar: the slab
   base, the raw draw, the masked index, the selected row pointer, a
   column pointer / loaded offset / slab slice per canonical column,
   and the FID chain.  [Tainted] poisons anything derived from the
   random index outside the recognized grammar. *)
type sym =
  | Total  (** the [__ss_total] slab base *)
  | Rand  (** result of [ss.rand] *)
  | Index  (** masked/reduced row index *)
  | Row  (** row pointer into [__ss_pbox] *)
  | Col of int  (** column pointer (canonical column) *)
  | Off of int  (** loaded u32 slot offset *)
  | Slice of int  (** slot address: slab base + offset *)
  | FidKey
  | FidVal  (** [fid XOR key], the value the prologue stores *)
  | FidLoad  (** the epilogue's load of the FID slot *)
  | FidCheck  (** [loaded XOR key], what [ss.fid_assert] inspects *)
  | Tainted
  | Opaque

let is_secret = function
  | Rand | Index | Row | Col _ | Off _ | Tainted -> true
  | _ -> false

(* What the classification of a function needs to know about its P-BOX
   binding. *)
type frame_shape = {
  max_total : int;
  fid_col : int option;  (** canonical column of the FID slot *)
  mode : shape_mode;
}

and shape_mode =
  | Sh_exhaustive of {
      byte_offset : int;
      stride : int;
      rows : int;  (** materialized *)
      cols : int;
      canon_of_orig : int array;
    }
  | Sh_dynamic of { dyn_id : int; n_orig : int }

let shape_of (pbox : Pbox.t) (config : Config.t) (b : Pbox.binding) =
  let max_total = Pbox.max_total pbox b in
  match b.mode with
  | Pbox.Exhaustive { entry_index; canon_of_orig; _ } ->
      let e = pbox.entries.(entry_index) in
      {
        max_total;
        fid_col =
          (if config.fid_checks then Some canon_of_orig.(b.n_orig - 1)
           else None);
        mode =
          Sh_exhaustive
            {
              byte_offset = e.byte_offset;
              stride = Pbox.row_stride e;
              rows = e.rows_materialized;
              cols = Array.length e.canon_meta;
              canon_of_orig;
            };
      }
  | Pbox.Dynamic { dyn_id } ->
      {
        max_total;
        fid_col = (if config.fid_checks then Some (b.n_orig - 1) else None);
        mode = Sh_dynamic { dyn_id; n_orig = b.n_orig };
      }

(* Walk one instrumented function, classifying registers and recording
   violations of frame integrity, index hygiene and FID pairing. *)
let check_instrumented (add : adder) (config : Config.t)
    (shape : frame_shape) (f : Ir.Func.t) =
  let fail rule ?row detail = add rule f.name ?row detail in
  let cls : (Ir.Instr.reg, sym) Hashtbl.t = Hashtbl.create 64 in
  let get = function
    | Ir.Instr.Reg r -> Option.value ~default:Opaque (Hashtbl.find_opt cls r)
    | _ -> Opaque
  in
  let set r s = Hashtbl.replace cls r s in
  let fid = Abi.fid_const f.name in
  let expected_ty = Ir.Ty.Array (Ir.Ty.I8, shape.max_total) in
  let total_seen = ref false in
  let dyn_called = ref false in
  let slice_cols = ref [] in
  let fid_store_block = ref None in
  (* ret block label -> does it carry a well-formed fid assert? *)
  let asserts_ok : (string, bool) Hashtbl.t = Hashtbl.create 4 in
  let canon_cols =
    match shape.mode with
    | Sh_exhaustive { canon_of_orig; _ } -> Array.to_list canon_of_orig
    | Sh_dynamic { n_orig; _ } -> List.init n_orig Fun.id
  in
  let hygiene_use what op =
    if is_secret (get op) then
      fail Index_hygiene
        (Printf.sprintf "permutation index/offset flows into %s" what)
  in
  let instr (b : Ir.Func.block) (i : Ir.Instr.t) =
    match i with
    | Ir.Instr.Alloca { dst; ty; count = None; name } ->
        if name = "__ss_total" then begin
          if !total_seen then
            fail Frame_integrity "duplicate __ss_total slab alloca"
          else begin
            total_seen := true;
            if ty <> expected_ty then
              fail Frame_integrity
                (Printf.sprintf
                   "__ss_total slab sized %d bytes, P-BOX requires %d"
                   (Ir.Ty.size ty) shape.max_total)
          end;
          set dst Total
        end
        else
          fail Frame_integrity
            (Printf.sprintf
               "raw fixed-size alloca %S survives outside the __ss_total slab"
               name)
    | Ir.Instr.Alloca { count = Some _; _ } -> ()
    | Ir.Instr.Intrinsic { dst; name; args } ->
        if name = Abi.intr_rand then
          Option.iter (fun d -> set d Rand) dst
        else if name = Abi.intr_fid_key then
          Option.iter (fun d -> set d FidKey) dst
        else if name = Abi.intr_layout_dynamic then begin
          (match shape.mode with
          | Sh_dynamic { dyn_id; _ } -> (
              dyn_called := true;
              match args with
              | [ Ir.Instr.Imm id; base ]
                when Int64.to_int id = dyn_id && get base = Total ->
                  ()
              | _ ->
                  fail Frame_integrity
                    "malformed ss.layout_dynamic call (wrong dyn id or base)")
          | Sh_exhaustive _ ->
              fail Frame_integrity
                "ss.layout_dynamic in a function with a materialized table")
        end
        else if name = Abi.intr_fid_assert then begin
          match args with
          | [ chk; Ir.Instr.Imm expect ] when expect = fid && get chk = FidCheck
            ->
              Hashtbl.replace asserts_ok b.label true
          | _ ->
              Hashtbl.replace asserts_ok b.label false;
              fail Fid_pairing "malformed ss.fid_assert (wrong value or fid)"
        end
        else List.iter (hygiene_use ("intrinsic " ^ name)) args
    | Ir.Instr.Binop { dst; op; lhs; rhs } -> (
        let l = get lhs and r = get rhs in
        match (l, op, rhs) with
        | Rand, op, Ir.Instr.Imm imm -> (
            match shape.mode with
            | Sh_exhaustive { rows; _ }
              when (config.pow2_pbox && op = Ir.Instr.And
                    && imm = Int64.of_int (rows - 1))
                   || ((not config.pow2_pbox)
                       && op = Ir.Instr.Urem
                       && imm = Int64.of_int rows) ->
                set dst Index
            | _ ->
                fail Frame_integrity
                  "malformed index mask (wrong operator or row count)";
                set dst Tainted)
        | FidLoad, Ir.Instr.Xor, _ when r = FidKey -> set dst FidCheck
        | FidKey, Ir.Instr.Xor, _ when r = FidLoad -> set dst FidCheck
        | _, Ir.Instr.Xor, _
          when (lhs = Ir.Instr.Imm fid && r = FidKey)
               || (l = FidKey && rhs = Ir.Instr.Imm fid) ->
            set dst FidVal
        | _ ->
            if is_secret l || is_secret r then set dst Tainted
            else set dst Opaque)
    | Ir.Instr.Gep { dst; base; offset; index } -> (
        match (base, get base) with
        | Ir.Instr.Global g, _ when g = Abi.pbox_global -> (
            match shape.mode with
            | Sh_exhaustive { byte_offset; stride; _ } -> (
                match index with
                | Some (idx, scale)
                  when offset = byte_offset && scale = stride
                       && get idx = Index ->
                    set dst Row
                | _ ->
                    fail Frame_integrity
                      "malformed P-BOX row access (wrong table offset, \
                       stride, or index)";
                    set dst Tainted)
            | Sh_dynamic _ ->
                fail Frame_integrity
                  "P-BOX table access in a dynamically-laid-out function";
                set dst Tainted)
        | _, Row -> (
            match (index, shape.mode) with
            | None, Sh_exhaustive { cols; _ }
              when offset mod 4 = 0
                   && offset / 4 < cols
                   && List.mem (offset / 4) canon_cols ->
                set dst (Col (offset / 4))
            | _ ->
                fail Frame_integrity
                  (Printf.sprintf
                     "row access at byte %d is not one of the function's \
                      columns"
                     offset);
                set dst Tainted)
        | _, Total -> (
            match (index, shape.mode) with
            | Some (off_op, 1), _ when offset = 0 -> (
                match get off_op with
                | Off c -> set dst (Slice c)
                | _ ->
                    fail Frame_integrity
                      "slab indexed by a non-P-BOX offset";
                    set dst Tainted)
            | None, Sh_dynamic { n_orig; _ }
              when offset mod 4 = 0 && offset / 4 < n_orig ->
                set dst (Col (offset / 4))
            | _ ->
                fail Frame_integrity
                  "raw access to the __ss_total slab (fixed offset into \
                   permuted memory)";
                set dst Tainted)
        | _, (Col _ | Off _ | Index | Rand | Tainted) -> set dst Tainted
        | _ -> set dst Opaque)
    | Ir.Instr.Load { dst; ty; addr } -> (
        match get addr with
        | Col c ->
            if ty = Ir.Ty.I32 then set dst (Off c)
            else begin
              fail Frame_integrity "offset load is not a u32";
              set dst Tainted
            end
        | Slice c when shape.fid_col = Some c && ty = Ir.Ty.I64 ->
            set dst FidLoad
        | Total | Row ->
            fail Frame_integrity "load through the raw slab or row base"
        | s when is_secret s ->
            fail Index_hygiene
              "permutation index/offset flows into a load address"
        | _ -> set dst Opaque)
    | Ir.Instr.Store { ty; value; addr } -> (
        hygiene_use "a stored value" value;
        (match get value with
        | Total -> fail Frame_integrity "slab base address is stored to memory"
        | FidKey -> fail Fid_pairing "raw FID key is stored to memory"
        | _ -> ());
        match get addr with
        | Row | Col _ -> fail Frame_integrity "store into the read-only P-BOX"
        | Total -> fail Frame_integrity "store through the raw slab base"
        | s when is_secret s ->
            fail Index_hygiene
              "permutation index/offset flows into a store address"
        | Slice c
          when shape.fid_col = Some c && get value = FidVal && ty = Ir.Ty.I64
          ->
            if !fid_store_block = None then fid_store_block := Some b.label
        | _ ->
            if get value = FidVal then
              fail Fid_pairing "FID value stored outside the FID slot")
    | Ir.Instr.Call { dst; args; _ } ->
        List.iter (hygiene_use "a call argument") args;
        List.iter
          (fun a ->
            if get a = Total then
              fail Frame_integrity "slab base address passed to a call";
            if get a = FidKey then
              fail Fid_pairing "raw FID key passed to a call")
          args;
        Option.iter (fun d -> set d Opaque) dst
    | Ir.Instr.Call_ind { dst; callee; args } ->
        hygiene_use "an indirect-call target" callee;
        List.iter (hygiene_use "a call argument") args;
        List.iter
          (fun a ->
            if get a = Total then
              fail Frame_integrity "slab base address passed to a call")
          args;
        Option.iter (fun d -> set d Opaque) dst
    | Ir.Instr.Icmp { dst; lhs; rhs; _ } ->
        if is_secret (get lhs) || is_secret (get rhs) then set dst Tainted
        else set dst Opaque
    | Ir.Instr.Select { dst; cond; if_true; if_false } ->
        if
          is_secret (get cond)
          || is_secret (get if_true)
          || is_secret (get if_false)
        then set dst Tainted
        else set dst Opaque
    | Ir.Instr.Sext { dst; value; _ } | Ir.Instr.Trunc { dst; value; _ } ->
        if is_secret (get value) then set dst Tainted else set dst Opaque
  in
  List.iter
    (fun (b : Ir.Func.block) ->
      List.iter
        (fun i ->
          (* Record slice classifications as they appear. *)
          instr b i;
          match i with
          | Ir.Instr.Gep { dst; _ } -> (
              match Hashtbl.find_opt cls dst with
              | Some (Slice c) -> slice_cols := c :: !slice_cols
              | _ -> ())
          | _ -> ())
        b.instrs;
      match b.term with
      | Ir.Instr.Ret (Some op) ->
          if is_secret (get op) then
            fail Index_hygiene "permutation index/offset is returned"
      | _ -> ())
    f.blocks;
  (* Frame shape post-conditions. *)
  if not !total_seen then
    fail Frame_integrity "no __ss_total slab alloca in the entry block";
  (match shape.mode with
  | Sh_dynamic _ ->
      if not !dyn_called then
        fail Frame_integrity "dynamic binding but no ss.layout_dynamic call"
  | Sh_exhaustive _ -> ());
  List.iteri
    (fun i c ->
      if not (List.mem c !slice_cols) then
        fail Frame_integrity
          (Printf.sprintf "slot %d (canonical column %d) is never sliced \
                           from the slab"
             i c))
    canon_cols;
  (* FID pairing: the prologue store must dominate every return, and
     every return block must carry a well-formed assert. *)
  match shape.fid_col with
  | None -> ()
  | Some _ -> (
      let cfg = Ir.Cfg.of_func f in
      let idom = Ir.Cfg.idom cfg in
      let ret_blocks =
        Array.to_list cfg.blocks
        |> List.filter (fun (b : Ir.Func.block) ->
               match b.term with Ir.Instr.Ret _ -> true | _ -> false)
      in
      match !fid_store_block with
      | None ->
          if ret_blocks <> [] then
            fail Fid_pairing "no prologue store of the XORed FID"
      | Some store_label ->
          let store_idx = Hashtbl.find cfg.index_of store_label in
          List.iter
            (fun (b : Ir.Func.block) ->
              let bi = Hashtbl.find cfg.index_of b.label in
              if not (Ir.Cfg.dominates ~idom store_idx bi) then
                fail Fid_pairing
                  (Printf.sprintf
                     "FID store in %s does not dominate the return in %s"
                     store_label b.label);
              if Hashtbl.find_opt asserts_ok b.label <> Some true then
                fail Fid_pairing
                  (Printf.sprintf "return block %s lacks a well-formed \
                                   ss.fid_assert"
                     b.label))
            ret_blocks)

(* ------------------------------------------------------------------ *)
(* P-BOX data checks                                                   *)
(* ------------------------------------------------------------------ *)

let decode_u32 blob off =
  Char.code blob.[off]
  lor (Char.code blob.[off + 1] lsl 8)
  lor (Char.code blob.[off + 2] lsl 16)
  lor (Char.code blob.[off + 3] lsl 24)

let check_row (add : adder) ~func ~row ~max_total (metas : (int * int) array)
    (offsets : int array) =
  let n = Array.length metas in
  Array.iteri
    (fun c o ->
      let size, align = metas.(c) in
      if o < 0 || o + size > max_total then
        add Pbox_soundness func ~row
          (Printf.sprintf "column %d at offset %d overruns the %d-byte slab"
             c o max_total)
      else if o mod align <> 0 then
        add Pbox_soundness func ~row
          (Printf.sprintf "column %d at offset %d violates alignment %d" c o
             align))
    offsets;
  (* Overlap / duplicate detection over the sorted placements. *)
  let placed = Array.init n (fun c -> (offsets.(c), fst metas.(c), c)) in
  Array.sort compare placed;
  for i = 0 to n - 2 do
    let o1, s1, c1 = placed.(i) and o2, _, c2 = placed.(i + 1) in
    if o1 = o2 then
      add Pbox_soundness func ~row
        (Printf.sprintf "columns %d and %d share offset %d (duplicate row \
                         entry)"
           c1 c2 o1)
    else if o1 + s1 > o2 then
      add Pbox_soundness func ~row
        (Printf.sprintf "columns %d and %d overlap ([%d,%d) vs [%d,...))" c1
           c2 o1 (o1 + s1) o2)
  done

let check_pbox (add : adder) (t : Harden.t) =
  let pbox = t.pbox in
  let blob = pbox.blob in
  (* The embedded rodata global must carry exactly the table bytes. *)
  (match Ir.Prog.find_global t.prog Abi.pbox_global with
  | Some g ->
      if g.gwritable then
        add Pbox_soundness Abi.pbox_global "P-BOX global is writable";
      let n = String.length blob in
      if
        String.length g.ginit < n
        || String.sub g.ginit 0 n <> blob
      then
        add Pbox_soundness Abi.pbox_global
          "embedded P-BOX global diverges from the built tables"
  | None ->
      if Array.exists (fun (e : Pbox.entry) -> e.users <> []) pbox.entries then
        add Pbox_soundness Abi.pbox_global "no embedded P-BOX global");
  Array.iter
    (fun (e : Pbox.entry) ->
      match e.users with
      | [] -> () (* elided table: never read, never serialized *)
      | users ->
          let func = List.hd (List.sort compare users) in
          let stride = Pbox.row_stride e in
          let last = e.byte_offset + (e.rows_materialized * stride) in
          if last > String.length blob then
            add Pbox_soundness func
              (Printf.sprintf "table rows [%d..%d) overrun the %d-byte blob"
                 e.byte_offset last (String.length blob))
          else
            for row = 0 to e.rows_materialized - 1 do
              let base = e.byte_offset + (row * stride) in
              let offsets =
                Array.init (Array.length e.canon_meta) (fun c ->
                    decode_u32 blob (base + (4 * c)))
              in
              check_row add ~func ~row ~max_total:e.table.max_total
                e.canon_meta offsets
            done)
    pbox.entries;
  (* Per-function bindings: the original-to-canonical map must be a
     partial injection into matching columns. *)
  Hashtbl.iter
    (fun fname (b : Pbox.binding) ->
      match b.mode with
      | Pbox.Exhaustive { entry_index; canon_of_orig; _ } ->
          let e = pbox.entries.(entry_index) in
          let cols = Array.length e.canon_meta in
          let seen = Hashtbl.create 8 in
          Array.iter
            (fun c ->
              if c < 0 || c >= cols then
                add Pbox_soundness fname
                  (Printf.sprintf "binding maps a slot to missing column %d" c)
              else if Hashtbl.mem seen c then
                add Pbox_soundness fname
                  (Printf.sprintf "binding maps two slots to column %d" c)
              else Hashtbl.add seen c ())
            canon_of_orig
      | Pbox.Dynamic { dyn_id } ->
          (* Sample the runtime decoder: every drawn layout must place
             the slots past the scratch region, aligned, disjoint, and
             within the reserved worst case. *)
          let dyn = pbox.dyns.(dyn_id) in
          let rng = Sutil.Simrng.create ~seed:0x5eedL in
          for row = 0 to 63 do
            let draw = Sutil.Simrng.next_u64 rng in
            let offsets = Runtime.dynamic_offsets_for_draw dyn draw in
            Array.iteri
              (fun c o ->
                if o < dyn.scratch_bytes then
                  add Pbox_soundness fname ~row
                    (Printf.sprintf
                       "dynamic layout places slot %d at %d, inside the \
                        %d-byte scratch region"
                       c o dyn.scratch_bytes))
              offsets;
            check_row add ~func:fname ~row ~max_total:dyn.dyn_max_total
              dyn.metas offsets
          done)
    pbox.bindings

(* ------------------------------------------------------------------ *)
(* Elision obligations                                                 *)
(* ------------------------------------------------------------------ *)

let alloca_profile (f : Ir.Func.t) =
  List.sort compare
    (List.filter_map
       (fun (_, ty, count, name) ->
         (* Ignore the draw-preservation intrinsic's absence of allocas;
            VLA pads only appear under full hardening. *)
         if name = "__ss_vla_pad" then None else Some (name, ty, count = None))
       (Ir.Func.allocas f))

let check_elision (add : adder) ?original (t : Harden.t) =
  if t.elided = [] then ()
  else
    match original with
    | None ->
        add Elision "<program>"
          "cannot certify elisions without the original program"
    | Some (orig : Ir.Prog.t) ->
        let analyses = Funcan.analyze orig in
        let pairs = Dop.enumerate orig analyses in
        List.iter
          (fun name ->
            let fail detail = add Elision name detail in
            match
              ( Ir.Prog.find_func orig name,
                Ir.Prog.find_func t.prog name )
            with
            | None, _ | _, None ->
                fail "elided function does not exist in the program"
            | Some fo, Some fh ->
                let slots = Slots.discover fo in
                if slots.vla_count > 0 then
                  fail "elided function has a VLA (pad draws cannot be \
                        preserved)";
                (match
                   List.find_opt (fun (a : Funcan.t) -> a.fname = name)
                     analyses
                 with
                | None -> fail "no analysis for elided function"
                | Some a ->
                    List.iter
                      (fun (s : Funcan.slot) ->
                        List.iter
                          (fun r ->
                            fail
                              (Printf.sprintf
                                 "slot %s is not provably safe: %s" s.name
                                 (Funcan.reason_to_string r)))
                          s.overflow)
                      a.slots);
                List.iter
                  (fun (p : Dop.pair) ->
                    if p.buf_func = name then
                      fail
                        (Printf.sprintf
                           "elided function is the buffer of a %s DOP pair"
                           (Dop.kind_to_string p.kind));
                    if p.victim_func = name then
                      fail
                        (Printf.sprintf
                           "elided function holds the victim of a %s DOP \
                            pair"
                           (Dop.kind_to_string p.kind)))
                  pairs;
                if Ir.Func.has_attr fh Abi.smokestack_attr then
                  fail "elided function carries the full-hardening attribute";
                if Option.is_some (Pbox.binding t.pbox name) then
                  fail "elided function still has a P-BOX binding";
                let metas =
                  Smokestack.Instrument.effective_metas t.config slots
                in
                if Array.length metas > 0 then begin
                  if not (Ir.Func.has_attr fh Abi.smokestack_elided_attr) then
                    fail "elided function lacks the elision attribute";
                  (match (Ir.Func.entry fh).instrs with
                  | Ir.Instr.Intrinsic { name = n; _ } :: _
                    when n = Abi.intr_rand ->
                      ()
                  | _ ->
                      fail
                        "elision is not draw-preserving (no leading ss.rand \
                         draw)");
                  if alloca_profile fo <> alloca_profile fh then
                    fail "elision changed the function's allocas"
                end)
          t.elided

(* ------------------------------------------------------------------ *)
(* Whole-program check                                                 *)
(* ------------------------------------------------------------------ *)

let check ?original (t : Harden.t) =
  let violations = ref [] in
  let add rule func ?row detail =
    violations := { rule; func; row; detail } :: !violations
  in
  check_pbox add t;
  let excluded n = List.mem n t.config.exclude in
  List.iter
    (fun (f : Ir.Func.t) ->
      let hardened = Ir.Func.has_attr f Abi.smokestack_attr in
      let elided_attr = Ir.Func.has_attr f Abi.smokestack_elided_attr in
      if hardened && elided_attr then
        add Frame_integrity f.name
          "function is both fully hardened and elided";
      if excluded f.name then begin
        if hardened || elided_attr then
          add Frame_integrity f.name "excluded function was instrumented"
      end
      else if elided_attr then begin
        if not (List.mem f.name t.elided) then
          add Elision f.name
            "carries the elision attribute but is not in the elision list"
      end
      else if hardened then begin
        match Pbox.binding t.pbox f.name with
        | None ->
            add Frame_integrity f.name "hardened function has no P-BOX binding"
        | Some b -> check_instrumented add t.config (shape_of t.pbox t.config b) f
      end
      else begin
        (* Untouched function: it must genuinely have nothing to
           permute.  (VLA-only functions without FID checks are padded
           but carry no attribute; their lack of static slots is
           exactly what this checks.) *)
        let slots = Slots.discover f in
        if slots.static_slots <> [] then
          add Frame_integrity f.name
            (Printf.sprintf "%d static slot(s) escaped hardening"
               (List.length slots.static_slots))
      end)
    t.prog.funcs;
  check_elision add ?original t;
  List.rev !violations

let result ?original t =
  match check ?original t with
  | [] -> Ok ()
  | vs -> Error (String.concat "\n" (List.map violation_to_string vs))

(* Advisory lint, not a hardening post-condition: a program can be a
   perfectly well-formed Smokestack build and still print one of its
   slice addresses.  Index hygiene already forbids the *instrumented*
   secrets (draw, row pointer, loaded offsets) from flowing into stores
   or calls; this rule additionally catches application-level flows —
   address-of results, comparison oracles, interprocedural summaries —
   via the {!Leakan} information-flow analysis, and so is only offered
   through [check_leaks]/[smokestackc lint --leaks]. *)
let check_leaks (t : Harden.t) =
  let lk = Leakan.analyze ~hardened:t t.prog in
  List.map
    (fun (l : Leakan.leak) ->
      {
        rule = Layout_leak;
        func = l.func;
        row = None;
        detail =
          Printf.sprintf "%s of %s:%s reaches %s (%.2f bits)"
            (Leakan.channel_to_string l.channel)
            l.source_func
            (Leakan.source_to_string l.source)
            (Leakan.sink_to_string l.sink)
            l.bits;
      })
    lk.leaks

(* ------------------------------------------------------------------ *)
(* The elision oracle                                                  *)
(* ------------------------------------------------------------------ *)

let elidable (prog : Ir.Prog.t) =
  let analyses = Funcan.analyze prog in
  let pairs = Dop.enumerate prog analyses in
  let in_pair n =
    List.exists
      (fun (p : Dop.pair) -> p.buf_func = n || p.victim_func = n)
      pairs
  in
  List.filter_map
    (fun (a : Funcan.t) ->
      match Ir.Prog.find_func prog a.fname with
      | None -> None
      | Some f ->
          let slots = Slots.discover f in
          if
            slots.vla_count = 0
            && slots.static_slots <> []
            && a.slots <> []
            && List.for_all (fun (s : Funcan.slot) -> s.overflow = []) a.slots
            && not (in_pair a.fname)
          then Some a.fname
          else None)
    analyses

let install () =
  Harden.set_validator (fun ~original t -> result ~original t);
  Harden.set_elision_oracle elidable

(* ------------------------------------------------------------------ *)
(* Seeded IR mutations (validator self-test)                           *)
(* ------------------------------------------------------------------ *)

type mutation =
  | Raw_alloca
  | Overlap_row
  | Dup_row_entry
  | Swap_row_entries
  | Spill_index
  | Drop_fid_assert

let all_mutations =
  [
    Raw_alloca;
    Overlap_row;
    Dup_row_entry;
    Swap_row_entries;
    Spill_index;
    Drop_fid_assert;
  ]

let mutation_to_string = function
  | Raw_alloca -> "raw-alloca"
  | Overlap_row -> "overlap-row"
  | Dup_row_entry -> "dup-row-entry"
  | Swap_row_entries -> "swap-row-entries"
  | Spill_index -> "spill-index"
  | Drop_fid_assert -> "drop-fid-assert"

let mutation_of_string = function
  | "raw-alloca" -> Some Raw_alloca
  | "overlap-row" -> Some Overlap_row
  | "dup-row-entry" -> Some Dup_row_entry
  | "swap-row-entries" -> Some Swap_row_entries
  | "spill-index" -> Some Spill_index
  | "drop-fid-assert" -> Some Drop_fid_assert
  | _ -> None

let expected_rule = function
  | Raw_alloca -> Frame_integrity
  | Overlap_row | Dup_row_entry | Swap_row_entries -> Pbox_soundness
  | Spill_index -> Index_hygiene
  | Drop_fid_assert -> Fid_pairing

let pick rng l =
  match l with
  | [] -> None
  | l -> Some (List.nth l (Sutil.Simrng.int rng ~bound:(List.length l)))

let instrumented (t : Harden.t) =
  List.filter
    (fun (f : Ir.Func.t) -> Ir.Func.has_attr f Abi.smokestack_attr)
    t.prog.funcs

(* Replace the P-BOX blob consistently in both the table structure and
   the embedded global, modelling a generator bug rather than a rodata
   tamper (which the threat model rules out anyway). *)
let with_blob (t : Harden.t) blob =
  let prog = Ir.Prog.copy t.prog in
  prog.globals <-
    List.map
      (fun (g : Ir.Prog.global) ->
        if g.gname = Abi.pbox_global then { g with ginit = blob } else g)
      prog.globals;
  { t with prog; pbox = { t.pbox with blob } }

let set_u32 bytes off v =
  Bytes.set bytes off (Char.chr (v land 0xff));
  Bytes.set bytes (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set bytes (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set bytes (off + 3) (Char.chr ((v lsr 24) land 0xff))

let used_entries (t : Harden.t) ~min_cols =
  Array.to_list t.pbox.entries
  |> List.filter (fun (e : Pbox.entry) ->
         e.users <> [] && Array.length e.canon_meta >= min_cols)

let row_cell (e : Pbox.entry) ~row ~col =
  e.byte_offset + (row * Pbox.row_stride e) + (4 * col)

let mutate ~seed mutation (t : Harden.t) =
  let rng = Sutil.Simrng.create ~seed in
  match mutation with
  | Raw_alloca -> (
      match pick rng (instrumented t) with
      | None -> None
      | Some f0 ->
          let prog = Ir.Prog.copy t.prog in
          let f = Option.get (Ir.Prog.find_func prog f0.name) in
          let entry = Ir.Func.entry f in
          entry.instrs <-
            entry.instrs
            @ [
                Ir.Instr.Alloca
                  {
                    dst = Ir.Func.fresh_reg f;
                    ty = Ir.Ty.Array (Ir.Ty.I8, 32);
                    count = None;
                    name = "__mut_raw";
                  };
              ];
          Some
            ( { t with prog },
              Printf.sprintf "raw 32-byte alloca appended to %s" f.name ))
  | Dup_row_entry -> (
      match pick rng (used_entries t ~min_cols:2) with
      | None -> None
      | Some e ->
          let cols = Array.length e.canon_meta in
          let row = Sutil.Simrng.int rng ~bound:e.rows_materialized in
          let c1 = Sutil.Simrng.int rng ~bound:cols in
          let c2 = (c1 + 1 + Sutil.Simrng.int rng ~bound:(cols - 1)) mod cols in
          let b = Bytes.of_string t.pbox.blob in
          set_u32 b (row_cell e ~row ~col:c2)
            (decode_u32 t.pbox.blob (row_cell e ~row ~col:c1));
          Some
            ( with_blob t (Bytes.to_string b),
              Printf.sprintf
                "row %d: column %d duplicated into column %d (table at byte \
                 %d)"
                row c1 c2 e.byte_offset ))
  | Overlap_row ->
      (* Deterministic scan for a re-placement that keeps alignment and
         extent but collides two slots at distinct offsets. *)
      let found = ref None in
      List.iter
        (fun (e : Pbox.entry) ->
          if !found = None then
            for row = 0 to e.rows_materialized - 1 do
              let offs =
                Array.init (Array.length e.canon_meta) (fun c ->
                    decode_u32 t.pbox.blob (row_cell e ~row ~col:c))
              in
              Array.iteri
                (fun c1 (s1, _) ->
                  Array.iteri
                    (fun c2 (s2, a2) ->
                      if c1 <> c2 && !found = None then begin
                        let v = ref 0 in
                        while
                          !found = None && !v + s2 <= e.table.max_total
                        do
                          let o1 = offs.(c1) in
                          if
                            !v <> o1
                            && (not (Array.exists (( = ) !v) offs))
                            && !v < o1 + s1
                            && !v + s2 > o1
                          then found := Some (e, row, c2, !v)
                          else v := !v + a2
                        done
                      end)
                    e.canon_meta)
                e.canon_meta
            done)
        (used_entries t ~min_cols:2);
      Option.map
        (fun ((e : Pbox.entry), row, c2, v) ->
          let b = Bytes.of_string t.pbox.blob in
          set_u32 b (row_cell e ~row ~col:c2) v;
          ( with_blob t (Bytes.to_string b),
            Printf.sprintf
              "row %d: column %d moved to offset %d, overlapping a \
               neighbour (table at byte %d)"
              row c2 v e.byte_offset ))
        !found
  | Swap_row_entries ->
      (* Swap two columns with different (size, alignment) such that
         the swapped row is provably invalid. *)
      let bad_after_swap (e : Pbox.entry) offs c1 c2 =
        let offs = Array.copy offs in
        let tmp = offs.(c1) in
        offs.(c1) <- offs.(c2);
        offs.(c2) <- tmp;
        let n = Array.length offs in
        let misaligned_or_out =
          Array.exists
            (fun c ->
              let size, align = e.canon_meta.(c) in
              offs.(c) mod align <> 0 || offs.(c) + size > e.table.max_total)
            (Array.init n Fun.id)
        in
        let placed = Array.init n (fun c -> (offs.(c), fst e.canon_meta.(c))) in
        Array.sort compare placed;
        let overlap = ref false in
        for i = 0 to n - 2 do
          let o1, s1 = placed.(i) and o2, _ = placed.(i + 1) in
          if o1 + s1 > o2 then overlap := true
        done;
        misaligned_or_out || !overlap
      in
      let found = ref None in
      List.iter
        (fun (e : Pbox.entry) ->
          if !found = None then
            for row = 0 to e.rows_materialized - 1 do
              if !found = None then begin
                let offs =
                  Array.init (Array.length e.canon_meta) (fun c ->
                      decode_u32 t.pbox.blob (row_cell e ~row ~col:c))
                in
                let n = Array.length offs in
                for c1 = 0 to n - 2 do
                  for c2 = c1 + 1 to n - 1 do
                    if
                      !found = None
                      && e.canon_meta.(c1) <> e.canon_meta.(c2)
                      && offs.(c1) <> offs.(c2)
                      && bad_after_swap e offs c1 c2
                    then found := Some (e, row, c1, c2, offs)
                  done
                done
              end
            done)
        (used_entries t ~min_cols:2);
      Option.map
        (fun ((e : Pbox.entry), row, c1, c2, offs) ->
          let b = Bytes.of_string t.pbox.blob in
          set_u32 b (row_cell e ~row ~col:c1) offs.(c2);
          set_u32 b (row_cell e ~row ~col:c2) offs.(c1);
          ( with_blob t (Bytes.to_string b),
            Printf.sprintf
              "row %d: columns %d and %d swapped (table at byte %d)" row c1
              c2 e.byte_offset ))
        !found
  | Spill_index -> (
      match pick rng (instrumented t) with
      | None -> None
      | Some f0 ->
          let prog = Ir.Prog.copy t.prog in
          let f = Option.get (Ir.Prog.find_func prog f0.name) in
          let entry = Ir.Func.entry f in
          let rand_reg = ref None and idx_reg = ref None in
          let off_reg = ref None in
          let total_reg = ref None and spilled = ref None in
          let out = ref [] in
          List.iter
            (fun (i : Ir.Instr.t) ->
              out := i :: !out;
              (match i with
              | Ir.Instr.Alloca { dst; count = None; name = "__ss_total"; _ }
                ->
                  total_reg := Some dst
              | Ir.Instr.Intrinsic { dst = Some d; name; _ }
                when name = Abi.intr_rand ->
                  rand_reg := Some d
              | Ir.Instr.Binop { dst; lhs = Ir.Instr.Reg l; _ }
                when Some l = !rand_reg ->
                  idx_reg := Some dst
              | Ir.Instr.Load { dst; ty = Ir.Ty.I32; _ } when !off_reg = None
                ->
                  (* First u32 load of the prologue: slot 0's P-BOX
                     offset (both binding modes). *)
                  off_reg := Some dst
              | Ir.Instr.Gep
                  {
                    dst;
                    base = Ir.Instr.Reg b;
                    offset = 0;
                    index = Some (_, 1);
                  }
                when Some b = !total_reg && !spilled = None -> (
                  (* Spill right after the first slot address exists:
                     the masked index when the function has one, else
                     the loaded offset (dynamic bindings). *)
                  match (if !idx_reg <> None then !idx_reg else !off_reg) with
                  | Some secret ->
                      spilled := Some secret;
                      out :=
                        Ir.Instr.Store
                          {
                            ty = Ir.Ty.I64;
                            value = Ir.Instr.Reg secret;
                            addr = Ir.Instr.Reg dst;
                          }
                        :: !out
                  | None -> ())
              | _ -> ()))
            entry.instrs;
          if !spilled = None then None
          else begin
            entry.instrs <- List.rev !out;
            Some
              ( { t with prog },
                Printf.sprintf
                  "permutation %s of %s spilled into its first stack slot"
                  (if !idx_reg <> None then "index" else "offset")
                  f.name )
          end)
  | Drop_fid_assert -> (
      let has_assert (f : Ir.Func.t) =
        List.exists
          (fun (b : Ir.Func.block) ->
            List.exists
              (function
                | Ir.Instr.Intrinsic { name; _ } ->
                    name = Abi.intr_fid_assert
                | _ -> false)
              b.instrs)
          f.blocks
      in
      match pick rng (List.filter has_assert (instrumented t)) with
      | None -> None
      | Some f0 ->
          let prog = Ir.Prog.copy t.prog in
          let f = Option.get (Ir.Prog.find_func prog f0.name) in
          let blocks =
            List.filter
              (fun (b : Ir.Func.block) ->
                List.exists
                  (function
                    | Ir.Instr.Intrinsic { name; _ } ->
                        name = Abi.intr_fid_assert
                    | _ -> false)
                  b.instrs)
              f.blocks
          in
          let b = Option.get (pick rng blocks) in
          b.instrs <-
            List.filter
              (function
                | Ir.Instr.Intrinsic { name; _ } ->
                    name <> Abi.intr_fid_assert
                | _ -> true)
              b.instrs;
          Some
            ( { t with prog },
              Printf.sprintf "ss.fid_assert removed from %s block %s" f.name
                b.label ))

(* ------------------------------------------------------------------ *)
(* JSON rendering (CLI / CI)                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let violation_to_json v =
  Printf.sprintf "{\"rule\":\"%s\",\"func\":\"%s\",\"row\":%s,\"detail\":\"%s\"}"
    (rule_to_string v.rule) (json_escape v.func)
    (match v.row with Some r -> string_of_int r | None -> "null")
    (json_escape v.detail)

let report_json ~name violations =
  Printf.sprintf "{\"program\":\"%s\",\"clean\":%b,\"violations\":[%s]}"
    (json_escape name)
    (violations = [])
    (String.concat "," (List.map violation_to_json violations))
